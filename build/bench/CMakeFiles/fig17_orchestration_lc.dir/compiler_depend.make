# Empty compiler generated dependencies file for fig17_orchestration_lc.
# This may be replaced when dependencies are built.
