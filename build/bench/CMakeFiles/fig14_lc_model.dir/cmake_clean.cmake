file(REMOVE_RECURSE
  "CMakeFiles/fig14_lc_model.dir/fig14_lc_model.cc.o"
  "CMakeFiles/fig14_lc_model.dir/fig14_lc_model.cc.o.d"
  "fig14_lc_model"
  "fig14_lc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_lc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
