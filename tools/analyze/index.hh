/**
 * @file
 * Lightweight cross-file C++ declaration indexer — the foundation of
 * the tools/analyze semantic passes (DESIGN.md §13).
 *
 * No libclang: the indexer is a brace/statement scanner over the same
 * comment/string-stripped view of the source the lint uses
 * (tools/lint/source.hh).  It recovers the declarations the passes
 * need — classes and structs, their non-static data members (with
 * types and the project annotation macros), member function
 * declarations with inline bodies, and out-of-line member function
 * bodies from any file — and merges them across the whole tree, so a
 * pass can ask "is member `nextId` of class `ScenarioEngine`
 * referenced inside `ScenarioEngine::saveState`?" even though the
 * class lives in engine.hh and the body in engine.cc.
 *
 * Deliberate simplifications (documented, fixture-covered):
 *  - classes are keyed by namespace-qualified name (built from the
 *    enclosing `namespace` blocks) and merged across files; findClass
 *    also resolves unique unqualified suffixes.
 *  - bodies are captured as flat stripped text; references are
 *    identifier-presence checks, not data flow.
 *  - preprocessor conditionals are not evaluated; every branch is
 *    indexed (a member only visible under #if is still a member).
 */

#ifndef ADRIAS_TOOLS_ANALYZE_INDEX_HH
#define ADRIAS_TOOLS_ANALYZE_INDEX_HH

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace adrias::analyze
{

/** One input translation unit (repo-relative label + full text). */
struct SourceFile
{
    std::string label;
    std::string content;
};

/** One non-static-or-static data member of an indexed class. */
struct Member
{
    std::string name;
    /** Declaration text left of the name (specifiers + type). */
    std::string type;
    std::string file;
    std::size_t line = 0; ///< 1-based line of the declaration

    bool isStatic = false;
    bool isConst = false;
    bool isMutable = false;
    bool isReference = false;

    /** ADRIAS_GUARDED_BY / ADRIAS_PT_GUARDED_BY present. */
    bool guarded = false;
    /** ADRIAS_NOT_CHECKPOINTED waiver present. */
    bool notCheckpointed = false;
    /** ADRIAS_LOCK_FREE waiver present. */
    bool lockFree = false;
};

/** A member function: declaration, plus body when defined inline. */
struct Method
{
    std::string name;
    /** Declaration head text (return type, params, qualifiers). */
    std::string head;
    /** Stripped body text, newlines preserved; "" when not inline. */
    std::string body;
    std::string file;
    std::size_t line = 0;     ///< declaration line
    std::size_t bodyLine = 0; ///< line the body's '{' is on (0: none)
    bool isStatic = false;
};

/** An indexed class or struct. */
struct Class
{
    std::string name; ///< qualified: "adrias::obs::Tracer::Event"
    std::string file;
    std::size_t line = 0;
    std::vector<std::string> bases;
    std::vector<Member> members;
    std::vector<Method> methods;
};

/** An out-of-line function body ("Class::name" or a free function). */
struct Function
{
    std::string className; ///< "" for free functions
    std::string name;
    std::string head;
    std::string body;
    std::string file;
    std::size_t line = 0;
    std::size_t bodyLine = 0;
};

/** The merged declaration index of a file set. */
struct Index
{
    std::vector<Class> classes;      ///< declaration order, merged
    std::vector<Function> functions; ///< every out-of-line/free body

    /** @return the class named `name`, or nullptr. */
    const Class *findClass(const std::string &name) const;

    /**
     * Merged bodies of every method of `cls` whose name is in
     * `names`: inline bodies plus out-of-line definitions from any
     * indexed file.  Overloads are concatenated.
     */
    std::string mergedBodies(const Class &cls,
                             const std::set<std::string> &names) const;

    /**
     * mergedBodies closed over same-class calls: starting from
     * `names`, any method of `cls` whose name appears as an
     * identifier in the accumulated text is merged in, to a fixed
     * point.  This is how `saveState` bodies that delegate to
     * `exportState()` still count the members the helper touches.
     */
    std::string transitiveBodies(const Class &cls,
                                 const std::set<std::string> &names) const;
};

/** Parse and merge a set of files into one declaration index. */
Index buildIndex(const std::vector<SourceFile> &files);

/** All identifiers of `text` as a set (for reference queries). */
std::set<std::string> identifierSet(const std::string &text);

} // namespace adrias::analyze

#endif // ADRIAS_TOOLS_ANALYZE_INDEX_HH
