#include "stats/regression_metrics.hh"

#include <cmath>

#include "common/logging.hh"

namespace adrias::stats
{

namespace
{

void
checkSizes(const std::vector<double> &actual,
           const std::vector<double> &predicted)
{
    if (actual.empty())
        fatal("regression metric on empty sample");
    if (actual.size() != predicted.size())
        fatal("regression metric size mismatch");
}

} // namespace

double
r2Score(const std::vector<double> &actual,
        const std::vector<double> &predicted)
{
    checkSizes(actual, predicted);
    double mean = 0.0;
    for (double a : actual)
        mean += a;
    mean /= static_cast<double>(actual.size());

    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        const double res = actual[i] - predicted[i];
        const double dev = actual[i] - mean;
        ss_res += res * res;
        ss_tot += dev * dev;
    }
    if (ss_tot <= 0.0)
        return ss_res <= 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

double
meanAbsoluteError(const std::vector<double> &actual,
                  const std::vector<double> &predicted)
{
    checkSizes(actual, predicted);
    double total = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i)
        total += std::fabs(actual[i] - predicted[i]);
    return total / static_cast<double>(actual.size());
}

double
rootMeanSquaredError(const std::vector<double> &actual,
                     const std::vector<double> &predicted)
{
    checkSizes(actual, predicted);
    double total = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        const double d = actual[i] - predicted[i];
        total += d * d;
    }
    return std::sqrt(total / static_cast<double>(actual.size()));
}

double
meanAbsolutePercentageError(const std::vector<double> &actual,
                            const std::vector<double> &predicted,
                            double epsilon)
{
    checkSizes(actual, predicted);
    double total = 0.0;
    std::size_t used = 0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        if (std::fabs(actual[i]) < epsilon)
            continue;
        total += std::fabs((actual[i] - predicted[i]) / actual[i]);
        ++used;
    }
    if (used == 0)
        return 0.0;
    return 100.0 * total / static_cast<double>(used);
}

} // namespace adrias::stats
