#include "ml/simd.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace adrias::ml
{

namespace
{

/** One-time ADRIAS_KERNEL_TIER parse; warnings fire exactly once. */
KernelTier
initialTier()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *env = std::getenv("ADRIAS_KERNEL_TIER");
    if (env == nullptr || *env == '\0')
        return KernelTier::Scalar;
    if (const auto parsed = parseKernelTier(env))
        return *parsed;
    logWarn(std::string("ADRIAS_KERNEL_TIER='") + env +
            "' not recognized (want 'scalar' or 'vector'); "
            "using the scalar tier");
    return KernelTier::Scalar;
}

/** Function-local static: safe against static-init order. */
KernelTier &
tierRef()
{
    static KernelTier tier = initialTier();
    return tier;
}

} // namespace

KernelTier
kernelTier()
{
    return tierRef();
}

void
setKernelTier(KernelTier tier)
{
    tierRef() = tier;
}

KernelTier
effectiveKernelTier()
{
    if (tierRef() == KernelTier::Vector && vectorTierAvailable())
        return KernelTier::Vector;
    return KernelTier::Scalar;
}

std::optional<KernelTier>
parseKernelTier(const std::string &text)
{
    if (text == "scalar")
        return KernelTier::Scalar;
    if (text == "vector")
        return KernelTier::Vector;
    return std::nullopt;
}

const char *
kernelTierName(KernelTier tier)
{
    return tier == KernelTier::Vector ? "vector" : "scalar";
}

} // namespace adrias::ml
