#include "models/batching.hh"

#include "common/logging.hh"

namespace adrias::models
{

std::vector<ml::Matrix>
stackSequences(const std::vector<const std::vector<ml::Matrix> *> &sequences)
{
    if (sequences.empty())
        panic("stackSequences: empty batch");
    const std::size_t steps = sequences.front()->size();
    if (steps == 0)
        panic("stackSequences: zero-length sequences");
    const std::size_t width = sequences.front()->front().cols();

    std::vector<ml::Matrix> batched;
    batched.reserve(steps);
    for (std::size_t t = 0; t < steps; ++t) {
        ml::Matrix step(sequences.size(), width);
        for (std::size_t b = 0; b < sequences.size(); ++b) {
            const auto &sequence = *sequences[b];
            if (sequence.size() != steps ||
                sequence[t].cols() != width || sequence[t].rows() != 1) {
                panic("stackSequences: ragged batch");
            }
            for (std::size_t c = 0; c < width; ++c)
                step.at(b, c) = sequence[t].at(0, c);
        }
        batched.push_back(std::move(step));
    }
    return batched;
}

ml::Matrix
stackRows(const std::vector<const ml::Matrix *> &rows)
{
    if (rows.empty())
        panic("stackRows: empty batch");
    const std::size_t width = rows.front()->cols();
    ml::Matrix out(rows.size(), width);
    for (std::size_t b = 0; b < rows.size(); ++b) {
        if (rows[b]->cols() != width || rows[b]->rows() != 1)
            panic("stackRows: ragged batch");
        for (std::size_t c = 0; c < width; ++c)
            out.at(b, c) = rows[b]->at(0, c);
    }
    return out;
}

} // namespace adrias::models
