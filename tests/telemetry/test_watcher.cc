/** @file Unit tests for the Watcher and trace windowing helpers. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "telemetry/watcher.hh"

namespace adrias::telemetry
{
namespace
{

using testbed::CounterSample;
using testbed::kNumPerfEvents;

CounterSample
constantSample(double value)
{
    CounterSample s{};
    for (double &v : s)
        v = value;
    return s;
}

TEST(Watcher, StartsEmpty)
{
    Watcher watcher(10);
    EXPECT_EQ(watcher.sampleCount(), 0u);
    EXPECT_FALSE(watcher.hasWindow(1));
    EXPECT_THROW(watcher.latest(), std::logic_error);
    EXPECT_THROW(watcher.meanOverTrailing(5), std::runtime_error);
    EXPECT_THROW(watcher.binnedWindow(5, 2), std::runtime_error);
}

TEST(Watcher, RecordsAndReportsLatest)
{
    Watcher watcher(10);
    watcher.record(constantSample(1.0));
    watcher.record(constantSample(2.0));
    EXPECT_EQ(watcher.sampleCount(), 2u);
    EXPECT_DOUBLE_EQ(watcher.latest()[0], 2.0);
}

TEST(Watcher, MeanOverTrailingWindow)
{
    Watcher watcher(10);
    for (double v : {1.0, 2.0, 3.0, 4.0})
        watcher.record(constantSample(v));
    const CounterSample mean = watcher.meanOverTrailing(2);
    EXPECT_DOUBLE_EQ(mean[0], 3.5);
    // Window larger than history falls back to all samples.
    const CounterSample all = watcher.meanOverTrailing(100);
    EXPECT_DOUBLE_EQ(all[0], 2.5);
}

TEST(Watcher, BinnedWindowShape)
{
    Watcher watcher(200);
    for (int i = 0; i < 120; ++i)
        watcher.record(constantSample(i));
    const auto seq = watcher.binnedWindow(120, 12);
    ASSERT_EQ(seq.size(), 12u);
    for (const auto &step : seq) {
        EXPECT_EQ(step.rows(), 1u);
        EXPECT_EQ(step.cols(), kNumPerfEvents);
    }
    // Bins are chronological: first bin averages 0..9, last 110..119.
    EXPECT_NEAR(seq.front().at(0, 0), 4.5, 1e-9);
    EXPECT_NEAR(seq.back().at(0, 0), 114.5, 1e-9);
}

TEST(Watcher, ColdStartPadsWithOldestSample)
{
    Watcher watcher(200);
    watcher.record(constantSample(5.0));
    watcher.record(constantSample(7.0));
    const auto seq = watcher.binnedWindow(120, 12);
    ASSERT_EQ(seq.size(), 12u);
    // Early bins see only the padded oldest value.
    EXPECT_DOUBLE_EQ(seq.front().at(0, 0), 5.0);
    // The last bin includes the newest sample.
    EXPECT_GT(seq.back().at(0, 0), 5.0);
}

TEST(Watcher, EvictsBeyondCapacity)
{
    Watcher watcher(4);
    for (double v = 0.0; v < 10.0; ++v)
        watcher.record(constantSample(v));
    EXPECT_EQ(watcher.sampleCount(), 4u);
    EXPECT_DOUBLE_EQ(watcher.meanOverTrailing(4)[0], 7.5);
}

TEST(Watcher, ClearEmptiesHistory)
{
    Watcher watcher(4);
    watcher.record(constantSample(1.0));
    watcher.clear();
    EXPECT_EQ(watcher.sampleCount(), 0u);
}

TEST(Watcher, RepairsInvalidEventsWithLastGoodValue)
{
    Watcher watcher(10);
    watcher.record(constantSample(3.0));

    CounterSample poisoned = constantSample(8.0);
    poisoned[1] = std::nan("");
    poisoned[4] = -2.0;
    watcher.record(poisoned);

    const CounterSample &seen = watcher.latest();
    EXPECT_DOUBLE_EQ(seen[0], 8.0);
    EXPECT_DOUBLE_EQ(seen[1], 3.0); // last good
    EXPECT_DOUBLE_EQ(seen[4], 3.0);

    const WatcherHealth &health = watcher.health();
    EXPECT_EQ(health.samplesAccepted, 2u);
    EXPECT_EQ(health.samplesRepaired, 1u);
    EXPECT_EQ(health.eventsRepaired, 2u);
}

TEST(Watcher, RepairsWithZeroBeforeFirstGoodValue)
{
    Watcher watcher(10);
    CounterSample poisoned = constantSample(1.0);
    poisoned[2] = std::numeric_limits<double>::infinity();
    watcher.record(poisoned);
    EXPECT_DOUBLE_EQ(watcher.latest()[2], 0.0);
    EXPECT_EQ(watcher.health().eventsRepaired, 1u);
}

TEST(Watcher, DroppedTicksPadWithLastSampleAndTrackStaleness)
{
    Watcher watcher(10);
    watcher.record(constantSample(6.0));
    watcher.recordDropped();
    watcher.recordDropped();

    EXPECT_EQ(watcher.sampleCount(), 3u); // time stays aligned
    EXPECT_DOUBLE_EQ(watcher.latest()[0], 6.0);

    const WatcherHealth &health = watcher.health();
    EXPECT_EQ(health.samplesDropped, 2u);
    EXPECT_EQ(health.stalenessSec, 2u);
    EXPECT_EQ(health.maxStalenessSec, 2u);

    // A fresh sample resets staleness but not the historical maximum.
    watcher.record(constantSample(7.0));
    EXPECT_EQ(watcher.health().stalenessSec, 0u);
    EXPECT_EQ(watcher.health().maxStalenessSec, 2u);
}

TEST(Watcher, FullyPoisonedSampleKeepsStalenessStreakOpen)
{
    // Regression: a sample whose every event needed repair used to
    // count as fresh and reset stalenessSec, hiding a telemetry outage
    // behind the repair path.
    Watcher watcher(10);
    watcher.record(constantSample(5.0));
    watcher.recordDropped();
    watcher.recordDropped();

    CounterSample poisoned;
    poisoned.fill(std::nan(""));
    watcher.record(poisoned);

    const WatcherHealth health = watcher.health();
    EXPECT_EQ(health.samplesAccepted, 2u);
    EXPECT_EQ(health.samplesRepaired, 1u);
    EXPECT_EQ(health.stalenessSec, 3u);
    EXPECT_EQ(health.maxStalenessSec, 3u);

    // History still advances with the repaired (last-good) values.
    EXPECT_EQ(watcher.sampleCount(), 4u);
    EXPECT_DOUBLE_EQ(watcher.latest()[0], 5.0);

    // First sample carrying any genuine event closes the streak.
    watcher.record(constantSample(6.0));
    EXPECT_EQ(watcher.health().stalenessSec, 0u);
    EXPECT_EQ(watcher.health().maxStalenessSec, 3u);
}

TEST(Watcher, MaxStalenessCapturesStreakStillOpenAtEndOfRun)
{
    // The worst streak must be visible even when no fresh sample ever
    // arrives to close it — health() is typically read at end-of-run.
    Watcher watcher(10);
    watcher.record(constantSample(2.0));
    watcher.recordDropped();
    watcher.recordDropped();
    watcher.recordDropped();
    EXPECT_EQ(watcher.health().stalenessSec, 3u);
    EXPECT_EQ(watcher.health().maxStalenessSec, 3u);

    // An open streak extended by a fully-poisoned sample still counts.
    CounterSample poisoned;
    poisoned.fill(-1.0);
    watcher.record(poisoned);
    EXPECT_EQ(watcher.health().maxStalenessSec, 4u);
}

TEST(Watcher, ColdStartDropoutPadsWithZeros)
{
    Watcher watcher(10);
    watcher.recordDropped();
    EXPECT_EQ(watcher.sampleCount(), 1u);
    EXPECT_DOUBLE_EQ(watcher.latest()[0], 0.0);
}

TEST(Watcher, ClearResetsHealth)
{
    Watcher watcher(10);
    watcher.recordDropped();
    CounterSample poisoned = constantSample(1.0);
    poisoned[0] = std::nan("");
    watcher.record(poisoned);
    watcher.clear();
    EXPECT_EQ(watcher.health().samplesDropped, 0u);
    EXPECT_EQ(watcher.health().samplesRepaired, 0u);
    EXPECT_EQ(watcher.health().maxStalenessSec, 0u);
}

TEST(MeanOverSpan, ComputesPerEventMeans)
{
    std::vector<CounterSample> trace;
    for (double v : {2.0, 4.0, 6.0})
        trace.push_back(constantSample(v));
    const CounterSample mean = meanOverSpan(trace, 0, 3);
    for (std::size_t e = 0; e < kNumPerfEvents; ++e)
        EXPECT_DOUBLE_EQ(mean[e], 4.0);
    EXPECT_DOUBLE_EQ(meanOverSpan(trace, 1, 2)[0], 4.0);
}

TEST(MeanOverSpan, InvalidSpanPanics)
{
    std::vector<CounterSample> trace{constantSample(1.0)};
    EXPECT_THROW(meanOverSpan(trace, 0, 0), std::logic_error);
    EXPECT_THROW(meanOverSpan(trace, 0, 2), std::logic_error);
}

TEST(BinSpan, ShorterSpanThanBinsStillWorks)
{
    std::vector<CounterSample> trace;
    for (double v : {1.0, 2.0, 3.0})
        trace.push_back(constantSample(v));
    const auto seq = binSpan(trace, 0, 3, 12);
    ASSERT_EQ(seq.size(), 12u);
    // Monotone non-decreasing (repeats allowed when bins < samples).
    for (std::size_t i = 1; i < seq.size(); ++i)
        EXPECT_GE(seq[i].at(0, 0), seq[i - 1].at(0, 0));
}

TEST(BinSpan, ValidatesArguments)
{
    std::vector<CounterSample> trace{constantSample(1.0),
                                     constantSample(2.0)};
    EXPECT_THROW(binSpan(trace, 1, 1, 4), std::logic_error);
    EXPECT_THROW(binSpan(trace, 0, 5, 4), std::logic_error);
    EXPECT_THROW(binSpan(trace, 0, 2, 0), std::runtime_error);
}

} // namespace
} // namespace adrias::telemetry
