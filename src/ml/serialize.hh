/**
 * @file
 * Parameter (de)serialization so trained Predictor models can be saved
 * at design time and re-used at run time, mirroring the paper's
 * offline/online split.
 */

#ifndef ADRIAS_ML_SERIALIZE_HH
#define ADRIAS_ML_SERIALIZE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hh"
#include "ml/layer.hh"

namespace adrias::ml
{

/** Write all parameter tensors to a text stream (shape + values). */
void saveParams(std::ostream &out, const std::vector<Param *> &params);

/**
 * Read parameter tensors back; shapes must match what was saved.
 *
 * Typed-error variant: BadHeader (magic/version), Geometry (count or
 * shape mismatch), Truncated / BadNumber (malformed tensor payload).
 * Params may be partially overwritten when an error is returned.
 */
[[nodiscard]] Result<void> tryLoadParams(std::istream &in,
                           const std::vector<Param *> &params);

/**
 * Read parameter tensors back; shapes must match what was saved.
 *
 * @throws std::runtime_error on malformed input or shape mismatch.
 */
void loadParams(std::istream &in, const std::vector<Param *> &params);

/** Convenience wrapper around saveParams targeting a file path. */
void saveParamsToFile(const std::string &path,
                      const std::vector<Param *> &params);

/** Convenience wrapper around loadParams reading a file path. */
void loadParamsFromFile(const std::string &path,
                        const std::vector<Param *> &params);

class StandardScaler;

/** Write a fitted scaler's statistics (mean/std per column). */
void saveScaler(std::ostream &out, const StandardScaler &scaler);

/**
 * Typed-error variant of loadScaler.  The declared width of an
 * untrusted file is sanity-capped (Geometry error) before any
 * allocation, so a corrupt header cannot trigger a huge allocation.
 */
[[nodiscard]] Result<void>
tryLoadScaler(std::istream &in, StandardScaler &scaler);

/** Restore a scaler saved with saveScaler. */
void loadScaler(std::istream &in, StandardScaler &scaler);

/** Write non-trainable state tensors (shapes must match on load). */
void saveStateTensors(std::ostream &out,
                      const std::vector<Matrix *> &tensors);

/** Typed-error variant of loadStateTensors. */
[[nodiscard]] Result<void> tryLoadStateTensors(std::istream &in,
                                 const std::vector<Matrix *> &tensors);

/** Restore state tensors saved with saveStateTensors. */
void loadStateTensors(std::istream &in,
                      const std::vector<Matrix *> &tensors);

} // namespace adrias::ml

#endif // ADRIAS_ML_SERIALIZE_HH
