/**
 * @file
 * Lightweight tracer (DESIGN.md §10): spans and instant events stamped
 * either in simulation time (SimTime seconds) or on the wall clock,
 * exported as a JSONL event stream and as Chrome trace_event JSON that
 * loads directly in about:tracing / Perfetto.
 *
 * Lane model: Chrome's pid/tid fields are repurposed.  pid 0 is the
 * simulation clock, pid 1 the wall clock — the two time bases never
 * share an axis.  tid is the obs "lane" (obs::ScopedLane), which the
 * scenario sweep sets per seed so overlapping simulations stay on
 * separate rows.
 *
 * Recording is gated on an atomic enabled flag (one relaxed load when
 * off) and bounded by kMaxEvents; overflow increments droppedEvents()
 * instead of growing without limit.  Under -DADRIAS_OBS=OFF the tracer
 * cannot be enabled and every record call is a no-op.
 */

#ifndef ADRIAS_OBS_TRACE_HH
#define ADRIAS_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"
#include "common/types.hh"

#ifndef ADRIAS_OBS_ENABLED
#define ADRIAS_OBS_ENABLED 1
#endif

namespace adrias::obs
{

/** One key plus a pre-rendered JSON value ("7", "1.5", "\"local\""). */
struct TraceArg
{
    std::string key;
    std::string json;
};

/** Build a numeric argument (non-finite doubles render as null). */
TraceArg arg(const std::string &key, double value);

/** Build an integer argument. */
TraceArg arg(const std::string &key, std::int64_t value);

/** Build a string argument (quoted and escaped). */
TraceArg arg(const std::string &key, const std::string &value);

/** Build a string argument from a literal. */
TraceArg arg(const std::string &key, const char *value);

/** One recorded event (Chrome trace_event field subset). */
struct TraceEvent
{
    std::string name;
    std::string cat;

    /** 'X' = complete span, 'i' = instant. */
    char phase = 'X';

    /** Timestamp in microseconds on the event's clock. */
    std::int64_t tsMicros = 0;

    /** Span duration in microseconds ('X' only). */
    std::int64_t durMicros = 0;

    /** true: wall-clock lane (pid 1); false: sim lane (pid 0). */
    bool wallClock = false;

    /** Row within the lane (obs::ScopedLane; 0 = main). */
    int lane = 0;

    std::vector<TraceArg> args;
};

/** Process-wide trace collector. */
class Tracer
{
  public:
    /** Event cap; further records are counted as dropped. */
    static constexpr std::size_t kMaxEvents = 1u << 20;

    /** The process-wide tracer. */
    static Tracer &global();

    /** Turn recording on/off (no-op under ADRIAS_OBS=OFF). */
    void setEnabled(bool on);

    /** @return true while recording. */
    bool
    enabled() const
    {
        return recording.load(std::memory_order_relaxed);
    }

    /**
     * Record a simulation-time span [begin, end] (whole seconds on the
     * sim clock, rendered as microseconds in the trace).
     */
    void simSpan(const std::string &name, const std::string &cat,
                 SimTime begin, SimTime end,
                 std::vector<TraceArg> args = {}) ADRIAS_EXCLUDES(mu);

    /** Record a simulation-time instant event. */
    void simInstant(const std::string &name, const std::string &cat,
                    SimTime t, std::vector<TraceArg> args = {})
        ADRIAS_EXCLUDES(mu);

    /**
     * Record a wall-clock span [begin, end] in seconds since the
     * tracer's epoch (values from wallNow()).
     */
    void wallSpan(const std::string &name, const std::string &cat,
                  double begin_s, double end_s,
                  std::vector<TraceArg> args = {}) ADRIAS_EXCLUDES(mu);

    /**
     * @return monotonic seconds since the tracer singleton was
     * created.  The single sanctioned wall-clock read in src/ outside
     * bench code: kernel timing needs real time by definition.
     */
    double wallNow() const;

    /** @return number of recorded events. */
    std::size_t eventCount() const ADRIAS_EXCLUDES(mu);

    /** @return events discarded after the kMaxEvents cap was hit. */
    std::size_t droppedEvents() const ADRIAS_EXCLUDES(mu);

    /** @return a copy of every recorded event (tests, exporters). */
    std::vector<TraceEvent> snapshot() const ADRIAS_EXCLUDES(mu);

    /** Discard all recorded events and the dropped tally. */
    void clear() ADRIAS_EXCLUDES(mu);

    /** Write the Chrome trace_event JSON document (about:tracing). */
    void writeChromeTrace(std::ostream &out) const ADRIAS_EXCLUDES(mu);

    /** Write one JSON object per event per line (events.jsonl). */
    void writeJsonl(std::ostream &out) const ADRIAS_EXCLUDES(mu);

  private:
    Tracer();

    void push(TraceEvent event) ADRIAS_EXCLUDES(mu);

    std::atomic<bool> recording{false};

    mutable Mutex mu;
    std::vector<TraceEvent> events ADRIAS_GUARDED_BY(mu);
    std::size_t dropped ADRIAS_GUARDED_BY(mu) = 0;

    /** wallNow() epoch, seconds (monotonic source, set at startup). */
    double epochSeconds ADRIAS_LOCK_FREE(
        "set once in the constructor, before any recording thread "
        "exists") = 0.0;
};

/** @return the calling thread's trace lane (0 = main). */
int currentLane();

namespace detail
{
/** Swap the calling thread's lane; @return the previous lane. */
int exchangeLane(int lane);
} // namespace detail

/**
 * Scoped trace lane: events recorded by this thread inside the scope
 * carry `lane` as their tid, so e.g. the scenario sweep's overlapping
 * per-seed simulations land on separate about:tracing rows.
 */
class ScopedLane
{
  public:
    explicit ScopedLane(int lane) : previous(detail::exchangeLane(lane))
    {
    }

    ~ScopedLane() { detail::exchangeLane(previous); }

    ScopedLane(const ScopedLane &) = delete;
    ScopedLane &operator=(const ScopedLane &) = delete;

  private:
    int previous;
};

/**
 * RAII wall-clock span: one clock read at construction and one at
 * destruction, recorded only while the tracer is enabled.  Cheap
 * enough for per-tick scopes (a single relaxed load when disabled).
 */
class WallSpan
{
  public:
    WallSpan(const char *name, const char *cat);

    /** Span with arguments (only materialised while tracing). */
    WallSpan(const char *name, const char *cat,
             std::vector<TraceArg> args);

    ~WallSpan();

    WallSpan(const WallSpan &) = delete;
    WallSpan &operator=(const WallSpan &) = delete;

  private:
    const char *spanName;
    const char *category;
    std::vector<TraceArg> spanArgs;
    double beginSeconds = 0.0;
    bool active = false;
};

} // namespace adrias::obs

#endif // ADRIAS_OBS_TRACE_HH
