/**
 * @file
 * Fig. 9 — Spark performance distributions across randomized scenarios,
 * split by memory mode.
 *
 * Expected shape: remote distributions shift toward higher execution
 * times; gmm-like apps overlap between modes while nweight-like apps
 * separate cleanly.
 */

#include <iostream>
#include <map>

#include "bench/common.hh"

int
main()
{
    using namespace adrias;
    bench::banner("Fig. 9 — BE execution-time distributions over "
                  "scenarios",
                  "remote distributions shifted up; overlap for gmm, "
                  "clear separation for nweight");

    const auto scenarios =
        static_cast<std::size_t>(bench::envInt("ADRIAS_BENCH_SCENARIOS",
                                               4));
    std::map<std::string, std::vector<double>> local_times, remote_times;
    for (std::size_t i = 0; i < scenarios; ++i) {
        for (SimTime spawn_max : {20, 40, 60}) {
            scenario::ScenarioRunner runner(bench::evalScenario(
                1000 + i * 10 + static_cast<std::uint64_t>(spawn_max),
                spawn_max));
            scenario::RandomPlacement policy(1100 + i);
            const auto result = runner.run(policy);
            for (const auto &record : result.records) {
                if (record.cls != WorkloadClass::BestEffort)
                    continue;
                auto &bucket = record.mode == MemoryMode::Remote
                                   ? remote_times[record.name]
                                   : local_times[record.name];
                bucket.push_back(record.execTimeSec);
            }
        }
    }

    TextTable table({"benchmark", "n loc", "med loc (s)", "p75 loc",
                     "n rem", "med rem (s)", "p75 rem", "med rem/loc"});
    for (const auto &spec : workloads::sparkBenchmarks()) {
        const auto &local = local_times[spec.name];
        const auto &remote = remote_times[spec.name];
        if (local.empty() || remote.empty())
            continue;
        const auto ls = stats::DistributionSummary::from(local);
        const auto rs = stats::DistributionSummary::from(remote);
        table.addRow(spec.name,
                     {static_cast<double>(ls.count), ls.median, ls.p75,
                      static_cast<double>(rs.count), rs.median, rs.p75,
                      rs.median / ls.median},
                     1);
    }
    std::cout << table.toString();
    std::cout << "\nShape check: med rem/loc near 1 for gmm/pca, high "
                 "for nweight/lr; remote tails heavier overall.\n";
    return 0;
}
