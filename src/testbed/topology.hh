/**
 * @file
 * Rack-scale topology description: M compute nodes sharing N memory
 * servers over heterogeneous links.
 *
 * The paper's prototype is a single borrower/lender pair; a rack
 * generalizes it to a bipartite graph.  Each memory server owns a
 * contiguous slice of the rack's global remote address space (the
 * owned-address-range scheme of disaggregated memory controllers) and
 * exposes an allocatable capacity; each link connects one compute node
 * to one memory server with a named latency/bandwidth tier
 * (link_profiles.hh).  The paper's two-node testbed is the registered
 * "paper-pair" topology, and the equivalence guarantee (DESIGN.md §14)
 * pins its behaviour to the legacy single-channel model bit for bit.
 */

#ifndef ADRIAS_TESTBED_TOPOLOGY_HH
#define ADRIAS_TESTBED_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "testbed/link_profiles.hh"
#include "testbed/params.hh"

namespace adrias::testbed
{

/** A contiguous slice of the rack's remote address space, GiB units. */
struct AddressRange
{
    /** First GiB owned by the server. */
    std::uint64_t baseGb = 0;

    /** Number of GiB owned (may be 0 for a drained server). */
    std::uint64_t sizeGb = 0;

    /** One past the last owned GiB. */
    std::uint64_t endGb() const { return baseGb + sizeGb; }

    /** @return true when `gb` falls inside the range. */
    bool
    contains(std::uint64_t gb) const
    {
        return gb >= baseGb && gb < endGb();
    }

    /** @return true when the two ranges share at least one GiB. */
    bool
    overlaps(const AddressRange &other) const
    {
        return baseGb < other.endGb() && other.baseGb < endGb();
    }
};

/** One memory server (lender) of the rack. */
struct MemoryServerDesc
{
    /** Unique name, e.g. "s0". */
    std::string name;

    /** Allocatable capacity, GB (0 models a drained/dead server). */
    double capacityGb = 256.0;

    /** DRAM bandwidth at the server's controllers, GB/s. */
    double bandwidthGBps = 15.0;

    /** Owned slice of the rack's remote address space. */
    AddressRange range{};
};

/** One compute node (borrower) of the rack. */
struct ComputeNodeDesc
{
    /** Unique name, e.g. "n0". */
    std::string name;

    /**
     * Node-local calibration (cores, LLC, local DRAM).  The channel
     * fields are ignored in rack mode — links carry their own profile.
     */
    TestbedParams local{};
};

/** One directed compute-node → memory-server link. */
struct LinkDesc
{
    /** Unique name, e.g. "n0-s1" (fault schedules target this). */
    std::string name;

    /** Index of the compute node endpoint. */
    std::size_t node = 0;

    /** Index of the memory server endpoint. */
    std::size_t server = 0;

    /** Latency/bandwidth tier of this link. */
    LinkProfile profile = kThymesisFlowProfile;
};

/**
 * An immutable-after-validation rack description.
 *
 * Build with the fluent add* API (or a named factory), then call
 * validate() once; the simulation layers treat a validated Topology as
 * configuration and never mutate it.
 */
class Topology
{
  public:
    /** Human-readable topology name ("paper-pair", "rack-4x4", ...). */
    explicit Topology(std::string name = "custom");

    /** Append a compute node. @return *this for chaining. */
    Topology &addNode(ComputeNodeDesc node);

    /**
     * Append a memory server.  When `server.range.sizeGb` is zero the
     * owned range is auto-assigned: capacityGb (rounded up) GiB starting
     * right after the highest range assigned so far.
     */
    Topology &addServer(MemoryServerDesc server);

    /**
     * Append a link.  An empty name defaults to "<node>-<server>"
     * built from the endpoint names.
     */
    Topology &addLink(std::size_t node, std::size_t server,
                      const LinkProfile &profile, std::string name = "");

    /**
     * Check structural consistency: at least one node, unique names,
     * link endpoints in range, no duplicate (node, server) links, no
     * overlapping owned address ranges, non-negative capacities.
     * Fatal on violation; returns *this so factories can chain it.
     */
    Topology &validate();

    const std::string &name() const { return topologyName; }

    std::size_t nodeCount() const { return nodes.size(); }
    std::size_t serverCount() const { return servers.size(); }
    std::size_t linkCount() const { return links.size(); }

    const ComputeNodeDesc &node(std::size_t i) const;
    const MemoryServerDesc &server(std::size_t i) const;
    const LinkDesc &link(std::size_t i) const;

    /** Indices of the links leaving one compute node, ascending. */
    const std::vector<std::size_t> &linksFrom(std::size_t node) const;

    /** Indices of the links entering one memory server, ascending. */
    const std::vector<std::size_t> &linksInto(std::size_t server) const;

    /** Link index connecting (node, server), or -1 when absent. */
    std::int64_t linkBetween(std::size_t node, std::size_t server) const;

    /** Link index by its unique name, or -1 when unknown. */
    std::int64_t linkIndexByName(const std::string &name) const;

    /** Server owning a global remote address (GiB), or -1. */
    std::int64_t serverOwning(std::uint64_t addressGb) const;

    /** Total allocatable remote capacity across servers, GB. */
    double totalCapacityGb() const;

    /**
     * @return true when this is exactly the paper's two-node prototype:
     * one compute node, one memory server, one ThymesisFlow link.
     */
    bool isPaperPair() const;

    // --- named factories ----------------------------------------------

    /** The paper's testbed: 1 node, 1 server, 1 ThymesisFlow link. */
    static Topology paperPair(TestbedParams params = {});

    /**
     * Full bipartite M×N rack: every node linked to every server with
     * the same profile; servers sized uniformly.
     */
    static Topology symmetric(std::size_t nodes, std::size_t servers,
                              const LinkProfile &profile,
                              double server_capacity_gb = 256.0,
                              TestbedParams node_params = {});

    /**
     * N independent paper pairs (the pre-rack cluster model): node i is
     * linked only to server i over a ThymesisFlow link.
     */
    static Topology independentPairs(std::size_t pairs,
                                     TestbedParams params = {});

    /**
     * The 4×4 asymmetric conformance topology: four nodes, four servers
     * of decreasing capacity (including one drained 0 GB server), and a
     * mixed CXL/RDMA/ThymesisFlow link set with one node connected to
     * every server and one node connected to a single server.
     */
    static Topology asymmetric4x4();

  private:
    std::string topologyName;
    std::vector<ComputeNodeDesc> nodes;
    std::vector<MemoryServerDesc> servers;
    std::vector<LinkDesc> links;

    /** Per-node / per-server link indices, rebuilt by validate(). */
    std::vector<std::vector<std::size_t>> nodeLinks;
    std::vector<std::vector<std::size_t>> serverLinks;

    /** Next auto-assigned address-range base, GiB. */
    std::uint64_t nextRangeBaseGb = 0;

    bool validated = false;

    void requireValidated(const char *what) const;
};

/**
 * Resolve a registered topology by name: "paper-pair",
 * "rack-2x2-cxl" (2×2, all-CXL), "rack-4x4-mixed" (the asymmetric
 * conformance rack) or "pairs-<n>" (n independent paper pairs).
 *
 * @throws std::runtime_error on an unknown name.
 */
Topology topologyByName(const std::string &name);

/** @return the names topologyByName accepts (fixed registry only). */
std::vector<std::string> knownTopologyNames();

} // namespace adrias::testbed

#endif // ADRIAS_TESTBED_TOPOLOGY_HH
