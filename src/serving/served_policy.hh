/**
 * @file
 * Scenario adapter for the DecisionService: a PlacementPolicy whose
 * answers come from the batched serving path instead of the inline
 * AdriasOrchestrator.  Lets every existing scenario/testbed harness
 * exercise the daemon end-to-end, and lets the golden tests compare
 * served decisions against the inline rules tick-for-tick.
 */

#ifndef ADRIAS_SERVING_SERVED_POLICY_HH
#define ADRIAS_SERVING_SERVED_POLICY_HH

#include <string>

#include "scenario/placement.hh"
#include "serving/decision_service.hh"

namespace adrias::serving
{

/** Adapter knobs. */
struct ServedPolicyConfig
{
    /** Ticks granted between submit and decision (exclusive). */
    SimTime deadlineTicks = 8;

    /** Epoch refresh cadence: a new snapshot at most every this many
     *  ticks (the runner's watcher is re-captured for every shard). */
    SimTime epochTicks = 10;
};

/**
 * Synchronous façade over the DecisionService for the scenario runner:
 * place() submits one request on its deterministic shard and drains the
 * service for the answer the same tick, so scenarios observe the same
 * request/decide cycle a live deployment would — epochs, batching and
 * stats included.
 */
class ServedPlacementPolicy : public scenario::PlacementPolicy
{
  public:
    /**
     * @param service the serving daemon (borrowed; this policy is its
     *        only producer AND its consumer driver).
     * @param signatures mutable registry for bootstrap capture at
     *        completion — must be the same store the service reads.
     */
    ServedPlacementPolicy(DecisionService &service,
                          scenario::SignatureStore &signatures,
                          ServedPolicyConfig config = {});

    std::string name() const override { return "adrias-served"; }

    MemoryMode place(const workloads::WorkloadSpec &spec,
                     const telemetry::Watcher &watcher,
                     SimTime now) override;

    void onCompletion(const scenario::DeploymentRecord &record) override;

  private:
    /** Refresh the service's epoch snapshot when the cadence is due. */
    void refreshEpoch(const telemetry::Watcher &watcher, SimTime now);

    DecisionService *service;
    scenario::SignatureStore *signatures;
    ServedPolicyConfig knobs;
    DeploymentId nextId = 0;
    bool epochStarted = false;
    SimTime nextEpochAt = 0;
};

} // namespace adrias::serving

#endif // ADRIAS_SERVING_SERVED_POLICY_HH
