/**
 * @file
 * Plain-text table formatting for bench binaries.
 *
 * Every bench prints the rows/series of one paper table or figure; this
 * helper keeps the output aligned and uniform across binaries.
 */

#ifndef ADRIAS_COMMON_TABLE_HH
#define ADRIAS_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace adrias
{

/**
 * Column-aligned text table builder.
 *
 * Usage: construct with header cells, addRow() repeatedly, then print
 * toString() to stdout.
 */
class TextTable
{
  public:
    /** @param header column titles; fixes the column count. */
    explicit TextTable(std::vector<std::string> header);

    /**
     * Append one row.
     *
     * @param cells must have exactly as many entries as the header.
     */
    void addRow(std::vector<std::string> cells);

    /** Append a row of already-formatted numeric cells. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 3);

    /** @return the formatted table, newline-terminated. */
    std::string toString() const;

    /** @return number of data rows added so far. */
    std::size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with fixed precision (bench-table convention). */
std::string formatDouble(double value, int precision = 3);

/** Render a horizontal ASCII bar of proportional length. */
std::string asciiBar(double value, double maxValue, int width = 40);

} // namespace adrias

#endif // ADRIAS_COMMON_TABLE_HH
