# Empty dependencies file for fig03_lc_isolation.
# This may be replaced when dependencies are built.
