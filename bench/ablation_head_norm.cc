/**
 * @file
 * Ablation — head normalization flavour (design choice of DESIGN.md
 * §5): batch normalization (the paper's architecture) versus layer
 * normalization (this reproduction's default) in the system-state
 * model, plus a no-future ablation echo for the performance model.
 *
 * Expected: LayerNorm clearly outperforms BatchNorm at inference
 * because the spiky channel counters make small-batch statistics
 * untransferable to single-sample prediction.
 */

#include <iostream>

#include "bench/common.hh"
#include "models/system_state.hh"

int
main()
{
    using namespace adrias;
    bench::banner("Ablation — BatchNorm vs LayerNorm prediction heads",
                  "(reproduction design choice; no paper counterpart)");

    std::vector<scenario::ScenarioResult> results;
    const auto scenarios = static_cast<std::size_t>(
        bench::envInt("ADRIAS_BENCH_SCENARIOS", 4));
    for (std::size_t i = 0; i < scenarios; ++i) {
        scenario::ScenarioRunner runner(bench::evalScenario(6000 + i, 30));
        scenario::RandomPlacement policy(6100 + i);
        results.push_back(runner.run(policy));
    }
    auto samples = scenario::DatasetBuilder::systemState(results, 5);
    auto [train, test] =
        scenario::splitDataset(std::move(samples), 0.6, 17);

    TextTable table({"head norm", "epochs", "test R^2 (avg)",
                     "min event R^2"});
    for (auto norm : {ml::HeadNorm::Batch, ml::HeadNorm::Layer}) {
        for (std::size_t epochs : {20, 40}) {
            models::ModelConfig config;
            config.headNorm = norm;
            config.epochs = epochs;
            models::SystemStateModel model(config);
            model.train(train);
            const auto eval = model.evaluate(test);
            double min_r2 = 1.0;
            for (double r2 : eval.r2PerEvent)
                min_r2 = std::min(min_r2, r2);
            table.addRow(norm == ml::HeadNorm::Batch ? "batch" : "layer",
                         {static_cast<double>(epochs), eval.r2Average,
                          min_r2},
                         3);
        }
    }
    std::cout << table.toString();
    std::cout << "\nShape check: the layer rows dominate, most visibly "
                 "in the min-event column (channel counters).\n";
    return 0;
}
