/** @file Round-trip tests for dataset CSV persistence. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.hh"
#include "scenario/dataset_io.hh"

namespace adrias::scenario
{
namespace
{

using testbed::kNumPerfEvents;

constexpr std::size_t kBins = ScenarioRunner::kWindowBins;

std::vector<ml::Matrix>
randomSequence(Rng &rng)
{
    std::vector<ml::Matrix> sequence;
    for (std::size_t b = 0; b < kBins; ++b) {
        ml::Matrix step(1, kNumPerfEvents);
        for (double &v : step.raw())
            v = rng.uniform(0.0, 1000.0);
        sequence.push_back(std::move(step));
    }
    return sequence;
}

ml::Matrix
randomVector(Rng &rng)
{
    ml::Matrix vec(1, kNumPerfEvents);
    for (double &v : vec.raw())
        v = rng.uniform(0.0, 1000.0);
    return vec;
}

void
expectSequencesEqual(const std::vector<ml::Matrix> &a,
                     const std::vector<ml::Matrix> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t)
        EXPECT_LT((a[t] - b[t]).maxAbs(), 1e-6);
}

TEST(SystemStateCsv, RoundTrip)
{
    Rng rng(1);
    std::vector<SystemStateSample> samples;
    for (int i = 0; i < 5; ++i) {
        SystemStateSample sample;
        sample.history = randomSequence(rng);
        sample.target = randomVector(rng);
        samples.push_back(std::move(sample));
    }
    const std::string path = ::testing::TempDir() + "adrias_ss.csv";
    saveSystemStateCsv(path, samples);
    const auto loaded = loadSystemStateCsv(path);

    ASSERT_EQ(loaded.size(), samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        expectSequencesEqual(loaded[i].history, samples[i].history);
        EXPECT_LT((loaded[i].target - samples[i].target).maxAbs(), 1e-6);
    }
    std::remove(path.c_str());
}

TEST(SystemStateCsv, RejectsMissingAndMalformed)
{
    EXPECT_THROW(loadSystemStateCsv("/no/such/file.csv"),
                 std::runtime_error);
    const std::string path = ::testing::TempDir() + "adrias_bad.csv";
    {
        std::ofstream out(path);
        out << "not-a-dataset\n1,2,3\n";
    }
    EXPECT_THROW(loadSystemStateCsv(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(PerformanceCsv, RoundTrip)
{
    Rng rng(2);
    std::vector<PerformanceSample> samples;
    for (int i = 0; i < 4; ++i) {
        PerformanceSample sample;
        sample.name = i % 2 ? "nweight" : "redis";
        sample.cls = i % 2 ? WorkloadClass::BestEffort
                           : WorkloadClass::LatencyCritical;
        sample.mode =
            i % 3 ? MemoryMode::Remote : MemoryMode::Local;
        sample.history = randomSequence(rng);
        sample.signature = randomSequence(rng);
        sample.futureWindow = randomVector(rng);
        sample.futureExec = randomVector(rng);
        sample.target = rng.uniform(1.0, 500.0);
        samples.push_back(std::move(sample));
    }
    const std::string path = ::testing::TempDir() + "adrias_perf.csv";
    savePerformanceCsv(path, samples);
    const auto loaded = loadPerformanceCsv(path);

    ASSERT_EQ(loaded.size(), samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_EQ(loaded[i].name, samples[i].name);
        EXPECT_EQ(loaded[i].cls, samples[i].cls);
        EXPECT_EQ(loaded[i].mode, samples[i].mode);
        EXPECT_NEAR(loaded[i].target, samples[i].target, 1e-6);
        expectSequencesEqual(loaded[i].history, samples[i].history);
        expectSequencesEqual(loaded[i].signature, samples[i].signature);
        EXPECT_LT(
            (loaded[i].futureWindow - samples[i].futureWindow).maxAbs(),
            1e-6);
        EXPECT_LT(
            (loaded[i].futureExec - samples[i].futureExec).maxAbs(),
            1e-6);
    }
    std::remove(path.c_str());
}

TEST(PerformanceCsv, LoadedDataTrainsAModel)
{
    // The persisted dataset must be usable exactly like the original:
    // real end-to-end check through a scenario + training.
    ScenarioConfig config;
    config.durationSec = 1200;
    config.spawnMinSec = 5;
    config.spawnMaxSec = 20;
    config.seed = 77;
    ScenarioRunner runner(config);
    RandomPlacement policy(78);
    std::vector<ScenarioResult> results{runner.run(policy)};
    SignatureStore signatures;
    collectAllSignatures(signatures);

    const auto original = DatasetBuilder::performance(
        results, signatures, WorkloadClass::BestEffort);
    ASSERT_GE(original.size(), 8u);

    const std::string path = ::testing::TempDir() + "adrias_e2e.csv";
    savePerformanceCsv(path, original);
    const auto loaded = loadPerformanceCsv(path);
    EXPECT_EQ(loaded.size(), original.size());
    std::remove(path.c_str());
}

} // namespace
} // namespace adrias::scenario
