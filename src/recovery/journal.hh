/**
 * @file
 * Write-ahead decision journal (DESIGN.md §12).
 *
 * Checkpoints are periodic; everything that happens between two of
 * them must be reconstructible after a crash.  The simulation itself
 * is deterministic given its checkpointed RNG streams, so the journal
 * only needs to record the one externally-visible commitment made each
 * tick: placement decisions.  Each decision is appended — and flushed
 * — BEFORE it takes effect (the DecisionSink contract), so the on-disk
 * journal is always at least as advanced as the in-memory run.
 *
 * Recovery replays an epoch's journal against the restored engine: the
 * policy re-derives every decision from its restored RNG stream and
 * the engine cross-checks it against the journaled one, turning any
 * determinism bug into a loud panic instead of a silent fork.
 *
 * One journal file per checkpoint epoch (journal-<snapshotTick>.adj):
 * rotating the journal together with the snapshot keeps each file
 * exactly the delta since one snapshot, so fallback to an older
 * snapshot just replays more epochs.
 */

#ifndef ADRIAS_RECOVERY_JOURNAL_HH
#define ADRIAS_RECOVERY_JOURNAL_HH

#include <string>
#include <vector>

#include "common/error.hh"
#include "common/io/durable_file.hh"
#include "scenario/engine.hh"

namespace adrias::recovery
{

/** Append-only durable log of placement decisions for one epoch. */
class DecisionJournal : public scenario::DecisionSink
{
  public:
    /**
     * Open an epoch file: truncate + header for a new epoch, or
     * position after existing records (`append` = true) to continue
     * the epoch a crash interrupted.
     */
    [[nodiscard]] Result<void> open(const std::string &path,
                                    bool append = false);

    /** Flush and close the current epoch file. */
    void close();

    /** @return true while an epoch file is open. */
    bool isOpen() const { return writer.isOpen(); }

    /** Decisions appended through this journal since open(). */
    std::size_t appendCount() const { return writer.appendCount(); }

    /** Install a kill-point hook on the underlying writer. */
    void
    setChaosHook(io::WriteChaosHook hook)
    {
        writer.setChaosHook(std::move(hook));
    }

    /**
     * DecisionSink: make `decision` durable before it is applied.
     *
     * A genuine I/O failure here breaks the write-ahead guarantee —
     * continuing would let a later crash lose an applied decision — so
     * it is fatal() rather than a soft error.
     */
    void onDecision(const scenario::PlacementDecision &decision) override;

    /** Binary payload of one journal record. */
    static std::string encode(const scenario::PlacementDecision &decision);

    /** Inverse of encode(). @return Truncated/BadNumber on skew. */
    [[nodiscard]] static Result<scenario::PlacementDecision>
    decode(std::string_view payload);

    /** Decisions recovered from one epoch file. */
    struct LoadResult
    {
        std::vector<scenario::PlacementDecision> decisions;

        /** True when a torn/corrupt tail was dropped and compacted. */
        bool tornTail = false;

        /** Bytes the compaction discarded. */
        std::size_t droppedBytes = 0;
    };

    /**
     * Read an epoch file tolerantly and, when the tail is torn (a
     * crash mid-append), atomically rewrite the file without the torn
     * bytes so a later open(append) continues from a clean frame
     * boundary.
     *
     * @return Io/Truncated/BadHeader when the file is unusable, or a
     *         decode error when a CRC-valid record fails to parse
     *         (version skew, not corruption).
     */
    [[nodiscard]] static Result<LoadResult>
    loadAndCompact(const std::string &path);

  private:
    io::RecordFileWriter writer;
    std::string path;
};

} // namespace adrias::recovery

#endif // ADRIAS_RECOVERY_JOURNAL_HH
