// Lint fixture: deliberate raw-ofstream violations.  Never compiled.
#include <fstream>

void
dumpTorn()
{
    std::ofstream out("dump.txt"); // line 7: raw-ofstream
    out << 1;
}

void
alias()
{
    using std::ofstream; // line 14: raw-ofstream (alias counts too)
}

void
sanctionedLayer()
{
    // NOLINTNEXTLINE(raw-ofstream): pretend DurableFile internals.
    std::ofstream out("layer.bin");
    out << 2;
    std::ifstream in("layer.bin"); // reads are fine
    (void)in;
}
