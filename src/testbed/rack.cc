#include "testbed/rack.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/invariant.hh"
#include "common/logging.hh"
#include "testbed/testbed.hh"

namespace adrias::testbed
{

void
checkRackTickInvariants(const std::vector<LoadDescriptor> &loads,
                        const RackTickResult &result, const Topology &topo,
                        const std::vector<double> &link_bw_scale)
{
    // Resolved shares can land exactly on a cap; allow rounding slack.
    constexpr double kRelTol = 1.0 + 1e-9;
    constexpr double kAbsTol = 1e-9;

    ADRIAS_INVARIANT(result.outcomes.size() == loads.size(),
                     "outcomes=" + std::to_string(result.outcomes.size()) +
                         " loads=" + std::to_string(loads.size()));
    ADRIAS_INVARIANT(result.nodes.size() == topo.nodeCount(),
                     "node stats size mismatch");
    ADRIAS_INVARIANT(result.links.size() == topo.linkCount(),
                     "link stats size mismatch");
    ADRIAS_INVARIANT(result.servers.size() == topo.serverCount(),
                     "server stats size mismatch");

    // Re-derive every per-link / per-server / per-node sum from the
    // outcomes so a contention bug on one link cannot be masked by
    // slack on another.
    std::vector<double> link_achieved(topo.linkCount(), 0.0);
    std::vector<double> server_achieved(topo.serverCount(), 0.0);
    std::vector<double> node_local(topo.nodeCount(), 0.0);
    std::vector<double> node_remote(topo.nodeCount(), 0.0);
    std::vector<double> node_llc_mb(topo.nodeCount(), 0.0);

    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
        const LoadOutcome &outcome = result.outcomes[i];
        const LoadDescriptor &load = loads[i];
        ADRIAS_INVARIANT_FINITE(outcome.achievedGBps);
        ADRIAS_INVARIANT_GE(outcome.achievedGBps, 0.0);
        ADRIAS_INVARIANT_FINITE(outcome.latencyNs);
        ADRIAS_INVARIANT_GE(outcome.latencyNs, 0.0);
        ADRIAS_INVARIANT_FINITE(outcome.slowdown);
        ADRIAS_INVARIANT_GE(outcome.slowdown, 1.0);
        ADRIAS_INVARIANT_GE(outcome.hitRate, 0.0);
        ADRIAS_INVARIANT_LE(outcome.hitRate,
                            load.baseHitRate * kRelTol + kAbsTol);
        // No deployment achieves more than its own unimpeded demand
        // (every throttle and share is <= 1).
        ADRIAS_INVARIANT_LE(outcome.achievedGBps,
                            load.memDemandGBps * kRelTol + kAbsTol);

        if (load.mode == MemoryMode::Remote) {
            link_achieved[load.link] += outcome.achievedGBps;
            server_achieved[load.server] += outcome.achievedGBps;
            node_remote[load.node] += outcome.achievedGBps;
        } else {
            node_local[load.node] += outcome.achievedGBps;
        }
        if (load.baseHitRate > 0.0) {
            node_llc_mb[load.node] += load.cacheFootprintMb *
                                      outcome.hitRate / load.baseHitRate;
        }
    }

    for (std::size_t l = 0; l < topo.linkCount(); ++l) {
        const LinkTickStats &stats = result.links[l];
        const double scale =
            l < link_bw_scale.size() ? link_bw_scale[l] : 1.0;
        const double cap = topo.link(l).profile.bandwidthGBps * scale;

        ADRIAS_INVARIANT_FINITE(stats.offeredGBps);
        ADRIAS_INVARIANT_GE(stats.offeredGBps, 0.0);
        ADRIAS_INVARIANT_GE(stats.queuedGBps, 0.0);
        // Reported per-link delivery equals the sum over outcomes.
        ADRIAS_INVARIANT_LE(
            std::fabs(stats.achievedGBps - link_achieved[l]),
            kAbsTol + 1e-9 * link_achieved[l]);
        // Conservation: bytes in = bytes out + queued.
        ADRIAS_INVARIANT_LE(std::fabs(stats.offeredGBps -
                                      stats.achievedGBps -
                                      stats.queuedGBps),
                            kAbsTol + 1e-9 * stats.offeredGBps);
        // Delivery never exceeds the (fault-derated) link capacity.
        ADRIAS_INVARIANT_LE(link_achieved[l], cap * kRelTol + kAbsTol);
        ADRIAS_INVARIANT_FINITE(stats.pressure);
        ADRIAS_INVARIANT_GE(stats.pressure, 0.0);
        ADRIAS_INVARIANT_FINITE(stats.latencyCycles);
        ADRIAS_INVARIANT_GE(stats.latencyCycles * kRelTol,
                            topo.link(l).profile.latencyBaseCycles);
        for (double value : stats.counters) {
            ADRIAS_INVARIANT_FINITE(value);
            ADRIAS_INVARIANT_GE(value, 0.0);
        }
    }

    for (std::size_t s = 0; s < topo.serverCount(); ++s) {
        const ServerTickStats &stats = result.servers[s];
        ADRIAS_INVARIANT_LE(
            std::fabs(stats.achievedGBps - server_achieved[s]),
            kAbsTol + 1e-9 * server_achieved[s]);
        // Server controllers never sustain more than their DRAM cap.
        ADRIAS_INVARIANT_LE(server_achieved[s],
                            topo.server(s).bandwidthGBps * kRelTol +
                                kAbsTol);
        ADRIAS_INVARIANT_GE(stats.allocatedGb, 0.0);
        ADRIAS_INVARIANT_LE(stats.allocatedGb,
                            topo.server(s).capacityGb * kRelTol + kAbsTol);
    }

    for (std::size_t n = 0; n < topo.nodeCount(); ++n) {
        const NodeTickStats &stats = result.nodes[n];
        const TestbedParams &params = topo.node(n).local;
        // R3: remote traffic terminates in the local controllers too.
        const double local_total = node_local[n] + node_remote[n];
        ADRIAS_INVARIANT_LE(std::fabs(stats.localTrafficGBps - local_total),
                            kAbsTol + 1e-9 * local_total);
        ADRIAS_INVARIANT_LE(local_total,
                            params.localBwGBps * kRelTol + kAbsTol);
        ADRIAS_INVARIANT_LE(
            std::fabs(stats.remoteTrafficGBps - node_remote[n]),
            kAbsTol + 1e-9 * node_remote[n]);
        // Resident LLC occupancy shares sum to at most one capacity.
        ADRIAS_INVARIANT_LE(node_llc_mb[n],
                            params.llcCapacityMb * kRelTol + kAbsTol);
        ADRIAS_INVARIANT_FINITE(stats.cpuFactor);
        ADRIAS_INVARIANT_GE(stats.cpuFactor, 0.0);
        ADRIAS_INVARIANT_LE(stats.cpuFactor, 1.0 * kRelTol);
        for (double value : stats.counters) {
            ADRIAS_INVARIANT_FINITE(value);
            ADRIAS_INVARIANT_GE(value, 0.0);
        }
    }
}

RackTestbed::RackTestbed(Topology topology, std::uint64_t seed)
    : topo(std::move(topology)), rng(seed)
{
    topo.validate();
    linkBwScale.assign(topo.linkCount(), 1.0);
    linkLatencyScale.assign(topo.linkCount(), 1.0);
    allocated.assign(topo.serverCount(), 0.0);
    totals.assign(topo.linkCount(), LinkTotals{});
    for (std::size_t n = 0; n < topo.nodeCount(); ++n) {
        const TestbedParams &params = topo.node(n).local;
        if (params.localBwGBps <= 0.0)
            fatal("RackTestbed: node local bandwidth must be positive");
        if (params.llcCapacityMb <= 0.0)
            fatal("RackTestbed: node LLC capacity must be positive");
    }
}

void
RackTestbed::setLinkFault(std::size_t link, double bw_scale,
                          double latency_scale)
{
    if (link >= topo.linkCount())
        fatal("RackTestbed::setLinkFault: link index out of range");
    if (bw_scale <= 0.0 || bw_scale > 1.0)
        fatal("RackTestbed::setLinkFault: bw scale must be in (0, 1]");
    if (latency_scale < 1.0)
        fatal("RackTestbed::setLinkFault: latency scale must be >= 1");
    linkBwScale[link] = bw_scale;
    linkLatencyScale[link] = latency_scale;
}

void
RackTestbed::clearLinkFaults()
{
    linkBwScale.assign(topo.linkCount(), 1.0);
    linkLatencyScale.assign(topo.linkCount(), 1.0);
}

bool
RackTestbed::anyLinkFaulted() const
{
    for (std::size_t l = 0; l < topo.linkCount(); ++l)
        if (linkBwScale[l] < 1.0 || linkLatencyScale[l] > 1.0)
            return true;
    return false;
}

Result<void>
RackTestbed::allocate(std::size_t server, double gb)
{
    if (server >= topo.serverCount())
        fatal("RackTestbed::allocate: server index out of range");
    if (gb < 0.0)
        fatal("RackTestbed::allocate: negative size");
    if (allocated[server] + gb >
        topo.server(server).capacityGb + 1e-9) {
        return makeError(ErrorCode::Geometry,
                         "RackTestbed: server '" +
                             topo.server(server).name + "' cannot fit " +
                             std::to_string(gb) + " GB (allocated " +
                             std::to_string(allocated[server]) + " of " +
                             std::to_string(topo.server(server).capacityGb) +
                             " GB)");
    }
    allocated[server] += gb;
    return {};
}

void
RackTestbed::release(std::size_t server, double gb)
{
    if (server >= topo.serverCount())
        fatal("RackTestbed::release: server index out of range");
    if (gb < 0.0)
        fatal("RackTestbed::release: negative size");
    if (gb > allocated[server] + 1e-9)
        panic("RackTestbed::release: releasing more than allocated on '" +
              topo.server(server).name + "'");
    allocated[server] = std::max(0.0, allocated[server] - gb);
}

double
RackTestbed::allocatedGb(std::size_t server) const
{
    if (server >= topo.serverCount())
        fatal("RackTestbed::allocatedGb: server index out of range");
    return allocated[server];
}

double
RackTestbed::availableGb(std::size_t server) const
{
    if (server >= topo.serverCount())
        fatal("RackTestbed::availableGb: server index out of range");
    return std::max(0.0, topo.server(server).capacityGb - allocated[server]);
}

const LinkTotals &
RackTestbed::linkTotals(std::size_t link) const
{
    if (link >= topo.linkCount())
        fatal("RackTestbed::linkTotals: link index out of range");
    return totals[link];
}

double
RackTestbed::noisy(double value)
{
    if (noiseSigma <= 0.0)
        return value;
    return std::max(0.0, value * (1.0 + rng.gaussian(0.0, noiseSigma)));
}

RackTickResult
RackTestbed::tick(const std::vector<LoadDescriptor> &loads)
{
    const std::size_t n_nodes = topo.nodeCount();
    const std::size_t n_links = topo.linkCount();
    const std::size_t n_servers = topo.serverCount();

    RackTickResult result;
    result.outcomes.resize(loads.size());
    result.nodes.resize(n_nodes);
    result.links.resize(n_links);
    result.servers.resize(n_servers);

    // --- Validate placements (scheduler bugs are programming errors). ---
    for (const LoadDescriptor &load : loads) {
        if (load.node >= n_nodes)
            panic("RackTestbed::tick: load " + std::to_string(load.id) +
                  " placed on unknown node");
        if (load.mode == MemoryMode::Remote) {
            if (load.link >= n_links || load.server >= n_servers)
                panic("RackTestbed::tick: load " + std::to_string(load.id) +
                      " carries an out-of-range placement triple");
            const LinkDesc &link = topo.link(load.link);
            if (link.node != load.node || link.server != load.server)
                panic("RackTestbed::tick: load " + std::to_string(load.id) +
                      " routed over link '" + link.name +
                      "' that does not connect its placement");
        }
    }

    // --- Pass 1: per-node CPU and LLC pressure. -------------------------
    std::vector<double> total_cpu(n_nodes, 0.0);
    std::vector<double> total_footprint(n_nodes, 0.0);
    for (const LoadDescriptor &load : loads) {
        total_cpu[load.node] += load.cpuCores;
        total_footprint[load.node] += load.cacheFootprintMb;
    }
    std::vector<double> cpu_factor(n_nodes, 1.0);
    for (std::size_t n = 0; n < n_nodes; ++n) {
        const double cores = topo.node(n).local.cores;
        cpu_factor[n] =
            total_cpu[n] <= cores ? 1.0 : cores / total_cpu[n];
        result.nodes[n].cpuFactor = cpu_factor[n];
    }

    std::vector<double> hit_rate(loads.size(), 0.0);
    std::vector<double> miss_scale(loads.size(), 1.0);
    for (std::size_t i = 0; i < loads.size(); ++i) {
        const LoadDescriptor &load = loads[i];
        const double h = llcEffectiveHitRate(
            load.baseHitRate, load.cacheFootprintMb,
            total_footprint[load.node], topo.node(load.node).local.llcCapacityMb);
        hit_rate[i] = h;
        const double base_miss = std::max(1e-6, 1.0 - load.baseHitRate);
        miss_scale[i] = std::max(1.0, (1.0 - h) / base_miss);
    }

    // --- Pass 2: per-link back-pressure (R2 per tier) and shares. -------
    //
    // A remote deployment's issueable traffic throttles its
    // latency-bound slice by its node's local latency over its *link's*
    // latency; the offered demand at base latency sets each link's
    // pressure independently, then one fixed-point iteration
    // re-throttles at the ramped latency — exactly the single-channel
    // model, evaluated per link.
    auto remote_demand_at = [&](const LoadDescriptor &load,
                                double lat_scale) {
        const double lat_fraction =
            std::clamp(load.latencyBoundFraction, 0.0, 1.0);
        const double throttle_ratio =
            topo.node(load.node).local.localLatencyNs /
            topo.link(load.link).profile.latencyNs;
        const double throttle =
            (1.0 - lat_fraction) +
            lat_fraction * throttle_ratio / lat_scale;
        return load.memDemandGBps * throttle;
    };

    std::vector<double> link_offered_base(n_links, 0.0);
    for (const LoadDescriptor &load : loads)
        if (load.mode == MemoryMode::Remote)
            link_offered_base[load.link] += remote_demand_at(load, 1.0);

    std::vector<double> link_cap(n_links, 0.0);
    std::vector<double> link_lat_scale(n_links, 1.0);
    for (std::size_t l = 0; l < n_links; ++l) {
        const LinkProfile &profile = topo.link(l).profile;
        link_cap[l] = profile.bandwidthGBps * linkBwScale[l];
        result.links[l].pressure = link_offered_base[l] / link_cap[l];
        result.links[l].latencyCycles =
            linkLatencyCycles(profile, result.links[l].pressure) *
            linkLatencyScale[l];
        link_lat_scale[l] =
            result.links[l].latencyCycles / profile.latencyBaseCycles;
    }

    std::vector<double> demand(loads.size(), 0.0);
    std::vector<double> link_demand(n_links, 0.0);
    std::vector<double> node_local_demand(n_nodes, 0.0);
    for (std::size_t i = 0; i < loads.size(); ++i) {
        const LoadDescriptor &load = loads[i];
        if (load.mode == MemoryMode::Remote) {
            demand[i] = remote_demand_at(load, link_lat_scale[load.link]);
            link_demand[load.link] += demand[i];
        } else {
            demand[i] = load.memDemandGBps;
            node_local_demand[load.node] += demand[i];
        }
    }

    std::vector<double> link_share(n_links, 1.0);
    for (std::size_t l = 0; l < n_links; ++l)
        if (link_demand[l] > link_cap[l])
            link_share[l] = link_cap[l] / link_demand[l];

    // --- Pass 3: per-server DRAM bandwidth sharing. ---------------------
    std::vector<double> server_in(n_servers, 0.0);
    for (std::size_t l = 0; l < n_links; ++l)
        server_in[topo.link(l).server] += link_demand[l] * link_share[l];
    std::vector<double> server_share(n_servers, 1.0);
    for (std::size_t s = 0; s < n_servers; ++s) {
        const double bw = topo.server(s).bandwidthGBps;
        if (server_in[s] > bw)
            server_share[s] = bw / server_in[s];
        result.servers[s].demandGBps = server_in[s];
        result.servers[s].allocatedGb = allocated[s];
    }

    // --- Pass 4: per-node local pool (R3: remote terminates locally). ---
    std::vector<double> node_remote_term(n_nodes, 0.0);
    for (std::size_t i = 0; i < loads.size(); ++i) {
        const LoadDescriptor &load = loads[i];
        if (load.mode == MemoryMode::Remote)
            node_remote_term[load.node] += demand[i] *
                                           link_share[load.link] *
                                           server_share[load.server];
    }
    std::vector<double> local_share(n_nodes, 1.0);
    std::vector<double> local_latency_ns(n_nodes, 0.0);
    for (std::size_t n = 0; n < n_nodes; ++n) {
        const TestbedParams &params = topo.node(n).local;
        const double total =
            node_local_demand[n] + node_remote_term[n];
        if (total > params.localBwGBps)
            local_share[n] = params.localBwGBps / total;
        const double util = std::min(1.0, total / params.localBwGBps);
        local_latency_ns[n] =
            params.localLatencyNs *
            (1.0 + params.localLatencyInflation * util * util);
    }

    // --- Pass 5: per-deployment outcomes. -------------------------------
    std::vector<double> link_node_flits(n_links, 0.0);
    std::vector<double> node_llc_loads(n_nodes, 0.0);
    std::vector<double> node_llc_misses(n_nodes, 0.0);
    for (std::size_t i = 0; i < loads.size(); ++i) {
        const LoadDescriptor &load = loads[i];
        LoadOutcome &outcome = result.outcomes[i];
        outcome.id = load.id;
        outcome.hitRate = hit_rate[i];
        outcome.missScale = miss_scale[i];

        const bool remote = load.mode == MemoryMode::Remote;
        double achieved = 0.0;
        if (remote) {
            achieved = demand[i] * link_share[load.link] *
                       server_share[load.server] * local_share[load.node];
            outcome.latencyNs = topo.link(load.link).profile.latencyNs *
                                link_lat_scale[load.link];
            result.links[load.link].achievedGBps += achieved;
            result.links[load.link].flitsM +=
                achieved /
                (topo.link(load.link).profile.flitBytes * 1e-9) / 1e6;
            result.servers[load.server].achievedGBps += achieved;
            result.nodes[load.node].remoteTrafficGBps += achieved;
        } else {
            achieved = demand[i] * local_share[load.node];
            outcome.latencyNs = local_latency_ns[load.node];
        }
        outcome.achievedGBps = achieved;
        result.nodes[load.node].localTrafficGBps += achieved;

        double mem_slowdown = 1.0;
        if (load.memDemandGBps > 1e-9) {
            mem_slowdown = miss_scale[i] * load.memDemandGBps /
                           std::max(achieved, 1e-9);
        }
        const double mu = std::clamp(load.cpuFraction, 0.0, 1.0);
        outcome.slowdown =
            mu / cpu_factor[load.node] + (1.0 - mu) * mem_slowdown;
        outcome.slowdown = std::max(1.0, outcome.slowdown);

        const double accesses = load.llcAccessGBps * 1e9 / 64.0 / 1e6;
        node_llc_loads[load.node] += accesses;
        node_llc_misses[load.node] += accesses * (1.0 - hit_rate[i]);
        if (remote)
            link_node_flits[load.link] += achieved;
    }

    // --- Pass 6: link queue accounting and cumulative totals. -----------
    for (std::size_t l = 0; l < n_links; ++l) {
        LinkTickStats &stats = result.links[l];
        stats.offeredGBps = link_demand[l];
        stats.queuedGBps =
            std::max(0.0, stats.offeredGBps - stats.achievedGBps);
        totals[l].offeredGb += stats.offeredGBps;
        totals[l].deliveredGb += stats.achievedGBps;
        totals[l].queuedGb += stats.queuedGBps;
        if (stats.pressure > topo.link(l).profile.rampStart)
            ++totals[l].saturatedTicks;
    }

    // --- Pass 7: performance counters (deterministic noise order:
    //             nodes ascending, then links ascending). ----------------
    for (std::size_t n = 0; n < n_nodes; ++n) {
        NodeTickStats &node = result.nodes[n];
        const TestbedParams &params = topo.node(n).local;
        const double mem_total = node.localTrafficGBps;

        // Node-level flits and channel latency aggregate the node's
        // links, weighted by what each link carried for this node.
        double flits_m = 0.0;
        double lat_weight = 0.0;
        double lat_sum = 0.0;
        for (std::size_t l : topo.linksFrom(n)) {
            const double carried = link_node_flits[l];
            flits_m += carried /
                       (topo.link(l).profile.flitBytes * 1e-9) / 1e6;
            lat_sum += result.links[l].latencyCycles * carried;
            lat_weight += carried;
        }
        double channel_lat = params.channelLatencyBaseCycles;
        if (lat_weight > 0.0) {
            channel_lat = lat_sum / lat_weight;
        } else if (!topo.linksFrom(n).empty()) {
            channel_lat =
                result.links[topo.linksFrom(n).front()].latencyCycles;
        }

        CounterSample &counters = node.counters;
        counters[static_cast<std::size_t>(PerfEvent::LlcLoads)] =
            noisy(node_llc_loads[n]);
        counters[static_cast<std::size_t>(PerfEvent::LlcMisses)] =
            noisy(node_llc_misses[n]);
        counters[static_cast<std::size_t>(PerfEvent::MemLoads)] =
            noisy(mem_total * params.loadStoreSplit);
        counters[static_cast<std::size_t>(PerfEvent::MemStores)] =
            noisy(mem_total * (1.0 - params.loadStoreSplit));
        counters[static_cast<std::size_t>(PerfEvent::RemoteTx)] =
            noisy(flits_m * 0.45);
        counters[static_cast<std::size_t>(PerfEvent::RemoteRx)] =
            noisy(flits_m * 0.55);
        counters[static_cast<std::size_t>(PerfEvent::ChannelLat)] =
            noisy(channel_lat);
    }
    for (std::size_t l = 0; l < n_links; ++l) {
        LinkTickStats &stats = result.links[l];
        LinkCounterSample &counters = stats.counters;
        counters[static_cast<std::size_t>(LinkEvent::LinkTx)] =
            noisy(stats.flitsM * 0.45);
        counters[static_cast<std::size_t>(LinkEvent::LinkRx)] =
            noisy(stats.flitsM * 0.55);
        counters[static_cast<std::size_t>(LinkEvent::LinkLat)] =
            noisy(stats.latencyCycles);
        counters[static_cast<std::size_t>(LinkEvent::LinkQueued)] =
            noisy(stats.queuedGBps);
    }

    ++tickCount;

    // Conservation laws hold for every resolved tick (compiled out of
    // Release builds; the constant-false branch folds away).
    if (invariant::kEnabled)
        checkRackTickInvariants(loads, result, topo, linkBwScale);

    return result;
}

void
RackTestbed::saveState(io::BinaryWriter &out) const
{
    rng.saveState(out);
    out.writeF64(noiseSigma);
    out.writeF64Vector(linkBwScale);
    out.writeF64Vector(linkLatencyScale);
    out.writeF64Vector(allocated);
    out.writeU64(totals.size());
    for (const LinkTotals &t : totals) {
        out.writeF64(t.offeredGb);
        out.writeF64(t.deliveredGb);
        out.writeF64(t.queuedGb);
        out.writeI64(t.saturatedTicks);
    }
    out.writeI64(tickCount);
}

Result<void>
RackTestbed::restoreState(io::BinaryReader &in)
{
    rng.restoreState(in);
    noiseSigma = in.readF64();
    linkBwScale = in.readF64Vector();
    linkLatencyScale = in.readF64Vector();
    allocated = in.readF64Vector();
    const std::uint64_t n_totals = in.readU64();
    if (!in.ok() || n_totals != topo.linkCount())
        return makeError(ErrorCode::Geometry,
                         "RackTestbed: snapshot link-total count does not "
                         "match the topology");
    totals.assign(n_totals, LinkTotals{});
    for (LinkTotals &t : totals) {
        t.offeredGb = in.readF64();
        t.deliveredGb = in.readF64();
        t.queuedGb = in.readF64();
        t.saturatedTicks = in.readI64();
    }
    tickCount = in.readI64();
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "RackTestbed: truncated snapshot section");
    if (linkBwScale.size() != topo.linkCount() ||
        linkLatencyScale.size() != topo.linkCount() ||
        allocated.size() != topo.serverCount())
        return makeError(ErrorCode::Geometry,
                         "RackTestbed: snapshot geometry does not match "
                         "the topology");
    for (std::size_t l = 0; l < topo.linkCount(); ++l)
        if (!(linkBwScale[l] > 0.0 && linkBwScale[l] <= 1.0) ||
            linkLatencyScale[l] < 1.0)
            return makeError(ErrorCode::BadNumber,
                             "RackTestbed: snapshot carries invalid link "
                             "fault scales");
    for (std::size_t s = 0; s < topo.serverCount(); ++s)
        if (allocated[s] < 0.0 ||
            allocated[s] > topo.server(s).capacityGb + 1e-9)
            return makeError(ErrorCode::BadNumber,
                             "RackTestbed: snapshot allocation exceeds "
                             "server capacity");
    return {};
}

} // namespace adrias::testbed
