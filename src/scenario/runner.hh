/**
 * @file
 * Scenario generation and execution (paper §V-B1): random application
 * arrivals with configurable spawn intervals, random benchmark choice
 * from the Spark/LC/iBench pools, and tick-by-tick execution against
 * the simulated ThymesisFlow testbed while the Watcher samples
 * performance events.
 */

#ifndef ADRIAS_SCENARIO_RUNNER_HH
#define ADRIAS_SCENARIO_RUNNER_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/io/binary.hh"
#include "common/io/checkpointable.hh"
#include "common/rng.hh"
#include "fault/fault.hh"
#include "scenario/placement.hh"
#include "scenario/runtime.hh"
#include "testbed/testbed.hh"
#include "workloads/workload.hh"

namespace adrias::scenario
{

/** Knobs of one randomized deployment scenario. */
struct ScenarioConfig
{
    /** Scenario length, seconds (paper: 3600). */
    SimTime durationSec = 3600;

    /** Arrival spacing is uniform in [spawnMin, spawnMax] seconds. */
    SimTime spawnMinSec = 5;
    SimTime spawnMaxSec = 40;

    std::uint64_t seed = 1;

    /** Concurrency cap (paper footnote 3: at most 35). */
    std::size_t maxConcurrent = 35;

    /** Probability an arrival is an iBench trasher. */
    double ibenchFraction = 0.35;

    /** Probability an arrival is a latency-critical server. */
    double lcFraction = 0.15;

    /** Relative measurement noise of the counters. */
    double counterNoise = 0.01;

    /**
     * Deterministic fault schedule executed alongside the scenario
     * (empty by default).  Link faults derate the testbed's channel;
     * counter faults corrupt the Watcher's input; predictor faults are
     * picked up by a GuardedPredictor built over the same schedule.
     */
    fault::FaultSchedule faults{};

    /**
     * Named rack topology (testbed::topologyByName) the scenario runs
     * on.  The default "paper-pair" reproduces the two-node prototype
     * bit for bit.  The single-node engine accepts any 1×N topology
     * (its testbed calibration then comes from the topology's node and
     * first link); multi-node topologies are driven by
     * ClusterScenarioRunner.
     */
    std::string topology = "paper-pair";
};

/** Everything a finished scenario produced. */
struct ScenarioResult
{
    /** Per-second counter samples (the Watcher's trace). */
    std::vector<testbed::CounterSample> trace;

    /** Per-second number of concurrently running deployments. */
    std::vector<int> concurrency;

    /** Completed deployments (all classes, trashers included). */
    std::vector<DeploymentRecord> records;

    /** Total ThymesisFlow traffic over the scenario, GB. */
    double totalRemoteTrafficGB = 0.0;

    /** What the fault injector actually did during the run. */
    fault::FaultStats faultSummary{};

    /** Watcher self-repair tallies at scenario end. */
    telemetry::WatcherHealth watcherHealth{};

    /** Records of one class, excluding trashers unless asked. */
    std::vector<const DeploymentRecord *>
    recordsOfClass(WorkloadClass cls) const;
};

/** A random placement hook used for trace collection (paper: apps are
 *  deployed "randomly on local or remote memory").  Checkpointable so
 *  a crash-recovered run re-derives the exact same placements. */
class RandomPlacement : public PlacementPolicy, public io::Checkpointable
{
  public:
    explicit RandomPlacement(std::uint64_t seed = 99) : rng(seed) {}

    std::string name() const override { return "random"; }

    MemoryMode
    place(const workloads::WorkloadSpec &, const telemetry::Watcher &,
          SimTime) override
    {
        return rng.bernoulli(0.5) ? MemoryMode::Remote : MemoryMode::Local;
    }

    std::string checkpointTag() const override
    {
        return "random-placement";
    }

    /** Serialize the policy's exact RNG stream position. */
    void saveState(io::BinaryWriter &out) const override
    {
        rng.saveState(out);
    }

    /** Restore a position saved with saveState(). */
    [[nodiscard]] Result<void>
    restoreState(io::BinaryReader &in) override
    {
        rng.restoreState(in);
        return in.status();
    }

  private:
    Rng rng;
};

/**
 * Binned history window S for a deployment that arrived at `arrival`
 * within a recorded trace: the 120 s (or whatever is available) before
 * arrival, aggregated into ScenarioRunner::kWindowBins steps.  Returns
 * an empty sequence for arrivals in the very first second.
 */
std::vector<ml::Matrix>
historyWindowAt(const std::vector<testbed::CounterSample> &trace,
                SimTime arrival);

/** Drives one scenario tick by tick. */
class ScenarioRunner
{
  public:
    /**
     * @param config scenario knobs.
     * @param params testbed calibration.
     */
    explicit ScenarioRunner(ScenarioConfig config,
                            testbed::TestbedParams params = {});

    /**
     * Execute the scenario to completion.
     *
     * @param policy decides local/remote for BE and LC arrivals
     *        (iBench trashers are always placed randomly, as in the
     *        paper's trace-collection protocol).
     * @param runtime optional L2 runtime manager invoked every tick
     *        (may migrate running instances between pools).
     * @return the full trace and all completion records.
     */
    ScenarioResult run(PlacementPolicy &policy,
                       RuntimePolicy *runtime = nullptr);

    /** History window length r and horizon z, seconds (paper: 120). */
    static constexpr std::size_t kWindowSec = 120;

    /** Sequence bins used for model inputs (10 s bins over 120 s). */
    static constexpr std::size_t kWindowBins = 12;

  private:
    ScenarioConfig config;
    testbed::TestbedParams testbedParams;
};

/** One entry of a multi-seed sweep. */
struct SweepItem
{
    ScenarioConfig config;

    /** Seed of the per-item RandomPlacement policy. */
    std::uint64_t policySeed = 99;
};

/**
 * Run many independent scenarios — one Testbed, Watcher and policy per
 * item — fanned out across the global ThreadPool (DESIGN.md §9).
 *
 * Policies are constructed serially in item order before any scenario
 * starts (factories may share an Rng), then every item runs in
 * isolation and writes its own result slot, so the returned vector is
 * bitwise identical to running the items one by one in a loop,
 * regardless of ADRIAS_THREADS.
 *
 * @param configs per-item scenario knobs.
 * @param params shared testbed calibration.
 * @param makePolicy called once per item index, in order, to build
 *        that item's placement policy (must not share mutable state
 *        across items).
 */
std::vector<ScenarioResult> runScenarioSweep(
    const std::vector<ScenarioConfig> &configs,
    testbed::TestbedParams params,
    const std::function<std::unique_ptr<PlacementPolicy>(std::size_t)>
        &makePolicy);

/** RandomPlacement convenience overload over SweepItems. */
std::vector<ScenarioResult>
runScenarioSweep(const std::vector<SweepItem> &items,
                 testbed::TestbedParams params = {});

} // namespace adrias::scenario

#endif // ADRIAS_SCENARIO_RUNNER_HH
