/**
 * @file
 * Minimal severity-levelled logging used across the library.
 *
 * Follows the gem5 convention of separating user errors (fatal) from
 * internal invariant violations (panic).  All output goes to stderr so
 * bench binaries can print clean tables on stdout.
 */

#ifndef ADRIAS_COMMON_LOGGING_HH
#define ADRIAS_COMMON_LOGGING_HH

#include <sstream>
#include <string>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace adrias
{

/** Log severity levels, ordered by verbosity. */
enum class LogLevel : int
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4,
};

/**
 * Process-wide log sink with a level filter.
 *
 * Thread-safe: the level filter and the output stream are guarded by
 * one mutex, so concurrent logging from multiple threads interleaves
 * whole lines only and level changes are never torn.
 */
class Logger
{
  public:
    /** @return the process-wide logger instance. */
    static Logger &instance();

    /** Set the minimum severity that is emitted. */
    void
    setLevel(LogLevel level)
    {
        MutexLock lock(mu);
        minLevel = level;
    }

    /** @return the current minimum severity. */
    LogLevel
    level() const
    {
        MutexLock lock(mu);
        return minLevel;
    }

    /** Emit one line at the given severity (no trailing newline needed). */
    void log(LogLevel level, const std::string &message);

  private:
    Logger() = default;

    /** Guards the level filter and serializes stderr lines. */
    mutable Mutex mu;

    LogLevel minLevel ADRIAS_GUARDED_BY(mu) = LogLevel::Warn;
};

/** Emit a debug-level message. */
void logDebug(const std::string &message);
/** Emit an info-level message. */
void logInfo(const std::string &message);
/** Emit a warning about questionable but survivable conditions. */
void logWarn(const std::string &message);
/** Emit an error message (does not terminate). */
void logError(const std::string &message);

/**
 * Abort on a user-caused unrecoverable condition (bad configuration,
 * invalid arguments).  Mirrors gem5's fatal().
 *
 * @throws std::runtime_error always.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Abort on an internal invariant violation (a bug in this library).
 * Mirrors gem5's panic().
 *
 * @throws std::logic_error always.
 */
[[noreturn]] void panic(const std::string &message);

} // namespace adrias

#endif // ADRIAS_COMMON_LOGGING_HH
