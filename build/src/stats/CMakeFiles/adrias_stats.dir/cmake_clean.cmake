file(REMOVE_RECURSE
  "CMakeFiles/adrias_stats.dir/correlation.cc.o"
  "CMakeFiles/adrias_stats.dir/correlation.cc.o.d"
  "CMakeFiles/adrias_stats.dir/ewma.cc.o"
  "CMakeFiles/adrias_stats.dir/ewma.cc.o.d"
  "CMakeFiles/adrias_stats.dir/histogram.cc.o"
  "CMakeFiles/adrias_stats.dir/histogram.cc.o.d"
  "CMakeFiles/adrias_stats.dir/online_stats.cc.o"
  "CMakeFiles/adrias_stats.dir/online_stats.cc.o.d"
  "CMakeFiles/adrias_stats.dir/percentile.cc.o"
  "CMakeFiles/adrias_stats.dir/percentile.cc.o.d"
  "CMakeFiles/adrias_stats.dir/regression_metrics.cc.o"
  "CMakeFiles/adrias_stats.dir/regression_metrics.cc.o.d"
  "libadrias_stats.a"
  "libadrias_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adrias_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
