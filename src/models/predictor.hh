/**
 * @file
 * The Predictor component (paper §V-B): the stacked-model facade that
 * chains the system-state forecaster into the per-class performance
 * models, exposing exactly what the Orchestrator needs at deployment
 * time.
 */

#ifndef ADRIAS_MODELS_PREDICTOR_HH
#define ADRIAS_MODELS_PREDICTOR_HH

#include <memory>

#include "common/error.hh"
#include "common/io/binary.hh"
#include "models/performance.hh"
#include "models/system_state.hh"
#include "scenario/signature.hh"
#include "telemetry/watcher.hh"

namespace adrias::models
{

/**
 * What the Orchestrator needs from a prediction stack.  The production
 * implementation is Predictor; tests inject stubs to pin down the
 * decision rules exactly.
 */
class PredictorBase
{
  public:
    virtual ~PredictorBase() = default;

    /** Forecast mean counters over the horizon from live telemetry. */
    virtual ml::Matrix
    predictSystemState(const telemetry::Watcher &watcher) const = 0;

    /**
     * Predict an application's performance under a hypothetical mode
     * (execution time in seconds for BE, p99 in ms for LC).
     */
    virtual double
    predictPerformance(WorkloadClass cls,
                       const std::vector<ml::Matrix> &history,
                       const std::vector<ml::Matrix> &signature,
                       MemoryMode mode) const = 0;

    /** One row of a batched performance query (pointers borrowed). */
    struct PerfQuery
    {
        const std::vector<ml::Matrix> *history = nullptr;
        const std::vector<ml::Matrix> *signature = nullptr;
        MemoryMode mode = MemoryMode::Local;
    };

    /**
     * Batched predictPerformance over same-class queries.  The base
     * implementation loops over the single-row entry point, so every
     * PredictorBase (stubs included) serves batches; Predictor
     * overrides it with the fused single-forward fast-path and
     * GuardedPredictor with a one-admission batch gate.  Row i always
     * equals the corresponding single-row call.
     *
     * @return one prediction per query, input order.
     */
    virtual std::vector<double>
    predictPerformanceBatch(WorkloadClass cls,
                            const std::vector<PerfQuery> &queries) const;

    /** @return true once the stack is ready to serve predictions. */
    virtual bool trained() const = 0;
};

/** Design-time trained, run-time queried prediction stack. */
class Predictor : public PredictorBase
{
  public:
    /**
     * @param config shared model hyper-parameters.
     *
     * The performance models use FutureKind::Predicted — the paper's
     * best pragmatic variant {120, Ŝ} — i.e. they are trained on Ŝ
     * propagated from the system-state model.
     */
    explicit Predictor(ModelConfig config = {});

    /**
     * Offline phase: train all three models.
     *
     * @param state_samples system-state training set.
     * @param be_samples best-effort performance training set.
     * @param lc_samples latency-critical performance training set
     *        (may be empty; LC predictions then unavailable).
     */
    void train(const std::vector<scenario::SystemStateSample> &state_samples,
               const std::vector<scenario::PerformanceSample> &be_samples,
               const std::vector<scenario::PerformanceSample> &lc_samples);

    /** Forecast mean counters over the horizon from live telemetry. */
    ml::Matrix
    predictSystemState(const telemetry::Watcher &watcher) const override;

    /**
     * Predict an application's performance under a hypothetical mode.
     *
     * @param cls BestEffort (returns execution time, s) or
     *        LatencyCritical (returns p99, ms).
     * @param history Watcher window S at decision time.
     * @param signature application signature k.
     * @param mode hypothetical placement.
     */
    double
    predictPerformance(WorkloadClass cls,
                       const std::vector<ml::Matrix> &history,
                       const std::vector<ml::Matrix> &signature,
                       MemoryMode mode) const override;

    /**
     * Fused serving fast-path: one batched system-state forward for
     * all histories, then one batched performance forward — two
     * network evaluations per batch instead of two per query.
     */
    std::vector<double>
    predictPerformanceBatch(WorkloadClass cls,
                            const std::vector<PerfQuery> &queries)
        const override;

    const SystemStateModel &systemModel() const { return *system; }
    SystemStateModel &systemModel() { return *system; }
    const PerformanceModel &bestEffortModel() const { return *bestEffort; }
    const PerformanceModel &latencyCriticalModel() const { return *lc; }

    bool trained() const override { return isTrained; }

    /**
     * Serialize the trained-model stack: flags plus each model's full
     * text checkpoint (17-significant-digit weights round-trip doubles
     * exactly, so a restored stack predicts bit-identically).
     */
    void saveState(io::BinaryWriter &out) const;

    /** Restore a payload written by saveState(). */
    [[nodiscard]] Result<void> restoreState(io::BinaryReader &in);

  private:
    std::unique_ptr<SystemStateModel> system;
    std::unique_ptr<PerformanceModel> bestEffort;
    std::unique_ptr<PerformanceModel> lc;
    bool isTrained = false;
    bool lcTrained = false;
};

} // namespace adrias::models

#endif // ADRIAS_MODELS_PREDICTOR_HH
