#include "scenario/dataset.hh"

#include "common/logging.hh"
#include "telemetry/watcher.hh"

namespace adrias::scenario
{

using testbed::kNumPerfEvents;

namespace
{

ml::Matrix
sampleToMatrix(const testbed::CounterSample &sample)
{
    ml::Matrix m(1, kNumPerfEvents);
    for (std::size_t e = 0; e < kNumPerfEvents; ++e)
        m.at(0, e) = sample[e];
    return m;
}

} // namespace

std::vector<SystemStateSample>
DatasetBuilder::systemState(const std::vector<ScenarioResult> &results,
                            std::size_t stride_sec)
{
    if (stride_sec == 0)
        fatal("DatasetBuilder::systemState: stride must be positive");

    const std::size_t window = ScenarioRunner::kWindowSec;
    const std::size_t bins = ScenarioRunner::kWindowBins;

    std::vector<SystemStateSample> samples;
    for (const ScenarioResult &result : results) {
        const auto &trace = result.trace;
        if (trace.size() < 2 * window)
            continue;
        for (std::size_t t = window; t + window <= trace.size();
             t += stride_sec) {
            SystemStateSample sample;
            sample.history =
                telemetry::binSpan(trace, t - window, t, bins);
            sample.target = sampleToMatrix(
                telemetry::meanOverSpan(trace, t, t + window));
            samples.push_back(std::move(sample));
        }
    }
    return samples;
}

std::vector<PerformanceSample>
DatasetBuilder::performance(const std::vector<ScenarioResult> &results,
                            const SignatureStore &signatures,
                            WorkloadClass cls)
{
    const std::size_t window = ScenarioRunner::kWindowSec;

    std::vector<PerformanceSample> samples;
    for (const ScenarioResult &result : results) {
        const auto &trace = result.trace;
        for (const DeploymentRecord &record : result.records) {
            if (record.cls != cls)
                continue;
            if (record.historyWindow.empty())
                continue; // warm-up arrival, no telemetry yet
            if (!signatures.has(record.name))
                continue;

            const auto arrival =
                static_cast<std::size_t>(record.arrival);
            const auto completion = std::min<std::size_t>(
                static_cast<std::size_t>(record.completion),
                trace.size());
            if (completion <= arrival)
                continue;

            PerformanceSample sample;
            sample.name = record.name;
            sample.cls = record.cls;
            sample.mode = record.mode;
            sample.history = record.historyWindow;
            sample.signature = signatures.get(record.name);
            sample.futureWindow = sampleToMatrix(telemetry::meanOverSpan(
                trace, arrival,
                std::min(arrival + window, completion)));
            sample.futureExec = sampleToMatrix(
                telemetry::meanOverSpan(trace, arrival, completion));
            sample.target = record.primaryMetric();
            samples.push_back(std::move(sample));
        }
    }
    return samples;
}

} // namespace adrias::scenario
