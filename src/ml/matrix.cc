#include "ml/matrix.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "ml/simd.hh"

namespace adrias::ml
{

namespace
{

MatrixParallelConfig g_parallel{};

} // namespace

MatrixParallelConfig
matrixParallelConfig()
{
    return g_parallel;
}

void
setMatrixParallelConfig(MatrixParallelConfig config)
{
    g_parallel = config;
}

Matrix::Matrix(std::size_t rows_, std::size_t cols_)
    : nRows(rows_), nCols(cols_), data(rows_ * cols_, 0.0)
{
}

Matrix::Matrix(std::size_t rows_, std::size_t cols_,
               std::vector<double> values)
    : nRows(rows_), nCols(cols_), data(std::move(values))
{
    if (data.size() != nRows * nCols)
        panic("Matrix: initializer size does not match shape");
}

Matrix
Matrix::constant(std::size_t rows, std::size_t cols, double value)
{
    Matrix m(rows, cols);
    for (double &x : m.data)
        x = value;
    return m;
}

Matrix
Matrix::identity(std::size_t order)
{
    Matrix m(order, order);
    for (std::size_t i = 0; i < order; ++i)
        m.data[i * order + i] = 1.0;
    return m;
}

Matrix
Matrix::rowVector(const std::vector<double> &values)
{
    return Matrix(1, values.size(), values);
}

void
Matrix::resize(std::size_t rows_, std::size_t cols_)
{
    nRows = rows_;
    nCols = cols_;
    // assign reuses the existing allocation when capacity suffices.
    data.assign(rows_ * cols_, 0.0);
}

void
Matrix::resizeForOverwrite(std::size_t rows_, std::size_t cols_)
{
    nRows = rows_;
    nCols = cols_;
    data.resize(rows_ * cols_);
}

void
Matrix::checkSameShape(const Matrix &other, const char *op) const
{
    if (nRows != other.nRows || nCols != other.nCols) {
        panic(std::string("Matrix shape mismatch in ") + op + ": " +
              shape() + " vs " + other.shape());
    }
}

void
Matrix::checkNoAlias(const Matrix &out, const char *op) const
{
    if (this == &out)
        panic(std::string("Matrix::") + op + ": destination aliases source");
}

Matrix
Matrix::matmul(const Matrix &other) const
{
    Matrix out;
    matmulInto(other, out);
    return out;
}

void
Matrix::matmulInto(const Matrix &other, Matrix &out) const
{
    if (nCols != other.nRows) {
        panic("Matrix::matmul inner dimension mismatch: " + shape() +
              " * " + other.shape());
    }
    checkNoAlias(out, "matmulInto");
    other.checkNoAlias(out, "matmulInto");
    out.resize(nRows, other.nCols);
    const std::size_t inner = nCols;
    const std::size_t width = other.nCols;
    const std::size_t block = g_parallel.gemmBlock;
    // Partitioned over output rows: each row accumulates over k in
    // fixed index order, so the result never depends on the partition.
    // i-k-j loop order keeps the inner loop contiguous in both inputs.
    if (effectiveKernelTier() == KernelTier::Vector) {
        // Vector tier (DESIGN.md §16): register-blocked AVX2 FMA rows.
        // Same per-element increasing-k order, but FMA contraction and
        // the dropped exact-zero skip make it tolerance-equivalent to
        // the scalar kernels below, not bitwise (ctest -L simd).  Row
        // partitioning is unchanged, so the vector result itself is
        // thread-invariant.
        kernels::runRows(
            nRows, nRows * inner * width, g_parallel.gemmGrain,
            [this, &other, &out, inner, width](std::size_t begin,
                                               std::size_t end) {
                simd::gemmRows(data.data(), other.data.data(),
                               out.data.data(), begin, end, inner,
                               width);
            });
        return;
    }
    if (block > 0 && (inner > block || width > block)) {
        // Cache-blocked variant: tiles over j and k reorder only which
        // (k, j) pairs are visited together; for any fixed output
        // element the k tiles and the k indices inside each tile both
        // increase, so the accumulation order — and hence the result —
        // is bitwise identical to the streaming loop (DESIGN.md §11).
        kernels::runRows(
            nRows, nRows * inner * width, g_parallel.gemmGrain,
            [this, &other, &out, inner, width,
             block](std::size_t begin, std::size_t end) {
                // checkNoAlias guarantees the operands are distinct
                // objects, so __restrict is sound and lets the j loop
                // vectorize without runtime alias checks.
                const double *__restrict rhs_data = other.data.data();
                double *__restrict out_data = out.data.data();
                for (std::size_t i = begin; i < end; ++i) {
                    double *out_row = &out_data[i * width];
                    const double *lhs_row = &data[i * inner];
                    for (std::size_t jb = 0; jb < width; jb += block) {
                        const std::size_t jend =
                            std::min(jb + block, width);
                        for (std::size_t kb = 0; kb < inner;
                             kb += block) {
                            const std::size_t kend =
                                std::min(kb + block, inner);
                            for (std::size_t k = kb; k < kend; ++k) {
                                const double lhs = lhs_row[k];
                                // Exact-zero sparsity skip.
                                // NOLINTNEXTLINE(float-equal)
                                if (lhs == 0.0)
                                    continue;
                                const double *rhs_row =
                                    &rhs_data[k * width];
                                for (std::size_t j = jb; j < jend; ++j)
                                    out_row[j] += lhs * rhs_row[j];
                            }
                        }
                    }
                }
            });
        return;
    }
    kernels::runRows(
        nRows, nRows * inner * width, g_parallel.gemmGrain,
        [this, &other, &out, inner, width](std::size_t begin,
                                           std::size_t end) {
            // checkNoAlias guarantees distinct objects (see above).
            const double *__restrict lhs_data = data.data();
            const double *__restrict rhs_data = other.data.data();
            double *__restrict out_data = out.data.data();
            for (std::size_t i = begin; i < end; ++i) {
                const double *lhs_row = &lhs_data[i * inner];
                double *out_row = &out_data[i * width];
                // k unrolled by four with the adds parenthesized in k
                // order: ((((out + l0*r0) + l1*r1) + l2*r2) + l3*r3)
                // is the exact scalar op sequence of four single-k
                // iterations, so the result stays bitwise identical
                // while the destination row round-trips through
                // registers a quarter as often.  Any exact-zero lhs in
                // the group falls back to the single-k form so the
                // sparsity skip stays element-exact.
                std::size_t k = 0;
                for (; k + 3 < inner; k += 4) {
                    const double l0 = lhs_row[k];
                    const double l1 = lhs_row[k + 1];
                    const double l2 = lhs_row[k + 2];
                    const double l3 = lhs_row[k + 3];
                    const double *r0 = &rhs_data[k * width];
                    const double *r1 = r0 + width;
                    const double *r2 = r1 + width;
                    const double *r3 = r2 + width;
                    // Exact-zero sparsity skips; a tolerance would
                    // change results.
                    const bool dense4 =
                        l0 != 0.0 && l1 != 0.0 && // NOLINT(float-equal)
                        l2 != 0.0 && l3 != 0.0;   // NOLINT(float-equal)
                    if (dense4) {
                        for (std::size_t j = 0; j < width; ++j)
                            out_row[j] = ((((out_row[j] + l0 * r0[j]) +
                                            l1 * r1[j]) +
                                           l2 * r2[j]) +
                                          l3 * r3[j]);
                        continue;
                    }
                    for (std::size_t kk = k; kk < k + 4; ++kk) {
                        const double lhs = lhs_row[kk];
                        // NOLINTNEXTLINE(float-equal)
                        if (lhs == 0.0)
                            continue;
                        const double *rhs_row = &rhs_data[kk * width];
                        for (std::size_t j = 0; j < width; ++j)
                            out_row[j] += lhs * rhs_row[j];
                    }
                }
                for (; k < inner; ++k) {
                    const double lhs = lhs_row[k];
                    // NOLINTNEXTLINE(float-equal)
                    if (lhs == 0.0)
                        continue;
                    const double *rhs_row = &rhs_data[k * width];
                    for (std::size_t j = 0; j < width; ++j)
                        out_row[j] += lhs * rhs_row[j];
                }
            }
        });
}

Matrix
Matrix::transposedMatmul(const Matrix &other) const
{
    Matrix out;
    transposedMatmulInto(other, out);
    return out;
}

void
Matrix::transposedMatmulInto(const Matrix &other, Matrix &out) const
{
    // (this^T * other): this is (k x m), other (k x n) -> (m x n)
    if (nRows != other.nRows) {
        panic("Matrix::transposedMatmul dimension mismatch: " + shape() +
              "^T * " + other.shape());
    }
    checkNoAlias(out, "transposedMatmulInto");
    other.checkNoAlias(out, "transposedMatmulInto");
    out.resize(nCols, other.nCols);
    const std::size_t inner = nRows;
    const std::size_t width = other.nCols;
    const std::size_t stride = nCols;
    const std::size_t block = g_parallel.gemmBlock;
    // Partitioned over output rows i (columns of this).  Every
    // out(i, j) accumulates over k in increasing order — the same
    // per-element order as a k-outer loop — so per-sample gradient
    // contributions (k indexes the sample in backward passes) are
    // summed in fixed index order regardless of thread count.
    if (block > 0 && (inner > block || width > block)) {
        // Blocked variant: same tiling argument as matmulInto — per
        // output element the k order stays globally increasing.
        kernels::runRows(
            nCols, inner * nCols * width, g_parallel.gemmGrain,
            [this, &other, &out, inner, width, stride,
             block](std::size_t begin, std::size_t end) {
                // checkNoAlias guarantees distinct objects.
                const double *__restrict rhs_data = other.data.data();
                double *__restrict out_data = out.data.data();
                for (std::size_t i = begin; i < end; ++i) {
                    double *out_row = &out_data[i * width];
                    for (std::size_t jb = 0; jb < width; jb += block) {
                        const std::size_t jend =
                            std::min(jb + block, width);
                        for (std::size_t kb = 0; kb < inner;
                             kb += block) {
                            const std::size_t kend =
                                std::min(kb + block, inner);
                            for (std::size_t k = kb; k < kend; ++k) {
                                const double lhs = data[k * stride + i];
                                // Exact-zero sparsity skip.
                                // NOLINTNEXTLINE(float-equal)
                                if (lhs == 0.0)
                                    continue;
                                const double *rhs_row =
                                    &rhs_data[k * width];
                                for (std::size_t j = jb; j < jend; ++j)
                                    out_row[j] += lhs * rhs_row[j];
                            }
                        }
                    }
                }
            });
        return;
    }
    kernels::runRows(
        nCols, inner * nCols * width, g_parallel.gemmGrain,
        [this, &other, &out, inner, width, stride](std::size_t begin,
                                                   std::size_t end) {
            // checkNoAlias guarantees distinct objects.
            const double *__restrict rhs_data = other.data.data();
            double *__restrict out_data = out.data.data();
            for (std::size_t i = begin; i < end; ++i) {
                double *out_row = &out_data[i * width];
                for (std::size_t k = 0; k < inner; ++k) {
                    const double lhs = data[k * stride + i];
                    // Exact-zero sparsity skip.
                    // NOLINTNEXTLINE(float-equal)
                    if (lhs == 0.0)
                        continue;
                    const double *rhs_row = &rhs_data[k * width];
                    for (std::size_t j = 0; j < width; ++j)
                        out_row[j] += lhs * rhs_row[j];
                }
            }
        });
}

Matrix
Matrix::matmulTransposed(const Matrix &other) const
{
    Matrix out;
    matmulTransposedInto(other, out);
    return out;
}

void
Matrix::matmulTransposedInto(const Matrix &other, Matrix &out) const
{
    // (this * other^T): this is (m x k), other (n x k) -> (m x n)
    if (nCols != other.nCols) {
        panic("Matrix::matmulTransposed dimension mismatch: " + shape() +
              " * " + other.shape() + "^T");
    }
    checkNoAlias(out, "matmulTransposedInto");
    other.checkNoAlias(out, "matmulTransposedInto");
    // Every element is a local dot product written exactly once, so
    // stale destination contents can never leak into the result.
    out.resizeForOverwrite(nRows, other.nRows);
    const std::size_t inner = nCols;
    const std::size_t width = other.nRows;
    kernels::runRows(
        nRows, nRows * inner * width, g_parallel.gemmGrain,
        [this, &other, &out, inner, width](std::size_t begin,
                                           std::size_t end) {
            const double *__restrict lhs_data = data.data();
            const double *__restrict rhs_data = other.data.data();
            double *__restrict out_data = out.data.data();
            for (std::size_t i = begin; i < end; ++i) {
                const double *lhs_row = &lhs_data[i * inner];
                for (std::size_t j = 0; j < width; ++j) {
                    const double *rhs_row = &rhs_data[j * inner];
                    double acc = 0.0;
                    for (std::size_t k = 0; k < inner; ++k)
                        acc += lhs_row[k] * rhs_row[k];
                    out_data[i * width + j] = acc;
                }
            }
        });
}

Matrix
Matrix::transposed() const
{
    Matrix out(nCols, nRows);
    // Partitioned over output rows (source columns).
    kernels::runRows(
        nCols, data.size(), g_parallel.elementGrain,
        [this, &out](std::size_t begin, std::size_t end) {
            for (std::size_t c = begin; c < end; ++c)
                for (std::size_t r = 0; r < nRows; ++r)
                    out.data[c * nRows + r] = data[r * nCols + c];
        });
    return out;
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    checkSameShape(other, "operator+");
    Matrix out = *this;
    kernels::runRows(data.size(), data.size(), g_parallel.elementGrain,
                     [&out, &other](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i)
                             out.data[i] += other.data[i];
                     });
    return out;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    checkSameShape(other, "operator-");
    Matrix out = *this;
    kernels::runRows(data.size(), data.size(), g_parallel.elementGrain,
                     [&out, &other](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i)
                             out.data[i] -= other.data[i];
                     });
    return out;
}

Matrix
Matrix::hadamard(const Matrix &other) const
{
    checkSameShape(other, "hadamard");
    Matrix out = *this;
    kernels::runRows(data.size(), data.size(), g_parallel.elementGrain,
                     [&out, &other](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i)
                             out.data[i] *= other.data[i];
                     });
    return out;
}

Matrix
Matrix::operator*(double scalar) const
{
    Matrix out = *this;
    out *= scalar;
    return out;
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    checkSameShape(other, "operator+=");
    if (this == &other) {
        // Self-add: x + x rounds exactly (a power-of-two scale), and
        // the __restrict kernel below must not see aliased operands.
        for (double &x : data)
            x += x;
        return *this;
    }
    kernels::runRows(data.size(), data.size(), g_parallel.elementGrain,
                     [this, &other](std::size_t begin, std::size_t end) {
                         double *__restrict dst = data.data();
                         const double *__restrict src = other.data.data();
                         for (std::size_t i = begin; i < end; ++i)
                             dst[i] += src[i];
                     });
    return *this;
}

Matrix &
Matrix::operator*=(double scalar)
{
    kernels::runRows(data.size(), data.size(), g_parallel.elementGrain,
                     [this, scalar](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i)
                             data[i] *= scalar;
                     });
    return *this;
}

Matrix
Matrix::addRowBroadcast(const Matrix &rowVec) const
{
    if (rowVec.nRows != 1 || rowVec.nCols != nCols)
        panic("Matrix::addRowBroadcast shape mismatch");
    Matrix out = *this;
    kernels::runRows(
        nRows, data.size(), g_parallel.elementGrain,
        [&out, &rowVec, this](std::size_t begin, std::size_t end) {
            for (std::size_t r = begin; r < end; ++r)
                for (std::size_t c = 0; c < nCols; ++c)
                    out.data[r * nCols + c] += rowVec.data[c];
        });
    return out;
}

void
Matrix::addRowBroadcastInPlace(const Matrix &rowVec)
{
    if (rowVec.nRows != 1 || rowVec.nCols != nCols)
        panic("Matrix::addRowBroadcast shape mismatch");
    if (this == &rowVec) {
        // Self-broadcast onto a 1-row matrix is a plain self-add.
        for (double &x : data)
            x += x;
        return;
    }
    kernels::runRows(
        nRows, data.size(), g_parallel.elementGrain,
        [this, &rowVec](std::size_t begin, std::size_t end) {
            double *__restrict dst = data.data();
            const double *__restrict row = rowVec.data.data();
            for (std::size_t r = begin; r < end; ++r)
                for (std::size_t c = 0; c < nCols; ++c)
                    dst[r * nCols + c] += row[c];
        });
}

Matrix
Matrix::sumRows() const
{
    Matrix out(1, nCols);
    // Partitioned over columns; each column accumulates its rows in
    // increasing row order, exactly as the serial loop nest does.
    // Kept separate from sumRowsAddTo: accumulating straight into the
    // zeroed output skips the local-acc epilogue addition, and adding
    // that extra 0.0 + acc step would flip the sign of negative-zero
    // columns relative to this kernel's historical results.
    kernels::runRows(
        nCols, data.size(), g_parallel.elementGrain,
        [this, &out](std::size_t begin, std::size_t end) {
            for (std::size_t c = begin; c < end; ++c)
                for (std::size_t r = 0; r < nRows; ++r)
                    out.data[c] += data[r * nCols + c];
        });
    return out;
}

void
Matrix::sumRowsAddTo(Matrix &dst) const
{
    if (dst.nRows != 1 || dst.nCols != nCols) {
        panic("Matrix::sumRowsAddTo shape mismatch: " + shape() +
              " into " + dst.shape());
    }
    checkNoAlias(dst, "sumRowsAddTo");
    // Per column: fold the rows into a fresh 0.0 accumulator in row
    // order, then add once into dst.  That is the exact scalar op
    // sequence of `dst += this->sumRows()`, so both spellings are
    // bitwise interchangeable.
    kernels::runRows(
        nCols, data.size(), g_parallel.elementGrain,
        [this, &dst](std::size_t begin, std::size_t end) {
            for (std::size_t c = begin; c < end; ++c) {
                double acc = 0.0;
                for (std::size_t r = 0; r < nRows; ++r)
                    acc += data[r * nCols + c];
                dst.data[c] += acc;
            }
        });
}

Matrix
Matrix::map(const std::function<double(double)> &fn) const
{
    // Deliberately serial: fn may be stateful (see header).
    Matrix out = *this;
    for (double &x : out.data)
        x = fn(x);
    return out;
}

Matrix
Matrix::hconcat(const Matrix &other) const
{
    if (nRows != other.nRows)
        panic("Matrix::hconcat row count mismatch");
    Matrix out(nRows, nCols + other.nCols);
    for (std::size_t r = 0; r < nRows; ++r) {
        for (std::size_t c = 0; c < nCols; ++c)
            out.data[r * out.nCols + c] = data[r * nCols + c];
        for (std::size_t c = 0; c < other.nCols; ++c)
            out.data[r * out.nCols + nCols + c] =
                other.data[r * other.nCols + c];
    }
    return out;
}

Matrix
Matrix::colRange(std::size_t begin, std::size_t end) const
{
    Matrix out;
    colRangeInto(begin, end, out);
    return out;
}

void
Matrix::colRangeInto(std::size_t begin, std::size_t end, Matrix &dst) const
{
    if (begin > end || end > nCols)
        panic("Matrix::colRange out of bounds");
    checkNoAlias(dst, "colRangeInto");
    // Every element is assigned, so overwrite-resize is safe.
    dst.resizeForOverwrite(nRows, end - begin);
    for (std::size_t r = 0; r < nRows; ++r)
        for (std::size_t c = begin; c < end; ++c)
            dst.data[r * dst.nCols + (c - begin)] = data[r * nCols + c];
}

Matrix
Matrix::row(std::size_t r) const
{
    if (r >= nRows)
        panic("Matrix::row out of range");
    Matrix out(1, nCols);
    for (std::size_t c = 0; c < nCols; ++c)
        out.data[c] = data[r * nCols + c];
    return out;
}

void
Matrix::setZero()
{
    for (double &x : data)
        x = 0.0;
}

double
Matrix::norm() const
{
    double total = 0.0;
    for (double x : data)
        total += x * x;
    return std::sqrt(total);
}

double
Matrix::maxAbs() const
{
    double peak = 0.0;
    for (double x : data)
        peak = std::max(peak, std::fabs(x));
    return peak;
}

std::string
Matrix::shape() const
{
    std::ostringstream out;
    out << nRows << "x" << nCols;
    return out.str();
}

} // namespace adrias::ml
