/**
 * @file
 * Extension (§II) — L1/L2 complementarity: the paper argues that
 * placement-time orchestration (L1, Adrias) and runtime management
 * (L2, e.g. migration) are orthogonal layers that compose.  We measure
 * all four combinations: {random, adrias} x {no runtime, threshold
 * migrator}.
 *
 * Expected: the migrator rescues reckless random placements
 * substantially, while adding it on top of Adrias changes little —
 * good placement leaves few mistakes for the runtime layer to fix.
 */

#include <iostream>

#include "bench/common.hh"

namespace
{

using namespace adrias;

struct Cell
{
    double median = 0.0;
    double p95 = 0.0;
    std::size_t migrations = 0;
};

Cell
evaluate(scenario::PlacementPolicy &placement, bool with_migrator,
         std::size_t repeats)
{
    Cell cell;
    std::vector<double> times;
    for (std::size_t i = 0; i < repeats; ++i) {
        scenario::ScenarioRunner runner(
            bench::evalScenario(8000 + i * 13, 20));
        core::MigratorConfig config;
        config.slowdownThreshold = 2.0;
        core::ThresholdMigrator migrator(config);
        const auto result =
            runner.run(placement, with_migrator ? &migrator : nullptr);
        for (const auto &record : result.records) {
            if (record.cls != WorkloadClass::BestEffort)
                continue;
            times.push_back(record.execTimeSec);
            cell.migrations += record.migrations;
        }
    }
    cell.median = stats::quantile(times, 0.5);
    cell.p95 = stats::quantile(times, 0.95);
    return cell;
}

} // namespace

int
main()
{
    bench::banner("Extension §II — L1 placement x L2 migration",
                  "paper claims the layers are orthogonal and "
                  "complementary; no figure exists");

    core::AdriasStack stack(bench::stackOptions());
    const auto repeats = static_cast<std::size_t>(
        bench::envInt("ADRIAS_BENCH_SCENARIOS", 4) / 2 + 1);

    TextTable table({"L1 placement", "L2 runtime", "BE median (s)",
                     "BE p95 (s)", "migrations"});
    auto add_rows = [&](scenario::PlacementPolicy &policy) {
        for (bool with_migrator : {false, true}) {
            const Cell cell =
                evaluate(policy, with_migrator, repeats);
            table.addRow({policy.name(),
                          with_migrator ? "threshold-migrator" : "none",
                          formatDouble(cell.median, 1),
                          formatDouble(cell.p95, 1),
                          std::to_string(cell.migrations)});
        }
    };

    scenario::RandomPlacement random(5);
    add_rows(random);
    core::AdriasConfig config;
    config.beta = 0.8;
    auto adrias = stack.makeOrchestrator(config);
    add_rows(adrias);

    std::cout << table.toString();
    std::cout << "\nShape check: the migrator sharply improves the "
                 "random rows' tail and barely changes the adrias rows "
                 "— L1 quality determines how much work L2 has left.\n";
    return 0;
}
