/**
 * @file
 * Fig. 2 — Limits of hardware memory disaggregation on ThymesisFlow.
 *
 * Sweeps 1..32 memory-bandwidth iBench trashers on remote memory and
 * reports achieved channel throughput, channel latency and the local
 * memory-hierarchy counters.  Expected shape (R1-R3): throughput caps
 * near 2.5 Gbps; latency ~350 cycles up to 4 trashers, ~900 at >= 8;
 * local MEM counters rise with remote traffic.
 */

#include <iostream>

#include "bench/common.hh"

int
main()
{
    using namespace adrias;
    bench::banner("Fig. 2 — ThymesisFlow link limits",
                  bench::linkClaim(testbed::kThymesisFlowProfile) +
                      " at >= 8 memBw trashers");

    testbed::Testbed bed;
    bed.setNoise(0.0);
    const auto &spec = workloads::ibenchSpec(workloads::IBenchKind::MemBw);

    TextTable table({"memBw trashers", "throughput (Gbps)",
                     "channel latency (cycles)", "LLC loads (M/s)",
                     "MEM ld (GB/s)", "MEM st (GB/s)", "flits rx (M/s)"});

    for (int n : {1, 2, 4, 8, 16, 32}) {
        std::vector<testbed::LoadDescriptor> loads;
        for (int i = 0; i < n; ++i)
            loads.push_back(spec.toLoad(static_cast<DeploymentId>(i),
                                        MemoryMode::Remote));
        const auto tick = bed.tick(loads);
        const auto &c = tick.counters;
        table.addRow(
            std::to_string(n),
            {tick.remoteTrafficGBps * 8.0,
             tick.channelLatencyCycles,
             c[static_cast<std::size_t>(testbed::PerfEvent::LlcLoads)],
             c[static_cast<std::size_t>(testbed::PerfEvent::MemLoads)],
             c[static_cast<std::size_t>(testbed::PerfEvent::MemStores)],
             c[static_cast<std::size_t>(testbed::PerfEvent::RemoteRx)]},
            2);
    }
    std::cout << table.toString();

    std::cout << "\nShape check: throughput plateau and latency step "
                 "reproduce observations R1/R2.\n";
    return 0;
}
