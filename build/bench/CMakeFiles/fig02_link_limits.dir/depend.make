# Empty dependencies file for fig02_link_limits.
# This may be replaced when dependencies are built.
