/**
 * @file
 * Layer abstraction of the deep-learning substrate.
 *
 * Layers own their parameters and cache forward activations so that a
 * subsequent backward() can produce input gradients and accumulate
 * parameter gradients.  Models (src/models) compose layers manually —
 * there is no autograd graph; explicit composition keeps the two-branch
 * Adrias performance model (Fig. 11b) easy to follow and test.
 */

#ifndef ADRIAS_ML_LAYER_HH
#define ADRIAS_ML_LAYER_HH

#include <string>
#include <vector>

#include "ml/matrix.hh"

namespace adrias::ml
{

/** A trainable tensor with its gradient accumulator. */
struct Param
{
    std::string name;
    Matrix value;
    Matrix grad;

    Param(std::string name_, Matrix value_)
        : name(std::move(name_)), value(std::move(value_)),
          grad(value.rows(), value.cols())
    {
    }

    /** Zero the gradient accumulator. */
    void zeroGrad() { grad.setZero(); }
};

/**
 * Abstract differentiable transformation of a (batch x features)
 * activation matrix.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Compute outputs and cache whatever backward() needs.
     *
     * @param input (batch x in_features) activations.
     * @return (batch x out_features) activations.
     */
    virtual Matrix forward(const Matrix &input) = 0;

    /**
     * Back-propagate through the most recent forward().
     *
     * @param grad_output dLoss/dOutput, same shape as the last output.
     * @return dLoss/dInput, same shape as the last input.
     */
    virtual Matrix backward(const Matrix &grad_output) = 0;

    /** @return the layer's trainable parameters (may be empty). */
    virtual std::vector<Param *> params() { return {}; }

    /** Switch between training (dropout on, BN batch stats) and eval. */
    virtual void setTraining(bool training) { isTraining = training; }

    /**
     * Begin exact population-statistics re-estimation (BatchNorm).
     *
     * Between begin and end, forward passes (in training mode) should
     * accumulate population statistics; endStatsEstimation() then
     * replaces the running statistics with the exact population values.
     * No-op for stateless layers.
     */
    virtual void beginStatsEstimation() {}

    /** Finish population-statistics re-estimation. */
    virtual void endStatsEstimation() {}

    /**
     * Non-trainable state that must survive serialization (e.g.
     * BatchNorm running statistics).  Empty for stateless layers.
     */
    virtual std::vector<Matrix *> stateTensors() { return {}; }

    /** @return true while in training mode. */
    bool training() const { return isTraining; }

    /**
     * Inference fast-path toggle (DESIGN.md §11): when on, forward()
     * skips caching activations for backward() — outputs are bitwise
     * unchanged, but a subsequent backward() panics.  Deliberately
     * separate from setTraining(): eval-mode backward (e.g. gradient
     * checks through frozen normalization statistics) is a supported
     * combination, so skipping caches must be an explicit opt-in.
     */
    virtual void setInference(bool on) { isInference = on; }

    /** @return true while the inference fast-path is active. */
    bool inference() const { return isInference; }

  protected:
    bool isTraining = true;
    bool isInference = false;
};

} // namespace adrias::ml

#endif // ADRIAS_ML_LAYER_HH
