#include "common/logging.hh"

#include <iostream>
#include <stdexcept>

namespace adrias
{

namespace
{

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "DEBUG";
      case LogLevel::Info:
        return "INFO";
      case LogLevel::Warn:
        return "WARN";
      case LogLevel::Error:
        return "ERROR";
      case LogLevel::Off:
        return "OFF";
    }
    return "?";
}

} // namespace

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, const std::string &message)
{
    MutexLock lock(mu);
    if (static_cast<int>(level) < static_cast<int>(minLevel))
        return;
    std::cerr << "[adrias:" << levelName(level) << "] " << message << "\n";
}

void
logDebug(const std::string &message)
{
    Logger::instance().log(LogLevel::Debug, message);
}

void
logInfo(const std::string &message)
{
    Logger::instance().log(LogLevel::Info, message);
}

void
logWarn(const std::string &message)
{
    Logger::instance().log(LogLevel::Warn, message);
}

void
logError(const std::string &message)
{
    Logger::instance().log(LogLevel::Error, message);
}

void
fatal(const std::string &message)
{
    Logger::instance().log(LogLevel::Error, "fatal: " + message);
    throw std::runtime_error("fatal: " + message);
}

void
panic(const std::string &message)
{
    Logger::instance().log(LogLevel::Error, "panic: " + message);
    throw std::logic_error("panic: " + message);
}

} // namespace adrias
