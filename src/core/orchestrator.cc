#include "core/orchestrator.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "scenario/runner.hh"

namespace adrias::core
{

AdriasOrchestrator::AdriasOrchestrator(const models::PredictorBase &predictor_,
                                       scenario::SignatureStore &signatures_,
                                       AdriasConfig config_)
    : predictor(&predictor_), signatures(&signatures_), policy(config_)
{
    if (policy.beta <= 0.0 || policy.beta > 1.5)
        fatal("AdriasOrchestrator: beta out of sensible range");
    if (!predictor->trained())
        fatal("AdriasOrchestrator requires a trained Predictor");
}

AdriasOrchestrator::AdriasOrchestrator(models::GuardedPredictor &guard_,
                                       scenario::SignatureStore &signatures_,
                                       AdriasConfig config_)
    : AdriasOrchestrator(static_cast<const models::PredictorBase &>(guard_),
                         signatures_, config_)
{
    guard = &guard_;
}

std::string
AdriasOrchestrator::name() const
{
    std::ostringstream out;
    out << "adrias-b" << formatDouble(policy.beta, 1);
    return out.str();
}

double
AdriasOrchestrator::qosFor(const std::string &app_name) const
{
    auto it = policy.qosP99Ms.find(app_name);
    return it == policy.qosP99Ms.end() ? policy.defaultQosP99Ms
                                       : it->second;
}

MemoryMode
AdriasOrchestrator::fallbackPlacement(const workloads::WorkloadSpec &spec)
{
    ++decisionStats.fallbackPlacements;
    return spec.cls == WorkloadClass::LatencyCritical
               ? policy.degradedLcMode
               : policy.degradedBeMode;
}

bool
AdriasOrchestrator::degraded() const
{
    return guard != nullptr && guard->degraded();
}

OrchestratorStats
AdriasOrchestrator::stats() const
{
    OrchestratorStats merged = decisionStats;
    if (guard != nullptr) {
        merged.breakerTrips = guard->breaker().stats().trips;
        merged.breakerRecoveries = guard->breaker().stats().recoveries;
    }
    merged.samplesRepaired = lastWatcherHealth.samplesRepaired;
    merged.samplesDropped = lastWatcherHealth.samplesDropped;
    return merged;
}

MemoryMode
AdriasOrchestrator::place(const workloads::WorkloadSpec &spec,
                          const telemetry::Watcher &watcher, SimTime now)
{
    if (guard != nullptr)
        guard->beginDecision(now);
    lastWatcherHealth = watcher.health();

    // Unknown application: bootstrap on remote memory and capture its
    // signature from this run (paper §V-C).
    if (!signatures->has(spec.name)) {
        ++decisionStats.bootstrapPlacements;
        ++decisionStats.remotePlacements;
        return MemoryMode::Remote;
    }

    // Cold telemetry (scenario warm-up): fall back to the conventional
    // placement until a history window exists.
    if (watcher.sampleCount() == 0) {
        ++decisionStats.localPlacements;
        return MemoryMode::Local;
    }

    const auto history = watcher.binnedWindow(
        scenario::ScenarioRunner::kWindowSec,
        scenario::ScenarioRunner::kWindowBins);
    const auto &signature = signatures->get(spec.name);

    MemoryMode mode = MemoryMode::Local;
    try {
        if (spec.cls == WorkloadClass::BestEffort) {
            const double t_local = predictor->predictPerformance(
                spec.cls, history, signature, MemoryMode::Local);
            const double t_remote = predictor->predictPerformance(
                spec.cls, history, signature, MemoryMode::Remote);
            mode = t_local < policy.beta * t_remote ? MemoryMode::Local
                                                    : MemoryMode::Remote;
        } else if (spec.cls == WorkloadClass::LatencyCritical) {
            const double p99_remote = predictor->predictPerformance(
                spec.cls, history, signature, MemoryMode::Remote);
            mode = p99_remote <= qosFor(spec.name) ? MemoryMode::Remote
                                                   : MemoryMode::Local;
        } else {
            panic("AdriasOrchestrator asked to place a trasher");
        }
    } catch (const models::PredictionUnavailable &err) {
        // Degraded mode: the prediction path is sick (breaker open,
        // deadline blown, crash window, invalid inputs).  Keep placing
        // with the heuristic instead of taking the placement loop down.
        ++decisionStats.predictionFailures;
        logWarn(std::string("AdriasOrchestrator degraded: ") +
                err.what());
        mode = fallbackPlacement(spec);
    }

    if (mode == MemoryMode::Remote)
        ++decisionStats.remotePlacements;
    else
        ++decisionStats.localPlacements;
    return mode;
}

void
AdriasOrchestrator::onCompletion(const scenario::DeploymentRecord &record)
{
    if (record.cls == WorkloadClass::Interference)
        return;
    // First encounter finished its bootstrap run on remote memory:
    // store the captured execution-window metrics as its signature.
    if (!signatures->has(record.name) && !record.executionWindow.empty())
        signatures->put(record.name, record.executionWindow);
}

} // namespace adrias::core
