/**
 * @file
 * Circuit breaker protecting callers from a misbehaving dependency
 * (here: the Predictor's inference path).
 *
 * Classic three-state machine:
 *
 *   Closed ──(K consecutive failures)──▶ Open
 *   Open ──(backoff elapsed)──▶ HalfOpen
 *   HalfOpen ──(M probe successes)──▶ Closed   [recovery]
 *   HalfOpen ──(any failure)──▶ Open           [backoff doubles]
 *
 * Time is simulation time (whole seconds), supplied by the caller, so
 * breaker behaviour is deterministic and testable.
 */

#ifndef ADRIAS_FAULT_CIRCUIT_BREAKER_HH
#define ADRIAS_FAULT_CIRCUIT_BREAKER_HH

#include <cstddef>
#include <string>

#include "common/error.hh"
#include "common/io/binary.hh"
#include "common/io/checkpoint_annotations.hh"
#include "common/types.hh"

namespace adrias::fault
{

/** Breaker tuning knobs. */
struct CircuitBreakerConfig
{
    /** Consecutive failures in Closed state that trip the breaker. */
    std::size_t failureThreshold = 3;

    /** Backoff before the first half-open probe, seconds. */
    SimTime backoffStartSec = 8;

    /** Backoff growth factor after each failed probe. */
    double backoffMultiplier = 2.0;

    /** Backoff ceiling, seconds. */
    SimTime backoffMaxSec = 120;

    /** Probe successes required to close again from HalfOpen. */
    std::size_t halfOpenSuccesses = 2;
};

/** Breaker state (see file header for the transition diagram). */
enum class BreakerState : std::uint8_t
{
    Closed,   ///< healthy: requests flow
    Open,     ///< tripped: requests rejected until backoff elapses
    HalfOpen, ///< probing: limited requests test recovery
};

/** @return human-readable state name. */
std::string toString(BreakerState state);

/** Lifetime tallies of one breaker. */
struct BreakerStats
{
    std::size_t successes = 0;
    std::size_t failures = 0;
    std::size_t trips = 0;      ///< transitions into Open
    std::size_t recoveries = 0; ///< transitions HalfOpen -> Closed
    std::size_t rejected = 0;   ///< requests refused while Open
};

/**
 * Complete exportable state of one breaker: the state machine
 * position, lifetime tallies and backoff bookkeeping.  A breaker
 * restored from a snapshot behaves exactly as the original would —
 * including a HalfOpen breaker's pending probe count.
 */
struct BreakerSnapshot
{
    BreakerState state = BreakerState::Closed;
    BreakerStats stats;
    std::size_t consecutiveFailures = 0;
    std::size_t probeSuccesses = 0;
    SimTime openedAt = 0;
    SimTime backoffSec = 0;
};

/** Deterministic, sim-time-driven circuit breaker. */
class CircuitBreaker
{
  public:
    explicit CircuitBreaker(CircuitBreakerConfig config = {});

    /**
     * Gate one request at time `now`.
     *
     * Transitions Open → HalfOpen when the backoff has elapsed.
     *
     * @return true when the caller may attempt the protected call.
     */
    bool allowRequest(SimTime now);

    /** Report a successful protected call. */
    void recordSuccess(SimTime now);

    /** Report a failed protected call. */
    void recordFailure(SimTime now);

    BreakerState state() const { return current; }
    const BreakerStats &stats() const { return tallies; }
    const CircuitBreakerConfig &config() const { return knobs; }

    /** Current backoff (doubles on repeated trips), seconds. */
    SimTime currentBackoffSec() const { return backoffSec; }

    /** Forget all state and tallies. */
    void reset();

    /** Export the full state machine + tallies (checkpointing). */
    BreakerSnapshot exportState() const;

    /**
     * Restore a state exported with exportState().  The configured
     * knobs are not part of the snapshot (they come from code, not
     * from runtime evolution), but the restored backoff is re-clamped
     * against them.
     */
    void restoreState(const BreakerSnapshot &snapshot);

    /** Serialize exportState() through the DurableFile layer. */
    void saveState(io::BinaryWriter &out) const;

    /** Binary counterpart of restoreState(). */
    [[nodiscard]] Result<void> restoreState(io::BinaryReader &in);

  private:
    CircuitBreakerConfig knobs ADRIAS_NOT_CHECKPOINTED(
        "construction-time tuning; the payload holds only the "
        "evolving breaker state");
    BreakerState current = BreakerState::Closed;
    BreakerStats tallies;

    std::size_t consecutiveFailures = 0;
    std::size_t probeSuccesses = 0;
    SimTime openedAt = 0;
    SimTime backoffSec = 0;

    void trip(SimTime now);
};

} // namespace adrias::fault

#endif // ADRIAS_FAULT_CIRCUIT_BREAKER_HH
