#include "fault/circuit_breaker.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adrias::fault
{

std::string
toString(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed:
        return "closed";
      case BreakerState::Open:
        return "open";
      case BreakerState::HalfOpen:
        return "half-open";
    }
    panic("unknown BreakerState");
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : knobs(config), backoffSec(config.backoffStartSec)
{
    if (knobs.failureThreshold == 0)
        fatal("CircuitBreaker: failureThreshold must be positive");
    if (knobs.backoffStartSec <= 0 || knobs.backoffMaxSec <
                                          knobs.backoffStartSec)
        fatal("CircuitBreaker: invalid backoff range");
    if (knobs.backoffMultiplier < 1.0)
        fatal("CircuitBreaker: backoff multiplier must be >= 1");
    if (knobs.halfOpenSuccesses == 0)
        fatal("CircuitBreaker: halfOpenSuccesses must be positive");
}

void
CircuitBreaker::trip(SimTime now)
{
    current = BreakerState::Open;
    openedAt = now;
    consecutiveFailures = 0;
    probeSuccesses = 0;
    ++tallies.trips;
}

bool
CircuitBreaker::allowRequest(SimTime now)
{
    switch (current) {
      case BreakerState::Closed:
      case BreakerState::HalfOpen:
        return true;
      case BreakerState::Open:
        if (now - openedAt >= backoffSec) {
            current = BreakerState::HalfOpen;
            probeSuccesses = 0;
            return true;
        }
        ++tallies.rejected;
        return false;
    }
    panic("unknown BreakerState");
}

void
CircuitBreaker::recordSuccess(SimTime now)
{
    (void)now;
    ++tallies.successes;
    switch (current) {
      case BreakerState::Closed:
        consecutiveFailures = 0;
        break;
      case BreakerState::HalfOpen:
        if (++probeSuccesses >= knobs.halfOpenSuccesses) {
            current = BreakerState::Closed;
            consecutiveFailures = 0;
            backoffSec = knobs.backoffStartSec;
            ++tallies.recoveries;
        }
        break;
      case BreakerState::Open:
        // A success while Open can only come from a caller ignoring
        // allowRequest(); tolerate it without state change.
        break;
    }
}

void
CircuitBreaker::recordFailure(SimTime now)
{
    ++tallies.failures;
    switch (current) {
      case BreakerState::Closed:
        if (++consecutiveFailures >= knobs.failureThreshold)
            trip(now);
        break;
      case BreakerState::HalfOpen:
        // Failed probe: reopen with an exponentially longer backoff.
        backoffSec = std::min(
            knobs.backoffMaxSec,
            static_cast<SimTime>(static_cast<double>(backoffSec) *
                                 knobs.backoffMultiplier));
        trip(now);
        break;
      case BreakerState::Open:
        break;
    }
}

void
CircuitBreaker::reset()
{
    current = BreakerState::Closed;
    tallies = BreakerStats{};
    consecutiveFailures = 0;
    probeSuccesses = 0;
    openedAt = 0;
    backoffSec = knobs.backoffStartSec;
}

} // namespace adrias::fault
