/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything stochastic in the library (scenario arrivals, workload
 * selection, dropout masks, weight initialization) draws from an Rng so
 * experiments are reproducible from a single seed.  The core generator is
 * xoshiro256**, seeded via splitmix64 as its authors recommend.
 */

#ifndef ADRIAS_COMMON_RNG_HH
#define ADRIAS_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace adrias
{

namespace io
{
class BinaryWriter;
class BinaryReader;
} // namespace io

/**
 * A small, fast, seedable random number generator (xoshiro256**).
 *
 * Not cryptographically secure; intended for simulation reproducibility.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (any value, including 0, is valid). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit value. */
    std::uint64_t nextU64();

    /** @return a double uniformly distributed in [0, 1). */
    double uniform();

    /** @return a double uniformly distributed in [lo, hi). */
    double uniform(double lo, double hi);

    /**
     * @return an integer uniformly distributed in [lo, hi] inclusive.
     * @pre lo <= hi
     */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** @return a sample from the standard normal distribution N(0, 1). */
    double gaussian();

    /** @return a sample from N(mean, stddev^2). */
    double gaussian(double mean, double stddev);

    /**
     * @return a sample from the exponential distribution with given mean.
     * @pre mean > 0
     */
    double exponential(double mean);

    /** @return true with the given probability (clamped to [0, 1]). */
    bool bernoulli(double probability);

    /**
     * Pick an index according to a vector of non-negative weights.
     *
     * @param weights per-index weights; at least one must be positive.
     * @return index in [0, weights.size()).
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Derive an independent child generator (for parallel streams). */
    Rng split();

    /**
     * Serialize the exact stream position: the four xoshiro256** state
     * words plus the cached Box-Muller variate.  A restored generator
     * continues the sequence bit-for-bit where the saved one stopped —
     * gaussian() draws included.
     */
    void saveState(io::BinaryWriter &out) const;

    /** Restore a position saved with saveState(). */
    void restoreState(io::BinaryReader &in);

    /** Fisher-Yates shuffle of an index container. */
    template <typename Container>
    void
    shuffle(Container &items)
    {
        if (items.size() < 2)
            return;
        for (std::size_t i = items.size() - 1; i > 0; --i) {
            auto j = static_cast<std::size_t>(
                uniformInt(0, static_cast<std::int64_t>(i)));
            std::swap(items[i], items[j]);
        }
    }

  private:
    std::uint64_t state[4];

    /** Cached second Box-Muller variate (NaN when absent). */
    double cachedGaussian;
    bool hasCachedGaussian = false;
};

} // namespace adrias

#endif // ADRIAS_COMMON_RNG_HH
