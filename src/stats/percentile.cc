#include "stats/percentile.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace adrias::stats
{

double
quantile(std::vector<double> values, double q)
{
    // Validate q before the empty-sample early-out so a caller bug is
    // reported even when there happens to be no data yet.  The NaN
    // check must be explicit: NaN compares false against both bounds,
    // and would otherwise flow into the floor/size_t cast below —
    // undefined behaviour, not merely a wrong answer.
    if (!(q >= 0.0 && q <= 1.0))
        fatal("quantile: q must lie in [0, 1]");
    if (values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values.front();
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

double
PercentileTracker::quantile(double q) const
{
    return stats::quantile(samples, q);
}

double
PercentileTracker::mean() const
{
    // NaN, not 0.0: an empty tracker must read as "no data", exactly
    // like quantile().  A zero here once let an idle LC app report a
    // perfect mean latency.
    if (samples.empty())
        return std::numeric_limits<double>::quiet_NaN();
    double total = 0.0;
    for (double v : samples)
        total += v;
    return total / static_cast<double>(samples.size());
}

ReservoirSampler::ReservoirSampler(std::size_t capacity, std::uint64_t seed)
    : cap(capacity), rng(seed)
{
    if (capacity == 0)
        fatal("ReservoirSampler capacity must be positive");
    reservoir.reserve(capacity);
}

void
ReservoirSampler::add(double value)
{
    ++seen;
    if (reservoir.size() < cap) {
        reservoir.push_back(value);
        return;
    }
    // Algorithm R: this is observation number `seen` (1-based), so the
    // slot draw must cover {0, ..., seen-1} *inclusive* — uniformInt's
    // closed upper bound is load-bearing.  P(slot < cap) = cap/seen,
    // the textbook replacement probability; excluding the bound (or
    // drawing before ++seen) would over-retain late observations.
    const auto slot = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(seen - 1)));
    if (slot < cap)
        reservoir[slot] = value;
}

double
ReservoirSampler::quantile(double q) const
{
    return stats::quantile(reservoir, q);
}

} // namespace adrias::stats
