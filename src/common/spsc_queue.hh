/**
 * @file
 * Bounded lock-free single-producer/single-consumer queue (Lamport
 * ring) — the ingest path between one sharded Watcher feed and the
 * DecisionService drain loop.
 *
 * Concurrency contract:
 *  - exactly ONE producer thread calls tryPush()/full(), and exactly
 *    ONE consumer thread calls tryPop()/empty(); which thread plays
 *    which role may change only across a synchronization point (e.g. a
 *    join, or a quiesced checkpoint).
 *  - tryPush() publishes the slot with a release store of `tail`;
 *    tryPop() acquires `tail` before reading the slot, so the element
 *    is fully constructed when observed.  Symmetrically the consumer
 *    releases `head` and the producer acquires it before reusing a
 *    slot.
 *  - a full queue back-pressures: tryPush() returns false and the
 *    element is NOT consumed, so the producer decides whether to drop,
 *    retry or count the rejection.
 *
 * size() is exact only when the queue is quiescent (no concurrent
 * push/pop); under concurrency it is a lower/upper bound depending on
 * which side races — fine for stats, not for control flow.
 */

#ifndef ADRIAS_COMMON_SPSC_QUEUE_HH
#define ADRIAS_COMMON_SPSC_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace adrias
{

/** Bounded wait-free SPSC ring; see the file comment for the rules. */
template <typename T>
class SpscQueue
{
  public:
    /** @param capacity maximum queued elements (> 0). */
    explicit SpscQueue(std::size_t capacity) : slots(capacity + 1)
    {
        if (capacity == 0)
            fatal("SpscQueue: capacity must be positive");
    }

    SpscQueue(const SpscQueue &) = delete;
    SpscQueue &operator=(const SpscQueue &) = delete;

    /**
     * Producer side: enqueue one element.
     *
     * @return false (element untouched at the call site: it was moved
     *         from only on success) when the queue is full.
     */
    bool
    tryPush(T value)
    {
        const std::size_t t = tail.load(std::memory_order_relaxed);
        const std::size_t n = next(t);
        if (n == head.load(std::memory_order_acquire))
            return false; // full: back-pressure to the producer
        slots[t] = std::move(value);
        tail.store(n, std::memory_order_release);
        return true;
    }

    /**
     * Consumer side: dequeue the oldest element.
     *
     * @return false when the queue is empty (out untouched).
     */
    bool
    tryPop(T &out)
    {
        const std::size_t h = head.load(std::memory_order_relaxed);
        if (h == tail.load(std::memory_order_acquire))
            return false; // empty
        out = std::move(slots[h]);
        head.store(next(h), std::memory_order_release);
        return true;
    }

    /** Maximum number of queued elements. */
    std::size_t capacity() const { return slots.size() - 1; }

    /** Queued elements; exact only while quiescent. */
    std::size_t
    size() const
    {
        const std::size_t h = head.load(std::memory_order_acquire);
        const std::size_t t = tail.load(std::memory_order_acquire);
        return t >= h ? t - h : slots.size() - h + t;
    }

    /** Consumer-side emptiness check. */
    bool
    empty() const
    {
        return head.load(std::memory_order_acquire) ==
               tail.load(std::memory_order_acquire);
    }

    /** Producer-side fullness check (true iff tryPush would refuse). */
    bool
    full() const
    {
        return next(tail.load(std::memory_order_acquire)) ==
               head.load(std::memory_order_acquire);
    }

    /**
     * Copy the queued elements oldest-first WITHOUT consuming them.
     * Quiescent-only (checkpointing): no concurrent push/pop may be in
     * flight, otherwise the copy may tear a half-published slot.
     */
    std::vector<T>
    snapshotContents() const
    {
        std::vector<T> contents;
        const std::size_t t = tail.load(std::memory_order_acquire);
        for (std::size_t i = head.load(std::memory_order_acquire);
             i != t; i = next(i))
            contents.push_back(slots[i]);
        return contents;
    }

  private:
    std::size_t next(std::size_t i) const
    {
        return i + 1 == slots.size() ? 0 : i + 1;
    }

    /** capacity+1 slots: one is always empty to distinguish full. */
    std::vector<T> slots;

    /** Consumer cursor: index of the oldest element. */
    std::atomic<std::size_t> head{0};

    /** Producer cursor: index of the next free slot. */
    std::atomic<std::size_t> tail{0};
};

} // namespace adrias

#endif // ADRIAS_COMMON_SPSC_QUEUE_HH
