/**
 * @file
 * SpscQueue edge cases: full-queue back-pressure, index wrap-around,
 * cross-thread FIFO ordering (run under TSan in the serving CI job),
 * and drain-on-shutdown with requests still in flight.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/spsc_queue.hh"

namespace adrias
{
namespace
{

TEST(SpscQueue, RejectsZeroCapacity)
{
    EXPECT_THROW(SpscQueue<int>(0), std::runtime_error);
}

TEST(SpscQueue, FullQueueBackpressures)
{
    SpscQueue<int> queue(3);
    EXPECT_EQ(queue.capacity(), 3u);
    EXPECT_TRUE(queue.tryPush(1));
    EXPECT_TRUE(queue.tryPush(2));
    EXPECT_TRUE(queue.tryPush(3));
    EXPECT_TRUE(queue.full());
    // The rejected element is NOT consumed: the producer owns the
    // retry/drop decision.
    EXPECT_FALSE(queue.tryPush(4));
    EXPECT_EQ(queue.size(), 3u);

    int out = 0;
    EXPECT_TRUE(queue.tryPop(out));
    EXPECT_EQ(out, 1);
    EXPECT_FALSE(queue.full());
    EXPECT_TRUE(queue.tryPush(4));
    EXPECT_FALSE(queue.tryPush(5));
}

TEST(SpscQueue, PopOnEmptyLeavesOutUntouched)
{
    SpscQueue<int> queue(2);
    int out = 42;
    EXPECT_FALSE(queue.tryPop(out));
    EXPECT_EQ(out, 42);
    EXPECT_TRUE(queue.empty());
}

TEST(SpscQueue, WrapAroundPreservesFifoOrder)
{
    // Capacity 3 means 4 slots; cycling far past the ring size proves
    // the cursors wrap cleanly and order survives every wrap.
    SpscQueue<std::size_t> queue(3);
    std::size_t next_push = 0;
    std::size_t next_pop = 0;
    for (int cycle = 0; cycle < 100; ++cycle) {
        while (queue.tryPush(next_push))
            ++next_push;
        std::size_t out = 0;
        while (queue.tryPop(out)) {
            ASSERT_EQ(out, next_pop);
            ++next_pop;
        }
    }
    EXPECT_EQ(next_pop, next_push);
    EXPECT_GT(next_pop, 100u);
}

TEST(SpscQueue, SnapshotContentsIsOldestFirstAndNonConsuming)
{
    SpscQueue<int> queue(4);
    // Force the cursors to a wrapped position first.
    int out = 0;
    ASSERT_TRUE(queue.tryPush(-1));
    ASSERT_TRUE(queue.tryPush(-2));
    ASSERT_TRUE(queue.tryPop(out));
    ASSERT_TRUE(queue.tryPop(out));
    for (int v : {10, 20, 30})
        ASSERT_TRUE(queue.tryPush(v));

    const std::vector<int> snapshot = queue.snapshotContents();
    ASSERT_EQ(snapshot.size(), 3u);
    EXPECT_EQ(snapshot[0], 10);
    EXPECT_EQ(snapshot[1], 20);
    EXPECT_EQ(snapshot[2], 30);
    EXPECT_EQ(queue.size(), 3u); // nothing consumed
    ASSERT_TRUE(queue.tryPop(out));
    EXPECT_EQ(out, 10);
}

TEST(SpscQueue, CrossThreadOrderingUnderContention)
{
    // One producer, one consumer, a deliberately tiny ring so both
    // sides hit the full/empty boundaries constantly.  TSan (the
    // serving CI job) checks the acquire/release pairing; the assert
    // checks FIFO ordering end to end.
    constexpr std::size_t kCount = 5000;
    SpscQueue<std::size_t> queue(4);
    std::vector<std::size_t> received;
    received.reserve(kCount);

    std::thread producer([&queue] {
        for (std::size_t i = 0; i < kCount;) {
            if (queue.tryPush(i))
                ++i;
            else
                std::this_thread::yield();
        }
    });
    std::size_t out = 0;
    while (received.size() < kCount) {
        if (queue.tryPop(out))
            received.push_back(out);
        else
            std::this_thread::yield();
    }
    producer.join();

    ASSERT_EQ(received.size(), kCount);
    for (std::size_t i = 0; i < kCount; ++i)
        ASSERT_EQ(received[i], i);
    EXPECT_TRUE(queue.empty());
}

TEST(SpscQueue, DrainOnShutdownDeliversInFlightElements)
{
    // Producer stops at an arbitrary point (simulated shutdown); the
    // consumer joins it and then drains — every accepted element must
    // come out, none twice.
    SpscQueue<std::size_t> queue(8);
    std::atomic<std::size_t> accepted{0};
    std::atomic<bool> producer_done{false};
    std::thread producer([&queue, &accepted, &producer_done] {
        for (std::size_t i = 0; i < 1000; ++i) {
            if (queue.tryPush(i))
                accepted.fetch_add(1, std::memory_order_relaxed);
        }
        producer_done.store(true, std::memory_order_release);
    });

    std::vector<std::size_t> received;
    std::size_t out = 0;
    // Consume concurrently until the producer shuts down mid-stream
    // (it never retries, so rejected elements are simply dropped).
    while (!producer_done.load(std::memory_order_acquire)) {
        if (queue.tryPop(out))
            received.push_back(out);
    }
    producer.join();

    // Shutdown drain: everything still queued must be delivered.
    while (queue.tryPop(out))
        received.push_back(out);
    EXPECT_EQ(received.size(),
              accepted.load(std::memory_order_relaxed));
    for (std::size_t i = 1; i < received.size(); ++i)
        ASSERT_LT(received[i - 1], received[i]);
    EXPECT_TRUE(queue.empty());
}

} // namespace
} // namespace adrias
