#include "ml/lstm.hh"

#include <cmath>

#include "common/logging.hh"
#include "ml/activation.hh"

namespace adrias::ml
{

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size, Rng &rng)
    : wx("lstm.wx", Matrix(input_size, 4 * hidden_size)),
      wh("lstm.wh", Matrix(hidden_size, 4 * hidden_size)),
      b("lstm.b", Matrix(1, 4 * hidden_size))
{
    const double limit =
        1.0 / std::sqrt(static_cast<double>(hidden_size));
    for (double &w : wx.value.raw())
        w = rng.uniform(-limit, limit);
    for (double &w : wh.value.raw())
        w = rng.uniform(-limit, limit);
    // Forget-gate bias (second H-wide block) starts at one.
    for (std::size_t c = hidden_size; c < 2 * hidden_size; ++c)
        b.value.at(0, c) = 1.0;
}

std::vector<Matrix>
Lstm::forwardSequence(const std::vector<Matrix> &sequence)
{
    if (sequence.empty())
        fatal("Lstm::forwardSequence on empty sequence");

    const std::size_t hidden = hiddenSize();
    const std::size_t batch = sequence.front().rows();

    caches.clear();
    caches.reserve(sequence.size());

    Matrix h_prev(batch, hidden);
    Matrix c_prev(batch, hidden);
    std::vector<Matrix> outputs;
    outputs.reserve(sequence.size());

    for (const Matrix &x : sequence) {
        if (x.rows() != batch || x.cols() != inputSize())
            panic("Lstm: inconsistent sequence element shape");

        Matrix z = x.matmul(wx.value) + h_prev.matmul(wh.value);
        z = z.addRowBroadcast(b.value);

        StepCache cache;
        cache.input = x;
        cache.hPrev = h_prev;
        cache.cPrev = c_prev;
        cache.gateI =
            z.colRange(0, hidden).map(sigmoidScalar);
        cache.gateF =
            z.colRange(hidden, 2 * hidden).map(sigmoidScalar);
        cache.gateG = z.colRange(2 * hidden, 3 * hidden)
                          .map([](double v) { return std::tanh(v); });
        cache.gateO =
            z.colRange(3 * hidden, 4 * hidden).map(sigmoidScalar);

        cache.cell = cache.gateF.hadamard(c_prev) +
                     cache.gateI.hadamard(cache.gateG);
        cache.tanhCell =
            cache.cell.map([](double v) { return std::tanh(v); });

        Matrix h = cache.gateO.hadamard(cache.tanhCell);
        outputs.push_back(h);

        h_prev = std::move(h);
        c_prev = cache.cell;
        caches.push_back(std::move(cache));
    }
    return outputs;
}

std::vector<Matrix>
Lstm::backwardSequence(const std::vector<Matrix> &grad_hidden)
{
    if (grad_hidden.size() != caches.size())
        panic("Lstm::backwardSequence length mismatch with forward pass");
    if (caches.empty())
        panic("Lstm::backwardSequence before forwardSequence");

    const std::size_t hidden = hiddenSize();
    const std::size_t steps = caches.size();
    const std::size_t batch = caches.front().input.rows();

    std::vector<Matrix> grad_inputs(steps);
    Matrix dh_next(batch, hidden);
    Matrix dc_next(batch, hidden);

    auto one_minus_sq = [](double v) { return 1.0 - v * v; };
    auto sig_deriv = [](double v) { return v * (1.0 - v); };

    for (std::size_t step = steps; step-- > 0;) {
        const StepCache &cache = caches[step];

        Matrix dh = grad_hidden[step] + dh_next;

        // h = o * tanh(c)
        Matrix d_o = dh.hadamard(cache.tanhCell);
        Matrix dc =
            dh.hadamard(cache.gateO).hadamard(cache.tanhCell.map(
                one_minus_sq)) +
            dc_next;

        // c = f*c_prev + i*g
        Matrix d_f = dc.hadamard(cache.cPrev);
        Matrix d_i = dc.hadamard(cache.gateG);
        Matrix d_g = dc.hadamard(cache.gateI);
        dc_next = dc.hadamard(cache.gateF);

        // through the gate non-linearities to pre-activations
        Matrix dz_i = d_i.hadamard(cache.gateI.map(sig_deriv));
        Matrix dz_f = d_f.hadamard(cache.gateF.map(sig_deriv));
        Matrix dz_g = d_g.hadamard(cache.gateG.map(one_minus_sq));
        Matrix dz_o = d_o.hadamard(cache.gateO.map(sig_deriv));

        Matrix dz = dz_i.hconcat(dz_f).hconcat(dz_g).hconcat(dz_o);

        wx.grad += cache.input.transposedMatmul(dz);
        wh.grad += cache.hPrev.transposedMatmul(dz);
        b.grad += dz.sumRows();

        grad_inputs[step] = dz.matmulTransposed(wx.value);
        dh_next = dz.matmulTransposed(wh.value);
    }
    return grad_inputs;
}

std::vector<Param *>
Lstm::params()
{
    return {&wx, &wh, &b};
}

} // namespace adrias::ml
