#include "common/invariant.hh"

#include <atomic>

#include "common/logging.hh"

namespace adrias::invariant
{

namespace
{

void
defaultHandler(const Violation &violation)
{
    panic(violation.toString());
}

std::atomic<Handler> currentHandler{&defaultHandler};

} // namespace

std::string
Violation::toString() const
{
    std::string text = "invariant violated: ";
    text += condition;
    if (!message.empty()) {
        text += " (";
        text += message;
        text += ")";
    }
    text += " at ";
    text += file;
    text += ":";
    text += std::to_string(line);
    return text;
}

Handler
setHandler(Handler handler)
{
    return currentHandler.exchange(handler ? handler : &defaultHandler);
}

void
fail(const char *condition, const char *file, int line, std::string message)
{
    Violation violation;
    violation.condition = condition;
    violation.file = file;
    violation.line = line;
    violation.message = std::move(message);
    currentHandler.load()(violation);
}

} // namespace adrias::invariant
