/**
 * @file
 * Stepwise scenario execution engine — the checkpointable core of
 * ScenarioRunner.
 *
 * ScenarioRunner::run() drives a whole scenario in one call; recovery
 * needs the same loop sliced into single ticks with every piece of
 * evolving state (RNG streams, testbed noise, watcher history, running
 * instances, partial results) held as members so it can be snapshotted
 * between ticks and restored bit-exactly after a crash.  The engine
 * reproduces the runner's historical tick loop verbatim — same RNG call
 * order, same observability — so a run driven through stepTick() is
 * byte-identical to the monolithic loop it replaced.
 *
 * Placement decisions flow through an optional DecisionSink *before*
 * they are applied (write-ahead): the recovery layer appends them to a
 * durable journal so a crash between checkpoints can be replayed.
 * During replay the engine still queries the policy (keeping policy
 * RNG streams advancing identically) and cross-checks each re-derived
 * decision against the queued journal entry; any divergence is a
 * determinism bug and panics rather than silently forking the run.
 */

#ifndef ADRIAS_SCENARIO_ENGINE_HH
#define ADRIAS_SCENARIO_ENGINE_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/io/binary.hh"
#include "common/io/checkpoint_annotations.hh"
#include "common/io/checkpointable.hh"
#include "common/rng.hh"
#include "fault/fault.hh"
#include "scenario/runner.hh"
#include "scenario/runtime.hh"
#include "telemetry/watcher.hh"
#include "testbed/testbed.hh"
#include "workloads/workload.hh"

namespace adrias::scenario
{

/** One policy placement decision, as journaled write-ahead. */
struct PlacementDecision
{
    /** Tick on which the decision was made. */
    SimTime tick = 0;

    /** Deployment id assigned to the arrival. */
    DeploymentId id = 0;

    /** Spec (by canonical name) the decision was made for. */
    std::string specName;

    /** The chosen placement. */
    MemoryMode mode = MemoryMode::Local;

    bool
    operator==(const PlacementDecision &other) const
    {
        return tick == other.tick && id == other.id &&
               specName == other.specName && mode == other.mode;
    }
};

/**
 * Observer of placement decisions, invoked BEFORE a decision takes
 * effect.  Implementations must make the decision durable before
 * returning (write-ahead contract); throwing aborts the tick.
 */
class DecisionSink
{
  public:
    virtual ~DecisionSink() = default;

    /** Called once per policy placement, before the app deploys. */
    virtual void onDecision(const PlacementDecision &decision) = 0;
};

/** Single-tick scenario execution with full state capture. */
class ScenarioEngine : public io::Checkpointable
{
  public:
    /**
     * @param config scenario knobs (validated like ScenarioRunner).
     * @param params testbed calibration.
     */
    explicit ScenarioEngine(ScenarioConfig config,
                            testbed::TestbedParams params = {});

    /** @return true once the configured duration has elapsed. */
    bool finished() const { return now_ >= config.durationSec; }

    /** Current simulation time (ticks executed so far). */
    SimTime now() const { return now_; }

    /**
     * Execute exactly one simulated second: arrivals, contention,
     * telemetry, progress and completions.
     *
     * @pre !finished()
     */
    void stepTick(PlacementPolicy &policy,
                  RuntimePolicy *runtime = nullptr);

    /**
     * Finalize and move the result out (fault summary and watcher
     * health are stamped here, as the monolithic runner did at loop
     * exit).
     *
     * @pre finished()
     */
    ScenarioResult finish();

    /** Live telemetry (for policies queried outside stepTick). */
    const telemetry::Watcher &watcher() const { return watcherState; }

    /** Number of currently running deployments. */
    std::size_t runningCount() const { return running.size(); }

    /** Attach/detach the write-ahead decision observer. */
    void setDecisionSink(DecisionSink *sink) { decisionSink = sink; }

    /**
     * Queue one journaled decision for replay verification.  While the
     * queue is non-empty, stepTick() checks each policy decision
     * against the queue head instead of notifying the sink.
     */
    void queueReplayDecision(const PlacementDecision &decision);

    /** Journal entries still awaiting replay. */
    std::size_t pendingReplay() const { return replayQueue.size(); }

    // --- Checkpointable ------------------------------------------------
    std::string checkpointTag() const override
    {
        return "scenario-engine";
    }

    /**
     * Serialize all evolving state.  Must not be called while replay
     * decisions are pending (the queue belongs to the previous journal
     * epoch); the CheckpointManager defers checkpoints until the queue
     * drains.
     */
    void saveState(io::BinaryWriter &out) const override;

    /** Restore a payload written by saveState(). */
    [[nodiscard]] Result<void>
    restoreState(io::BinaryReader &in) override;

    /** History window length r and horizon z, seconds (paper: 120). */
    static constexpr std::size_t kWindowSec = ScenarioRunner::kWindowSec;

    /** Sequence bins used for model inputs (10 s bins over 120 s). */
    static constexpr std::size_t kWindowBins =
        ScenarioRunner::kWindowBins;

  private:
    ScenarioConfig config ADRIAS_NOT_CHECKPOINTED(
        "construction-time configuration; restoreState validates the "
        "snapshot against it");
    testbed::TestbedParams testbedParams ADRIAS_NOT_CHECKPOINTED(
        "construction-time calibration, re-supplied on restore");

    // Evolving state, in the exact construction order of the
    // historical ScenarioRunner::run() preamble (the Testbed seed is
    // the scenario Rng's first draw).
    Rng rng;
    testbed::Testbed bed;
    telemetry::Watcher watcherState;
    fault::FaultInjector injector;

    ScenarioResult result;
    std::vector<std::unique_ptr<workloads::WorkloadInstance>> running;
    DeploymentId nextId = 1;
    SimTime nextArrival = 0;
    SimTime now_ = 0;

    DecisionSink *decisionSink ADRIAS_NOT_CHECKPOINTED(
        "runtime observer wiring, re-attached after restore") = nullptr;
    std::deque<PlacementDecision> replayQueue ADRIAS_NOT_CHECKPOINTED(
        "transient replay scaffolding; saveState panics mid-replay");

    /** Deploy arrivals scheduled at or before now_. */
    void admitArrivals(PlacementPolicy &policy);

    /** Harvest finished instances into completion records. */
    void harvestCompletions(PlacementPolicy &policy);
};

} // namespace adrias::scenario

#endif // ADRIAS_SCENARIO_ENGINE_HH
