/**
 * @file
 * Runtime state of one deployed workload instance.
 *
 * Instances advance tick by tick against the testbed's contention
 * outcomes: best-effort jobs accumulate progress until their work is
 * done, latency-critical servers sample per-request latencies through a
 * closed-loop (memtier-like) client model, and iBench trashers simply
 * occupy resources for a fixed wall-clock duration.
 */

#ifndef ADRIAS_WORKLOADS_WORKLOAD_HH
#define ADRIAS_WORKLOADS_WORKLOAD_HH

#include <optional>

#include "common/rng.hh"
#include "common/types.hh"
#include "stats/percentile.hh"
#include "testbed/load.hh"
#include "workloads/spec.hh"

namespace adrias::workloads
{

/** A deployed, running (or finished) workload. */
class WorkloadInstance
{
  public:
    /**
     * @param id unique deployment id.
     * @param spec behaviour model.
     * @param mode memory placement chosen by the orchestrator.
     * @param arrival simulation time of deployment.
     * @param seed latency-noise RNG seed.
     * @param load_factor client-load multiplier for LC apps (1 = the
     *        paper's nominal memtier load).
     */
    WorkloadInstance(DeploymentId id, const WorkloadSpec &spec,
                     MemoryMode mode, SimTime arrival,
                     std::uint64_t seed, double load_factor = 1.0);

    /** @return the load this instance presents to the testbed now. */
    testbed::LoadDescriptor load() const;

    /**
     * Consume one tick's contention outcome.
     *
     * @param outcome the testbed's verdict for this instance.
     * @param now current simulation time (end of the tick).
     */
    void advance(const testbed::LoadOutcome &outcome, SimTime now);

    /** @return true once the instance's run model has completed. */
    bool finished() const { return done; }

    DeploymentId id() const { return deploymentId; }
    const WorkloadSpec &spec() const { return *specification; }
    MemoryMode mode() const { return memoryMode; }
    SimTime arrivalTime() const { return arrival; }

    /** Wall-clock execution time; only meaningful once finished. */
    double executionTimeSec() const;

    /** LC: tail latency of all sampled requests so far, ms. */
    double tailLatencyMs(double q) const;

    /** LC: mean request latency, ms. */
    double meanLatencyMs() const;

    /** Mean slowdown observed across ticks so far. */
    double meanSlowdown() const;

    /** Total bytes moved over the ThymesisFlow channel, GB. */
    double remoteTrafficGB() const { return remoteGb; }

    /** Progress in [0, 1] for BE jobs; request fraction for LC. */
    double progressFraction() const;

    /**
     * Request an L2 migration to the other memory pool (paper §II's
     * runtime-management layer, complementary to Adrias).
     *
     * The instance pauses for @p pause_sec seconds (data copy over the
     * channel), during which it makes no progress but still occupies
     * resources; afterwards it resumes in @p target mode.  No-op when
     * already in @p target or mid-migration.
     *
     * @return true if a migration was started.
     */
    bool requestMigration(MemoryMode target, double pause_sec);

    /** @return true while a migration pause is in effect. */
    bool migrating() const { return migrationRemaining > 0.0; }

    /** @return number of completed migrations. */
    std::size_t migrationCount() const { return migrationsDone; }

  private:
    DeploymentId deploymentId;
    const WorkloadSpec *specification;
    MemoryMode memoryMode;
    SimTime arrival;
    Rng rng;
    double loadFactor;

    bool done = false;
    SimTime completion = -1;

    // BE / interference progress
    double progressSec = 0.0;   ///< unimpeded-equivalent seconds done
    double elapsedSec = 0.0;    ///< wall-clock seconds so far

    // LC request accounting
    double requestsServed = 0.0;
    stats::PercentileTracker latencies;

    // aggregates
    double slowdownSum = 0.0;
    std::size_t ticks = 0;
    double remoteGb = 0.0;

    // L2 migration state
    double migrationRemaining = 0.0; ///< pause seconds left
    double migrationPauseTotal = 1.0;
    MemoryMode migrationTarget = MemoryMode::Local;
    std::size_t migrationsDone = 0;

    /** Base server utilization at nominal load (queueing model). */
    static constexpr double kBaseUtilization = 0.6;

    /** Request-latency samples drawn per tick for the tail estimate. */
    static constexpr int kSamplesPerTick = 24;

    void advanceLatencyCritical(const testbed::LoadOutcome &outcome);
};

} // namespace adrias::workloads

#endif // ADRIAS_WORKLOADS_WORKLOAD_HH
