#include "lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace adrias::lint
{

namespace
{

// --------------------------------------------------------------------------
// Source preprocessing
// --------------------------------------------------------------------------

/** Split into lines, keeping no terminators. */
std::vector<std::string>
splitLines(const std::string &content)
{
    std::vector<std::string> lines;
    std::string current;
    for (char c : content) {
        if (c == '\n') {
            lines.push_back(current);
            current.clear();
        } else if (c != '\r') {
            current.push_back(c);
        }
    }
    lines.push_back(current);
    return lines;
}

/**
 * Blank out comments and string/char literals, preserving line and
 * column structure so findings report accurate positions.  Raw string
 * literals are not understood.
 */
std::vector<std::string>
stripCommentsAndStrings(const std::vector<std::string> &lines)
{
    enum class State
    {
        Code,
        BlockComment,
        String,
        Char,
    };

    std::vector<std::string> out;
    out.reserve(lines.size());
    State state = State::Code;

    for (const std::string &line : lines) {
        std::string stripped(line.size(), ' ');
        for (std::size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            const char next = i + 1 < line.size() ? line[i + 1] : '\0';
            switch (state) {
              case State::Code:
                if (c == '/' && next == '/') {
                    i = line.size(); // rest of line is comment
                } else if (c == '/' && next == '*') {
                    state = State::BlockComment;
                    ++i;
                } else if (c == '"') {
                    state = State::String;
                } else if (c == '\'') {
                    state = State::Char;
                } else {
                    stripped[i] = c;
                }
                break;
              case State::BlockComment:
                if (c == '*' && next == '/') {
                    state = State::Code;
                    ++i;
                }
                break;
              case State::String:
                if (c == '\\')
                    ++i; // skip escaped char
                else if (c == '"')
                    state = State::Code;
                break;
              case State::Char:
                if (c == '\\')
                    ++i;
                else if (c == '\'')
                    state = State::Code;
                break;
            }
        }
        // Unterminated string/char at EOL: treat as closed (the
        // compiler would reject it anyway).
        if (state == State::String || state == State::Char)
            state = State::Code;
        out.push_back(std::move(stripped));
    }
    return out;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** All identifiers in a stripped line, with their start columns. */
std::vector<std::pair<std::string, std::size_t>>
identifiersIn(const std::string &line)
{
    std::vector<std::pair<std::string, std::size_t>> ids;
    std::size_t i = 0;
    while (i < line.size()) {
        if (isIdentChar(line[i]) &&
            !std::isdigit(static_cast<unsigned char>(line[i]))) {
            const std::size_t start = i;
            while (i < line.size() && isIdentChar(line[i]))
                ++i;
            ids.emplace_back(line.substr(start, i - start), start);
        } else {
            ++i;
        }
    }
    return ids;
}

/** First non-whitespace character at/after `pos`, or '\0'. */
char
nextNonSpace(const std::string &line, std::size_t pos)
{
    while (pos < line.size()) {
        if (!std::isspace(static_cast<unsigned char>(line[pos])))
            return line[pos];
        ++pos;
    }
    return '\0';
}

std::string
trimmed(const std::string &line)
{
    std::size_t begin = 0;
    std::size_t end = line.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(line[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(line[end - 1])))
        --end;
    return line.substr(begin, end - begin);
}

// --------------------------------------------------------------------------
// NOLINT escapes
// --------------------------------------------------------------------------

/** Does this raw line carry NOLINT/NOLINTNEXTLINE for `rule`? */
bool
lineHasEscape(const std::string &raw, const std::string &marker,
              const std::string &rule)
{
    const std::size_t at = raw.find(marker);
    if (at == std::string::npos)
        return false;
    const std::size_t after = at + marker.size();
    // Bare "NOLINT" must not also match "NOLINTNEXTLINE".
    if (after < raw.size() && isIdentChar(raw[after]))
        return false;
    if (after >= raw.size() || raw[after] != '(')
        return true; // blanket escape
    const std::size_t close = raw.find(')', after);
    const std::string list =
        raw.substr(after + 1, close == std::string::npos
                                  ? std::string::npos
                                  : close - after - 1);
    return list.find(rule) != std::string::npos;
}

/** NOLINT on line `index`, or NOLINTNEXTLINE on the line above. */
bool
suppressed(const std::vector<std::string> &raw_lines, std::size_t index,
           const std::string &rule)
{
    if (lineHasEscape(raw_lines[index], "NOLINT", rule))
        return true;
    return index > 0 &&
           lineHasEscape(raw_lines[index - 1], "NOLINTNEXTLINE", rule);
}

// --------------------------------------------------------------------------
// Scopes
// --------------------------------------------------------------------------

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

bool
inRandScope(const std::string &label)
{
    if (label == "src/common/rng.hh" || label == "src/common/rng.cc")
        return false; // the one sanctioned randomness source
    return startsWith(label, "src/") || startsWith(label, "tests/") ||
           startsWith(label, "bench/");
}

bool
inWallClockScope(const std::string &label)
{
    return startsWith(label, "src/") || startsWith(label, "tests/");
}

bool
inUnorderedScope(const std::string &label)
{
    return startsWith(label, "src/testbed/") ||
           startsWith(label, "src/scenario/") ||
           startsWith(label, "src/core/");
}

bool
inNodiscardScope(const std::string &label)
{
    return startsWith(label, "src/") && endsWith(label, ".hh");
}

bool
inFloatEqualScope(const std::string &label)
{
    return startsWith(label, "src/");
}

bool
inIostreamScope(const std::string &label)
{
    return startsWith(label, "src/") &&
           label != "src/common/logging.cc";
}

bool
inOfstreamScope(const std::string &label)
{
    return startsWith(label, "src/");
}

// --------------------------------------------------------------------------
// Literal classification (float-equal)
// --------------------------------------------------------------------------

/** Is `token` a floating-point literal (1.0, .5, 2., 1e-9, 1.5f)? */
bool
isFloatLiteral(std::string token)
{
    if (token.empty())
        return false;
    if (token.back() == 'f' || token.back() == 'F' ||
        token.back() == 'l' || token.back() == 'L')
        token.pop_back();
    bool digits = false;
    bool dot = false;
    bool exponent = false;
    std::size_t i = 0;
    for (; i < token.size(); ++i) {
        const char c = token[i];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digits = true;
        } else if (c == '.' && !dot && !exponent) {
            dot = true;
        } else if ((c == 'e' || c == 'E') && digits && !exponent) {
            exponent = true;
            if (i + 1 < token.size() &&
                (token[i + 1] == '+' || token[i + 1] == '-'))
                ++i;
        } else {
            return false;
        }
    }
    return digits && (dot || exponent);
}

/** Literal-ish token ending right before `pos` (skipping spaces). */
std::string
tokenLeftOf(const std::string &line, std::size_t pos)
{
    std::size_t end = pos;
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(line[end - 1])))
        --end;
    std::size_t begin = end;
    auto literalChar = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '.';
    };
    while (begin > 0) {
        const char c = line[begin - 1];
        if (literalChar(c)) {
            --begin;
            continue;
        }
        // Exponent sign inside a literal: the '-' in "1e-9".
        if ((c == '-' || c == '+') && begin >= 2 &&
            (line[begin - 2] == 'e' || line[begin - 2] == 'E')) {
            --begin;
            continue;
        }
        break;
    }
    // Leading sign belongs to the literal only after another operator
    // or an open paren ("x == -1.0" and "(-.5 != y)").
    if (begin > 0 && (line[begin - 1] == '-' || line[begin - 1] == '+')) {
        std::size_t before = begin - 1;
        while (before > 0 &&
               std::isspace(static_cast<unsigned char>(line[before - 1])))
            --before;
        if (before == 0 || line[before - 1] == '(' ||
            line[before - 1] == ',' || line[before - 1] == '=')
            --begin;
    }
    std::string token = line.substr(begin, end - begin);
    if (!token.empty() && (token[0] == '-' || token[0] == '+'))
        token.erase(token.begin());
    return token;
}

/** Literal-ish token starting at/after `pos` (skipping spaces). */
std::string
tokenRightOf(const std::string &line, std::size_t pos)
{
    std::size_t begin = pos;
    while (begin < line.size() &&
           std::isspace(static_cast<unsigned char>(line[begin])))
        ++begin;
    if (begin < line.size() &&
        (line[begin] == '-' || line[begin] == '+'))
        ++begin;
    std::size_t end = begin;
    auto literalChar = [&](char c) {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '.')
            return true;
        // exponent sign: 1e-9
        if ((c == '-' || c == '+') && end > begin &&
            (line[end - 1] == 'e' || line[end - 1] == 'E'))
            return true;
        return false;
    };
    while (end < line.size() && literalChar(line[end]))
        ++end;
    return line.substr(begin, end - begin);
}

// --------------------------------------------------------------------------
// Rules
// --------------------------------------------------------------------------

const std::set<std::string> kRandIdentifiers = {
    "rand",         "srand",        "drand48",
    "lrand48",      "mrand48",      "random_device",
    "mt19937",      "mt19937_64",   "minstd_rand",
    "minstd_rand0", "ranlux24",     "ranlux48",
    "knuth_b",      "default_random_engine",
};

const std::set<std::string> kClockIdentifiers = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "clock_gettime", "timespec_get",
    "localtime",    "localtime_r",  "gmtime",
    "gmtime_r",     "mktime",       "difftime",
    "strftime",
};

/** Identifiers that only violate when called: time(...) / clock(...). */
const std::set<std::string> kClockCallIdentifiers = {"time", "clock"};

void
checkRawRand(const std::string &label,
             const std::vector<std::string> &raw,
             const std::vector<std::string> &stripped,
             std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        if (stripped[i].find("#include") != std::string::npos &&
            stripped[i].find("<random>") != std::string::npos &&
            !suppressed(raw, i, "raw-rand")) {
            findings.push_back({label, i + 1, "raw-rand",
                                "#include <random>: all randomness must "
                                "flow through common/rng.hh"});
            continue;
        }
        for (const auto &[id, col] : identifiersIn(stripped[i])) {
            (void)col;
            if (kRandIdentifiers.count(id) &&
                !suppressed(raw, i, "raw-rand")) {
                findings.push_back({label, i + 1, "raw-rand",
                                    "'" + id +
                                        "': use common/rng.hh (Rng) so "
                                        "one seed reproduces the run"});
                break;
            }
        }
    }
}

void
checkWallClock(const std::string &label,
               const std::vector<std::string> &raw,
               const std::vector<std::string> &stripped,
               std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        for (const auto &[id, col] : identifiersIn(stripped[i])) {
            const bool banned =
                kClockIdentifiers.count(id) > 0 ||
                (kClockCallIdentifiers.count(id) > 0 &&
                 nextNonSpace(stripped[i], col + id.size()) == '(');
            if (banned && !suppressed(raw, i, "wall-clock")) {
                findings.push_back(
                    {label, i + 1, "wall-clock",
                     "'" + id +
                         "': sim code must use explicit SimTime, never "
                         "the wall clock"});
                break;
            }
        }
    }
}

void
checkUnordered(const std::string &label,
               const std::vector<std::string> &raw,
               const std::vector<std::string> &stripped,
               std::vector<Finding> &findings)
{
    static const std::set<std::string> kBanned = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        for (const auto &[id, col] : identifiersIn(stripped[i])) {
            (void)col;
            if (kBanned.count(id) &&
                !suppressed(raw, i, "unordered-container")) {
                findings.push_back(
                    {label, i + 1, "unordered-container",
                     "'" + id +
                         "': hash iteration order leaks "
                         "nondeterminism into datasets; use std::map "
                         "or a sorted vector"});
                break;
            }
        }
    }
}

void
checkNodiscardResult(const std::string &label,
                     const std::vector<std::string> &raw,
                     const std::vector<std::string> &stripped,
                     std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        std::string decl = trimmed(stripped[i]);
        for (const std::string prefix :
             {"static ", "inline ", "virtual ", "constexpr ",
              "friend ", "extern "}) {
            if (startsWith(decl, prefix))
                decl = trimmed(decl.substr(prefix.size()));
        }
        if (!startsWith(decl, "Result<") &&
            !startsWith(decl, "adrias::Result<"))
            continue;
        const bool marked =
            stripped[i].find("[[nodiscard]]") != std::string::npos ||
            (i > 0 &&
             stripped[i - 1].find("[[nodiscard]]") != std::string::npos);
        if (!marked && !suppressed(raw, i, "nodiscard-result")) {
            findings.push_back(
                {label, i + 1, "nodiscard-result",
                 "Result-returning declaration without [[nodiscard]]: "
                 "callers could silently drop the error"});
        }
    }
}

void
checkFloatEqual(const std::string &label,
                const std::vector<std::string> &raw,
                const std::vector<std::string> &stripped,
                std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        const std::string &line = stripped[i];
        for (std::size_t p = 0; p + 1 < line.size(); ++p) {
            const bool eq = line[p] == '=' && line[p + 1] == '=';
            const bool ne = line[p] == '!' && line[p + 1] == '=';
            if (!eq && !ne)
                continue;
            // Not <=, >=, ==='s tail, or !== style fragments.
            if (p > 0 && (line[p - 1] == '<' || line[p - 1] == '>' ||
                          line[p - 1] == '=' || line[p - 1] == '!'))
                continue;
            if (p + 2 < line.size() && line[p + 2] == '=')
                continue;
            const std::string left = tokenLeftOf(line, p);
            const std::string right = tokenRightOf(line, p + 2);
            if ((isFloatLiteral(left) || isFloatLiteral(right)) &&
                !suppressed(raw, i, "float-equal")) {
                findings.push_back(
                    {label, i + 1, "float-equal",
                     "floating-point " +
                         std::string(eq ? "==" : "!=") +
                         " against '" +
                         (isFloatLiteral(left) ? left : right) +
                         "': compare with a tolerance or an ordering"});
                break;
            }
        }
    }
}

void
checkIostreamInclude(const std::string &label,
                     const std::vector<std::string> &raw,
                     const std::vector<std::string> &stripped,
                     std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        const std::string &line = stripped[i];
        if (line.find("#include") != std::string::npos &&
            line.find("<iostream>") != std::string::npos &&
            !suppressed(raw, i, "iostream-include")) {
            findings.push_back({label, i + 1, "iostream-include",
                                "library code logs through "
                                "common/logging.hh; <iostream> is "
                                "reserved for the logger backend"});
        }
    }
}

void
checkRawOfstream(const std::string &label,
                 const std::vector<std::string> &raw,
                 const std::vector<std::string> &stripped,
                 std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        for (const auto &[id, col] : identifiersIn(stripped[i])) {
            (void)col;
            if (id == "ofstream" &&
                !suppressed(raw, i, "raw-ofstream")) {
                findings.push_back(
                    {label, i + 1, "raw-ofstream",
                     "'ofstream': persistence must go through "
                     "common/io/durable_file.hh (atomic temp-write + "
                     "rename) so a crash never leaves a torn file"});
                break;
            }
        }
    }
}

} // namespace

const std::vector<RuleInfo> &
rules()
{
    static const std::vector<RuleInfo> kRules = {
        {"raw-rand",
         "all randomness flows through common/rng.hh (src, tests, "
         "bench; rng.{hh,cc} exempt)"},
        {"wall-clock",
         "no wall/CPU clock reads in sim code (src, tests)"},
        {"unordered-container",
         "no std::unordered_{map,set} in src/testbed, src/scenario, "
         "src/core (iteration-order nondeterminism)"},
        {"nodiscard-result",
         "Result<...>-returning declarations in src headers carry "
         "[[nodiscard]]"},
        {"float-equal",
         "no ==/!= against floating-point literals in src"},
        {"iostream-include",
         "no #include <iostream> in src outside common/logging.cc"},
        {"raw-ofstream",
         "no raw std::ofstream persistence in src; write through the "
         "DurableFile layer (common/io)"},
    };
    return kRules;
}

std::vector<Finding>
lintContent(const std::string &label, const std::string &content)
{
    const std::vector<std::string> raw = splitLines(content);
    const std::vector<std::string> stripped =
        stripCommentsAndStrings(raw);

    std::vector<Finding> findings;
    if (inRandScope(label))
        checkRawRand(label, raw, stripped, findings);
    if (inWallClockScope(label))
        checkWallClock(label, raw, stripped, findings);
    if (inUnorderedScope(label))
        checkUnordered(label, raw, stripped, findings);
    if (inNodiscardScope(label))
        checkNodiscardResult(label, raw, stripped, findings);
    if (inFloatEqualScope(label))
        checkFloatEqual(label, raw, stripped, findings);
    if (inIostreamScope(label))
        checkIostreamInclude(label, raw, stripped, findings);
    if (inOfstreamScope(label))
        checkRawOfstream(label, raw, stripped, findings);

    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });
    return findings;
}

std::vector<Finding>
lintFile(const std::string &path, const std::string &label)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return {{label, 0, "io", "cannot open " + path}};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lintContent(label, buffer.str());
}

std::vector<Finding>
lintTree(const std::string &repo_root)
{
    namespace fs = std::filesystem;

    std::vector<std::pair<std::string, std::string>> files; // label, path
    for (const char *top : {"src", "tests", "bench"}) {
        const fs::path base = fs::path(repo_root) / top;
        if (!fs::exists(base))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".cc" && ext != ".hh")
                continue;
            std::string label =
                fs::relative(entry.path(), repo_root).generic_string();
            if (label.find("fixtures/") != std::string::npos)
                continue; // deliberately violating self-test inputs
            files.emplace_back(std::move(label), entry.path().string());
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<Finding> findings;
    for (const auto &[label, path] : files) {
        std::vector<Finding> file_findings = lintFile(path, label);
        findings.insert(findings.end(),
                        std::make_move_iterator(file_findings.begin()),
                        std::make_move_iterator(file_findings.end()));
    }
    return findings;
}

std::string
formatFinding(const Finding &finding)
{
    return finding.file + ":" + std::to_string(finding.line) + ": [" +
           finding.rule + "] " + finding.detail;
}

} // namespace adrias::lint
