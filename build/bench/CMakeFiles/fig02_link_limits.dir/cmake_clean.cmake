file(REMOVE_RECURSE
  "CMakeFiles/fig02_link_limits.dir/fig02_link_limits.cc.o"
  "CMakeFiles/fig02_link_limits.dir/fig02_link_limits.cc.o.d"
  "fig02_link_limits"
  "fig02_link_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_link_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
