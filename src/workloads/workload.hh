/**
 * @file
 * Runtime state of one deployed workload instance.
 *
 * Instances advance tick by tick against the testbed's contention
 * outcomes: best-effort jobs accumulate progress until their work is
 * done, latency-critical servers sample per-request latencies through a
 * closed-loop (memtier-like) client model, and iBench trashers simply
 * occupy resources for a fixed wall-clock duration.
 */

#ifndef ADRIAS_WORKLOADS_WORKLOAD_HH
#define ADRIAS_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <optional>

#include "common/error.hh"
#include "common/io/binary.hh"
#include "common/mutex.hh"
#include "common/rng.hh"
#include "common/thread_annotations.hh"
#include "common/types.hh"
#include "stats/percentile.hh"
#include "testbed/load.hh"
#include "workloads/spec.hh"

namespace adrias::workloads
{

/**
 * A deployed, running (or finished) workload.
 *
 * Thread-safe: the mutable client/progress state (request latencies,
 * progress, migration state) is guarded by an internal mutex so a
 * runtime-management thread can read metrics while the scenario loop
 * advances the instance.  Identity (id, spec, arrival) is immutable
 * and unguarded.
 */
class WorkloadInstance
{
  public:
    /**
     * @param id unique deployment id.
     * @param spec behaviour model.
     * @param mode memory placement chosen by the orchestrator.
     * @param arrival simulation time of deployment.
     * @param seed latency-noise RNG seed.
     * @param load_factor client-load multiplier for LC apps (1 = the
     *        paper's nominal memtier load).
     */
    WorkloadInstance(DeploymentId id, const WorkloadSpec &spec,
                     MemoryMode mode, SimTime arrival,
                     std::uint64_t seed, double load_factor = 1.0);

    /**
     * Moves transfer the run state into a fresh lock.  Not
     * concurrency-safe: only move an instance no other thread is
     * observing.
     */
    WorkloadInstance(WorkloadInstance &&other) noexcept
        ADRIAS_NO_THREAD_SAFETY_ANALYSIS;
    WorkloadInstance &operator=(WorkloadInstance &&other) noexcept
        ADRIAS_NO_THREAD_SAFETY_ANALYSIS;

    WorkloadInstance(const WorkloadInstance &) = delete;
    WorkloadInstance &operator=(const WorkloadInstance &) = delete;

    /** @return the load this instance presents to the testbed now. */
    testbed::LoadDescriptor load() const ADRIAS_EXCLUDES(mu);

    /**
     * Consume one tick's contention outcome.
     *
     * @param outcome the testbed's verdict for this instance.
     * @param now current simulation time (end of the tick).
     */
    void advance(const testbed::LoadOutcome &outcome, SimTime now)
        ADRIAS_EXCLUDES(mu);

    /** @return true once the instance's run model has completed. */
    bool
    finished() const ADRIAS_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        return done;
    }

    DeploymentId id() const { return deploymentId; }
    const WorkloadSpec &spec() const { return *specification; }

    /** @return current placement (changes when a migration lands). */
    MemoryMode
    mode() const ADRIAS_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        return memoryMode;
    }

    SimTime arrivalTime() const { return arrival; }

    /** Wall-clock execution time; only meaningful once finished. */
    double executionTimeSec() const ADRIAS_EXCLUDES(mu);

    /** LC: tail latency of all sampled requests so far, ms. */
    double tailLatencyMs(double q) const ADRIAS_EXCLUDES(mu);

    /** LC: mean request latency, ms. */
    double meanLatencyMs() const ADRIAS_EXCLUDES(mu);

    /** Mean slowdown observed across ticks so far. */
    double meanSlowdown() const ADRIAS_EXCLUDES(mu);

    /** Total bytes moved over the ThymesisFlow channel, GB. */
    double
    remoteTrafficGB() const ADRIAS_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        return remoteGb;
    }

    /** Progress in [0, 1] for BE jobs; request fraction for LC. */
    double progressFraction() const ADRIAS_EXCLUDES(mu);

    /**
     * Request an L2 migration to the other memory pool (paper §II's
     * runtime-management layer, complementary to Adrias).
     *
     * The instance pauses for @p pause_sec seconds (data copy over the
     * channel), during which it makes no progress but still occupies
     * resources; afterwards it resumes in @p target mode.  No-op when
     * already in @p target or mid-migration.
     *
     * @return true if a migration was started.
     */
    bool requestMigration(MemoryMode target, double pause_sec)
        ADRIAS_EXCLUDES(mu);

    /** @return true while a migration pause is in effect. */
    bool
    migrating() const ADRIAS_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        return migratingLocked();
    }

    /** @return number of completed migrations. */
    std::size_t
    migrationCount() const ADRIAS_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        return migrationsDone;
    }

    /**
     * Serialize the complete run state.  The spec is recorded by name
     * (specs are static registry entries, not runtime state) and the
     * latency samples are dumped in full so restored tail percentiles
     * are exact.
     */
    void saveState(io::BinaryWriter &out) const ADRIAS_EXCLUDES(mu);

    /**
     * Rebuild an instance from a saveState() payload.  Fails (typed)
     * when the payload is truncated, carries an unknown spec name or an
     * out-of-range enum value.
     */
    [[nodiscard]] static Result<std::unique_ptr<WorkloadInstance>>
    restoreFromState(io::BinaryReader &in);

  private:
    // Immutable identity (set at construction, never guarded).
    DeploymentId deploymentId ADRIAS_LOCK_FREE(
        "immutable identity, set at construction");
    const WorkloadSpec *specification;
    SimTime arrival ADRIAS_LOCK_FREE(
        "immutable identity, set at construction");
    double loadFactor ADRIAS_LOCK_FREE(
        "immutable identity, set at construction");

    /** Guards every mutable member below. */
    mutable Mutex mu;

    MemoryMode memoryMode ADRIAS_GUARDED_BY(mu);
    Rng rng ADRIAS_GUARDED_BY(mu);

    bool done ADRIAS_GUARDED_BY(mu) = false;
    SimTime completion ADRIAS_GUARDED_BY(mu) = -1;

    // BE / interference progress
    /** Unimpeded-equivalent seconds done. */
    double progressSec ADRIAS_GUARDED_BY(mu) = 0.0;
    /** Wall-clock seconds so far. */
    double elapsedSec ADRIAS_GUARDED_BY(mu) = 0.0;

    // LC request accounting (the memtier-style client state)
    double requestsServed ADRIAS_GUARDED_BY(mu) = 0.0;
    stats::PercentileTracker latencies ADRIAS_GUARDED_BY(mu);

    // aggregates
    double slowdownSum ADRIAS_GUARDED_BY(mu) = 0.0;
    std::size_t ticks ADRIAS_GUARDED_BY(mu) = 0;
    double remoteGb ADRIAS_GUARDED_BY(mu) = 0.0;

    // L2 migration state
    /** Pause seconds left. */
    double migrationRemaining ADRIAS_GUARDED_BY(mu) = 0.0;
    double migrationPauseTotal ADRIAS_GUARDED_BY(mu) = 1.0;
    MemoryMode migrationTarget ADRIAS_GUARDED_BY(mu) = MemoryMode::Local;
    std::size_t migrationsDone ADRIAS_GUARDED_BY(mu) = 0;

    bool
    migratingLocked() const ADRIAS_REQUIRES(mu)
    {
        return migrationRemaining > 0.0;
    }

    /** Base server utilization at nominal load (queueing model). */
    static constexpr double kBaseUtilization = 0.6;

    /** Request-latency samples drawn per tick for the tail estimate. */
    static constexpr int kSamplesPerTick = 24;

    void advanceLatencyCritical(const testbed::LoadOutcome &outcome)
        ADRIAS_REQUIRES(mu);
};

} // namespace adrias::workloads

#endif // ADRIAS_WORKLOADS_WORKLOAD_HH
