/**
 * @file
 * The Watcher component (paper §V-A): continuous 1 Hz sampling of the
 * testbed's performance events with a bounded history window, plus the
 * windowing/binning used to build model inputs.
 */

#ifndef ADRIAS_TELEMETRY_WATCHER_HH
#define ADRIAS_TELEMETRY_WATCHER_HH

#include <vector>

#include "common/error.hh"
#include "common/io/binary.hh"
#include "common/mutex.hh"
#include "common/ring_buffer.hh"
#include "common/thread_annotations.hh"
#include "common/types.hh"
#include "ml/matrix.hh"
#include "testbed/counters.hh"

namespace adrias::telemetry
{

/** Self-repair and staleness tallies of one Watcher. */
struct WatcherHealth
{
    /** Samples accepted into the history (repaired ones included). */
    std::size_t samplesAccepted = 0;

    /** Samples that needed at least one event substituted. */
    std::size_t samplesRepaired = 0;

    /** Individual events substituted with the last good value. */
    std::size_t eventsRepaired = 0;

    /** Ticks on which no fresh sample arrived (telemetry dropout). */
    std::size_t samplesDropped = 0;

    /**
     * Consecutive ticks since the last fresh sample.  Dropouts and
     * fully-repaired samples (every event substituted) both extend the
     * streak; the first sample carrying at least one genuine event
     * resets it to 0.
     */
    std::size_t stalenessSec = 0;

    /**
     * Worst dropout streak seen, seconds.  Updated as a streak grows,
     * so a streak still open at end-of-run is already included.
     */
    std::size_t maxStalenessSec = 0;
};

/**
 * Rolling view of the monitored performance events.
 *
 * Keeps the last `capacity` one-second samples; exposes the paper's two
 * model inputs: the binned history sequence S (an r-second window
 * aggregated into fixed-length bins) and mean-over-window targets.
 *
 * The Watcher defends itself against corrupt telemetry: NaN, infinite
 * or negative events are replaced by the last good value of that event
 * (zero before any good value exists) and counted in health().  When
 * samples carry a simulation timestamp, ADRIAS_INVARIANT enforces that
 * time moves strictly forward.
 *
 * Thread-safe: history and tallies are guarded by an internal mutex so
 * a sampling thread and a predictor thread can share one Watcher (the
 * planned parallel scenario runner relies on this).  Accessors return
 * snapshots by value.
 */
class Watcher
{
  public:
    /** @param capacity_seconds history retention (>= window length). */
    explicit Watcher(std::size_t capacity_seconds = 600);

    /**
     * Record one tick's counter sample, repairing invalid events
     * (NaN/Inf/negative) with the last good value per event.
     */
    void record(const testbed::CounterSample &sample) ADRIAS_EXCLUDES(mu);

    /**
     * Timestamped variant: additionally asserts (ADRIAS_INVARIANT)
     * that `now` is strictly greater than the previous stamp — the
     * trace is one sample per second, never reordered or duplicated.
     */
    void record(const testbed::CounterSample &sample, SimTime now)
        ADRIAS_EXCLUDES(mu);

    /**
     * Record a telemetry dropout: no sample arrived this tick.  The
     * history is padded with the last known sample (zeros on a cold
     * start) so time stays aligned, and staleness counters advance.
     */
    void recordDropped() ADRIAS_EXCLUDES(mu);

    /** Timestamped dropout (same monotonicity invariant as record). */
    void recordDropped(SimTime now) ADRIAS_EXCLUDES(mu);

    /** @return repair/dropout tallies since construction or clear(). */
    WatcherHealth health() const ADRIAS_EXCLUDES(mu);

    /** @return number of samples currently retained. */
    std::size_t sampleCount() const ADRIAS_EXCLUDES(mu);

    /** @return true once at least `window` seconds are retained. */
    bool hasWindow(std::size_t window_seconds) const ADRIAS_EXCLUDES(mu);

    /**
     * Binned history sequence over the trailing window — the model
     * input S of Fig. 11.
     *
     * @param window_seconds history length r (e.g. 120).
     * @param bins number of sequence steps (e.g. 12 -> 10 s bins).
     * @return time-major sequence of (1 x kNumPerfEvents) matrices,
     *         oldest bin first.  If fewer samples than the window are
     *         available the window is left-padded with the oldest
     *         sample (cold-start behaviour).
     */
    std::vector<ml::Matrix> binnedWindow(std::size_t window_seconds,
                                         std::size_t bins) const
        ADRIAS_EXCLUDES(mu);

    /** Mean of each event over the trailing `window_seconds`. */
    testbed::CounterSample
    meanOverTrailing(std::size_t window_seconds) const ADRIAS_EXCLUDES(mu);

    /** Most recent sample (snapshot). @pre sampleCount() > 0. */
    testbed::CounterSample latest() const ADRIAS_EXCLUDES(mu);

    // --- Per-link samples (rack topologies) ----------------------------

    /**
     * Declare how many links this Watcher's node fans out over.  Must
     * be called before recordLinks(); resets any link history.  The
     * default of zero links keeps the paper-pair sample schema (and
     * checkpoint payload) untouched.
     */
    void configureLinks(std::size_t links) ADRIAS_EXCLUDES(mu);

    /** Links declared via configureLinks(). */
    std::size_t linkCount() const ADRIAS_EXCLUDES(mu);

    /**
     * Record one tick's per-link counter samples (one LinkCounterSample
     * per configured link, in topology link order).  Stored alongside
     * the node sample history with the same retention.
     */
    void recordLinks(const std::vector<testbed::LinkCounterSample> &samples)
        ADRIAS_EXCLUDES(mu);

    /** Per-link sample rows retained so far. */
    std::size_t linkSampleCount() const ADRIAS_EXCLUDES(mu);

    /** Newest per-link samples. @pre linkSampleCount() > 0. */
    std::vector<testbed::LinkCounterSample> latestLinks() const
        ADRIAS_EXCLUDES(mu);

    /**
     * Mean of one link's events over the trailing `window_seconds`
     * (capped at the retained history). @pre link < linkCount().
     */
    testbed::LinkCounterSample
    meanLinkOverTrailing(std::size_t link,
                         std::size_t window_seconds) const
        ADRIAS_EXCLUDES(mu);

    /** Drop all history, health tallies and the timestamp watermark. */
    void clear() ADRIAS_EXCLUDES(mu);

    /**
     * Serialize the retained history (chronological), health tallies,
     * repair source and timestamp watermark.  Capacity is not part of
     * the payload — it is configuration, re-supplied on construction —
     * but it is recorded so a restore into a differently-sized Watcher
     * is rejected instead of silently truncating history.
     */
    void saveState(io::BinaryWriter &out) const ADRIAS_EXCLUDES(mu);

    /** Restore a payload from saveState(); replaces all state. */
    [[nodiscard]] Result<void> restoreState(io::BinaryReader &in)
        ADRIAS_EXCLUDES(mu);

  private:
    /** Guards every member below. */
    mutable Mutex mu;

    RingBuffer<testbed::CounterSample> history ADRIAS_GUARDED_BY(mu);
    WatcherHealth state ADRIAS_GUARDED_BY(mu);

    /** Links per tick row in linkHistory (0 = schema disabled). */
    std::size_t linkWidth ADRIAS_GUARDED_BY(mu) = 0;

    /** Flattened per-tick rows: linkWidth x kNumLinkEvents doubles. */
    RingBuffer<std::vector<double>> linkHistory ADRIAS_GUARDED_BY(mu);

    /** Last good value seen per event (repair source). */
    testbed::CounterSample lastGood ADRIAS_GUARDED_BY(mu) {};
    bool haveGood ADRIAS_GUARDED_BY(mu) = false;

    /** Stamp of the newest sample; samples must arrive in order. */
    SimTime lastStamp ADRIAS_GUARDED_BY(mu) = kNoStamp;

    static constexpr SimTime kNoStamp = -1;

    /** @return the number of events repaired in this sample. */
    std::size_t recordLocked(const testbed::CounterSample &sample)
        ADRIAS_REQUIRES(mu);
    void recordDroppedLocked() ADRIAS_REQUIRES(mu);
    void advanceStampLocked(SimTime now) ADRIAS_REQUIRES(mu);
};

/**
 * Mean of each event across a span of a recorded trace
 * [begin, end) — used by the dataset builder for horizon targets.
 */
testbed::CounterSample
meanOverSpan(const std::vector<testbed::CounterSample> &trace,
             std::size_t begin, std::size_t end);

/**
 * Bin a contiguous slice of a counter trace into a fixed-length
 * time-major sequence of (1 x kNumPerfEvents) matrices.
 *
 * @param trace full per-second trace.
 * @param begin first sample index (inclusive).
 * @param end one past the last sample (exclusive, > begin).
 * @param bins sequence length; samples are averaged per bin.
 */
std::vector<ml::Matrix>
binSpan(const std::vector<testbed::CounterSample> &trace, std::size_t begin,
        std::size_t end, std::size_t bins);

} // namespace adrias::telemetry

#endif // ADRIAS_TELEMETRY_WATCHER_HH
