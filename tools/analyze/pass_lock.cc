/**
 * @file
 * lock-discipline pass: in a class that owns an adrias::Mutex (a
 * Mutex-typed data member, by value), every mutable data member must
 * either carry ADRIAS_GUARDED_BY / ADRIAS_PT_GUARDED_BY or the
 * reasoned ADRIAS_LOCK_FREE waiver.  An unannotated member of a
 * lock-carrying class is either a data race or an undocumented
 * invariant — both are findings.
 *
 * Auto-exempt (intrinsically safe without the lock):
 *  - the mutex members themselves,
 *  - static and const/constexpr members (immutable after init),
 *  - std::atomic<...> members,
 *  - condition variables (synchronized by construction; they pair
 *    with the mutex rather than being guarded by it).
 */

#include "analyze/passes.hh"

#include <algorithm>

namespace adrias::analyze
{

namespace
{

bool
isMutexMember(const Member &member)
{
    const std::set<std::string> ids = identifierSet(member.type);
    if (!ids.count("Mutex") && !ids.count("mutex") &&
        !ids.count("shared_mutex"))
        return false;
    // References/pointers to someone else's mutex don't make this
    // class the owner.
    return member.type.find('*') == std::string::npos &&
           !member.isReference;
}

bool
isIntrinsicallySynchronized(const Member &member)
{
    const std::set<std::string> ids = identifierSet(member.type);
    return ids.count("atomic") || ids.count("atomic_bool") ||
           ids.count("atomic_flag") || ids.count("condition_variable") ||
           ids.count("condition_variable_any");
}

} // namespace

void
runLockDiscipline(const Index &index, std::vector<Finding> &findings)
{
    for (const Class &cls : index.classes) {
        const bool ownsMutex =
            std::any_of(cls.members.begin(), cls.members.end(),
                        [](const Member &m) { return isMutexMember(m); });
        if (!ownsMutex)
            continue;

        for (const Member &member : cls.members) {
            if (isMutexMember(member))
                continue;
            if (member.isStatic || member.isConst)
                continue;
            if (member.guarded || member.lockFree)
                continue;
            if (isIntrinsicallySynchronized(member))
                continue;
            findings.push_back(
                {member.file, member.line, "lock-discipline",
                 "member '" + member.name + "' of Mutex-owning class '" +
                     cls.name +
                     "' is neither ADRIAS_GUARDED_BY-annotated nor "
                     "waived with ADRIAS_LOCK_FREE(reason)"});
        }
    }
}

} // namespace adrias::analyze
