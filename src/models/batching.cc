#include "models/batching.hh"

#include "common/logging.hh"
#include "common/threadpool.hh"

namespace adrias::models
{

std::vector<ml::Matrix>
stackSequences(const std::vector<const std::vector<ml::Matrix> *> &sequences)
{
    if (sequences.empty())
        panic("stackSequences: empty batch");
    const std::size_t steps = sequences.front()->size();
    if (steps == 0)
        panic("stackSequences: zero-length sequences");
    const std::size_t width = sequences.front()->front().cols();

    // Each timestep fills its own pre-sized slot, so the assembly can
    // fan out across the pool without affecting the result; a ragged
    // batch panics and the exception propagates to the caller.
    std::vector<ml::Matrix> batched(steps);
    ThreadPool::global().parallelForEach(steps, [&](std::size_t t) {
        ml::Matrix step(sequences.size(), width);
        for (std::size_t b = 0; b < sequences.size(); ++b) {
            const auto &sequence = *sequences[b];
            if (sequence.size() != steps ||
                sequence[t].cols() != width || sequence[t].rows() != 1) {
                panic("stackSequences: ragged batch");
            }
            for (std::size_t c = 0; c < width; ++c)
                step.at(b, c) = sequence[t].at(0, c);
        }
        batched[t] = std::move(step);
    });
    return batched;
}

ml::Matrix
stackRows(const std::vector<const ml::Matrix *> &rows)
{
    if (rows.empty())
        panic("stackRows: empty batch");
    const std::size_t width = rows.front()->cols();
    ml::Matrix out(rows.size(), width);
    for (std::size_t b = 0; b < rows.size(); ++b) {
        if (rows[b]->cols() != width || rows[b]->rows() != 1)
            panic("stackRows: ragged batch");
        for (std::size_t c = 0; c < width; ++c)
            out.at(b, c) = rows[b]->at(0, c);
    }
    return out;
}

} // namespace adrias::models
