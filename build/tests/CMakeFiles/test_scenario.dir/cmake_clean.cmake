file(REMOVE_RECURSE
  "CMakeFiles/test_scenario.dir/scenario/test_cluster.cc.o"
  "CMakeFiles/test_scenario.dir/scenario/test_cluster.cc.o.d"
  "CMakeFiles/test_scenario.dir/scenario/test_dataset.cc.o"
  "CMakeFiles/test_scenario.dir/scenario/test_dataset.cc.o.d"
  "CMakeFiles/test_scenario.dir/scenario/test_dataset_io.cc.o"
  "CMakeFiles/test_scenario.dir/scenario/test_dataset_io.cc.o.d"
  "CMakeFiles/test_scenario.dir/scenario/test_runner.cc.o"
  "CMakeFiles/test_scenario.dir/scenario/test_runner.cc.o.d"
  "test_scenario"
  "test_scenario.pdb"
  "test_scenario[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
