file(REMOVE_RECURSE
  "libadrias_workloads.a"
)
