/**
 * @file
 * Parallel-scaling microbenchmark (DESIGN.md §9): measures serial vs
 * multi-threaded wall time for the two hot paths the ThreadPool
 * accelerates — the GEMM family inside model training, and the
 * multi-seed scenario sweep — and emits a machine-readable JSON
 * report for CI artifacts.
 *
 * Each configuration also cross-checks bitwise equality against the
 * serial result, so the report doubles as an equivalence smoke test.
 *
 * Each configuration reports the steady-state MEDIAN over several
 * iterations after dropping warm-up runs (pool spin-up, cold caches);
 * the iteration counts are recorded in the JSON.
 *
 * Knobs: ADRIAS_BENCH_OUTDIR (JSON destination, default out/),
 * ADRIAS_BENCH_DURATION (sweep scenario length), ADRIAS_BENCH_ITERS /
 * ADRIAS_BENCH_WARMUP (measured / dropped iterations).  Thread counts
 * probed are {1, 2, 4, hardware} deduplicated.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "common/rng.hh"
#include "common/threadpool.hh"
#include "ml/matrix.hh"

namespace
{

using namespace adrias;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

ml::Matrix
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols)
{
    ml::Matrix m(rows, cols);
    for (double &value : m.raw())
        value = rng.uniform(-1.0, 1.0);
    return m;
}

struct Measurement
{
    unsigned threads = 1;
    double seconds = 0.0; // steady-state median per iteration
    std::size_t iterations = 0;
    std::size_t warmup = 0;
    bool identical = true;
};

/**
 * Run `fn` warmup+iters times and return the median of the steady-state
 * iterations.  Warm-up runs are dropped: the first iterations pay for
 * thread-pool spin-up and cold caches and would skew a mean badly.
 */
template <typename Fn>
double
medianSeconds(Fn &&fn, std::size_t iters, std::size_t warmup)
{
    for (std::size_t i = 0; i < warmup; ++i)
        fn();
    std::vector<double> samples;
    samples.reserve(iters);
    for (std::size_t i = 0; i < iters; ++i) {
        const auto start = Clock::now();
        fn();
        samples.push_back(secondsSince(start));
    }
    std::sort(samples.begin(), samples.end());
    const std::size_t mid = samples.size() / 2;
    return samples.size() % 2 ? samples[mid]
                              : 0.5 * (samples[mid - 1] + samples[mid]);
}

std::size_t
benchIters()
{
    return static_cast<std::size_t>(
        std::max(1L, bench::envInt("ADRIAS_BENCH_ITERS", 5)));
}

std::size_t
benchWarmup()
{
    return static_cast<std::size_t>(
        std::max(0L, bench::envInt("ADRIAS_BENCH_WARMUP", 1)));
}

std::vector<unsigned>
probeThreadCounts()
{
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<unsigned> counts{1, 2, 4, hw};
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
    return counts;
}

/** Dense GEMM chain at training-relevant shape (>= 256x256). */
std::vector<Measurement>
benchGemm()
{
    Rng rng(2023);
    const ml::Matrix a = randomMatrix(rng, 384, 384);
    const ml::Matrix b = randomMatrix(rng, 384, 384);
    constexpr int kIters = 8;

    std::vector<Measurement> measurements;
    ml::Matrix reference;
    for (unsigned threads : probeThreadCounts()) {
        ScopedThreadOverride override_(threads);
        Measurement m;
        m.threads = threads;
        m.iterations = benchIters();
        m.warmup = benchWarmup();
        ml::Matrix last;
        m.seconds = medianSeconds(
            [&] {
                for (int i = 0; i < kIters; ++i) {
                    last = a.matmul(b);
                    last = last.transposedMatmul(a);
                }
            },
            m.iterations, m.warmup);
        if (threads == 1)
            reference = last;
        m.identical = last.raw() == reference.raw();
        measurements.push_back(m);
    }
    return measurements;
}

/** Multi-seed scenario sweep through the parallel driver. */
std::vector<Measurement>
benchSweep()
{
    const std::size_t seeds = 4;
    auto make_items = [&] {
        std::vector<scenario::SweepItem> items(seeds);
        for (std::size_t i = 0; i < seeds; ++i) {
            items[i].config = bench::evalScenario(9100 + i, 25);
            items[i].config.durationSec = std::min<SimTime>(
                items[i].config.durationSec, 900);
            items[i].policySeed = 9200 + i;
        }
        return items;
    };

    std::vector<Measurement> measurements;
    std::vector<scenario::ScenarioResult> reference;
    for (unsigned threads : probeThreadCounts()) {
        ScopedThreadOverride override_(threads);
        Measurement m;
        m.threads = threads;
        // The sweep runs for seconds per iteration; keep it cheap.
        m.iterations = std::min<std::size_t>(3, benchIters());
        m.warmup = std::min<std::size_t>(1, benchWarmup());
        std::vector<scenario::ScenarioResult> results;
        m.seconds = medianSeconds(
            [&] { results = scenario::runScenarioSweep(make_items()); },
            m.iterations, m.warmup);
        if (threads == 1)
            reference = results;
        m.identical = results.size() == reference.size();
        for (std::size_t i = 0; m.identical && i < results.size(); ++i)
            m.identical = results[i].trace == reference[i].trace &&
                          results[i].records.size() ==
                              reference[i].records.size();
        measurements.push_back(m);
    }
    return measurements;
}

void
appendJson(std::ostream &out, const char *name,
           const std::vector<Measurement> &measurements)
{
    out << "  \"" << name << "\": [\n";
    const double serial = measurements.front().seconds;
    for (std::size_t i = 0; i < measurements.size(); ++i) {
        const auto &m = measurements[i];
        out << "    {\"threads\": " << m.threads
            << ", \"seconds\": " << m.seconds << ", \"speedup\": "
            << (m.seconds > 0.0 ? serial / m.seconds : 0.0)
            << ", \"iterations\": " << m.iterations
            << ", \"warmup\": " << m.warmup
            << ", \"identical\": " << (m.identical ? "true" : "false")
            << "}" << (i + 1 < measurements.size() ? "," : "") << "\n";
    }
    out << "  ]";
}

void
printTable(const char *name, const std::vector<Measurement> &measurements)
{
    TextTable table({"threads", "seconds", "speedup", "identical"});
    const double serial = measurements.front().seconds;
    for (const auto &m : measurements) {
        table.addRow({std::to_string(m.threads),
                      formatDouble(m.seconds, 3),
                      formatDouble(m.seconds > 0.0 ? serial / m.seconds
                                                   : 0.0,
                                   2),
                      m.identical ? "yes" : "NO"});
    }
    std::cout << "\n" << name << ":\n" << table.toString();
}

} // namespace

int
main(int argc, char **argv)
{
    obs::initFromArgs(argc, argv);
    bench::banner("micro — parallel scaling (ThreadPool)",
                  "serial vs ADRIAS_THREADS speedup; results must stay "
                  "bitwise identical at every thread count");

    std::cout << "hardware threads: "
              << std::thread::hardware_concurrency() << "\n";

    const auto gemm = benchGemm();
    const auto sweep = benchSweep();
    printTable("gemm 384x384 chain", gemm);
    printTable("scenario sweep (4 seeds)", sweep);

    const std::string path =
        bench::outputPath("micro_parallel_scaling.json");
    std::ofstream out(path, std::ios::binary);
    out << "{\n  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n";
    appendJson(out, "gemm", gemm);
    out << ",\n";
    appendJson(out, "sweep", sweep);
    out << "\n}\n";
    std::cout << "\nJSON written to " << path << "\n";

    bool all_identical = true;
    for (const auto &m : gemm)
        all_identical = all_identical && m.identical;
    for (const auto &m : sweep)
        all_identical = all_identical && m.identical;
    if (!all_identical) {
        std::cout << "ERROR: parallel result diverged from serial\n";
        return 1;
    }

    const std::string obs_report = obs::finishRun();
    if (!obs_report.empty())
        std::cout << "\nObservability summary:\n" << obs_report;
    return 0;
}
