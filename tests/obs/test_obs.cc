/**
 * @file
 * Unit tests for the observability layer (DESIGN.md §10): metric
 * registration and recording, histogram merge semantics, tracer
 * export formats and the runtime/compile-time gating contract.
 *
 * The suite is compiled in both flavors.  With ADRIAS_OBS=ON it
 * exercises the full layer; with ADRIAS_OBS=OFF it proves the layer is
 * inert — switches cannot arm, metrics never move, the tracer records
 * nothing (the `ctest -L obs` gate for the compiled-out path).
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "obs/obs.hh"

namespace
{

using namespace adrias;

/** Arm obs for a test and guarantee a clean disarmed exit. */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::resetAll();
        obs::setEnabled(true);
        obs::Tracer::global().setEnabled(true);
    }

    void
    TearDown() override
    {
        obs::Tracer::global().setEnabled(false);
        obs::setEnabled(false);
        obs::resetAll();
    }
};

#if ADRIAS_OBS_ENABLED

TEST_F(ObsTest, CounterAccumulatesAndResets)
{
    obs::Counter &c = obs::MetricsRegistry::global().counter("t.counter");
    EXPECT_EQ(c.get(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.get(), 42u);
    c.reset();
    EXPECT_EQ(c.get(), 0u);
}

TEST_F(ObsTest, GaugeIsLastWriteWins)
{
    obs::Gauge &g = obs::MetricsRegistry::global().gauge("t.gauge");
    g.set(3.5);
    g.set(-1.25);
    EXPECT_DOUBLE_EQ(g.get(), -1.25);
}

TEST_F(ObsTest, RegistryReturnsStableReferences)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    obs::Counter &first = reg.counter("t.stable");
    first.add(7);
    obs::Counter &second = reg.counter("t.stable");
    EXPECT_EQ(&first, &second);
    reg.reset();
    // reset() zeroes values but never invalidates references.
    EXPECT_EQ(&reg.counter("t.stable"), &first);
    EXPECT_EQ(first.get(), 0u);
}

TEST_F(ObsTest, EmptyHistogramSnapshotIsAllNaN)
{
    obs::Histogram &h =
        obs::MetricsRegistry::global().histogram("t.empty_hist");
    const obs::HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_TRUE(std::isnan(snap.mean));
    EXPECT_TRUE(std::isnan(snap.min));
    EXPECT_TRUE(std::isnan(snap.max));
    EXPECT_TRUE(std::isnan(snap.p50));
    EXPECT_TRUE(std::isnan(snap.p99));
    EXPECT_EQ(snap.firstSim, obs::Histogram::kNoSimTime);
    EXPECT_EQ(snap.lastSim, obs::Histogram::kNoSimTime);
}

TEST_F(ObsTest, HistogramTracksMomentsQuantilesAndSimSpan)
{
    obs::Histogram &h =
        obs::MetricsRegistry::global().histogram("t.hist");
    for (int i = 1; i <= 1000; ++i)
        h.observe(static_cast<double>(i), static_cast<SimTime>(i + 10));
    const obs::HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 1000u);
    EXPECT_DOUBLE_EQ(snap.mean, 500.5);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 1000.0);
    // Reservoir quantiles are estimates; 1..1000 is uniform.
    EXPECT_NEAR(snap.p50, 500.0, 100.0);
    EXPECT_GT(snap.p99, snap.p50);
    EXPECT_EQ(snap.firstSim, 11);
    EXPECT_EQ(snap.lastSim, 1010);
}

TEST_F(ObsTest, HistogramObservationsAreSeedPinnedDeterministic)
{
    obs::Histogram a;
    obs::Histogram b;
    for (int i = 0; i < 5000; ++i) {
        const double v = std::sin(i) * 100.0;
        a.observe(v);
        b.observe(v);
    }
    const obs::HistogramSnapshot sa = a.snapshot();
    const obs::HistogramSnapshot sb = b.snapshot();
    // Same seed, same stream: identical reservoirs, identical quantiles.
    EXPECT_DOUBLE_EQ(sa.p50, sb.p50);
    EXPECT_DOUBLE_EQ(sa.p90, sb.p90);
    EXPECT_DOUBLE_EQ(sa.p99, sb.p99);
}

TEST_F(ObsTest, HistogramMergeFoldsCountsMomentsAndSimSpan)
{
    obs::Histogram left;
    obs::Histogram right;
    for (int i = 0; i < 100; ++i)
        left.observe(1.0, static_cast<SimTime>(100 + i));
    for (int i = 0; i < 300; ++i)
        right.observe(5.0, static_cast<SimTime>(900 + i));

    left.merge(right);
    const obs::HistogramSnapshot snap = left.snapshot();
    EXPECT_EQ(snap.count, 400u);
    EXPECT_DOUBLE_EQ(snap.mean, (100.0 * 1.0 + 300.0 * 5.0) / 400.0);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 5.0);
    // Sim span is the union of both inputs' spans.
    EXPECT_EQ(snap.firstSim, 100);
    EXPECT_EQ(snap.lastSim, 1199);
    // The donor is unchanged.
    EXPECT_EQ(right.snapshot().count, 300u);
}

TEST_F(ObsTest, HistogramMergeWithEmptySidesIsIdentity)
{
    obs::Histogram target;
    obs::Histogram empty;
    target.observe(2.0, 7);

    target.merge(empty); // empty donor: no change
    obs::HistogramSnapshot snap = target.snapshot();
    EXPECT_EQ(snap.count, 1u);
    EXPECT_EQ(snap.firstSim, 7);

    obs::Histogram fresh;
    fresh.merge(target); // empty receiver adopts the donor wholesale
    snap = fresh.snapshot();
    EXPECT_EQ(snap.count, 1u);
    EXPECT_DOUBLE_EQ(snap.mean, 2.0);
    EXPECT_EQ(snap.firstSim, 7);
    EXPECT_EQ(snap.lastSim, 7);
}

TEST_F(ObsTest, HistogramResetReturnsToEmpty)
{
    obs::Histogram h;
    h.observe(9.0, 3);
    h.reset();
    const obs::HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_TRUE(std::isnan(snap.mean));
    EXPECT_EQ(snap.firstSim, obs::Histogram::kNoSimTime);
}

TEST_F(ObsTest, TracerRecordsSimAndWallEventsOnSeparateClockLanes)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.simSpan("phase", "testcat", 10, 14,
                   {obs::arg("k", std::int64_t{3})});
    tracer.simInstant("mark", "testcat", 12);
    tracer.wallSpan("kernel", "testcat", 0.5, 0.75);

    const auto events = tracer.snapshot();
    ASSERT_EQ(events.size(), 3u);

    EXPECT_EQ(events[0].name, "phase");
    EXPECT_EQ(events[0].phase, 'X');
    EXPECT_FALSE(events[0].wallClock);
    EXPECT_EQ(events[0].tsMicros, 10 * 1000000);
    EXPECT_EQ(events[0].durMicros, 4 * 1000000);
    ASSERT_EQ(events[0].args.size(), 1u);
    EXPECT_EQ(events[0].args[0].key, "k");
    EXPECT_EQ(events[0].args[0].json, "3");

    EXPECT_EQ(events[1].phase, 'i');
    EXPECT_EQ(events[1].tsMicros, 12 * 1000000);

    EXPECT_EQ(events[2].name, "kernel");
    EXPECT_TRUE(events[2].wallClock);
    EXPECT_EQ(events[2].durMicros, 250000);
}

TEST_F(ObsTest, TracerIgnoresRecordsWhileDisabled)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.setEnabled(false);
    tracer.simInstant("ignored", "testcat", 1);
    EXPECT_EQ(tracer.eventCount(), 0u);
    tracer.setEnabled(true);
    tracer.simInstant("kept", "testcat", 2);
    EXPECT_EQ(tracer.eventCount(), 1u);
}

TEST_F(ObsTest, ScopedLaneNestsAndRestores)
{
    EXPECT_EQ(obs::currentLane(), 0);
    {
        obs::ScopedLane outer(3);
        EXPECT_EQ(obs::currentLane(), 3);
        {
            obs::ScopedLane inner(5);
            EXPECT_EQ(obs::currentLane(), 5);
            obs::Tracer::global().simInstant("in-lane", "testcat", 1);
        }
        EXPECT_EQ(obs::currentLane(), 3);
    }
    EXPECT_EQ(obs::currentLane(), 0);

    const auto events = obs::Tracer::global().snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].lane, 5);
}

TEST_F(ObsTest, WallSpanRecordsOnlyWhileTracing)
{
    {
        obs::WallSpan span("scoped", "testcat");
    }
    EXPECT_EQ(obs::Tracer::global().eventCount(), 1u);

    obs::Tracer::global().setEnabled(false);
    {
        obs::WallSpan span("ignored", "testcat");
    }
    EXPECT_EQ(obs::Tracer::global().eventCount(), 1u);
}

TEST_F(ObsTest, ChromeTraceIsWellFormedJson)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.simSpan("s\"pan\n", "cat", 0, 1); // exercises escaping
    tracer.simInstant("mark", "cat", 1);

    std::ostringstream out;
    tracer.writeChromeTrace(out);
    const std::string doc = out.str();

    // Structural smoke check: balanced braces/brackets outside strings
    // catch the classic trailing-comma/missing-brace export bugs.
    int braces = 0;
    int brackets = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : doc) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = in_string;
            continue;
        }
        if (c == '"') {
            in_string = !in_string;
            continue;
        }
        if (in_string)
            continue;
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_FALSE(in_string);

    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(doc.find("s\\\"pan\\n"), std::string::npos);
    // No trailing comma before the closing bracket.
    EXPECT_EQ(doc.find(",\n]"), std::string::npos);
    EXPECT_EQ(doc.find(",]"), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceWithNoEventsIsStillWellFormed)
{
    std::ostringstream out;
    obs::Tracer::global().writeChromeTrace(out);
    const std::string doc = out.str();
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(doc.find(",\n]"), std::string::npos);
}

TEST_F(ObsTest, JsonlExportsOneObjectPerLine)
{
    obs::MetricsRegistry::global().counter("t.jsonl").add(3);
    obs::Tracer::global().simInstant("mark", "cat", 1);

    std::ostringstream metrics;
    obs::MetricsRegistry::global().writeJsonl(metrics);
    EXPECT_NE(metrics.str().find("\"t.jsonl\""), std::string::npos);

    std::ostringstream events;
    obs::Tracer::global().writeJsonl(events);
    std::istringstream lines(events.str());
    std::string line;
    std::size_t n = 0;
    while (std::getline(lines, line)) {
        ++n;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
    }
    EXPECT_EQ(n, obs::Tracer::global().eventCount());
}

TEST_F(ObsTest, MetricMutationsIgnoredWhenDisarmedAtTheGate)
{
    // The registry objects themselves always record; the runtime gate
    // lives at the instrumentation sites via obs::enabled().
    obs::setEnabled(false);
    EXPECT_FALSE(obs::enabled());
    obs::setEnabled(true);
    EXPECT_TRUE(obs::enabled());
}

TEST_F(ObsTest, ResetAllClearsValuesAndTraceEvents)
{
    obs::MetricsRegistry::global().counter("t.reset").add(9);
    obs::Tracer::global().simInstant("mark", "cat", 1);
    obs::resetAll();
    EXPECT_EQ(obs::MetricsRegistry::global().counter("t.reset").get(),
              0u);
    EXPECT_EQ(obs::Tracer::global().eventCount(), 0u);
}

TEST_F(ObsTest, JsonHelpersEscapeAndRenderNumbers)
{
    EXPECT_EQ(obs::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(obs::jsonEscape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(obs::jsonNumber(1.5), "1.5");
    EXPECT_EQ(obs::jsonNumber(std::nan("")), "null");
}

TEST_F(ObsTest, SummaryTableRendersEmptyHistogramAsNotAvailable)
{
    (void)obs::MetricsRegistry::global().histogram("t.summary_empty");
    const std::string table =
        obs::MetricsRegistry::global().summaryTable();
    EXPECT_NE(table.find("t.summary_empty"), std::string::npos);
    // NaN statistics must render as "n/a", never "nan".
    EXPECT_EQ(table.find("nan"), std::string::npos);
}

#else // !ADRIAS_OBS_ENABLED — the layer must be provably inert.

TEST_F(ObsTest, CompiledOutLayerCannotBeArmed)
{
    EXPECT_FALSE(obs::compiledIn());
    // SetUp already tried to arm both switches.
    EXPECT_FALSE(obs::enabled());
    EXPECT_FALSE(obs::Tracer::global().enabled());
}

TEST_F(ObsTest, CompiledOutMetricsNeverMove)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.counter("t.off").add(100);
    reg.gauge("t.off_g").set(5.0);
    reg.histogram("t.off_h").observe(1.0, 3);
    EXPECT_EQ(reg.counter("t.off").get(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("t.off_g").get(), 0.0);
    EXPECT_EQ(reg.histogram("t.off_h").snapshot().count, 0u);
}

TEST_F(ObsTest, CompiledOutTracerRecordsNothing)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.simSpan("s", "c", 0, 1);
    tracer.simInstant("i", "c", 1);
    tracer.wallSpan("w", "c", 0.0, 1.0);
    {
        obs::WallSpan span("scoped", "c");
    }
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.droppedEvents(), 0u);
}

TEST_F(ObsTest, CompiledOutRunLifecycleIsSilent)
{
    obs::startRun("/nonexistent/never-created");
    EXPECT_EQ(obs::finishRun(), "");
}

#endif // ADRIAS_OBS_ENABLED

} // namespace
