// Lint fixture: deliberate unordered-container violations (applies
// under a src/testbed, src/scenario or src/core label).  Never compiled.
#include <map>
#include <unordered_map> // line 4: unordered-container
#include <unordered_set> // line 5: unordered-container

int
count()
{
    std::unordered_map<int, int> m; // line 10: unordered-container
    std::map<int, int> ordered;     // fine
    return (int)(m.size() + ordered.size());
}
