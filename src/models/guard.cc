#include "models/guard.hh"

#include <cmath>

#include "common/logging.hh"
#include "obs/obs.hh"

namespace adrias::models
{

namespace
{

/** @return true when every entry of the sequence is finite. */
bool
sequenceFinite(const std::vector<ml::Matrix> &sequence)
{
    for (const ml::Matrix &step : sequence)
        for (double v : step.raw())
            if (!std::isfinite(v))
                return false;
    return true;
}

} // namespace

GuardedPredictor::GuardedPredictor(const PredictorBase &inner,
                                   PredictorGuardConfig config,
                                   fault::FaultInjector *injector)
    : wrapped(&inner), knobs(config), faults(injector),
      breakerGate(config.breaker)
{
    if (knobs.deadlineMs <= 0.0)
        fatal("GuardedPredictor: deadline must be positive");
    if (knobs.baseLatencyMs < 0.0)
        fatal("GuardedPredictor: base latency must be non-negative");
}

void
GuardedPredictor::obsBreakerSync() const
{
#if ADRIAS_OBS_ENABLED
    const fault::BreakerState current = breakerGate.state();
    if (current == obsBreakerState)
        return;
    obsBreakerState = current;
    if (!obs::enabled())
        return;
    obs::MetricsRegistry::global()
        .counter("predictor.breaker_transitions")
        .add();
    if (obs::Tracer::global().enabled()) {
        obs::Tracer::global().simInstant(
            std::string("breaker.") + fault::toString(current),
            "predictor", decisionTime);
    }
#endif
}

void
GuardedPredictor::fail(const std::string &reason,
                       bool breaker_failure) const
{
    if (breaker_failure) {
        ++tallies.failures;
        breakerGate.recordFailure(decisionTime);
        obsBreakerSync();
    }
    throw PredictionUnavailable("GuardedPredictor: " + reason);
}

void
GuardedPredictor::admitCall(std::uint64_t salt, std::size_t weight) const
{
    tallies.calls += weight;
#if ADRIAS_OBS_ENABLED
    if (obs::enabled()) {
        static obs::Counter &calls_c =
            obs::MetricsRegistry::global().counter("predictor.calls");
        calls_c.add(weight);
    }
#endif

    if (!breakerGate.allowRequest(decisionTime)) {
        obsBreakerSync();
        ++tallies.rejectedByBreaker;
#if ADRIAS_OBS_ENABLED
        if (obs::enabled())
            obs::MetricsRegistry::global()
                .counter("predictor.breaker_rejections")
                .add();
#endif
        throw PredictionUnavailable(
            "GuardedPredictor: circuit breaker open (backoff " +
            std::to_string(breakerGate.currentBackoffSec()) + " s)");
    }
    obsBreakerSync(); // allowRequest can move Open -> HalfOpen

    // Injected crash window: the inference call dies outright.
    if (faults && faults->predictorCrashAt(decisionTime, salt)) {
        ++tallies.injectedCrashes;
        fail("inference crashed", true);
    }

    // Per-call deadline against the modelled (possibly spiked) latency.
    double latency_ms = knobs.baseLatencyMs;
    if (faults)
        latency_ms = faults->predictorLatencyMsAt(decisionTime, salt,
                                                  latency_ms);
#if ADRIAS_OBS_ENABLED
    // Record the modelled inference latency whether or not it beats
    // the deadline: the histogram should show the spikes too.
    if (obs::enabled()) {
        static obs::Histogram &latency_h =
            obs::MetricsRegistry::global().histogram(
                "predictor.latency_ms");
        latency_h.observe(latency_ms, decisionTime);
    }
#endif
    // Hard budget, exclusive: an inference consuming the entire budget
    // leaves nothing for the decision it feeds, so landing exactly on
    // the deadline is a miss — the same boundary rule the serving
    // layer applies to request deadlines (DESIGN.md §15).
    if (latency_ms >= knobs.deadlineMs) {
        ++tallies.deadlineExceeded;
        fail("inference deadline exceeded (" +
                 std::to_string(latency_ms) + " ms)",
             true);
    }
}

ml::Matrix
GuardedPredictor::predictSystemState(
    const telemetry::Watcher &watcher) const
{
#if ADRIAS_OBS_ENABLED
    obs::WallSpan predict_span("predict_system_state", "predictor");
#endif
    const std::uint64_t salt = callCounter++;
    admitCall(salt);
    if (watcher.sampleCount() == 0) {
        ++tallies.invalidInputs;
        throw PredictionUnavailable(
            "GuardedPredictor: no telemetry to predict from");
    }
    ml::Matrix forecast;
    try {
        forecast = wrapped->predictSystemState(watcher);
    } catch (const std::exception &err) {
        fail(std::string("system-state model threw: ") + err.what(),
             true);
    }
    for (double v : forecast.raw())
        if (!std::isfinite(v))
            fail("system-state forecast is not finite", true);
    ++tallies.served;
    breakerGate.recordSuccess(decisionTime);
    obsBreakerSync();
#if ADRIAS_OBS_ENABLED
    if (obs::enabled()) {
        static obs::Counter &served_c =
            obs::MetricsRegistry::global().counter("predictor.served");
        served_c.add();
    }
#endif
    return forecast;
}

double
GuardedPredictor::predictPerformance(
    WorkloadClass cls, const std::vector<ml::Matrix> &history,
    const std::vector<ml::Matrix> &signature, MemoryMode mode) const
{
#if ADRIAS_OBS_ENABLED
    obs::WallSpan predict_span("predict_performance", "predictor");
#endif
    const std::uint64_t salt = callCounter++;
    admitCall(salt);

    // Input validation is not a model failure: reject without charging
    // the breaker.
    if (history.empty() || signature.empty() ||
        !sequenceFinite(history) || !sequenceFinite(signature)) {
        ++tallies.invalidInputs;
        throw PredictionUnavailable(
            "GuardedPredictor: invalid model inputs");
    }

    double prediction = 0.0;
    try {
        prediction =
            wrapped->predictPerformance(cls, history, signature, mode);
    } catch (const std::exception &err) {
        fail(std::string("performance model threw: ") + err.what(),
             true);
    }
    if (!std::isfinite(prediction) || prediction < 0.0)
        fail("performance prediction is not finite", true);
    ++tallies.served;
    breakerGate.recordSuccess(decisionTime);
    obsBreakerSync();
#if ADRIAS_OBS_ENABLED
    if (obs::enabled()) {
        static obs::Counter &served_c =
            obs::MetricsRegistry::global().counter("predictor.served");
        served_c.add();
    }
#endif
    return prediction;
}

std::vector<double>
GuardedPredictor::predictPerformanceBatch(
    WorkloadClass cls, const std::vector<PerfQuery> &queries) const
{
#if ADRIAS_OBS_ENABLED
    obs::WallSpan predict_span("predict_performance_batch", "predictor");
#endif
    if (queries.empty())
        return {};
    const std::uint64_t salt = callCounter++;
    admitCall(salt, queries.size());

    // Input validation is not a model failure: reject without charging
    // the breaker (same rule as the single-row path).
    for (const PerfQuery &query : queries) {
        if (query.history == nullptr || query.history->empty() ||
            query.signature == nullptr || query.signature->empty() ||
            !sequenceFinite(*query.history) ||
            !sequenceFinite(*query.signature)) {
            ++tallies.invalidInputs;
            throw PredictionUnavailable(
                "GuardedPredictor: invalid model inputs");
        }
    }

    std::vector<double> predictions;
    try {
        predictions = wrapped->predictPerformanceBatch(cls, queries);
    } catch (const std::exception &err) {
        fail(std::string("performance model threw: ") + err.what(),
             true);
    }
    if (predictions.size() != queries.size())
        fail("batched prediction count mismatch", true);
    for (double prediction : predictions)
        if (!std::isfinite(prediction) || prediction < 0.0)
            fail("performance prediction is not finite", true);
    tallies.served += predictions.size();
    breakerGate.recordSuccess(decisionTime);
    obsBreakerSync();
#if ADRIAS_OBS_ENABLED
    if (obs::enabled()) {
        static obs::Counter &served_c =
            obs::MetricsRegistry::global().counter("predictor.served");
        served_c.add(predictions.size());
    }
#endif
    return predictions;
}

void
GuardedPredictor::saveState(io::BinaryWriter &out) const
{
    breakerGate.saveState(out);
    out.writeU64(tallies.calls);
    out.writeU64(tallies.served);
    out.writeU64(tallies.failures);
    out.writeU64(tallies.deadlineExceeded);
    out.writeU64(tallies.invalidInputs);
    out.writeU64(tallies.rejectedByBreaker);
    out.writeU64(tallies.injectedCrashes);
    out.writeU64(callCounter);
    out.writeI64(decisionTime);
}

Result<void>
GuardedPredictor::restoreState(io::BinaryReader &in)
{
    if (Result<void> restored = breakerGate.restoreState(in); !restored)
        return restored;
    tallies.calls = in.readU64();
    tallies.served = in.readU64();
    tallies.failures = in.readU64();
    tallies.deadlineExceeded = in.readU64();
    tallies.invalidInputs = in.readU64();
    tallies.rejectedByBreaker = in.readU64();
    tallies.injectedCrashes = in.readU64();
    callCounter = in.readU64();
    decisionTime = in.readI64();
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "GuardedPredictor: truncated snapshot section");
    // obs transition detection restarts from the restored state.
    obsBreakerState = breakerGate.state();
    return {};
}

} // namespace adrias::models
