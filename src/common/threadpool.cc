#include "common/threadpool.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

namespace adrias
{

namespace
{

/** Set for the lifetime of a worker thread's loop. */
thread_local bool t_insideWorker = false;

/** Active override installed by ScopedThreadOverride (else null). */
std::atomic<ThreadPool *> g_override{nullptr};

/** Process-wide observer installed via ThreadPool::setObserver. */
std::atomic<ThreadPool::Observer *> g_observer{nullptr};

/** Completion state shared between one parallelFor and its chunks. */
struct ForState
{
    Mutex mutex;
    std::condition_variable_any done;
    std::size_t remaining ADRIAS_GUARDED_BY(mutex);
    std::exception_ptr first ADRIAS_GUARDED_BY(mutex);
    std::size_t firstChunk ADRIAS_GUARDED_BY(mutex) =
        std::numeric_limits<std::size_t>::max();

    explicit ForState(std::size_t chunks) : remaining(chunks) {}
};

/** Record a chunk's outcome; keeps the lowest-index exception. */
void
finishChunk(ForState &state, std::size_t chunk,
            std::exception_ptr error) ADRIAS_EXCLUDES(state.mutex)
{
    MutexLock lock(state.mutex);
    if (error && chunk < state.firstChunk) {
        state.firstChunk = chunk;
        state.first = error;
    }
    // Notify while still holding the lock: the waiter frees the
    // ForState as soon as it observes remaining == 0, so signalling
    // after unlock would race that destruction.
    if (--state.remaining == 0)
        state.done.notify_all();
}

/**
 * Block until every chunk reported in; @return the lowest-chunk-index
 * exception (null if none).  condition_variable_any releases and
 * reacquires the annotated Mutex internally, which the static
 * analysis cannot see — hence the opt-out.
 */
std::exception_ptr
awaitChunks(ForState &state) ADRIAS_NO_THREAD_SAFETY_ANALYSIS
{
    MutexLock lock(state.mutex);
    state.done.wait(state.mutex, [&] { return state.remaining == 0; });
    return state.first;
}

} // namespace

ThreadPool::ThreadPool(unsigned threads)
    : configured(threads == 0 ? 1u : std::min(threads, kMaxThreads))
{
    if (configured <= 1)
        return; // serial pool: all work runs on the caller
    workers.reserve(configured);
    try {
        for (unsigned i = 0; i < configured; ++i)
            workers.emplace_back([this] { workerLoop(); });
    } catch (...) {
        // Partially spawned pool: stop and join what exists, or the
        // std::thread destructors would terminate the process.
        {
            MutexLock lock(mutex);
            stopping = true;
        }
        available.notify_all();
        for (std::thread &worker : workers)
            worker.join();
        throw;
    }
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex);
        stopping = true;
    }
    available.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::workerLoop() ADRIAS_NO_THREAD_SAFETY_ANALYSIS
{
    t_insideWorker = true;
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex);
            available.wait(mutex,
                           [&] { return stopping || !queue.empty(); });
            // Drain queued work even when stopping: a destructor must
            // never strand a task someone holds a future for.
            if (queue.empty())
                return;
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    if (!task)
        throw std::invalid_argument("ThreadPool::submit: empty task");
    if (onWorkerThread())
        throw std::logic_error(
            "ThreadPool::submit from a worker thread: waiting on the "
            "future would deadlock; use parallelFor (runs inline when "
            "nested)");

    auto packaged = std::make_shared<std::packaged_task<void()>>(
        std::move(task));
    std::future<void> result = packaged->get_future();
    if (workers.empty()) {
        (*packaged)(); // serial pool: run inline
        return result;
    }
    std::size_t depth = 0;
    {
        MutexLock lock(mutex);
        if (stopping)
            throw std::logic_error(
                "ThreadPool::submit on a stopping pool");
        queue.push_back([packaged] { (*packaged)(); });
        depth = queue.size();
    }
    available.notify_one();
    if (Observer *watcher = observer())
        watcher->onEnqueue(depth);
    return result;
}

std::size_t
ThreadPool::chunkCount(std::size_t total)
{
    return std::min(total, kMaxChunks);
}

std::pair<std::size_t, std::size_t>
ThreadPool::chunkBounds(std::size_t total, std::size_t c)
{
    const std::size_t chunks = chunkCount(total);
    const std::size_t base = total / chunks;
    const std::size_t extra = total % chunks;
    // The first `extra` chunks carry one additional item; boundaries
    // are a pure function of (total, c).
    const std::size_t begin = c * base + std::min(c, extra);
    const std::size_t length = base + (c < extra ? 1 : 0);
    return {begin, begin + length};
}

bool
ThreadPool::onWorkerThread()
{
    return t_insideWorker;
}

void
ThreadPool::parallelFor(
    std::size_t total,
    const std::function<void(std::size_t, std::size_t)> &body)
{
    if (total == 0)
        return;
    const std::size_t chunks = chunkCount(total);
    Observer *watcher = observer();

    // Serial pool, nested call from a worker, or a single chunk: run
    // the *same* chunk sequence inline, in index order.  Identical
    // partitioning on both paths is what makes reductions order-fixed.
    if (workers.empty() || onWorkerThread() || chunks == 1) {
        for (std::size_t c = 0; c < chunks; ++c) {
            const auto [begin, end] = chunkBounds(total, c);
            if (watcher)
                watcher->onChunkStart(c, begin, end);
            body(begin, end);
            if (watcher)
                watcher->onChunkEnd(c, begin, end);
        }
        return;
    }

    ForState state(chunks);
    std::size_t depth = 0;
    {
        MutexLock lock(mutex);
        if (stopping)
            throw std::logic_error(
                "ThreadPool::parallelFor on a stopping pool");
        for (std::size_t c = 0; c < chunks; ++c) {
            queue.push_back([&state, &body, total, c, watcher] {
                const auto [begin, end] = chunkBounds(total, c);
                if (watcher)
                    watcher->onChunkStart(c, begin, end);
                std::exception_ptr error;
                try {
                    body(begin, end);
                } catch (...) {
                    error = std::current_exception();
                }
                if (watcher)
                    watcher->onChunkEnd(c, begin, end);
                finishChunk(state, c, error);
            });
        }
        depth = queue.size();
    }
    available.notify_all();
    if (watcher)
        watcher->onEnqueue(depth);
    if (std::exception_ptr first = awaitChunks(state))
        std::rethrow_exception(first);
}

void
ThreadPool::parallelForEach(std::size_t total,
                            const std::function<void(std::size_t)> &fn)
{
    parallelFor(total, [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            fn(i);
    });
}

unsigned
ThreadPool::configuredThreads()
{
    const char *env = std::getenv("ADRIAS_THREADS");
    if (env && *env) {
        const unsigned long parsed = std::strtoul(env, nullptr, 10);
        if (parsed >= 1)
            return static_cast<unsigned>(
                std::min<unsigned long>(parsed, kMaxThreads));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : std::min(hw, kMaxThreads);
}

ThreadPool &
ThreadPool::global()
{
    ThreadPool *override_pool = g_override.load(std::memory_order_acquire);
    if (override_pool)
        return *override_pool;
    static ThreadPool pool(configuredThreads());
    return pool;
}

ThreadPool *
ThreadPool::swapGlobal(ThreadPool *next)
{
    return g_override.exchange(next, std::memory_order_acq_rel);
}

void
ThreadPool::setObserver(Observer *observer)
{
    g_observer.store(observer, std::memory_order_release);
}

ThreadPool::Observer *
ThreadPool::observer()
{
    return g_observer.load(std::memory_order_acquire);
}

ScopedThreadOverride::ScopedThreadOverride(unsigned threads)
    : replacement(threads),
      previous(ThreadPool::swapGlobal(&replacement))
{
}

ScopedThreadOverride::~ScopedThreadOverride()
{
    ThreadPool::swapGlobal(previous);
}

} // namespace adrias
