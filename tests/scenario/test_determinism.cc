/**
 * @file
 * Determinism regression: one seed must reproduce a scenario exactly.
 *
 * The whole offline phase rests on this — traces are collected once,
 * persisted and reused, so any hidden nondeterminism (wall-clock reads,
 * unordered-container iteration, uninitialized state) would silently
 * fork the datasets.  Two runs with the same ScenarioConfig must agree
 * bit-for-bit: every counter of every tick, every completion record,
 * and the serialized CSV artifacts byte-for-byte.
 */

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/threadpool.hh"
#include "ml/matrix.hh"
#include "models/system_state.hh"
#include "scenario/dataset.hh"
#include "scenario/dataset_io.hh"
#include "scenario/runner.hh"

namespace
{

using namespace adrias;

scenario::ScenarioConfig
config()
{
    scenario::ScenarioConfig cfg;
    cfg.durationSec = 600;
    cfg.spawnMinSec = 5;
    cfg.spawnMaxSec = 25;
    cfg.seed = 4242;
    return cfg;
}

scenario::ScenarioResult
runOnce()
{
    scenario::ScenarioRunner runner(config());
    scenario::RandomPlacement policy(777);
    return runner.run(policy);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(DeterminismTest, SameSeedReproducesTraceBitForBit)
{
    const auto first = runOnce();
    const auto second = runOnce();

    ASSERT_EQ(first.trace.size(), second.trace.size());
    for (std::size_t t = 0; t < first.trace.size(); ++t) {
        for (std::size_t e = 0; e < testbed::kNumPerfEvents; ++e) {
            ASSERT_EQ(first.trace[t][e], second.trace[t][e])
                << "tick " << t << " event " << e;
        }
    }
    ASSERT_EQ(first.concurrency, second.concurrency);
    EXPECT_EQ(first.totalRemoteTrafficGB, second.totalRemoteTrafficGB);

    ASSERT_EQ(first.records.size(), second.records.size());
    for (std::size_t i = 0; i < first.records.size(); ++i) {
        const auto &a = first.records[i];
        const auto &b = second.records[i];
        EXPECT_EQ(a.name, b.name) << i;
        EXPECT_EQ(a.mode, b.mode) << i;
        EXPECT_EQ(a.arrival, b.arrival) << i;
        EXPECT_EQ(a.completion, b.completion) << i;
        EXPECT_EQ(a.execTimeSec, b.execTimeSec) << i;
        EXPECT_EQ(a.p99Ms, b.p99Ms) << i;
        EXPECT_EQ(a.remoteTrafficGB, b.remoteTrafficGB) << i;
    }
}

TEST(DeterminismTest, SameSeedReproducesDatasetCsvByteForByte)
{
    const std::vector<scenario::ScenarioResult> first{runOnce()};
    const std::vector<scenario::ScenarioResult> second{runOnce()};

    const auto state_a = scenario::DatasetBuilder::systemState(first);
    const auto state_b = scenario::DatasetBuilder::systemState(second);
    ASSERT_FALSE(state_a.empty());
    ASSERT_EQ(state_a.size(), state_b.size());

    const std::string dir = ::testing::TempDir();
    const std::string path_a = dir + "adrias_det_state_a.csv";
    const std::string path_b = dir + "adrias_det_state_b.csv";
    scenario::saveSystemStateCsv(path_a, state_a);
    scenario::saveSystemStateCsv(path_b, state_b);
    EXPECT_EQ(slurp(path_a), slurp(path_b));
}

// ---------------------------------------------------------------------
// Thread-count invariance (DESIGN.md §9): ADRIAS_THREADS must never
// change a result.  Each helper below runs the same workload under a
// serial pool and a 4-thread pool and demands bitwise equality.

std::vector<scenario::ScenarioResult>
runSweep()
{
    std::vector<scenario::SweepItem> items(3);
    for (std::size_t i = 0; i < items.size(); ++i) {
        items[i].config = config();
        items[i].config.seed = 4242 + i;
        items[i].policySeed = 777 + i;
    }
    return scenario::runScenarioSweep(items);
}

void
expectSameResults(const std::vector<scenario::ScenarioResult> &serial,
                  const std::vector<scenario::ScenarioResult> &parallel)
{
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t s = 0; s < serial.size(); ++s) {
        const auto &a = serial[s];
        const auto &b = parallel[s];
        ASSERT_EQ(a.trace.size(), b.trace.size()) << "sweep item " << s;
        for (std::size_t t = 0; t < a.trace.size(); ++t)
            for (std::size_t e = 0; e < testbed::kNumPerfEvents; ++e)
                ASSERT_EQ(a.trace[t][e], b.trace[t][e])
                    << "item " << s << " tick " << t << " event " << e;
        ASSERT_EQ(a.concurrency, b.concurrency) << s;
        EXPECT_EQ(a.totalRemoteTrafficGB, b.totalRemoteTrafficGB) << s;
        ASSERT_EQ(a.records.size(), b.records.size()) << s;
        for (std::size_t i = 0; i < a.records.size(); ++i) {
            EXPECT_EQ(a.records[i].name, b.records[i].name) << s;
            EXPECT_EQ(a.records[i].mode, b.records[i].mode) << s;
            EXPECT_EQ(a.records[i].arrival, b.records[i].arrival) << s;
            EXPECT_EQ(a.records[i].completion, b.records[i].completion)
                << s;
            EXPECT_EQ(a.records[i].execTimeSec, b.records[i].execTimeSec)
                << s;
            EXPECT_EQ(a.records[i].p99Ms, b.records[i].p99Ms) << s;
            EXPECT_EQ(a.records[i].remoteTrafficGB,
                      b.records[i].remoteTrafficGB)
                << s;
        }
    }
}

TEST(DeterminismTest, SweepIsThreadCountInvariant)
{
    std::vector<scenario::ScenarioResult> serial, parallel;
    {
        ScopedThreadOverride one(1);
        serial = runSweep();
    }
    {
        ScopedThreadOverride four(4);
        parallel = runSweep();
    }
    expectSameResults(serial, parallel);

    // CSV artifacts built from the two sweeps must agree byte-for-byte.
    const auto state_a = scenario::DatasetBuilder::systemState(serial);
    const auto state_b = scenario::DatasetBuilder::systemState(parallel);
    ASSERT_FALSE(state_a.empty());
    const std::string dir = ::testing::TempDir();
    const std::string path_a = dir + "adrias_threads1_state.csv";
    const std::string path_b = dir + "adrias_threads4_state.csv";
    scenario::saveSystemStateCsv(path_a, state_a);
    scenario::saveSystemStateCsv(path_b, state_b);
    EXPECT_EQ(slurp(path_a), slurp(path_b));
}

TEST(DeterminismTest, TrainingIsThreadCountInvariant)
{
    // Force every Matrix kernel onto the parallel path so the 4-thread
    // run genuinely exercises fan-out even at these tiny model shapes.
    const auto saved_config = ml::matrixParallelConfig();
    ml::setMatrixParallelConfig({0, 0});

    scenario::ScenarioRunner runner(config());
    scenario::RandomPlacement policy(777);
    const std::vector<scenario::ScenarioResult> results{
        runner.run(policy)};
    auto samples = scenario::DatasetBuilder::systemState(results);
    ASSERT_GE(samples.size(), 4u);
    samples.resize(std::min<std::size_t>(samples.size(), 24));

    models::ModelConfig model_config;
    model_config.epochs = 2;

    const std::string dir = ::testing::TempDir();
    auto train_and_save = [&](unsigned threads,
                              const std::string &path) {
        ScopedThreadOverride override_(threads);
        models::SystemStateModel model(model_config);
        model.train(samples);
        model.save(path);
        return model.predict(samples.front().history);
    };

    const std::string path_1 = dir + "adrias_state_threads1.model";
    const std::string path_4 = dir + "adrias_state_threads4.model";
    const ml::Matrix pred_1 = train_and_save(1, path_1);
    const ml::Matrix pred_4 = train_and_save(4, path_4);

    ml::setMatrixParallelConfig(saved_config);

    // Trained weights and a prediction must be bitwise identical.
    EXPECT_EQ(slurp(path_1), slurp(path_4));
    ASSERT_EQ(pred_1.rows(), pred_4.rows());
    ASSERT_EQ(pred_1.cols(), pred_4.cols());
    EXPECT_EQ(pred_1.raw(), pred_4.raw());
}

} // namespace
