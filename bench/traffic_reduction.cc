/**
 * @file
 * §VI-B (traffic) — Data moved over the FPGA interconnect under each
 * scheduler.
 *
 * Paper: Adrias cuts transmitted data by ~45% (β=0.8) and ~23% (β=0.7)
 * versus Random/Round-Robin, and up to 55% at iso-offload counts,
 * because it prefers offloading memory-light applications.
 */

#include <iostream>

#include "bench/common.hh"

namespace
{

using namespace adrias;

struct TrafficOutcome
{
    double traffic_gb = 0.0;
    std::size_t offloads = 0;
    std::size_t total = 0;
};

TrafficOutcome
evaluate(scenario::PlacementPolicy &policy, std::size_t repeats)
{
    TrafficOutcome outcome;
    for (std::size_t i = 0; i < repeats; ++i) {
        scenario::ScenarioRunner runner(
            bench::evalScenario(5000 + i * 11, 25));
        const auto result = runner.run(policy);
        outcome.traffic_gb += result.totalRemoteTrafficGB;
        for (const auto &record : result.records) {
            if (record.cls == WorkloadClass::Interference)
                continue;
            ++outcome.total;
            outcome.offloads += record.mode == MemoryMode::Remote;
        }
    }
    return outcome;
}

} // namespace

int
main()
{
    bench::banner("§VI-B — channel-traffic reduction",
                  "Adrias moves 23-45% less data than Random/RR; up to "
                  "55% less at iso-offload");

    core::AdriasStack stack(bench::stackOptions());
    const auto repeats = static_cast<std::size_t>(
        bench::envInt("ADRIAS_BENCH_SCENARIOS", 4) / 2 + 1);

    scenario::RandomPlacement random(5);
    const auto random_outcome = evaluate(random, repeats);
    core::RoundRobinScheduler rr;
    const auto rr_outcome = evaluate(rr, repeats);

    TextTable table({"policy", "offloaded apps", "channel traffic (GB)",
                     "vs random", "vs round-robin"});
    auto add_row = [&](const std::string &label,
                       const TrafficOutcome &outcome) {
        table.addRow(label,
                     {static_cast<double>(outcome.offloads),
                      outcome.traffic_gb,
                      outcome.traffic_gb / random_outcome.traffic_gb,
                      outcome.traffic_gb / rr_outcome.traffic_gb},
                     2);
    };
    add_row("random", random_outcome);
    add_row("round-robin", rr_outcome);
    for (double beta : {0.8, 0.7}) {
        core::AdriasConfig config;
        config.beta = beta;
        auto orchestrator = stack.makeOrchestrator(config);
        add_row(orchestrator.name(), evaluate(orchestrator, repeats));
    }

    std::cout << table.toString();
    std::cout << "\nShape check: the adrias rows sit well below 1.0 in "
                 "the vs-random / vs-round-robin columns (paper: 0.55 "
                 "and 0.77 respectively).\n";
    return 0;
}
