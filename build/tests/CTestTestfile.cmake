# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
