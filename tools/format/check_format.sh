#!/bin/sh
# Formatting check for the `format` CTest target: verifies (never
# rewrites) that the tree matches .clang-format.  Exit codes:
#   0   all files formatted
#   1   at least one file deviates (clang-format -Werror --dry-run)
#   125 clang-format unavailable -> CTest marks the test as skipped
set -u

repo="${1:-}"
cf="${2:-}"

if [ -z "$repo" ] || [ ! -d "$repo" ]; then
    echo "usage: check_format.sh <repo-root> [clang-format-binary]" >&2
    exit 1
fi
if [ -z "$cf" ] || [ "$cf" = "ADRIAS_CLANG_FORMAT-NOTFOUND" ] \
        || ! command -v "$cf" >/dev/null 2>&1; then
    echo "clang-format not available; skipping format check"
    exit 125
fi

cd "$repo" || exit 1
files=$(find src tests bench tools examples \
        \( -name '*.cc' -o -name '*.hh' \) ! -path '*/fixtures/*' | sort)
[ -n "$files" ] || { echo "no sources found under $repo" >&2; exit 1; }

# shellcheck disable=SC2086 -- word-splitting the file list is intended
"$cf" --style=file --dry-run -Werror $files
