# Empty dependencies file for adrias_testbed.
# This may be replaced when dependencies are built.
