/**
 * @file
 * Fig. 14 — Latency-critical performance model: MAE per server and
 * residuals for the p99 predictor under the pragmatic {120,Ŝ} stacked
 * configuration.
 *
 * Paper: R² 0.874 for LC applications.
 */

#include <iostream>

#include "bench/common.hh"
#include "models/performance.hh"
#include "models/system_state.hh"

int
main()
{
    using namespace adrias;
    bench::banner("Fig. 14 — LC performance model (p99 predictor)",
                  "R^2 ~0.874; MAEs ~10% of the median p99");

    const auto scenarios = static_cast<std::size_t>(
        bench::envInt("ADRIAS_BENCH_SCENARIOS", 4) * 6);
    const SimTime spawn_maxes[] = {20, 30, 40, 50, 60};
    std::vector<scenario::SweepItem> sweep(scenarios);
    for (std::size_t i = 0; i < scenarios; ++i) {
        sweep[i].config = bench::evalScenario(
            1900 + i, spawn_maxes[i % std::size(spawn_maxes)]);
        sweep[i].config.lcFraction = 0.35; // richer LC sample here
        sweep[i].policySeed = 2000 + i;
    }
    const auto results = scenario::runScenarioSweep(sweep);
    scenario::SignatureStore signatures;
    scenario::collectAllSignatures(signatures);

    auto lc = scenario::DatasetBuilder::performance(
        results, signatures, WorkloadClass::LatencyCritical);
    auto [train, test] = scenario::splitDataset(std::move(lc), 0.6, 13);
    std::cout << "dataset: train=" << train.size()
              << " test=" << test.size() << "\n";

    models::ModelConfig config;
    config.epochs = static_cast<std::size_t>(
        bench::envInt("ADRIAS_BENCH_EPOCHS", 30));
    auto state_samples = scenario::DatasetBuilder::systemState(results, 5);
    auto [state_train, state_test] =
        scenario::splitDataset(std::move(state_samples), 0.6, 13);
    models::ModelConfig state_config = config;
    state_config.epochs = config.epochs * 2;
    models::SystemStateModel state_model(state_config);
    state_model.train(state_train);

    models::PerformanceModel model(models::FutureKind::Predicted, config);
    model.train(train, &state_model);
    const auto eval = model.evaluate(test, &state_model);

    TextTable table({"server", "MAE p99 (ms)"});
    for (const auto &[name, mae] : eval.maePerApp)
        table.addRow(name, {mae}, 3);
    std::cout << table.toString();

    std::cout << "\nR^2=" << formatDouble(eval.r2, 3)
              << " MAE=" << formatDouble(eval.mae, 3) << " ms over "
              << eval.actual.size()
              << " deployments   (paper: R^2 0.874)\n";
    return 0;
}
