file(REMOVE_RECURSE
  "CMakeFiles/adrias_common.dir/csv.cc.o"
  "CMakeFiles/adrias_common.dir/csv.cc.o.d"
  "CMakeFiles/adrias_common.dir/logging.cc.o"
  "CMakeFiles/adrias_common.dir/logging.cc.o.d"
  "CMakeFiles/adrias_common.dir/rng.cc.o"
  "CMakeFiles/adrias_common.dir/rng.cc.o.d"
  "CMakeFiles/adrias_common.dir/table.cc.o"
  "CMakeFiles/adrias_common.dir/table.cc.o.d"
  "CMakeFiles/adrias_common.dir/types.cc.o"
  "CMakeFiles/adrias_common.dir/types.cc.o.d"
  "libadrias_common.a"
  "libadrias_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adrias_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
