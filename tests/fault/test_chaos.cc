/**
 * @file
 * Chaos suite: full scenarios under fault schedules, exercising every
 * graceful-degradation path of the Watcher → Predictor → Orchestrator
 * pipeline end to end.
 *
 * Uses a deterministic stub prediction stack (the decision rules and
 * the degradation machinery are under test, not model accuracy), so
 * full 3600 s scenarios run in milliseconds.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/orchestrator.hh"
#include "core/schedulers.hh"
#include "fault/fault.hh"
#include "models/guard.hh"
#include "scenario/cluster.hh"
#include "scenario/runner.hh"
#include "scenario/signature.hh"
#include "stats/percentile.hh"
#include "testbed/topology.hh"

namespace adrias::core
{
namespace
{

using fault::FaultKind;
using fault::FaultSchedule;
using scenario::ScenarioConfig;
using scenario::ScenarioResult;
using scenario::ScenarioRunner;
using testbed::kNumPerfEvents;

/**
 * Deterministic interference-aware stand-in for the trained stack:
 * predictions derive from the channel-latency event of the history
 * window, so placements react to congestion without any training.
 */
class StubPredictor : public models::PredictorBase
{
  public:
    ml::Matrix
    predictSystemState(const telemetry::Watcher &watcher) const override
    {
        const auto mean = watcher.meanOverTrailing(
            ScenarioRunner::kWindowSec);
        ml::Matrix forecast(1, kNumPerfEvents);
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            forecast.at(0, e) = mean[e];
        return forecast;
    }

    double
    predictPerformance(WorkloadClass cls,
                       const std::vector<ml::Matrix> &history,
                       const std::vector<ml::Matrix> &,
                       MemoryMode mode) const override
    {
        const double chan_lat = history.back().at(
            0, static_cast<std::size_t>(testbed::PerfEvent::ChannelLat));
        const double congestion = chan_lat / 350.0;
        if (cls == WorkloadClass::BestEffort)
            return mode == MemoryMode::Remote ? 120.0 * congestion
                                              : 95.0;
        return mode == MemoryMode::Remote ? 0.8 * congestion : 0.5;
    }

    bool trained() const override { return true; }
};

/** A stack that always throws, to drive the breaker directly. */
class CrashingPredictor : public StubPredictor
{
  public:
    double
    predictPerformance(WorkloadClass, const std::vector<ml::Matrix> &,
                       const std::vector<ml::Matrix> &,
                       MemoryMode) const override
    {
        throw std::runtime_error("inference backend down");
    }
};

/** Signatures are expensive to profile; share one registry. */
class ChaosTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        signatures = new scenario::SignatureStore;
        scenario::collectAllSignatures(*signatures);
    }

    static void
    TearDownTestSuite()
    {
        delete signatures;
        signatures = nullptr;
    }

    /** The ISSUE's acceptance scenario: link flap + counter dropout +
     *  predictor crash windows inside one 3600 s run. */
    static FaultSchedule
    chaosSchedule(std::uint64_t seed)
    {
        FaultSchedule schedule;
        schedule.seed = seed;
        schedule.add({FaultKind::CounterStale, 400, 500, 1.0, 0.5, ""});
        schedule.add({FaultKind::LinkFlap, 600, 900, 1.0, 0.5, ""});
        schedule.add({FaultKind::CounterDrop, 1000, 1300, 1.0, 0.5, ""});
        schedule.add({FaultKind::LinkDegrade, 1200, 1800, 0.3, 1.0, ""});
        schedule.add({FaultKind::CounterCorrupt, 1500, 1800, 1.0, 0.3, ""});
        schedule.add({FaultKind::PredictorCrash, 2000, 2300, 1.0, 1.0, ""});
        schedule.add(
            {FaultKind::PredictorLatency, 2400, 2500, 500.0, 1.0, ""});
        return schedule;
    }

    static ScenarioConfig
    chaosConfig(bool with_faults)
    {
        ScenarioConfig config;
        config.durationSec = 3600;
        config.spawnMinSec = 5;
        config.spawnMaxSec = 25;
        config.seed = 4242;
        if (with_faults)
            config.faults = chaosSchedule(1717);
        return config;
    }

    struct ChaosRun
    {
        ScenarioResult result;
        OrchestratorStats stats;
        fault::BreakerStats breaker;
        fault::BreakerState finalState;
    };

    static ChaosRun
    runChaos(const StubPredictor &stub, bool with_faults)
    {
        const ScenarioConfig config = chaosConfig(with_faults);
        fault::FaultInjector predictor_faults(config.faults);
        models::GuardedPredictor guard(stub, {}, &predictor_faults);
        AdriasOrchestrator orchestrator(guard, *signatures, {});
        ScenarioRunner runner(config);
        ChaosRun run{runner.run(orchestrator), orchestrator.stats(),
                     guard.breaker().stats(), guard.breaker().state()};
        return run;
    }

    static double
    medianBeTime(const ScenarioResult &result)
    {
        std::vector<double> times;
        for (const auto &record : result.records)
            if (record.cls == WorkloadClass::BestEffort)
                times.push_back(record.execTimeSec);
        return stats::quantile(times, 0.5);
    }

    static scenario::SignatureStore *signatures;
};

scenario::SignatureStore *ChaosTest::signatures = nullptr;

TEST_F(ChaosTest, GuardTripsOnCrashesAndRecovers)
{
    CrashingPredictor crashing;
    models::GuardedPredictor guard(crashing, {});
    AdriasOrchestrator orchestrator(guard, *signatures, {});

    telemetry::Watcher watcher(200);
    testbed::Testbed bed;
    bed.setNoise(0.0);
    for (int i = 0; i < 150; ++i)
        watcher.record(bed.tick({}).counters);

    const auto &spec = workloads::sparkBenchmark("sort");
    ASSERT_TRUE(signatures->has(spec.name));

    // Every decision falls back; after K failures the breaker is open
    // and the stub is no longer even called.
    for (SimTime t = 0; t < 6; ++t)
        EXPECT_NO_THROW(orchestrator.place(spec, watcher, t));
    EXPECT_EQ(guard.breaker().state(), fault::BreakerState::Open);
    EXPECT_GE(orchestrator.stats().breakerTrips, 1u);
    EXPECT_EQ(orchestrator.stats().fallbackPlacements, 6u);
    EXPECT_GT(guard.stats().rejectedByBreaker, 0u);
    EXPECT_TRUE(orchestrator.degraded());
}

TEST_F(ChaosTest, GuardEnforcesDeadline)
{
    StubPredictor stub;
    FaultSchedule schedule;
    schedule.add({FaultKind::PredictorLatency, 0, 10, 500.0, 1.0, ""});
    fault::FaultInjector injector(schedule);
    models::GuardedPredictor guard(stub, {}, &injector);

    guard.beginDecision(5);
    std::vector<ml::Matrix> sequence(
        ScenarioRunner::kWindowBins, ml::Matrix(1, kNumPerfEvents));
    for (auto &step : sequence)
        for (double &v : step.raw())
            v = 1.0;
    EXPECT_THROW(guard.predictPerformance(WorkloadClass::BestEffort,
                                          sequence, sequence,
                                          MemoryMode::Local),
                 models::PredictionUnavailable);
    EXPECT_EQ(guard.stats().deadlineExceeded, 1u);

    // Outside the spike window the same call succeeds.
    guard.beginDecision(50);
    EXPECT_NO_THROW(guard.predictPerformance(WorkloadClass::BestEffort,
                                             sequence, sequence,
                                             MemoryMode::Local));
}

TEST_F(ChaosTest, ExactlyOnBudgetLatencyIsADeadlineMiss)
{
    // Regression: the check used `>`, so a modelled latency exactly
    // equal to deadlineMs slipped through although the config
    // documents a hard budget.  The boundary is exclusive: equal
    // latency misses, and tallies/fail()/breaker all see the miss.
    StubPredictor stub;
    models::PredictorGuardConfig config;
    config.baseLatencyMs = 2.0;
    config.deadlineMs = 2.0; // no headroom at all
    models::GuardedPredictor guard(stub, config);
    guard.beginDecision(0);

    std::vector<ml::Matrix> sequence(
        ScenarioRunner::kWindowBins, ml::Matrix(1, kNumPerfEvents));
    for (auto &step : sequence)
        for (double &v : step.raw())
            v = 1.0;
    EXPECT_THROW(guard.predictPerformance(WorkloadClass::BestEffort,
                                          sequence, sequence,
                                          MemoryMode::Local),
                 models::PredictionUnavailable);
    EXPECT_EQ(guard.stats().deadlineExceeded, 1u);
    EXPECT_EQ(guard.stats().failures, 1u);
    EXPECT_EQ(guard.stats().served, 0u);

    // One representable unit of headroom is enough to pass.
    models::PredictorGuardConfig headroom = config;
    headroom.deadlineMs = std::nextafter(2.0, 3.0);
    models::GuardedPredictor relaxed(stub, headroom);
    relaxed.beginDecision(0);
    EXPECT_NO_THROW(relaxed.predictPerformance(WorkloadClass::BestEffort,
                                               sequence, sequence,
                                               MemoryMode::Local));
    EXPECT_EQ(relaxed.stats().deadlineExceeded, 0u);
}

TEST_F(ChaosTest, BatchGateFailsWholeBatchOnDeadline)
{
    // The batched entry point admits ONE gate for the whole batch:
    // a deadline miss costs one gate event but fails every row, and
    // calls advance by the batch width.
    StubPredictor stub;
    models::PredictorGuardConfig config;
    config.baseLatencyMs = 2.0;
    config.deadlineMs = 2.0;
    models::GuardedPredictor guard(stub, config);
    guard.beginDecision(0);

    std::vector<ml::Matrix> sequence(
        ScenarioRunner::kWindowBins, ml::Matrix(1, kNumPerfEvents));
    for (auto &step : sequence)
        for (double &v : step.raw())
            v = 1.0;
    std::vector<models::PredictorBase::PerfQuery> queries(
        4, {&sequence, &sequence, MemoryMode::Local});
    EXPECT_THROW(guard.predictPerformanceBatch(WorkloadClass::BestEffort,
                                               queries),
                 models::PredictionUnavailable);
    EXPECT_EQ(guard.stats().deadlineExceeded, 1u);
    EXPECT_EQ(guard.stats().calls, 4u);
    EXPECT_EQ(guard.stats().served, 0u);

    // Healthy guard: the same batch is served and tallied per row.
    models::GuardedPredictor healthy(stub, {});
    healthy.beginDecision(0);
    const std::vector<double> out =
        healthy.predictPerformanceBatch(WorkloadClass::BestEffort,
                                        queries);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(healthy.stats().calls, 4u);
    EXPECT_EQ(healthy.stats().served, 4u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_DOUBLE_EQ(
            out[i], stub.predictPerformance(WorkloadClass::BestEffort,
                                            sequence, sequence,
                                            MemoryMode::Local));
}

TEST_F(ChaosTest, GuardRejectsInvalidInputsWithoutChargingBreaker)
{
    StubPredictor stub;
    models::GuardedPredictor guard(stub, {});
    guard.beginDecision(0);

    std::vector<ml::Matrix> poisoned(
        ScenarioRunner::kWindowBins, ml::Matrix(1, kNumPerfEvents));
    poisoned[3].at(0, 2) = std::nan("");
    std::vector<ml::Matrix> clean(
        ScenarioRunner::kWindowBins, ml::Matrix(1, kNumPerfEvents));

    for (int i = 0; i < 10; ++i)
        EXPECT_THROW(guard.predictPerformance(
                         WorkloadClass::BestEffort, poisoned, clean,
                         MemoryMode::Local),
                     models::PredictionUnavailable);
    EXPECT_EQ(guard.stats().invalidInputs, 10u);
    EXPECT_EQ(guard.breaker().state(), fault::BreakerState::Closed);
}

TEST_F(ChaosTest, FullChaosScenarioSurvivesAndRecovers)
{
    StubPredictor stub;
    const ChaosRun chaos = runChaos(stub, true);

    // The scenario ran to completion and work kept finishing.
    EXPECT_EQ(chaos.result.trace.size(), 3600u);
    ASSERT_GT(chaos.result.records.size(), 50u);

    // Arrivals kept being placed straight through every fault window,
    // including the predictor-crash window [2000, 2300).
    bool placed_during_crash_window = false;
    bool placed_after_faults = false;
    for (const auto &record : chaos.result.records) {
        if (record.cls == WorkloadClass::Interference)
            continue;
        if (record.arrival >= 2000 && record.arrival < 2300)
            placed_during_crash_window = true;
        if (record.arrival >= 2500)
            placed_after_faults = true;
    }
    EXPECT_TRUE(placed_during_crash_window);
    EXPECT_TRUE(placed_after_faults);

    // Degraded-mode decisions actually happened...
    EXPECT_GT(chaos.stats.fallbackPlacements, 0u);
    EXPECT_GT(chaos.stats.predictionFailures, 0u);

    // ...the breaker tripped and then closed again once faults ended.
    EXPECT_GE(chaos.breaker.trips, 1u);
    EXPECT_GE(chaos.breaker.recoveries, 1u);
    EXPECT_EQ(chaos.finalState, fault::BreakerState::Closed);

    // The telemetry path saw and repaired real damage.
    EXPECT_GT(chaos.result.faultSummary.samplesDropped, 0u);
    EXPECT_GT(chaos.result.faultSummary.samplesCorrupted, 0u);
    EXPECT_GT(chaos.result.faultSummary.linkFaultTicks, 0u);
    EXPECT_GT(chaos.result.watcherHealth.samplesRepaired, 0u);
    EXPECT_EQ(chaos.result.watcherHealth.samplesDropped,
              chaos.result.faultSummary.samplesDropped);

    // Every sample the Watcher served downstream was finite.
    for (const auto &sample : chaos.result.trace)
        for (double v : sample)
            EXPECT_TRUE(std::isfinite(v) && v >= 0.0);
}

TEST_F(ChaosTest, DegradationIsBoundedVersusFaultFreeRun)
{
    StubPredictor stub;
    const ChaosRun clean = runChaos(stub, false);
    const ChaosRun chaos = runChaos(stub, true);

    EXPECT_EQ(clean.stats.fallbackPlacements, 0u);
    EXPECT_EQ(clean.breaker.trips, 0u);

    // Faults must hurt at most boundedly: the BE median may not
    // explode, and throughput (completions) must stay comparable.
    const double clean_median = medianBeTime(clean.result);
    const double chaos_median = medianBeTime(chaos.result);
    ASSERT_GT(clean_median, 0.0);
    EXPECT_LT(chaos_median, clean_median * 2.5);
    EXPECT_GT(static_cast<double>(chaos.result.records.size()),
              0.6 * static_cast<double>(clean.result.records.size()));
}

TEST_F(ChaosTest, SameSeedGivesIdenticalRunsAndStats)
{
    StubPredictor stub;
    const ChaosRun first = runChaos(stub, true);
    const ChaosRun second = runChaos(stub, true);

    EXPECT_EQ(first.stats.localPlacements, second.stats.localPlacements);
    EXPECT_EQ(first.stats.remotePlacements,
              second.stats.remotePlacements);
    EXPECT_EQ(first.stats.bootstrapPlacements,
              second.stats.bootstrapPlacements);
    EXPECT_EQ(first.stats.fallbackPlacements,
              second.stats.fallbackPlacements);
    EXPECT_EQ(first.stats.predictionFailures,
              second.stats.predictionFailures);
    EXPECT_EQ(first.stats.breakerTrips, second.stats.breakerTrips);
    EXPECT_EQ(first.stats.breakerRecoveries,
              second.stats.breakerRecoveries);
    EXPECT_EQ(first.stats.samplesRepaired,
              second.stats.samplesRepaired);
    EXPECT_EQ(first.stats.samplesDropped, second.stats.samplesDropped);

    EXPECT_EQ(first.result.records.size(),
              second.result.records.size());
    EXPECT_DOUBLE_EQ(first.result.totalRemoteTrafficGB,
                     second.result.totalRemoteTrafficGB);
    EXPECT_EQ(first.result.faultSummary.total(),
              second.result.faultSummary.total());
}

TEST_F(ChaosTest, DifferentFaultSeedChangesInjectionPattern)
{
    ScenarioConfig config = chaosConfig(true);
    config.faults.seed = 999;
    StubPredictor stub;
    fault::FaultInjector predictor_faults(config.faults);
    models::GuardedPredictor guard(stub, {}, &predictor_faults);
    AdriasOrchestrator orchestrator(guard, *signatures, {});
    ScenarioRunner runner(config);
    const auto reseeded = runner.run(orchestrator);

    const ChaosRun baseline = runChaos(stub, true);
    EXPECT_NE(reseeded.faultSummary.samplesDropped,
              baseline.result.faultSummary.samplesDropped);
}

// ---------------------------------------------------------------------
// Named-link chaos on rack topologies: a FaultWindow carrying a link
// name derates exactly that link of the shared rack, and placement
// degrades onto the surviving servers instead of stalling.
// ---------------------------------------------------------------------

TEST_F(ChaosTest, NamedWindowTargetsOnlyThatLink)
{
    FaultSchedule schedule;
    schedule.seed = 11;
    schedule.add({FaultKind::LinkDegrade, 0, 100, 0.3, 1.0, "n0-s0"});
    fault::FaultInjector injector(schedule);

    const fault::LinkState hit = injector.linkStateAt(50, "n0-s0");
    EXPECT_DOUBLE_EQ(hit.bwScale, 0.3);
    EXPECT_FALSE(injector.linkStateAt(50, "n0-s1").faulted());
    EXPECT_FALSE(injector.linkStateAt(200, "n0-s0").faulted());

    // The single-channel overload ignores names: the paper pair's one
    // channel stands in for every link (legacy behaviour).
    EXPECT_DOUBLE_EQ(injector.linkStateAt(50).bwScale, 0.3);

    // An untargeted window keeps applying to every link.
    schedule.add({FaultKind::LinkDegrade, 0, 100, 0.5, 1.0, ""});
    fault::FaultInjector broad(schedule);
    EXPECT_DOUBLE_EQ(broad.linkStateAt(50, "n0-s1").bwScale, 0.5);
    EXPECT_DOUBLE_EQ(broad.linkStateAt(50, "n0-s0").bwScale, 0.3);
}

/** Shared rack-chaos scaffolding: a 2×2 CXL rack under a remote-
 *  preferring baseline, with an optional named-link degrade window
 *  covering the whole run. */
scenario::ClusterResult
runRackChaos(const std::string &link, double magnitude)
{
    const testbed::Topology topo = testbed::topologyByName("rack-2x2-cxl");
    ScenarioConfig config;
    config.durationSec = 900;
    config.spawnMinSec = 4;
    config.spawnMaxSec = 12;
    config.seed = 616;
    if (!link.empty())
        config.faults.add(
            {FaultKind::LinkDegrade, 0, 900, magnitude, 1.0, link});
    scenario::ClusterScenarioRunner runner(topo, config);
    LeastLoadedRemotePolicy policy;
    return runner.run(policy);
}

TEST_F(ChaosTest, DeadNamedLinkShiftsTrafficToSurvivingServer)
{
    const testbed::Topology topo = testbed::topologyByName("rack-2x2-cxl");
    const auto l00 =
        static_cast<std::size_t>(topo.linkIndexByName("n0-s0"));
    const auto l01 =
        static_cast<std::size_t>(topo.linkIndexByName("n0-s1"));

    const scenario::ClusterResult clean = runRackChaos("", 1.0);
    // bwScale 0.02 is below LinkView::healthy(): the link is dead for
    // routing purposes from the first tick.
    const scenario::ClusterResult dead = runRackChaos("n0-s0", 0.02);

    // The healthy run used the link; the dead run never routed onto it.
    EXPECT_GT(clean.linkTotals[l00].offeredGb, 0.0);
    EXPECT_DOUBLE_EQ(dead.linkTotals[l00].offeredGb, 0.0);

    // n0's remote demand fell back to the surviving server: its other
    // link carries strictly more than in the healthy run, and node 0
    // still completed remote deployments.
    EXPECT_GT(dead.linkTotals[l01].offeredGb,
              clean.linkTotals[l01].offeredGb);
    std::size_t remote_on_n0 = 0;
    for (const auto &record : dead.nodes[0].records)
        remote_on_n0 += record.mode == MemoryMode::Remote;
    EXPECT_GT(remote_on_n0, 0u);

    // The injector saw the link fault; the run still finished whole.
    EXPECT_GT(dead.nodes[0].faultSummary.linkFaultTicks, 0u);
    for (const auto &node : dead.nodes)
        EXPECT_EQ(node.trace.size(), 900u);
}

TEST_F(ChaosTest, DegradedNamedLinkStillRoutesButQueues)
{
    const testbed::Topology topo = testbed::topologyByName("rack-2x2-cxl");
    const auto l00 =
        static_cast<std::size_t>(topo.linkIndexByName("n0-s0"));

    const scenario::ClusterResult clean = runRackChaos("", 1.0);
    // bwScale 0.1 stays above the routing health floor: the link keeps
    // carrying traffic but its 4 GB/s capacity shrinks to 0.4 GB/s.
    const scenario::ClusterResult slow = runRackChaos("n0-s0", 0.1);

    EXPECT_GT(slow.linkTotals[l00].offeredGb, 0.0);
    EXPECT_GT(slow.linkTotals[l00].queuedGb,
              clean.linkTotals[l00].queuedGb);
    EXPECT_GT(slow.linkTotals[l00].saturatedTicks,
              clean.linkTotals[l00].saturatedTicks);
}

TEST_F(ChaosTest, WindowNamingUnknownLinkIsInert)
{
    const scenario::ClusterResult clean = runRackChaos("", 1.0);
    const scenario::ClusterResult miss =
        runRackChaos("no-such-link", 0.02);

    ASSERT_EQ(miss.linkTotals.size(), clean.linkTotals.size());
    for (std::size_t l = 0; l < clean.linkTotals.size(); ++l) {
        EXPECT_EQ(miss.linkTotals[l].offeredGb,
                  clean.linkTotals[l].offeredGb);
        EXPECT_EQ(miss.linkTotals[l].deliveredGb,
                  clean.linkTotals[l].deliveredGb);
    }
    EXPECT_EQ(miss.nodes[0].faultSummary.linkFaultTicks, 0u);
}

} // namespace
} // namespace adrias::core
