#include "obs/obs.hh"

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <vector>

#include "common/io/durable_file.hh"
#include "common/logging.hh"
#include "common/threadpool.hh"

namespace adrias::obs
{

#if ADRIAS_OBS_ENABLED
namespace detail
{
std::atomic<bool> g_metricsEnabled{false};
} // namespace detail
#endif

namespace
{

/** Artifact directory for finishRun (empty: no files written). */
Mutex g_mu;
std::string g_outDir ADRIAS_GUARDED_BY(g_mu);

#if ADRIAS_OBS_ENABLED

/**
 * ThreadPool → obs bridge: queue depth as a gauge, per-chunk kernel
 * timing as a histogram plus wall-clock trace spans.  Installed once
 * on the first startRun/setEnabled(true); every callback re-checks
 * enabled() so a disarmed process pays one relaxed load.
 */
class PoolBridge final : public ThreadPool::Observer
{
  public:
    void
    onEnqueue(std::size_t queue_depth) override
    {
        if (!enabled())
            return;
        static Counter &enqueues =
            MetricsRegistry::global().counter("threadpool.enqueues");
        static Gauge &depth =
            MetricsRegistry::global().gauge("threadpool.queue_depth");
        enqueues.add();
        depth.set(static_cast<double>(queue_depth));
    }

    void
    onChunkStart(std::size_t c, std::size_t begin,
                 std::size_t end) override
    {
        (void)c;
        (void)begin;
        (void)end;
        if (!enabled())
            return;
        starts().push_back(Tracer::global().wallNow());
    }

    void
    onChunkEnd(std::size_t c, std::size_t begin, std::size_t end) override
    {
        if (!enabled())
            return;
        std::vector<double> &stack = starts();
        if (stack.empty())
            return; // armed mid-chunk: no matching start
        const double t0 = stack.back();
        stack.pop_back();
        const double t1 = Tracer::global().wallNow();

        static Counter &chunks =
            MetricsRegistry::global().counter("threadpool.chunks");
        static Histogram &seconds = MetricsRegistry::global().histogram(
            "threadpool.chunk_seconds");
        chunks.add();
        seconds.observe(t1 - t0);

        if (Tracer::global().enabled())
            Tracer::global().wallSpan(
                "chunk", "threadpool", t0, t1,
                {arg("chunk", static_cast<std::int64_t>(c)),
                 arg("begin", static_cast<std::int64_t>(begin)),
                 arg("end", static_cast<std::int64_t>(end))});
    }

  private:
    /**
     * Per-thread stack of open chunk start times: nested parallelFor
     * calls run chunks inline on a worker, so starts can nest.
     */
    static std::vector<double> &
    starts()
    {
        static thread_local std::vector<double> stack;
        return stack;
    }
};

/** Install the pool bridge exactly once per process. */
void
installPoolBridge()
{
    static PoolBridge bridge;
    ThreadPool::setObserver(&bridge);
}

#endif // ADRIAS_OBS_ENABLED

} // namespace

void
setEnabled(bool on)
{
#if ADRIAS_OBS_ENABLED
    if (on)
        installPoolBridge();
    detail::g_metricsEnabled.store(on, std::memory_order_relaxed);
#else
    (void)on;
#endif
}

void
startRun(const std::string &out_dir)
{
#if ADRIAS_OBS_ENABLED
    {
        MutexLock lock(g_mu);
        g_outDir = out_dir;
    }
    setEnabled(true);
    Tracer::global().setEnabled(true);
#else
    (void)out_dir;
#endif
}

std::string
finishRun()
{
#if ADRIAS_OBS_ENABLED
    if (!enabled() && !Tracer::global().enabled())
        return "";

    std::string dir;
    {
        MutexLock lock(g_mu);
        dir = g_outDir;
    }

    std::ostringstream report;
    report << MetricsRegistry::global().summaryTable();
    report << "trace events: " << Tracer::global().eventCount();
    if (Tracer::global().droppedEvents() > 0)
        report << " (+" << Tracer::global().droppedEvents()
               << " dropped past cap)";
    report << "\n";

    if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        if (ec) {
            logWarn("obs::finishRun: cannot create " + dir + ": " +
                    ec.message());
        } else {
            const auto path = [&dir](const char *name) {
                return (std::filesystem::path(dir) / name).string();
            };
            // Atomic publication: a run killed mid-export never
            // leaves a truncated trace for tooling to choke on.
            const auto publish = [&path](const char *name,
                                         const std::string &content) {
                if (Result<void> written =
                        io::atomicWriteFile(path(name), content);
                    !written.ok())
                    logWarn("obs::finishRun: " +
                            written.error().toString());
            };
            {
                std::ostringstream out;
                Tracer::global().writeChromeTrace(out);
                publish("trace.json", out.str());
            }
            {
                std::ostringstream out;
                Tracer::global().writeJsonl(out);
                publish("events.jsonl", out.str());
            }
            {
                std::ostringstream out;
                MetricsRegistry::global().writeJsonl(out);
                publish("metrics.jsonl", out.str());
            }
            report << "artifacts: " << path("trace.json") << " (load in "
                   << "chrome://tracing), " << path("events.jsonl")
                   << ", " << path("metrics.jsonl") << "\n";
        }
    }
    return report.str();
#else
    return "";
#endif
}

bool
initFromArgs(int argc, char **argv)
{
#if ADRIAS_OBS_ENABLED
    std::string dir;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--obs-out" && i + 1 < argc) {
            dir = argv[i + 1];
            break;
        }
        const std::string prefix = "--obs-out=";
        if (flag.rfind(prefix, 0) == 0) {
            dir = flag.substr(prefix.size());
            break;
        }
    }
    if (dir.empty()) {
        const char *env = std::getenv("ADRIAS_OBS_OUT");
        if (env != nullptr && *env != '\0')
            dir = env;
    }
    if (dir.empty())
        return false;
    startRun(dir);
    return true;
#else
    (void)argc;
    (void)argv;
    return false;
#endif
}

void
resetAll()
{
    MetricsRegistry::global().reset();
    Tracer::global().clear();
}

} // namespace adrias::obs
