#include "stats/online_stats.hh"

#include <algorithm>
#include <cmath>

namespace adrias::stats
{

void
OnlineStats::add(double value)
{
    ++n;
    const double delta = value - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (value - mu);
    minValue = std::min(minValue, value);
    maxValue = std::max(maxValue, value);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(n + other.n);
    const double delta = other.mu - mu;
    m2 += other.m2 +
          delta * delta * static_cast<double>(n) *
              static_cast<double>(other.n) / total;
    mu += delta * static_cast<double>(other.n) / total;
    n += other.n;
    minValue = std::min(minValue, other.minValue);
    maxValue = std::max(maxValue, other.maxValue);
}

void
OnlineStats::reset()
{
    n = 0;
    mu = 0.0;
    m2 = 0.0;
    minValue = std::numeric_limits<double>::infinity();
    maxValue = -std::numeric_limits<double>::infinity();
}

double
OnlineStats::variance() const
{
    return n < 2 ? 0.0 : m2 / static_cast<double>(n);
}

double
OnlineStats::sampleVariance() const
{
    return n < 2 ? 0.0 : m2 / static_cast<double>(n - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace adrias::stats
