#include "workloads/spec.hh"

#include "common/logging.hh"

namespace adrias::workloads
{

std::string
toString(IBenchKind kind)
{
    switch (kind) {
      case IBenchKind::Cpu:
        return "cpu";
      case IBenchKind::L2:
        return "l2";
      case IBenchKind::L3:
        return "l3";
      case IBenchKind::MemBw:
        return "memBw";
    }
    panic("unknown IBenchKind");
}

namespace
{

/** Shorthand builder for a Spark (best-effort) benchmark. */
WorkloadSpec
spark(const std::string &name, double mu, double demand, double lat_frac,
      double llc_access, double hit, double footprint, double duration)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.cls = WorkloadClass::BestEffort;
    spec.cpuCores = 8.0; // 2 executors x 4 threads (paper footnote 3)
    spec.cpuFraction = mu;
    spec.memDemandGBps = demand;
    spec.latencyBoundFraction = lat_frac;
    spec.llcAccessGBps = llc_access;
    spec.baseHitRate = hit;
    spec.cacheFootprintMb = footprint;
    spec.baseDurationSec = duration;
    return spec;
}

} // namespace

const std::vector<WorkloadSpec> &
sparkBenchmarks()
{
    // Calibration targets (remote-vs-local slowdown in isolation):
    // nweight/lr ~2x; linear/sort/terasort 1.4-1.8; pagerank/kmeans/lda
    // 1.1-1.3; gmm/pca/wordcount/svm/rf/gbt/bayes/als/svd <1.1.
    // The mean lands near the paper's ~20% (Fig. 4).
    static const std::vector<WorkloadSpec> benchmarks{
        //    name        mu    D     lat   llc   hit   fp    dur
        spark("wordcount", 0.70, 0.25, 0.10, 3.0, 0.88, 2.0, 45.0),
        spark("sort",      0.55, 0.55, 0.15, 5.0, 0.82, 4.0, 60.0),
        spark("terasort",  0.52, 0.60, 0.12, 5.5, 0.80, 4.5, 90.0),
        spark("kmeans",    0.60, 0.42, 0.20, 6.0, 0.85, 5.0, 75.0),
        spark("bayes",     0.65, 0.30, 0.15, 3.5, 0.86, 2.5, 55.0),
        spark("gbt",       0.72, 0.20, 0.18, 3.0, 0.90, 2.0, 80.0),
        spark("lr",        0.50, 0.75, 0.05, 4.5, 0.84, 3.0, 65.0),
        spark("linear",    0.50, 0.60, 0.06, 4.0, 0.83, 3.0, 60.0),
        spark("als",       0.62, 0.35, 0.12, 4.0, 0.87, 3.0, 70.0),
        spark("pca",       0.75, 0.15, 0.10, 2.5, 0.91, 1.5, 50.0),
        spark("gmm",       0.78, 0.12, 0.08, 2.0, 0.92, 1.5, 55.0),
        spark("svm",       0.68, 0.28, 0.10, 3.0, 0.88, 2.0, 60.0),
        spark("svd",       0.66, 0.32, 0.12, 3.5, 0.87, 2.5, 65.0),
        spark("nweight",   0.45, 0.80, 0.12, 7.0, 0.78, 6.0, 100.0),
        spark("pagerank",  0.55, 0.50, 0.25, 6.0, 0.81, 5.0, 85.0),
        spark("rf",        0.70, 0.22, 0.15, 3.0, 0.89, 2.0, 70.0),
        spark("lda",       0.60, 0.38, 0.20, 4.5, 0.85, 3.5, 75.0),
    };
    return benchmarks;
}

const WorkloadSpec &
sparkBenchmark(const std::string &name)
{
    for (const WorkloadSpec &spec : sparkBenchmarks())
        if (spec.name == name)
            return spec;
    fatal("unknown Spark benchmark: '" + name + "'");
}

const WorkloadSpec &
redisSpec()
{
    static const WorkloadSpec spec = [] {
        WorkloadSpec s;
        s.name = "redis";
        s.cls = WorkloadClass::LatencyCritical;
        s.cpuCores = 4.0;
        s.cpuFraction = 0.94; // request handling is network/CPU bound
        s.memDemandGBps = 0.06;
        s.latencyBoundFraction = 0.70; // pointer chasing (R6)
        s.llcAccessGBps = 1.2;
        s.baseHitRate = 0.60; // poor on-chip locality
        s.cacheFootprintMb = 1.5;
        // memtier: 4 threads x 200 clients, SET:GET 1:10, ~30k ops/s.
        s.serviceRatePerSec = 30000.0;
        // 10k requests per client x 800 clients -> ~267 s at 30k ops/s.
        s.totalRequests = 10000.0 * 800.0;
        s.baseLatencyMs = 0.45;
        s.latencySigma = 0.25;
        return s;
    }();
    return spec;
}

const WorkloadSpec &
memcachedSpec()
{
    static const WorkloadSpec spec = [] {
        WorkloadSpec s;
        s.name = "memcached";
        s.cls = WorkloadClass::LatencyCritical;
        s.cpuCores = 4.0;
        s.cpuFraction = 0.94;
        s.memDemandGBps = 0.08;
        s.latencyBoundFraction = 0.70;
        s.llcAccessGBps = 1.5;
        s.baseHitRate = 0.55;
        s.cacheFootprintMb = 1.0;
        // memtier: ~100k ops/s (paper §IV-A).
        s.serviceRatePerSec = 100000.0;
        // 40k requests per client x 800 clients -> ~320 s at 100k ops/s.
        s.totalRequests = 40000.0 * 800.0;
        s.baseLatencyMs = 0.20;
        s.latencySigma = 0.25;
        return s;
    }();
    return spec;
}

const WorkloadSpec &
ibenchSpec(IBenchKind kind)
{
    static const WorkloadSpec cpu = [] {
        WorkloadSpec s;
        s.name = "ibench-cpu";
        s.cls = WorkloadClass::Interference;
        s.cpuCores = 4.0;
        s.cpuFraction = 1.0;
        s.memDemandGBps = 0.0;
        s.latencyBoundFraction = 0.0;
        s.llcAccessGBps = 0.1;
        s.baseHitRate = 0.99;
        s.cacheFootprintMb = 0.05;
        s.baseDurationSec = 120.0;
        return s;
    }();
    static const WorkloadSpec l2 = [] {
        WorkloadSpec s;
        s.name = "ibench-l2";
        s.cls = WorkloadClass::Interference;
        s.cpuCores = 2.0;
        s.cpuFraction = 0.80;
        s.memDemandGBps = 0.05;
        s.latencyBoundFraction = 0.30;
        s.llcAccessGBps = 1.5;
        s.baseHitRate = 0.95;
        s.cacheFootprintMb = 0.25;
        s.baseDurationSec = 120.0;
        return s;
    }();
    static const WorkloadSpec l3 = [] {
        WorkloadSpec s;
        s.name = "ibench-l3";
        s.cls = WorkloadClass::Interference;
        s.cpuCores = 1.0;
        s.cpuFraction = 0.30;
        s.memDemandGBps = 0.30;
        s.latencyBoundFraction = 1.0; // pointer-chasing cache trasher
        s.llcAccessGBps = 6.0;
        s.baseHitRate = 0.50;
        s.cacheFootprintMb = 2.0;
        s.baseDurationSec = 120.0;
        return s;
    }();
    static const WorkloadSpec membw = [] {
        WorkloadSpec s;
        s.name = "ibench-memBw";
        s.cls = WorkloadClass::Interference;
        s.cpuCores = 1.0;
        s.cpuFraction = 0.10;
        s.memDemandGBps = 1.20;
        s.latencyBoundFraction = 1.0; // no prefetch across the channel
        s.llcAccessGBps = 2.0;
        s.baseHitRate = 0.05;
        s.cacheFootprintMb = 0.5;
        s.baseDurationSec = 120.0;
        return s;
    }();
    switch (kind) {
      case IBenchKind::Cpu:
        return cpu;
      case IBenchKind::L2:
        return l2;
      case IBenchKind::L3:
        return l3;
      case IBenchKind::MemBw:
        return membw;
    }
    panic("unknown IBenchKind");
}

const std::vector<WorkloadSpec> &
latencyCriticalBenchmarks()
{
    static const std::vector<WorkloadSpec> specs{redisSpec(),
                                                 memcachedSpec()};
    return specs;
}

const WorkloadSpec *
findSpec(const std::string &name)
{
    for (const WorkloadSpec &spec : sparkBenchmarks())
        if (spec.name == name)
            return &spec;
    for (const WorkloadSpec &spec : latencyCriticalBenchmarks())
        if (spec.name == name)
            return &spec;
    for (IBenchKind kind :
         {IBenchKind::Cpu, IBenchKind::L2, IBenchKind::L3,
          IBenchKind::MemBw}) {
        const WorkloadSpec &spec = ibenchSpec(kind);
        if (spec.name == name)
            return &spec;
    }
    return nullptr;
}

} // namespace adrias::workloads
