#include "scenario/cluster.hh"

#include "common/logging.hh"
#include "telemetry/watcher.hh"

namespace adrias::scenario
{

using workloads::IBenchKind;
using workloads::WorkloadInstance;
using workloads::WorkloadSpec;

std::vector<ClusterResult::NodeRecord>
ClusterResult::allRecords() const
{
    std::vector<NodeRecord> all;
    for (std::size_t n = 0; n < nodes.size(); ++n)
        for (const DeploymentRecord &record : nodes[n].records)
            all.push_back({n, &record});
    return all;
}

ClusterScenarioRunner::ClusterScenarioRunner(std::size_t nodes,
                                             ScenarioConfig config_,
                                             testbed::TestbedParams params)
    : nodeCount(nodes), config(config_), testbedParams(params)
{
    if (nodes == 0)
        fatal("ClusterScenarioRunner: need at least one node");
    if (config.durationSec <= 0)
        fatal("ClusterScenarioRunner: duration must be positive");
    if (config.spawnMinSec <= 0 ||
        config.spawnMaxSec < config.spawnMinSec)
        fatal("ClusterScenarioRunner: invalid spawn interval");
}

ClusterResult
ClusterScenarioRunner::run(ClusterPolicy &policy)
{
    Rng rng(config.seed);

    struct Node
    {
        std::unique_ptr<testbed::Testbed> bed;
        std::unique_ptr<telemetry::Watcher> watcher;
        std::vector<std::unique_ptr<WorkloadInstance>> running;
    };
    std::vector<Node> nodes(nodeCount);
    ClusterResult result;
    result.nodes.resize(nodeCount);
    for (auto &node : nodes) {
        node.bed = std::make_unique<testbed::Testbed>(testbedParams,
                                                      rng.nextU64());
        node.bed->setNoise(config.counterNoise);
        node.watcher = std::make_unique<telemetry::Watcher>(
            ScenarioRunner::kWindowSec * 4);
    }

    DeploymentId next_id = 1;
    SimTime next_arrival =
        rng.uniformInt(config.spawnMinSec, config.spawnMaxSec);

    const auto &sparks = workloads::sparkBenchmarks();
    const auto &lcs = workloads::latencyCriticalBenchmarks();
    const IBenchKind ibench_kinds[] = {IBenchKind::Cpu, IBenchKind::L2,
                                       IBenchKind::L3, IBenchKind::MemBw};

    for (SimTime now = 0; now < config.durationSec; ++now) {
        // --- arrivals ----------------------------------------------------
        while (now >= next_arrival) {
            next_arrival +=
                rng.uniformInt(config.spawnMinSec, config.spawnMaxSec);

            const double draw = rng.uniform();
            const WorkloadSpec *spec = nullptr;
            bool is_ibench = false;
            if (draw < config.ibenchFraction) {
                spec = &workloads::ibenchSpec(
                    ibench_kinds[rng.uniformInt(0, 3)]);
                is_ibench = true;
            } else if (draw <
                       config.ibenchFraction + config.lcFraction) {
                spec = &lcs[static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(lcs.size()) - 1))];
            } else {
                spec = &sparks[static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(sparks.size()) - 1))];
            }

            ClusterPlacement placement;
            if (is_ibench) {
                // Background interference lands anywhere, either mode.
                placement.node = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(nodeCount) - 1));
                placement.mode = rng.bernoulli(0.5) ? MemoryMode::Remote
                                                    : MemoryMode::Local;
            } else {
                std::vector<NodeView> views(nodeCount);
                for (std::size_t n = 0; n < nodeCount; ++n) {
                    views[n].watcher = nodes[n].watcher.get();
                    views[n].running = nodes[n].running.size();
                }
                placement = policy.place(*spec, views, now);
                if (placement.node >= nodeCount)
                    panic("ClusterPolicy returned an invalid node");
            }

            Node &target = nodes[placement.node];
            if (target.running.size() >= config.maxConcurrent)
                continue; // node full: drop
            target.running.push_back(std::make_unique<WorkloadInstance>(
                next_id++, *spec, placement.mode, now, rng.nextU64()));
        }

        // --- one second everywhere ----------------------------------------
        for (std::size_t n = 0; n < nodeCount; ++n) {
            Node &node = nodes[n];
            ScenarioResult &node_result = result.nodes[n];

            std::vector<testbed::LoadDescriptor> loads;
            loads.reserve(node.running.size());
            for (const auto &instance : node.running)
                loads.push_back(instance->load());
            const testbed::TickResult tick = node.bed->tick(loads);

            node.watcher->record(tick.counters, now);
            node_result.trace.push_back(tick.counters);
            node_result.concurrency.push_back(
                static_cast<int>(node.running.size()));
            node_result.totalRemoteTrafficGB += tick.remoteTrafficGBps;
            result.totalRemoteTrafficGB += tick.remoteTrafficGBps;

            for (std::size_t i = 0; i < node.running.size(); ++i)
                node.running[i]->advance(tick.outcomes[i], now + 1);

            for (std::size_t i = node.running.size(); i-- > 0;) {
                if (!node.running[i]->finished())
                    continue;
                const WorkloadInstance &done = *node.running[i];
                DeploymentRecord record;
                record.id = done.id();
                record.name = done.spec().name;
                record.cls = done.spec().cls;
                record.mode = done.mode();
                record.arrival = done.arrivalTime();
                record.completion = now + 1;
                record.execTimeSec = done.executionTimeSec();
                if (record.cls == WorkloadClass::LatencyCritical) {
                    record.p99Ms = done.tailLatencyMs(0.99);
                    record.p999Ms = done.tailLatencyMs(0.999);
                    record.meanLatencyMs = done.meanLatencyMs();
                }
                record.meanSlowdown = done.meanSlowdown();
                record.remoteTrafficGB = done.remoteTrafficGB();
                record.migrations = done.migrationCount();
                record.historyWindow =
                    historyWindowAt(node_result.trace, record.arrival);
                record.executionWindow = telemetry::binSpan(
                    node_result.trace,
                    static_cast<std::size_t>(record.arrival),
                    node_result.trace.size(),
                    ScenarioRunner::kWindowBins);
                policy.onCompletion(n, record);
                node_result.records.push_back(std::move(record));
                node.running.erase(node.running.begin() +
                                   static_cast<std::ptrdiff_t>(i));
            }
        }
    }
    return result;
}

} // namespace adrias::scenario
