#include "testbed/topology.hh"

#include <cmath>
#include <set>
#include <utility>

#include "common/logging.hh"

namespace adrias::testbed
{

Topology::Topology(std::string name) : topologyName(std::move(name)) {}

Topology &
Topology::addNode(ComputeNodeDesc node)
{
    validated = false;
    nodes.push_back(std::move(node));
    return *this;
}

Topology &
Topology::addServer(MemoryServerDesc server)
{
    validated = false;
    if (server.range.sizeGb == 0) {
        server.range.baseGb = nextRangeBaseGb;
        server.range.sizeGb =
            static_cast<std::uint64_t>(std::ceil(server.capacityGb));
    }
    if (server.range.endGb() > nextRangeBaseGb)
        nextRangeBaseGb = server.range.endGb();
    servers.push_back(std::move(server));
    return *this;
}

Topology &
Topology::addLink(std::size_t node, std::size_t server,
                  const LinkProfile &profile, std::string name)
{
    validated = false;
    LinkDesc link;
    link.node = node;
    link.server = server;
    link.profile = profile;
    if (name.empty()) {
        const std::string nodeName =
            node < nodes.size() ? nodes[node].name : std::to_string(node);
        const std::string serverName = server < servers.size()
                                           ? servers[server].name
                                           : std::to_string(server);
        name = nodeName + "-" + serverName;
    }
    link.name = std::move(name);
    links.push_back(std::move(link));
    return *this;
}

Topology &
Topology::validate()
{
    if (nodes.empty())
        fatal("Topology '" + topologyName + "': no compute nodes");

    std::set<std::string> names;
    for (const ComputeNodeDesc &node : nodes)
        if (!names.insert("n:" + node.name).second)
            fatal("Topology '" + topologyName + "': duplicate node name '" +
                  node.name + "'");
    for (const MemoryServerDesc &server : servers) {
        if (!names.insert("s:" + server.name).second)
            fatal("Topology '" + topologyName +
                  "': duplicate server name '" + server.name + "'");
        if (server.capacityGb < 0.0)
            fatal("Topology '" + topologyName + "': server '" + server.name +
                  "' has negative capacity");
        if (server.bandwidthGBps <= 0.0)
            fatal("Topology '" + topologyName + "': server '" + server.name +
                  "' has non-positive bandwidth");
    }
    for (std::size_t i = 0; i < servers.size(); ++i)
        for (std::size_t j = i + 1; j < servers.size(); ++j)
            if (servers[i].range.sizeGb > 0 && servers[j].range.sizeGb > 0 &&
                servers[i].range.overlaps(servers[j].range))
                fatal("Topology '" + topologyName +
                      "': overlapping address ranges between '" +
                      servers[i].name + "' and '" + servers[j].name + "'");

    std::set<std::pair<std::size_t, std::size_t>> endpoints;
    for (const LinkDesc &link : links) {
        if (!names.insert("l:" + link.name).second)
            fatal("Topology '" + topologyName + "': duplicate link name '" +
                  link.name + "'");
        if (link.node >= nodes.size())
            fatal("Topology '" + topologyName + "': link '" + link.name +
                  "' references unknown node index");
        if (link.server >= servers.size())
            fatal("Topology '" + topologyName + "': link '" + link.name +
                  "' references unknown server index");
        if (!endpoints.insert({link.node, link.server}).second)
            fatal("Topology '" + topologyName + "': duplicate link between '" +
                  nodes[link.node].name + "' and '" +
                  servers[link.server].name + "'");
    }

    nodeLinks.assign(nodes.size(), {});
    serverLinks.assign(servers.size(), {});
    for (std::size_t i = 0; i < links.size(); ++i) {
        nodeLinks[links[i].node].push_back(i);
        serverLinks[links[i].server].push_back(i);
    }

    validated = true;
    return *this;
}

void
Topology::requireValidated(const char *what) const
{
    if (!validated)
        fatal(std::string("Topology '") + topologyName + "': " + what +
              " called before validate()");
}

const ComputeNodeDesc &
Topology::node(std::size_t i) const
{
    if (i >= nodes.size())
        fatal("Topology '" + topologyName + "': node index out of range");
    return nodes[i];
}

const MemoryServerDesc &
Topology::server(std::size_t i) const
{
    if (i >= servers.size())
        fatal("Topology '" + topologyName + "': server index out of range");
    return servers[i];
}

const LinkDesc &
Topology::link(std::size_t i) const
{
    if (i >= links.size())
        fatal("Topology '" + topologyName + "': link index out of range");
    return links[i];
}

const std::vector<std::size_t> &
Topology::linksFrom(std::size_t node) const
{
    requireValidated("linksFrom");
    if (node >= nodeLinks.size())
        fatal("Topology '" + topologyName + "': linksFrom out of range");
    return nodeLinks[node];
}

const std::vector<std::size_t> &
Topology::linksInto(std::size_t server) const
{
    requireValidated("linksInto");
    if (server >= serverLinks.size())
        fatal("Topology '" + topologyName + "': linksInto out of range");
    return serverLinks[server];
}

std::int64_t
Topology::linkBetween(std::size_t node, std::size_t server) const
{
    for (std::size_t i = 0; i < links.size(); ++i)
        if (links[i].node == node && links[i].server == server)
            return static_cast<std::int64_t>(i);
    return -1;
}

std::int64_t
Topology::linkIndexByName(const std::string &name) const
{
    for (std::size_t i = 0; i < links.size(); ++i)
        if (links[i].name == name)
            return static_cast<std::int64_t>(i);
    return -1;
}

std::int64_t
Topology::serverOwning(std::uint64_t addressGb) const
{
    for (std::size_t i = 0; i < servers.size(); ++i)
        if (servers[i].range.contains(addressGb))
            return static_cast<std::int64_t>(i);
    return -1;
}

double
Topology::totalCapacityGb() const
{
    double total = 0.0;
    for (const MemoryServerDesc &server : servers)
        total += server.capacityGb;
    return total;
}

bool
Topology::isPaperPair() const
{
    return nodes.size() == 1 && servers.size() == 1 && links.size() == 1 &&
           std::string(links[0].profile.name) == kThymesisFlowProfile.name;
}

Topology
Topology::paperPair(TestbedParams params)
{
    Topology topo("paper-pair");
    topo.addNode({"n0", params});
    topo.addServer({"s0", 256.0, params.localBwGBps, {}});
    topo.addLink(0, 0, kThymesisFlowProfile);
    return topo.validate();
}

Topology
Topology::symmetric(std::size_t nodeCount, std::size_t serverCount,
                    const LinkProfile &profile, double server_capacity_gb,
                    TestbedParams node_params)
{
    Topology topo("rack-" + std::to_string(nodeCount) + "x" +
                  std::to_string(serverCount) + "-" + profile.name);
    for (std::size_t n = 0; n < nodeCount; ++n)
        topo.addNode({"n" + std::to_string(n), node_params});
    for (std::size_t s = 0; s < serverCount; ++s)
        topo.addServer({"s" + std::to_string(s), server_capacity_gb,
                        node_params.localBwGBps, {}});
    for (std::size_t n = 0; n < nodeCount; ++n)
        for (std::size_t s = 0; s < serverCount; ++s)
            topo.addLink(n, s, profile);
    return topo.validate();
}

Topology
Topology::independentPairs(std::size_t pairs, TestbedParams params)
{
    Topology topo("pairs-" + std::to_string(pairs));
    for (std::size_t i = 0; i < pairs; ++i) {
        topo.addNode({"n" + std::to_string(i), params});
        topo.addServer(
            {"s" + std::to_string(i), 256.0, params.localBwGBps, {}});
        topo.addLink(i, i, kThymesisFlowProfile);
    }
    return topo.validate();
}

Topology
Topology::asymmetric4x4()
{
    Topology topo("rack-4x4-mixed");
    TestbedParams params;
    for (std::size_t n = 0; n < 4; ++n)
        topo.addNode({"n" + std::to_string(n), params});
    topo.addServer({"s0", 512.0, 18.0, {}});
    topo.addServer({"s1", 256.0, 15.0, {}});
    topo.addServer({"s2", 64.0, 12.0, {}});
    topo.addServer({"s3", 0.0, 10.0, {}}); // drained server, kept reachable
    // n0 reaches every server over mixed tiers; n1/n2 see two servers
    // each; n3 has a single RDMA path.
    topo.addLink(0, 0, kCxlProfile);
    topo.addLink(0, 1, kThymesisFlowProfile);
    topo.addLink(0, 2, kRdmaProfile);
    topo.addLink(0, 3, kRdmaProfile);
    topo.addLink(1, 0, kThymesisFlowProfile);
    topo.addLink(1, 1, kCxlProfile);
    topo.addLink(2, 1, kRdmaProfile);
    topo.addLink(2, 2, kCxlProfile);
    topo.addLink(3, 2, kRdmaProfile);
    return topo.validate();
}

Topology
topologyByName(const std::string &name)
{
    if (name == "paper-pair")
        return Topology::paperPair();
    if (name == "rack-2x2-cxl")
        return Topology::symmetric(2, 2, kCxlProfile);
    if (name == "rack-4x4-mixed")
        return Topology::asymmetric4x4();
    const std::string pairsPrefix = "pairs-";
    if (name.rfind(pairsPrefix, 0) == 0) {
        const std::string count = name.substr(pairsPrefix.size());
        if (!count.empty() &&
            count.find_first_not_of("0123456789") == std::string::npos) {
            const std::size_t pairs = std::stoul(count);
            if (pairs > 0)
                return Topology::independentPairs(pairs);
        }
    }
    fatal("topologyByName: unknown topology '" + name + "'");
}

std::vector<std::string>
knownTopologyNames()
{
    return {"paper-pair", "rack-2x2-cxl", "rack-4x4-mixed"};
}

} // namespace adrias::testbed
