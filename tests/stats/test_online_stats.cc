/** @file Unit tests for stats/online_stats. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "stats/online_stats.hh"

namespace adrias::stats
{
namespace
{

TEST(OnlineStats, EmptyDefaults)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_TRUE(std::isinf(s.min()));
    EXPECT_TRUE(std::isinf(s.max()));
}

TEST(OnlineStats, SingleValue)
{
    OnlineStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownSample)
{
    OnlineStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_NEAR(s.sampleVariance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeEqualsSequential)
{
    Rng rng(99);
    OnlineStats whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.gaussian(3.0, 1.5);
        whole.add(v);
        (i % 2 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity)
{
    OnlineStats a, b;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    EXPECT_EQ(a.count(), 2u);

    b.merge(a);
    EXPECT_DOUBLE_EQ(b.mean(), mean);
    EXPECT_EQ(b.count(), 2u);
}

TEST(OnlineStats, ResetClearsEverything)
{
    OnlineStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.mean(), 7.0);
}

TEST(OnlineStats, StableUnderLargeOffset)
{
    // Welford must keep precision where naive sum-of-squares would not.
    OnlineStats s;
    const double offset = 1e9;
    for (double v : {offset + 1.0, offset + 2.0, offset + 3.0})
        s.add(v);
    EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-6);
}

} // namespace
} // namespace adrias::stats
