/**
 * @file
 * Baseline scheduling policies the paper compares Adrias against
 * (§VI-B): Random, Round-Robin and All-Local (plus All-Remote as a
 * stress baseline).
 */

#ifndef ADRIAS_CORE_SCHEDULERS_HH
#define ADRIAS_CORE_SCHEDULERS_HH

#include "common/rng.hh"
#include "scenario/cluster.hh"
#include "scenario/placement.hh"

namespace adrias::core
{

/** Alternates local/remote placements deterministically. */
class RoundRobinScheduler : public scenario::PlacementPolicy
{
  public:
    std::string name() const override { return "round-robin"; }

    MemoryMode
    place(const workloads::WorkloadSpec &, const telemetry::Watcher &,
          SimTime) override
    {
        nextRemote = !nextRemote;
        return nextRemote ? MemoryMode::Remote : MemoryMode::Local;
    }

  private:
    bool nextRemote = false;
};

/** Places everything on local DRAM (the conventional deployment). */
class AllLocalScheduler : public scenario::PlacementPolicy
{
  public:
    std::string name() const override { return "all-local"; }

    MemoryMode
    place(const workloads::WorkloadSpec &, const telemetry::Watcher &,
          SimTime) override
    {
        return MemoryMode::Local;
    }
};

/** Places everything on disaggregated memory. */
class AllRemoteScheduler : public scenario::PlacementPolicy
{
  public:
    std::string name() const override { return "all-remote"; }

    MemoryMode
    place(const workloads::WorkloadSpec &, const telemetry::Watcher &,
          SimTime) override
    {
        return MemoryMode::Remote;
    }
};

/**
 * Rack baseline: every app prefers disaggregated memory on the
 * least-loaded node; the default placeRack() routing demotes it to
 * local only when no healthy link reaches a server with room.
 */
class LeastLoadedRemotePolicy : public scenario::ClusterPolicy
{
  public:
    std::string name() const override { return "least-loaded-remote"; }

    scenario::ClusterPlacement
    place(const workloads::WorkloadSpec &,
          const std::vector<scenario::NodeView> &nodes, SimTime) override
    {
        scenario::ClusterPlacement placement;
        placement.mode = MemoryMode::Remote;
        std::size_t best = SIZE_MAX;
        for (std::size_t n = 0; n < nodes.size(); ++n) {
            if (nodes[n].running < best) {
                best = nodes[n].running;
                placement.node = n;
            }
        }
        return placement;
    }
};

} // namespace adrias::core

#endif // ADRIAS_CORE_SCHEDULERS_HH
