/**
 * @file
 * Kill-point crash injection for recovery testing.
 *
 * A CrashInjector arms one crash site at one simulation tick; the
 * recovery layer calls maybeCrash() at each site and, when the plan
 * matches, an InjectedCrash unwinds the process exactly as a SIGKILL
 * would leave it — everything flushed so far is on disk, nothing after
 * the kill point exists.  The DurableFile write paths flush before
 * every chaos hook precisely so this equivalence holds, which lets the
 * kill-point tests run in-process (fast, ASan-friendly) while still
 * exercising real torn-file states.
 */

#ifndef ADRIAS_FAULT_CRASH_HH
#define ADRIAS_FAULT_CRASH_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.hh"

namespace adrias::fault
{

/** Where in the checkpoint/journal machinery the crash fires. */
enum class CrashSite : std::uint8_t
{
    /** Mid-checkpoint: half the snapshot payload written to the temp
     *  file, rename not reached. */
    MidCheckpoint,

    /** Snapshot fully written and flushed to the temp file, crash just
     *  before the atomic rename publishes it. */
    BeforeCheckpointRename,

    /** Mid-journal-append: record header + half the payload flushed,
     *  rest lost (torn tail). */
    MidJournalAppend,

    /** Between ticks, outside any write (clean kill). */
    BetweenTicks,
};

/** @return short site name ("mid-checkpoint", ...). */
std::string toString(CrashSite site);

/** One planned kill point. */
struct CrashPlan
{
    CrashSite site = CrashSite::BetweenTicks;

    /** Simulation tick at (or after) which the site fires. */
    SimTime tick = 0;
};

/** Thrown at the armed kill point; simulates abrupt termination. */
class InjectedCrash : public std::runtime_error
{
  public:
    explicit InjectedCrash(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/**
 * Arms at most one CrashPlan and fires it exactly once.
 *
 * Deterministic: a crash fires at the first maybeCrash(site, now) call
 * with the armed site and now >= the armed tick.  `fired()` stays true
 * afterwards so a driver can tell a planned kill from a real failure.
 */
class CrashInjector
{
  public:
    CrashInjector() = default;

    explicit CrashInjector(CrashPlan plan_) : plan(plan_), armed(true) {}

    /** @return true while a plan is armed and has not fired. */
    bool pending() const { return armed && !hasFired; }

    /** @return true once the planned crash was thrown. */
    bool fired() const { return hasFired; }

    /** The armed plan (meaningful only while pending() or fired()). */
    const CrashPlan &plannedCrash() const { return plan; }

    /**
     * Fire the planned crash when `site` matches and `now` has reached
     * the planned tick.
     *
     * @throws InjectedCrash on a match; returns otherwise.
     */
    void maybeCrash(CrashSite site, SimTime now);

  private:
    CrashPlan plan;
    bool armed = false;
    bool hasFired = false;
};

} // namespace adrias::fault

#endif // ADRIAS_FAULT_CRASH_HH
