/**
 * @file
 * Equivalence suite for the parallel Matrix kernels (DESIGN.md §9):
 * every kernel that can fan out onto the ThreadPool must produce
 * results bitwise identical to the serial path, for randomized and
 * degenerate shapes, at every thread count.  Runs under the TSan
 * flavor too, so it double-checks the kernels race-free.
 */

#include <algorithm>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/threadpool.hh"
#include "ml/matrix.hh"

namespace
{

using adrias::Rng;
using adrias::ScopedThreadOverride;
using adrias::ThreadPool;
using adrias::ml::Matrix;
using adrias::ml::MatrixParallelConfig;
using adrias::ml::matrixParallelConfig;
using adrias::ml::setMatrixParallelConfig;

/** Forces every kernel onto the parallel path for the test's scope. */
class ParallelKernelsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saved = matrixParallelConfig();
        setMatrixParallelConfig({0, 0});
    }

    void
    TearDown() override
    {
        setMatrixParallelConfig(saved);
    }

    MatrixParallelConfig saved;
};

Matrix
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols)
{
    Matrix m(rows, cols);
    for (double &value : m.raw())
        value = rng.uniform(-3.0, 3.0);
    // Sprinkle exact zeros so matmul's zero-skip branch is exercised.
    for (double &value : m.raw())
        if (rng.bernoulli(0.1))
            value = 0.0;
    return m;
}

void
expectIdentical(const Matrix &expected, const Matrix &actual,
                const char *op)
{
    ASSERT_EQ(expected.rows(), actual.rows()) << op;
    ASSERT_EQ(expected.cols(), actual.cols()) << op;
    // Bitwise, not approximate: the contract is exact equality.
    ASSERT_EQ(expected.raw(), actual.raw()) << op;
}

std::vector<unsigned>
threadCounts()
{
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    return {1u, 2u, 7u, hw};
}

/** Shapes: square, tall, wide, ragged, single row/col, empty. */
struct GemmShape
{
    std::size_t m, k, n;
};

TEST_F(ParallelKernelsTest, GemmFamilyMatchesSerialBitwise)
{
    const GemmShape shapes[] = {
        {8, 8, 8},  {17, 5, 23}, {1, 64, 1}, {64, 1, 3}, {3, 1, 64},
        {1, 1, 1},  {31, 33, 2}, {2, 33, 31},
        {0, 5, 7},  {5, 0, 7},   {5, 7, 0}, // empty extents
    };
    Rng rng(0xAD51A5);
    for (const auto &shape : shapes) {
        const Matrix a = randomMatrix(rng, shape.m, shape.k);
        const Matrix b = randomMatrix(rng, shape.k, shape.n);
        const Matrix at = randomMatrix(rng, shape.k, shape.m);
        const Matrix bt = randomMatrix(rng, shape.n, shape.k);

        Matrix ref_mm, ref_tm, ref_mt, ref_tr;
        {
            ScopedThreadOverride serial(1);
            ref_mm = a.matmul(b);
            ref_tm = at.transposedMatmul(b);
            ref_mt = a.matmulTransposed(bt);
            ref_tr = a.transposed();
        }
        for (unsigned threads : threadCounts()) {
            ScopedThreadOverride override_(threads);
            expectIdentical(ref_mm, a.matmul(b), "matmul");
            expectIdentical(ref_tm, at.transposedMatmul(b),
                            "transposedMatmul");
            expectIdentical(ref_mt, a.matmulTransposed(bt),
                            "matmulTransposed");
            expectIdentical(ref_tr, a.transposed(), "transposed");
        }
    }
}

TEST_F(ParallelKernelsTest, ElementWiseKernelsMatchSerialBitwise)
{
    const std::pair<std::size_t, std::size_t> shapes[] = {
        {1, 1}, {1, 257}, {257, 1}, {13, 37}, {64, 64}, {0, 5}, {5, 0},
    };
    Rng rng(0xBEEF01);
    for (const auto &[rows, cols] : shapes) {
        const Matrix a = randomMatrix(rng, rows, cols);
        const Matrix b = randomMatrix(rng, rows, cols);
        const Matrix bias = randomMatrix(rng, 1, cols);

        Matrix ref_add, ref_sub, ref_had, ref_acc, ref_scale,
            ref_broadcast, ref_sum;
        {
            ScopedThreadOverride serial(1);
            ref_add = a + b;
            ref_sub = a - b;
            ref_had = a.hadamard(b);
            ref_acc = a;
            ref_acc += b;
            ref_scale = a;
            ref_scale *= 1.7;
            if (rows > 0)
                ref_broadcast = a.addRowBroadcast(bias);
            ref_sum = a.sumRows();
        }
        for (unsigned threads : threadCounts()) {
            ScopedThreadOverride override_(threads);
            expectIdentical(ref_add, a + b, "operator+");
            expectIdentical(ref_sub, a - b, "operator-");
            expectIdentical(ref_had, a.hadamard(b), "hadamard");
            Matrix acc = a;
            acc += b;
            expectIdentical(ref_acc, acc, "operator+=");
            Matrix scaled = a;
            scaled *= 1.7;
            expectIdentical(ref_scale, scaled, "operator*=");
            if (rows > 0)
                expectIdentical(ref_broadcast, a.addRowBroadcast(bias),
                                "addRowBroadcast");
            expectIdentical(ref_sum, a.sumRows(), "sumRows");
        }
    }
}

TEST_F(ParallelKernelsTest, RandomizedShapesSweep)
{
    // Broad fuzz across shapes and thread counts; every repetition
    // compares the parallel result against the serial reference.
    Rng rng(0xF00D42);
    for (int repetition = 0; repetition < 25; ++repetition) {
        const auto m = static_cast<std::size_t>(rng.uniformInt(1, 40));
        const auto k = static_cast<std::size_t>(rng.uniformInt(1, 40));
        const auto n = static_cast<std::size_t>(rng.uniformInt(1, 40));
        const Matrix a = randomMatrix(rng, m, k);
        const Matrix b = randomMatrix(rng, k, n);

        Matrix ref_mm, ref_sum;
        {
            ScopedThreadOverride serial(1);
            ref_mm = a.matmul(b);
            ref_sum = (a + a).sumRows();
        }
        for (unsigned threads : threadCounts()) {
            ScopedThreadOverride override_(threads);
            expectIdentical(ref_mm, a.matmul(b), "matmul fuzz");
            expectIdentical(ref_sum, (a + a).sumRows(), "sumRows fuzz");
        }
    }
}

TEST_F(ParallelKernelsTest, ResultsInvariantUnderDefaultThresholds)
{
    // With production thresholds a small matrix stays serial and a big
    // one goes parallel — both must agree with the forced-parallel
    // result computed above them.
    setMatrixParallelConfig(MatrixParallelConfig{});
    Rng rng(0xC0FFEE);
    const Matrix big_a = randomMatrix(rng, 96, 96);
    const Matrix big_b = randomMatrix(rng, 96, 96);

    Matrix forced;
    {
        ScopedThreadOverride parallel(4);
        setMatrixParallelConfig({0, 0});
        forced = big_a.matmul(big_b);
        setMatrixParallelConfig(MatrixParallelConfig{});
    }
    expectIdentical(forced, big_a.matmul(big_b), "threshold crossover");
}

} // namespace
