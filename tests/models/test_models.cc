/** @file Tests for the system-state and performance models. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/threadpool.hh"
#include "models/batching.hh"
#include "models/performance.hh"
#include "models/predictor.hh"
#include "models/system_state.hh"
#include "scenario/dataset.hh"

namespace adrias::models
{
namespace
{

using scenario::DatasetBuilder;
using scenario::PerformanceSample;
using scenario::RandomPlacement;
using scenario::ScenarioConfig;
using scenario::ScenarioResult;
using scenario::ScenarioRunner;
using scenario::SignatureStore;
using scenario::SystemStateSample;

/** Small but real dataset shared across model tests. */
class ModelsTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        std::vector<ScenarioResult> results;
        for (std::uint64_t seed : {61, 62, 63, 64, 65}) {
            ScenarioConfig config;
            config.durationSec = 2400;
            config.spawnMinSec = 5;
            config.spawnMaxSec = 25;
            config.seed = seed;
            ScenarioRunner runner(config);
            RandomPlacement policy(seed + 10);
            results.push_back(runner.run(policy));
        }
        signatures = new SignatureStore;
        scenario::collectAllSignatures(*signatures);

        auto state = DatasetBuilder::systemState(results, 5);
        auto [state_train_, state_test_] =
            scenario::splitDataset(std::move(state), 0.6, 5);
        stateTrain = new std::vector<SystemStateSample>(
            std::move(state_train_));
        stateTest =
            new std::vector<SystemStateSample>(std::move(state_test_));

        auto be = DatasetBuilder::performance(results, *signatures,
                                              WorkloadClass::BestEffort);
        auto [be_train_, be_test_] =
            scenario::splitDataset(std::move(be), 0.6, 5);
        beTrain =
            new std::vector<PerformanceSample>(std::move(be_train_));
        beTest = new std::vector<PerformanceSample>(std::move(be_test_));

        config = new ModelConfig;
        config->epochs = 40;
        config->hidden = 24;
        config->headWidth = 32;

        trainedState = new SystemStateModel(*config);
        trainedState->train(*stateTrain);
    }

    static void
    TearDownTestSuite()
    {
        delete signatures;
        delete stateTrain;
        delete stateTest;
        delete beTrain;
        delete beTest;
        delete trainedState;
        delete config;
    }

    static SignatureStore *signatures;
    static std::vector<SystemStateSample> *stateTrain;
    static std::vector<SystemStateSample> *stateTest;
    static std::vector<PerformanceSample> *beTrain;
    static std::vector<PerformanceSample> *beTest;
    static SystemStateModel *trainedState;
    static ModelConfig *config;
};

SignatureStore *ModelsTest::signatures = nullptr;
std::vector<SystemStateSample> *ModelsTest::stateTrain = nullptr;
std::vector<SystemStateSample> *ModelsTest::stateTest = nullptr;
std::vector<PerformanceSample> *ModelsTest::beTrain = nullptr;
std::vector<PerformanceSample> *ModelsTest::beTest = nullptr;
SystemStateModel *ModelsTest::trainedState = nullptr;
ModelConfig *ModelsTest::config = nullptr;

TEST(Batching, StackSequencesShape)
{
    std::vector<ml::Matrix> a(3, ml::Matrix(1, 2));
    std::vector<ml::Matrix> b(3, ml::Matrix(1, 2));
    a[1].at(0, 1) = 5.0;
    const auto batch = stackSequences({&a, &b});
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].rows(), 2u);
    EXPECT_EQ(batch[0].cols(), 2u);
    EXPECT_DOUBLE_EQ(batch[1].at(0, 1), 5.0);
    EXPECT_DOUBLE_EQ(batch[1].at(1, 1), 0.0);
}

TEST(Batching, RaggedBatchPanics)
{
    std::vector<ml::Matrix> a(3, ml::Matrix(1, 2));
    std::vector<ml::Matrix> b(2, ml::Matrix(1, 2));
    EXPECT_THROW(stackSequences({&a, &b}), std::logic_error);
    EXPECT_THROW(stackSequences({}), std::logic_error);
}

TEST(Batching, RaggedDetectionIsDeterministicAcrossThreadCounts)
{
    // Regression: validation used to happen inside the parallel fill,
    // so which ragged row got reported depended on chunk scheduling —
    // and an empty later sequence could be dereferenced before its
    // length was ever checked.  Shapes are now validated serially up
    // front: the LOWEST offending row is reported, identically under
    // any ADRIAS_THREADS.
    std::vector<ml::Matrix> good(3, ml::Matrix(1, 2));
    std::vector<ml::Matrix> short_a(2, ml::Matrix(1, 2));
    std::vector<ml::Matrix> empty;
    std::vector<ml::Matrix> short_b(1, ml::Matrix(1, 2));
    const std::vector<const std::vector<ml::Matrix> *> batch{
        &good, &good, &short_a, &empty, &short_b};

    std::vector<std::string> messages;
    for (unsigned threads : {1u, 2u, 0u}) { // 0 = hardware default
        auto capture = [&batch, &messages] {
            try {
                (void)stackSequences(batch);
                FAIL() << "ragged batch must panic";
            } catch (const std::logic_error &err) {
                messages.emplace_back(err.what());
            }
        };
        if (threads == 0) {
            capture();
        } else {
            ScopedThreadOverride override_(threads);
            capture();
        }
    }
    ASSERT_EQ(messages.size(), 3u);
    // Row 2 is the first ragged one; rows 3 (empty!) and 4 must not
    // win the report even when a chunk touches them first.
    EXPECT_NE(messages[0].find("row 2"), std::string::npos)
        << messages[0];
    EXPECT_EQ(messages[0], messages[1]);
    EXPECT_EQ(messages[0], messages[2]);
}

TEST(Batching, EmptySequenceInBatchPanicsCleanly)
{
    // An empty sequence after valid ones must be caught by the length
    // check, never reach the element loop.
    std::vector<ml::Matrix> a(2, ml::Matrix(1, 3));
    std::vector<ml::Matrix> empty;
    EXPECT_THROW(stackSequences({&a, &empty}), std::logic_error);
    EXPECT_THROW(stackSequences({&empty, &a}), std::logic_error);
}

TEST(Batching, StackRows)
{
    ml::Matrix a(1, 3, {1, 2, 3});
    ml::Matrix b(1, 3, {4, 5, 6});
    const ml::Matrix out = stackRows({&a, &b});
    EXPECT_EQ(out.rows(), 2u);
    EXPECT_DOUBLE_EQ(out.at(1, 2), 6.0);
}

TEST(FutureKindNames, AreStable)
{
    EXPECT_EQ(toString(FutureKind::None), "None");
    EXPECT_EQ(toString(FutureKind::ActualWindow), "120");
    EXPECT_EQ(toString(FutureKind::ActualExec), "exec");
    EXPECT_EQ(toString(FutureKind::Predicted), "S^");
}

TEST_F(ModelsTest, SystemStateModelRejectsMisuse)
{
    SystemStateModel untrained(*config);
    EXPECT_FALSE(untrained.trained());
    EXPECT_THROW(untrained.predict((*stateTest)[0].history),
                 std::runtime_error);
    EXPECT_THROW(untrained.train({}), std::runtime_error);
}

TEST_F(ModelsTest, SystemStateModelFitsHeldOutData)
{
    // Table I reports R² >= 0.96 per event; our smaller model on a
    // smaller dataset must still achieve strong fits.
    const auto eval = trainedState->evaluate(*stateTest);
    ASSERT_EQ(eval.r2PerEvent.size(), testbed::kNumPerfEvents);
    EXPECT_GT(eval.r2Average, 0.80);
    for (std::size_t e = 0; e < eval.r2PerEvent.size(); ++e)
        EXPECT_GT(eval.r2PerEvent[e], 0.5)
            << perfEventName(testbed::allPerfEvents()[e]);
}

TEST_F(ModelsTest, SystemStatePredictionShapeAndUnits)
{
    const ml::Matrix out = trainedState->predict((*stateTest)[0].history);
    EXPECT_EQ(out.rows(), 1u);
    EXPECT_EQ(out.cols(), testbed::kNumPerfEvents);
    // Channel latency lives in [350, 900] cycles; prediction must be
    // in the right ballpark (original units, not scaled ones).
    const double lat =
        out.at(0, static_cast<std::size_t>(
                      testbed::PerfEvent::ChannelLat));
    EXPECT_GT(lat, 100.0);
    EXPECT_LT(lat, 1500.0);
}

TEST_F(ModelsTest, PerformanceModelTrainsAndPredicts)
{
    PerformanceModel model(FutureKind::ActualWindow, *config);
    EXPECT_FALSE(model.trained());
    model.train(*beTrain);
    EXPECT_TRUE(model.trained());

    const auto &sample = (*beTest)[0];
    const double pred = model.predict(sample.history, sample.signature,
                                      sample.mode, sample.futureWindow);
    EXPECT_GT(pred, 0.0);
    EXPECT_LT(pred, 3600.0);
}

TEST_F(ModelsTest, PerformanceModelBeatsMeanPredictor)
{
    PerformanceModel model(FutureKind::ActualWindow, *config);
    model.train(*beTrain);
    const auto eval = model.evaluate(*beTest);
    EXPECT_GT(eval.r2, 0.5); // far above the mean predictor's 0
    EXPECT_GT(eval.mae, 0.0);
    EXPECT_FALSE(eval.maePerApp.empty());
}

TEST_F(ModelsTest, PerformanceModelDiscriminatesModes)
{
    // For a bandwidth-hungry app, predicted remote time must exceed
    // predicted local time in a quiet system.
    PerformanceModel model(FutureKind::ActualWindow, *config);
    model.train(*beTrain);

    const PerformanceSample *heavy = nullptr;
    for (const auto &sample : *beTest)
        if (sample.name == "nweight" || sample.name == "lr")
            heavy = &sample;
    if (!heavy)
        GTEST_SKIP() << "no heavy app in the test split";

    const double local =
        model.predict(heavy->history, heavy->signature,
                      MemoryMode::Local, heavy->futureWindow);
    const double remote =
        model.predict(heavy->history, heavy->signature,
                      MemoryMode::Remote, heavy->futureWindow);
    EXPECT_GT(remote, local);
}

TEST_F(ModelsTest, FutureKindNoneIgnoresFutureVector)
{
    PerformanceModel model(FutureKind::None, *config);
    model.train(*beTrain);
    const auto &sample = (*beTest)[0];
    const double pred = model.predict(sample.history, sample.signature,
                                      sample.mode, ml::Matrix());
    EXPECT_GT(pred, 0.0);
}

TEST_F(ModelsTest, PredictedFutureRequiresSystemModel)
{
    PerformanceModel model(FutureKind::Predicted, *config);
    EXPECT_THROW(model.train(*beTrain, nullptr), std::runtime_error);
    model.train(*beTrain, trainedState);
    EXPECT_TRUE(model.trained());
    const auto eval = model.evaluate(*beTest, trainedState);
    EXPECT_GT(eval.r2, 0.4);
}

TEST_F(ModelsTest, PredictorFacadeEndToEnd)
{
    Predictor predictor(*config);
    EXPECT_FALSE(predictor.trained());
    auto lc_dummy = std::vector<PerformanceSample>{}; // LC optional
    predictor.train(*stateTrain, *beTrain, lc_dummy);
    EXPECT_TRUE(predictor.trained());

    const auto &sample = (*beTest)[0];
    const double t = predictor.predictPerformance(
        WorkloadClass::BestEffort, sample.history, sample.signature,
        sample.mode);
    EXPECT_GT(t, 0.0);
    // LC model untrained -> fatal.
    EXPECT_THROW(predictor.predictPerformance(
                     WorkloadClass::LatencyCritical, sample.history,
                     sample.signature, MemoryMode::Remote),
                 std::runtime_error);
}

} // namespace
} // namespace adrias::models
