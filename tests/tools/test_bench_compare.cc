/**
 * @file
 * Tests for the perf-regression gate (tools/bench_compare): the
 * adrias-bench-v1 parser and the tolerance/missing/added policy.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_compare/bench_compare.hh"

namespace
{

using namespace adrias::bench_compare;

std::string
benchJson(const std::string &entries)
{
    return std::string("{\"schema\":\"adrias-bench-v1\","
                       "\"suite\":\"ml_kernels\",\"benchmarks\":[") +
           entries + "]}";
}

std::string
entry(const std::string &name, double median)
{
    return "{\"name\":\"" + name +
           "\",\"median_ns\":" + std::to_string(median) +
           ",\"min_ns\":1,\"mean_ns\":2,\"iterations\":30,\"warmup\":5}";
}

TEST(BenchCompareParser, ExtractsNameAndMedian)
{
    std::string error;
    const auto entries = parseBenchJson(
        benchJson(entry("matmul_64", 1000.5) + "," +
                  entry("lstm_forward", 2e6)),
        &error);
    ASSERT_EQ(entries.size(), 2u) << error;
    EXPECT_EQ(entries[0].name, "matmul_64");
    EXPECT_DOUBLE_EQ(entries[0].medianNs, 1000.5);
    EXPECT_EQ(entries[1].name, "lstm_forward");
    EXPECT_DOUBLE_EQ(entries[1].medianNs, 2e6);
}

TEST(BenchCompareParser, IgnoresSummaryAndUnknownKeys)
{
    const std::string text =
        "{\"schema\":\"adrias-bench-v1\",\"future_key\":{\"a\":[1,2]},"
        "\"benchmarks\":[{\"name\":\"x\",\"extra\":true,"
        "\"median_ns\":42,\"nested\":{\"deep\":[null,\"s\"]}}],"
        "\"summary\":[{\"name\":\"sp\",\"before_ns\":2,\"after_ns\":1,"
        "\"speedup\":2.0}]}";
    std::string error;
    const auto entries = parseBenchJson(text, &error);
    ASSERT_EQ(entries.size(), 1u) << error;
    EXPECT_EQ(entries[0].name, "x");
    EXPECT_DOUBLE_EQ(entries[0].medianNs, 42.0);
}

TEST(BenchCompareParser, RejectsMalformedInput)
{
    std::string error;
    EXPECT_TRUE(parseBenchJson("not json", &error).empty());
    EXPECT_FALSE(error.empty());

    EXPECT_TRUE(parseBenchJson("{\"suite\":\"x\"}", &error).empty());
    EXPECT_EQ(error, "no benchmarks array");

    // An entry without median_ns must be an error, not silently zero.
    EXPECT_TRUE(parseBenchJson(
                    benchJson("{\"name\":\"x\",\"min_ns\":1}"), &error)
                    .empty());
    EXPECT_FALSE(error.empty());

    // Truncated document.
    EXPECT_TRUE(
        parseBenchJson("{\"benchmarks\":[{\"name\":\"x\",", &error)
            .empty());
    EXPECT_FALSE(error.empty());
}

TEST(BenchComparePolicy, PassesWithinTolerance)
{
    const std::vector<BenchEntry> baseline{{"a", 1000.0}, {"b", 500.0}};
    const std::vector<BenchEntry> current{{"a", 1900.0}, {"b", 400.0}};
    const CompareResult result = compare(baseline, current, 2.0);
    EXPECT_TRUE(result.pass);
    ASSERT_EQ(result.rows.size(), 2u);
    EXPECT_FALSE(result.rows[0].regressed);
    EXPECT_DOUBLE_EQ(result.rows[0].ratio, 1.9);
    EXPECT_FALSE(result.rows[1].regressed);
    EXPECT_TRUE(result.missing.empty());
    EXPECT_TRUE(result.added.empty());
}

TEST(BenchComparePolicy, FailsOnGrossRegression)
{
    const std::vector<BenchEntry> baseline{{"a", 1000.0}, {"b", 500.0}};
    const std::vector<BenchEntry> current{{"a", 2100.0}, {"b", 500.0}};
    const CompareResult result = compare(baseline, current, 2.0);
    EXPECT_FALSE(result.pass);
    EXPECT_TRUE(result.rows[0].regressed);
    EXPECT_FALSE(result.rows[1].regressed);

    const std::string report = formatReport(result, 2.0);
    EXPECT_NE(report.find("REGRESSED a"), std::string::npos);
    EXPECT_NE(report.find("FAIL"), std::string::npos);
}

TEST(BenchComparePolicy, ExactlyAtToleranceStillPasses)
{
    const std::vector<BenchEntry> baseline{{"a", 1000.0}};
    const std::vector<BenchEntry> current{{"a", 2000.0}};
    EXPECT_TRUE(compare(baseline, current, 2.0).pass);
}

TEST(BenchComparePolicy, MissingBenchmarkFailsAddedIsInformational)
{
    const std::vector<BenchEntry> baseline{{"a", 1000.0}, {"b", 500.0}};
    const std::vector<BenchEntry> current{{"a", 1000.0},
                                          {"c", 100.0}};
    const CompareResult result = compare(baseline, current, 2.0);
    EXPECT_FALSE(result.pass);
    ASSERT_EQ(result.missing.size(), 1u);
    EXPECT_EQ(result.missing[0], "b");
    ASSERT_EQ(result.added.size(), 1u);
    EXPECT_EQ(result.added[0], "c");

    // Added-only (baseline fully covered) passes: new benchmarks land
    // before their baseline snapshot is refreshed.
    const std::vector<BenchEntry> current2{{"a", 1000.0},
                                           {"b", 500.0},
                                           {"c", 100.0}};
    EXPECT_TRUE(compare(baseline, current2, 2.0).pass);
}

TEST(BenchComparePolicy, CheckedInBaselinesParse)
{
    // The real snapshots the CI gate consumes must stay parseable.
    for (const char *name : {"BENCH_ml.json", "BENCH_sim.json"}) {
        const std::string path =
            std::string(ADRIAS_BENCH_BASELINE_DIR) + "/" + name;
        std::ifstream in(path);
        ASSERT_TRUE(in) << path;
        std::stringstream buf;
        buf << in.rdbuf();
        std::string error;
        const auto entries = parseBenchJson(buf.str(), &error);
        EXPECT_FALSE(entries.empty()) << path << ": " << error;
        const CompareResult self = compare(entries, entries, 2.0);
        EXPECT_TRUE(self.pass) << path;
    }
}

} // namespace
