/**
 * @file
 * Runtime invariant checks for the simulator's conservation laws.
 *
 * ADRIAS_INVARIANT(cond, ...) asserts a physical/structural invariant
 * (achieved bandwidth below pool caps, non-negative latencies,
 * monotonic watcher timestamps, ...).  The checks are compiled in for
 * Debug/RelWithDebInfo and sanitizer builds (the CMake option
 * ADRIAS_INVARIANTS, default ON) and compiled out entirely for Release
 * so the hot tick path carries zero cost; the compiled-out form still
 * `sizeof`s the condition so it stays syntactically checked and its
 * operands stay "used".
 *
 * A violation routes through an installable handler.  The default
 * handler panic()s (throws std::logic_error); tests install a counting
 * or recording handler via invariant::setHandler() to prove each check
 * fires on deliberately corrupted state without tearing the process
 * down.
 *
 * NOTE: the *_LE/_GE/_FINITE convenience forms evaluate their operands
 * a second time when the check fails (to format the message); keep the
 * operands side-effect free.
 */

#ifndef ADRIAS_COMMON_INVARIANT_HH
#define ADRIAS_COMMON_INVARIANT_HH

#include <string>

namespace adrias::invariant
{

/** Compile-time flag: are ADRIAS_INVARIANT checks active? */
#ifdef ADRIAS_ENABLE_INVARIANTS
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/** Everything known about one failed check. */
struct Violation
{
    /** Stringified condition that evaluated false. */
    const char *condition = "";

    /** Source location of the check. */
    const char *file = "";
    int line = 0;

    /** Optional caller-supplied context ("achieved=12.3 cap=11.0"). */
    std::string message;

    /** "invariant violated: <cond> (<msg>) at file:line" */
    std::string toString() const;
};

/** Receives every violation; may return (to continue) or throw. */
using Handler = void (*)(const Violation &);

/**
 * Install a new violation handler.
 *
 * @param handler replacement, or nullptr to restore the default
 *        (panic, i.e. throw std::logic_error).
 * @return the previously installed handler (for restoration).
 */
Handler setHandler(Handler handler);

/** Route a failed check to the current handler (macro plumbing). */
void fail(const char *condition, const char *file, int line,
          std::string message = {});

} // namespace adrias::invariant

#ifdef ADRIAS_ENABLE_INVARIANTS

/**
 * Assert `cond`; optional second argument is a std::string message
 * built only when the check fails.
 */
#define ADRIAS_INVARIANT(cond, ...)                                        \
    ((cond) ? static_cast<void>(0)                                         \
            : ::adrias::invariant::fail(#cond, __FILE__,                   \
                                        __LINE__ __VA_OPT__(, )            \
                                            __VA_ARGS__))

#else

// Compiled out: never evaluates cond (or the message expression) but
// keeps both syntactically alive so Release builds can't bit-rot them.
#define ADRIAS_INVARIANT(cond, ...)                                        \
    do {                                                                   \
        (void)sizeof((cond));                                              \
    } while (false)

#endif // ADRIAS_ENABLE_INVARIANTS

/** Assert a <= b, reporting both values on failure. */
#define ADRIAS_INVARIANT_LE(a, b)                                          \
    ADRIAS_INVARIANT((a) <= (b), #a "=" + std::to_string(a) +              \
                                     " > " #b "=" + std::to_string(b))

/** Assert a >= b, reporting both values on failure. */
#define ADRIAS_INVARIANT_GE(a, b)                                          \
    ADRIAS_INVARIANT((a) >= (b), #a "=" + std::to_string(a) +              \
                                     " < " #b "=" + std::to_string(b))

/** Assert x is finite (not NaN/Inf), reporting it on failure. */
#define ADRIAS_INVARIANT_FINITE(x)                                         \
    ADRIAS_INVARIANT(std::isfinite(x), #x "=" + std::to_string(x))

#endif // ADRIAS_COMMON_INVARIANT_HH
