/**
 * @file
 * Edge-domain regression tests for the fastmath transcendentals on
 * BOTH kernel tiers (DESIGN.md §16): NaN, signed zeros, infinities,
 * denormals and the −708 underflow cutoff.  The specials contract
 * says the vector tier must agree with the scalar tier bit for bit on
 * every special (NaN-ness for NaN — payloads may differ); only finite
 * interior values are allowed to drift, and then only within ulps.
 */

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/float_compare.hh"
#include "ml/fastmath.hh"
#include "ml/simd.hh"

namespace adrias::ml
{
namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();
const double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenormMin = std::numeric_limits<double>::denorm_min();

/** Bitwise equality (distinguishes -0.0 from +0.0). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(a)) == 0;
}

/** The special inputs every function is probed at. */
std::vector<double>
specialInputs()
{
    return {
        0.0,
        -0.0,
        kNan,
        kInf,
        -kInf,
        kDenormMin,
        -kDenormMin,
        1e-310,  // denormal
        -1e-310, // denormal
        // The expNeg underflow cutoff and its neighborhood.
        -708.0,
        std::nextafter(-708.0, 0.0),
        std::nextafter(-708.0, -kInf),
        -709.0,
        -1e308,
        std::numeric_limits<double>::lowest(),
    };
}

/** Run one batch entry point on one input under a given tier. */
double
batchOne(void (*batch)(const double *, double *, std::size_t),
         KernelTier tier, double x)
{
    const ScopedKernelTier pin(tier);
    double out = 0.0;
    batch(&x, &out, 1);
    return out;
}

/**
 * Vector-lane variant: feed the input through a 4-wide batch so the
 * value actually travels the AVX2 lane path, not the scalar tail.
 */
double
batchLane(void (*batch)(const double *, double *, std::size_t),
          KernelTier tier, double x)
{
    const ScopedKernelTier pin(tier);
    const double in[4] = {x, x, x, x};
    double out[4] = {};
    batch(in, out, 4);
    // All four lanes saw the same input, so they must agree.
    EXPECT_TRUE(sameBits(out[0], out[1]) || (std::isnan(out[0]) &&
                                             std::isnan(out[1])));
    EXPECT_TRUE(sameBits(out[0], out[3]) || (std::isnan(out[0]) &&
                                             std::isnan(out[3])));
    return out[0];
}

/** Assert scalar/vector agreement on one special value. */
void
expectSpecialAgreement(
    const char *name,
    void (*batch)(const double *, double *, std::size_t),
    double (*scalar)(double), double x)
{
    const double ref = scalar(x);
    for (const double got :
         {batchOne(batch, KernelTier::Vector, x),
          batchLane(batch, KernelTier::Vector, x),
          batchOne(batch, KernelTier::Scalar, x),
          batchLane(batch, KernelTier::Scalar, x)}) {
        if (std::isnan(ref)) {
            EXPECT_TRUE(std::isnan(got))
                << name << "(" << x << "): expected NaN, got " << got;
        } else {
            EXPECT_TRUE(sameBits(ref, got))
                << name << "(" << x << "): scalar " << ref
                << " vs " << got;
        }
    }
}

// ---------------------------------------------------------------------
// Scalar oracle semantics at the edges (regression-pins the scalar
// functions themselves, independent of any vector tier).
// ---------------------------------------------------------------------

TEST(FastmathEdges, ScalarExpNegSpecials)
{
    EXPECT_EQ(fastmath::expNeg(0.0), 1.0);
    EXPECT_EQ(fastmath::expNeg(-0.0), 1.0);
    // At and below the cutoff: exact +0.0.
    EXPECT_TRUE(sameBits(fastmath::expNeg(-708.0), 0.0));
    EXPECT_TRUE(sameBits(fastmath::expNeg(-709.0), 0.0));
    EXPECT_TRUE(sameBits(fastmath::expNeg(-kInf), 0.0));
    EXPECT_TRUE(
        sameBits(fastmath::expNeg(std::nextafter(-708.0, -kInf)), 0.0));
    // Just above the cutoff: small but positive.
    const double above = fastmath::expNeg(std::nextafter(-708.0, 0.0));
    EXPECT_GT(above, 0.0);
    EXPECT_LT(above, 1e-300);
    // NaN propagates.
    EXPECT_TRUE(std::isnan(fastmath::expNeg(kNan)));
    // Denormal inputs: exp(-eps) rounds to 1.0.
    EXPECT_EQ(fastmath::expNeg(-kDenormMin), 1.0);
    EXPECT_EQ(fastmath::expNeg(-1e-310), 1.0);
}

TEST(FastmathEdges, ScalarSigmoidSpecials)
{
    EXPECT_EQ(fastmath::sigmoid(0.0), 0.5);
    EXPECT_EQ(fastmath::sigmoid(-0.0), 0.5);
    EXPECT_EQ(fastmath::sigmoid(kInf), 1.0);
    EXPECT_TRUE(sameBits(fastmath::sigmoid(-kInf), 0.0));
    EXPECT_TRUE(std::isnan(fastmath::sigmoid(kNan)));
    EXPECT_EQ(fastmath::sigmoid(0.5) + fastmath::sigmoid(-0.5), 1.0);
    // Deep saturation underflows to exactly 0 / saturates to exactly 1.
    EXPECT_TRUE(sameBits(fastmath::sigmoid(-1e308), 0.0));
    EXPECT_EQ(fastmath::sigmoid(1e308), 1.0);
    EXPECT_EQ(fastmath::sigmoid(kDenormMin), 0.5);
}

TEST(FastmathEdges, ScalarTanhSpecials)
{
    // Signed zero preserved (copysign path).
    EXPECT_TRUE(sameBits(fastmath::tanh(0.0), 0.0));
    EXPECT_TRUE(sameBits(fastmath::tanh(-0.0), -0.0));
    EXPECT_EQ(fastmath::tanh(kInf), 1.0);
    EXPECT_EQ(fastmath::tanh(-kInf), -1.0);
    EXPECT_TRUE(std::isnan(fastmath::tanh(kNan)));
    // Saturation.
    EXPECT_EQ(fastmath::tanh(1e308), 1.0);
    EXPECT_EQ(fastmath::tanh(-1e308), -1.0);
    // tanh(x) ~= x for tiny x; denormals keep sign and magnitude.
    EXPECT_TRUE(sameBits(fastmath::tanh(kDenormMin), kDenormMin));
    EXPECT_TRUE(sameBits(fastmath::tanh(-kDenormMin), -kDenormMin));
    // Odd symmetry on a representative interior point.
    EXPECT_EQ(fastmath::tanh(0.7), -fastmath::tanh(-0.7));
}

// ---------------------------------------------------------------------
// Scalar/vector agreement on every special, through the batch entry
// points (both the 1-element scalar tail and the 4-wide lane path).
// These pass identically on hosts without AVX2 — the vector tier then
// IS the scalar fallback, and agreement is trivially exact.
// ---------------------------------------------------------------------

TEST(FastmathEdges, VectorExpNegAgreesOnSpecials)
{
    for (const double x : specialInputs())
        expectSpecialAgreement("expNeg", simd::expNegBatch,
                               fastmath::expNeg, x);
}

TEST(FastmathEdges, VectorSigmoidAgreesOnSpecials)
{
    for (const double x : specialInputs())
        expectSpecialAgreement("sigmoid", simd::sigmoidBatch,
                               fastmath::sigmoid, x);
}

TEST(FastmathEdges, VectorTanhAgreesOnSpecials)
{
    for (const double x : specialInputs())
        expectSpecialAgreement("tanh", simd::tanhBatch,
                               fastmath::tanh, x);
}

// ---------------------------------------------------------------------
// Interior values: the tiers may differ, but only within a few ulps
// (measured through the shared UlpStats tracker the equivalence suites
// use).  A denormal *output* region is also swept for expNeg — scale
// by 2^n there is exact bit arithmetic in both tiers, but the
// polynomial rounding differs.
// ---------------------------------------------------------------------

TEST(FastmathEdges, VectorInteriorWithinUlps)
{
    struct Case
    {
        const char *name;
        void (*batch)(const double *, double *, std::size_t);
        double (*scalar)(double);
        double lo, hi;
    };
    const std::vector<Case> cases = {
        {"expNeg", simd::expNegBatch, fastmath::expNeg, -707.0, 0.0},
        {"sigmoid", simd::sigmoidBatch, fastmath::sigmoid, -40.0, 40.0},
        {"tanh", simd::tanhBatch, fastmath::tanh, -25.0, 25.0},
    };
    for (const Case &c : cases) {
        std::vector<double> xs;
        const double step = (c.hi - c.lo) / 4099.0;
        for (double x = c.lo; x <= c.hi; x += step)
            xs.push_back(x);
        std::vector<double> got(xs.size());
        {
            const ScopedKernelTier pin(KernelTier::Vector);
            c.batch(xs.data(), got.data(), xs.size());
        }
        UlpStats stats;
        for (std::size_t i = 0; i < xs.size(); ++i)
            stats.add(c.scalar(xs[i]), got[i]);
        EXPECT_TRUE(stats.within(4))
            << c.name << ": worst " << stats.maxUlps << " ulps at "
            << stats.worstA << " vs " << stats.worstB;
    }
}

TEST(FastmathEdges, VectorExpNegNearCutoffOutputs)
{
    // Inputs near the cutoff produce outputs within a few binades of
    // the smallest normal (the −708 guard fires before the output
    // range goes denormal); both tiers must stay finite, non-negative
    // and within ulps of each other right up to the edge.
    std::vector<double> xs;
    for (double x = -707.999; x > -708.0; x -= 1e-7)
        xs.push_back(x);
    for (double x = -700.0; x >= -707.9; x -= 0.1)
        xs.push_back(x);
    std::vector<double> got(xs.size());
    {
        const ScopedKernelTier pin(KernelTier::Vector);
        simd::expNegBatch(xs.data(), got.data(), xs.size());
    }
    UlpStats stats;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_GE(got[i], 0.0);
        stats.add(fastmath::expNeg(xs[i]), got[i]);
    }
    EXPECT_TRUE(stats.within(8))
        << "worst " << stats.maxUlps << " ulps at " << stats.worstA
        << " vs " << stats.worstB;
}

// Out-of-place and in-place (aliased) batch calls must agree.
TEST(FastmathEdges, BatchAliasingIsSafe)
{
    std::vector<double> xs;
    for (double x = -10.0; x <= 10.0; x += 0.37)
        xs.push_back(x);
    for (const KernelTier tier :
         {KernelTier::Scalar, KernelTier::Vector}) {
        const ScopedKernelTier pin(tier);
        std::vector<double> out(xs.size());
        simd::tanhBatch(xs.data(), out.data(), xs.size());
        std::vector<double> inplace = xs;
        simd::tanhBatch(inplace.data(), inplace.data(), inplace.size());
        for (std::size_t i = 0; i < xs.size(); ++i)
            EXPECT_TRUE(sameBits(out[i], inplace[i]));
    }
}

} // namespace
} // namespace adrias::ml
