file(REMOVE_RECURSE
  "libadrias_models.a"
)
