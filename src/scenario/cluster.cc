#include "scenario/cluster.hh"

#include "common/logging.hh"
#include "fault/fault.hh"
#include "telemetry/watcher.hh"

namespace adrias::scenario
{

using workloads::IBenchKind;
using workloads::WorkloadInstance;
using workloads::WorkloadSpec;

std::vector<ClusterResult::NodeRecord>
ClusterResult::allRecords() const
{
    std::vector<NodeRecord> all;
    for (std::size_t n = 0; n < nodes.size(); ++n)
        for (const DeploymentRecord &record : nodes[n].records)
            all.push_back({n, &record});
    return all;
}

ClusterPlacement
routeOnRack(ClusterPlacement placement, const WorkloadSpec &spec,
            const RackView &rack)
{
    if (placement.mode != MemoryMode::Remote)
        return placement;
    if (rack.topology == nullptr)
        panic("routeOnRack: RackView carries no topology");
    const testbed::Topology &topo = *rack.topology;
    std::int64_t best_link = -1;
    double best_avail = -1.0;
    for (std::size_t l : topo.linksFrom(placement.node)) {
        if (!rack.links[l].healthy())
            continue;
        const std::size_t s = topo.link(l).server;
        const double avail = rack.servers[s].availableGb;
        if (avail < spec.memoryFootprintGb)
            continue;
        // linksFrom is ascending, so a strict improvement test breaks
        // availability ties toward the lowest link index.
        if (avail > best_avail) {
            best_avail = avail;
            best_link = static_cast<std::int64_t>(l);
        }
    }
    if (best_link < 0) {
        // No healthy link reaches a server with room: degrade to the
        // node's local pool rather than refuse the deployment.
        placement.mode = MemoryMode::Local;
        placement.server = 0;
        placement.link = 0;
        return placement;
    }
    placement.link = static_cast<std::size_t>(best_link);
    placement.server = topo.link(placement.link).server;
    return placement;
}

ClusterScenarioRunner::ClusterScenarioRunner(std::size_t nodes,
                                             ScenarioConfig config_,
                                             testbed::TestbedParams params)
    : nodeCount(nodes), config(config_), testbedParams(params)
{
    if (nodes == 0)
        fatal("ClusterScenarioRunner: need at least one node");
    if (config.durationSec <= 0)
        fatal("ClusterScenarioRunner: duration must be positive");
    if (config.spawnMinSec <= 0 ||
        config.spawnMaxSec < config.spawnMinSec)
        fatal("ClusterScenarioRunner: invalid spawn interval");
}

ClusterScenarioRunner::ClusterScenarioRunner(testbed::Topology topology,
                                             ScenarioConfig config_)
    : nodeCount(topology.nodeCount()), config(config_),
      rackTopology(std::move(topology))
{
    if (config.durationSec <= 0)
        fatal("ClusterScenarioRunner: duration must be positive");
    if (config.spawnMinSec <= 0 ||
        config.spawnMaxSec < config.spawnMinSec)
        fatal("ClusterScenarioRunner: invalid spawn interval");
}

ClusterResult
ClusterScenarioRunner::run(ClusterPolicy &policy)
{
    return rackTopology.has_value() ? runRack(policy)
                                    : runLegacy(policy);
}

ClusterResult
ClusterScenarioRunner::runLegacy(ClusterPolicy &policy)
{
    Rng rng(config.seed);

    struct Node
    {
        std::unique_ptr<testbed::Testbed> bed;
        std::unique_ptr<telemetry::Watcher> watcher;
        std::vector<std::unique_ptr<WorkloadInstance>> running;
    };
    std::vector<Node> nodes(nodeCount);
    ClusterResult result;
    result.nodes.resize(nodeCount);
    for (auto &node : nodes) {
        node.bed = std::make_unique<testbed::Testbed>(testbedParams,
                                                      rng.nextU64());
        node.bed->setNoise(config.counterNoise);
        node.watcher = std::make_unique<telemetry::Watcher>(
            ScenarioRunner::kWindowSec * 4);
    }

    DeploymentId next_id = 1;
    SimTime next_arrival =
        rng.uniformInt(config.spawnMinSec, config.spawnMaxSec);

    const auto &sparks = workloads::sparkBenchmarks();
    const auto &lcs = workloads::latencyCriticalBenchmarks();
    const IBenchKind ibench_kinds[] = {IBenchKind::Cpu, IBenchKind::L2,
                                       IBenchKind::L3, IBenchKind::MemBw};

    for (SimTime now = 0; now < config.durationSec; ++now) {
        // --- arrivals ----------------------------------------------------
        while (now >= next_arrival) {
            next_arrival +=
                rng.uniformInt(config.spawnMinSec, config.spawnMaxSec);

            const double draw = rng.uniform();
            const WorkloadSpec *spec = nullptr;
            bool is_ibench = false;
            if (draw < config.ibenchFraction) {
                spec = &workloads::ibenchSpec(
                    ibench_kinds[rng.uniformInt(0, 3)]);
                is_ibench = true;
            } else if (draw <
                       config.ibenchFraction + config.lcFraction) {
                spec = &lcs[static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(lcs.size()) - 1))];
            } else {
                spec = &sparks[static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(sparks.size()) - 1))];
            }

            ClusterPlacement placement;
            if (is_ibench) {
                // Background interference lands anywhere, either mode.
                placement.node = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(nodeCount) - 1));
                placement.mode = rng.bernoulli(0.5) ? MemoryMode::Remote
                                                    : MemoryMode::Local;
            } else {
                std::vector<NodeView> views(nodeCount);
                for (std::size_t n = 0; n < nodeCount; ++n) {
                    views[n].watcher = nodes[n].watcher.get();
                    views[n].running = nodes[n].running.size();
                }
                placement = policy.place(*spec, views, now);
                if (placement.node >= nodeCount)
                    panic("ClusterPolicy returned an invalid node");
            }

            Node &target = nodes[placement.node];
            if (target.running.size() >= config.maxConcurrent)
                continue; // node full: drop
            target.running.push_back(std::make_unique<WorkloadInstance>(
                next_id++, *spec, placement.mode, now, rng.nextU64()));
        }

        // --- one second everywhere ----------------------------------------
        for (std::size_t n = 0; n < nodeCount; ++n) {
            Node &node = nodes[n];
            ScenarioResult &node_result = result.nodes[n];

            std::vector<testbed::LoadDescriptor> loads;
            loads.reserve(node.running.size());
            for (const auto &instance : node.running)
                loads.push_back(instance->load());
            const testbed::TickResult tick = node.bed->tick(loads);

            node.watcher->record(tick.counters, now);
            node_result.trace.push_back(tick.counters);
            node_result.concurrency.push_back(
                static_cast<int>(node.running.size()));
            node_result.totalRemoteTrafficGB += tick.remoteTrafficGBps;
            result.totalRemoteTrafficGB += tick.remoteTrafficGBps;

            for (std::size_t i = 0; i < node.running.size(); ++i)
                node.running[i]->advance(tick.outcomes[i], now + 1);

            for (std::size_t i = node.running.size(); i-- > 0;) {
                if (!node.running[i]->finished())
                    continue;
                const WorkloadInstance &done = *node.running[i];
                DeploymentRecord record;
                record.id = done.id();
                record.name = done.spec().name;
                record.cls = done.spec().cls;
                record.mode = done.mode();
                record.arrival = done.arrivalTime();
                record.completion = now + 1;
                record.execTimeSec = done.executionTimeSec();
                if (record.cls == WorkloadClass::LatencyCritical) {
                    record.p99Ms = done.tailLatencyMs(0.99);
                    record.p999Ms = done.tailLatencyMs(0.999);
                    record.meanLatencyMs = done.meanLatencyMs();
                }
                record.meanSlowdown = done.meanSlowdown();
                record.remoteTrafficGB = done.remoteTrafficGB();
                record.migrations = done.migrationCount();
                record.historyWindow =
                    historyWindowAt(node_result.trace, record.arrival);
                record.executionWindow = telemetry::binSpan(
                    node_result.trace,
                    static_cast<std::size_t>(record.arrival),
                    node_result.trace.size(),
                    ScenarioRunner::kWindowBins);
                policy.onCompletion(n, record);
                node_result.records.push_back(std::move(record));
                node.running.erase(node.running.begin() +
                                   static_cast<std::ptrdiff_t>(i));
            }
        }
    }
    return result;
}

ClusterResult
ClusterScenarioRunner::runRack(ClusterPolicy &policy)
{
    const testbed::Topology &topo = *rackTopology;
    Rng rng(config.seed);
    testbed::RackTestbed rack(topo, rng.nextU64());
    rack.setNoise(config.counterNoise);
    fault::FaultInjector injector(config.faults);

    struct RunningApp
    {
        std::unique_ptr<WorkloadInstance> instance;
        std::size_t server = 0;
        std::size_t link = 0;
        double reservedGb = 0.0;
    };
    struct Node
    {
        std::unique_ptr<telemetry::Watcher> watcher;
        std::vector<RunningApp> running;
    };
    std::vector<Node> nodes(nodeCount);
    ClusterResult result;
    result.nodes.resize(nodeCount);
    result.topologyName = topo.name();
    for (std::size_t n = 0; n < nodeCount; ++n) {
        nodes[n].watcher = std::make_unique<telemetry::Watcher>(
            ScenarioRunner::kWindowSec * 4);
        nodes[n].watcher->configureLinks(topo.linksFrom(n).size());
    }

    // Per-link fault derating applied this tick (rebuilt every second).
    std::vector<double> link_bw(topo.linkCount(), 1.0);
    std::vector<double> link_lat(topo.linkCount(), 1.0);

    const auto makeRackView = [&]() {
        RackView view;
        view.topology = &topo;
        view.servers.resize(topo.serverCount());
        for (std::size_t s = 0; s < topo.serverCount(); ++s) {
            view.servers[s].capacityGb = topo.server(s).capacityGb;
            view.servers[s].availableGb = rack.availableGb(s);
        }
        view.links.resize(topo.linkCount());
        for (std::size_t l = 0; l < topo.linkCount(); ++l) {
            view.links[l].node = topo.link(l).node;
            view.links[l].server = topo.link(l).server;
            view.links[l].bwScale = link_bw[l];
            view.links[l].latencyScale = link_lat[l];
        }
        return view;
    };

    DeploymentId next_id = 1;
    SimTime next_arrival =
        rng.uniformInt(config.spawnMinSec, config.spawnMaxSec);

    const auto &sparks = workloads::sparkBenchmarks();
    const auto &lcs = workloads::latencyCriticalBenchmarks();
    const IBenchKind ibench_kinds[] = {IBenchKind::Cpu, IBenchKind::L2,
                                       IBenchKind::L3, IBenchKind::MemBw};

    for (SimTime now = 0; now < config.durationSec; ++now) {
        // --- per-link fault state for this tick -------------------------
        for (std::size_t l = 0; l < topo.linkCount(); ++l) {
            const fault::LinkState state =
                injector.linkStateAt(now, topo.link(l).name);
            link_bw[l] = state.bwScale;
            link_lat[l] = state.latencyScale;
            rack.setLinkFault(l, state.bwScale, state.latencyScale);
        }

        // --- arrivals ----------------------------------------------------
        while (now >= next_arrival) {
            next_arrival +=
                rng.uniformInt(config.spawnMinSec, config.spawnMaxSec);

            const double draw = rng.uniform();
            const WorkloadSpec *spec = nullptr;
            bool is_ibench = false;
            if (draw < config.ibenchFraction) {
                spec = &workloads::ibenchSpec(
                    ibench_kinds[rng.uniformInt(0, 3)]);
                is_ibench = true;
            } else if (draw <
                       config.ibenchFraction + config.lcFraction) {
                spec = &lcs[static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(lcs.size()) - 1))];
            } else {
                spec = &sparks[static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(sparks.size()) - 1))];
            }

            ClusterPlacement placement;
            if (is_ibench) {
                // Background interference lands anywhere, either mode;
                // remote trashers still need a real route.
                placement.node = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(nodeCount) - 1));
                placement.mode = rng.bernoulli(0.5) ? MemoryMode::Remote
                                                    : MemoryMode::Local;
                placement = routeOnRack(placement, *spec, makeRackView());
            } else {
                std::vector<NodeView> views(nodeCount);
                for (std::size_t n = 0; n < nodeCount; ++n) {
                    views[n].watcher = nodes[n].watcher.get();
                    views[n].running = nodes[n].running.size();
                }
                placement = policy.placeRack(*spec, views,
                                             makeRackView(), now);
                if (placement.node >= nodeCount)
                    panic("ClusterPolicy returned an invalid node");
                if (placement.mode == MemoryMode::Remote) {
                    if (placement.link >= topo.linkCount())
                        panic("ClusterPolicy returned an invalid link");
                    const testbed::LinkDesc &link =
                        topo.link(placement.link);
                    if (link.node != placement.node ||
                        link.server != placement.server)
                        panic("ClusterPolicy placement link does not "
                              "connect its node to its server");
                }
            }

            Node &target = nodes[placement.node];
            if (target.running.size() >= config.maxConcurrent) {
                ++result.droppedArrivals;
                continue; // node full: drop
            }

            RunningApp app;
            if (placement.mode == MemoryMode::Remote) {
                // Reserve the footprint on the lending server for the
                // deployment's lifetime; a full server demotes the
                // placement to the node's local pool.
                if (rack.allocate(placement.server,
                                  spec->memoryFootprintGb)) {
                    app.server = placement.server;
                    app.link = placement.link;
                    app.reservedGb = spec->memoryFootprintGb;
                } else {
                    placement.mode = MemoryMode::Local;
                    ++result.remoteFallbacks;
                }
            }
            app.instance = std::make_unique<WorkloadInstance>(
                next_id++, *spec, placement.mode, now, rng.nextU64());
            target.running.push_back(std::move(app));
        }

        // --- one shared rack second --------------------------------------
        std::vector<testbed::LoadDescriptor> loads;
        std::vector<std::pair<std::size_t, std::size_t>> owner;
        for (std::size_t n = 0; n < nodeCount; ++n) {
            for (std::size_t i = 0; i < nodes[n].running.size(); ++i) {
                const RunningApp &app = nodes[n].running[i];
                testbed::LoadDescriptor load = app.instance->load();
                load.node = n;
                load.server = app.server;
                load.link = app.link;
                loads.push_back(load);
                owner.emplace_back(n, i);
            }
        }
        const testbed::RackTickResult tick = rack.tick(loads);

        for (std::size_t k = 0; k < loads.size(); ++k)
            nodes[owner[k].first]
                .running[owner[k].second]
                .instance->advance(tick.outcomes[k], now + 1);

        for (std::size_t n = 0; n < nodeCount; ++n) {
            Node &node = nodes[n];
            ScenarioResult &node_result = result.nodes[n];

            node.watcher->record(tick.nodes[n].counters, now);
            std::vector<testbed::LinkCounterSample> link_samples;
            link_samples.reserve(topo.linksFrom(n).size());
            for (std::size_t l : topo.linksFrom(n))
                link_samples.push_back(tick.links[l].counters);
            if (!link_samples.empty())
                node.watcher->recordLinks(link_samples);

            node_result.trace.push_back(tick.nodes[n].counters);
            node_result.concurrency.push_back(
                static_cast<int>(node.running.size()));
            node_result.totalRemoteTrafficGB +=
                tick.nodes[n].remoteTrafficGBps;
            result.totalRemoteTrafficGB +=
                tick.nodes[n].remoteTrafficGBps;

            for (std::size_t i = node.running.size(); i-- > 0;) {
                if (!node.running[i].instance->finished())
                    continue;
                const RunningApp &finished = node.running[i];
                const WorkloadInstance &done = *finished.instance;
                DeploymentRecord record;
                record.id = done.id();
                record.name = done.spec().name;
                record.cls = done.spec().cls;
                record.mode = done.mode();
                record.arrival = done.arrivalTime();
                record.completion = now + 1;
                record.execTimeSec = done.executionTimeSec();
                if (record.cls == WorkloadClass::LatencyCritical) {
                    record.p99Ms = done.tailLatencyMs(0.99);
                    record.p999Ms = done.tailLatencyMs(0.999);
                    record.meanLatencyMs = done.meanLatencyMs();
                }
                record.meanSlowdown = done.meanSlowdown();
                record.remoteTrafficGB = done.remoteTrafficGB();
                record.migrations = done.migrationCount();
                record.historyWindow =
                    historyWindowAt(node_result.trace, record.arrival);
                record.executionWindow = telemetry::binSpan(
                    node_result.trace,
                    static_cast<std::size_t>(record.arrival),
                    node_result.trace.size(),
                    ScenarioRunner::kWindowBins);
                if (finished.reservedGb > 0.0)
                    rack.release(finished.server, finished.reservedGb);
                policy.onCompletion(n, record);
                node_result.records.push_back(std::move(record));
                node.running.erase(node.running.begin() +
                                   static_cast<std::ptrdiff_t>(i));
            }
        }
    }

    result.linkTotals.reserve(topo.linkCount());
    for (std::size_t l = 0; l < topo.linkCount(); ++l)
        result.linkTotals.push_back(rack.linkTotals(l));
    for (std::size_t n = 0; n < nodeCount; ++n) {
        result.nodes[n].watcherHealth = nodes[n].watcher->health();
        result.nodes[n].faultSummary = injector.stats();
    }
    return result;
}

} // namespace adrias::scenario
