file(REMOVE_RECURSE
  "CMakeFiles/fig03_lc_isolation.dir/fig03_lc_isolation.cc.o"
  "CMakeFiles/fig03_lc_isolation.dir/fig03_lc_isolation.cc.o.d"
  "fig03_lc_isolation"
  "fig03_lc_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_lc_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
