#include "ml/dense.hh"

#include <cmath>

namespace adrias::ml
{

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng &rng)
    : weight("dense.weight", Matrix(in_features, out_features)),
      bias("dense.bias", Matrix(1, out_features))
{
    // Glorot/Xavier uniform keeps activation variance stable through
    // the non-linear blocks.
    const double limit = std::sqrt(
        6.0 / static_cast<double>(in_features + out_features));
    for (double &w : weight.value.raw())
        w = rng.uniform(-limit, limit);
}

Matrix
Dense::forward(const Matrix &input)
{
    lastInput = input;
    return input.matmul(weight.value).addRowBroadcast(bias.value);
}

Matrix
Dense::backward(const Matrix &grad_output)
{
    weight.grad += lastInput.transposedMatmul(grad_output);
    bias.grad += grad_output.sumRows();
    return grad_output.matmulTransposed(weight.value);
}

std::vector<Param *>
Dense::params()
{
    return {&weight, &bias};
}

} // namespace adrias::ml
