/** @file Circuit-breaker state machine tests. */

#include <gtest/gtest.h>

#include "fault/circuit_breaker.hh"

namespace adrias::fault
{
namespace
{

CircuitBreakerConfig
testConfig()
{
    CircuitBreakerConfig config;
    config.failureThreshold = 3;
    config.backoffStartSec = 10;
    config.backoffMultiplier = 2.0;
    config.backoffMaxSec = 40;
    config.halfOpenSuccesses = 2;
    return config;
}

TEST(CircuitBreaker, StaysClosedUnderSuccess)
{
    CircuitBreaker breaker(testConfig());
    for (SimTime t = 0; t < 100; ++t) {
        EXPECT_TRUE(breaker.allowRequest(t));
        breaker.recordSuccess(t);
    }
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_EQ(breaker.stats().trips, 0u);
}

TEST(CircuitBreaker, NonConsecutiveFailuresDoNotTrip)
{
    CircuitBreaker breaker(testConfig());
    for (SimTime t = 0; t < 30; ++t) {
        ASSERT_TRUE(breaker.allowRequest(t));
        if (t % 3 == 2)
            breaker.recordFailure(t);
        else
            breaker.recordSuccess(t);
    }
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
}

TEST(CircuitBreaker, TripsAfterThresholdAndRejectsWhileOpen)
{
    CircuitBreaker breaker(testConfig());
    for (SimTime t = 0; t < 3; ++t) {
        ASSERT_TRUE(breaker.allowRequest(t));
        breaker.recordFailure(t);
    }
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_EQ(breaker.stats().trips, 1u);

    // Backoff has not elapsed: rejected.
    EXPECT_FALSE(breaker.allowRequest(5));
    EXPECT_FALSE(breaker.allowRequest(11));
    EXPECT_EQ(breaker.stats().rejected, 2u);
}

TEST(CircuitBreaker, HalfOpenProbeClosesAfterEnoughSuccesses)
{
    CircuitBreaker breaker(testConfig());
    for (SimTime t = 0; t < 3; ++t) {
        breaker.allowRequest(t);
        breaker.recordFailure(t);
    }
    ASSERT_EQ(breaker.state(), BreakerState::Open);

    // Backoff (10 s from the trip at t=2) elapsed at t=12.
    EXPECT_TRUE(breaker.allowRequest(12));
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
    breaker.recordSuccess(12);
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen); // 1 of 2 probes
    EXPECT_TRUE(breaker.allowRequest(13));
    breaker.recordSuccess(13);
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_EQ(breaker.stats().recoveries, 1u);
    // Recovery resets the backoff.
    EXPECT_EQ(breaker.currentBackoffSec(), 10);
}

TEST(CircuitBreaker, FailedProbeReopensWithDoubledBackoff)
{
    CircuitBreaker breaker(testConfig());
    for (SimTime t = 0; t < 3; ++t) {
        breaker.allowRequest(t);
        breaker.recordFailure(t);
    }
    EXPECT_TRUE(breaker.allowRequest(12)); // half-open probe
    breaker.recordFailure(12);
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_EQ(breaker.stats().trips, 2u);
    EXPECT_EQ(breaker.currentBackoffSec(), 20);

    // Rejected until the doubled backoff elapses (t = 12 + 20).
    EXPECT_FALSE(breaker.allowRequest(25));
    EXPECT_TRUE(breaker.allowRequest(32));
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
}

TEST(CircuitBreaker, BackoffIsCapped)
{
    CircuitBreaker breaker(testConfig());
    SimTime t = 0;
    // Trip, then fail every probe; backoff 10 -> 20 -> 40 -> 40 (cap).
    for (int probes = 0; probes < 5; ++probes) {
        while (breaker.state() != BreakerState::Open) {
            breaker.allowRequest(t);
            breaker.recordFailure(t);
            ++t;
        }
        t += breaker.currentBackoffSec();
        ASSERT_TRUE(breaker.allowRequest(t));
        breaker.recordFailure(t);
    }
    EXPECT_EQ(breaker.currentBackoffSec(), 40);
}

TEST(CircuitBreaker, RejectsInvalidConfig)
{
    CircuitBreakerConfig bad = testConfig();
    bad.failureThreshold = 0;
    EXPECT_THROW(CircuitBreaker{bad}, std::runtime_error);

    bad = testConfig();
    bad.backoffMaxSec = 1;
    EXPECT_THROW(CircuitBreaker{bad}, std::runtime_error);

    bad = testConfig();
    bad.backoffMultiplier = 0.5;
    EXPECT_THROW(CircuitBreaker{bad}, std::runtime_error);
}

TEST(CircuitBreaker, ResetRestoresPristineState)
{
    CircuitBreaker breaker(testConfig());
    for (SimTime t = 0; t < 3; ++t) {
        breaker.allowRequest(t);
        breaker.recordFailure(t);
    }
    ASSERT_EQ(breaker.state(), BreakerState::Open);
    breaker.reset();
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_EQ(breaker.stats().trips, 0u);
    EXPECT_TRUE(breaker.allowRequest(0));
}

TEST(CircuitBreaker, ExportRestoreRoundTripsMidProbe)
{
    CircuitBreaker breaker(testConfig());
    for (SimTime t = 0; t < 3; ++t) {
        breaker.allowRequest(t);
        breaker.recordFailure(t);
    }
    ASSERT_TRUE(breaker.allowRequest(12)); // HalfOpen, probe 0 of 2
    breaker.recordSuccess(12);             // 1 of 2 probe successes
    ASSERT_EQ(breaker.state(), BreakerState::HalfOpen);

    const BreakerSnapshot snapshot = breaker.exportState();
    CircuitBreaker restored(testConfig());
    restored.restoreState(snapshot);

    EXPECT_EQ(restored.state(), BreakerState::HalfOpen);
    EXPECT_EQ(restored.stats().failures, breaker.stats().failures);
    EXPECT_EQ(restored.stats().trips, breaker.stats().trips);
    EXPECT_EQ(restored.currentBackoffSec(),
              breaker.currentBackoffSec());

    // The restored breaker resumes the probe sequence exactly where
    // the original stood: one more success closes it.
    EXPECT_TRUE(restored.allowRequest(13));
    restored.recordSuccess(13);
    EXPECT_EQ(restored.state(), BreakerState::Closed);
    EXPECT_EQ(restored.stats().recoveries, 1u);
}

TEST(CircuitBreaker, BinarySaveRestoreMatchesExport)
{
    CircuitBreaker breaker(testConfig());
    for (SimTime t = 0; t < 3; ++t) {
        breaker.allowRequest(t);
        breaker.recordFailure(t);
    }
    breaker.allowRequest(5); // rejected while Open

    io::BinaryWriter out;
    breaker.saveState(out);

    CircuitBreaker restored(testConfig());
    io::BinaryReader in(out.data());
    ASSERT_TRUE(restored.restoreState(in).ok());

    EXPECT_EQ(restored.state(), BreakerState::Open);
    EXPECT_EQ(restored.stats().failures, 3u);
    EXPECT_EQ(restored.stats().rejected, 1u);
    EXPECT_EQ(restored.currentBackoffSec(),
              breaker.currentBackoffSec());
    // Same backoff clock: the restored breaker opens its probe window
    // at the same tick the original would.
    EXPECT_FALSE(restored.allowRequest(11));
    EXPECT_TRUE(restored.allowRequest(12));
}

TEST(CircuitBreaker, BinaryRestoreRejectsCorruptState)
{
    CircuitBreaker breaker(testConfig());
    io::BinaryWriter out;
    breaker.saveState(out);

    // Truncated payload.
    {
        const std::string whole = out.data();
        io::BinaryReader in(
            std::string_view(whole).substr(0, whole.size() / 2));
        CircuitBreaker victim(testConfig());
        EXPECT_FALSE(victim.restoreState(in).ok());
    }
    // Invalid state enum.
    {
        std::string mangled = out.data();
        mangled[0] = 9;
        io::BinaryReader in(mangled);
        CircuitBreaker victim(testConfig());
        const Result<void> restored = victim.restoreState(in);
        ASSERT_FALSE(restored.ok());
        EXPECT_EQ(restored.error().code, ErrorCode::BadNumber);
    }
}

TEST(CircuitBreaker, RestoreClampsBackoffToConfiguredRange)
{
    CircuitBreaker breaker(testConfig());
    BreakerSnapshot snapshot = breaker.exportState();
    snapshot.backoffSec = 10000; // beyond backoffMaxSec = 40
    breaker.restoreState(snapshot);
    EXPECT_EQ(breaker.currentBackoffSec(), 40);
}

TEST(CircuitBreaker, StateNames)
{
    EXPECT_EQ(toString(BreakerState::Closed), "closed");
    EXPECT_EQ(toString(BreakerState::Open), "open");
    EXPECT_EQ(toString(BreakerState::HalfOpen), "half-open");
}

} // namespace
} // namespace adrias::fault
