/** @file Tests for the cluster-level Adrias orchestrator (§VII). */

#include <gtest/gtest.h>

#include "core/adrias.hh"

namespace adrias::core
{
namespace
{

using scenario::ClusterScenarioRunner;
using scenario::ScenarioConfig;

class ClusterOrchestratorTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        AdriasStack::BuildOptions options;
        options.scenarios = 3;
        options.scenarioDurationSec = 1500;
        options.seed = 1700;
        options.model.epochs = 18;
        options.model.hidden = 16;
        options.model.headWidth = 24;
        stack = new AdriasStack(options);
    }

    static void
    TearDownTestSuite()
    {
        delete stack;
    }

    static ScenarioConfig
    evalConfig(std::uint64_t seed)
    {
        ScenarioConfig config;
        config.durationSec = 1200;
        config.spawnMinSec = 3;
        config.spawnMaxSec = 12;
        config.seed = seed;
        return config;
    }

    static AdriasStack *stack;
};

AdriasStack *ClusterOrchestratorTest::stack = nullptr;

TEST_F(ClusterOrchestratorTest, RequiresTrainedPredictorAndSaneBeta)
{
    models::Predictor untrained;
    scenario::SignatureStore store;
    EXPECT_THROW(
        AdriasClusterOrchestrator(untrained, store, AdriasConfig{}),
        std::runtime_error);

    AdriasConfig bad;
    bad.beta = -1.0;
    EXPECT_THROW(AdriasClusterOrchestrator(stack->predictor(),
                                           stack->signatures(), bad),
                 std::runtime_error);
}

TEST_F(ClusterOrchestratorTest, NameEncodesBeta)
{
    AdriasConfig config;
    config.beta = 0.8;
    AdriasClusterOrchestrator orchestrator(stack->predictor(),
                                           stack->signatures(), config);
    EXPECT_EQ(orchestrator.name(), "adrias-cluster-b0.8");
}

TEST_F(ClusterOrchestratorTest, UnknownAppBootstrapsOnLeastLoaded)
{
    AdriasClusterOrchestrator orchestrator(stack->predictor(),
                                           stack->signatures(), {});
    telemetry::Watcher w0(16), w1(16);
    std::vector<scenario::NodeView> nodes{{&w0, 5}, {&w1, 2}};
    workloads::WorkloadSpec novel = workloads::sparkBenchmark("sort");
    novel.name = "never-seen";
    const auto placement =
        orchestrator.place(novel, nodes, 0);
    EXPECT_EQ(placement.node, 1u);
    EXPECT_EQ(placement.mode, MemoryMode::Remote);
}

TEST_F(ClusterOrchestratorTest, ColdClusterFallsBackToLeastLoadedLocal)
{
    AdriasClusterOrchestrator orchestrator(stack->predictor(),
                                           stack->signatures(), {});
    telemetry::Watcher w0(16), w1(16);
    std::vector<scenario::NodeView> nodes{{&w0, 4}, {&w1, 1}};
    const auto placement = orchestrator.place(
        workloads::sparkBenchmark("sort"), nodes, 0);
    EXPECT_EQ(placement.node, 1u);
    EXPECT_EQ(placement.mode, MemoryMode::Local);
}

TEST_F(ClusterOrchestratorTest, PrefersQuietNodeForBestEffort)
{
    AdriasClusterOrchestrator orchestrator(stack->predictor(),
                                           stack->signatures(), {});

    // Node 0: heavily congested telemetry; node 1: idle telemetry.
    testbed::Testbed busy_bed, idle_bed;
    busy_bed.setNoise(0.0);
    idle_bed.setNoise(0.0);
    telemetry::Watcher busy(200), idle(200);
    std::vector<testbed::LoadDescriptor> heavy_loads;
    for (int i = 0; i < 12; ++i)
        heavy_loads.push_back(
            workloads::ibenchSpec(workloads::IBenchKind::MemBw)
                .toLoad(static_cast<DeploymentId>(i),
                        MemoryMode::Remote));
    for (int t = 0; t < 150; ++t) {
        busy.record(busy_bed.tick(heavy_loads).counters);
        idle.record(idle_bed.tick({}).counters);
    }

    std::vector<scenario::NodeView> nodes{{&busy, 12}, {&idle, 12}};
    const auto placement = orchestrator.place(
        workloads::sparkBenchmark("lr"), nodes, 200);
    EXPECT_EQ(placement.node, 1u);
}

TEST_F(ClusterOrchestratorTest, EndToEndComparableToLeastLoaded)
{
    // The cluster orchestrator must not lose to the load-balancing
    // baseline on median BE performance while actually using remote
    // memory.
    AdriasConfig config;
    config.beta = 0.8;
    config.defaultQosP99Ms = 5.0;
    AdriasClusterOrchestrator adrias(stack->predictor(),
                                     stack->signatures(), config);
    scenario::LeastLoadedLocalPolicy baseline;

    auto be_median_and_offloads =
        [&](scenario::ClusterPolicy &policy) {
            ClusterScenarioRunner runner(3, evalConfig(1801));
            const auto result = runner.run(policy);
            std::vector<double> times;
            std::size_t offloads = 0;
            for (const auto &entry : result.allRecords()) {
                if (entry.record->cls != WorkloadClass::BestEffort)
                    continue;
                times.push_back(entry.record->execTimeSec);
                offloads += entry.record->mode == MemoryMode::Remote;
            }
            return std::pair<double, std::size_t>(
                stats::quantile(times, 0.5), offloads);
        };

    const auto [adrias_median, adrias_offloads] =
        be_median_and_offloads(adrias);
    const auto [baseline_median, baseline_offloads] =
        be_median_and_offloads(baseline);
    (void)baseline_offloads;
    EXPECT_LT(adrias_median, baseline_median * 1.25);
    EXPECT_GT(adrias_offloads, 0u);
}

} // namespace
} // namespace adrias::core
