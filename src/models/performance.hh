/**
 * @file
 * The application performance prediction model (paper Fig. 11b):
 * separate 2-layer LSTM encoders for the system history S and the
 * application signature k, concatenated with the deployment mode and
 * the (predicted or actual) future system state Ŝ, followed by the
 * non-linear head producing one scalar — execution time for the
 * universal BE model, p99 latency for the LC model.
 */

#ifndef ADRIAS_MODELS_PERFORMANCE_HH
#define ADRIAS_MODELS_PERFORMANCE_HH

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "ml/lstm.hh"
#include "ml/scaler.hh"
#include "ml/sequential.hh"
#include "models/config.hh"
#include "models/system_state.hh"
#include "scenario/dataset.hh"

namespace adrias::models
{

/**
 * What is fed as the future-state vector Ŝ (the {train, test} ablation
 * of paper Fig. 13b).
 */
enum class FutureKind
{
    None,         ///< no future input at all
    ActualWindow, ///< actual mean counters over the 120 s after arrival
    ActualExec,   ///< actual mean counters over the full execution
    Predicted,    ///< propagated from the system-state model
};

/** @return short label used in bench tables ("None", "120", ...). */
std::string toString(FutureKind kind);

/** Test metrics for a performance model (Figs. 13-14). */
struct PerformanceEvaluation
{
    double r2 = 0.0;
    double mae = 0.0;
    double r2Local = 0.0;
    double r2Remote = 0.0;

    /** MAE per application name. */
    std::map<std::string, double> maePerApp;

    std::vector<double> actual;
    std::vector<double> predicted;
};

/** Universal per-class performance predictor. */
class PerformanceModel
{
  public:
    /**
     * @param future which Ŝ variant this model consumes.
     * @param config topology/training knobs.
     */
    explicit PerformanceModel(FutureKind future, ModelConfig config = {});

    /**
     * Train on performance samples.
     *
     * @param samples training split.
     * @param system required when future == Predicted (Ŝ is propagated
     *        through the trained system-state model).
     * @return final-epoch training loss.
     */
    double train(const std::vector<scenario::PerformanceSample> &samples,
                 const SystemStateModel *system = nullptr);

    /**
     * Continue training on newly collected samples without refitting
     * the scalers (continual learning, the operational consequence of
     * the paper's Fig. 15: unseen apps need signature collection and
     * retraining).  Uses a reduced learning rate to avoid drift.
     *
     * @pre train() has run.
     * @return final-epoch loss on the new samples.
     */
    double
    fineTune(const std::vector<scenario::PerformanceSample> &samples,
             const SystemStateModel *system, std::size_t epochs);

    /**
     * Predict the performance metric for a hypothetical deployment.
     *
     * @param history binned Watcher window S.
     * @param signature application signature k.
     * @param mode deployment mode under consideration.
     * @param future Ŝ vector (1 x events); pass an empty Matrix for
     *        FutureKind::None models.
     * @return predicted execution time (s) or p99 (ms).
     */
    double predict(const std::vector<ml::Matrix> &history,
                   const std::vector<ml::Matrix> &signature,
                   MemoryMode mode, const ml::Matrix &future) const;

    /** One row of a predictBatch() call (all pointers borrowed). */
    struct Query
    {
        const std::vector<ml::Matrix> *history = nullptr;
        const std::vector<ml::Matrix> *signature = nullptr;
        MemoryMode mode = MemoryMode::Local;

        /** Ŝ vector; nullptr allowed for FutureKind::None models. */
        const ml::Matrix *future = nullptr;
    };

    /**
     * Fused batch variant of predict(): one forward pass over B
     * stacked queries.  Rows are independent through the encoders and
     * the head, so element i is bitwise identical to the corresponding
     * single-row predict() call.
     *
     * @return one prediction per query, input order.
     */
    std::vector<double>
    predictBatch(const std::vector<Query> &queries) const;

    /** Evaluate on held-out samples (Ŝ resolved per this model's kind). */
    PerformanceEvaluation
    evaluate(const std::vector<scenario::PerformanceSample> &samples,
             const SystemStateModel *system = nullptr) const;

    FutureKind futureKind() const { return future; }
    bool trained() const { return isTrained; }

    /** All trainable parameters (for persistence). */
    std::vector<ml::Param *> params();

    /**
     * Persist the full model (weights, norm state, scalers).  The file
     * is replaced atomically (temp-write + rename).
     */
    void save(const std::string &path);

    /**
     * Restore a model saved with save(); FutureKind and ModelConfig
     * must match the constructor arguments.  Marks the model trained.
     */
    void load(const std::string &path);

    /** Stream-based core of save() (checkpoint sections reuse it). */
    void saveToStream(std::ostream &out);

    /** Stream-based core of load(). */
    void loadFromStream(std::istream &in);

    /** Resolve the Ŝ input for one sample given this model's kind. */
    ml::Matrix resolveFuture(const scenario::PerformanceSample &sample,
                             const SystemStateModel *system) const;

  private:
    FutureKind future;
    ModelConfig config;
    mutable Rng rng;
    std::unique_ptr<ml::Lstm> historyLstm1;
    std::unique_ptr<ml::Lstm> historyLstm2;
    std::unique_ptr<ml::Lstm> signatureLstm1;
    std::unique_ptr<ml::Lstm> signatureLstm2;
    std::unique_ptr<ml::Sequential> head;
    ml::StandardScaler counterScaler; ///< shared by S, k and Ŝ
    ml::StandardScaler targetScaler;
    bool isTrained = false;

    std::size_t futureWidth() const;

    /** Raw-target <-> regression-space transforms (log when enabled). */
    double encodeTarget(double target) const;
    double decodeTarget(double encoded) const;

    /** Shared epoch loop of train() and fineTune(). */
    double fitLoop(const std::vector<scenario::PerformanceSample> &samples,
                   const SystemStateModel *system, std::size_t epochs,
                   double learning_rate);

    /** Batched forward; returns (B x 1) scaled prediction. */
    ml::Matrix forwardBatch(const std::vector<ml::Matrix> &history,
                            const std::vector<ml::Matrix> &signature,
                            const ml::Matrix &mode_col,
                            const ml::Matrix &future_rows) const;

    void backwardBatch(const ml::Matrix &grad_output,
                       std::size_t batch_rows) const;
};

} // namespace adrias::models

#endif // ADRIAS_MODELS_PERFORMANCE_HH
