# Empty dependencies file for adrias_telemetry.
# This may be replaced when dependencies are built.
