#include "models/performance.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "ml/serialize.hh"

#include "common/io/durable_file.hh"
#include "common/logging.hh"
#include "common/threadpool.hh"
#include "ml/loss.hh"
#include "ml/optimizer.hh"
#include "ml/simd.hh"
#include "models/batching.hh"
#include "stats/regression_metrics.hh"
#include "testbed/counters.hh"

namespace adrias::models
{

using testbed::kNumPerfEvents;

std::string
toString(FutureKind kind)
{
    switch (kind) {
      case FutureKind::None:
        return "None";
      case FutureKind::ActualWindow:
        return "120";
      case FutureKind::ActualExec:
        return "exec";
      case FutureKind::Predicted:
        return "S^";
    }
    panic("unknown FutureKind");
}

PerformanceModel::PerformanceModel(FutureKind future_, ModelConfig config_)
    : future(future_), config(config_), rng(config_.seed)
{
    historyLstm1 =
        std::make_unique<ml::Lstm>(kNumPerfEvents, config.hidden, rng);
    historyLstm2 =
        std::make_unique<ml::Lstm>(config.hidden, config.hidden, rng);
    signatureLstm1 =
        std::make_unique<ml::Lstm>(kNumPerfEvents, config.hidden, rng);
    signatureLstm2 =
        std::make_unique<ml::Lstm>(config.hidden, config.hidden, rng);
    const std::size_t head_input =
        2 * config.hidden + 1 + futureWidth();
    head = ml::makeNonLinearHead(head_input, config.headWidth, 1,
                                 config.dropout, rng, config.headNorm);
}

std::size_t
PerformanceModel::futureWidth() const
{
    return future == FutureKind::None ? 0 : kNumPerfEvents;
}

double
PerformanceModel::encodeTarget(double target) const
{
    if (!config.logTarget)
        return target;
    if (target <= 0.0)
        fatal("PerformanceModel: non-positive target with logTarget");
    return std::log(target);
}

double
PerformanceModel::decodeTarget(double encoded) const
{
    return config.logTarget ? std::exp(encoded) : encoded;
}

std::vector<ml::Param *>
PerformanceModel::params()
{
    std::vector<ml::Param *> all;
    for (ml::Lstm *lstm : {historyLstm1.get(), historyLstm2.get(),
                           signatureLstm1.get(), signatureLstm2.get()})
        for (ml::Param *p : lstm->params())
            all.push_back(p);
    for (ml::Param *p : head->params())
        all.push_back(p);
    return all;
}

ml::Matrix
PerformanceModel::resolveFuture(const scenario::PerformanceSample &sample,
                                const SystemStateModel *system) const
{
    switch (future) {
      case FutureKind::None:
        return ml::Matrix();
      case FutureKind::ActualWindow:
        return sample.futureWindow;
      case FutureKind::ActualExec:
        return sample.futureExec;
      case FutureKind::Predicted:
        if (!system || !system->trained())
            fatal("FutureKind::Predicted needs a trained system model");
        return system->predict(sample.history);
    }
    panic("unknown FutureKind");
}

ml::Matrix
PerformanceModel::forwardBatch(const std::vector<ml::Matrix> &history,
                               const std::vector<ml::Matrix> &signature,
                               const ml::Matrix &mode_col,
                               const ml::Matrix &future_rows) const
{
    const auto h1 = historyLstm1->forwardSequence(history);
    const auto h2 = historyLstm2->forwardSequence(h1);
    const auto k1 = signatureLstm1->forwardSequence(signature);
    const auto k2 = signatureLstm2->forwardSequence(k1);

    ml::Matrix hidden = h2.back().hconcat(k2.back()).hconcat(mode_col);
    if (futureWidth() > 0)
        hidden = hidden.hconcat(future_rows);
    return head->forward(hidden);
}

void
PerformanceModel::backwardBatch(const ml::Matrix &grad_output,
                                std::size_t batch_rows) const
{
    const ml::Matrix grad_hidden = head->backward(grad_output);
    const std::size_t H = config.hidden;

    // Gradients w.r.t. mode and future inputs are discarded — they are
    // inputs, not parameters.  The two LSTM-branch slices land directly
    // in their sequence slots (no intermediate copies).
    const std::size_t bins = scenario::ScenarioRunner::kWindowBins;
    std::vector<ml::Matrix> grad_h2(bins, ml::Matrix(batch_rows, H));
    grad_hidden.colRangeInto(0, H, grad_h2.back());
    historyLstm1->backwardSequence(historyLstm2->backwardSequence(grad_h2));

    std::vector<ml::Matrix> grad_k2(bins, ml::Matrix(batch_rows, H));
    grad_hidden.colRangeInto(H, 2 * H, grad_k2.back());
    signatureLstm1->backwardSequence(
        signatureLstm2->backwardSequence(grad_k2));
}

double
PerformanceModel::train(
    const std::vector<scenario::PerformanceSample> &samples,
    const SystemStateModel *system)
{
    if (samples.size() < 4)
        fatal("PerformanceModel::train: too few samples");

    // Counter scaler pooled over histories and signatures (same units).
    std::vector<std::vector<ml::Matrix>> sequences;
    for (const auto &sample : samples) {
        sequences.push_back(sample.history);
        sequences.push_back(sample.signature);
    }
    counterScaler.fitSequences(sequences);

    ml::Matrix targets(samples.size(), 1);
    for (std::size_t i = 0; i < samples.size(); ++i)
        targets.at(i, 0) = encodeTarget(samples[i].target);
    targetScaler.fit(targets);

    return fitLoop(samples, system, config.epochs, config.learningRate);
}

double
PerformanceModel::fineTune(
    const std::vector<scenario::PerformanceSample> &samples,
    const SystemStateModel *system, std::size_t epochs)
{
    if (!isTrained)
        fatal("PerformanceModel::fineTune before train()");
    if (samples.empty())
        fatal("PerformanceModel::fineTune: no samples");
    // Scalers are deliberately kept from the original fit so the new
    // samples live in the same feature space; a reduced learning rate
    // avoids catastrophic drift away from the base model.
    return fitLoop(samples, system, epochs, config.learningRate * 0.3);
}

double
PerformanceModel::fitLoop(
    const std::vector<scenario::PerformanceSample> &samples,
    const SystemStateModel *system, std::size_t epochs,
    double learning_rate)
{
    // Training (and the future vectors it consumes) stays on the
    // scalar tier regardless of the process-wide kernel tier: fitted
    // weights feed checkpoints and goldens (DESIGN.md §16).
    const ml::ScopedKernelTier scalar_pin(ml::KernelTier::Scalar);

    // Pre-resolve the future vectors once (the Predicted variant runs
    // the system model per sample).
    std::vector<ml::Matrix> futures(samples.size());
    if (futureWidth() > 0)
        for (std::size_t i = 0; i < samples.size(); ++i)
            futures[i] = resolveFuture(samples[i], system);

    auto parameters = params();
    ml::Adam optimizer(parameters, learning_rate);
    head->setTraining(true);
    head->setInference(false);
    for (ml::Lstm *lstm : {historyLstm1.get(), historyLstm2.get(),
                           signatureLstm1.get(), signatureLstm2.get()})
        lstm->setInference(false);

    std::vector<std::size_t> order(samples.size());
    std::iota(order.begin(), order.end(), std::size_t{0});

    double epoch_loss = 0.0;
    for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
        rng.shuffle(order);
        epoch_loss = 0.0;
        std::size_t batches = 0;
        for (std::size_t begin = 0; begin < order.size();
             begin += config.batchSize) {
            const std::size_t end =
                std::min(order.size(), begin + config.batchSize);
            const std::size_t rows = end - begin;

            // Per-sample scaling of both branches runs concurrently
            // into fixed slots (consumed in index order below); the
            // scalar columns are assembled serially — they are cheap.
            std::vector<std::vector<ml::Matrix>> scaled_h(rows),
                scaled_k(rows);
            std::vector<const std::vector<ml::Matrix> *> h_ptrs, k_ptrs;
            ml::Matrix mode_col(rows, 1);
            ml::Matrix future_rows(rows, futureWidth());
            ml::Matrix target(rows, 1);
            ThreadPool::global().parallelForEach(
                rows, [&](std::size_t row) {
                    const auto &sample = samples[order[begin + row]];
                    scaled_h[row] =
                        counterScaler.transformSequence(sample.history);
                    scaled_k[row] = counterScaler.transformSequence(
                        sample.signature);
                });
            for (std::size_t i = begin; i < end; ++i) {
                const auto &sample = samples[order[i]];
                const std::size_t row = i - begin;
                mode_col.at(row, 0) =
                    sample.mode == MemoryMode::Remote ? 1.0 : 0.0;
                if (futureWidth() > 0) {
                    const ml::Matrix scaled_future =
                        counterScaler.transform(futures[order[i]]);
                    for (std::size_t e = 0; e < kNumPerfEvents; ++e)
                        future_rows.at(row, e) = scaled_future.at(0, e);
                }
                target.at(row, 0) = targetScaler.transformScalar(
                    encodeTarget(sample.target), 0);
            }
            for (const auto &seq : scaled_h)
                h_ptrs.push_back(&seq);
            for (const auto &seq : scaled_k)
                k_ptrs.push_back(&seq);

            optimizer.zeroGrad();
            const ml::Matrix prediction =
                forwardBatch(stackSequences(h_ptrs),
                             stackSequences(k_ptrs), mode_col,
                             future_rows);
            ml::Matrix grad;
            epoch_loss += ml::mseLoss(prediction, target, &grad);
            ++batches;
            backwardBatch(grad, rows);
            optimizer.clipGradNorm(config.gradClip);
            optimizer.step();
        }
        epoch_loss /= static_cast<double>(std::max<std::size_t>(1, batches));
    }

    // Training is done with the LSTMs: the stats pass and everything
    // after only runs forward, so skip their BPTT caches.
    for (ml::Lstm *lstm : {historyLstm1.get(), historyLstm2.get(),
                           signatureLstm1.get(), signatureLstm2.get()})
        lstm->setInference(true);

    // Replace BatchNorm running statistics with exact population
    // statistics (clean pass over the training set, no updates).
    head->beginStatsEstimation();
    for (std::size_t begin = 0; begin < samples.size();
         begin += config.batchSize) {
        const std::size_t end =
            std::min(samples.size(), begin + config.batchSize);
        const std::size_t rows = end - begin;
        std::vector<std::vector<ml::Matrix>> scaled_h(rows),
            scaled_k(rows);
        std::vector<const std::vector<ml::Matrix> *> h_ptrs, k_ptrs;
        ml::Matrix mode_col(rows, 1);
        ml::Matrix future_rows(rows, futureWidth());
        ThreadPool::global().parallelForEach(rows, [&](std::size_t row) {
            const auto &sample = samples[begin + row];
            scaled_h[row] =
                counterScaler.transformSequence(sample.history);
            scaled_k[row] =
                counterScaler.transformSequence(sample.signature);
        });
        for (std::size_t i = begin; i < end; ++i) {
            const auto &sample = samples[i];
            const std::size_t row = i - begin;
            mode_col.at(row, 0) =
                sample.mode == MemoryMode::Remote ? 1.0 : 0.0;
            if (futureWidth() > 0) {
                const ml::Matrix scaled_future =
                    counterScaler.transform(futures[i]);
                for (std::size_t e = 0; e < kNumPerfEvents; ++e)
                    future_rows.at(row, e) = scaled_future.at(0, e);
            }
        }
        for (const auto &seq : scaled_h)
            h_ptrs.push_back(&seq);
        for (const auto &seq : scaled_k)
            k_ptrs.push_back(&seq);
        forwardBatch(stackSequences(h_ptrs), stackSequences(k_ptrs),
                     mode_col, future_rows);
    }
    head->endStatsEstimation();

    head->setTraining(false);
    head->setInference(true);
    isTrained = true;
    return epoch_loss;
}

void
PerformanceModel::saveToStream(std::ostream &out)
{
    if (!isTrained)
        fatal("PerformanceModel::save before train()");
    out << "adrias-perf " << toString(future) << " "
        << (config.logTarget ? 1 : 0) << "\n";
    ml::saveParams(out, params());
    ml::saveStateTensors(out, head->stateTensors());
    ml::saveScaler(out, counterScaler);
    ml::saveScaler(out, targetScaler);
}

void
PerformanceModel::save(const std::string &path)
{
    std::ostringstream out;
    saveToStream(out);
    io::atomicWriteFile(path, out.str()).expect();
}

void
PerformanceModel::loadFromStream(std::istream &in)
{
    std::string magic, kind;
    int log_flag = 0;
    in >> magic >> kind >> log_flag;
    if (magic != "adrias-perf")
        fatal("PerformanceModel::load: unrecognized header");
    if (kind != toString(future))
        fatal("PerformanceModel::load: FutureKind mismatch (file has '" +
              kind + "')");
    if ((log_flag != 0) != config.logTarget)
        fatal("PerformanceModel::load: logTarget mismatch");
    ml::loadParams(in, params());
    ml::loadStateTensors(in, head->stateTensors());
    ml::loadScaler(in, counterScaler);
    ml::loadScaler(in, targetScaler);
    head->setTraining(false);
    // A loaded model only predicts until fineTune(), which re-enables
    // training mode itself.
    head->setInference(true);
    for (ml::Lstm *lstm : {historyLstm1.get(), historyLstm2.get(),
                           signatureLstm1.get(), signatureLstm2.get()})
        lstm->setInference(true);
    isTrained = true;
}

void
PerformanceModel::load(const std::string &path)
{
    const Result<std::string> content = io::readFile(path);
    if (!content)
        fatal("PerformanceModel::load: " + content.error().toString());
    std::istringstream in(content.value());
    loadFromStream(in);
}

double
PerformanceModel::predict(const std::vector<ml::Matrix> &history,
                          const std::vector<ml::Matrix> &signature,
                          MemoryMode mode, const ml::Matrix &future_vec) const
{
    if (!isTrained)
        fatal("PerformanceModel::predict before train()");
    if (history.empty() || signature.empty())
        fatal("PerformanceModel::predict needs history and signature");
    if (futureWidth() > 0 && future_vec.empty())
        fatal("PerformanceModel::predict: this model needs a future "
              "vector");

    const auto h = counterScaler.transformSequence(history);
    const auto k = counterScaler.transformSequence(signature);
    ml::Matrix mode_col(1, 1);
    mode_col.at(0, 0) = mode == MemoryMode::Remote ? 1.0 : 0.0;
    ml::Matrix future_rows(1, futureWidth());
    if (futureWidth() > 0) {
        const ml::Matrix scaled = counterScaler.transform(future_vec);
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            future_rows.at(0, e) = scaled.at(0, e);
    }
    const ml::Matrix out = forwardBatch(h, k, mode_col, future_rows);
    return decodeTarget(targetScaler.inverseTransformScalar(out.at(0, 0),
                                                            0));
}

std::vector<double>
PerformanceModel::predictBatch(const std::vector<Query> &queries) const
{
    if (!isTrained)
        fatal("PerformanceModel::predictBatch before train()");
    if (queries.empty())
        fatal("PerformanceModel::predictBatch on empty batch");

    const std::size_t rows = queries.size();

    // Dedupe each LSTM branch by sequence pointer: under epoch
    // snapshots the history is per-shard and the signature per-app, so
    // a serving batch usually holds only a handful of distinct
    // sequences per branch.  Each distinct sequence is scaled and
    // forwarded once; the head input then gathers branch outputs per
    // row.  Every branch op is row-independent (DESIGN.md §9), so the
    // gather is bitwise identical to stacking one row per query —
    // width-1 calls can never share this work across requests.
    std::vector<const std::vector<ml::Matrix> *> dist_h, dist_k;
    std::vector<std::size_t> h_slot(rows), k_slot(rows);
    std::unordered_map<const void *, std::size_t> h_seen, k_seen;
    for (std::size_t b = 0; b < rows; ++b) {
        const Query &query = queries[b];
        if (query.history == nullptr || query.history->empty() ||
            query.signature == nullptr || query.signature->empty())
            fatal("PerformanceModel::predictBatch needs history and "
                  "signature");
        const auto [hit, h_new] =
            h_seen.emplace(query.history, dist_h.size());
        if (h_new)
            dist_h.push_back(query.history);
        h_slot[b] = hit->second;
        const auto [kit, k_new] =
            k_seen.emplace(query.signature, dist_k.size());
        if (k_new)
            dist_k.push_back(query.signature);
        k_slot[b] = kit->second;
    }

    // Per-sequence scaling of both branches fans out across the pool
    // into fixed slots; the cheap scalar columns stay serial.
    std::vector<std::vector<ml::Matrix>> scaled_h(dist_h.size());
    std::vector<std::vector<ml::Matrix>> scaled_k(dist_k.size());
    ThreadPool::global().parallelForEach(
        dist_h.size() + dist_k.size(), [&](std::size_t i) {
            if (i < dist_h.size())
                scaled_h[i] =
                    counterScaler.transformSequence(*dist_h[i]);
            else
                scaled_k[i - dist_h.size()] =
                    counterScaler.transformSequence(
                        *dist_k[i - dist_h.size()]);
        });

    ml::Matrix mode_col(rows, 1);
    ml::Matrix future_rows(rows, futureWidth());
    for (std::size_t b = 0; b < rows; ++b) {
        const Query &query = queries[b];
        mode_col.at(b, 0) =
            query.mode == MemoryMode::Remote ? 1.0 : 0.0;
        if (futureWidth() > 0) {
            if (query.future == nullptr || query.future->empty())
                fatal("PerformanceModel::predictBatch: this model "
                      "needs a future vector");
            const ml::Matrix scaled =
                counterScaler.transform(*query.future);
            for (std::size_t e = 0; e < kNumPerfEvents; ++e)
                future_rows.at(b, e) = scaled.at(0, e);
        }
    }

    std::vector<const std::vector<ml::Matrix> *> h_ptrs, k_ptrs;
    h_ptrs.reserve(scaled_h.size());
    k_ptrs.reserve(scaled_k.size());
    for (const auto &seq : scaled_h)
        h_ptrs.push_back(&seq);
    for (const auto &seq : scaled_k)
        k_ptrs.push_back(&seq);

    const auto h2 = historyLstm2->forwardSequence(
        historyLstm1->forwardSequence(stackSequences(h_ptrs)));
    const auto k2 = signatureLstm2->forwardSequence(
        signatureLstm1->forwardSequence(stackSequences(k_ptrs)));
    const ml::Matrix &h_last = h2.back();
    const ml::Matrix &k_last = k2.back();

    const std::size_t H = config.hidden;
    ml::Matrix hidden(rows, 2 * H + 1 + futureWidth());
    for (std::size_t b = 0; b < rows; ++b) {
        for (std::size_t j = 0; j < H; ++j) {
            hidden.at(b, j) = h_last.at(h_slot[b], j);
            hidden.at(b, H + j) = k_last.at(k_slot[b], j);
        }
        hidden.at(b, 2 * H) = mode_col.at(b, 0);
        for (std::size_t e = 0; e < futureWidth(); ++e)
            hidden.at(b, 2 * H + 1 + e) = future_rows.at(b, e);
    }

    const ml::Matrix out = head->forward(hidden);
    std::vector<double> predictions(rows);
    for (std::size_t b = 0; b < rows; ++b)
        predictions[b] = decodeTarget(
            targetScaler.inverseTransformScalar(out.at(b, 0), 0));
    return predictions;
}

PerformanceEvaluation
PerformanceModel::evaluate(
    const std::vector<scenario::PerformanceSample> &samples,
    const SystemStateModel *system) const
{
    if (samples.empty())
        fatal("PerformanceModel::evaluate on empty set");

    PerformanceEvaluation eval;
    std::vector<double> actual_local, pred_local;
    std::vector<double> actual_remote, pred_remote;
    std::map<std::string, std::vector<double>> errors_per_app;

    for (const auto &sample : samples) {
        const ml::Matrix future_vec = resolveFuture(sample, system);
        const double prediction = predict(sample.history, sample.signature,
                                          sample.mode, future_vec);
        eval.actual.push_back(sample.target);
        eval.predicted.push_back(prediction);
        errors_per_app[sample.name].push_back(
            std::fabs(sample.target - prediction));
        if (sample.mode == MemoryMode::Local) {
            actual_local.push_back(sample.target);
            pred_local.push_back(prediction);
        } else {
            actual_remote.push_back(sample.target);
            pred_remote.push_back(prediction);
        }
    }

    eval.r2 = stats::r2Score(eval.actual, eval.predicted);
    eval.mae = stats::meanAbsoluteError(eval.actual, eval.predicted);
    if (actual_local.size() >= 2)
        eval.r2Local = stats::r2Score(actual_local, pred_local);
    if (actual_remote.size() >= 2)
        eval.r2Remote = stats::r2Score(actual_remote, pred_remote);
    for (const auto &[name, errors] : errors_per_app) {
        double total = 0.0;
        for (double e : errors)
            total += e;
        eval.maePerApp[name] =
            total / static_cast<double>(errors.size());
    }
    return eval;
}

} // namespace adrias::models
