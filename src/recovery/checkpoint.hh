/**
 * @file
 * CheckpointManager: periodic crash-consistent snapshots of a set of
 * Checkpointable sections (DESIGN.md §12).
 *
 * A snapshot (`snap-<tick>.adck`) is an in-memory record-file image —
 * a manifest record (format version, tick, section count) followed by
 * one CRC-framed record per attached section, in attach order —
 * published with a single atomic temp-write + rename.  A crash at any
 * byte of the write leaves only a `.tmp` orphan; the previous snapshot
 * stays the newest valid one.
 *
 * Restore walks snapshots newest-first: structural validation (magic,
 * CRCs, manifest, section tags) touches no state, so a truncated,
 * bit-flipped or zero-length snapshot is rejected cleanly and the next
 * older one is tried.  Only a structurally valid snapshot proceeds to
 * section restores; if a section restore then fails (version skew) the
 * fallback re-restores every section from the older snapshot, so no
 * partial state survives.
 *
 * The newest `keep` snapshots are retained (default 2: the snapshot
 * being superseded stays on disk as the fallback in case its successor
 * is later found corrupt).
 */

#ifndef ADRIAS_RECOVERY_CHECKPOINT_HH
#define ADRIAS_RECOVERY_CHECKPOINT_HH

#include <string>
#include <vector>

#include "common/error.hh"
#include "common/io/checkpointable.hh"
#include "common/io/durable_file.hh"
#include "common/types.hh"

namespace adrias::recovery
{

/** Knobs of the snapshot cadence and retention. */
struct CheckpointConfig
{
    /** Directory holding snapshots and journals. */
    std::string dir;

    /** Simulated seconds between snapshots. */
    SimTime intervalSec = 60;

    /** Newest snapshots kept on disk (older ones are pruned). */
    std::size_t keep = 2;
};

/** What CheckpointManager::restoreLatest() found and did. */
struct RestoreOutcome
{
    /** True when a snapshot was restored (false: fresh start). */
    bool restored = false;

    /** Tick of the restored snapshot (0 when !restored). */
    SimTime snapshotTick = 0;

    /** Snapshots rejected (corrupt or unrestorable) before success. */
    std::size_t rejectedSnapshots = 0;
};

/** Writes, prunes and restores multi-section snapshots. */
class CheckpointManager
{
  public:
    explicit CheckpointManager(CheckpointConfig config_);

    /**
     * Register one section.  Attach order is the serialization order
     * and must match between the writing and the recovering process
     * (tags are cross-checked at restore).
     */
    void attach(io::Checkpointable &section);

    /** Install a kill-point hook for snapshot writes (tests only). */
    void setChaosHook(io::WriteChaosHook hook) { chaos = std::move(hook); }

    /** @return true when the cadence calls for a snapshot at `now`. */
    bool
    due(SimTime now) const
    {
        return now - lastTick >= config.intervalSec;
    }

    /** Tick of the most recent successful snapshot (or restore). */
    SimTime lastCheckpointTick() const { return lastTick; }

    /** Oldest snapshot tick still on disk (0 when none). */
    SimTime oldestKeptTick() const;

    /** `<dir>/snap-<tick>.adck`. */
    std::string snapshotPath(SimTime tick) const;

    /** Snapshot ticks present on disk, ascending. */
    std::vector<SimTime> snapshotTicks() const;

    /**
     * Serialize every attached section and atomically publish
     * `snap-<now>.adck`, then prune beyond the retention window.
     *
     * @return Io when the write fails (the run can continue — the
     *         previous snapshot is still valid).
     */
    [[nodiscard]] Result<void> checkpointNow(SimTime now);

    /**
     * Restore the newest structurally-valid, fully-restorable
     * snapshot, falling back to older ones on any rejection.
     *
     * No valid snapshot at all is NOT an error — the outcome reports
     * `restored = false` and the caller starts fresh.  An error is
     * returned only when every candidate passed structural validation
     * yet failed a section restore, i.e. attached state may be partial
     * and the caller must rebuild its sections before continuing.
     */
    [[nodiscard]] Result<RestoreOutcome> restoreLatest();

    /** Delete `.tmp` orphans left by a crash mid-write. */
    void removeOrphanTempFiles() const;

  private:
    CheckpointConfig config;
    std::vector<io::Checkpointable *> sections;
    io::WriteChaosHook chaos;
    SimTime lastTick = 0;

    /** Drop all but the newest `keep` snapshots. */
    void pruneSnapshots() const;

    /** Validate + restore one snapshot file. */
    [[nodiscard]] Result<void> restoreSnapshot(const std::string &path,
                                               SimTime expectedTick,
                                               bool &stateTouched);
};

} // namespace adrias::recovery

#endif // ADRIAS_RECOVERY_CHECKPOINT_HH
