/**
 * @file
 * BatchAssembler unit tests: size-or-deadline flushing with the repo's
 * exclusive-deadline boundary, arrival-order takes, and the earliest-
 * deadline bookkeeping across partial takes.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "models/batching.hh"

namespace adrias::models
{
namespace
{

BatchAssembler
makeAssembler(std::size_t batch_size)
{
    return BatchAssembler(BatchAssemblerConfig{batch_size});
}

TEST(BatchAssembler, RejectsZeroBatchSize)
{
    EXPECT_THROW(makeAssembler(0), std::runtime_error);
}

TEST(BatchAssembler, EmptyNeverFlushes)
{
    BatchAssembler assembler = makeAssembler(4);
    EXPECT_EQ(assembler.pending(), 0u);
    EXPECT_FALSE(assembler.flushDue(0));
    EXPECT_FALSE(assembler.flushDue(1'000'000));
    EXPECT_THROW(assembler.take(), std::logic_error);
    EXPECT_THROW(assembler.earliestDeadline(), std::logic_error);
}

TEST(BatchAssembler, FlushesWhenFull)
{
    BatchAssembler assembler = makeAssembler(3);
    assembler.push(0, 1000);
    assembler.push(1, 1000);
    EXPECT_FALSE(assembler.flushDue(0));
    assembler.push(2, 1000);
    EXPECT_TRUE(assembler.flushDue(0));
}

TEST(BatchAssembler, FlushesAtLastSafeTickBeforeDeadline)
{
    // Deadlines are exclusive: a decision at tick 10 has already
    // missed deadline 10, so the last safe dispatch tick is 9 — the
    // assembler must report due at 9, not before.
    BatchAssembler assembler = makeAssembler(32);
    assembler.push(0, 10);
    EXPECT_FALSE(assembler.flushDue(7));
    EXPECT_FALSE(assembler.flushDue(8));
    EXPECT_TRUE(assembler.flushDue(9));
    EXPECT_TRUE(assembler.flushDue(10)); // already late: still due
}

TEST(BatchAssembler, EarliestDeadlineWinsRegardlessOfOrder)
{
    BatchAssembler assembler = makeAssembler(32);
    assembler.push(0, 50);
    assembler.push(1, 20); // earlier deadline arrives second
    assembler.push(2, 90);
    EXPECT_EQ(assembler.earliestDeadline(), 20);
    EXPECT_FALSE(assembler.flushDue(18));
    EXPECT_TRUE(assembler.flushDue(19));
}

TEST(BatchAssembler, TakeReturnsArrivalOrderUpToBatchSize)
{
    BatchAssembler assembler = makeAssembler(2);
    assembler.push(7, 100);
    assembler.push(8, 100);
    assembler.push(9, 100);
    const std::vector<std::size_t> first = assembler.take();
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first[0], 7u);
    EXPECT_EQ(first[1], 8u);
    EXPECT_EQ(assembler.pending(), 1u);
    const std::vector<std::size_t> second = assembler.take();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0], 9u);
    EXPECT_EQ(assembler.pending(), 0u);
}

TEST(BatchAssembler, TakeRecomputesEarliestDeadline)
{
    BatchAssembler assembler = makeAssembler(2);
    assembler.push(0, 5);  // taken in the first batch
    assembler.push(1, 6);  // taken in the first batch
    assembler.push(2, 40); // stays behind
    (void)assembler.take();
    EXPECT_EQ(assembler.earliestDeadline(), 40);
    EXPECT_FALSE(assembler.flushDue(10));
    EXPECT_TRUE(assembler.flushDue(39));
}

} // namespace
} // namespace adrias::models
