file(REMOVE_RECURSE
  "CMakeFiles/fig05_interference_heatmap.dir/fig05_interference_heatmap.cc.o"
  "CMakeFiles/fig05_interference_heatmap.dir/fig05_interference_heatmap.cc.o.d"
  "fig05_interference_heatmap"
  "fig05_interference_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_interference_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
