/**
 * @file
 * Vector-tier kernel bodies (DESIGN.md §16): AVX2+FMA batch
 * transcendentals, the register-blocked GEMM row kernel and the fused
 * LSTM gate row kernel, plus their portable scalar fallbacks.
 *
 * This is the only translation unit (with simd.hh/simd.cc) allowed to
 * touch raw intrinsics — enforced by the `raw-intrinsics` lint rule.
 * The AVX2 bodies carry per-function
 * __attribute__((target("avx2,fma"))) instead of TU-wide -mavx2: the
 * rest of this file (and the whole tree) compiles for the baseline
 * ISA, so a non-AVX2 host never fetches an AVX2 instruction — the
 * runtime __builtin_cpu_supports check picks the scalar fallback
 * before any target("avx2") function is entered.
 *
 * Math notes: the vector transcendentals run the *same* reduction and
 * polynomial as ml/fastmath.hh (exp(x) = 2^n·exp(r), two-part ln 2,
 * degree-12 Taylor, magic-constant rounding, bit-level 2^n), with two
 * deliberate deviations that define the tolerance tier:
 *  - Horner steps and the range reduction use FMA (one rounding
 *    instead of two per step), so interior results differ from scalar
 *    by ulps;
 *  - AVX2 has no 64-bit arithmetic right shift, so n is recovered via
 *    cvtpd_epi32 → cvtepi32_epi64 (nd is a small exact integer, so
 *    the int32 round-trip is exact).
 * Specials (NaN, ±0, ±inf, denormals, the −708 cutoff) are handled by
 * mask blends and agree with the scalar tier bit for bit
 * (tests/ml/test_fastmath_edges.cc).
 */

#include "ml/simd.hh"

#include "ml/fastmath.hh"

#if !defined(ADRIAS_SIMD_ENABLED)
#define ADRIAS_SIMD_ENABLED 1
#endif

#if ADRIAS_SIMD_ENABLED && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define ADRIAS_SIMD_X86 1
#else
#define ADRIAS_SIMD_X86 0
#endif

#if ADRIAS_SIMD_X86
#include <immintrin.h>
#endif

namespace adrias::ml
{

namespace
{

#if ADRIAS_SIMD_X86

#define ADRIAS_AVX2 __attribute__((target("avx2,fma")))

/** exp(x) for x <= 0 across four lanes; see fastmath::expNeg. */
ADRIAS_AVX2 inline __m256d
expNegLanes(__m256d x)
{
    const __m256d magic = _mm256_set1_pd(6755399441055744.0);
    const __m256d log2e = _mm256_set1_pd(1.4426950408889634074);
    const __m256d ln2hi = _mm256_set1_pd(6.93147180369123816490e-01);
    const __m256d ln2lo = _mm256_set1_pd(1.90821492927058770002e-10);

    // Guard lanes exactly as the scalar does: !(x > -708) returns NaN
    // for NaN and 0 otherwise.  The ordered GT compare is false for
    // NaN, so `ok` is the main-path mask.
    const __m256d ok =
        _mm256_cmp_pd(x, _mm256_set1_pd(-708.0), _CMP_GT_OQ);
    const __m256d isnan = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
    // Clamp guarded-out lanes onto a harmless input so the exponent
    // construction below never sees n < -1021 garbage.
    const __m256d xs = _mm256_blendv_pd(_mm256_set1_pd(-1.0), x, ok);

    const __m256d shifted = _mm256_fmadd_pd(xs, log2e, magic);
    const __m256d nd = _mm256_sub_pd(shifted, magic);
    // nd is a small exact integer (|n| <= 1022), so the int32
    // round-trip is exact; widen back to per-lane int64.
    const __m256i n = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(nd));
    __m256d r = _mm256_fnmadd_pd(nd, ln2hi, xs);
    r = _mm256_fnmadd_pd(nd, ln2lo, r);

    __m256d p = _mm256_set1_pd(1.0 / 479001600.0);
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 39916800.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 3628800.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 362880.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 40320.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 5040.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 720.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 120.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 24.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 6.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(0.5));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));

    const __m256i biased =
        _mm256_add_epi64(n, _mm256_set1_epi64x(1023));
    const __m256d scale =
        _mm256_castsi256_pd(_mm256_slli_epi64(biased, 52));
    __m256d result = _mm256_mul_pd(p, scale);
    // Below the cutoff: +0.0 exactly as the scalar; NaN propagates x.
    result = _mm256_and_pd(result, ok);
    return _mm256_blendv_pd(result, x, isnan);
}

/** expm1(r) for -0.25 <= r <= 0 lanes; see fastmath::expm1SmallNeg. */
ADRIAS_AVX2 inline __m256d
expm1SmallNegLanes(__m256d r)
{
    __m256d p = _mm256_set1_pd(1.0 / 479001600.0);
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 39916800.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 3628800.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 362880.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 40320.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 5040.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 720.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 120.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 24.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 6.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(0.5));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
    return _mm256_mul_pd(p, r);
}

ADRIAS_AVX2 inline __m256d
absLanes(__m256d x)
{
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
}

ADRIAS_AVX2 inline __m256d
negLanes(__m256d x)
{
    return _mm256_xor_pd(x, _mm256_set1_pd(-0.0));
}

/** Logistic sigmoid lanes, sign-split like fastmath::sigmoid. */
ADRIAS_AVX2 inline __m256d
sigmoidLanes(__m256d x)
{
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d e = expNegLanes(negLanes(absLanes(x)));
    const __m256d denom = _mm256_add_pd(one, e);
    // x >= 0 (NaN compares false, so NaN lanes take e/(1+e) = NaN,
    // matching the scalar's else branch).
    const __m256d pos =
        _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_GE_OQ);
    const __m256d num = _mm256_blendv_pd(e, one, pos);
    return _mm256_div_pd(num, denom);
}

/** tanh lanes via exp(-2|x|) with the small-|x| expm1 path blended. */
ADRIAS_AVX2 inline __m256d
tanhLanes(__m256d x)
{
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d a2 =
        _mm256_mul_pd(_mm256_set1_pd(2.0), absLanes(x));
    const __m256d small =
        _mm256_cmp_pd(a2, _mm256_set1_pd(0.25), _CMP_LE_OQ);

    // Big path: (1-e)/(1+e).  Small lanes' garbage is blended away.
    const __m256d e = expNegLanes(negLanes(a2));
    const __m256d t_big = _mm256_div_pd(_mm256_sub_pd(one, e),
                                        _mm256_add_pd(one, e));

    // Small path: -em1/(2+em1), cancellation-free.
    const __m256d em1 = expm1SmallNegLanes(negLanes(a2));
    const __m256d t_small = _mm256_div_pd(
        negLanes(em1), _mm256_add_pd(_mm256_set1_pd(2.0), em1));

    const __m256d t = _mm256_blendv_pd(t_big, t_small, small);
    // copysign(t, x): magnitude of t, sign bit of x.
    const __m256d sign = _mm256_set1_pd(-0.0);
    return _mm256_or_pd(_mm256_andnot_pd(sign, t),
                        _mm256_and_pd(sign, x));
}

ADRIAS_AVX2 void
expNegBatchAvx2(const double *x, double *out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i,
                         expNegLanes(_mm256_loadu_pd(x + i)));
    for (; i < n; ++i)
        out[i] = fastmath::expNeg(x[i]);
}

ADRIAS_AVX2 void
sigmoidBatchAvx2(const double *x, double *out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i,
                         sigmoidLanes(_mm256_loadu_pd(x + i)));
    for (; i < n; ++i)
        out[i] = fastmath::sigmoid(x[i]);
}

ADRIAS_AVX2 void
tanhBatchAvx2(const double *x, double *out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i, tanhLanes(_mm256_loadu_pd(x + i)));
    for (; i < n; ++i)
        out[i] = fastmath::tanh(x[i]);
}

/**
 * Register-blocked GEMM rows.  Main kernel: 4 output rows × 8 output
 * columns held in eight ymm accumulators across the whole k loop, so
 * the two rhs vector loads per k are shared by four rows — without
 * that sharing the kernel is load-bound (one load per FMA) and large
 * shapes like matmul_384 see almost no vector win.  Remainder rows
 * fall through to a 1-row, 16-wide path.
 *
 * Every output lane is a single FMA chain in increasing k order no
 * matter which path computes it, so results are bitwise identical
 * across the 4-row/1-row split — and therefore invariant to how
 * kernels::runRows partitions rows across threads.
 */
ADRIAS_AVX2 void
gemmRowsAvx2(const double *__restrict lhs,
             const double *__restrict rhs, double *__restrict out,
             std::size_t begin, std::size_t end, std::size_t inner,
             std::size_t width)
{
    std::size_t i = begin;
    for (; i + 4 <= end; i += 4) {
        const double *l0 = lhs + i * inner;
        const double *l1 = l0 + inner;
        const double *l2 = l1 + inner;
        const double *l3 = l2 + inner;
        double *o0 = out + i * width;
        double *o1 = o0 + width;
        double *o2 = o1 + width;
        double *o3 = o2 + width;
        std::size_t j = 0;
        for (; j + 8 <= width; j += 8) {
            __m256d a00 = _mm256_setzero_pd();
            __m256d a01 = _mm256_setzero_pd();
            __m256d a10 = _mm256_setzero_pd();
            __m256d a11 = _mm256_setzero_pd();
            __m256d a20 = _mm256_setzero_pd();
            __m256d a21 = _mm256_setzero_pd();
            __m256d a30 = _mm256_setzero_pd();
            __m256d a31 = _mm256_setzero_pd();
            for (std::size_t k = 0; k < inner; ++k) {
                const double *rr = rhs + k * width + j;
                const __m256d r0 = _mm256_loadu_pd(rr);
                const __m256d r1 = _mm256_loadu_pd(rr + 4);
                __m256d l = _mm256_broadcast_sd(l0 + k);
                a00 = _mm256_fmadd_pd(l, r0, a00);
                a01 = _mm256_fmadd_pd(l, r1, a01);
                l = _mm256_broadcast_sd(l1 + k);
                a10 = _mm256_fmadd_pd(l, r0, a10);
                a11 = _mm256_fmadd_pd(l, r1, a11);
                l = _mm256_broadcast_sd(l2 + k);
                a20 = _mm256_fmadd_pd(l, r0, a20);
                a21 = _mm256_fmadd_pd(l, r1, a21);
                l = _mm256_broadcast_sd(l3 + k);
                a30 = _mm256_fmadd_pd(l, r0, a30);
                a31 = _mm256_fmadd_pd(l, r1, a31);
            }
            _mm256_storeu_pd(o0 + j, a00);
            _mm256_storeu_pd(o0 + j + 4, a01);
            _mm256_storeu_pd(o1 + j, a10);
            _mm256_storeu_pd(o1 + j + 4, a11);
            _mm256_storeu_pd(o2 + j, a20);
            _mm256_storeu_pd(o2 + j + 4, a21);
            _mm256_storeu_pd(o3 + j, a30);
            _mm256_storeu_pd(o3 + j + 4, a31);
        }
        for (; j + 4 <= width; j += 4) {
            __m256d a0 = _mm256_setzero_pd();
            __m256d a1 = _mm256_setzero_pd();
            __m256d a2 = _mm256_setzero_pd();
            __m256d a3 = _mm256_setzero_pd();
            for (std::size_t k = 0; k < inner; ++k) {
                const __m256d r0 = _mm256_loadu_pd(rhs + k * width + j);
                a0 = _mm256_fmadd_pd(_mm256_broadcast_sd(l0 + k), r0,
                                     a0);
                a1 = _mm256_fmadd_pd(_mm256_broadcast_sd(l1 + k), r0,
                                     a1);
                a2 = _mm256_fmadd_pd(_mm256_broadcast_sd(l2 + k), r0,
                                     a2);
                a3 = _mm256_fmadd_pd(_mm256_broadcast_sd(l3 + k), r0,
                                     a3);
            }
            _mm256_storeu_pd(o0 + j, a0);
            _mm256_storeu_pd(o1 + j, a1);
            _mm256_storeu_pd(o2 + j, a2);
            _mm256_storeu_pd(o3 + j, a3);
        }
        for (; j < width; ++j) {
            double s0 = 0.0;
            double s1 = 0.0;
            double s2 = 0.0;
            double s3 = 0.0;
            for (std::size_t k = 0; k < inner; ++k) {
                const double r = rhs[k * width + j];
                s0 += l0[k] * r;
                s1 += l1[k] * r;
                s2 += l2[k] * r;
                s3 += l3[k] * r;
            }
            o0[j] = s0;
            o1[j] = s1;
            o2[j] = s2;
            o3[j] = s3;
        }
    }
    for (; i < end; ++i) {
        const double *lhs_row = lhs + i * inner;
        double *out_row = out + i * width;
        std::size_t j = 0;
        for (; j + 16 <= width; j += 16) {
            __m256d acc0 = _mm256_setzero_pd();
            __m256d acc1 = _mm256_setzero_pd();
            __m256d acc2 = _mm256_setzero_pd();
            __m256d acc3 = _mm256_setzero_pd();
            for (std::size_t k = 0; k < inner; ++k) {
                const __m256d l = _mm256_broadcast_sd(lhs_row + k);
                const double *rr = rhs + k * width + j;
                acc0 = _mm256_fmadd_pd(l, _mm256_loadu_pd(rr), acc0);
                acc1 =
                    _mm256_fmadd_pd(l, _mm256_loadu_pd(rr + 4), acc1);
                acc2 =
                    _mm256_fmadd_pd(l, _mm256_loadu_pd(rr + 8), acc2);
                acc3 = _mm256_fmadd_pd(l, _mm256_loadu_pd(rr + 12),
                                       acc3);
            }
            _mm256_storeu_pd(out_row + j, acc0);
            _mm256_storeu_pd(out_row + j + 4, acc1);
            _mm256_storeu_pd(out_row + j + 8, acc2);
            _mm256_storeu_pd(out_row + j + 12, acc3);
        }
        for (; j + 4 <= width; j += 4) {
            __m256d acc = _mm256_setzero_pd();
            for (std::size_t k = 0; k < inner; ++k)
                acc = _mm256_fmadd_pd(
                    _mm256_broadcast_sd(lhs_row + k),
                    _mm256_loadu_pd(rhs + k * width + j), acc);
            _mm256_storeu_pd(out_row + j, acc);
        }
        for (; j < width; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < inner; ++k)
                acc += lhs_row[k] * rhs[k * width + j];
            out_row[j] = acc;
        }
    }
}

ADRIAS_AVX2 void
lstmGateRowsAvx2(const double *__restrict za,
                 const double *__restrict zb,
                 const double *__restrict bias,
                 double *__restrict cell,
                 double *__restrict hidden_out, std::size_t begin,
                 std::size_t end, std::size_t hidden)
{
    const std::size_t gate_width = 4 * hidden;
    for (std::size_t r = begin; r < end; ++r) {
        const double *zar = za + r * gate_width;
        const double *zbr = zb + r * gate_width;
        double *crow = cell + r * hidden;
        double *hrow = hidden_out + r * hidden;
        std::size_t c = 0;
        for (; c + 4 <= hidden; c += 4) {
            // z = (za + zb) + bias per gate block (i/f/g/o stacked
            // H-wide); a lambda would lose the target attribute, so
            // the four blocks are spelled out.
            const std::size_t oi = c;
            const std::size_t of = hidden + c;
            const std::size_t og = 2 * hidden + c;
            const std::size_t oo = 3 * hidden + c;
            const __m256d zi = _mm256_add_pd(
                _mm256_add_pd(_mm256_loadu_pd(zar + oi),
                              _mm256_loadu_pd(zbr + oi)),
                _mm256_loadu_pd(bias + oi));
            const __m256d zf = _mm256_add_pd(
                _mm256_add_pd(_mm256_loadu_pd(zar + of),
                              _mm256_loadu_pd(zbr + of)),
                _mm256_loadu_pd(bias + of));
            const __m256d zg = _mm256_add_pd(
                _mm256_add_pd(_mm256_loadu_pd(zar + og),
                              _mm256_loadu_pd(zbr + og)),
                _mm256_loadu_pd(bias + og));
            const __m256d zo = _mm256_add_pd(
                _mm256_add_pd(_mm256_loadu_pd(zar + oo),
                              _mm256_loadu_pd(zbr + oo)),
                _mm256_loadu_pd(bias + oo));
            const __m256d gi = sigmoidLanes(zi);
            const __m256d gf = sigmoidLanes(zf);
            const __m256d gg = tanhLanes(zg);
            const __m256d go = sigmoidLanes(zo);
            const __m256d cv =
                _mm256_fmadd_pd(gf, _mm256_loadu_pd(crow + c),
                                _mm256_mul_pd(gi, gg));
            const __m256d tc = tanhLanes(cv);
            _mm256_storeu_pd(crow + c, cv);
            _mm256_storeu_pd(hrow + c, _mm256_mul_pd(go, tc));
        }
        for (; c < hidden; ++c) {
            const double zi = (zar[c] + zbr[c]) + bias[c];
            const double zf =
                (zar[hidden + c] + zbr[hidden + c]) + bias[hidden + c];
            const double zg = (zar[2 * hidden + c] +
                               zbr[2 * hidden + c]) +
                              bias[2 * hidden + c];
            const double zo = (zar[3 * hidden + c] +
                               zbr[3 * hidden + c]) +
                              bias[3 * hidden + c];
            const double gi = fastmath::sigmoid(zi);
            const double gf = fastmath::sigmoid(zf);
            const double gg = fastmath::tanh(zg);
            const double go = fastmath::sigmoid(zo);
            const double cv = gf * crow[c] + gi * gg;
            crow[c] = cv;
            hrow[c] = go * fastmath::tanh(cv);
        }
    }
}

/** One cpuid check, cached; the compile-time gate already held. */
bool
detectAvx2()
{
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("fma");
}

#endif // ADRIAS_SIMD_X86

bool
haveAvx2()
{
#if ADRIAS_SIMD_X86
    static const bool have = detectAvx2();
    return have;
#else
    return false;
#endif
}

// Portable fallbacks: element-by-element through the scalar fastmath
// functions (bitwise equal to the scalar tier) and plain loops for
// the structured kernels.  These only run when a caller invokes a
// batch entry point while the vector tier is unavailable — the
// dispatch sites in matrix.cc / lstm.cc / activation.cc consult
// effectiveKernelTier() first and take the default scalar kernels
// instead.

void
gemmRowsPortable(const double *lhs, const double *rhs, double *out,
                 std::size_t begin, std::size_t end, std::size_t inner,
                 std::size_t width)
{
    for (std::size_t i = begin; i < end; ++i) {
        const double *lhs_row = lhs + i * inner;
        double *out_row = out + i * width;
        for (std::size_t k = 0; k < inner; ++k) {
            const double l = lhs_row[k];
            const double *rhs_row = rhs + k * width;
            for (std::size_t j = 0; j < width; ++j)
                out_row[j] += l * rhs_row[j];
        }
    }
}

void
lstmGateRowsPortable(const double *za, const double *zb,
                     const double *bias, double *cell,
                     double *hidden_out, std::size_t begin,
                     std::size_t end, std::size_t hidden)
{
    const std::size_t gate_width = 4 * hidden;
    for (std::size_t r = begin; r < end; ++r) {
        const double *zar = za + r * gate_width;
        const double *zbr = zb + r * gate_width;
        double *crow = cell + r * hidden;
        double *hrow = hidden_out + r * hidden;
        for (std::size_t c = 0; c < hidden; ++c) {
            const double zi = (zar[c] + zbr[c]) + bias[c];
            const double zf =
                (zar[hidden + c] + zbr[hidden + c]) + bias[hidden + c];
            const double zg = (zar[2 * hidden + c] +
                               zbr[2 * hidden + c]) +
                              bias[2 * hidden + c];
            const double zo = (zar[3 * hidden + c] +
                               zbr[3 * hidden + c]) +
                              bias[3 * hidden + c];
            const double gi = fastmath::sigmoid(zi);
            const double gf = fastmath::sigmoid(zf);
            const double gg = fastmath::tanh(zg);
            const double go = fastmath::sigmoid(zo);
            const double cv = gf * crow[c] + gi * gg;
            crow[c] = cv;
            hrow[c] = go * fastmath::tanh(cv);
        }
    }
}

} // namespace

bool
vectorTierAvailable()
{
    return haveAvx2();
}

namespace simd
{

void
expNegBatch(const double *x, double *out, std::size_t n)
{
#if ADRIAS_SIMD_X86
    if (haveAvx2() && effectiveKernelTier() == KernelTier::Vector) {
        expNegBatchAvx2(x, out, n);
        return;
    }
#endif
    for (std::size_t i = 0; i < n; ++i)
        out[i] = fastmath::expNeg(x[i]);
}

void
sigmoidBatch(const double *x, double *out, std::size_t n)
{
#if ADRIAS_SIMD_X86
    if (haveAvx2() && effectiveKernelTier() == KernelTier::Vector) {
        sigmoidBatchAvx2(x, out, n);
        return;
    }
#endif
    for (std::size_t i = 0; i < n; ++i)
        out[i] = fastmath::sigmoid(x[i]);
}

void
tanhBatch(const double *x, double *out, std::size_t n)
{
#if ADRIAS_SIMD_X86
    if (haveAvx2() && effectiveKernelTier() == KernelTier::Vector) {
        tanhBatchAvx2(x, out, n);
        return;
    }
#endif
    for (std::size_t i = 0; i < n; ++i)
        out[i] = fastmath::tanh(x[i]);
}

void
gemmRows(const double *lhs, const double *rhs, double *out,
         std::size_t begin, std::size_t end, std::size_t inner,
         std::size_t width)
{
#if ADRIAS_SIMD_X86
    if (haveAvx2()) {
        gemmRowsAvx2(lhs, rhs, out, begin, end, inner, width);
        return;
    }
#endif
    gemmRowsPortable(lhs, rhs, out, begin, end, inner, width);
}

void
lstmGateRows(const double *za, const double *zb, const double *bias,
             double *cell, double *hidden_out, std::size_t begin,
             std::size_t end, std::size_t hidden)
{
#if ADRIAS_SIMD_X86
    if (haveAvx2()) {
        lstmGateRowsAvx2(za, zb, bias, cell, hidden_out, begin, end,
                         hidden);
        return;
    }
#endif
    lstmGateRowsPortable(za, zb, bias, cell, hidden_out, begin, end,
                         hidden);
}

} // namespace simd

} // namespace adrias::ml
