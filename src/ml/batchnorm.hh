/**
 * @file
 * 1-D batch normalization, as used inside the non-linear blocks of the
 * Adrias prediction models (Fig. 11).
 */

#ifndef ADRIAS_ML_BATCHNORM_HH
#define ADRIAS_ML_BATCHNORM_HH

#include "ml/layer.hh"

namespace adrias::ml
{

/**
 * Per-feature batch normalization with learned scale/shift and running
 * statistics for inference.
 */
class BatchNorm1d : public Layer
{
  public:
    /**
     * @param features normalized feature count.
     * @param momentum running-statistics update rate in (0, 1].
     * @param epsilon variance floor.
     */
    explicit BatchNorm1d(std::size_t features, double momentum = 0.1,
                         double epsilon = 1e-5);

    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;
    std::vector<Param *> params() override;
    void beginStatsEstimation() override;
    void endStatsEstimation() override;
    std::vector<Matrix *> stateTensors() override;

    /** Running mean (exposed for testing/serialization). */
    const Matrix &runningMean() const { return runMean; }
    /** Running variance (exposed for testing/serialization). */
    const Matrix &runningVar() const { return runVar; }
    /** Overwrite running statistics (used on model load). */
    void setRunningStats(Matrix mean, Matrix var);

  private:
    Param gamma; ///< (1 x features) learned scale
    Param beta;  ///< (1 x features) learned shift
    Matrix runMean;
    Matrix runVar;
    double momentum;
    double epsilon;

    // forward caches for backward
    Matrix lastNormalized; ///< x_hat
    Matrix lastInvStd;     ///< 1/sqrt(var + eps), (1 x features)

    // exact population-statistics estimation
    bool estimatingStats = false;
    std::size_t statCount = 0;
    Matrix statSum;
    Matrix statSumSq;
};

} // namespace adrias::ml

#endif // ADRIAS_ML_BATCHNORM_HH
