// Lint fixture: deliberate raw-rand violations.  Never compiled.
#include <cstdlib>
#include <random> // line 3: raw-rand (the <random> header itself)

int
rollDice()
{
    std::srand(42);                   // line 8: raw-rand (srand)
    std::mt19937 gen(7);              // line 9: raw-rand (mt19937)
    return std::rand() % 6 + (int)gen(); // line 10: raw-rand (rand)
}

int
fine()
{
    // Prose mentioning rand() in a comment must not match, nor should
    // the substring in a longer identifier:
    int randomSequence = 0;
    const char *msg = "call rand() for chaos"; // string: ignored
    (void)msg;
    std::mt19937 escaped(1); // NOLINT(raw-rand) sanctioned in fixture
    return randomSequence + (int)escaped();
}
