
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig02_link_limits.cc" "bench/CMakeFiles/fig02_link_limits.dir/fig02_link_limits.cc.o" "gcc" "bench/CMakeFiles/fig02_link_limits.dir/fig02_link_limits.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adrias_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/adrias_models.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/adrias_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/adrias_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/adrias_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/adrias_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/adrias_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/adrias_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adrias_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
