# Empty dependencies file for adrias_stats.
# This may be replaced when dependencies are built.
