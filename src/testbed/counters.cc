#include "testbed/counters.hh"

#include "common/logging.hh"

namespace adrias::testbed
{

std::string
perfEventName(PerfEvent event)
{
    switch (event) {
      case PerfEvent::LlcLoads:
        return "LLC_ld";
      case PerfEvent::LlcMisses:
        return "LLC_mis";
      case PerfEvent::MemLoads:
        return "MEM_ld";
      case PerfEvent::MemStores:
        return "MEM_st";
      case PerfEvent::RemoteTx:
        return "RMT_tx";
      case PerfEvent::RemoteRx:
        return "RMT_rx";
      case PerfEvent::ChannelLat:
        return "CHAN_lat";
    }
    panic("unknown PerfEvent");
}

const std::vector<PerfEvent> &
allPerfEvents()
{
    static const std::vector<PerfEvent> events{
        PerfEvent::LlcLoads,  PerfEvent::LlcMisses, PerfEvent::MemLoads,
        PerfEvent::MemStores, PerfEvent::RemoteTx,  PerfEvent::RemoteRx,
        PerfEvent::ChannelLat,
    };
    return events;
}

std::string
linkEventName(LinkEvent event)
{
    switch (event) {
      case LinkEvent::LinkTx:
        return "LNK_tx";
      case LinkEvent::LinkRx:
        return "LNK_rx";
      case LinkEvent::LinkLat:
        return "LNK_lat";
      case LinkEvent::LinkQueued:
        return "LNK_q";
    }
    panic("unknown LinkEvent");
}

const std::vector<LinkEvent> &
allLinkEvents()
{
    static const std::vector<LinkEvent> events{
        LinkEvent::LinkTx,
        LinkEvent::LinkRx,
        LinkEvent::LinkLat,
        LinkEvent::LinkQueued,
    };
    return events;
}

} // namespace adrias::testbed
