/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial, reflected) used to checksum every
 * persisted record in the DurableFile layer so torn or bit-flipped
 * files are detected instead of silently parsed.
 */

#ifndef ADRIAS_COMMON_IO_CRC32_HH
#define ADRIAS_COMMON_IO_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace adrias::io
{

/**
 * CRC-32 of a byte span.
 *
 * @param data bytes to checksum.
 * @param size number of bytes.
 * @param seed running CRC from a previous chunk (0 to start).
 * @return the (final) CRC value; feed back as `seed` to continue.
 */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

/** Convenience overload over a string/string_view payload. */
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

} // namespace adrias::io

#endif // ADRIAS_COMMON_IO_CRC32_HH
