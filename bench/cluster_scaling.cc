/**
 * @file
 * Extension (§VII) — cluster-level Adrias: per-node Watchers feeding
 * the shared Predictor, centralized (node, mode) decisions with
 * iso-QoS tie-breaking.  No paper figure exists for this; the paper
 * describes the design and we measure it: Adrias-cluster vs random and
 * least-loaded-local baselines across cluster sizes.
 */

#include <iostream>

#include "bench/common.hh"

namespace
{

using namespace adrias;

struct Report
{
    double be_median = 0.0;
    double be_p95 = 0.0;
    std::size_t completed = 0;
    std::size_t offloads = 0;
    double traffic_gb = 0.0;
};

Report
evaluate(scenario::ClusterPolicy &policy, std::size_t nodes,
         SimTime duration)
{
    scenario::ScenarioConfig config;
    config.durationSec = duration;
    config.spawnMinSec = 3;
    config.spawnMaxSec = 10; // congested stream: a single node drowns
    config.seed = 7100;
    config.maxConcurrent = 20;
    scenario::ClusterScenarioRunner runner(nodes, config);
    const auto result = runner.run(policy);

    Report report;
    report.traffic_gb = result.totalRemoteTrafficGB;
    std::vector<double> times;
    for (const auto &entry : result.allRecords()) {
        if (entry.record->cls == WorkloadClass::Interference)
            continue;
        ++report.completed;
        report.offloads += entry.record->mode == MemoryMode::Remote;
        if (entry.record->cls == WorkloadClass::BestEffort)
            times.push_back(entry.record->execTimeSec);
    }
    report.be_median = stats::quantile(times, 0.5);
    report.be_p95 = stats::quantile(times, 0.95);
    return report;
}

} // namespace

int
main()
{
    bench::banner("Extension §VII — cluster-level orchestration",
                  "design-only in the paper: centralized Adrias with "
                  "per-node telemetry and iso-QoS load tie-breaks");

    core::AdriasStack stack(bench::stackOptions());
    const SimTime duration = bench::envInt("ADRIAS_BENCH_DURATION", 1800);

    TextTable table({"config", "nodes", "completed", "BE median (s)",
                     "BE p95 (s)", "offloads", "traffic (GB)"});
    for (std::size_t nodes : {2, 4}) {
        scenario::RandomClusterPolicy random(5);
        scenario::LeastLoadedLocalPolicy least_loaded;
        core::AdriasConfig config;
        config.beta = 0.8;
        config.defaultQosP99Ms = 5.0;
        core::AdriasClusterOrchestrator adrias(stack.predictor(),
                                               stack.signatures(),
                                               config);
        for (auto *policy :
             std::initializer_list<scenario::ClusterPolicy *>{
                 &random, &least_loaded, &adrias}) {
            const Report report = evaluate(*policy, nodes, duration);
            table.addRow(std::to_string(nodes) + "x " + policy->name(),
                         {static_cast<double>(nodes),
                          static_cast<double>(report.completed),
                          report.be_median, report.be_p95,
                          static_cast<double>(report.offloads),
                          report.traffic_gb},
                         1);
        }
    }
    std::cout << table.toString();
    std::cout << "\nShape check: adrias-cluster matches least-loaded's "
                 "medians while completing comparable work and using "
                 "remote memory; random trails both.\n";
    return 0;
}
