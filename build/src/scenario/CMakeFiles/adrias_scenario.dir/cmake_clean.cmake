file(REMOVE_RECURSE
  "CMakeFiles/adrias_scenario.dir/cluster.cc.o"
  "CMakeFiles/adrias_scenario.dir/cluster.cc.o.d"
  "CMakeFiles/adrias_scenario.dir/dataset.cc.o"
  "CMakeFiles/adrias_scenario.dir/dataset.cc.o.d"
  "CMakeFiles/adrias_scenario.dir/dataset_io.cc.o"
  "CMakeFiles/adrias_scenario.dir/dataset_io.cc.o.d"
  "CMakeFiles/adrias_scenario.dir/runner.cc.o"
  "CMakeFiles/adrias_scenario.dir/runner.cc.o.d"
  "CMakeFiles/adrias_scenario.dir/signature.cc.o"
  "CMakeFiles/adrias_scenario.dir/signature.cc.o.d"
  "libadrias_scenario.a"
  "libadrias_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adrias_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
