/**
 * @file
 * Fundamental value types shared across the Adrias code base.
 *
 * The simulator is time-stepped at a one-second tick (matching the
 * Watcher's 1 Hz sampling of performance events), so simulation time is
 * carried as a whole number of seconds.
 */

#ifndef ADRIAS_COMMON_TYPES_HH
#define ADRIAS_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace adrias
{

/** Simulation time, in whole seconds since scenario start. */
using SimTime = std::int64_t;

/** Unique identifier of a deployed workload instance. */
using DeploymentId = std::uint64_t;

/** Memory allocation mode for a deployment (the decision Adrias makes). */
enum class MemoryMode : std::uint8_t
{
    Local,  ///< allocate on the borrower node's own DRAM
    Remote, ///< allocate on the lender node via the ThymesisFlow channel
};

/** Workload class: best-effort (throughput) vs latency-critical (QoS). */
enum class WorkloadClass : std::uint8_t
{
    BestEffort,
    LatencyCritical,
    Interference, ///< iBench resource-trashing microbenchmark
};

/** @return human-readable name of a memory mode ("local"/"remote"). */
std::string toString(MemoryMode mode);

/** @return human-readable name of a workload class. */
std::string toString(WorkloadClass cls);

/**
 * Parse a memory mode from its string form.
 *
 * @param text "local" or "remote" (case-sensitive).
 * @throws std::invalid_argument for any other input.
 */
MemoryMode memoryModeFromString(const std::string &text);

} // namespace adrias

#endif // ADRIAS_COMMON_TYPES_HH
