file(REMOVE_RECURSE
  "CMakeFiles/fig06_correlation.dir/fig06_correlation.cc.o"
  "CMakeFiles/fig06_correlation.dir/fig06_correlation.cc.o.d"
  "fig06_correlation"
  "fig06_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
