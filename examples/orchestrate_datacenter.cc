/**
 * @file
 * Datacenter orchestration scenario: trains the Adrias stack, then
 * replays the same randomized arrival stream under every scheduling
 * policy and compares performance, offload counts and channel traffic
 * side by side — the paper's §VI-B story as a single program.
 *
 * Usage:  ./build/examples/orchestrate_datacenter [duration-seconds]
 */

#include <cstdlib>
#include <iostream>

#include "core/adrias.hh"

using namespace adrias;

namespace
{

struct PolicyReport
{
    std::string name;
    double be_median = 0.0;
    double be_p95 = 0.0;
    double lc_p99_median = 0.0;
    std::size_t offloads = 0;
    std::size_t apps = 0;
    double traffic_gb = 0.0;
};

PolicyReport
runPolicy(scenario::PlacementPolicy &policy, SimTime duration)
{
    scenario::ScenarioConfig config;
    config.durationSec = duration;
    config.spawnMinSec = 5;
    config.spawnMaxSec = 25;
    config.seed = 4242; // identical arrival stream for every policy
    scenario::ScenarioRunner runner(config);
    const auto result = runner.run(policy);

    PolicyReport report;
    report.name = policy.name();
    report.traffic_gb = result.totalRemoteTrafficGB;
    std::vector<double> be_times, lc_p99s;
    for (const auto &record : result.records) {
        if (record.cls == WorkloadClass::Interference)
            continue;
        ++report.apps;
        report.offloads += record.mode == MemoryMode::Remote;
        if (record.cls == WorkloadClass::BestEffort)
            be_times.push_back(record.execTimeSec);
        else
            lc_p99s.push_back(record.p99Ms);
    }
    report.be_median = stats::quantile(be_times, 0.5);
    report.be_p95 = stats::quantile(be_times, 0.95);
    if (!lc_p99s.empty())
        report.lc_p99_median = stats::quantile(lc_p99s, 0.5);
    return report;
}

} // namespace

int
main(int argc, char **argv)
{
    const SimTime duration = argc > 1 ? std::atol(argv[1]) : 1800;

    std::cout << "Training the Adrias stack (offline phase)...\n";
    core::AdriasStack::BuildOptions options;
    options.scenarios = 4;
    options.scenarioDurationSec = 1500;
    options.model.epochs = 25;
    core::AdriasStack stack(options);

    std::cout << "Replaying a " << duration
              << " s arrival stream under each policy...\n\n";

    std::vector<PolicyReport> reports;
    scenario::RandomPlacement random(5);
    reports.push_back(runPolicy(random, duration));
    core::RoundRobinScheduler rr;
    reports.push_back(runPolicy(rr, duration));
    core::AllLocalScheduler all_local;
    reports.push_back(runPolicy(all_local, duration));
    core::AllRemoteScheduler all_remote;
    reports.push_back(runPolicy(all_remote, duration));
    for (double beta : {0.8, 0.7}) {
        core::AdriasConfig config;
        config.beta = beta;
        config.defaultQosP99Ms = 2.0;
        auto orchestrator = stack.makeOrchestrator(config);
        reports.push_back(runPolicy(orchestrator, duration));
    }

    TextTable table({"policy", "BE median (s)", "BE p95 (s)",
                     "LC p99 med (ms)", "offloads", "apps",
                     "traffic (GB)"});
    for (const auto &report : reports) {
        table.addRow(report.name,
                     {report.be_median, report.be_p95,
                      report.lc_p99_median,
                      static_cast<double>(report.offloads),
                      static_cast<double>(report.apps),
                      report.traffic_gb},
                     2);
    }
    std::cout << table.toString()
              << "\nExpected: adrias rows approach all-local "
                 "performance while offloading a meaningful share of "
                 "apps with less traffic than random/round-robin.\n";
    return 0;
}
