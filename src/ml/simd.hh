/**
 * @file
 * SIMD portability layer and the kernel-tier knob (DESIGN.md §16).
 *
 * Two kernel tiers exist for the ML hot path:
 *
 *  - KernelTier::Scalar (the default): the bitwise-deterministic
 *    kernels in matrix.cc / lstm.cc / fastmath.hh.  Golden tests,
 *    checkpoints and training all stand on this tier; its results are
 *    reproducible bit for bit across machines and thread counts.
 *
 *  - KernelTier::Vector: AVX2+FMA batch kernels (simd_kernels.cc)
 *    for the transcendentals, the GEMM and the fused LSTM gate loop.
 *    FMA contraction and register blocking legitimately change
 *    last-ulp rounding, so this tier is *tolerance-checked* against
 *    the scalar oracle (ctest -L simd), never bitwise.  It is still
 *    run-to-run deterministic on a fixed build and host.
 *
 * Dispatch rules: the vector tier only ever runs when (a) it was
 * compiled in (cmake -DADRIAS_SIMD=ON, the default), (b) the CPU
 * reports AVX2+FMA at runtime, and (c) a caller asked for it — via
 * setKernelTier(), ScopedKernelTier, or the ADRIAS_KERNEL_TIER=vector
 * environment knob.  When any of these fail, effectiveKernelTier()
 * degrades to Scalar and every kernel runs the default path, so the
 * tree builds and runs unchanged on non-AVX2 hosts.
 *
 * Raw intrinsics (`immintrin.h`, `_mm256_*`) are confined to
 * src/ml/simd* by the `raw-intrinsics` lint rule; generic code calls
 * the batch entry points below.
 *
 * Specials contract: the vector transcendentals agree with the scalar
 * ones *exactly* on NaN, ±0, ±inf, denormals and the −708 underflow
 * cutoff (mask-blended, not approximated); only finite interior
 * values may differ, within ulps (tests/ml/test_fastmath_edges.cc).
 */

#ifndef ADRIAS_ML_SIMD_HH
#define ADRIAS_ML_SIMD_HH

#include <cstddef>
#include <optional>
#include <string>

namespace adrias::ml
{

/** Which kernel implementations the ML hot path runs. */
enum class KernelTier
{
    Scalar, ///< bitwise-deterministic reference kernels (default)
    Vector, ///< AVX2+FMA batch kernels, tolerance-checked
};

/**
 * The requested process-wide tier.  Initialized once from the
 * ADRIAS_KERNEL_TIER environment knob ("scalar" | "vector"; unset or
 * unrecognized means Scalar), then owned by setKernelTier().
 */
KernelTier kernelTier();

/**
 * Replace the requested tier.  Not synchronized: call only from
 * single-threaded setup code (same contract as
 * setMatrixParallelConfig).
 */
void setKernelTier(KernelTier tier);

/**
 * The tier the kernels will actually run: the requested tier demoted
 * to Scalar when the vector tier is compiled out or the CPU lacks
 * AVX2/FMA.  This is the only predicate the kernel dispatch sites
 * consult.
 */
KernelTier effectiveKernelTier();

/** True when the vector tier is compiled in and the CPU supports it. */
bool vectorTierAvailable();

/** Parse a tier name ("scalar" / "vector"); nullopt when unknown. */
std::optional<KernelTier> parseKernelTier(const std::string &text);

/** Tier name for logs and bench rows ("scalar" / "vector"). */
const char *kernelTierName(KernelTier tier);

/**
 * RAII tier override — the hook benches, equivalence tests and the
 * tier-pinned serving/training paths use to run one computation on a
 * specific tier.  Same single-threaded-setup contract as
 * setKernelTier().
 */
class ScopedKernelTier
{
  public:
    explicit ScopedKernelTier(KernelTier tier) : saved(kernelTier())
    {
        setKernelTier(tier);
    }

    ~ScopedKernelTier() { setKernelTier(saved); }

    ScopedKernelTier(const ScopedKernelTier &) = delete;
    ScopedKernelTier &operator=(const ScopedKernelTier &) = delete;

  private:
    KernelTier saved;
};

/**
 * Waiver for the determinism-hazard analyzer (tools/analyze): marks a
 * parallelFor region whose floating-point accumulation belongs to the
 * vector kernel tier, where equivalence is tolerance-checked (ctest
 * -L simd) rather than bitwise.  Expands to nothing — it exists so
 * the analyzer (and readers) can see the reasoning at the site,
 * analogous to ADRIAS_NOT_CHECKPOINTED / ADRIAS_LOCK_FREE.
 */
#define ADRIAS_VECTOR_TIER_OK(reason)

namespace simd
{

/**
 * Batch transcendentals over n doubles (out may alias x).  On the
 * vector tier these run the AVX2 polynomial kernels; otherwise they
 * evaluate the scalar fastmath functions element by element, so the
 * scalar tier's results are bitwise unchanged by routing through the
 * batch entry points.
 */
void expNegBatch(const double *x, double *out, std::size_t n);
void sigmoidBatch(const double *x, double *out, std::size_t n);
void tanhBatch(const double *x, double *out, std::size_t n);

/**
 * Vector-tier GEMM rows: out[i] = lhs[i] * rhs for i in [begin, end),
 * where lhs is (rows x inner), rhs (inner x width), out (rows x
 * width) and the out rows are pre-zeroed.  Register-blocked over j
 * (16-wide FMA accumulators) with each output element's
 * k-accumulation in increasing k order — the same per-element order
 * as the scalar kernel, differing only by FMA contraction and the
 * dropped exact-zero sparsity skip.  Callers partition [0, rows)
 * through kernels::runRows, so chunking composes with the ThreadPool
 * exactly as the scalar kernel does.  Only call on the vector tier.
 */
void gemmRows(const double *lhs, const double *rhs, double *out,
              std::size_t begin, std::size_t end, std::size_t inner,
              std::size_t width);

/**
 * Vector-tier fused LSTM gate rows for the inference forward pass:
 * for rows [begin, end), computes z = (za + zb) + bias per gate,
 * the sigmoid/tanh gates, the in-place cell update and the hidden
 * output — the vectorized twin of the scalar gate loop in
 * Lstm::forwardFused (4-wide over the hidden index, scalar fastmath
 * tail).  Layouts match the fused workspaces: za/zb are
 * (rows x 4*hidden) row-major, cell/hidden_out (rows x hidden).
 * Only call on the vector tier.
 */
void lstmGateRows(const double *za, const double *zb,
                  const double *bias, double *cell, double *hidden_out,
                  std::size_t begin, std::size_t end,
                  std::size_t hidden);

} // namespace simd

} // namespace adrias::ml

#endif // ADRIAS_ML_SIMD_HH
