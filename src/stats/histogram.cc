#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "stats/percentile.hh"

namespace adrias::stats
{

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lower(lo), upper(hi), counts(bins, 0)
{
    if (bins == 0)
        fatal("Histogram needs at least one bin");
    if (!(hi > lo))
        fatal("Histogram range must be non-empty");
}

void
Histogram::add(double value)
{
    const double span = upper - lower;
    double frac = (value - lower) / span;
    frac = std::clamp(frac, 0.0, 1.0);
    auto bin = static_cast<std::size_t>(
        frac * static_cast<double>(counts.size()));
    bin = std::min(bin, counts.size() - 1);
    ++counts[bin];
    ++totalCount;
}

std::size_t
Histogram::binCount(std::size_t bin) const
{
    if (bin >= counts.size())
        panic("Histogram bin out of range");
    return counts[bin];
}

double
Histogram::binCenter(std::size_t bin) const
{
    if (bin >= counts.size())
        panic("Histogram bin out of range");
    const double width = (upper - lower) / static_cast<double>(counts.size());
    return lower + (static_cast<double>(bin) + 0.5) * width;
}

std::string
Histogram::sketch(int width) const
{
    std::size_t peak = 0;
    for (std::size_t c : counts)
        peak = std::max(peak, c);
    std::ostringstream out;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        out << formatDouble(binCenter(b), 2) << " |"
            << asciiBar(static_cast<double>(counts[b]),
                        static_cast<double>(peak ? peak : 1), width)
            << " " << counts[b] << "\n";
    }
    return out.str();
}

DistributionSummary
DistributionSummary::from(const std::vector<double> &values)
{
    DistributionSummary s;
    if (values.empty()) {
        // All order statistics of an empty sample are NaN (rendered as
        // "n/a" by formatDouble), matching quantile() and mean().
        const double nan = std::numeric_limits<double>::quiet_NaN();
        s.min = s.p25 = s.median = s.p75 = s.p95 = s.p99 = nan;
        s.max = s.mean = nan;
        return s;
    }
    s.count = values.size();
    s.min = *std::min_element(values.begin(), values.end());
    s.max = *std::max_element(values.begin(), values.end());
    s.p25 = quantile(values, 0.25);
    s.median = quantile(values, 0.50);
    s.p75 = quantile(values, 0.75);
    s.p95 = quantile(values, 0.95);
    s.p99 = quantile(values, 0.99);
    double total = 0.0;
    for (double v : values)
        total += v;
    s.mean = total / static_cast<double>(values.size());
    return s;
}

std::string
DistributionSummary::toString() const
{
    std::ostringstream out;
    out << "n=" << count << " min=" << formatDouble(min, 2)
        << " p25=" << formatDouble(p25, 2)
        << " med=" << formatDouble(median, 2)
        << " p75=" << formatDouble(p75, 2)
        << " p95=" << formatDouble(p95, 2)
        << " max=" << formatDouble(max, 2)
        << " mean=" << formatDouble(mean, 2);
    return out.str();
}

} // namespace adrias::stats
