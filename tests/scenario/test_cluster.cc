/** @file Tests for the multi-node cluster runner and naive policies. */

#include <gtest/gtest.h>

#include "scenario/cluster.hh"
#include "testbed/topology.hh"

namespace adrias::scenario
{
namespace
{

ScenarioConfig
shortConfig(std::uint64_t seed = 3, SimTime duration = 900)
{
    ScenarioConfig config;
    config.durationSec = duration;
    config.spawnMinSec = 5;
    config.spawnMaxSec = 15;
    config.seed = seed;
    return config;
}

TEST(ClusterRunner, ValidatesConfig)
{
    EXPECT_THROW(ClusterScenarioRunner(0, shortConfig()),
                 std::runtime_error);
    ScenarioConfig bad = shortConfig();
    bad.durationSec = 0;
    EXPECT_THROW(ClusterScenarioRunner(2, bad), std::runtime_error);
}

TEST(ClusterRunner, PerNodeTracesCoverEveryTick)
{
    ClusterScenarioRunner runner(3, shortConfig());
    RandomClusterPolicy policy(5);
    const ClusterResult result = runner.run(policy);
    ASSERT_EQ(result.nodes.size(), 3u);
    for (const auto &node : result.nodes) {
        EXPECT_EQ(node.trace.size(), 900u);
        EXPECT_EQ(node.concurrency.size(), 900u);
    }
}

TEST(ClusterRunner, DeterministicForSameSeed)
{
    RandomClusterPolicy policy_a(5), policy_b(5);
    const auto a = ClusterScenarioRunner(2, shortConfig(9)).run(policy_a);
    const auto b = ClusterScenarioRunner(2, shortConfig(9)).run(policy_b);
    EXPECT_DOUBLE_EQ(a.totalRemoteTrafficGB, b.totalRemoteTrafficGB);
    EXPECT_EQ(a.allRecords().size(), b.allRecords().size());
}

TEST(ClusterRunner, AllRecordsAggregatesNodes)
{
    ClusterScenarioRunner runner(2, shortConfig(11));
    RandomClusterPolicy policy(5);
    const ClusterResult result = runner.run(policy);
    std::size_t total = 0;
    for (const auto &node : result.nodes)
        total += node.records.size();
    EXPECT_EQ(result.allRecords().size(), total);
    EXPECT_GT(total, 0u);
}

TEST(ClusterRunner, RandomPolicySpreadsAcrossNodes)
{
    ClusterScenarioRunner runner(4, shortConfig(13, 1500));
    RandomClusterPolicy policy(5);
    const ClusterResult result = runner.run(policy);
    std::size_t nodes_used = 0;
    for (const auto &node : result.nodes)
        nodes_used += !node.records.empty();
    EXPECT_GE(nodes_used, 3u);
}

TEST(ClusterRunner, MoreNodesRaiseThroughput)
{
    // Same congested arrival stream: a bigger cluster completes at
    // least as many applications.
    ScenarioConfig congested = shortConfig(17, 1200);
    congested.spawnMinSec = 2;
    congested.spawnMaxSec = 6;
    congested.maxConcurrent = 12;

    auto completed = [&](std::size_t nodes) {
        ClusterScenarioRunner runner(nodes, congested);
        LeastLoadedLocalPolicy policy;
        return runner.run(policy).allRecords().size();
    };
    const std::size_t one = completed(1);
    const std::size_t four = completed(4);
    EXPECT_GT(four, one);
}

TEST(ClusterRunner, LeastLoadedBalances)
{
    ClusterScenarioRunner runner(3, shortConfig(19, 1500));
    LeastLoadedLocalPolicy policy;
    const ClusterResult result = runner.run(policy);
    std::vector<std::size_t> counts;
    for (const auto &node : result.nodes)
        counts.push_back(node.records.size());
    const auto [lo, hi] = std::minmax_element(counts.begin(),
                                              counts.end());
    ASSERT_GT(*lo, 0u);
    // Balanced within a factor of ~2 (arrival classes differ in size).
    EXPECT_LT(static_cast<double>(*hi) / static_cast<double>(*lo), 2.0);
}

TEST(ClusterRunner, LeastLoadedLocalNeverOffloads)
{
    ClusterScenarioRunner runner(2, shortConfig(23));
    LeastLoadedLocalPolicy policy;
    const ClusterResult result = runner.run(policy);
    for (const auto &entry : result.allRecords()) {
        if (entry.record->cls == WorkloadClass::Interference)
            continue; // trashers are placed randomly by the runner
        EXPECT_EQ(entry.record->mode, MemoryMode::Local);
    }
}

class BadPolicy : public ClusterPolicy
{
  public:
    std::string name() const override { return "bad"; }

    ClusterPlacement
    place(const workloads::WorkloadSpec &,
          const std::vector<NodeView> &, SimTime) override
    {
        return {99, MemoryMode::Local}; // invalid node
    }
};

TEST(ClusterRunner, InvalidNodeFromPolicyPanics)
{
    ClusterScenarioRunner runner(2, shortConfig(29));
    BadPolicy policy;
    EXPECT_THROW(runner.run(policy), std::logic_error);
}

TEST(ClusterRunner, LegacyRunsLeaveRackFieldsEmpty)
{
    ClusterScenarioRunner runner(2, shortConfig(31));
    RandomClusterPolicy policy(5);
    const ClusterResult result = runner.run(policy);
    EXPECT_TRUE(result.topologyName.empty());
    EXPECT_TRUE(result.linkTotals.empty());
}

// ---------------------------------------------------------------------
// routeOnRack: the (node, mode) → (node, server, link) routing step.
// ---------------------------------------------------------------------

/** A 1×2 rack view with hand-set availability and link health. */
struct RouteFixture
{
    testbed::Topology topo = testbed::Topology::symmetric(
        1, 2, testbed::kCxlProfile, 64.0);
    RackView view;

    RouteFixture(double avail0, double avail1, double bw0 = 1.0,
                 double bw1 = 1.0)
    {
        view.topology = &topo;
        view.servers.resize(2);
        view.servers[0] = {64.0, avail0};
        view.servers[1] = {64.0, avail1};
        view.links.resize(2);
        view.links[0] = {0, 0, bw0, 1.0};
        view.links[1] = {0, 1, bw1, 1.0};
    }
};

workloads::WorkloadSpec
specWithFootprint(double gb)
{
    workloads::WorkloadSpec spec = workloads::sparkBenchmark("sort");
    spec.memoryFootprintGb = gb;
    return spec;
}

TEST(RouteOnRack, LocalPlacementPassesThrough)
{
    RouteFixture fix(10.0, 10.0);
    ClusterPlacement placement;
    placement.mode = MemoryMode::Local;
    placement.node = 0;
    const auto routed =
        routeOnRack(placement, specWithFootprint(4.0), fix.view);
    EXPECT_EQ(routed.mode, MemoryMode::Local);
    EXPECT_EQ(routed.node, 0u);
}

TEST(RouteOnRack, PicksServerWithMostAvailableCapacity)
{
    RouteFixture fix(10.0, 40.0);
    ClusterPlacement placement;
    placement.mode = MemoryMode::Remote;
    const auto routed =
        routeOnRack(placement, specWithFootprint(4.0), fix.view);
    EXPECT_EQ(routed.mode, MemoryMode::Remote);
    EXPECT_EQ(routed.server, 1u);
    EXPECT_EQ(routed.link, 1u);
}

TEST(RouteOnRack, BreaksAvailabilityTiesTowardLowestLink)
{
    RouteFixture fix(25.0, 25.0);
    ClusterPlacement placement;
    placement.mode = MemoryMode::Remote;
    const auto routed =
        routeOnRack(placement, specWithFootprint(4.0), fix.view);
    EXPECT_EQ(routed.server, 0u);
    EXPECT_EQ(routed.link, 0u);
}

TEST(RouteOnRack, SkipsUnhealthyLinks)
{
    RouteFixture fix(40.0, 10.0, /*bw0=*/0.02);
    ClusterPlacement placement;
    placement.mode = MemoryMode::Remote;
    const auto routed =
        routeOnRack(placement, specWithFootprint(4.0), fix.view);
    EXPECT_EQ(routed.mode, MemoryMode::Remote);
    EXPECT_EQ(routed.server, 1u);
}

TEST(RouteOnRack, SkipsServersWithoutRoom)
{
    RouteFixture fix(40.0, 10.0);
    ClusterPlacement placement;
    placement.mode = MemoryMode::Remote;
    // 20 GB fits only on server 0 despite both links being healthy.
    const auto routed =
        routeOnRack(placement, specWithFootprint(20.0), fix.view);
    EXPECT_EQ(routed.server, 0u);
}

TEST(RouteOnRack, DemotesToLocalWhenNoViableRoute)
{
    RouteFixture fix(1.0, 1.0);
    ClusterPlacement placement;
    placement.mode = MemoryMode::Remote;
    const auto routed =
        routeOnRack(placement, specWithFootprint(4.0), fix.view);
    EXPECT_EQ(routed.mode, MemoryMode::Local);
    EXPECT_EQ(routed.node, 0u);
}

TEST(RouteOnRack, MissingTopologyPanics)
{
    RackView empty;
    ClusterPlacement placement;
    placement.mode = MemoryMode::Remote;
    EXPECT_THROW(routeOnRack(placement, specWithFootprint(1.0), empty),
                 std::logic_error);
}

// ---------------------------------------------------------------------
// The rack-model cluster runner.
// ---------------------------------------------------------------------

TEST(RackClusterRunner, ValidatesConfig)
{
    ScenarioConfig bad = shortConfig();
    bad.durationSec = 0;
    EXPECT_THROW(ClusterScenarioRunner(
                     testbed::topologyByName("rack-2x2-cxl"), bad),
                 std::runtime_error);
    ScenarioConfig bad_spawn = shortConfig();
    bad_spawn.spawnMinSec = 0;
    EXPECT_THROW(ClusterScenarioRunner(
                     testbed::topologyByName("rack-2x2-cxl"), bad_spawn),
                 std::runtime_error);
}

TEST(RackClusterRunner, TracksTopologyNameAndLinkTotals)
{
    const testbed::Topology topo =
        testbed::topologyByName("rack-2x2-cxl");
    ClusterScenarioRunner runner(topo, shortConfig(37));
    RandomClusterPolicy policy(5);
    const ClusterResult result = runner.run(policy);

    EXPECT_EQ(result.topologyName, "rack-2x2-cxl");
    ASSERT_EQ(result.nodes.size(), 2u);
    for (const auto &node : result.nodes) {
        EXPECT_EQ(node.trace.size(), 900u);
        EXPECT_EQ(node.concurrency.size(), 900u);
    }
    ASSERT_EQ(result.linkTotals.size(), topo.linkCount());
    double delivered = 0.0;
    for (const auto &totals : result.linkTotals) {
        EXPECT_NEAR(totals.offeredGb,
                    totals.deliveredGb + totals.queuedGb,
                    1e-6 + 1e-9 * totals.offeredGb);
        delivered += totals.deliveredGb;
    }
    EXPECT_GT(delivered, 0.0);
    EXPECT_GT(result.allRecords().size(), 0u);
}

TEST(RackClusterRunner, TinyConcurrencyCapDropsArrivals)
{
    ScenarioConfig congested = shortConfig(41);
    congested.spawnMinSec = 1;
    congested.spawnMaxSec = 2;
    congested.maxConcurrent = 1;
    ClusterScenarioRunner runner(
        testbed::topologyByName("rack-2x2-cxl"), congested);
    RandomClusterPolicy policy(5);
    const ClusterResult result = runner.run(policy);
    EXPECT_GT(result.droppedArrivals, 0u);
}

/** Ignores rack state entirely: always (n0, Remote, s0, link 0). */
class StubbornRemotePolicy : public ClusterPolicy
{
  public:
    std::string name() const override { return "stubborn-remote"; }

    ClusterPlacement
    place(const workloads::WorkloadSpec &,
          const std::vector<NodeView> &, SimTime) override
    {
        ClusterPlacement placement;
        placement.mode = MemoryMode::Remote;
        return placement;
    }

    ClusterPlacement
    placeRack(const workloads::WorkloadSpec &spec,
              const std::vector<NodeView> &nodes, const RackView &,
              SimTime now) override
    {
        return place(spec, nodes, now);
    }
};

TEST(RackClusterRunner, CapacityExhaustionCountsRemoteFallbacks)
{
    // One 6 GB server: a policy that insists on remote placements must
    // be demoted to the local pool once the server fills, and the
    // runner counts every demotion.
    testbed::Topology topo("tiny");
    topo.addNode({"n0", {}});
    topo.addServer({"s0", 6.0, 15.0, {}});
    topo.addLink(0, 0, testbed::kCxlProfile);
    topo.validate();

    ScenarioConfig config = shortConfig(43);
    config.ibenchFraction = 0.0; // every arrival goes through the policy
    ClusterScenarioRunner runner(topo, config);
    StubbornRemotePolicy policy;
    const ClusterResult result = runner.run(policy);

    EXPECT_GT(result.remoteFallbacks, 0u);
    std::size_t local_records = 0;
    for (const auto &entry : result.allRecords())
        local_records += entry.record->mode == MemoryMode::Local;
    EXPECT_GT(local_records, 0u);
}

/** Returns a link that does not connect its claimed endpoints. */
class BadLinkPolicy : public StubbornRemotePolicy
{
  public:
    ClusterPlacement
    placeRack(const workloads::WorkloadSpec &,
              const std::vector<NodeView> &, const RackView &,
              SimTime) override
    {
        ClusterPlacement placement;
        placement.mode = MemoryMode::Remote;
        placement.node = 0;
        placement.server = 0;
        placement.link = 99;
        return placement;
    }
};

TEST(RackClusterRunner, InvalidLinkFromPolicyPanics)
{
    ScenarioConfig config = shortConfig(47);
    config.ibenchFraction = 0.0;
    ClusterScenarioRunner runner(
        testbed::topologyByName("rack-2x2-cxl"), config);
    BadLinkPolicy policy;
    EXPECT_THROW(runner.run(policy), std::logic_error);
}

TEST(RackClusterRunner, DisconnectedLinkTriplePanics)
{
    // Link 1 of the 2x2 rack is n0-s1: claiming it reaches s0 is a
    // policy bug the runner must refuse to simulate.
    class MismatchedPolicy : public StubbornRemotePolicy
    {
      public:
        ClusterPlacement
        placeRack(const workloads::WorkloadSpec &,
                  const std::vector<NodeView> &, const RackView &,
                  SimTime) override
        {
            ClusterPlacement placement;
            placement.mode = MemoryMode::Remote;
            placement.node = 0;
            placement.server = 0;
            placement.link = 1;
            return placement;
        }
    };
    ScenarioConfig config = shortConfig(53);
    config.ibenchFraction = 0.0;
    ClusterScenarioRunner runner(
        testbed::topologyByName("rack-2x2-cxl"), config);
    MismatchedPolicy policy;
    EXPECT_THROW(runner.run(policy), std::logic_error);
}

} // namespace
} // namespace adrias::scenario
