/**
 * @file
 * Quickstart: the five-minute tour of the Adrias library.
 *
 * 1. Simulate the ThymesisFlow testbed for a single application in
 *    both memory modes.
 * 2. Build the full Adrias stack (signatures, traces, trained models).
 * 3. Ask the orchestrator to place arriving applications and inspect
 *    its decisions.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "core/adrias.hh"

using namespace adrias;

int
main()
{
    std::cout << "== 1. Raw testbed: one Spark job, local vs remote ==\n";
    testbed::Testbed bed;
    bed.setNoise(0.0);
    for (MemoryMode mode : {MemoryMode::Local, MemoryMode::Remote}) {
        workloads::WorkloadInstance app(
            1, workloads::sparkBenchmark("lr"), mode, 0, 7);
        SimTime now = 0;
        while (!app.finished()) {
            const auto tick = bed.tick({app.load()});
            app.advance(tick.outcomes.at(0), ++now);
        }
        std::cout << "  lr on " << toString(mode) << " memory: "
                  << app.executionTimeSec() << " s\n";
    }

    std::cout << "\n== 2. Offline phase: train the prediction stack ==\n";
    core::AdriasStack::BuildOptions options;
    options.scenarios = 3;          // keep the demo quick
    options.scenarioDurationSec = 1200;
    options.model.epochs = 20;
    core::AdriasStack stack(options);
    std::cout << "  trained on " << stack.traces().size()
              << " randomized scenarios; "
              << stack.signatures().size()
              << " application signatures collected\n";

    std::cout << "\n== 3. Online phase: orchestrate arrivals ==\n";
    core::AdriasConfig config;
    config.beta = 0.7;               // accept up to ~43% slowdown
    config.defaultQosP99Ms = 2.0;    // LC QoS target
    auto orchestrator = stack.makeOrchestrator(config);

    // Warm telemetry: run a short busy scenario through the policy.
    scenario::ScenarioConfig scenario_config;
    scenario_config.durationSec = 900;
    scenario_config.spawnMinSec = 5;
    scenario_config.spawnMaxSec = 25;
    scenario_config.seed = 99;
    scenario::ScenarioRunner runner(scenario_config);
    const auto result = runner.run(orchestrator);

    std::size_t local = 0, remote = 0;
    for (const auto &record : result.records) {
        if (record.cls == WorkloadClass::Interference)
            continue;
        (record.mode == MemoryMode::Remote ? remote : local) += 1;
    }
    std::cout << "  placements: " << local << " local, " << remote
              << " remote (" << orchestrator.stats().bootstrapPlacements
              << " signature bootstraps)\n"
              << "  channel traffic: "
              << formatDouble(result.totalRemoteTrafficGB, 2) << " GB\n"
              << "\nDone. See examples/characterization.cc and "
                 "examples/orchestrate_datacenter.cc for deeper dives.\n";
    return 0;
}
