/**
 * @file
 * The system-state prediction model (paper Fig. 11a, Table I): two
 * stacked LSTM layers over the binned 120 s history window, followed by
 * the non-linear head, predicting the mean of every monitored event
 * over the next 120 s.
 */

#ifndef ADRIAS_MODELS_SYSTEM_STATE_HH
#define ADRIAS_MODELS_SYSTEM_STATE_HH

#include <iosfwd>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "ml/lstm.hh"
#include "ml/scaler.hh"
#include "ml/sequential.hh"
#include "models/config.hh"
#include "scenario/dataset.hh"

namespace adrias::models
{

/** Per-event and aggregate test metrics (what Table I reports). */
struct SystemStateEvaluation
{
    /** R² per monitored event. */
    std::vector<double> r2PerEvent;

    /** Average R² across events. */
    double r2Average = 0.0;

    /** Flattened actual/predicted pairs for residual plots (Fig. 12). */
    std::vector<double> actual;
    std::vector<double> predicted;
};

/** Forecasts the mean of each performance event over the horizon. */
class SystemStateModel
{
  public:
    explicit SystemStateModel(ModelConfig config = {});

    /**
     * Fit scalers and train on the given samples.
     *
     * @return final-epoch training loss (scaled units).
     */
    double train(const std::vector<scenario::SystemStateSample> &samples);

    /**
     * Predict the horizon mean for one history window.
     *
     * @param history binned window (kWindowBins steps of 1 x events).
     * @return (1 x events) prediction in counter units.
     */
    ml::Matrix predict(const std::vector<ml::Matrix> &history) const;

    /**
     * Fused batch variant of predict(): one forward pass over B
     * stacked histories.  Rows are independent through the whole
     * network, so row i of the result is bitwise identical to
     * predict(*histories[i]).
     *
     * @param histories one binned window per batch row (borrowed; all
     *        the same length).
     * @return one (1 x events) prediction per row, input order.
     */
    std::vector<ml::Matrix>
    predictBatch(const std::vector<const std::vector<ml::Matrix> *>
                     &histories) const;

    /** Evaluate R² per event on held-out samples. */
    SystemStateEvaluation
    evaluate(const std::vector<scenario::SystemStateSample> &samples) const;

    /** @return true after train() has run. */
    bool trained() const { return isTrained; }

    /** All trainable parameters (for persistence). */
    std::vector<ml::Param *> params();

    /**
     * Persist the full model (weights, normalization state, scalers)
     * so a serving process can reload it without retraining.  The file
     * is replaced atomically (temp-write + rename): a crash mid-save
     * leaves either the old file or the new one, never a torn mix.
     */
    void save(const std::string &path);

    /**
     * Restore a model saved with save(); topology (ModelConfig) must
     * match the constructor arguments.  Marks the model trained.
     */
    void load(const std::string &path);

    /** Stream-based core of save() (checkpoint sections reuse it). */
    void saveToStream(std::ostream &out);

    /** Stream-based core of load(). */
    void loadFromStream(std::istream &in);

  private:
    ModelConfig config;
    mutable Rng rng;
    std::unique_ptr<ml::Lstm> lstm1;
    std::unique_ptr<ml::Lstm> lstm2;
    std::unique_ptr<ml::Sequential> head;
    ml::StandardScaler inputScaler;
    ml::StandardScaler targetScaler;
    bool isTrained = false;

    /**
     * Batched forward pass to the head output.
     *
     * @param batch time-major scaled sequence of (B x events).
     * @return (B x events) scaled prediction.
     */
    ml::Matrix forwardBatch(const std::vector<ml::Matrix> &batch) const;

    /** Backward from head-output gradient through both LSTMs. */
    void backwardBatch(const ml::Matrix &grad_output,
                       std::size_t batch_rows) const;
};

} // namespace adrias::models

#endif // ADRIAS_MODELS_SYSTEM_STATE_HH
