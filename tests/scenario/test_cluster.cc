/** @file Tests for the multi-node cluster runner and naive policies. */

#include <gtest/gtest.h>

#include "scenario/cluster.hh"

namespace adrias::scenario
{
namespace
{

ScenarioConfig
shortConfig(std::uint64_t seed = 3, SimTime duration = 900)
{
    ScenarioConfig config;
    config.durationSec = duration;
    config.spawnMinSec = 5;
    config.spawnMaxSec = 15;
    config.seed = seed;
    return config;
}

TEST(ClusterRunner, ValidatesConfig)
{
    EXPECT_THROW(ClusterScenarioRunner(0, shortConfig()),
                 std::runtime_error);
    ScenarioConfig bad = shortConfig();
    bad.durationSec = 0;
    EXPECT_THROW(ClusterScenarioRunner(2, bad), std::runtime_error);
}

TEST(ClusterRunner, PerNodeTracesCoverEveryTick)
{
    ClusterScenarioRunner runner(3, shortConfig());
    RandomClusterPolicy policy(5);
    const ClusterResult result = runner.run(policy);
    ASSERT_EQ(result.nodes.size(), 3u);
    for (const auto &node : result.nodes) {
        EXPECT_EQ(node.trace.size(), 900u);
        EXPECT_EQ(node.concurrency.size(), 900u);
    }
}

TEST(ClusterRunner, DeterministicForSameSeed)
{
    RandomClusterPolicy policy_a(5), policy_b(5);
    const auto a = ClusterScenarioRunner(2, shortConfig(9)).run(policy_a);
    const auto b = ClusterScenarioRunner(2, shortConfig(9)).run(policy_b);
    EXPECT_DOUBLE_EQ(a.totalRemoteTrafficGB, b.totalRemoteTrafficGB);
    EXPECT_EQ(a.allRecords().size(), b.allRecords().size());
}

TEST(ClusterRunner, AllRecordsAggregatesNodes)
{
    ClusterScenarioRunner runner(2, shortConfig(11));
    RandomClusterPolicy policy(5);
    const ClusterResult result = runner.run(policy);
    std::size_t total = 0;
    for (const auto &node : result.nodes)
        total += node.records.size();
    EXPECT_EQ(result.allRecords().size(), total);
    EXPECT_GT(total, 0u);
}

TEST(ClusterRunner, RandomPolicySpreadsAcrossNodes)
{
    ClusterScenarioRunner runner(4, shortConfig(13, 1500));
    RandomClusterPolicy policy(5);
    const ClusterResult result = runner.run(policy);
    std::size_t nodes_used = 0;
    for (const auto &node : result.nodes)
        nodes_used += !node.records.empty();
    EXPECT_GE(nodes_used, 3u);
}

TEST(ClusterRunner, MoreNodesRaiseThroughput)
{
    // Same congested arrival stream: a bigger cluster completes at
    // least as many applications.
    ScenarioConfig congested = shortConfig(17, 1200);
    congested.spawnMinSec = 2;
    congested.spawnMaxSec = 6;
    congested.maxConcurrent = 12;

    auto completed = [&](std::size_t nodes) {
        ClusterScenarioRunner runner(nodes, congested);
        LeastLoadedLocalPolicy policy;
        return runner.run(policy).allRecords().size();
    };
    const std::size_t one = completed(1);
    const std::size_t four = completed(4);
    EXPECT_GT(four, one);
}

TEST(ClusterRunner, LeastLoadedBalances)
{
    ClusterScenarioRunner runner(3, shortConfig(19, 1500));
    LeastLoadedLocalPolicy policy;
    const ClusterResult result = runner.run(policy);
    std::vector<std::size_t> counts;
    for (const auto &node : result.nodes)
        counts.push_back(node.records.size());
    const auto [lo, hi] = std::minmax_element(counts.begin(),
                                              counts.end());
    ASSERT_GT(*lo, 0u);
    // Balanced within a factor of ~2 (arrival classes differ in size).
    EXPECT_LT(static_cast<double>(*hi) / static_cast<double>(*lo), 2.0);
}

TEST(ClusterRunner, LeastLoadedLocalNeverOffloads)
{
    ClusterScenarioRunner runner(2, shortConfig(23));
    LeastLoadedLocalPolicy policy;
    const ClusterResult result = runner.run(policy);
    for (const auto &entry : result.allRecords()) {
        if (entry.record->cls == WorkloadClass::Interference)
            continue; // trashers are placed randomly by the runner
        EXPECT_EQ(entry.record->mode, MemoryMode::Local);
    }
}

class BadPolicy : public ClusterPolicy
{
  public:
    std::string name() const override { return "bad"; }

    ClusterPlacement
    place(const workloads::WorkloadSpec &,
          const std::vector<NodeView> &, SimTime) override
    {
        return {99, MemoryMode::Local}; // invalid node
    }
};

TEST(ClusterRunner, InvalidNodeFromPolicyPanics)
{
    ClusterScenarioRunner runner(2, shortConfig(29));
    BadPolicy policy;
    EXPECT_THROW(runner.run(policy), std::logic_error);
}

} // namespace
} // namespace adrias::scenario
