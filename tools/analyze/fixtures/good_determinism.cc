// Analyzer fixture: determinism-clean counterparts of
// bad_determinism.cc.  Never compiled — parsed by tools/analyze
// self-tests.

#include "common/csv.hh"
#include "common/io/binary.hh"
#include "common/threadpool.hh"

namespace adrias::fixture
{

/** Sorted view before writing: must NOT be flagged. */
void
dumpIndex(io::BinaryWriter &out,
          const std::unordered_map<std::string, int> &index)
{
    std::vector<std::pair<std::string, int>> sorted(index.begin(),
                                                    index.end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto &entry : sorted)
        out.writeU64(static_cast<std::uint64_t>(entry.second));
}

/** Unordered iteration with no reproducible sink: must NOT be
 *  flagged (a live tally never hits disk). */
int
countLive(const std::unordered_map<std::string, int> &index)
{
    int live = 0;
    for (const auto &entry : index) {
        if (entry.second > 0)
            ++live;
    }
    return live;
}

/** The blessed reduction: chunk-local accumulator, per-chunk slot,
 *  combination in chunk index order after the join. */
double
meanLatency(ThreadPool &pool, const std::vector<double> &samples)
{
    std::vector<double> partials(pool.threadCount(), 0.0);
    pool.parallelFor(samples.size(),
                     [&](std::size_t chunk, std::size_t begin,
                         std::size_t end) {
                         double local = 0.0;
                         for (std::size_t i = begin; i < end; ++i)
                             local += samples[i];
                         partials[chunk] += local;
                     });
    double total = 0.0;
    for (double partial : partials)
        total += partial;
    return total / static_cast<double>(samples.size());
}

/** Vector-tier waiver inside the region: must NOT be flagged.  The
 *  macro asserts the kernel's relaxed-determinism contract is covered
 *  by `ctest -L simd` instead of the bitwise contract. */
double
vectorNorm(ThreadPool &pool, const std::vector<double> &samples)
{
    double acc = 0.0;
    pool.parallelFor(samples.size(),
                     [&](std::size_t begin, std::size_t end) {
                         ADRIAS_VECTOR_TIER_OK(
                             "fma reassociation checked by simd suite");
                         for (std::size_t i = begin; i < end; ++i)
                             acc += samples[i] * samples[i];
                     });
    return acc;
}

} // namespace adrias::fixture
