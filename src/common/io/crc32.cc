#include "common/io/crc32.hh"

#include <array>

namespace adrias::io
{

namespace
{

/** Reflected CRC-32 lookup table, built once at first use. */
const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed)
{
    const auto &table = crcTable();
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t crc = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::uint32_t
crc32(std::string_view data, std::uint32_t seed)
{
    return crc32(data.data(), data.size(), seed);
}

} // namespace adrias::io
