/**
 * @file
 * Exact unit tests of the orchestration decision rules (paper §V-C)
 * using a stub predictor with controlled outputs:
 *
 *   BE:  local  iff  t̂_local < β · t̂_remote
 *   LC:  remote iff  p̂99_remote ≤ QoS
 */

#include <gtest/gtest.h>

#include "core/adrias.hh"

namespace adrias::core
{
namespace
{

/** Predictor stub returning fixed per-mode values. */
class StubPredictor : public models::PredictorBase
{
  public:
    double localValue = 100.0;
    double remoteValue = 120.0;

    ml::Matrix
    predictSystemState(const telemetry::Watcher &) const override
    {
        return ml::Matrix(1, testbed::kNumPerfEvents);
    }

    double
    predictPerformance(WorkloadClass, const std::vector<ml::Matrix> &,
                       const std::vector<ml::Matrix> &,
                       MemoryMode mode) const override
    {
        return mode == MemoryMode::Local ? localValue : remoteValue;
    }

    bool trained() const override { return true; }
};

/** Fixture with warm telemetry and a known signature. */
class DecisionRuleTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        signatures.put("sort",
                       std::vector<ml::Matrix>(
                           scenario::ScenarioRunner::kWindowBins,
                           ml::Matrix(1, testbed::kNumPerfEvents)));
        signatures.put("redis",
                       std::vector<ml::Matrix>(
                           scenario::ScenarioRunner::kWindowBins,
                           ml::Matrix(1, testbed::kNumPerfEvents)));
        testbed::CounterSample sample{};
        for (int i = 0; i < 150; ++i)
            watcher.record(sample);
    }

    StubPredictor stub;
    scenario::SignatureStore signatures;
    telemetry::Watcher watcher{512};
};

TEST_F(DecisionRuleTest, BeRuleExactBoundary)
{
    // beta = 0.8: local iff t_local < 0.8 * t_remote.
    AdriasConfig config;
    config.beta = 0.8;
    const auto &sort = workloads::sparkBenchmark("sort");

    stub.localValue = 79.9;
    stub.remoteValue = 100.0;
    {
        AdriasOrchestrator orchestrator(stub, signatures, config);
        EXPECT_EQ(orchestrator.place(sort, watcher, 0),
                  MemoryMode::Local);
    }

    stub.localValue = 80.1; // just over beta * remote -> remote
    {
        AdriasOrchestrator orchestrator(stub, signatures, config);
        EXPECT_EQ(orchestrator.place(sort, watcher, 0),
                  MemoryMode::Remote);
    }

    stub.localValue = 80.0; // equality is NOT strictly less -> remote
    {
        AdriasOrchestrator orchestrator(stub, signatures, config);
        EXPECT_EQ(orchestrator.place(sort, watcher, 0),
                  MemoryMode::Remote);
    }
}

TEST_F(DecisionRuleTest, BeBetaOneReducesToFasterMode)
{
    AdriasConfig config;
    config.beta = 1.0;
    const auto &sort = workloads::sparkBenchmark("sort");

    stub.localValue = 99.0;
    stub.remoteValue = 100.0;
    AdriasOrchestrator faster_local(stub, signatures, config);
    EXPECT_EQ(faster_local.place(sort, watcher, 0), MemoryMode::Local);

    stub.localValue = 101.0;
    AdriasOrchestrator faster_remote(stub, signatures, config);
    EXPECT_EQ(faster_remote.place(sort, watcher, 0),
              MemoryMode::Remote);
}

TEST_F(DecisionRuleTest, LcRuleExactBoundary)
{
    // remote iff p99_remote <= QoS (inclusive).
    AdriasConfig config;
    config.defaultQosP99Ms = 2.0;
    const auto &redis = workloads::redisSpec();

    stub.remoteValue = 2.0;
    {
        AdriasOrchestrator orchestrator(stub, signatures, config);
        EXPECT_EQ(orchestrator.place(redis, watcher, 0),
                  MemoryMode::Remote);
    }

    stub.remoteValue = 2.01;
    {
        AdriasOrchestrator orchestrator(stub, signatures, config);
        EXPECT_EQ(orchestrator.place(redis, watcher, 0),
                  MemoryMode::Local);
    }
}

TEST_F(DecisionRuleTest, LcUsesPerAppQos)
{
    AdriasConfig config;
    config.defaultQosP99Ms = 1.0;
    config.qosP99Ms["redis"] = 5.0;
    stub.remoteValue = 3.0; // above default, below redis override
    AdriasOrchestrator orchestrator(stub, signatures, config);
    EXPECT_EQ(orchestrator.place(workloads::redisSpec(), watcher, 0),
              MemoryMode::Remote);
}

TEST_F(DecisionRuleTest, StatsTrackDecisions)
{
    AdriasConfig config;
    config.beta = 0.8;
    stub.localValue = 50.0;
    stub.remoteValue = 100.0;
    AdriasOrchestrator orchestrator(stub, signatures, config);
    const auto &sort = workloads::sparkBenchmark("sort");
    orchestrator.place(sort, watcher, 0); // local
    stub.localValue = 200.0;
    orchestrator.place(sort, watcher, 1); // remote
    EXPECT_EQ(orchestrator.stats().localPlacements, 1u);
    EXPECT_EQ(orchestrator.stats().remotePlacements, 1u);
}

TEST_F(DecisionRuleTest, TrasherPlacementPanics)
{
    AdriasOrchestrator orchestrator(stub, signatures, {});
    // Trashers have signatures? They never do, so they'd bootstrap;
    // force the panic path by registering one.
    signatures.put("ibench-cpu",
                   std::vector<ml::Matrix>(
                       scenario::ScenarioRunner::kWindowBins,
                       ml::Matrix(1, testbed::kNumPerfEvents)));
    EXPECT_THROW(
        orchestrator.place(
            workloads::ibenchSpec(workloads::IBenchKind::Cpu), watcher,
            0),
        std::logic_error);
}

// --- cluster decision rules --------------------------------------------

/** Stub with per-node values keyed by congestion in the watcher. */
class PerNodeStub : public models::PredictorBase
{
  public:
    // predictPerformance sees only the history matrices; encode the
    // node id in the first history value.
    mutable std::map<int, std::pair<double, double>> valuesByNode;

    ml::Matrix
    predictSystemState(const telemetry::Watcher &) const override
    {
        return ml::Matrix(1, testbed::kNumPerfEvents);
    }

    double
    predictPerformance(WorkloadClass,
                       const std::vector<ml::Matrix> &history,
                       const std::vector<ml::Matrix> &,
                       MemoryMode mode) const override
    {
        const int node =
            static_cast<int>(history.front().at(0, 0) + 0.5);
        const auto [local, remote] = valuesByNode.at(node);
        return mode == MemoryMode::Local ? local : remote;
    }

    bool trained() const override { return true; }
};

TEST(ClusterDecisionRules, PicksBestNodeAndBreaksIsoTiesByLoad)
{
    PerNodeStub stub;
    scenario::SignatureStore signatures;
    signatures.put("sort",
                   std::vector<ml::Matrix>(
                       scenario::ScenarioRunner::kWindowBins,
                       ml::Matrix(1, testbed::kNumPerfEvents)));

    // Watchers whose first counter encodes the node id.
    telemetry::Watcher w0(512), w1(512);
    testbed::CounterSample s0{}, s1{};
    s0[0] = 0.0;
    s1[0] = 1.0;
    for (int i = 0; i < 150; ++i) {
        w0.record(s0);
        w1.record(s1);
    }

    AdriasConfig config;
    config.beta = 0.8;
    AdriasClusterOrchestrator orchestrator(stub, signatures, config);
    const auto &sort = workloads::sparkBenchmark("sort");

    // Node 1 clearly faster: chosen regardless of load.
    stub.valuesByNode[0] = {100.0, 200.0};
    stub.valuesByNode[1] = {60.0, 200.0};
    std::vector<scenario::NodeView> nodes{{&w0, 1}, {&w1, 9}};
    auto placement = orchestrator.place(sort, nodes, 0);
    EXPECT_EQ(placement.node, 1u);
    EXPECT_EQ(placement.mode, MemoryMode::Local);

    // Iso predictions (within 5%): the less-loaded node wins.
    stub.valuesByNode[0] = {100.0, 200.0};
    stub.valuesByNode[1] = {101.0, 200.0};
    nodes[0].running = 9;
    nodes[1].running = 1;
    placement = orchestrator.place(sort, nodes, 0);
    EXPECT_EQ(placement.node, 1u);
}

TEST(ClusterDecisionRules, LcPrefersQosMeetingRemote)
{
    PerNodeStub stub;
    scenario::SignatureStore signatures;
    signatures.put("redis",
                   std::vector<ml::Matrix>(
                       scenario::ScenarioRunner::kWindowBins,
                       ml::Matrix(1, testbed::kNumPerfEvents)));

    telemetry::Watcher w0(512), w1(512);
    testbed::CounterSample s0{}, s1{};
    s0[0] = 0.0;
    s1[0] = 1.0;
    for (int i = 0; i < 150; ++i) {
        w0.record(s0);
        w1.record(s1);
    }

    AdriasConfig config;
    config.defaultQosP99Ms = 2.0;
    AdriasClusterOrchestrator orchestrator(stub, signatures, config);
    std::vector<scenario::NodeView> nodes{{&w0, 3}, {&w1, 3}};

    // Only node 1's remote meets QoS.
    stub.valuesByNode[0] = {1.0, 5.0};
    stub.valuesByNode[1] = {1.0, 1.5};
    auto placement =
        orchestrator.place(workloads::redisSpec(), nodes, 0);
    EXPECT_EQ(placement.node, 1u);
    EXPECT_EQ(placement.mode, MemoryMode::Remote);

    // No remote meets QoS: best local.
    stub.valuesByNode[0] = {0.8, 5.0};
    stub.valuesByNode[1] = {1.2, 5.0};
    placement = orchestrator.place(workloads::redisSpec(), nodes, 0);
    EXPECT_EQ(placement.node, 0u);
    EXPECT_EQ(placement.mode, MemoryMode::Local);
}

} // namespace
} // namespace adrias::core
