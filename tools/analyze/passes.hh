/**
 * @file
 * Internal pass entry points for tools/analyze — one function per
 * pass, each appending raw (unsuppressed) findings.  The driver in
 * analyze.cc owns pass registration, NOLINT filtering and ordering.
 * Not installed; include only from tools/analyze sources and tests.
 */

#ifndef ADRIAS_TOOLS_ANALYZE_PASSES_HH
#define ADRIAS_TOOLS_ANALYZE_PASSES_HH

#include <vector>

#include "analyze/analyze.hh"
#include "analyze/index.hh"

namespace adrias::analyze
{

/** checkpoint-coverage: saveState/restoreState member coverage. */
void runCheckpointCoverage(const Index &index,
                           std::vector<Finding> &findings);

/** lock-discipline: GUARDED_BY coverage in mutex-owning classes. */
void runLockDiscipline(const Index &index,
                       std::vector<Finding> &findings);

/** determinism-hazard: unordered iteration into reproducible sinks,
 *  cross-chunk float accumulation in ThreadPool regions. */
void runDeterminismHazard(const Index &index,
                          std::vector<Finding> &findings);

} // namespace adrias::analyze

#endif // ADRIAS_TOOLS_ANALYZE_PASSES_HH
