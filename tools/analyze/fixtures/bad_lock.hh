// Analyzer fixture: lock-discipline violation.  Never compiled —
// parsed by tools/analyze self-tests.

#ifndef ADRIAS_ANALYZE_FIXTURE_BAD_LOCK_HH
#define ADRIAS_ANALYZE_FIXTURE_BAD_LOCK_HH

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace adrias::fixture
{

class HitCache
{
  public:
    void record(bool hit);

  private:
    mutable Mutex mu;

    /** Annotated: must NOT be flagged. */
    std::size_t hits ADRIAS_GUARDED_BY(mu) = 0;

    /** Unannotated mutable member of a Mutex owner: must be flagged. */
    double rate = 0.0;

    /** Intrinsically synchronized: auto-exempt. */
    std::atomic<bool> warm{false};

    /** Immutable: auto-exempt. */
    const int capacity = 8;
};

} // namespace adrias::fixture

#endif // ADRIAS_ANALYZE_FIXTURE_BAD_LOCK_HH
