#include "obs/trace.hh"

#include <chrono>
#include <utility>

#include "obs/json.hh"

namespace adrias::obs
{

namespace
{

constexpr std::int64_t kMicrosPerSecond = 1000000;

/**
 * Monotonic seconds since an arbitrary epoch.  Kernel and span timing
 * needs real elapsed time by definition; this is the one sanctioned
 * wall-clock read in src/ (everything else must use SimTime).
 */
double
monotonicSeconds()
{
    // NOLINTNEXTLINE(wall-clock)
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch()).count();
}

/** Per-thread trace lane (tid in the exported events). */
thread_local int t_lane = 0;

/** Append one event's JSON object (shared by both exporters). */
void
writeEventJson(std::ostream &out, const TraceEvent &event)
{
    out << "{\"name\": \"" << jsonEscape(event.name) << "\", \"cat\": \""
        << jsonEscape(event.cat) << "\", \"ph\": \"" << event.phase
        << "\", \"pid\": " << (event.wallClock ? 1 : 0)
        << ", \"tid\": " << event.lane << ", \"ts\": " << event.tsMicros;
    if (event.phase == 'X')
        out << ", \"dur\": " << event.durMicros;
    if (event.phase == 'i')
        out << ", \"s\": \"t\"";
    if (!event.args.empty()) {
        out << ", \"args\": {";
        for (std::size_t i = 0; i < event.args.size(); ++i) {
            if (i > 0)
                out << ", ";
            out << "\"" << jsonEscape(event.args[i].key)
                << "\": " << event.args[i].json;
        }
        out << "}";
    }
    out << "}";
}

/** Chrome metadata event naming one pid lane (no trailing comma). */
void
writeProcessName(std::ostream &out, int pid, const char *name)
{
    out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
        << ", \"tid\": 0, \"args\": {\"name\": \"" << name << "\"}}";
}

} // namespace

TraceArg
arg(const std::string &key, double value)
{
    return {key, jsonNumber(value)};
}

TraceArg
arg(const std::string &key, std::int64_t value)
{
    return {key, std::to_string(value)};
}

TraceArg
arg(const std::string &key, const std::string &value)
{
    return {key, "\"" + jsonEscape(value) + "\""};
}

TraceArg
arg(const std::string &key, const char *value)
{
    return arg(key, std::string(value));
}

int
currentLane()
{
    return t_lane;
}

int
detail::exchangeLane(int lane)
{
    const int previous = t_lane;
    t_lane = lane;
    return previous;
}

Tracer::Tracer() : epochSeconds(monotonicSeconds())
{
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::setEnabled(bool on)
{
#if ADRIAS_OBS_ENABLED
    recording.store(on, std::memory_order_relaxed);
#else
    (void)on;
#endif
}

double
Tracer::wallNow() const
{
    return monotonicSeconds() - epochSeconds;
}

void
Tracer::push(TraceEvent event)
{
    MutexLock lock(mu);
    if (events.size() >= kMaxEvents) {
        ++dropped;
        return;
    }
    events.push_back(std::move(event));
}

void
Tracer::simSpan(const std::string &name, const std::string &cat,
                SimTime begin, SimTime end, std::vector<TraceArg> args)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = name;
    event.cat = cat;
    event.phase = 'X';
    event.tsMicros = begin * kMicrosPerSecond;
    event.durMicros = (end - begin) * kMicrosPerSecond;
    event.wallClock = false;
    event.lane = t_lane;
    event.args = std::move(args);
    push(std::move(event));
}

void
Tracer::simInstant(const std::string &name, const std::string &cat,
                   SimTime t, std::vector<TraceArg> args)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = name;
    event.cat = cat;
    event.phase = 'i';
    event.tsMicros = t * kMicrosPerSecond;
    event.wallClock = false;
    event.lane = t_lane;
    event.args = std::move(args);
    push(std::move(event));
}

void
Tracer::wallSpan(const std::string &name, const std::string &cat,
                 double begin_s, double end_s, std::vector<TraceArg> args)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = name;
    event.cat = cat;
    event.phase = 'X';
    event.tsMicros = static_cast<std::int64_t>(
        begin_s * static_cast<double>(kMicrosPerSecond));
    event.durMicros = static_cast<std::int64_t>(
        (end_s - begin_s) * static_cast<double>(kMicrosPerSecond));
    if (event.durMicros < 0)
        event.durMicros = 0;
    event.wallClock = true;
    event.lane = t_lane;
    event.args = std::move(args);
    push(std::move(event));
}

std::size_t
Tracer::eventCount() const
{
    MutexLock lock(mu);
    return events.size();
}

std::size_t
Tracer::droppedEvents() const
{
    MutexLock lock(mu);
    return dropped;
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    MutexLock lock(mu);
    return events;
}

void
Tracer::clear()
{
    MutexLock lock(mu);
    events.clear();
    dropped = 0;
}

void
Tracer::writeChromeTrace(std::ostream &out) const
{
    MutexLock lock(mu);
    out << "{\"traceEvents\": [\n";
    writeProcessName(out, 0, "simulation time");
    out << ",\n";
    writeProcessName(out, 1, "wall clock");
    for (const TraceEvent &event : events) {
        out << ",\n";
        writeEventJson(out, event);
    }
    out << "\n],\n\"displayTimeUnit\": \"ms\",\n"
        << "\"otherData\": {\"generator\": \"adrias-obs\", "
        << "\"dropped_events\": " << dropped << "}}\n";
}

void
Tracer::writeJsonl(std::ostream &out) const
{
    MutexLock lock(mu);
    for (const TraceEvent &event : events) {
        writeEventJson(out, event);
        out << "\n";
    }
}

WallSpan::WallSpan(const char *name, const char *cat)
    : spanName(name), category(cat)
{
    Tracer &tracer = Tracer::global();
    active = tracer.enabled();
    if (active)
        beginSeconds = tracer.wallNow();
}

WallSpan::WallSpan(const char *name, const char *cat,
                   std::vector<TraceArg> args)
    : spanName(name), category(cat)
{
    Tracer &tracer = Tracer::global();
    active = tracer.enabled();
    if (active) {
        spanArgs = std::move(args);
        beginSeconds = tracer.wallNow();
    }
}

WallSpan::~WallSpan()
{
    if (!active)
        return;
    Tracer &tracer = Tracer::global();
    tracer.wallSpan(spanName, category, beginSeconds, tracer.wallNow(),
                    std::move(spanArgs));
}

} // namespace adrias::obs
