/**
 * @file
 * Per-deployment load presented to the testbed during one tick, and the
 * per-deployment outcome the contention model computes from it.
 */

#ifndef ADRIAS_TESTBED_LOAD_HH
#define ADRIAS_TESTBED_LOAD_HH

#include <cstddef>

#include "common/types.hh"

namespace adrias::testbed
{

/**
 * Resource pressure one running workload exerts during a tick.
 *
 * The fields are the knobs of the contention model (DESIGN.md §4):
 * compute share, memory traffic demand, the latency-bound fraction of
 * that demand (pointer chasing), and LLC behaviour.
 */
struct LoadDescriptor
{
    DeploymentId id = 0;

    /** Placement decided by the orchestrator. */
    MemoryMode mode = MemoryMode::Local;

    /** Cores' worth of compute demand while unimpeded. */
    double cpuCores = 1.0;

    /** Fraction of unimpeded time spent computing (not stalled). */
    double cpuFraction = 0.5;

    /** Memory traffic the app issues when unimpeded, GB/s. */
    double memDemandGBps = 0.1;

    /**
     * Fraction of traffic that is latency-bound (dependent loads that
     * cannot be overlapped); scales with pool latency.
     */
    double latencyBoundFraction = 0.1;

    /** LLC access rate, GB/s (loads hitting the LLC level). */
    double llcAccessGBps = 1.0;

    /** LLC hit rate when the working set is fully resident. */
    double baseHitRate = 0.85;

    /** Hot working-set size competing for LLC capacity, MB. */
    double cacheFootprintMb = 1.0;

    // Rack placement triple (RackTestbed only; the single-pair Testbed
    // ignores these).  A remote deployment borrows memory from `server`
    // over `link`; defaults describe the paper pair's only choice.

    /** Compute node running the deployment. */
    std::size_t node = 0;

    /** Memory server lending the remote range (mode == Remote). */
    std::size_t server = 0;

    /** Link carrying the remote traffic (mode == Remote). */
    std::size_t link = 0;
};

/** What the contention model concluded for one deployment this tick. */
struct LoadOutcome
{
    DeploymentId id = 0;

    /**
     * Wall-clock dilation of the app this tick (>= 1): one second of
     * simulated time advances the app by 1/slowdown seconds of
     * unimpeded progress.
     */
    double slowdown = 1.0;

    /** Effective LLC hit rate after capacity contention. */
    double hitRate = 0.85;

    /** Memory traffic actually achieved, GB/s. */
    double achievedGBps = 0.0;

    /** Miss-induced traffic multiplier relative to isolation. */
    double missScale = 1.0;

    /** Pool latency (ns) this app observed. */
    double latencyNs = 80.0;
};

} // namespace adrias::testbed

#endif // ADRIAS_TESTBED_LOAD_HH
