#include "ml/dropout.hh"

#include "common/logging.hh"

namespace adrias::ml
{

Dropout::Dropout(double probability, Rng &rng_) : p(probability), rng(&rng_)
{
    if (p < 0.0 || p >= 1.0)
        fatal("Dropout probability must lie in [0, 1)");
}

Matrix
Dropout::forward(const Matrix &input)
{
    if (isInference || !isTraining || p <= 0.0) {
        lastMask = Matrix();
        return input;
    }
    const double keep_scale = 1.0 / (1.0 - p);
    lastMask = Matrix(input.rows(), input.cols());
    Matrix out = input;
    auto &mask = lastMask.raw();
    auto &data = out.raw();
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (rng->bernoulli(p)) {
            mask[i] = 0.0;
            data[i] = 0.0;
        } else {
            mask[i] = keep_scale;
            data[i] *= keep_scale;
        }
    }
    return out;
}

Matrix
Dropout::backward(const Matrix &grad_output)
{
    if (isInference)
        panic("Dropout::backward in inference mode");
    if (lastMask.empty())
        return grad_output;
    return grad_output.hadamard(lastMask);
}

} // namespace adrias::ml
