# Empty compiler generated dependencies file for fig05_interference_heatmap.
# This may be replaced when dependencies are built.
