// Lint fixture: clean under every rule, including the traps that a
// naive substring matcher would flag.  Never compiled.
#include <map>
#include <string>

/*
 * Block comment mentioning rand(), time(0), std::unordered_map and
 * x == 1.0 — all stripped before matching.
 */

struct Operand
{
    // Identifiers merely containing banned substrings:
    int randomness = 0;
    int timeline = 0;
    double uptime = 0.0;
};

double
evaluate(const Operand &op, double x)
{
    const std::string note = "rand() == 1.0 at time(0)"; // in a string
    std::map<std::string, int> ordered{{note, op.randomness}};
    double floor = x <= 0.0 ? 0.0 : x; // ordering compare is fine
    return floor + op.timeline + op.uptime + (double)ordered.size();
}
