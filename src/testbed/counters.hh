/**
 * @file
 * The performance events of the Watcher (paper §V-A): cache, memory and
 * ThymesisFlow channel counters, one sample per one-second tick.
 */

#ifndef ADRIAS_TESTBED_COUNTERS_HH
#define ADRIAS_TESTBED_COUNTERS_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace adrias::testbed
{

/** Indices of the monitored performance events. */
enum class PerfEvent : std::size_t
{
    LlcLoads = 0,    ///< LLC_ld: last-level cache loads
    LlcMisses = 1,   ///< LLC_mis: last-level cache misses
    MemLoads = 2,    ///< MEM_ld: local DRAM loads
    MemStores = 3,   ///< MEM_st: local DRAM stores
    RemoteTx = 4,    ///< RMT_tx: flits transmitted on the channel
    RemoteRx = 5,    ///< RMT_rx: flits received on the channel
    ChannelLat = 6,  ///< CHAN_lat: channel latency (cycles)
};

/** Number of monitored events. */
inline constexpr std::size_t kNumPerfEvents = 7;

/** One tick's worth of monitored events. */
using CounterSample = std::array<double, kNumPerfEvents>;

/** @return the canonical short name of an event (e.g. "LLC_ld"). */
std::string perfEventName(PerfEvent event);

/** @return all events in index order. */
const std::vector<PerfEvent> &allPerfEvents();

/**
 * Per-link monitored events (rack mode).  One LinkCounterSample per
 * link per tick rides next to the node's CounterSample in the Watcher,
 * so link-level congestion is observable without widening the model's
 * per-node input schema.
 */
enum class LinkEvent : std::size_t
{
    LinkTx = 0,      ///< LNK_tx: flits transmitted, millions/s
    LinkRx = 1,      ///< LNK_rx: flits received, millions/s
    LinkLat = 2,     ///< LNK_lat: link latency (cycles)
    LinkQueued = 3,  ///< LNK_q: demand queued behind the link, GB/s
};

/** Number of monitored per-link events. */
inline constexpr std::size_t kNumLinkEvents = 4;

/** One tick's worth of per-link events. */
using LinkCounterSample = std::array<double, kNumLinkEvents>;

/** @return the canonical short name of a link event (e.g. "LNK_tx"). */
std::string linkEventName(LinkEvent event);

/** @return all link events in index order. */
const std::vector<LinkEvent> &allLinkEvents();

} // namespace adrias::testbed

#endif // ADRIAS_TESTBED_COUNTERS_HH
