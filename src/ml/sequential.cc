#include "ml/sequential.hh"

#include "common/logging.hh"
#include "ml/activation.hh"
#include "ml/batchnorm.hh"
#include "ml/dense.hh"
#include "ml/dropout.hh"
#include "ml/layernorm.hh"

namespace adrias::ml
{

Sequential &
Sequential::add(std::unique_ptr<Layer> layer)
{
    if (!layer)
        panic("Sequential::add null layer");
    layers.push_back(std::move(layer));
    return *this;
}

Matrix
Sequential::forward(const Matrix &input)
{
    Matrix activation = input;
    for (auto &layer : layers)
        activation = layer->forward(activation);
    return activation;
}

Matrix
Sequential::backward(const Matrix &grad_output)
{
    Matrix grad = grad_output;
    for (auto it = layers.rbegin(); it != layers.rend(); ++it)
        grad = (*it)->backward(grad);
    return grad;
}

std::vector<Param *>
Sequential::params()
{
    std::vector<Param *> all;
    for (auto &layer : layers)
        for (Param *p : layer->params())
            all.push_back(p);
    return all;
}

void
Sequential::setTraining(bool training)
{
    Layer::setTraining(training);
    for (auto &layer : layers)
        layer->setTraining(training);
}

void
Sequential::setInference(bool on)
{
    Layer::setInference(on);
    for (auto &layer : layers)
        layer->setInference(on);
}

void
Sequential::beginStatsEstimation()
{
    for (auto &layer : layers)
        layer->beginStatsEstimation();
}

void
Sequential::endStatsEstimation()
{
    for (auto &layer : layers)
        layer->endStatsEstimation();
}

std::vector<Matrix *>
Sequential::stateTensors()
{
    std::vector<Matrix *> all;
    for (auto &layer : layers)
        for (Matrix *state : layer->stateTensors())
            all.push_back(state);
    return all;
}

std::unique_ptr<Sequential>
makeNonLinearHead(std::size_t input_width, std::size_t hidden_width,
                  std::size_t output_width, double dropout, Rng &rng,
                  HeadNorm norm)
{
    auto head = std::make_unique<Sequential>();
    std::size_t width = input_width;
    for (int block = 0; block < 3; ++block) {
        head->add(std::make_unique<Dense>(width, hidden_width, rng));
        head->add(std::make_unique<ReLU>());
        if (norm == HeadNorm::Batch)
            head->add(std::make_unique<BatchNorm1d>(hidden_width));
        else
            head->add(std::make_unique<LayerNorm>(hidden_width));
        if (dropout > 0.0)
            head->add(std::make_unique<Dropout>(dropout, rng));
        width = hidden_width;
    }
    head->add(std::make_unique<Dense>(width, output_width, rng));
    return head;
}

} // namespace adrias::ml
