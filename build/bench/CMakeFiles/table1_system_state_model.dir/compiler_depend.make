# Empty compiler generated dependencies file for table1_system_state_model.
# This may be replaced when dependencies are built.
