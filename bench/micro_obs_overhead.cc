/**
 * @file
 * micro — observability overhead (DESIGN.md §10).
 *
 * Runs the same RandomPlacement scenario three ways — obs fully off,
 * metrics armed, metrics + tracing armed — and reports the relative
 * overhead of the instrumented hot paths (testbed tick, watcher
 * record, scenario loop).  The acceptance bar is <2% for armed
 * metrics; the bench exits non-zero past a generous 10% so a loaded
 * CI machine cannot flake it.
 *
 * In a -DADRIAS_OBS=OFF build the same binary instead proves the layer
 * compiled out: arming is a no-op, counters never move and the tracer
 * records nothing.  CI registers that flavor as the `obs_compiled_out`
 * ctest (label: obs).
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>

#include "bench/common.hh"

namespace
{

using namespace adrias;

/** Seconds of wall clock to run one scenario rep. */
double
runOnce(std::uint64_t seed)
{
    scenario::RandomPlacement policy(seed);
    scenario::ScenarioConfig config = bench::evalScenario(seed, 20);
    // Long enough that a timed rep is tens of milliseconds; otherwise
    // the overhead percentages just measure scheduler noise.
    config.durationSec = bench::envInt("ADRIAS_BENCH_DURATION", 20000);
    scenario::ScenarioRunner runner(config, testbed::TestbedParams{});
    const auto begin = std::chrono::steady_clock::now();
    const auto result = runner.run(policy);
    const auto end = std::chrono::steady_clock::now();
    if (result.records.empty())
        fatal("micro_obs_overhead: scenario completed nothing");
    return std::chrono::duration<double>(end - begin).count();
}

/** Minimum of `reps` timed runs (all with the current obs switches). */
double
minSeconds(int reps, bool clear_between)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        if (clear_between)
            obs::resetAll(); // keep the tracer off its event cap
        const double t = runOnce(4242);
        best = r == 0 ? t : std::min(best, t);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::initFromArgs(argc, argv);
    bench::banner("micro — observability overhead",
                  "armed metrics cost <2% on the scenario hot path; "
                  "ADRIAS_OBS=OFF compiles the layer to no-ops");

    const int reps = static_cast<int>(bench::envInt("ADRIAS_BENCH_REPS", 3));

    if (!obs::compiledIn()) {
        // Compiled-out build: prove the switches are inert.
        obs::setEnabled(true);
        obs::Tracer::global().setEnabled(true);
        obs::MetricsRegistry::global().counter("probe").add(7);
        obs::Tracer::global().simInstant("probe", "probe", 1);
        (void)runOnce(4242);

        bool inert = !obs::enabled();
        inert = inert && !obs::Tracer::global().enabled();
        inert = inert &&
                obs::MetricsRegistry::global().counter("probe").get() == 0;
        inert = inert && obs::Tracer::global().eventCount() == 0;
        inert = inert && obs::finishRun().empty();

        std::cout << "compiled_in: false\n"
                  << "inert: " << (inert ? "yes" : "NO") << "\n";

        const std::string path =
            bench::outputPath("micro_obs_overhead.json");
        std::ofstream out(path, std::ios::binary);
        out << "{\n  \"compiled_in\": false,\n  \"inert\": "
            << (inert ? "true" : "false") << "\n}\n";
        std::cout << "JSON written to " << path << "\n";
        return inert ? 0 : 1;
    }

    // Warm up allocators and page cache before timing anything.
    (void)runOnce(4242);

    obs::setEnabled(false);
    obs::Tracer::global().setEnabled(false);
    const double baseline_s = minSeconds(reps, false);

    obs::setEnabled(true);
    const double metrics_s = minSeconds(reps, false);

    obs::Tracer::global().setEnabled(true);
    const double trace_s = minSeconds(reps, true);

    obs::Tracer::global().setEnabled(false);
    obs::setEnabled(false);

    const auto overhead_pct = [baseline_s](double t) {
        return 100.0 * (t - baseline_s) / baseline_s;
    };
    const double metrics_pct = overhead_pct(metrics_s);
    const double trace_pct = overhead_pct(trace_s);

    TextTable table({"mode", "best (s)", "overhead %"});
    table.addRow("off", {baseline_s, 0.0}, 3);
    table.addRow("metrics", {metrics_s, metrics_pct}, 3);
    table.addRow("metrics+trace", {trace_s, trace_pct}, 3);
    std::cout << table.toString();

    const std::string path = bench::outputPath("micro_obs_overhead.json");
    std::ofstream out(path, std::ios::binary);
    out << "{\n  \"compiled_in\": true,\n  \"baseline_s\": " << baseline_s
        << ",\n  \"metrics_s\": " << metrics_s
        << ",\n  \"trace_s\": " << trace_s
        << ",\n  \"overhead_metrics_pct\": " << metrics_pct
        << ",\n  \"overhead_trace_pct\": " << trace_pct << "\n}\n";
    std::cout << "JSON written to " << path << "\n";

    // Gate far above the 2% target so only a real regression trips it.
    if (metrics_pct > 10.0) {
        std::cout << "ERROR: armed metrics cost " << metrics_pct
                  << "% (>10%)\n";
        return 1;
    }

    const std::string obs_report = obs::finishRun();
    if (!obs_report.empty())
        std::cout << "\nObservability summary:\n" << obs_report;
    return 0;
}
