/** @file Unit tests for stats/histogram. */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.hh"

namespace adrias::stats
{
namespace
{

TEST(Histogram, ConstructionValidation)
{
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::runtime_error);
    EXPECT_THROW(Histogram(1.0, 1.0, 4), std::runtime_error);
    EXPECT_THROW(Histogram(2.0, 1.0, 4), std::runtime_error);
}

TEST(Histogram, BinsValuesCorrectly)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(9.5);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdges)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(4), 9.0);
}

TEST(Histogram, OutOfRangeBinAccessPanics)
{
    Histogram h(0.0, 1.0, 2);
    EXPECT_THROW(h.binCount(2), std::logic_error);
    EXPECT_THROW(h.binCenter(2), std::logic_error);
}

TEST(Histogram, SketchHasOneLinePerBin)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.1);
    const std::string s = h.sketch();
    std::size_t lines = 0;
    for (char c : s)
        lines += (c == '\n');
    EXPECT_EQ(lines, 4u);
}

TEST(DistributionSummary, EmptySampleIsAllNaN)
{
    const auto s = DistributionSummary::from({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_TRUE(std::isnan(s.min));
    EXPECT_TRUE(std::isnan(s.median));
    EXPECT_TRUE(std::isnan(s.p99));
    EXPECT_TRUE(std::isnan(s.max));
    EXPECT_TRUE(std::isnan(s.mean));
}

TEST(DistributionSummary, OrderedStatistics)
{
    std::vector<double> v;
    for (int i = 1; i <= 1000; ++i)
        v.push_back(i);
    const auto s = DistributionSummary::from(v);
    EXPECT_EQ(s.count, 1000u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 1000.0);
    EXPECT_NEAR(s.median, 500.5, 1e-9);
    EXPECT_LE(s.p25, s.median);
    EXPECT_LE(s.median, s.p75);
    EXPECT_LE(s.p75, s.p95);
    EXPECT_LE(s.p95, s.p99);
    EXPECT_NEAR(s.mean, 500.5, 1e-9);
}

TEST(DistributionSummary, ToStringMentionsFields)
{
    const auto s = DistributionSummary::from({1.0, 2.0, 3.0});
    const std::string text = s.toString();
    EXPECT_NE(text.find("n=3"), std::string::npos);
    EXPECT_NE(text.find("med="), std::string::npos);
}

} // namespace
} // namespace adrias::stats
