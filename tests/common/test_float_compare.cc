/**
 * @file
 * Unit tests for the shared ulp/tolerance comparison helpers
 * (common/float_compare.hh) that every vector-equivalence suite
 * stands on.
 */

#include "common/float_compare.hh"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace adrias
{
namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();
const double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(FloatOrdinal, ConsecutiveDoublesAreConsecutiveOrdinals)
{
    const double x = 1.5;
    const double up = std::nextafter(x, kInf);
    EXPECT_EQ(floatOrdinal(up), floatOrdinal(x) + 1);
    const double down = std::nextafter(x, -kInf);
    EXPECT_EQ(floatOrdinal(down), floatOrdinal(x) - 1);
}

TEST(FloatOrdinal, OrderingPreservedAcrossZero)
{
    EXPECT_LT(floatOrdinal(-1.0), floatOrdinal(-1e-300));
    EXPECT_LT(floatOrdinal(-1e-300), floatOrdinal(-0.0));
    // The fold maps -0.0 and +0.0 onto the same ordinal, so the two
    // zeros are zero ulps apart rather than punching a hole in the
    // number line.
    EXPECT_EQ(floatOrdinal(-0.0), floatOrdinal(0.0));
    EXPECT_LT(floatOrdinal(-0.0), floatOrdinal(1e-300));
    EXPECT_LT(floatOrdinal(1e-300), floatOrdinal(1.0));
}

TEST(UlpDistance, IdenticalIsZero)
{
    EXPECT_EQ(ulpDistance(1.25, 1.25), 0u);
    EXPECT_EQ(ulpDistance(-7.5e100, -7.5e100), 0u);
    EXPECT_EQ(ulpDistance(0.0, 0.0), 0u);
}

TEST(UlpDistance, SignedZerosAreZeroApart)
{
    EXPECT_EQ(ulpDistance(0.0, -0.0), 0u);
    EXPECT_EQ(ulpDistance(-0.0, 0.0), 0u);
}

TEST(UlpDistance, AdjacentValuesAreOneApart)
{
    const double x = 3.0;
    EXPECT_EQ(ulpDistance(x, std::nextafter(x, kInf)), 1u);
    EXPECT_EQ(ulpDistance(x, std::nextafter(x, -kInf)), 1u);
    // Denormal neighbors too: the mapping is uniform over the whole
    // representable line.
    const double tiny = std::numeric_limits<double>::denorm_min();
    EXPECT_EQ(ulpDistance(0.0, tiny), 1u);
    EXPECT_EQ(ulpDistance(-tiny, 0.0), 1u);
    EXPECT_EQ(ulpDistance(-tiny, tiny), 2u);
}

TEST(UlpDistance, SymmetricAndCrossSign)
{
    EXPECT_EQ(ulpDistance(1.0, 2.0), ulpDistance(2.0, 1.0));
    // Distance across zero counts every representable double between
    // the operands — a huge number, not an overflowed small one.
    EXPECT_GT(ulpDistance(-1.0, 1.0), 1ull << 60);
    // No signed-overflow trap on extreme opposite-sign pairs.
    const double big = std::numeric_limits<double>::max();
    EXPECT_GT(ulpDistance(-big, big), ulpDistance(0.0, big));
}

TEST(UlpDistance, NanAndInfinityAreFar)
{
    constexpr auto kFar = static_cast<std::uint64_t>(
        std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(ulpDistance(kNan, 1.0), kFar);
    EXPECT_EQ(ulpDistance(1.0, kNan), kFar);
    EXPECT_EQ(ulpDistance(kNan, kNan), kFar);
    EXPECT_EQ(ulpDistance(kInf, 1.0), kFar);
    EXPECT_EQ(ulpDistance(-kInf, kInf), kFar);
    // Same infinity is identical.
    EXPECT_EQ(ulpDistance(kInf, kInf), 0u);
    EXPECT_EQ(ulpDistance(-kInf, -kInf), 0u);
}

TEST(AlmostEqual, UlpBoundAccepts)
{
    const double x = 0.1 + 0.2; // famously not 0.3
    EXPECT_TRUE(almostEqual(x, 0.3, 1));
    EXPECT_FALSE(almostEqual(x, 0.3, 0));
    EXPECT_TRUE(almostEqual(5.0, 5.0, 0));
}

TEST(AlmostEqual, AbsoluteFloorRescuesNearZero)
{
    // 1e-300 vs 0.0 is astronomically many ulps apart but absolutely
    // negligible — exactly what the floor is for.
    EXPECT_FALSE(almostEqual(1e-300, 0.0, 1024));
    EXPECT_TRUE(almostEqual(1e-300, 0.0, 1024, 1e-290));
}

TEST(AlmostEqual, NanHandling)
{
    EXPECT_TRUE(almostEqual(kNan, kNan, 0));
    EXPECT_FALSE(almostEqual(kNan, 1.0, 1024, 1e10));
    EXPECT_FALSE(almostEqual(1.0, kNan, 1024, 1e10));
}

TEST(UlpStats, TracksWorstPair)
{
    UlpStats stats;
    stats.add(1.0, 1.0);
    stats.add(2.0, std::nextafter(2.0, kInf));
    const double worst = std::nextafter(std::nextafter(4.0, kInf), kInf);
    stats.add(4.0, worst);
    EXPECT_EQ(stats.count, 3u);
    EXPECT_EQ(stats.maxUlps, 2u);
    EXPECT_EQ(stats.worstA, 4.0);
    EXPECT_EQ(stats.worstB, worst);
    EXPECT_TRUE(stats.within(2));
    EXPECT_FALSE(stats.within(1));
}

TEST(UlpStats, NanMismatchPoisons)
{
    UlpStats stats;
    stats.add(kNan, kNan); // agreeing NaNs are fine
    EXPECT_TRUE(stats.within(0));
    stats.add(kNan, 0.5);
    EXPECT_EQ(stats.nanMismatch, 1u);
    EXPECT_FALSE(stats.within(1 << 20));
}

TEST(UlpStats, EmptyIsWithinAnything)
{
    const UlpStats stats;
    EXPECT_TRUE(stats.within(0));
    EXPECT_EQ(stats.count, 0u);
    EXPECT_EQ(stats.maxAbsDiff, 0.0);
}

} // namespace
} // namespace adrias
