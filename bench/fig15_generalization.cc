/**
 * @file
 * Fig. 15 — Generalization of the universal BE model:
 *   (a) leave-one-benchmark-out R² per excluded benchmark,
 *   (b) accuracy as a function of the number of samples of one
 *       benchmark (gbt in the paper) included in training.
 *
 * Paper: generalizes for some apps (gbt ~0.72) and fails for others
 * (~0.30); accuracy recovers as samples of the new app are added.
 */

#include <algorithm>
#include <iostream>

#include "bench/common.hh"
#include "models/performance.hh"

namespace
{

using namespace adrias;

} // namespace

int
main()
{
    bench::banner("Fig. 15 — generalization to unseen applications",
                  "leave-one-out R^2 varies widely (0.3..0.72); "
                  "recovers with samples of the new app");

    const auto scenarios = static_cast<std::size_t>(
        bench::envInt("ADRIAS_BENCH_SCENARIOS", 4) * 3);
    const SimTime spawn_maxes[] = {20, 30, 40, 50, 60};
    std::vector<scenario::SweepItem> sweep(scenarios);
    for (std::size_t i = 0; i < scenarios; ++i) {
        sweep[i].config = bench::evalScenario(
            2100 + i, spawn_maxes[i % std::size(spawn_maxes)]);
        sweep[i].policySeed = 2200 + i;
    }
    const auto results = scenario::runScenarioSweep(sweep);
    scenario::SignatureStore signatures;
    scenario::collectAllSignatures(signatures);
    auto all = scenario::DatasetBuilder::performance(
        results, signatures, WorkloadClass::BestEffort);

    models::ModelConfig config;
    config.epochs = static_cast<std::size_t>(
        bench::envInt("ADRIAS_BENCH_EPOCHS", 30));

    // (a) leave-one-out across a representative subset (full 17-way
    //     LOO is available by raising ADRIAS_BENCH_SCENARIOS).
    std::cout << "(a) leave-one-out R^2 (ActualWindow future):\n";
    TextTable loo({"excluded benchmark", "R^2 on excluded", "n test"});
    for (const char *name :
         {"gbt", "gmm", "lr", "nweight", "sort", "pca"}) {
        std::vector<scenario::PerformanceSample> train, test;
        for (const auto &sample : all) {
            (sample.name == name ? test : train).push_back(sample);
        }
        if (test.size() < 3 || train.size() < 10)
            continue;
        models::PerformanceModel model(models::FutureKind::ActualWindow,
                                       config);
        model.train(train);
        const auto eval = model.evaluate(test);
        loo.addRow(name,
                   {eval.r2, static_cast<double>(test.size())}, 3);
    }
    std::cout << loo.toString();

    // (b) accuracy vs number of in-training samples of gbt.
    std::cout << "\n(b) R^2 on gbt vs gbt samples included in "
                 "training:\n";
    std::vector<scenario::PerformanceSample> others, gbt;
    for (const auto &sample : all)
        (sample.name == "gbt" ? gbt : others).push_back(sample);

    TextTable curve({"gbt samples in train", "R^2 on held-out gbt"});
    const std::size_t held_out = gbt.size() / 2;
    for (std::size_t k :
         {std::size_t{0}, std::size_t{2}, std::size_t{5},
          std::size_t{10}, gbt.size() - held_out}) {
        if (gbt.size() < held_out + k || held_out < 3)
            break;
        auto train = others;
        for (std::size_t i = 0; i < k; ++i)
            train.push_back(gbt[held_out + i]);
        std::vector<scenario::PerformanceSample> test(
            gbt.begin(),
            gbt.begin() + static_cast<std::ptrdiff_t>(held_out));
        models::PerformanceModel model(models::FutureKind::ActualWindow,
                                       config);
        model.train(train);
        const auto eval = model.evaluate(test);
        curve.addRow(std::to_string(k), {eval.r2}, 3);
    }
    std::cout << curve.toString();
    std::cout << "\nShape check: R^2 varies widely per excluded app and "
                 "rises as samples of the unseen app are folded in — "
                 "continuous signature collection and retraining matter "
                 "(paper's conclusion).\n";
    return 0;
}
