#include "common/io/durable_file.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread> // NOLINT(raw-thread): retry backoff sleep, no parallelism

#include "common/io/crc32.hh"
#include "common/logging.hh"

namespace adrias::io
{

namespace
{

/** Little-endian u32 encode into 4 chars. */
void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

/** Little-endian u32 decode at `at` (caller checks bounds). */
std::uint32_t
getU32(const std::string &data, std::size_t at)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data[at + i]))
             << (8 * i);
    return v;
}

/** One attempt of the temp-write + rename protocol. */
[[nodiscard]] Result<void>
atomicWriteOnce(const std::string &path, const std::string &content,
                const WriteChaosHook &chaos)
{
    const std::string temp = path + ".tmp";
    {
        // NOLINTNEXTLINE(raw-ofstream): this IS the DurableFile layer.
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out)
            return makeError(ErrorCode::Io,
                             "atomicWriteFile: cannot open '" + temp +
                                 "'");
        if (chaos)
            chaos("temp-open", 0);

        // Two halves with a flush between them give the chaos hook a
        // genuine mid-payload kill point (torn temp file on disk).
        const std::size_t half = content.size() / 2;
        out.write(content.data(),
                  static_cast<std::streamsize>(half));
        out.flush();
        if (chaos)
            chaos("payload-half", half);
        out.write(content.data() + half,
                  static_cast<std::streamsize>(content.size() - half));
        out.flush();
        if (!out)
            return makeError(ErrorCode::Io,
                             "atomicWriteFile: short write to '" +
                                 temp + "'");
        if (chaos)
            chaos("payload-done", content.size());
    }
    if (chaos)
        chaos("pre-rename", content.size());
    if (std::rename(temp.c_str(), path.c_str()) != 0)
        return makeError(ErrorCode::Io,
                         "atomicWriteFile: rename '" + temp +
                             "' -> '" + path + "' failed");
    return {};
}

} // namespace

Result<void>
atomicWriteFile(const std::string &path, const std::string &content,
                const AtomicWriteOptions &options)
{
    const std::size_t attempts =
        options.maxAttempts > 0 ? options.maxAttempts : 1;
    std::size_t backoff_ms = options.backoffMs;
    Result<void> last = makeError(ErrorCode::Io, "atomicWriteFile");
    for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0 && backoff_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff_ms));
            backoff_ms *= 2;
        }
        last = atomicWriteOnce(path, content, options.chaos);
        if (last.ok())
            return last;
        // A chaos hook that throws propagates (that's the simulated
        // crash); only genuine I/O errors reach this retry path.
        std::error_code ignored;
        std::filesystem::remove(path + ".tmp", ignored);
    }
    return last;
}

Result<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return makeError(ErrorCode::Io,
                         "readFile: cannot open '" + path + "'");
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    if (in.bad())
        return makeError(ErrorCode::Io,
                         "readFile: read error on '" + path + "'");
    return content;
}

Result<void>
RecordFileWriter::open(const std::string &path, bool append)
{
    if (out.is_open())
        panic("RecordFileWriter::open: already open");
    filePath = path;
    appended = 0;
    const auto mode = std::ios::binary |
                      (append ? std::ios::app : std::ios::trunc);
    // NOLINTNEXTLINE(raw-ofstream): this IS the DurableFile layer.
    out.open(path, mode);
    if (!out)
        return makeError(ErrorCode::Io,
                         "RecordFileWriter: cannot open '" + path +
                             "'");
    if (!append) {
        out.write(kRecordFileMagic,
                  static_cast<std::streamsize>(kRecordFileMagicSize));
        out.flush();
        if (!out)
            return makeError(ErrorCode::Io,
                             "RecordFileWriter: cannot write header "
                             "to '" +
                                 path + "'");
    }
    return {};
}

Result<void>
RecordFileWriter::append(std::string_view payload)
{
    if (!out.is_open())
        panic("RecordFileWriter::append before open()");
    if (payload.size() > 0xffffffffu)
        return makeError(ErrorCode::Geometry,
                         "RecordFileWriter: record exceeds u32 length");

    std::string frame;
    frame.reserve(8 + payload.size());
    putU32(frame, static_cast<std::uint32_t>(payload.size()));
    putU32(frame, crc32(payload));

    // Header first, flushed, so a kill between header and payload
    // leaves a detectably-torn record (length promises bytes that are
    // not there).
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    out.flush();
    if (chaos)
        chaos("record-header", frame.size());

    const std::size_t half = payload.size() / 2;
    out.write(payload.data(), static_cast<std::streamsize>(half));
    out.flush();
    if (chaos)
        chaos("record-half", frame.size() + half);

    out.write(payload.data() + half,
              static_cast<std::streamsize>(payload.size() - half));
    out.flush();
    if (!out)
        return makeError(ErrorCode::Io,
                         "RecordFileWriter: short append to '" +
                             filePath + "'");
    if (chaos)
        chaos("record-done", frame.size() + payload.size());
    ++appended;
    return {};
}

void
RecordFileWriter::close()
{
    if (out.is_open()) {
        out.flush();
        out.close();
    }
}

std::string
beginRecordFileImage()
{
    return std::string(kRecordFileMagic, kRecordFileMagicSize);
}

void
appendFramedRecord(std::string &image, std::string_view payload)
{
    if (payload.size() > 0xffffffffu)
        panic("appendFramedRecord: record exceeds u32 length");
    putU32(image, static_cast<std::uint32_t>(payload.size()));
    putU32(image, crc32(payload));
    image.append(payload.data(), payload.size());
}

Result<RecordReadResult>
readRecordFile(const std::string &path)
{
    Result<std::string> content = readFile(path);
    if (!content.ok())
        return content.error();
    const std::string &data = content.value();

    if (data.size() < kRecordFileMagicSize)
        return makeError(ErrorCode::Truncated,
                         "record file '" + path +
                             "' is shorter than its header (" +
                             std::to_string(data.size()) + " bytes)");
    if (data.compare(0, kRecordFileMagicSize, kRecordFileMagic, 0,
                     kRecordFileMagicSize) != 0)
        return makeError(ErrorCode::BadHeader,
                         "record file '" + path +
                             "' has an unrecognized magic header");

    RecordReadResult result;
    std::size_t cursor = kRecordFileMagicSize;
    while (cursor < data.size()) {
        if (data.size() - cursor < 8) {
            result.tornTail = true; // torn frame header
            break;
        }
        const std::uint32_t length = getU32(data, cursor);
        const std::uint32_t expected_crc = getU32(data, cursor + 4);
        if (length > data.size() - cursor - 8) {
            result.tornTail = true; // length overruns the file
            break;
        }
        const std::string_view payload(data.data() + cursor + 8, length);
        if (crc32(payload) != expected_crc) {
            result.tornTail = true; // bit rot or torn payload
            break;
        }
        result.records.emplace_back(payload);
        cursor += 8 + length;
    }
    if (result.tornTail)
        result.droppedBytes = data.size() - cursor;
    return result;
}

Result<std::vector<std::string>>
readRecordFileStrict(const std::string &path)
{
    Result<RecordReadResult> tolerant = readRecordFile(path);
    if (!tolerant.ok())
        return tolerant.error();
    if (tolerant.value().tornTail)
        return makeError(ErrorCode::Truncated,
                         "record file '" + path +
                             "' has a torn/corrupt tail (" +
                             std::to_string(
                                 tolerant.value().droppedBytes) +
                             " bytes dropped)");
    return std::move(tolerant.value().records);
}

} // namespace adrias::io
