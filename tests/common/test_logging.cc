/** @file Unit tests for common/logging. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/logging.hh"

namespace adrias
{
namespace
{

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("user misconfiguration"), std::runtime_error);
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("invariant broken"), std::logic_error);
}

TEST(Logging, LevelFilterIsAdjustable)
{
    Logger &logger = Logger::instance();
    const LogLevel original = logger.level();
    logger.setLevel(LogLevel::Off);
    EXPECT_EQ(logger.level(), LogLevel::Off);
    // Must not crash even when filtered.
    logDebug("filtered");
    logInfo("filtered");
    logWarn("filtered");
    logError("filtered");
    logger.setLevel(original);
}

TEST(Logging, FatalMessageIsPreserved)
{
    try {
        fatal("bad beta value");
        FAIL() << "fatal() must throw";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("bad beta value"),
                  std::string::npos);
    }
}

} // namespace
} // namespace adrias
