/**
 * @file
 * Minimal micro-benchmark harness for the perf-regression gate.
 *
 * Replaces the google-benchmark dependency for the micro suites with a
 * deliberately small fixed protocol: each benchmark runs a configurable
 * number of warm-up iterations (dropped) followed by measured
 * iterations, and reports the steady-state MEDIAN per-iteration time in
 * nanoseconds.  Medians are robust against the occasional scheduler
 * hiccup that makes means useless as a CI gate.
 *
 * Results serialize to the stable `adrias-bench-v1` JSON schema that
 * tools/bench_compare consumes:
 *
 *   {
 *     "schema": "adrias-bench-v1",
 *     "suite": "<suite name>",
 *     "benchmarks": [
 *       {"name": "...", "median_ns": ..., "min_ns": ...,
 *        "mean_ns": ..., "iterations": N, "warmup": W},
 *       ...
 *     ],
 *     "summary": [
 *       {"name": "...", "before_ns": ..., "after_ns": ...,
 *        "speedup": ...},
 *       ...
 *     ]
 *   }
 *
 * `benchmarks[*].name` + `median_ns` are the compared surface; the
 * summary block carries before/after speedup bookkeeping (e.g. fused
 * vs reference kernels) and is informational.
 *
 * Knobs: ADRIAS_BENCH_ITERS (measured iterations, default 30),
 * ADRIAS_BENCH_WARMUP (dropped warm-up iterations, default 5).
 */

#ifndef ADRIAS_BENCH_MICROBENCH_HH
#define ADRIAS_BENCH_MICROBENCH_HH

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace adrias::bench::micro
{

/** One benchmark's steady-state statistics (all times nanoseconds). */
struct Result
{
    std::string name;
    double medianNs = 0.0;
    double minNs = 0.0;
    double meanNs = 0.0;
    std::size_t iterations = 0;
    std::size_t warmup = 0;
};

/** Before/after bookkeeping for an optimization (times nanoseconds). */
struct Speedup
{
    std::string name;
    double beforeNs = 0.0;
    double afterNs = 0.0;

    double
    speedup() const
    {
        return afterNs > 0.0 ? beforeNs / afterNs : 0.0;
    }
};

inline std::size_t
envCount(const char *name, std::size_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    const long parsed = std::strtol(value, nullptr, 10);
    return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/**
 * Run `fn` for warmup + iters iterations; drop the warm-up samples and
 * report median/min/mean of the steady-state remainder.
 */
template <typename Fn>
Result
measure(std::string name, Fn &&fn,
        std::size_t iters = envCount("ADRIAS_BENCH_ITERS", 30),
        std::size_t warmup = envCount("ADRIAS_BENCH_WARMUP", 5))
{
    using Clock = std::chrono::steady_clock;
    Result result;
    result.name = std::move(name);
    result.iterations = iters;
    result.warmup = warmup;

    for (std::size_t i = 0; i < warmup; ++i)
        fn();

    std::vector<double> samples;
    samples.reserve(iters);
    for (std::size_t i = 0; i < iters; ++i) {
        const auto start = Clock::now();
        fn();
        const auto stop = Clock::now();
        samples.push_back(
            std::chrono::duration<double, std::nano>(stop - start)
                .count());
    }

    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t mid = sorted.size() / 2;
    result.medianNs = sorted.size() % 2
                          ? sorted[mid]
                          : 0.5 * (sorted[mid - 1] + sorted[mid]);
    result.minNs = sorted.front();
    double total = 0.0;
    for (double s : samples)
        total += s;
    result.meanNs = total / static_cast<double>(samples.size());
    return result;
}

inline std::string
jsonNumber(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.9g", value);
    return buffer;
}

/** Serialize one suite to the adrias-bench-v1 schema. */
inline void
writeJson(const std::string &path, const std::string &suite,
          const std::vector<Result> &results,
          const std::vector<Speedup> &summary = {})
{
    std::ofstream out(path, std::ios::binary);
    out << "{\n"
        << "  \"schema\": \"adrias-bench-v1\",\n"
        << "  \"suite\": \"" << suite << "\",\n"
        << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result &r = results[i];
        out << "    {\"name\": \"" << r.name << "\", \"median_ns\": "
            << jsonNumber(r.medianNs) << ", \"min_ns\": "
            << jsonNumber(r.minNs) << ", \"mean_ns\": "
            << jsonNumber(r.meanNs) << ", \"iterations\": "
            << r.iterations << ", \"warmup\": " << r.warmup << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"summary\": [\n";
    for (std::size_t i = 0; i < summary.size(); ++i) {
        const Speedup &s = summary[i];
        out << "    {\"name\": \"" << s.name << "\", \"before_ns\": "
            << jsonNumber(s.beforeNs) << ", \"after_ns\": "
            << jsonNumber(s.afterNs) << ", \"speedup\": "
            << jsonNumber(s.speedup()) << "}"
            << (i + 1 < summary.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

/** Human-readable console rendering of a suite. */
inline void
printResults(const std::string &suite,
             const std::vector<Result> &results,
             const std::vector<Speedup> &summary = {})
{
    std::cout << "suite: " << suite << "\n";
    for (const Result &r : results) {
        std::printf("  %-36s median %12.0f ns  min %12.0f ns  "
                    "(%zu iters, %zu warmup)\n",
                    r.name.c_str(), r.medianNs, r.minNs, r.iterations,
                    r.warmup);
    }
    for (const Speedup &s : summary) {
        std::printf("  %-36s %.2fx (%.0f ns -> %.0f ns)\n",
                    s.name.c_str(), s.speedup(), s.beforeNs, s.afterNs);
    }
}

/** JSON destination: ADRIAS_BENCH_OUTDIR (default out/). */
inline std::string
jsonPath(const std::string &filename)
{
    const char *env = std::getenv("ADRIAS_BENCH_OUTDIR");
    const std::filesystem::path dir = env && *env ? env : "out";
    std::filesystem::create_directories(dir);
    return (dir / filename).string();
}

} // namespace adrias::bench::micro

#endif // ADRIAS_BENCH_MICROBENCH_HH
