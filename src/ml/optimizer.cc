#include "ml/optimizer.hh"

#include <cmath>

#include "common/logging.hh"

namespace adrias::ml
{

Optimizer::Optimizer(std::vector<Param *> parameters)
    : params(std::move(parameters))
{
    for (const Param *p : params)
        if (!p)
            panic("Optimizer given a null parameter");
}

void
Optimizer::zeroGrad()
{
    for (Param *p : params)
        p->zeroGrad();
}

double
Optimizer::clipGradNorm(double max_norm)
{
    if (max_norm <= 0.0)
        fatal("clipGradNorm: max_norm must be positive");
    double total_sq = 0.0;
    for (const Param *p : params)
        for (double g : p->grad.raw())
            total_sq += g * g;
    const double norm = std::sqrt(total_sq);
    if (norm > max_norm && norm > 0.0) {
        const double scale = max_norm / norm;
        for (Param *p : params)
            p->grad *= scale;
    }
    return norm;
}

Sgd::Sgd(std::vector<Param *> parameters, double learning_rate,
         double momentum_)
    : Optimizer(std::move(parameters)), lr(learning_rate),
      momentum(momentum_)
{
    if (lr <= 0.0)
        fatal("Sgd learning rate must be positive");
    velocity.reserve(params.size());
    for (const Param *p : params)
        velocity.emplace_back(p->value.rows(), p->value.cols());
}

void
Sgd::step()
{
    for (std::size_t i = 0; i < params.size(); ++i) {
        Param &p = *params[i];
        Matrix &vel = velocity[i];
        for (std::size_t j = 0; j < p.value.size(); ++j) {
            vel.raw()[j] = momentum * vel.raw()[j] - lr * p.grad.raw()[j];
            p.value.raw()[j] += vel.raw()[j];
        }
    }
}

Adam::Adam(std::vector<Param *> parameters, double learning_rate,
           double beta1_, double beta2_, double epsilon_)
    : Optimizer(std::move(parameters)), lr(learning_rate), beta1(beta1_),
      beta2(beta2_), epsilon(epsilon_)
{
    if (lr <= 0.0)
        fatal("Adam learning rate must be positive");
    m.reserve(params.size());
    v.reserve(params.size());
    for (const Param *p : params) {
        m.emplace_back(p->value.rows(), p->value.cols());
        v.emplace_back(p->value.rows(), p->value.cols());
    }
}

void
Adam::step()
{
    ++t;
    const double bias1 = 1.0 - std::pow(beta1, static_cast<double>(t));
    const double bias2 = 1.0 - std::pow(beta2, static_cast<double>(t));
    for (std::size_t i = 0; i < params.size(); ++i) {
        Param &p = *params[i];
        for (std::size_t j = 0; j < p.value.size(); ++j) {
            const double g = p.grad.raw()[j];
            m[i].raw()[j] = beta1 * m[i].raw()[j] + (1.0 - beta1) * g;
            v[i].raw()[j] = beta2 * v[i].raw()[j] + (1.0 - beta2) * g * g;
            const double m_hat = m[i].raw()[j] / bias1;
            const double v_hat = v[i].raw()[j] / bias2;
            p.value.raw()[j] -=
                lr * m_hat / (std::sqrt(v_hat) + epsilon);
        }
    }
}

} // namespace adrias::ml
