/**
 * @file
 * Minimal JSON rendering helpers shared by the metrics and trace
 * exporters.  Only what the exporters need: string escaping and a
 * number formatter that maps non-finite values to null (NaN/Inf are
 * not valid JSON).
 */

#ifndef ADRIAS_OBS_JSON_HH
#define ADRIAS_OBS_JSON_HH

#include <cmath>
#include <cstdio>
#include <string>

namespace adrias::obs
{

/** Escape a string for embedding inside a JSON string literal. */
inline std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Render a double as a JSON token; non-finite values become null. */
inline std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

} // namespace adrias::obs

#endif // ADRIAS_OBS_JSON_HH
