#include "fault/crash.hh"

#include "common/logging.hh"

namespace adrias::fault
{

std::string
toString(CrashSite site)
{
    switch (site) {
      case CrashSite::MidCheckpoint:
        return "mid-checkpoint";
      case CrashSite::BeforeCheckpointRename:
        return "before-checkpoint-rename";
      case CrashSite::MidJournalAppend:
        return "mid-journal-append";
      case CrashSite::BetweenTicks:
        return "between-ticks";
    }
    panic("unknown CrashSite");
}

void
CrashInjector::maybeCrash(CrashSite site, SimTime now)
{
    if (!pending() || site != plan.site || now < plan.tick)
        return;
    hasFired = true;
    throw InjectedCrash("injected crash at " + toString(site) + " (t=" +
                        std::to_string(now) + ")");
}

} // namespace adrias::fault
