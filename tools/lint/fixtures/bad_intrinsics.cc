// Deliberately violating fixture for the raw-intrinsics rule.

#include <immintrin.h>

void
leakyKernel(const double *x, double *out)
{
    __m256d v = _mm256_loadu_pd(x);
    v = _mm256_add_pd(v, v);
    _mm256_storeu_pd(out, v);
    // NOLINTNEXTLINE(raw-intrinsics)
    const __m128d escaped = _mm_setzero_pd();
    (void)escaped;
}
