/**
 * @file
 * Multi-node cluster simulation — the paper's §VII scalability design:
 * the Watcher and Predictor are per-node, while the orchestration
 * logic is centralized and must pick a node *and* a memory mode for
 * each arriving application, accounting for cluster-level efficiency
 * on iso-QoS predictions.
 *
 * Two cluster models coexist:
 *  - the legacy model (node-count constructor): each node is an
 *    independent ThymesisFlow borrower/lender pair with no cross-node
 *    lending — exactly the historical behaviour, preserved bit for bit;
 *  - the rack model (Topology constructor): one RackTestbed shared by
 *    all nodes, where a remote placement is a (node, server, link)
 *    triple, servers account allocated capacity, and per-link fault
 *    injection targets links by name.
 */

#ifndef ADRIAS_SCENARIO_CLUSTER_HH
#define ADRIAS_SCENARIO_CLUSTER_HH

#include <memory>
#include <optional>
#include <vector>

#include "scenario/placement.hh"
#include "scenario/runner.hh"
#include "testbed/rack.hh"
#include "testbed/topology.hh"

namespace adrias::scenario
{

/**
 * A placement decision.  The legacy model uses (node, mode) only; on a
 * rack a Remote decision additionally names the memory server lending
 * the range and the link carrying the traffic.
 */
struct ClusterPlacement
{
    std::size_t node = 0;
    MemoryMode mode = MemoryMode::Local;

    /** Lending memory server (rack model, mode == Remote). */
    std::size_t server = 0;

    /** Link carrying the remote traffic (rack model, mode == Remote). */
    std::size_t link = 0;
};

/** What a cluster policy may inspect about one node. */
struct NodeView
{
    /** The node's live telemetry. */
    const telemetry::Watcher *watcher = nullptr;

    /** Number of deployments currently running on the node. */
    std::size_t running = 0;
};

/** What a cluster policy may inspect about one memory server. */
struct ServerView
{
    /** Allocatable capacity, GB. */
    double capacityGb = 0.0;

    /** Capacity still unallocated, GB. */
    double availableGb = 0.0;
};

/** What a cluster policy may inspect about one link. */
struct LinkView
{
    /** Endpoints (indices into the topology). */
    std::size_t node = 0;
    std::size_t server = 0;

    /** Fault derating currently applied (1 / 1 = healthy). */
    double bwScale = 1.0;
    double latencyScale = 1.0;

    /** @return true when the link can carry meaningful traffic. */
    bool healthy() const { return bwScale > 0.05; }
};

/** Live rack state offered to placeRack decisions. */
struct RackView
{
    /** The rack description (never null inside placeRack). */
    const testbed::Topology *topology = nullptr;

    /** Per-server state, indexed like topology servers. */
    std::vector<ServerView> servers;

    /** Per-link state, indexed like topology links. */
    std::vector<LinkView> links;
};

/**
 * Route a (node, mode) decision onto a rack: among the healthy links
 * leaving `placement.node`, pick the server with the most available
 * capacity that can still fit the app's footprint (ties broken by
 * lowest link index).  A Remote decision with no viable route falls
 * back to Local — the surviving-servers degradation path when links
 * die or servers drain.
 */
ClusterPlacement routeOnRack(ClusterPlacement placement,
                             const workloads::WorkloadSpec &spec,
                             const RackView &rack);

/** Chooses node and memory mode for arriving applications. */
class ClusterPolicy
{
  public:
    virtual ~ClusterPolicy() = default;

    /** Short name for bench tables. */
    virtual std::string name() const = 0;

    /**
     * Decide placement for an arriving application.
     *
     * @param spec the application.
     * @param nodes one view per node, index == node id.
     * @param now arrival time.
     */
    virtual ClusterPlacement place(const workloads::WorkloadSpec &spec,
                                   const std::vector<NodeView> &nodes,
                                   SimTime now) = 0;

    /**
     * Rack-aware placement.  The default derives (node, mode) from
     * place() and routes Remote decisions with routeOnRack(); policies
     * that reason about servers/links directly override this.
     */
    virtual ClusterPlacement
    placeRack(const workloads::WorkloadSpec &spec,
              const std::vector<NodeView> &nodes, const RackView &rack,
              SimTime now)
    {
        return routeOnRack(place(spec, nodes, now), spec, rack);
    }

    /** Completion callback with the owning node. */
    virtual void
    onCompletion(std::size_t node, const DeploymentRecord &record)
    {
        (void)node;
        (void)record;
    }
};

/** Uniformly random node and mode. */
class RandomClusterPolicy : public ClusterPolicy
{
  public:
    explicit RandomClusterPolicy(std::uint64_t seed = 7) : rng(seed) {}

    std::string name() const override { return "random"; }

    ClusterPlacement
    place(const workloads::WorkloadSpec &,
          const std::vector<NodeView> &nodes, SimTime) override
    {
        ClusterPlacement placement;
        placement.node = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(nodes.size()) - 1));
        placement.mode = rng.bernoulli(0.5) ? MemoryMode::Remote
                                            : MemoryMode::Local;
        return placement;
    }

  private:
    Rng rng;
};

/** Node chosen by fewest running apps, always local memory. */
class LeastLoadedLocalPolicy : public ClusterPolicy
{
  public:
    std::string name() const override { return "least-loaded-local"; }

    ClusterPlacement
    place(const workloads::WorkloadSpec &,
          const std::vector<NodeView> &nodes, SimTime) override
    {
        ClusterPlacement placement;
        placement.mode = MemoryMode::Local;
        std::size_t best = SIZE_MAX;
        for (std::size_t n = 0; n < nodes.size(); ++n) {
            if (nodes[n].running < best) {
                best = nodes[n].running;
                placement.node = n;
            }
        }
        return placement;
    }
};

/** One completed cluster scenario. */
struct ClusterResult
{
    /** Per-node scenario results (trace, concurrency, records). */
    std::vector<ScenarioResult> nodes;

    /** Total channel traffic across all nodes, GB. */
    double totalRemoteTrafficGB = 0.0;

    /** Rack the scenario ran on ("" for the legacy model). */
    std::string topologyName;

    /** Per-link cumulative byte accounting (rack model only). */
    std::vector<testbed::LinkTotals> linkTotals;

    /** Arrivals dropped because no node could admit them. */
    std::size_t droppedArrivals = 0;

    /** Remote placements demoted to Local by capacity/link pressure. */
    std::size_t remoteFallbacks = 0;

    /** All completion records across nodes (node id attached). */
    struct NodeRecord
    {
        std::size_t node;
        const DeploymentRecord *record;
    };
    std::vector<NodeRecord> allRecords() const;
};

/** Drives one arrival stream across a cluster of simulated nodes. */
class ClusterScenarioRunner
{
  public:
    /**
     * Legacy model: `nodes` independent borrower/lender pairs.
     *
     * @param nodes cluster size (>= 1).
     * @param config arrival/scenario knobs (shared stream).
     * @param params per-node testbed calibration.
     */
    ClusterScenarioRunner(std::size_t nodes, ScenarioConfig config,
                          testbed::TestbedParams params = {});

    /**
     * Rack model: one shared RackTestbed over a validated topology.
     * Remote placements allocate the app's footprint on the lending
     * server for its lifetime; fault windows naming a link derate that
     * link only.
     */
    ClusterScenarioRunner(testbed::Topology topology,
                          ScenarioConfig config);

    /** Execute the scenario under the given cluster policy. */
    ClusterResult run(ClusterPolicy &policy);

  private:
    std::size_t nodeCount;
    ScenarioConfig config;
    testbed::TestbedParams testbedParams;
    std::optional<testbed::Topology> rackTopology;

    ClusterResult runLegacy(ClusterPolicy &policy);
    ClusterResult runRack(ClusterPolicy &policy);
};

} // namespace adrias::scenario

#endif // ADRIAS_SCENARIO_CLUSTER_HH
