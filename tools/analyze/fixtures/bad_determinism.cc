// Analyzer fixture: determinism-hazard violations.  Never compiled —
// parsed by tools/analyze self-tests.

#include "common/csv.hh"
#include "common/io/binary.hh"
#include "common/threadpool.hh"

namespace adrias::fixture
{

struct Node;

/** Unordered iteration feeding a BinaryWriter: must be flagged. */
void
dumpIndex(io::BinaryWriter &out,
          const std::unordered_map<std::string, int> &index)
{
    for (const auto &entry : index)
        out.writeU64(static_cast<std::uint64_t>(entry.second));
}

/** Pointer-keyed map feeding a CsvWriter: must be flagged. */
void
exportEdges(CsvWriter &writer, const std::map<Node *, int> &edges)
{
    for (const auto &edge : edges)
        writer.writeRow({std::to_string(edge.second)});
}

/** Cross-chunk float accumulation: must be flagged. */
double
meanLatency(ThreadPool &pool, const std::vector<double> &samples)
{
    double total = 0.0;
    pool.parallelFor(samples.size(),
                     [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i)
                             total += samples[i];
                     });
    return total / static_cast<double>(samples.size());
}

/** Waiver OUTSIDE the parallelFor argument list does not count: the
 *  accumulation into 'energy' must still be flagged. */
double
totalEnergy(ThreadPool &pool, const std::vector<double> &samples)
{
    ADRIAS_VECTOR_TIER_OK("misplaced: not inside the chunk region");
    double energy = 0.0;
    pool.parallelFor(samples.size(),
                     [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i)
                             energy += samples[i];
                     });
    return energy;
}

} // namespace adrias::fixture
