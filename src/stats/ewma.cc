#include "stats/ewma.hh"

#include "common/logging.hh"

namespace adrias::stats
{

Ewma::Ewma(double alpha) : smoothing(alpha)
{
    if (alpha <= 0.0 || alpha > 1.0)
        fatal("Ewma: alpha must lie in (0, 1]");
}

double
Ewma::add(double sample)
{
    if (samples == 0)
        current = sample;
    else
        current = (1.0 - smoothing) * current + smoothing * sample;
    ++samples;
    return current;
}

void
Ewma::reset()
{
    current = 0.0;
    samples = 0;
}

void
Ewma::reset(double seed_value)
{
    current = seed_value;
    samples = 1;
}

} // namespace adrias::stats
