/**
 * @file
 * Fixed-capacity ring buffer used for metric history windows.
 *
 * The Watcher keeps the last N samples of each performance event; this
 * container provides O(1) push with stable chronological iteration.
 */

#ifndef ADRIAS_COMMON_RING_BUFFER_HH
#define ADRIAS_COMMON_RING_BUFFER_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace adrias
{

/**
 * Fixed-capacity circular buffer; pushing past capacity evicts the
 * oldest element.
 *
 * @tparam T element type (copyable).
 */
template <typename T>
class RingBuffer
{
  public:
    /** @param capacity maximum number of retained elements (> 0). */
    explicit RingBuffer(std::size_t capacity)
        : storage(capacity), head(0), count(0)
    {
        if (capacity == 0)
            fatal("RingBuffer capacity must be positive");
    }

    /** Append a value, evicting the oldest when full. */
    void
    push(const T &value)
    {
        storage[head] = value;
        head = (head + 1) % storage.size();
        if (count < storage.size())
            ++count;
    }

    /** @return number of currently held elements. */
    std::size_t size() const { return count; }

    /** @return the fixed capacity. */
    std::size_t capacity() const { return storage.size(); }

    /** @return true when no elements are held. */
    bool empty() const { return count == 0; }

    /** @return true when size() == capacity(). */
    bool full() const { return count == storage.size(); }

    /** Drop all elements (capacity is unchanged). */
    void
    clear()
    {
        head = 0;
        count = 0;
    }

    /**
     * Chronological access: index 0 is the oldest retained element,
     * size()-1 the newest.
     */
    const T &
    at(std::size_t index) const
    {
        if (index >= count)
            panic("RingBuffer index out of range");
        const std::size_t start =
            (head + storage.size() - count) % storage.size();
        return storage[(start + index) % storage.size()];
    }

    /** @return the most recently pushed element. @pre !empty() */
    const T &
    newest() const
    {
        return at(count - 1);
    }

    /** @return the oldest retained element. @pre !empty() */
    const T &
    oldest() const
    {
        return at(0);
    }

    /** Copy the contents out in chronological order. */
    std::vector<T>
    toVector() const
    {
        std::vector<T> result;
        result.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            result.push_back(at(i));
        return result;
    }

  private:
    std::vector<T> storage;
    std::size_t head;  ///< next write position
    std::size_t count; ///< number of valid elements
};

} // namespace adrias

#endif // ADRIAS_COMMON_RING_BUFFER_HH
