/**
 * @file
 * adrias_analyze entry point.
 *
 *   adrias_analyze <repo-root>              analyze src/; exit 1 on
 *                                           findings, 0 when clean.
 *   adrias_analyze <repo-root> -o <file>    additionally write the
 *                                           findings to <file> (for
 *                                           the CI artifact upload).
 *   adrias_analyze --list-passes            print pass ids and
 *                                           descriptions.
 *
 * Wired into CTest as the `analyze` test
 * (tools/analyze/CMakeLists.txt) and the CI static-analysis job.
 */

#include "analyze/analyze.hh"

// The analyzer is a host tool, not simulator library code, so it may
// talk to the console and filesystem directly.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

int
main(int argc, char **argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.size() == 1 && args[0] == "--list-passes") {
        for (const auto &pass : adrias::analyze::passes())
            std::cout << pass.id << "  " << pass.description << "\n";
        return 0;
    }

    std::string root;
    std::string output;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if ((args[i] == "-o" || args[i] == "--output") &&
            i + 1 < args.size()) {
            output = args[++i];
        } else if (root.empty()) {
            root = args[i];
        } else {
            root.clear();
            break;
        }
    }
    if (root.empty()) {
        std::cerr << "usage: adrias_analyze <repo-root> "
                     "[-o findings.txt] | --list-passes\n";
        return 2;
    }

    const auto findings = adrias::analyze::analyzeTree(root);
    for (const auto &finding : findings)
        std::cout << adrias::analyze::formatFinding(finding) << "\n";
    if (!output.empty()) {
        std::ofstream out(output);
        for (const auto &finding : findings)
            out << adrias::analyze::formatFinding(finding) << "\n";
        if (!out) {
            std::cerr << "adrias_analyze: cannot write " << output << "\n";
            return 2;
        }
    }
    if (!findings.empty()) {
        std::cout << findings.size() << " analyzer finding"
                  << (findings.size() == 1 ? "" : "s")
                  << " (waive with ADRIAS_NOT_CHECKPOINTED(reason) / "
                     "ADRIAS_LOCK_FREE(reason) on the member, or "
                     "NOLINT(<pass>) on the line)\n";
        return 1;
    }
    return 0;
}
