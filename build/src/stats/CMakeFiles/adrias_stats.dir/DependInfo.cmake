
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cc" "src/stats/CMakeFiles/adrias_stats.dir/correlation.cc.o" "gcc" "src/stats/CMakeFiles/adrias_stats.dir/correlation.cc.o.d"
  "/root/repo/src/stats/ewma.cc" "src/stats/CMakeFiles/adrias_stats.dir/ewma.cc.o" "gcc" "src/stats/CMakeFiles/adrias_stats.dir/ewma.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/adrias_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/adrias_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/online_stats.cc" "src/stats/CMakeFiles/adrias_stats.dir/online_stats.cc.o" "gcc" "src/stats/CMakeFiles/adrias_stats.dir/online_stats.cc.o.d"
  "/root/repo/src/stats/percentile.cc" "src/stats/CMakeFiles/adrias_stats.dir/percentile.cc.o" "gcc" "src/stats/CMakeFiles/adrias_stats.dir/percentile.cc.o.d"
  "/root/repo/src/stats/regression_metrics.cc" "src/stats/CMakeFiles/adrias_stats.dir/regression_metrics.cc.o" "gcc" "src/stats/CMakeFiles/adrias_stats.dir/regression_metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adrias_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
