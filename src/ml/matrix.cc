#include "ml/matrix.hh"

#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "common/threadpool.hh"

namespace adrias::ml
{

namespace
{

MatrixParallelConfig g_parallel{};

/**
 * Run `kernel` over [0, rows) — on the global pool when the total work
 * clears `grain`, inline otherwise.  Both paths call the same
 * std::function target, so the compiler emits one body and serial and
 * parallel execution are bitwise identical (DESIGN.md §9); chunk
 * boundaries come from ThreadPool's fixed partition rule and depend
 * only on `rows`.
 */
void
runRows(std::size_t rows, std::size_t total_work, std::size_t grain,
        const std::function<void(std::size_t, std::size_t)> &kernel)
{
    if (rows == 0)
        return;
    if (rows > 1 && total_work >= grain)
        ThreadPool::global().parallelFor(rows, kernel);
    else
        kernel(0, rows);
}

} // namespace

MatrixParallelConfig
matrixParallelConfig()
{
    return g_parallel;
}

void
setMatrixParallelConfig(MatrixParallelConfig config)
{
    g_parallel = config;
}

Matrix::Matrix(std::size_t rows_, std::size_t cols_)
    : nRows(rows_), nCols(cols_), data(rows_ * cols_, 0.0)
{
}

Matrix::Matrix(std::size_t rows_, std::size_t cols_,
               std::vector<double> values)
    : nRows(rows_), nCols(cols_), data(std::move(values))
{
    if (data.size() != nRows * nCols)
        panic("Matrix: initializer size does not match shape");
}

Matrix
Matrix::constant(std::size_t rows, std::size_t cols, double value)
{
    Matrix m(rows, cols);
    for (double &x : m.data)
        x = value;
    return m;
}

Matrix
Matrix::identity(std::size_t order)
{
    Matrix m(order, order);
    for (std::size_t i = 0; i < order; ++i)
        m.at(i, i) = 1.0;
    return m;
}

Matrix
Matrix::rowVector(const std::vector<double> &values)
{
    return Matrix(1, values.size(), values);
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    if (r >= nRows || c >= nCols)
        panic("Matrix::at out of range (" + shape() + ")");
    return data[r * nCols + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    if (r >= nRows || c >= nCols)
        panic("Matrix::at out of range (" + shape() + ")");
    return data[r * nCols + c];
}

void
Matrix::checkSameShape(const Matrix &other, const char *op) const
{
    if (nRows != other.nRows || nCols != other.nCols) {
        panic(std::string("Matrix shape mismatch in ") + op + ": " +
              shape() + " vs " + other.shape());
    }
}

Matrix
Matrix::matmul(const Matrix &other) const
{
    if (nCols != other.nRows) {
        panic("Matrix::matmul inner dimension mismatch: " + shape() +
              " * " + other.shape());
    }
    Matrix out(nRows, other.nCols);
    // Partitioned over output rows: each row accumulates over k in
    // fixed index order, so the result never depends on the partition.
    // i-k-j loop order keeps the inner loop contiguous in both inputs.
    runRows(nRows, nRows * nCols * other.nCols, g_parallel.gemmGrain,
            [this, &other, &out](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                    for (std::size_t k = 0; k < nCols; ++k) {
                        const double lhs = data[i * nCols + k];
                        // Exact-zero sparsity skip; a tolerance would
                        // change results.  NOLINTNEXTLINE(float-equal)
                        if (lhs == 0.0)
                            continue;
                        const double *rhs_row =
                            &other.data[k * other.nCols];
                        double *out_row = &out.data[i * other.nCols];
                        for (std::size_t j = 0; j < other.nCols; ++j)
                            out_row[j] += lhs * rhs_row[j];
                    }
                }
            });
    return out;
}

Matrix
Matrix::transposedMatmul(const Matrix &other) const
{
    // (this^T * other): this is (k x m), other (k x n) -> (m x n)
    if (nRows != other.nRows) {
        panic("Matrix::transposedMatmul dimension mismatch: " + shape() +
              "^T * " + other.shape());
    }
    Matrix out(nCols, other.nCols);
    // Partitioned over output rows i (columns of this).  Every
    // out(i, j) accumulates over k in increasing order — the same
    // per-element order as a k-outer loop — so per-sample gradient
    // contributions (k indexes the sample in backward passes) are
    // summed in fixed index order regardless of thread count.
    runRows(nCols, nRows * nCols * other.nCols, g_parallel.gemmGrain,
            [this, &other, &out](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                    double *out_row = &out.data[i * other.nCols];
                    for (std::size_t k = 0; k < nRows; ++k) {
                        const double lhs = data[k * nCols + i];
                        // Exact-zero sparsity skip.
                        // NOLINTNEXTLINE(float-equal)
                        if (lhs == 0.0)
                            continue;
                        const double *rhs_row =
                            &other.data[k * other.nCols];
                        for (std::size_t j = 0; j < other.nCols; ++j)
                            out_row[j] += lhs * rhs_row[j];
                    }
                }
            });
    return out;
}

Matrix
Matrix::matmulTransposed(const Matrix &other) const
{
    // (this * other^T): this is (m x k), other (n x k) -> (m x n)
    if (nCols != other.nCols) {
        panic("Matrix::matmulTransposed dimension mismatch: " + shape() +
              " * " + other.shape() + "^T");
    }
    Matrix out(nRows, other.nRows);
    runRows(nRows, nRows * nCols * other.nRows, g_parallel.gemmGrain,
            [this, &other, &out](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                    const double *lhs_row = &data[i * nCols];
                    for (std::size_t j = 0; j < other.nRows; ++j) {
                        const double *rhs_row =
                            &other.data[j * other.nCols];
                        double acc = 0.0;
                        for (std::size_t k = 0; k < nCols; ++k)
                            acc += lhs_row[k] * rhs_row[k];
                        out.data[i * other.nRows + j] = acc;
                    }
                }
            });
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(nCols, nRows);
    // Partitioned over output rows (source columns).
    runRows(nCols, data.size(), g_parallel.elementGrain,
            [this, &out](std::size_t begin, std::size_t end) {
                for (std::size_t c = begin; c < end; ++c)
                    for (std::size_t r = 0; r < nRows; ++r)
                        out.data[c * nRows + r] = data[r * nCols + c];
            });
    return out;
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    checkSameShape(other, "operator+");
    Matrix out = *this;
    runRows(data.size(), data.size(), g_parallel.elementGrain,
            [&out, &other](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i)
                    out.data[i] += other.data[i];
            });
    return out;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    checkSameShape(other, "operator-");
    Matrix out = *this;
    runRows(data.size(), data.size(), g_parallel.elementGrain,
            [&out, &other](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i)
                    out.data[i] -= other.data[i];
            });
    return out;
}

Matrix
Matrix::hadamard(const Matrix &other) const
{
    checkSameShape(other, "hadamard");
    Matrix out = *this;
    runRows(data.size(), data.size(), g_parallel.elementGrain,
            [&out, &other](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i)
                    out.data[i] *= other.data[i];
            });
    return out;
}

Matrix
Matrix::operator*(double scalar) const
{
    Matrix out = *this;
    out *= scalar;
    return out;
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    checkSameShape(other, "operator+=");
    runRows(data.size(), data.size(), g_parallel.elementGrain,
            [this, &other](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i)
                    data[i] += other.data[i];
            });
    return *this;
}

Matrix &
Matrix::operator*=(double scalar)
{
    runRows(data.size(), data.size(), g_parallel.elementGrain,
            [this, scalar](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i)
                    data[i] *= scalar;
            });
    return *this;
}

Matrix
Matrix::addRowBroadcast(const Matrix &rowVec) const
{
    if (rowVec.nRows != 1 || rowVec.nCols != nCols)
        panic("Matrix::addRowBroadcast shape mismatch");
    Matrix out = *this;
    runRows(nRows, data.size(), g_parallel.elementGrain,
            [&out, &rowVec, this](std::size_t begin, std::size_t end) {
                for (std::size_t r = begin; r < end; ++r)
                    for (std::size_t c = 0; c < nCols; ++c)
                        out.data[r * nCols + c] += rowVec.data[c];
            });
    return out;
}

Matrix
Matrix::sumRows() const
{
    Matrix out(1, nCols);
    // Partitioned over columns; each column accumulates its rows in
    // increasing row order, exactly as the serial loop nest does.
    runRows(nCols, data.size(), g_parallel.elementGrain,
            [this, &out](std::size_t begin, std::size_t end) {
                for (std::size_t c = begin; c < end; ++c)
                    for (std::size_t r = 0; r < nRows; ++r)
                        out.data[c] += data[r * nCols + c];
            });
    return out;
}

Matrix
Matrix::map(const std::function<double(double)> &fn) const
{
    // Deliberately serial: fn may be stateful (see header).
    Matrix out = *this;
    for (double &x : out.data)
        x = fn(x);
    return out;
}

Matrix
Matrix::hconcat(const Matrix &other) const
{
    if (nRows != other.nRows)
        panic("Matrix::hconcat row count mismatch");
    Matrix out(nRows, nCols + other.nCols);
    for (std::size_t r = 0; r < nRows; ++r) {
        for (std::size_t c = 0; c < nCols; ++c)
            out.data[r * out.nCols + c] = data[r * nCols + c];
        for (std::size_t c = 0; c < other.nCols; ++c)
            out.data[r * out.nCols + nCols + c] =
                other.data[r * other.nCols + c];
    }
    return out;
}

Matrix
Matrix::colRange(std::size_t begin, std::size_t end) const
{
    if (begin > end || end > nCols)
        panic("Matrix::colRange out of bounds");
    Matrix out(nRows, end - begin);
    for (std::size_t r = 0; r < nRows; ++r)
        for (std::size_t c = begin; c < end; ++c)
            out.data[r * out.nCols + (c - begin)] = data[r * nCols + c];
    return out;
}

Matrix
Matrix::row(std::size_t r) const
{
    if (r >= nRows)
        panic("Matrix::row out of range");
    Matrix out(1, nCols);
    for (std::size_t c = 0; c < nCols; ++c)
        out.data[c] = data[r * nCols + c];
    return out;
}

void
Matrix::setZero()
{
    for (double &x : data)
        x = 0.0;
}

double
Matrix::norm() const
{
    double total = 0.0;
    for (double x : data)
        total += x * x;
    return std::sqrt(total);
}

double
Matrix::maxAbs() const
{
    double peak = 0.0;
    for (double x : data)
        peak = std::max(peak, std::fabs(x));
    return peak;
}

std::string
Matrix::shape() const
{
    std::ostringstream out;
    out << nRows << "x" << nCols;
    return out.str();
}

} // namespace adrias::ml
