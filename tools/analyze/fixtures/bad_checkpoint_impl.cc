// Analyzer fixture: out-of-line bodies for bad_checkpoint.hh.  The
// checkpoint-coverage pass must merge these with the header's class.

#include "bad_checkpoint.hh"

namespace adrias::fixture
{

int Telemeter::instances = 0;

void
Telemeter::writeCore(io::BinaryWriter &out) const
{
    out.writeU64(samples);
}

void
Telemeter::saveState(io::BinaryWriter &out) const
{
    // Delegation: `samples` is covered through writeCore().
    writeCore(out);
    out.writeF64(ema);
}

Result<void>
Telemeter::restoreState(io::BinaryReader &in)
{
    samples = in.readU64();
    // `ema` is deliberately forgotten here, and `window` everywhere.
    return {};
}

} // namespace adrias::fixture
