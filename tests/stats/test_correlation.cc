/** @file Unit tests for stats/correlation. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "stats/correlation.hh"

namespace adrias::stats
{
namespace
{

TEST(Pearson, PerfectPositive)
{
    std::vector<double> x{1.0, 2.0, 3.0, 4.0};
    std::vector<double> y{2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative)
{
    std::vector<double> x{1.0, 2.0, 3.0};
    std::vector<double> y{9.0, 6.0, 3.0};
    EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceGivesZero)
{
    std::vector<double> x{1.0, 1.0, 1.0};
    std::vector<double> y{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, IndependentSamplesNearZero)
{
    Rng rng(3);
    std::vector<double> x, y;
    for (int i = 0; i < 20000; ++i) {
        x.push_back(rng.gaussian());
        y.push_back(rng.gaussian());
    }
    EXPECT_NEAR(pearson(x, y), 0.0, 0.03);
}

TEST(Pearson, InvariantToAffineTransform)
{
    Rng rng(9);
    std::vector<double> x, y, y_scaled;
    for (int i = 0; i < 500; ++i) {
        const double a = rng.gaussian();
        x.push_back(a);
        const double b = 0.7 * a + 0.3 * rng.gaussian();
        y.push_back(b);
        y_scaled.push_back(5.0 * b - 100.0);
    }
    EXPECT_NEAR(pearson(x, y), pearson(x, y_scaled), 1e-12);
}

TEST(Pearson, InputValidation)
{
    EXPECT_THROW(pearson({1.0}, {1.0, 2.0}), std::runtime_error);
    EXPECT_THROW(pearson({1.0}, {1.0}), std::runtime_error);
}

TEST(FractionalRanks, NoTies)
{
    const auto r = fractionalRanks({30.0, 10.0, 20.0});
    ASSERT_EQ(r.size(), 3u);
    EXPECT_DOUBLE_EQ(r[0], 3.0);
    EXPECT_DOUBLE_EQ(r[1], 1.0);
    EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(FractionalRanks, TiesShareAverageRank)
{
    const auto r = fractionalRanks({1.0, 2.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 2.5);
    EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Spearman, MonotoneNonlinearRelationIsOne)
{
    std::vector<double> x, y;
    for (int i = 1; i <= 50; ++i) {
        x.push_back(i);
        y.push_back(std::exp(0.1 * i)); // monotone but nonlinear
    }
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
    EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Spearman, AntitoneIsMinusOne)
{
    std::vector<double> x{1.0, 2.0, 3.0, 4.0};
    std::vector<double> y{100.0, 10.0, 1.0, 0.1};
    EXPECT_NEAR(spearman(x, y), -1.0, 1e-12);
}

} // namespace
} // namespace adrias::stats
