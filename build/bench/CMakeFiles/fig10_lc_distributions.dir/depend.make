# Empty dependencies file for fig10_lc_distributions.
# This may be replaced when dependencies are built.
