/**
 * @file
 * Micro-benchmarks (google-benchmark) for the deep-learning kernels:
 * matmul, LSTM forward/backward, head forward.  Not a paper figure —
 * establishes the substrate's throughput envelope.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "ml/loss.hh"
#include "ml/lstm.hh"
#include "ml/sequential.hh"

namespace
{

using namespace adrias;

ml::Matrix
randomMatrix(std::size_t rows, std::size_t cols, Rng &rng)
{
    ml::Matrix m(rows, cols);
    for (double &x : m.raw())
        x = rng.gaussian();
    return m;
}

void
BM_Matmul(benchmark::State &state)
{
    Rng rng(1);
    const auto n = static_cast<std::size_t>(state.range(0));
    const ml::Matrix a = randomMatrix(n, n, rng);
    const ml::Matrix b = randomMatrix(n, n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.matmul(b));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(16)->Arg(64)->Arg(128);

void
BM_LstmForward(benchmark::State &state)
{
    Rng rng(2);
    const auto hidden = static_cast<std::size_t>(state.range(0));
    ml::Lstm lstm(7, hidden, rng);
    std::vector<ml::Matrix> seq;
    for (int t = 0; t < 12; ++t)
        seq.push_back(randomMatrix(32, 7, rng));
    for (auto _ : state) {
        benchmark::DoNotOptimize(lstm.forwardSequence(seq));
    }
}
BENCHMARK(BM_LstmForward)->Arg(16)->Arg(24)->Arg(48);

void
BM_LstmTrainStep(benchmark::State &state)
{
    Rng rng(3);
    const auto hidden = static_cast<std::size_t>(state.range(0));
    ml::Lstm lstm(7, hidden, rng);
    std::vector<ml::Matrix> seq;
    for (int t = 0; t < 12; ++t)
        seq.push_back(randomMatrix(32, 7, rng));
    const ml::Matrix target = randomMatrix(32, hidden, rng);
    for (auto _ : state) {
        const auto out = lstm.forwardSequence(seq);
        std::vector<ml::Matrix> grads(seq.size(),
                                      ml::Matrix(32, hidden));
        ml::mseLoss(out.back(), target, &grads.back());
        benchmark::DoNotOptimize(lstm.backwardSequence(grads));
    }
}
BENCHMARK(BM_LstmTrainStep)->Arg(16)->Arg(24);

void
BM_HeadForward(benchmark::State &state)
{
    Rng rng(4);
    auto head = ml::makeNonLinearHead(56, 32, 1, 0.0, rng,
                                      ml::HeadNorm::Layer);
    head->setTraining(false);
    const ml::Matrix input = randomMatrix(32, 56, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(head->forward(input));
    }
}
BENCHMARK(BM_HeadForward);

} // namespace

BENCHMARK_MAIN();
