/**
 * @file
 * micro — crash-safety costs (DESIGN.md §12): how much a snapshot
 * write, a newest-snapshot restore, a write-ahead journal append and a
 * raw atomic file publish cost on this machine.  Feeds the
 * perf-regression gate (tools/bench_compare against
 * bench/baselines/BENCH_recovery.json); the same latencies are exported
 * at runtime through the obs layer (recovery.checkpoint_write_ms,
 * recovery.restore_ms).
 *
 * The checkpointed state is a ScenarioEngine warmed with two simulated
 * minutes of a congested scenario plus a policy section — the realistic
 * mid-run payload, not an empty toy.
 */

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench/microbench.hh"
#include "common/logging.hh"
#include "common/threadpool.hh"
#include "recovery/checkpoint.hh"
#include "recovery/journal.hh"
#include "scenario/engine.hh"

namespace
{

using namespace adrias;

} // namespace

int
main()
{
    ScopedThreadOverride serial(1);

    const std::string dir =
        (std::filesystem::temp_directory_path() / "adrias_micro_ckpt")
            .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    // Two simulated minutes of evolving state: running instances,
    // watcher history, partial results, advanced RNG streams.
    scenario::ScenarioConfig config;
    config.durationSec = 600;
    config.spawnMinSec = 5;
    config.spawnMaxSec = 20;
    config.seed = 4242;
    scenario::ScenarioEngine engine(config);
    scenario::RandomPlacement policy(777);
    for (int t = 0; t < 120; ++t)
        engine.stepTick(policy);

    recovery::CheckpointConfig checkpointConfig;
    checkpointConfig.dir = dir;
    checkpointConfig.intervalSec = 60;
    checkpointConfig.keep = 2;
    recovery::CheckpointManager manager(checkpointConfig);
    manager.attach(engine);
    manager.attach(policy);

    std::vector<bench::micro::Result> results;

    SimTime tick = 1000;
    results.push_back(bench::micro::measure("checkpoint_write", [&] {
        if (!manager.checkpointNow(tick++).ok())
            fatal("micro_checkpoint: checkpointNow failed");
    }));

    results.push_back(bench::micro::measure("snapshot_restore", [&] {
        Result<recovery::RestoreOutcome> outcome =
            manager.restoreLatest();
        if (!outcome.ok() || !outcome.value().restored)
            fatal("micro_checkpoint: restoreLatest failed");
    }));

    recovery::DecisionJournal journal;
    if (!journal.open(dir + "/journal-bench.adj").ok())
        fatal("micro_checkpoint: journal open failed");
    scenario::PlacementDecision decision;
    decision.tick = 120;
    decision.id = 7;
    decision.specName = "spark-gmm";
    decision.mode = MemoryMode::Remote;
    results.push_back(bench::micro::measure("journal_append", [&] {
        decision.tick++;
        journal.onDecision(decision);
    }));
    journal.close();

    const std::string payload(64 * 1024, 'x');
    const std::string target = dir + "/atomic-64k.bin";
    results.push_back(bench::micro::measure("atomic_write_64k", [&] {
        if (!io::atomicWriteFile(target, payload).ok())
            fatal("micro_checkpoint: atomicWriteFile failed");
    }));

    std::filesystem::remove_all(dir);

    bench::micro::printResults("recovery", results);
    const std::string path =
        bench::micro::jsonPath("BENCH_recovery.json");
    bench::micro::writeJson(path, "recovery", results);
    std::cout << "JSON written to " << path << "\n";
    return 0;
}
