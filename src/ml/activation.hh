/**
 * @file
 * Element-wise activation layers (ReLU, Tanh, Sigmoid).
 */

#ifndef ADRIAS_ML_ACTIVATION_HH
#define ADRIAS_ML_ACTIVATION_HH

#include "ml/layer.hh"

namespace adrias::ml
{

/** Rectified linear unit: y = max(0, x). */
class ReLU : public Layer
{
  public:
    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;

  private:
    Matrix lastInput;
};

/** Hyperbolic tangent activation. */
class Tanh : public Layer
{
  public:
    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;

  private:
    Matrix lastOutput;
};

/** Logistic sigmoid activation. */
class Sigmoid : public Layer
{
  public:
    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;

  private:
    Matrix lastOutput;
};

/** Scalar sigmoid helper used by the LSTM cell. */
double sigmoidScalar(double x);

} // namespace adrias::ml

#endif // ADRIAS_ML_ACTIVATION_HH
