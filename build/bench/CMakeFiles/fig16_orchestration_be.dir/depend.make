# Empty dependencies file for fig16_orchestration_be.
# This may be replaced when dependencies are built.
