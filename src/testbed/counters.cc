#include "testbed/counters.hh"

#include "common/logging.hh"

namespace adrias::testbed
{

std::string
perfEventName(PerfEvent event)
{
    switch (event) {
      case PerfEvent::LlcLoads:
        return "LLC_ld";
      case PerfEvent::LlcMisses:
        return "LLC_mis";
      case PerfEvent::MemLoads:
        return "MEM_ld";
      case PerfEvent::MemStores:
        return "MEM_st";
      case PerfEvent::RemoteTx:
        return "RMT_tx";
      case PerfEvent::RemoteRx:
        return "RMT_rx";
      case PerfEvent::ChannelLat:
        return "CHAN_lat";
    }
    panic("unknown PerfEvent");
}

const std::vector<PerfEvent> &
allPerfEvents()
{
    static const std::vector<PerfEvent> events{
        PerfEvent::LlcLoads,  PerfEvent::LlcMisses, PerfEvent::MemLoads,
        PerfEvent::MemStores, PerfEvent::RemoteTx,  PerfEvent::RemoteRx,
        PerfEvent::ChannelLat,
    };
    return events;
}

} // namespace adrias::testbed
