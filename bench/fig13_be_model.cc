/**
 * @file
 * Fig. 13 — Best-effort performance model accuracy:
 *   (a) R² overall / local / remote with actual future state,
 *   (b) stacked-model ablation over the {train, test} future-input
 *       pairs {None,None}, {120,120}, {exec,exec}, {120,Ŝ},
 *   (c) MAE per benchmark with the pragmatic {120,Ŝ} configuration,
 *   (d) residual summary.
 *
 * Paper: (a) 0.942 average (0.945 local / 0.939 remote); (b) actuals
 * best, {120,Ŝ} best pragmatic, +2% over {None,None}; (c/d) runtime
 * R² 0.905 with ~10%-of-median MAEs.
 */

#include <cmath>
#include <iostream>

#include "bench/common.hh"
#include "models/performance.hh"
#include "models/system_state.hh"

namespace
{

using namespace adrias;

} // namespace

int
main()
{
    bench::banner("Fig. 13 — BE performance model",
                  "(a) R^2 ~0.942 (local 0.945/remote 0.939); "
                  "(b) {120,S^} best pragmatic; (c) MAE ~10% of median");

    // Traces + datasets (independent seeds, swept in parallel).
    const auto scenarios = static_cast<std::size_t>(
        bench::envInt("ADRIAS_BENCH_SCENARIOS", 4) * 3);
    const SimTime spawn_maxes[] = {20, 30, 40, 50, 60};
    std::vector<scenario::SweepItem> sweep(scenarios);
    for (std::size_t i = 0; i < scenarios; ++i) {
        sweep[i].config = bench::evalScenario(
            1700 + i, spawn_maxes[i % std::size(spawn_maxes)]);
        sweep[i].policySeed = 1800 + i;
    }
    const auto results = scenario::runScenarioSweep(sweep);
    scenario::SignatureStore signatures;
    scenario::collectAllSignatures(signatures);

    auto be = scenario::DatasetBuilder::performance(
        results, signatures, WorkloadClass::BestEffort);
    auto [train, test] = scenario::splitDataset(std::move(be), 0.6, 11);
    std::cout << "dataset: train=" << train.size()
              << " test=" << test.size() << "\n\n";

    models::ModelConfig config;
    config.epochs = static_cast<std::size_t>(
        bench::envInt("ADRIAS_BENCH_EPOCHS", 30));

    // The system-state model backs the {120, S^} variant.
    auto state_samples = scenario::DatasetBuilder::systemState(results, 5);
    auto [state_train, state_test] =
        scenario::splitDataset(std::move(state_samples), 0.6, 11);
    models::ModelConfig state_config = config;
    state_config.epochs = config.epochs * 2;
    models::SystemStateModel state_model(state_config);
    state_model.train(state_train);

    // (a) actual-future upper bound.
    {
        models::PerformanceModel model(models::FutureKind::ActualWindow,
                                       config);
        model.train(train);
        const auto eval = model.evaluate(test);
        std::cout << "(a) actual-future R^2: overall="
                  << formatDouble(eval.r2, 3)
                  << " local=" << formatDouble(eval.r2Local, 3)
                  << " remote=" << formatDouble(eval.r2Remote, 3)
                  << "   (paper: 0.942 / 0.945 / 0.939)\n\n";
    }

    // (b) stacked-model ablation.
    std::cout << "(b) future-input ablation {train,test}:\n";
    TextTable ablation({"variant", "R^2", "note"});
    auto run_variant = [&](models::FutureKind kind, const char *label,
                           const char *note) {
        models::PerformanceModel model(kind, config);
        model.train(train, &state_model);
        const auto eval = model.evaluate(test, &state_model);
        ablation.addRow({label, formatDouble(eval.r2, 3), note});
        return eval;
    };
    run_variant(models::FutureKind::None, "{None,None}",
                "no future input");
    run_variant(models::FutureKind::ActualWindow, "{120,120}",
                "actual 120 s means (not pragmatic)");
    run_variant(models::FutureKind::ActualExec, "{exec,exec}",
                "actual full-exec means (theoretical max)");
    const auto pragmatic = run_variant(
        models::FutureKind::Predicted, "{120,S^}",
        "propagated prediction (deployable)");
    std::cout << ablation.toString() << "\n";

    // (c) MAE per benchmark for the pragmatic configuration.
    std::cout << "(c) per-benchmark MAE ({120,S^}):\n";
    TextTable mae_table({"benchmark", "MAE (s)", "n"});
    std::map<std::string, std::size_t> counts;
    for (const auto &sample : test)
        ++counts[sample.name];
    for (const auto &[name, mae] : pragmatic.maePerApp) {
        mae_table.addRow(name,
                         {mae, static_cast<double>(counts[name])}, 2);
    }
    std::cout << mae_table.toString();

    // (d) residuals.
    std::cout << "\n(d) runtime accuracy ({120,S^}): R^2="
              << formatDouble(pragmatic.r2, 3)
              << " MAE=" << formatDouble(pragmatic.mae, 2)
              << " s over " << pragmatic.actual.size()
              << " deployments   (paper: R^2 0.905)\n";
    return 0;
}
