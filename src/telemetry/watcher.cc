#include "telemetry/watcher.hh"

#include <algorithm>
#include <cmath>

#include "common/invariant.hh"
#include "common/logging.hh"
#include "obs/obs.hh"

namespace adrias::telemetry
{

using testbed::CounterSample;
using testbed::kNumPerfEvents;

Watcher::Watcher(std::size_t capacity_seconds)
    : history(capacity_seconds), linkHistory(capacity_seconds)
{
}

void
Watcher::advanceStampLocked(SimTime now)
{
    ADRIAS_INVARIANT(now > lastStamp,
                     "watcher sample at t=" + std::to_string(now) +
                         " not after t=" + std::to_string(lastStamp));
    lastStamp = now;
}

std::size_t
Watcher::recordLocked(const CounterSample &sample)
{
    CounterSample accepted = sample;
    std::size_t repaired = 0;
    for (std::size_t e = 0; e < kNumPerfEvents; ++e) {
        if (std::isfinite(accepted[e]) && accepted[e] >= 0.0) {
            lastGood[e] = accepted[e];
            continue;
        }
        accepted[e] = lastGood[e]; // zero before any good value
        ++repaired;
    }
    if (repaired > 0) {
        ++state.samplesRepaired;
        state.eventsRepaired += repaired;
    }
    ++state.samplesAccepted;
    if (repaired == kNumPerfEvents) {
        // Every event was substituted: this sample carries no fresh
        // telemetry, so the dropout streak stays open.  Resetting
        // staleness here once made a run that ended on poisoned
        // samples under-report its worst streak.
        ++state.stalenessSec;
        state.maxStalenessSec =
            std::max(state.maxStalenessSec, state.stalenessSec);
    } else {
        haveGood = true;
        state.stalenessSec = 0;
    }
    history.push(accepted);

#if ADRIAS_OBS_ENABLED
    if (obs::enabled()) {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        static obs::Counter &accepted_c =
            reg.counter("watcher.samples_accepted");
        static obs::Counter &repaired_c =
            reg.counter("watcher.samples_repaired");
        static obs::Counter &events_c =
            reg.counter("watcher.events_repaired");
        accepted_c.add();
        if (repaired > 0) {
            repaired_c.add();
            events_c.add(repaired);
        }
    }
#endif
    return repaired;
}

void
Watcher::record(const CounterSample &sample)
{
    MutexLock lock(mu);
    recordLocked(sample);
}

void
Watcher::record(const CounterSample &sample, SimTime now)
{
    MutexLock lock(mu);
    advanceStampLocked(now);
    const std::size_t repaired = recordLocked(sample);
    (void)repaired;
#if ADRIAS_OBS_ENABLED
    if (repaired > 0 && obs::Tracer::global().enabled()) {
        obs::Tracer::global().simInstant(
            "repair", "watcher", now,
            {obs::arg("events_repaired",
                      static_cast<std::int64_t>(repaired)),
             obs::arg("staleness_s",
                      static_cast<std::int64_t>(state.stalenessSec))});
    }
#endif
}

void
Watcher::recordDroppedLocked()
{
    ++state.samplesDropped;
    ++state.stalenessSec;
    state.maxStalenessSec =
        std::max(state.maxStalenessSec, state.stalenessSec);
    // Hold the last value so window indexing stays one-per-second.
    history.push(haveGood ? lastGood : CounterSample{});

#if ADRIAS_OBS_ENABLED
    if (obs::enabled()) {
        static obs::Counter &dropped_c =
            obs::MetricsRegistry::global().counter(
                "watcher.samples_dropped");
        dropped_c.add();
    }
#endif
}

void
Watcher::recordDropped()
{
    MutexLock lock(mu);
    recordDroppedLocked();
}

void
Watcher::recordDropped(SimTime now)
{
    MutexLock lock(mu);
    advanceStampLocked(now);
    recordDroppedLocked();
#if ADRIAS_OBS_ENABLED
    if (obs::Tracer::global().enabled()) {
        obs::Tracer::global().simInstant(
            "dropout", "watcher", now,
            {obs::arg("staleness_s",
                      static_cast<std::int64_t>(state.stalenessSec))});
    }
#endif
}

WatcherHealth
Watcher::health() const
{
    MutexLock lock(mu);
    return state;
}

std::size_t
Watcher::sampleCount() const
{
    MutexLock lock(mu);
    return history.size();
}

bool
Watcher::hasWindow(std::size_t window_seconds) const
{
    MutexLock lock(mu);
    return history.size() >= window_seconds;
}

void
Watcher::clear()
{
    MutexLock lock(mu);
    history.clear();
    linkHistory.clear();
    state = WatcherHealth{};
    lastGood = CounterSample{};
    haveGood = false;
    lastStamp = kNoStamp;
}

void
Watcher::configureLinks(std::size_t links)
{
    MutexLock lock(mu);
    linkWidth = links;
    linkHistory.clear();
}

std::size_t
Watcher::linkCount() const
{
    MutexLock lock(mu);
    return linkWidth;
}

void
Watcher::recordLinks(
    const std::vector<testbed::LinkCounterSample> &samples)
{
    MutexLock lock(mu);
    if (linkWidth == 0)
        panic("Watcher::recordLinks before configureLinks");
    if (samples.size() != linkWidth)
        panic("Watcher::recordLinks: got " +
              std::to_string(samples.size()) + " link samples for " +
              std::to_string(linkWidth) + " configured links");
    std::vector<double> row;
    row.reserve(linkWidth * testbed::kNumLinkEvents);
    for (const testbed::LinkCounterSample &sample : samples)
        for (double event : sample)
            row.push_back(event);
    linkHistory.push(row);
}

std::size_t
Watcher::linkSampleCount() const
{
    MutexLock lock(mu);
    return linkHistory.size();
}

std::vector<testbed::LinkCounterSample>
Watcher::latestLinks() const
{
    MutexLock lock(mu);
    if (linkHistory.empty())
        panic("Watcher::latestLinks with no link samples");
    const std::vector<double> &row = linkHistory.newest();
    std::vector<testbed::LinkCounterSample> samples(linkWidth);
    for (std::size_t l = 0; l < linkWidth; ++l)
        for (std::size_t e = 0; e < testbed::kNumLinkEvents; ++e)
            samples[l][e] = row[l * testbed::kNumLinkEvents + e];
    return samples;
}

testbed::LinkCounterSample
Watcher::meanLinkOverTrailing(std::size_t link,
                              std::size_t window_seconds) const
{
    MutexLock lock(mu);
    if (link >= linkWidth)
        panic("Watcher::meanLinkOverTrailing: link index out of range");
    if (linkHistory.empty())
        fatal("Watcher::meanLinkOverTrailing with no link samples");
    const std::size_t have =
        std::min(linkHistory.size(), window_seconds);
    testbed::LinkCounterSample mean{};
    for (std::size_t i = linkHistory.size() - have;
         i < linkHistory.size(); ++i) {
        const std::vector<double> &row = linkHistory.at(i);
        for (std::size_t e = 0; e < testbed::kNumLinkEvents; ++e)
            mean[e] += row[link * testbed::kNumLinkEvents + e];
    }
    for (double &v : mean)
        v /= static_cast<double>(have);
    return mean;
}

void
Watcher::saveState(io::BinaryWriter &out) const
{
    MutexLock lock(mu);
    out.writeU64(history.capacity());
    out.writeU64(history.size());
    for (std::size_t i = 0; i < history.size(); ++i)
        for (double event : history.at(i))
            out.writeF64(event);
    out.writeU64(state.samplesAccepted);
    out.writeU64(state.samplesRepaired);
    out.writeU64(state.eventsRepaired);
    out.writeU64(state.samplesDropped);
    out.writeU64(state.stalenessSec);
    out.writeU64(state.maxStalenessSec);
    for (double event : lastGood)
        out.writeF64(event);
    out.writeBool(haveGood);
    out.writeI64(lastStamp);

    // Per-link schema, appended last so the paper-pair fields keep
    // their historical offsets (linkWidth is 0 when unconfigured).
    out.writeU64(linkWidth);
    out.writeU64(linkHistory.size());
    for (std::size_t i = 0; i < linkHistory.size(); ++i)
        out.writeF64Vector(linkHistory.at(i));
}

Result<void>
Watcher::restoreState(io::BinaryReader &in)
{
    MutexLock lock(mu);
    const std::uint64_t capacity = in.readU64();
    if (capacity != history.capacity())
        return makeError(ErrorCode::Geometry,
                         "Watcher snapshot capacity " +
                             std::to_string(capacity) +
                             " != configured capacity " +
                             std::to_string(history.capacity()));
    const std::uint64_t samples = in.readU64();
    if (samples > capacity)
        return makeError(ErrorCode::BadNumber,
                         "Watcher snapshot holds more samples than its "
                         "capacity");
    history.clear();
    for (std::uint64_t i = 0; i < samples; ++i) {
        CounterSample sample{};
        for (double &event : sample)
            event = in.readF64();
        history.push(sample);
    }
    state.samplesAccepted = in.readU64();
    state.samplesRepaired = in.readU64();
    state.eventsRepaired = in.readU64();
    state.samplesDropped = in.readU64();
    state.stalenessSec = in.readU64();
    state.maxStalenessSec = in.readU64();
    for (double &event : lastGood)
        event = in.readF64();
    haveGood = in.readBool();
    lastStamp = in.readI64();
    linkWidth = in.readU64();
    const std::uint64_t linkRows = in.readU64();
    if (linkRows > linkHistory.capacity())
        return makeError(ErrorCode::BadNumber,
                         "Watcher snapshot holds more link rows than "
                         "its capacity");
    linkHistory.clear();
    for (std::uint64_t i = 0; i < linkRows && in.ok(); ++i) {
        std::vector<double> row = in.readF64Vector();
        if (in.ok() &&
            row.size() != linkWidth * testbed::kNumLinkEvents)
            return makeError(ErrorCode::Geometry,
                             "Watcher snapshot link row does not match "
                             "its declared link count");
        linkHistory.push(row);
    }
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "Watcher: truncated snapshot section");
    return {};
}

std::vector<ml::Matrix>
Watcher::binnedWindow(std::size_t window_seconds, std::size_t bins) const
{
    if (bins == 0 || window_seconds == 0)
        fatal("Watcher::binnedWindow needs positive window and bins");

#if ADRIAS_OBS_ENABLED
    obs::WallSpan window_span("binned_window", "watcher");
#endif

    MutexLock lock(mu);
    if (history.empty())
        fatal("Watcher::binnedWindow with no samples recorded");

    // Assemble the trailing window, left-padding a cold start with the
    // oldest available sample.
    std::vector<CounterSample> window(window_seconds);
    const std::size_t have = std::min(history.size(), window_seconds);
    const std::size_t pad = window_seconds - have;
    for (std::size_t i = 0; i < pad; ++i)
        window[i] = history.at(0);
    for (std::size_t i = 0; i < have; ++i)
        window[pad + i] = history.at(history.size() - have + i);

    return binSpan(window, 0, window.size(), bins);
}

CounterSample
Watcher::meanOverTrailing(std::size_t window_seconds) const
{
    MutexLock lock(mu);
    if (history.empty())
        fatal("Watcher::meanOverTrailing with no samples");
    const std::size_t have = std::min(history.size(), window_seconds);
    CounterSample mean{};
    for (std::size_t i = history.size() - have; i < history.size(); ++i) {
        const CounterSample &s = history.at(i);
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            mean[e] += s[e];
    }
    for (double &v : mean)
        v /= static_cast<double>(have);
    return mean;
}

CounterSample
Watcher::latest() const
{
    MutexLock lock(mu);
    if (history.empty())
        panic("Watcher::latest with no samples");
    return history.newest();
}

CounterSample
meanOverSpan(const std::vector<CounterSample> &trace, std::size_t begin,
             std::size_t end)
{
    if (begin >= end || end > trace.size())
        panic("meanOverSpan: invalid span");
    CounterSample mean{};
    for (std::size_t i = begin; i < end; ++i)
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            mean[e] += trace[i][e];
    for (double &v : mean)
        v /= static_cast<double>(end - begin);
    return mean;
}

std::vector<ml::Matrix>
binSpan(const std::vector<CounterSample> &trace, std::size_t begin,
        std::size_t end, std::size_t bins)
{
    if (begin >= end || end > trace.size())
        panic("binSpan: invalid span");
    if (bins == 0)
        fatal("binSpan: need at least one bin");

    const std::size_t span = end - begin;
    std::vector<ml::Matrix> sequence;
    sequence.reserve(bins);
    for (std::size_t b = 0; b < bins; ++b) {
        // Partition the span as evenly as integer arithmetic allows.
        const std::size_t lo = begin + b * span / bins;
        std::size_t hi = begin + (b + 1) * span / bins;
        hi = std::max(hi, lo + 1);
        const CounterSample mean =
            meanOverSpan(trace, lo, std::min(hi, end));
        ml::Matrix step(1, kNumPerfEvents);
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            step.at(0, e) = mean[e];
        sequence.push_back(std::move(step));
    }
    return sequence;
}

} // namespace adrias::telemetry
