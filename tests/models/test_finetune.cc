/** @file Continual-learning (fineTune) tests — the Fig. 15 remedy. */

#include <gtest/gtest.h>

#include "models/performance.hh"
#include "scenario/dataset.hh"

namespace adrias::models
{
namespace
{

using scenario::PerformanceSample;

/** Shared dataset with one benchmark held out of base training. */
class FineTuneTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        std::vector<scenario::ScenarioResult> results;
        for (std::uint64_t seed : {910, 911, 912, 913, 914, 915}) {
            scenario::ScenarioConfig config;
            config.durationSec = 1800;
            config.spawnMinSec = 5;
            config.spawnMaxSec = 25;
            config.seed = seed;
            scenario::ScenarioRunner runner(config);
            scenario::RandomPlacement policy(seed + 5);
            results.push_back(runner.run(policy));
        }
        scenario::SignatureStore signatures;
        scenario::collectAllSignatures(signatures);
        auto all = scenario::DatasetBuilder::performance(
            results, signatures, WorkloadClass::BestEffort);

        base = new std::vector<PerformanceSample>;
        held_out = new std::vector<PerformanceSample>;
        for (auto &sample : all)
            (sample.name == "nweight" ? *held_out : *base)
                .push_back(std::move(sample));

        config = new ModelConfig;
        config->epochs = 25;
        config->hidden = 16;
        config->headWidth = 24;
    }

    static void
    TearDownTestSuite()
    {
        delete base;
        delete held_out;
        delete config;
    }

    static std::vector<PerformanceSample> *base;
    static std::vector<PerformanceSample> *held_out;
    static ModelConfig *config;
};

std::vector<PerformanceSample> *FineTuneTest::base = nullptr;
std::vector<PerformanceSample> *FineTuneTest::held_out = nullptr;
ModelConfig *FineTuneTest::config = nullptr;

TEST_F(FineTuneTest, RequiresTrainedModelAndSamples)
{
    PerformanceModel model(FutureKind::ActualWindow, *config);
    EXPECT_THROW(model.fineTune(*held_out, nullptr, 5),
                 std::runtime_error);
    model.train(*base);
    EXPECT_THROW(model.fineTune({}, nullptr, 5), std::runtime_error);
}

TEST_F(FineTuneTest, ImprovesHeldOutApp)
{
    if (held_out->size() < 8)
        GTEST_SKIP() << "not enough nweight completions in fixture";

    PerformanceModel model(FutureKind::ActualWindow, *config);
    model.train(*base);

    // Split the held-out app into fine-tune and evaluation halves.
    const std::size_t cut = held_out->size() / 2;
    std::vector<PerformanceSample> tune(held_out->begin(),
                                        held_out->begin() +
                                            static_cast<std::ptrdiff_t>(
                                                cut));
    std::vector<PerformanceSample> eval(held_out->begin() +
                                            static_cast<std::ptrdiff_t>(
                                                cut),
                                        held_out->end());

    const double before = model.evaluate(eval).mae;
    model.fineTune(tune, nullptr, 15);
    const double after = model.evaluate(eval).mae;
    EXPECT_LT(after, before);
}

TEST_F(FineTuneTest, ReplayMixPreservesBaseApps)
{
    if (held_out->size() < 4)
        GTEST_SKIP() << "not enough nweight completions in fixture";

    PerformanceModel model(FutureKind::ActualWindow, *config);
    model.train(*base);
    const double base_r2_before = model.evaluate(*base).r2;

    // Recommended recipe: mix the new app's samples with a replay
    // slice of the base set so the update does not forget old apps.
    std::vector<PerformanceSample> tune = *held_out;
    for (std::size_t i = 0; i < base->size(); i += 4)
        tune.push_back((*base)[i]);
    model.fineTune(tune, nullptr, 10);

    const double base_r2_after = model.evaluate(*base).r2;
    EXPECT_GT(base_r2_after, base_r2_before - 0.15);
}

} // namespace
} // namespace adrias::models
