#include "scenario/runner.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/threadpool.hh"
#include "obs/obs.hh"
#include "telemetry/watcher.hh"

namespace adrias::scenario
{

using workloads::IBenchKind;
using workloads::WorkloadInstance;
using workloads::WorkloadSpec;

std::vector<const DeploymentRecord *>
ScenarioResult::recordsOfClass(WorkloadClass cls) const
{
    std::vector<const DeploymentRecord *> selected;
    for (const DeploymentRecord &record : records)
        if (record.cls == cls)
            selected.push_back(&record);
    return selected;
}

std::vector<ml::Matrix>
historyWindowAt(const std::vector<testbed::CounterSample> &trace,
                SimTime arrival)
{
    if (arrival <= 0 || trace.empty())
        return {};
    const auto end = std::min<std::size_t>(
        static_cast<std::size_t>(arrival), trace.size());
    const std::size_t begin =
        end > ScenarioRunner::kWindowSec
            ? end - ScenarioRunner::kWindowSec
            : 0;
    return telemetry::binSpan(trace, begin, end,
                              ScenarioRunner::kWindowBins);
}

ScenarioRunner::ScenarioRunner(ScenarioConfig config_,
                               testbed::TestbedParams params)
    : config(config_), testbedParams(params)
{
    if (config.durationSec <= 0)
        fatal("ScenarioRunner: duration must be positive");
    if (config.spawnMinSec <= 0 || config.spawnMaxSec < config.spawnMinSec)
        fatal("ScenarioRunner: invalid spawn interval");
    if (config.ibenchFraction + config.lcFraction > 1.0)
        fatal("ScenarioRunner: arrival fractions exceed 1");
}

ScenarioResult
ScenarioRunner::run(PlacementPolicy &policy, RuntimePolicy *runtime)
{
#if ADRIAS_OBS_ENABLED
    obs::WallSpan run_span(
        "run", "scenario",
        {obs::arg("seed", static_cast<std::int64_t>(config.seed)),
         obs::arg("duration_s",
                  static_cast<std::int64_t>(config.durationSec)),
         obs::arg("policy", policy.name())});
#endif
    Rng rng(config.seed);
    testbed::Testbed bed(testbedParams, rng.nextU64());
    bed.setNoise(config.counterNoise);
    telemetry::Watcher watcher(kWindowSec * 4);
    fault::FaultInjector injector(config.faults);

    ScenarioResult result;
    result.trace.reserve(static_cast<std::size_t>(config.durationSec));
    result.concurrency.reserve(
        static_cast<std::size_t>(config.durationSec));

    std::vector<std::unique_ptr<WorkloadInstance>> running;
    DeploymentId next_id = 1;
    SimTime next_arrival =
        rng.uniformInt(config.spawnMinSec, config.spawnMaxSec);

    const auto &sparks = workloads::sparkBenchmarks();
    const auto &lcs = workloads::latencyCriticalBenchmarks();
    const IBenchKind ibench_kinds[] = {IBenchKind::Cpu, IBenchKind::L2,
                                       IBenchKind::L3, IBenchKind::MemBw};

    for (SimTime now = 0; now < config.durationSec; ++now) {
        // --- arrivals -------------------------------------------------
        while (now >= next_arrival) {
            next_arrival +=
                rng.uniformInt(config.spawnMinSec, config.spawnMaxSec);
            if (running.size() >= config.maxConcurrent) {
#if ADRIAS_OBS_ENABLED
                if (obs::enabled())
                    obs::MetricsRegistry::global()
                        .counter("scenario.dropped_arrivals")
                        .add();
#endif
                continue; // testbed full: drop, as the prototype would
            }

            const double draw = rng.uniform();
            const WorkloadSpec *spec = nullptr;
            bool is_ibench = false;
            if (draw < config.ibenchFraction) {
                spec = &workloads::ibenchSpec(
                    ibench_kinds[rng.uniformInt(0, 3)]);
                is_ibench = true;
            } else if (draw < config.ibenchFraction + config.lcFraction) {
                spec = &lcs[static_cast<std::size_t>(
                    rng.uniformInt(0,
                                   static_cast<std::int64_t>(lcs.size()) -
                                       1))];
            } else {
                spec = &sparks[static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(sparks.size()) - 1))];
            }

            // Trashers model background interference and are always
            // placed randomly; applications go through the policy.
            const MemoryMode mode =
                is_ibench ? (rng.bernoulli(0.5) ? MemoryMode::Remote
                                                : MemoryMode::Local)
                          : policy.place(*spec, watcher, now);

            auto instance = std::make_unique<WorkloadInstance>(
                next_id++, *spec, mode, now, rng.nextU64());
            running.push_back(std::move(instance));

#if ADRIAS_OBS_ENABLED
            if (obs::enabled()) {
                obs::MetricsRegistry::global()
                    .counter("scenario.arrivals")
                    .add();
                if (obs::Tracer::global().enabled()) {
                    obs::Tracer::global().simInstant(
                        "arrival:" + spec->name, "scenario", now,
                        {obs::arg("class", toString(spec->cls)),
                         obs::arg("mode", toString(mode))});
                }
            }
#endif
        }

        // --- one second of contention ----------------------------------
        // Injected link faults derate the channel before the tick
        // resolves contention.
        const fault::LinkState link = injector.linkStateAt(now);
        bed.setChannelFault(link.bwScale, link.latencyScale);

        std::vector<testbed::LoadDescriptor> loads;
        loads.reserve(running.size());
        for (const auto &instance : running)
            loads.push_back(instance->load());
        const testbed::TickResult tick = bed.tick(loads);

        // --- telemetry, through the fault injector ---------------------
        // The Watcher sees what a real deployment would: dropped,
        // stale or corrupted samples; it repairs what it can and the
        // trace records its observed (post-repair) view.
        testbed::CounterSample observed = tick.counters;
        const fault::CounterAction action = injector.applyCounterFaults(
            observed,
            result.trace.empty() ? nullptr : &result.trace.back(), now);
        if (action == fault::CounterAction::Drop)
            watcher.recordDropped(now);
        else
            watcher.record(observed, now);
        result.trace.push_back(watcher.latest());
        result.concurrency.push_back(static_cast<int>(running.size()));
        result.totalRemoteTrafficGB += tick.remoteTrafficGBps;

#if ADRIAS_OBS_ENABLED
        if (obs::enabled()) {
            static obs::Counter &ticks_c =
                obs::MetricsRegistry::global().counter("scenario.ticks");
            ticks_c.add();
            if (obs::Tracer::global().enabled()) {
                obs::Tracer::global().simSpan(
                    "tick", "scenario", now, now + 1,
                    {obs::arg("concurrency", static_cast<std::int64_t>(
                                                 running.size())),
                     obs::arg("pressure", tick.channelPressure)});
            }
        }
#endif

        // --- progress & completion -------------------------------------
        for (std::size_t i = 0; i < running.size(); ++i)
            running[i]->advance(tick.outcomes[i], now + 1);

        // --- L2 runtime management ---------------------------------------
        if (runtime) {
            std::vector<WorkloadInstance *> live;
            live.reserve(running.size());
            for (const auto &instance : running)
                live.push_back(instance.get());
            runtime->onTick(live, tick, now + 1);
        }

        for (std::size_t i = running.size(); i-- > 0;) {
            if (!running[i]->finished())
                continue;
            const WorkloadInstance &done = *running[i];
            DeploymentRecord record;
            record.id = done.id();
            record.name = done.spec().name;
            record.cls = done.spec().cls;
            record.mode = done.mode();
            record.arrival = done.arrivalTime();
            record.completion = now + 1;
            record.execTimeSec = done.executionTimeSec();
            if (record.cls == WorkloadClass::LatencyCritical) {
                record.p99Ms = done.tailLatencyMs(0.99);
                record.p999Ms = done.tailLatencyMs(0.999);
                record.meanLatencyMs = done.meanLatencyMs();
            }
            record.meanSlowdown = done.meanSlowdown();
            record.remoteTrafficGB = done.remoteTrafficGB();
            record.migrations = done.migrationCount();
            record.historyWindow =
                historyWindowAt(result.trace, record.arrival);
            record.executionWindow = telemetry::binSpan(
                result.trace, static_cast<std::size_t>(record.arrival),
                result.trace.size(), kWindowBins);
            policy.onCompletion(record);
#if ADRIAS_OBS_ENABLED
            if (obs::enabled()) {
                obs::MetricsRegistry::global()
                    .counter("scenario.completions")
                    .add();
                if (obs::Tracer::global().enabled()) {
                    obs::Tracer::global().simInstant(
                        "complete:" + record.name, "scenario", now + 1,
                        {obs::arg("mode", toString(record.mode)),
                         obs::arg("exec_s", record.execTimeSec),
                         obs::arg("slowdown", record.meanSlowdown)});
                }
            }
#endif
            result.records.push_back(std::move(record));
            running.erase(running.begin() +
                          static_cast<std::ptrdiff_t>(i));
        }
    }
    result.faultSummary = injector.stats();
    result.watcherHealth = watcher.health();
    return result;
}

std::vector<ScenarioResult>
runScenarioSweep(
    const std::vector<ScenarioConfig> &configs,
    testbed::TestbedParams params,
    const std::function<std::unique_ptr<PlacementPolicy>(std::size_t)>
        &makePolicy)
{
    // Policies first, serially and in order: a factory drawing from a
    // shared Rng must consume it identically at every thread count.
    std::vector<std::unique_ptr<PlacementPolicy>> policies;
    policies.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        policies.push_back(makePolicy(i));
        if (!policies.back())
            fatal("runScenarioSweep: makePolicy returned null");
    }

    // Each item owns its Testbed, Watcher, FaultInjector and policy,
    // and writes only its own slot — one seed per worker, no sharing.
    std::vector<ScenarioResult> results(configs.size());
    ThreadPool::global().parallelForEach(
        configs.size(), [&](std::size_t i) {
#if ADRIAS_OBS_ENABLED
            // One trace lane per sweep item: overlapping per-seed
            // simulations land on separate about:tracing rows.
            obs::ScopedLane lane(static_cast<int>(i) + 1);
#endif
            ScenarioRunner runner(configs[i], params);
            results[i] = runner.run(*policies[i]);
        });
    return results;
}

std::vector<ScenarioResult>
runScenarioSweep(const std::vector<SweepItem> &items,
                 testbed::TestbedParams params)
{
    std::vector<ScenarioConfig> configs;
    configs.reserve(items.size());
    for (const SweepItem &item : items)
        configs.push_back(item.config);
    return runScenarioSweep(
        configs, params, [&items](std::size_t i) {
            return std::make_unique<RandomPlacement>(
                items[i].policySeed);
        });
}

} // namespace adrias::scenario
