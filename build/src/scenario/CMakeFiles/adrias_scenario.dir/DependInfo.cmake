
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scenario/cluster.cc" "src/scenario/CMakeFiles/adrias_scenario.dir/cluster.cc.o" "gcc" "src/scenario/CMakeFiles/adrias_scenario.dir/cluster.cc.o.d"
  "/root/repo/src/scenario/dataset.cc" "src/scenario/CMakeFiles/adrias_scenario.dir/dataset.cc.o" "gcc" "src/scenario/CMakeFiles/adrias_scenario.dir/dataset.cc.o.d"
  "/root/repo/src/scenario/dataset_io.cc" "src/scenario/CMakeFiles/adrias_scenario.dir/dataset_io.cc.o" "gcc" "src/scenario/CMakeFiles/adrias_scenario.dir/dataset_io.cc.o.d"
  "/root/repo/src/scenario/runner.cc" "src/scenario/CMakeFiles/adrias_scenario.dir/runner.cc.o" "gcc" "src/scenario/CMakeFiles/adrias_scenario.dir/runner.cc.o.d"
  "/root/repo/src/scenario/signature.cc" "src/scenario/CMakeFiles/adrias_scenario.dir/signature.cc.o" "gcc" "src/scenario/CMakeFiles/adrias_scenario.dir/signature.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adrias_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/adrias_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/adrias_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/adrias_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/adrias_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/adrias_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
