/**
 * @file
 * Micro-benchmarks (google-benchmark) for the testbed simulator:
 * contention-resolution throughput per tick and full-scenario
 * execution rate.  Not a paper figure — establishes how cheaply the
 * 72x1h trace-collection protocol can be reproduced.
 */

#include <benchmark/benchmark.h>

#include "scenario/runner.hh"
#include "scenario/signature.hh"
#include "testbed/testbed.hh"
#include "workloads/spec.hh"

namespace
{

using namespace adrias;

void
BM_TestbedTick(benchmark::State &state)
{
    const auto apps = static_cast<std::size_t>(state.range(0));
    testbed::Testbed bed;
    std::vector<testbed::LoadDescriptor> loads;
    const auto &sparks = workloads::sparkBenchmarks();
    for (std::size_t i = 0; i < apps; ++i) {
        loads.push_back(sparks[i % sparks.size()].toLoad(
            static_cast<DeploymentId>(i),
            i % 2 ? MemoryMode::Remote : MemoryMode::Local));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(bed.tick(loads));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TestbedTick)->Arg(1)->Arg(8)->Arg(35);

void
BM_ScenarioMinute(benchmark::State &state)
{
    // One simulated minute of a moderately congested scenario.
    for (auto _ : state) {
        scenario::ScenarioConfig config;
        config.durationSec = 60;
        config.spawnMinSec = 5;
        config.spawnMaxSec = 20;
        config.seed = 42;
        scenario::ScenarioRunner runner(config);
        scenario::RandomPlacement policy(43);
        benchmark::DoNotOptimize(runner.run(policy));
    }
    state.SetItemsProcessed(state.iterations() * 60);
}
BENCHMARK(BM_ScenarioMinute);

void
BM_SignatureCollection(benchmark::State &state)
{
    const auto &spec = workloads::sparkBenchmark("gmm");
    for (auto _ : state) {
        benchmark::DoNotOptimize(scenario::collectSignature(spec));
    }
}
BENCHMARK(BM_SignatureCollection);

} // namespace

BENCHMARK_MAIN();
