#include "core/runtime_migrator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adrias::core
{

ThresholdMigrator::ThresholdMigrator(MigratorConfig config_)
    : config(config_)
{
    if (config.slowdownThreshold <= 1.0)
        fatal("ThresholdMigrator: threshold must exceed 1");
    if (config.ewmaAlpha <= 0.0 || config.ewmaAlpha > 1.0)
        fatal("ThresholdMigrator: alpha must lie in (0, 1]");
    if (config.copyBandwidthGBps <= 0.0)
        fatal("ThresholdMigrator: copy bandwidth must be positive");
}

void
ThresholdMigrator::onTick(
    const std::vector<workloads::WorkloadInstance *> &running,
    const testbed::TickResult &tick, SimTime now)
{
    (void)now;
    if (running.size() != tick.outcomes.size())
        panic("ThresholdMigrator: outcome/instance misalignment");

    for (std::size_t i = 0; i < running.size(); ++i) {
        workloads::WorkloadInstance *app = running[i];
        if (app->finished() || app->migrating())
            continue;
        // Trashers are background noise, not managed workloads.
        if (app->spec().cls == WorkloadClass::Interference)
            continue;

        auto [it, inserted] = state.try_emplace(
            app->id(), AppState(config.ewmaAlpha));
        AppState &app_state = it->second;
        app_state.ewma.add(tick.outcomes[i].slowdown);

        if (app->mode() != MemoryMode::Remote)
            continue;
        if (app_state.ewma.count() < config.warmupTicks)
            continue;
        if (app_state.migrations >= config.maxMigrationsPerApp)
            continue;
        if (app_state.ewma.value() <= config.slowdownThreshold)
            continue;

        const double pause = std::max(
            1.0, app->spec().memoryFootprintGb /
                     config.copyBandwidthGBps);
        if (app->requestMigration(MemoryMode::Local, pause)) {
            ++app_state.migrations;
            ++triggered;
            app_state.ewma.reset(1.0); // fresh start on the new pool
        }
    }
}

} // namespace adrias::core
