/**
 * @file
 * The performance events of the Watcher (paper §V-A): cache, memory and
 * ThymesisFlow channel counters, one sample per one-second tick.
 */

#ifndef ADRIAS_TESTBED_COUNTERS_HH
#define ADRIAS_TESTBED_COUNTERS_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace adrias::testbed
{

/** Indices of the monitored performance events. */
enum class PerfEvent : std::size_t
{
    LlcLoads = 0,    ///< LLC_ld: last-level cache loads
    LlcMisses = 1,   ///< LLC_mis: last-level cache misses
    MemLoads = 2,    ///< MEM_ld: local DRAM loads
    MemStores = 3,   ///< MEM_st: local DRAM stores
    RemoteTx = 4,    ///< RMT_tx: flits transmitted on the channel
    RemoteRx = 5,    ///< RMT_rx: flits received on the channel
    ChannelLat = 6,  ///< CHAN_lat: channel latency (cycles)
};

/** Number of monitored events. */
inline constexpr std::size_t kNumPerfEvents = 7;

/** One tick's worth of monitored events. */
using CounterSample = std::array<double, kNumPerfEvents>;

/** @return the canonical short name of an event (e.g. "LLC_ld"). */
std::string perfEventName(PerfEvent event);

/** @return all events in index order. */
const std::vector<PerfEvent> &allPerfEvents();

} // namespace adrias::testbed

#endif // ADRIAS_TESTBED_COUNTERS_HH
