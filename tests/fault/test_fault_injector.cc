/** @file FaultSchedule / FaultInjector determinism and window tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "fault/fault.hh"

namespace adrias::fault
{
namespace
{

using testbed::CounterSample;
using testbed::kNumPerfEvents;

CounterSample
healthySample()
{
    CounterSample sample{};
    for (std::size_t e = 0; e < kNumPerfEvents; ++e)
        sample[e] = 100.0 + static_cast<double>(e);
    return sample;
}

TEST(FaultInjector, EmptyScheduleNeverFires)
{
    FaultInjector injector;
    for (SimTime t = 0; t < 500; ++t) {
        for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
            EXPECT_FALSE(
                injector.firesAt(static_cast<FaultKind>(k), t));
        }
        const LinkState link = injector.linkStateAt(t);
        EXPECT_FALSE(link.faulted());
    }
    EXPECT_EQ(injector.stats().total(), 0u);
}

TEST(FaultInjector, WindowBoundsAreHonored)
{
    FaultSchedule schedule;
    schedule.add({FaultKind::LinkDegrade, 100, 200, 0.5, 1.0, ""});
    FaultInjector injector(schedule);

    EXPECT_FALSE(injector.armedAt(FaultKind::LinkDegrade, 99));
    EXPECT_TRUE(injector.armedAt(FaultKind::LinkDegrade, 100));
    EXPECT_TRUE(injector.armedAt(FaultKind::LinkDegrade, 199));
    EXPECT_FALSE(injector.armedAt(FaultKind::LinkDegrade, 200));

    EXPECT_DOUBLE_EQ(injector.magnitudeAt(FaultKind::LinkDegrade, 150),
                     0.5);
    const LinkState faulted = injector.linkStateAt(150);
    EXPECT_DOUBLE_EQ(faulted.bwScale, 0.5);
    EXPECT_TRUE(faulted.faulted());
    const LinkState healthy = injector.linkStateAt(250);
    EXPECT_FALSE(healthy.faulted());
}

TEST(FaultInjector, DecisionsAreDeterministicAcrossInstances)
{
    FaultSchedule schedule;
    schedule.seed = 42;
    schedule.add({FaultKind::CounterDrop, 0, 1000, 1.0, 0.3, ""});
    schedule.add({FaultKind::PredictorCrash, 200, 800, 1.0, 0.5, ""});
    schedule.add({FaultKind::LinkFlap, 100, 600, 1.0, 0.2, ""});

    FaultInjector a(schedule);
    FaultInjector b(schedule);
    for (SimTime t = 0; t < 1000; ++t) {
        EXPECT_EQ(a.firesAt(FaultKind::CounterDrop, t),
                  b.firesAt(FaultKind::CounterDrop, t));
        EXPECT_EQ(a.firesAt(FaultKind::PredictorCrash, t, 7),
                  b.firesAt(FaultKind::PredictorCrash, t, 7));
        EXPECT_EQ(a.firesAt(FaultKind::LinkFlap, t),
                  b.firesAt(FaultKind::LinkFlap, t));
    }
}

TEST(FaultInjector, QueryOrderDoesNotChangeDecisions)
{
    FaultSchedule schedule;
    schedule.seed = 7;
    schedule.add({FaultKind::CounterDrop, 0, 400, 1.0, 0.4, ""});

    // Forward vs backward sweeps must agree tick by tick.
    FaultInjector forward(schedule);
    FaultInjector backward(schedule);
    std::vector<bool> fwd, bwd(400);
    for (SimTime t = 0; t < 400; ++t)
        fwd.push_back(forward.firesAt(FaultKind::CounterDrop, t));
    for (SimTime t = 399; t >= 0; --t)
        bwd[static_cast<std::size_t>(t)] =
            backward.firesAt(FaultKind::CounterDrop, t);
    EXPECT_EQ(fwd, std::vector<bool>(bwd.begin(), bwd.end()));
}

TEST(FaultInjector, SeedChangesTheFiringPattern)
{
    FaultSchedule one;
    one.seed = 1;
    one.add({FaultKind::CounterDrop, 0, 2000, 1.0, 0.5, ""});
    FaultSchedule two = one;
    two.seed = 2;

    FaultInjector a(one), b(two);
    std::size_t differing = 0;
    for (SimTime t = 0; t < 2000; ++t)
        differing += a.firesAt(FaultKind::CounterDrop, t) !=
                     b.firesAt(FaultKind::CounterDrop, t);
    EXPECT_GT(differing, 200u); // ~50% expected
}

TEST(FaultInjector, ProbabilityScalesFiringRate)
{
    FaultSchedule schedule;
    schedule.add({FaultKind::CounterDrop, 0, 4000, 1.0, 0.25, ""});
    FaultInjector injector(schedule);
    std::size_t fired = 0;
    for (SimTime t = 0; t < 4000; ++t)
        fired += injector.firesAt(FaultKind::CounterDrop, t);
    EXPECT_NEAR(static_cast<double>(fired) / 4000.0, 0.25, 0.05);
}

TEST(FaultInjector, DropTakesPriorityAndCountsTally)
{
    FaultSchedule schedule;
    schedule.add({FaultKind::CounterDrop, 0, 10, 1.0, 1.0, ""});
    schedule.add({FaultKind::CounterCorrupt, 0, 10, 1.0, 1.0, ""});
    FaultInjector injector(schedule);

    CounterSample sample = healthySample();
    const CounterSample previous = healthySample();
    EXPECT_EQ(injector.applyCounterFaults(sample, &previous, 3),
              CounterAction::Drop);
    EXPECT_EQ(injector.stats().samplesDropped, 1u);
    // Dropped sample is untouched (the caller discards it).
    EXPECT_DOUBLE_EQ(sample[0], 100.0);
}

TEST(FaultInjector, CorruptionPoisonsExactlyOneEventDeterministically)
{
    FaultSchedule schedule;
    schedule.add({FaultKind::CounterCorrupt, 0, 100, 1.0, 1.0, ""});

    FaultInjector a(schedule);
    FaultInjector b(schedule);
    for (SimTime t = 0; t < 100; ++t) {
        CounterSample sample_a = healthySample();
        CounterSample sample_b = healthySample();
        ASSERT_EQ(a.applyCounterFaults(sample_a, nullptr, t),
                  CounterAction::Corrupt);
        ASSERT_EQ(b.applyCounterFaults(sample_b, nullptr, t),
                  CounterAction::Corrupt);
        std::size_t bad = 0;
        for (std::size_t e = 0; e < kNumPerfEvents; ++e) {
            const bool invalid_a =
                !std::isfinite(sample_a[e]) || sample_a[e] < 0.0;
            const bool invalid_b =
                !std::isfinite(sample_b[e]) || sample_b[e] < 0.0;
            EXPECT_EQ(invalid_a, invalid_b);
            bad += invalid_a;
        }
        EXPECT_EQ(bad, 1u);
    }
    EXPECT_EQ(a.stats().samplesCorrupted, 100u);
}

TEST(FaultInjector, StaleRepeatsPreviousSampleAndDegradesOnFirstTick)
{
    FaultSchedule schedule;
    schedule.add({FaultKind::CounterStale, 0, 10, 1.0, 1.0, ""});
    FaultInjector injector(schedule);

    CounterSample first = healthySample();
    EXPECT_EQ(injector.applyCounterFaults(first, nullptr, 0),
              CounterAction::Drop); // nothing to repeat yet

    CounterSample previous = healthySample();
    previous[2] = 777.0;
    CounterSample sample = healthySample();
    EXPECT_EQ(injector.applyCounterFaults(sample, &previous, 1),
              CounterAction::Stale);
    EXPECT_DOUBLE_EQ(sample[2], 777.0);
    EXPECT_EQ(injector.stats().samplesStale, 1u);
}

TEST(FaultInjector, PredictorFaultHelpers)
{
    FaultSchedule schedule;
    schedule.add({FaultKind::PredictorCrash, 100, 200, 1.0, 1.0, ""});
    schedule.add({FaultKind::PredictorLatency, 300, 400, 500.0, 1.0, ""});
    FaultInjector injector(schedule);

    EXPECT_FALSE(injector.predictorCrashAt(50, 0));
    EXPECT_TRUE(injector.predictorCrashAt(150, 0));
    EXPECT_EQ(injector.stats().predictorCrashes, 1u);

    EXPECT_DOUBLE_EQ(injector.predictorLatencyMsAt(50, 0, 2.0), 2.0);
    EXPECT_DOUBLE_EQ(injector.predictorLatencyMsAt(350, 0, 2.0), 500.0);
    EXPECT_EQ(injector.stats().predictorLatencySpikes, 1u);
}

TEST(FaultInjector, RejectsMalformedWindows)
{
    FaultSchedule backwards;
    backwards.add({FaultKind::LinkDegrade, 200, 100, 0.5, 1.0, ""});
    EXPECT_THROW(FaultInjector{backwards}, std::runtime_error);

    FaultSchedule bad_probability;
    bad_probability.add({FaultKind::CounterDrop, 0, 10, 1.0, 1.5, ""});
    EXPECT_THROW(FaultInjector{bad_probability}, std::runtime_error);

    FaultSchedule bad_magnitude;
    bad_magnitude.add({FaultKind::LinkDegrade, 0, 10, 0.0, 1.0, ""});
    EXPECT_THROW(FaultInjector{bad_magnitude}, std::runtime_error);
}

TEST(FaultKindNames, AreStable)
{
    EXPECT_EQ(faultKindName(FaultKind::LinkFlap), "link-flap");
    EXPECT_EQ(faultKindName(FaultKind::CounterCorrupt),
              "counter-corrupt");
    EXPECT_EQ(faultKindName(FaultKind::PredictorCrash),
              "predictor-crash");
}

} // namespace
} // namespace adrias::fault
