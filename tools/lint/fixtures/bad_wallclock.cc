// Lint fixture: deliberate wall-clock violations.  Never compiled.
#include <chrono>
#include <ctime>

long
stampNow()
{
    auto t = std::chrono::system_clock::now(); // line 8: wall-clock
    (void)t;
    return (long)time(nullptr); // line 10: wall-clock (time call)
}

long
fine()
{
    // `time` only violates when called: a member named time is fine.
    struct S { long time; } s{3};
    long runtime = s.time;
    // NOLINTNEXTLINE(wall-clock)
    long escaped = (long)clock();
    return runtime + escaped;
}
