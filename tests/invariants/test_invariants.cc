/**
 * @file
 * Proof that every ADRIAS_INVARIANT conservation law actually fires.
 *
 * Strategy: run a healthy tick through the real testbed (no
 * violations), then corrupt one field at a time and feed the corrupted
 * TickResult to checkTickInvariants() with a recording handler
 * installed.  Each corruption must produce at least one violation whose
 * text names the corrupted quantity.  The watcher's timestamp
 * monotonicity check is exercised the same way.
 *
 * In builds with -DADRIAS_INVARIANTS=OFF (plain Release) the checks
 * compile out; the firing tests GTEST_SKIP there, and a dedicated test
 * verifies the compiled-out macro never evaluates its operands.
 */

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/invariant.hh"
#include "telemetry/watcher.hh"
#include "testbed/rack.hh"
#include "testbed/testbed.hh"
#include "testbed/topology.hh"

namespace
{

using adrias::invariant::kEnabled;
using adrias::invariant::setHandler;
using adrias::invariant::Violation;
using adrias::testbed::LoadDescriptor;
using adrias::testbed::RackTickResult;
using adrias::testbed::TestbedParams;
using adrias::testbed::TickResult;
using adrias::testbed::Topology;

/** Violations captured by the recording handler (plain function ptr). */
std::vector<std::string> &
captured()
{
    static std::vector<std::string> log;
    return log;
}

void
recordViolation(const Violation &violation)
{
    captured().push_back(violation.toString());
}

/** Installs the recording handler for one test, restores on exit. */
class RecordingHandler
{
  public:
    RecordingHandler()
    {
        captured().clear();
        previous = setHandler(&recordViolation);
    }
    ~RecordingHandler() { setHandler(previous); }

    std::size_t count() const { return captured().size(); }

    bool
    anyMentions(const std::string &needle) const
    {
        for (const auto &text : captured()) {
            if (text.find(needle) != std::string::npos)
                return true;
        }
        return false;
    }

  private:
    adrias::invariant::Handler previous;
};

/** A small healthy mixed local/remote tick. */
std::vector<LoadDescriptor>
healthyLoads()
{
    using adrias::MemoryMode;
    LoadDescriptor local;
    local.id = 1;
    local.mode = MemoryMode::Local;
    local.memDemandGBps = 2.0;
    local.cacheFootprintMb = 4.0;

    LoadDescriptor remote;
    remote.id = 2;
    remote.mode = MemoryMode::Remote;
    remote.memDemandGBps = 0.5;
    remote.cacheFootprintMb = 3.0;

    return {local, remote};
}

/** Resolve the healthy tick with noise disabled. */
TickResult
healthyTick(const std::vector<LoadDescriptor> &loads)
{
    adrias::testbed::Testbed testbed;
    testbed.setNoise(0.0);
    return testbed.tick(loads);
}

class TickInvariantTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!kEnabled)
            GTEST_SKIP() << "invariants compiled out (ADRIAS_INVARIANTS"
                            "=OFF)";
        loads = healthyLoads();
        result = healthyTick(loads);
    }

    std::vector<LoadDescriptor> loads;
    TickResult result;
    TestbedParams params;
};

TEST_F(TickInvariantTest, HealthyTickIsViolationFree)
{
    RecordingHandler handler;
    adrias::testbed::checkTickInvariants(loads, result, params);
    EXPECT_EQ(handler.count(), 0u);

    // A faulted channel derates the cap; the scaled check must still
    // accept the testbed's own (re-resolved) output.
    adrias::testbed::Testbed faulted;
    faulted.setNoise(0.0);
    faulted.setChannelFault(0.5, 2.0);
    const TickResult derated = faulted.tick(loads);
    adrias::testbed::checkTickInvariants(loads, derated, params, 0.5);
    EXPECT_EQ(handler.count(), 0u);
}

TEST_F(TickInvariantTest, OutcomeCountMismatchFires)
{
    RecordingHandler handler;
    result.outcomes.pop_back();
    adrias::testbed::checkTickInvariants(loads, result, params);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("outcomes"));
}

TEST_F(TickInvariantTest, NegativeAchievedBandwidthFires)
{
    RecordingHandler handler;
    result.outcomes[0].achievedGBps = -1.0;
    adrias::testbed::checkTickInvariants(loads, result, params);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("achievedGBps"));
}

TEST_F(TickInvariantTest, NonFiniteLatencyFires)
{
    RecordingHandler handler;
    result.outcomes[0].latencyNs = std::nan("");
    adrias::testbed::checkTickInvariants(loads, result, params);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("latencyNs"));
}

TEST_F(TickInvariantTest, SubUnitySlowdownFires)
{
    RecordingHandler handler;
    result.outcomes[0].slowdown = 0.5;
    adrias::testbed::checkTickInvariants(loads, result, params);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("slowdown"));
}

TEST_F(TickInvariantTest, HitRateAboveBaseFires)
{
    RecordingHandler handler;
    result.outcomes[0].hitRate = loads[0].baseHitRate * 2.0;
    adrias::testbed::checkTickInvariants(loads, result, params);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("hitRate"));
}

TEST_F(TickInvariantTest, RemoteThroughputAboveChannelCapFires)
{
    RecordingHandler handler;
    result.remoteTrafficGBps = params.remoteBwGBps * 2.0;
    adrias::testbed::checkTickInvariants(loads, result, params);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("remoteTrafficGBps"));
}

TEST_F(TickInvariantTest, PerAppRemoteSumAboveDeratedCapFires)
{
    RecordingHandler handler;
    // Healthy against the full cap, violating once derated to 10%.
    adrias::testbed::checkTickInvariants(loads, result, params, 0.1);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("remote"));
}

TEST_F(TickInvariantTest, LocalTrafficAbovePoolCapFires)
{
    RecordingHandler handler;
    result.localTrafficGBps = params.localBwGBps * 2.0;
    adrias::testbed::checkTickInvariants(loads, result, params);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("localTrafficGBps"));
}

TEST_F(TickInvariantTest, LlcOccupancyAboveCapacityFires)
{
    RecordingHandler handler;
    // Full residency of a working set far beyond the LLC: the
    // proportional-occupancy model could never produce this.
    loads[0].cacheFootprintMb = params.llcCapacityMb * 10.0;
    result.outcomes[0].hitRate = loads[0].baseHitRate;
    adrias::testbed::checkTickInvariants(loads, result, params);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("resident_llc_mb"));
}

TEST_F(TickInvariantTest, NegativeChannelPressureFires)
{
    RecordingHandler handler;
    result.channelPressure = -0.1;
    adrias::testbed::checkTickInvariants(loads, result, params);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("channelPressure"));
}

TEST_F(TickInvariantTest, ChannelLatencyBelowBaseFires)
{
    RecordingHandler handler;
    result.channelLatencyCycles = params.channelLatencyBaseCycles / 2.0;
    adrias::testbed::checkTickInvariants(loads, result, params);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("channelLatencyCycles"));
}

TEST_F(TickInvariantTest, NonFiniteCounterFires)
{
    RecordingHandler handler;
    result.counters[0] = std::nan("");
    adrias::testbed::checkTickInvariants(loads, result, params);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("value"));
}

TEST_F(TickInvariantTest, CompensatingCrossChannelErrorFires)
{
    RecordingHandler handler;
    // Shift achieved traffic from the local app to the remote app so
    // the combined local-pool total is unchanged: an aggregate-only
    // check would accept this, the per-channel sums must not.
    const double delta = 0.2;
    result.outcomes[0].achievedGBps -= delta; // local app
    result.outcomes[1].achievedGBps += delta; // remote app
    adrias::testbed::checkTickInvariants(loads, result, params);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("remoteTrafficGBps"));
}

/**
 * Rack-tick invariant firing: run a healthy tick on a 2×2 CXL rack,
 * then corrupt one per-link / per-server / per-node quantity at a time
 * and prove checkRackTickInvariants() names it.
 */
class RackInvariantTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!kEnabled)
            GTEST_SKIP() << "invariants compiled out (ADRIAS_INVARIANTS"
                            "=OFF)";
        using adrias::MemoryMode;
        LoadDescriptor local;
        local.id = 1;
        local.mode = MemoryMode::Local;
        local.node = 0;
        local.memDemandGBps = 2.0;
        local.cacheFootprintMb = 4.0;
        loads.push_back(local);

        LoadDescriptor remote;
        remote.id = 2;
        remote.mode = MemoryMode::Remote;
        remote.node = 0;
        remote.server = 0;
        remote.link = static_cast<std::size_t>(topo.linkBetween(0, 0));
        remote.memDemandGBps = 1.0;
        remote.cacheFootprintMb = 3.0;
        loads.push_back(remote);

        LoadDescriptor far = remote;
        far.id = 3;
        far.node = 1;
        far.server = 1;
        far.link = static_cast<std::size_t>(topo.linkBetween(1, 1));
        far.memDemandGBps = 0.8;
        loads.push_back(far);

        adrias::testbed::RackTestbed rack(topo, 1);
        rack.setNoise(0.0);
        result = rack.tick(loads);
    }

    Topology topo =
        Topology::symmetric(2, 2, adrias::testbed::kCxlProfile);
    std::vector<LoadDescriptor> loads;
    RackTickResult result;
};

TEST_F(RackInvariantTest, HealthyRackTickIsViolationFree)
{
    RecordingHandler handler;
    adrias::testbed::checkRackTickInvariants(loads, result, topo);
    EXPECT_EQ(handler.count(), 0u);

    // A derated link must still accept the rack's own re-resolved
    // output when the matching scale vector is passed.
    adrias::testbed::RackTestbed faulted(topo, 1);
    faulted.setNoise(0.0);
    faulted.setLinkFault(0, 0.5, 2.0);
    const RackTickResult derated = faulted.tick(loads);
    std::vector<double> scales(topo.linkCount(), 1.0);
    scales[0] = 0.5;
    adrias::testbed::checkRackTickInvariants(loads, derated, topo,
                                             scales);
    EXPECT_EQ(handler.count(), 0u);
}

TEST_F(RackInvariantTest, StatsVectorSizeMismatchFires)
{
    RecordingHandler handler;
    result.links.pop_back();
    adrias::testbed::checkRackTickInvariants(loads, result, topo);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("link stats size mismatch"));
}

TEST_F(RackInvariantTest, LinkConservationBreakFires)
{
    RecordingHandler handler;
    result.links[loads[1].link].queuedGBps += 1.0;
    adrias::testbed::checkRackTickInvariants(loads, result, topo);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("offeredGBps"));
}

TEST_F(RackInvariantTest, LinkDeliverySumMismatchFires)
{
    RecordingHandler handler;
    result.links[loads[1].link].achievedGBps += 0.5;
    adrias::testbed::checkRackTickInvariants(loads, result, topo);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("link_achieved"));
}

TEST_F(RackInvariantTest, DeratedLinkCapOverflowFires)
{
    RecordingHandler handler;
    // The healthy tick delivered ~1 GB/s on link 0; claiming the link
    // was derated to 1% of its 4 GB/s makes that delivery impossible.
    std::vector<double> scales(topo.linkCount(), 1.0);
    scales[loads[1].link] = 0.01;
    adrias::testbed::checkRackTickInvariants(loads, result, topo,
                                             scales);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("link_achieved"));
}

TEST_F(RackInvariantTest, LinkLatencyBelowBaseFires)
{
    RecordingHandler handler;
    result.links[0].latencyCycles = 1.0;
    adrias::testbed::checkRackTickInvariants(loads, result, topo);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("latencyCycles"));
}

TEST_F(RackInvariantTest, ServerSumMismatchFires)
{
    RecordingHandler handler;
    result.servers[1].achievedGBps += 1.0;
    adrias::testbed::checkRackTickInvariants(loads, result, topo);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("server_achieved"));
}

TEST_F(RackInvariantTest, ServerAllocationOutOfRangeFires)
{
    RecordingHandler handler;
    result.servers[0].allocatedGb = -1.0;
    adrias::testbed::checkRackTickInvariants(loads, result, topo);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("allocatedGb"));
}

TEST_F(RackInvariantTest, NodeRemoteSumMismatchFires)
{
    RecordingHandler handler;
    result.nodes[1].remoteTrafficGBps += 1.0;
    adrias::testbed::checkRackTickInvariants(loads, result, topo);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("node_remote"));
}

TEST_F(RackInvariantTest, NodeLocalTerminationMismatchFires)
{
    RecordingHandler handler;
    // R3: remote traffic must terminate in node 0's local controllers;
    // zeroing the reported local traffic breaks that accounting.
    result.nodes[0].localTrafficGBps = 0.0;
    adrias::testbed::checkRackTickInvariants(loads, result, topo);
    EXPECT_GE(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("local_total"));
}

TEST(WatcherInvariantTest, NonMonotonicTimestampFires)
{
    if (!kEnabled)
        GTEST_SKIP() << "invariants compiled out";
    RecordingHandler handler;
    adrias::telemetry::Watcher watcher(16);
    adrias::testbed::CounterSample sample{};
    watcher.record(sample, 5);
    watcher.record(sample, 6);
    EXPECT_EQ(handler.count(), 0u);

    watcher.record(sample, 6); // duplicate tick
    EXPECT_EQ(handler.count(), 1u);
    watcher.record(sample, 4); // reordered tick
    EXPECT_EQ(handler.count(), 2u);
    EXPECT_TRUE(handler.anyMentions("watcher sample"));

    // Dropouts share the same watermark.
    watcher.recordDropped(7);
    EXPECT_EQ(handler.count(), 2u);
    watcher.recordDropped(7);
    EXPECT_EQ(handler.count(), 3u);

    // clear() resets the watermark: old stamps become valid again.
    watcher.clear();
    watcher.record(sample, 1);
    EXPECT_EQ(handler.count(), 3u);
}

TEST(InvariantMacroTest, ConditionEvaluatedOnlyWhenEnabled)
{
    int calls = 0;
    auto probe = [&calls]() {
        ++calls;
        return true;
    };
    ADRIAS_INVARIANT(probe());
    EXPECT_EQ(calls, kEnabled ? 1 : 0);
}

TEST(InvariantMacroTest, PassingCheckNeverReportsWhenEnabled)
{
    if (!kEnabled)
        GTEST_SKIP() << "invariants compiled out";
    RecordingHandler handler;
    ADRIAS_INVARIANT(1 + 1 == 2);
    ADRIAS_INVARIANT_LE(1.0, 2.0);
    ADRIAS_INVARIANT_GE(2.0, 1.0);
    ADRIAS_INVARIANT_FINITE(0.5);
    EXPECT_EQ(handler.count(), 0u);
}

TEST(InvariantMacroTest, ConvenienceFormsReportBothOperands)
{
    if (!kEnabled)
        GTEST_SKIP() << "invariants compiled out";
    RecordingHandler handler;
    const double lhs = 3.0;
    const double rhs = 2.0;
    ADRIAS_INVARIANT_LE(lhs, rhs);
    ASSERT_EQ(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("lhs=3.0"));
    EXPECT_TRUE(handler.anyMentions("rhs=2.0"));

    ADRIAS_INVARIANT_GE(rhs, lhs);
    EXPECT_EQ(handler.count(), 2u);

    const double bad = std::nan("");
    ADRIAS_INVARIANT_FINITE(bad);
    EXPECT_EQ(handler.count(), 3u);
}

TEST(InvariantMacroTest, MessageArgumentIsCarried)
{
    if (!kEnabled)
        GTEST_SKIP() << "invariants compiled out";
    RecordingHandler handler;
    ADRIAS_INVARIANT(false, std::string("context 42"));
    ASSERT_EQ(handler.count(), 1u);
    EXPECT_TRUE(handler.anyMentions("context 42"));
    EXPECT_TRUE(handler.anyMentions("false"));
}

TEST(InvariantMacroTest, DefaultHandlerPanics)
{
    if (!kEnabled)
        GTEST_SKIP() << "invariants compiled out";
    // No RecordingHandler: the default handler must throw.
    EXPECT_THROW(ADRIAS_INVARIANT(false), std::logic_error);
}

TEST(InvariantMacroTest, SetHandlerReturnsPreviousAndNullRestores)
{
    if (!kEnabled)
        GTEST_SKIP() << "invariants compiled out";
    auto previous = setHandler(&recordViolation);
    auto mine = setHandler(nullptr); // restore default
    EXPECT_EQ(mine, &recordViolation);
    EXPECT_THROW(ADRIAS_INVARIANT(false), std::logic_error);
    setHandler(previous);
}

TEST(InvariantMacroTest, ViolationToStringNamesLocation)
{
    Violation violation;
    violation.condition = "x > 0";
    violation.file = "src/foo.cc";
    violation.line = 42;
    violation.message = "x=-1";
    const std::string text = violation.toString();
    EXPECT_NE(text.find("x > 0"), std::string::npos);
    EXPECT_NE(text.find("src/foo.cc:42"), std::string::npos);
    EXPECT_NE(text.find("x=-1"), std::string::npos);
}

} // namespace
