#include "common/table.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace adrias
{

TextTable::TextTable(std::vector<std::string> header_)
    : header(std::move(header_))
{
    if (header.empty())
        fatal("TextTable requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header.size())
        fatal("TextTable row width mismatch");
    rows.push_back(std::move(cells));
}

void
TextTable::addRow(const std::string &label,
                  const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(formatDouble(v, precision));
    addRow(std::move(cells));
}

std::string
TextTable::toString() const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out << cells[c];
            if (c + 1 < cells.size())
                out << std::string(widths[c] - cells[c].size() + 2, ' ');
        }
        out << "\n";
    };

    emit_row(header);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        emit_row(row);
    return out.str();
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream out;
    if (std::isnan(value)) {
        // Empty-sample statistics (mean/quantile of nothing) are NaN
        // by contract; report tables render them as "n/a", never as a
        // number that could be mistaken for a measurement.
        out << "n/a";
    } else {
        out.setf(std::ios::fixed);
        out.precision(precision);
        out << value;
    }
    return out.str();
}

std::string
asciiBar(double value, double maxValue, int width)
{
    if (maxValue <= 0.0 || value <= 0.0 || width <= 0)
        return "";
    const double frac = std::min(1.0, value / maxValue);
    const int n = static_cast<int>(std::lround(frac * width));
    return std::string(static_cast<std::size_t>(n), '#');
}

} // namespace adrias
