/**
 * @file
 * micro — decision-serving throughput (DESIGN.md §15): sustained
 * decisions/sec and wall-clock p99 decision latency of the
 * DecisionService at ≥1000 concurrent placement requests, batched
 * (b32, the fused inference fast-path) versus inline (b1, one forward
 * per query).  Feeds the perf-regression gate (tools/bench_compare
 * against bench/baselines/BENCH_serving.json).
 *
 * Scale knobs: ADRIAS_BENCH_REQUESTS (default 1024 — the "≥1000
 * concurrent apps" load), ADRIAS_BENCH_SCENARIOS / _DURATION /
 * _EPOCHS shrink the offline training for CI smoke.
 */

#include <chrono>
#include <memory>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/microbench.hh"
#include "common/logging.hh"
#include "core/adrias.hh"
#include "ml/simd.hh"
#include "serving/decision_service.hh"
#include "stats/percentile.hh"
#include "telemetry/watcher.hh"
#include "testbed/testbed.hh"
#include "workloads/spec.hh"

namespace
{

using namespace adrias;
using bench::micro::envCount;

constexpr std::size_t kShards = 4;

std::vector<serving::PlacementRequest>
buildTrace(const scenario::SignatureStore &signatures,
           std::size_t count)
{
    // Known apps only: every request takes the model path, so the
    // bench measures inference serving, not the bootstrap shortcut.
    std::vector<const workloads::WorkloadSpec *> apps;
    for (const auto &spec : workloads::sparkBenchmarks())
        if (signatures.has(spec.name))
            apps.push_back(&spec);
    for (const auto *lc : {&workloads::redisSpec(),
                           &workloads::memcachedSpec()})
        if (signatures.has(lc->name))
            apps.push_back(lc);
    if (apps.empty())
        fatal("micro_serving: no signatures for any workload");

    std::vector<serving::PlacementRequest> trace;
    trace.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const workloads::WorkloadSpec &spec = *apps[i % apps.size()];
        serving::PlacementRequest request;
        request.id = static_cast<DeploymentId>(i);
        request.app = spec.name;
        request.cls = spec.cls;
        request.shard = i % kShards;
        request.submitted = 0;
        request.deadline = 8;
        trace.push_back(std::move(request));
    }
    return trace;
}

} // namespace

int
main()
{
    // Offline phase: a small but real trained stack.
    core::AdriasStack::BuildOptions options;
    options.scenarios = envCount("ADRIAS_BENCH_SCENARIOS", 3);
    options.scenarioDurationSec = static_cast<SimTime>(
        envCount("ADRIAS_BENCH_DURATION", 1500));
    options.seed = envCount("ADRIAS_BENCH_SEED", 700);
    options.model.epochs = envCount("ADRIAS_BENCH_EPOCHS", 18);
    options.model.hidden = 16;
    options.model.headWidth = 24;
    core::AdriasStack stack(options);

    // Warm telemetry shared by every shard.
    telemetry::Watcher watcher(300);
    testbed::Testbed bed;
    bed.setNoise(0.0);
    for (int i = 0; i < 200; ++i)
        watcher.record(bed.tick({}).counters);
    const std::vector<ml::Matrix> window = watcher.binnedWindow(
        scenario::ScenarioRunner::kWindowSec,
        scenario::ScenarioRunner::kWindowBins);

    const std::size_t requests = envCount("ADRIAS_BENCH_REQUESTS", 1024);
    const std::vector<serving::PlacementRequest> trace =
        buildTrace(stack.signatures(), requests);

    const auto makeService =
        [&](std::size_t batch_size, bool pad,
            ml::KernelTier tier = ml::KernelTier::Scalar) {
            serving::DecisionServiceConfig config;
            config.shards = kShards;
            config.queueCapacity = requests;
            config.batchSize = batch_size;
            config.padBatches = pad;
            config.kernelTier = tier;
            auto service = std::make_unique<serving::DecisionService>(
                stack.predictor(), stack.signatures(),
                core::AdriasConfig{}, config);
            serving::EpochSnapshot snapshot;
            snapshot.shardWindows.assign(kShards, window);
            service->beginEpoch(std::move(snapshot));
            return service;
        };

    const auto serveAll =
        [&](std::size_t batch_size, bool pad,
            ml::KernelTier tier = ml::KernelTier::Scalar) {
            const auto service = makeService(batch_size, pad, tier);
            for (const auto &request : trace)
                if (!service->submit(request))
                    fatal("micro_serving: unexpected back-pressure");
            const auto decisions = service->drain(0);
            if (decisions.size() != trace.size())
                fatal("micro_serving: lost decisions");
        };

    // This bench moves thousands of LSTM forwards per iteration, so a
    // smaller default sample than the harness-wide 30 keeps the smoke
    // run quick; override with ADRIAS_BENCH_ITERS as usual.
    const std::size_t iters = envCount("ADRIAS_BENCH_ITERS", 10);
    const std::size_t warmup = envCount("ADRIAS_BENCH_WARMUP", 2);

    std::vector<bench::micro::Result> results;
    results.push_back(bench::micro::measure(
        "serve_decisions_b32", [&] { serveAll(32, true); }, iters,
        warmup));
    results.push_back(bench::micro::measure(
        "serve_decisions_inline", [&] { serveAll(1, false); }, iters,
        warmup));
    // Vector tier pinned per service (DecisionServiceConfig.kernelTier)
    // — always emitted so the regression gate finds the row; without
    // AVX2 the tier degrades to scalar and the row mirrors b32.
    results.push_back(bench::micro::measure(
        "serve_decisions_b32_vector",
        [&] { serveAll(32, true, ml::KernelTier::Vector); }, iters,
        warmup));

    // Wall-clock per-decision latency under b32: feed the daemon in
    // batch-sized waves and charge every decision in a wave the wall
    // time of the drain that decided it.
    {
        using Clock = std::chrono::steady_clock;
        const auto service = makeService(32, true);
        std::vector<double> latencies_ns;
        latencies_ns.reserve(trace.size());
        for (std::size_t begin = 0; begin < trace.size(); begin += 32) {
            const std::size_t end = std::min(trace.size(), begin + 32);
            for (std::size_t i = begin; i < end; ++i)
                if (!service->submit(trace[i]))
                    fatal("micro_serving: unexpected back-pressure");
            const auto start = Clock::now();
            const auto decisions = service->drain(0);
            const auto stop = Clock::now();
            const double wave_ns =
                std::chrono::duration<double, std::nano>(stop - start)
                    .count();
            for (std::size_t i = 0; i < decisions.size(); ++i)
                latencies_ns.push_back(wave_ns);
        }
        if (latencies_ns.size() != trace.size())
            fatal("micro_serving: lost decisions in latency sweep");
        bench::micro::Result p99;
        p99.name = "decision_latency_p99_b32";
        p99.medianNs = stats::quantile(latencies_ns, 0.99);
        p99.minNs = stats::quantile(latencies_ns, 0.0);
        double total = 0.0;
        for (double sample : latencies_ns)
            total += sample;
        p99.meanNs = total / static_cast<double>(latencies_ns.size());
        p99.iterations = latencies_ns.size();
        results.push_back(p99);
    }

    const double batched_ns = results[0].medianNs;
    const double inline_ns = results[1].medianNs;
    const double vector_ns = results[2].medianNs;
    std::vector<bench::micro::Speedup> summary;
    summary.push_back({"batched_vs_inline", inline_ns, batched_ns});
    summary.push_back({"b32_vector_vs_scalar", batched_ns, vector_ns});

    bench::micro::printResults("serving", results, summary);
    const double batched_dps =
        static_cast<double>(requests) / (batched_ns * 1e-9);
    const double inline_dps =
        static_cast<double>(requests) / (inline_ns * 1e-9);
    const double vector_dps =
        static_cast<double>(requests) / (vector_ns * 1e-9);
    std::printf("  %-36s %12.0f decisions/s\n", "throughput_b32",
                batched_dps);
    std::printf("  %-36s %12.0f decisions/s\n", "throughput_inline",
                inline_dps);
    std::printf("  %-36s %12.0f decisions/s\n", "throughput_b32_vector",
                vector_dps);
    std::printf("  %-36s %12.2f ms\n", "decision_p99_b32",
                results[3].medianNs * 1e-6);

    bench::micro::writeJson(bench::micro::jsonPath("BENCH_serving.json"),
                            "serving", results, summary);
    return 0;
}
