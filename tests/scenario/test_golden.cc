/**
 * @file
 * Golden end-to-end regression: a fixed tiny scenario, rendered to a
 * canonical text form and compared line-by-line against a checked-in
 * golden file.  Any change to the simulation pipeline that shifts a
 * completion time, a latency percentile or a trace aggregate shows up
 * here as a readable diff instead of a silent drift.
 *
 * Regenerate intentionally with:
 *     ADRIAS_UPDATE_GOLDEN=1 ./test_scenario \
 *         --gtest_filter=GoldenTest.*
 * and commit the refreshed file together with the change that caused
 * it.  Floats are rendered at %.6g so the golden survives benign
 * compiler/FMA differences while still pinning six significant digits.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ml/lstm.hh"
#include "ml/simd.hh"
#include "models/system_state.hh"
#include "scenario/dataset.hh"
#include "scenario/runner.hh"

#ifndef ADRIAS_GOLDEN_DIR
#error "ADRIAS_GOLDEN_DIR must point at the checked-in golden files"
#endif

namespace
{

using namespace adrias;

std::string
num(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.6g", value);
    return buffer;
}

/** Canonical text rendering of one scenario run. */
std::string
renderScenario()
{
    scenario::ScenarioConfig config;
    config.durationSec = 400;
    config.spawnMinSec = 5;
    config.spawnMaxSec = 20;
    config.seed = 20230228; // HPCA'23 — arbitrary but fixed forever

    scenario::ScenarioRunner runner(config);
    scenario::RandomPlacement policy(31);
    const auto result = runner.run(policy);

    std::ostringstream out;
    out << "golden scenario v1\n";
    out << "ticks " << result.trace.size() << "\n";

    // Trace: per-event totals pin the full counter stream without
    // committing megabytes of per-tick values to the repository.
    for (std::size_t e = 0; e < testbed::kNumPerfEvents; ++e) {
        double total = 0.0;
        for (const auto &tick : result.trace)
            total += tick[e];
        out << "event " << e << " total " << num(total) << "\n";
    }
    out << "remote_traffic_gb " << num(result.totalRemoteTrafficGB)
        << "\n";

    out << "records " << result.records.size() << "\n";
    for (const auto &record : result.records) {
        out << record.name << " cls=" << static_cast<int>(record.cls)
            << " mode=" << static_cast<int>(record.mode)
            << " arrival=" << record.arrival
            << " completion=" << record.completion
            << " exec=" << num(record.execTimeSec)
            << " p99=" << num(record.p99Ms)
            << " slowdown=" << num(record.meanSlowdown)
            << " traffic=" << num(record.remoteTrafficGB)
            << " migrations=" << record.migrations << "\n";
    }
    return out.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

TEST(GoldenTest, TinyScenarioMatchesCheckedInGolden)
{
    const std::string path =
        std::string(ADRIAS_GOLDEN_DIR) + "/tiny_scenario.golden";
    const std::string actual = renderScenario();

    if (const char *update = std::getenv("ADRIAS_UPDATE_GOLDEN");
        update && std::string(update) == "1") {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        GTEST_SKIP() << "golden file regenerated at " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " — run with ADRIAS_UPDATE_GOLDEN=1 to create it";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string expected = buffer.str();

    if (actual == expected)
        return;

    // Build a focused diff: first divergence plus every differing line.
    const auto expected_lines = splitLines(expected);
    const auto actual_lines = splitLines(actual);
    std::ostringstream diff;
    diff << "golden mismatch against " << path << "\n"
         << "  expected " << expected_lines.size() << " lines, got "
         << actual_lines.size() << "\n";
    const std::size_t common =
        std::min(expected_lines.size(), actual_lines.size());
    std::size_t shown = 0;
    for (std::size_t i = 0; i < common && shown < 20; ++i) {
        if (expected_lines[i] == actual_lines[i])
            continue;
        diff << "  line " << (i + 1) << ":\n"
             << "    - " << expected_lines[i] << "\n"
             << "    + " << actual_lines[i] << "\n";
        ++shown;
    }
    diff << "If the change is intentional, regenerate with "
            "ADRIAS_UPDATE_GOLDEN=1 and commit the new golden.";
    FAIL() << diff.str();
}

/**
 * Same golden, with the fused LSTM/GEMM kernels forced off.  The fused
 * hot path is contractually bitwise-identical to the reference path, so
 * the end-to-end pipeline must render the exact same canonical text —
 * and a tiny model trained under both paths must predict identically.
 */
TEST(GoldenTest, TinyScenarioMatchesGoldenWithFusedKernelsDisabled)
{
    if (const char *update = std::getenv("ADRIAS_UPDATE_GOLDEN");
        update && std::string(update) == "1")
        GTEST_SKIP() << "golden regeneration uses the default path";

    const bool saved_fused = ml::lstmFusedKernels();
    ml::setLstmFusedKernels(false);

    const std::string path =
        std::string(ADRIAS_GOLDEN_DIR) + "/tiny_scenario.golden";
    const std::string actual = renderScenario();

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " — run with ADRIAS_UPDATE_GOLDEN=1 to create it";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(actual, buffer.str())
        << "reference (unfused) kernels diverged from the golden";

    // The fused-vs-reference bitwise contract is defined on the scalar
    // kernel tier (the vector tier is tolerance-checked by `ctest -L
    // simd` instead), so pin it for the predict comparison below even
    // when the suite runs under ADRIAS_KERNEL_TIER=vector.
    const ml::ScopedKernelTier scalar_pin(ml::KernelTier::Scalar);

    // The scenario itself never runs the LSTM, so also pin a real
    // train + predict round trip: reference path now, fused path next.
    scenario::ScenarioConfig config;
    config.durationSec = 400;
    config.spawnMinSec = 5;
    config.spawnMaxSec = 20;
    config.seed = 20230228;
    scenario::ScenarioRunner runner(config);
    scenario::RandomPlacement policy(31);
    const std::vector<scenario::ScenarioResult> results{
        runner.run(policy)};
    auto samples = scenario::DatasetBuilder::systemState(results);
    ASSERT_GE(samples.size(), 4u);
    samples.resize(std::min<std::size_t>(samples.size(), 16));

    models::ModelConfig model_config;
    model_config.epochs = 2;

    auto train_and_predict = [&] {
        models::SystemStateModel model(model_config);
        model.train(samples);
        return model.predict(samples.front().history);
    };
    const ml::Matrix reference_pred = train_and_predict();
    ml::setLstmFusedKernels(true);
    const ml::Matrix fused_pred = train_and_predict();
    ml::setLstmFusedKernels(saved_fused);

    ASSERT_EQ(reference_pred.rows(), fused_pred.rows());
    ASSERT_EQ(reference_pred.cols(), fused_pred.cols());
    EXPECT_EQ(reference_pred.raw(), fused_pred.raw());
}

} // namespace
