# Empty compiler generated dependencies file for adrias_common.
# This may be replaced when dependencies are built.
