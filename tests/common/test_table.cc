/** @file Unit tests for common/table. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/table.hh"

namespace adrias
{
namespace
{

TEST(TextTable, HeaderOnlyRendersUnderline)
{
    TextTable t({"a", "bb"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("bb"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchIsFatal)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::runtime_error);
}

TEST(TextTable, EmptyHeaderIsFatal)
{
    EXPECT_THROW(TextTable({}), std::runtime_error);
}

TEST(TextTable, NumericRowFormatsWithPrecision)
{
    TextTable t({"name", "x", "y"});
    t.addRow("row", {1.23456, 2.0}, 2);
    const std::string s = t.toString();
    EXPECT_NE(s.find("1.23"), std::string::npos);
    EXPECT_NE(s.find("2.00"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 1u);
}

TEST(TextTable, ColumnsAreAligned)
{
    TextTable t({"n", "value"});
    t.addRow({"shrt", "1"});
    t.addRow({"a-much-longer-label", "2"});
    const std::string s = t.toString();
    // Both "1" and "2" cells must start at the same column.
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < s.size()) {
        const auto nl = s.find('\n', pos);
        lines.push_back(s.substr(pos, nl - pos));
        pos = nl + 1;
    }
    ASSERT_GE(lines.size(), 4u);
    EXPECT_EQ(lines[2].find('1'), lines[3].find('2'));
}

TEST(FormatDouble, RendersNaNAsNotAvailable)
{
    // Empty-sample statistics are NaN by contract; tables must show
    // them as "n/a", not as a number-like token.
    EXPECT_EQ(formatDouble(std::nan(""), 2), "n/a");
}

TEST(FormatDouble, FixedPrecision)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(AsciiBar, ProportionalLength)
{
    EXPECT_EQ(asciiBar(5.0, 10.0, 10).size(), 5u);
    EXPECT_EQ(asciiBar(10.0, 10.0, 10).size(), 10u);
    EXPECT_EQ(asciiBar(20.0, 10.0, 10).size(), 10u); // clamped
    EXPECT_TRUE(asciiBar(0.0, 10.0, 10).empty());
    EXPECT_TRUE(asciiBar(1.0, 0.0, 10).empty());
}

} // namespace
} // namespace adrias
