/**
 * @file
 * Dense row-major matrix — the numeric workhorse of the from-scratch
 * deep-learning substrate.
 *
 * Everything the Adrias models need (batched dense layers, LSTM cells)
 * is expressible with 2-D matrices; sequences are carried as
 * time-major vectors of (batch x features) matrices.
 */

#ifndef ADRIAS_ML_MATRIX_HH
#define ADRIAS_ML_MATRIX_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace adrias::ml
{

/**
 * Work thresholds above which the Matrix kernels fan out onto the
 * global ThreadPool (DESIGN.md §9).  Below a threshold the same kernel
 * runs over the full range on the caller, so results are bitwise
 * identical either way; the thresholds only trade dispatch overhead
 * against parallelism.
 */
struct MatrixParallelConfig
{
    /** Multiply-add count above which the matmul family goes parallel. */
    std::size_t gemmGrain = 64 * 1024;

    /** Element count above which element-wise kernels go parallel. */
    std::size_t elementGrain = 256 * 1024;
};

/** @return the active kernel-parallelism thresholds. */
MatrixParallelConfig matrixParallelConfig();

/**
 * Replace the kernel-parallelism thresholds (tests/benches force tiny
 * shapes onto the parallel path with {0, 0}).  Not synchronized: call
 * only from single-threaded setup code.
 */
void setMatrixParallelConfig(MatrixParallelConfig config);

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** @param rows_ row count; @param cols_ column count (zero-filled). */
    Matrix(std::size_t rows_, std::size_t cols_);

    /** Construct with explicit contents (row-major, size rows*cols). */
    Matrix(std::size_t rows_, std::size_t cols_, std::vector<double> values);

    /** @return matrix filled with a constant. */
    static Matrix constant(std::size_t rows, std::size_t cols, double value);

    /** @return identity matrix of the given order. */
    static Matrix identity(std::size_t order);

    /** @return a 1 x n row vector wrapping the given values. */
    static Matrix rowVector(const std::vector<double> &values);

    std::size_t rows() const { return nRows; }
    std::size_t cols() const { return nCols; }
    std::size_t size() const { return data.size(); }
    bool empty() const { return data.empty(); }

    /** Element access (bounds-checked in debug via panic). */
    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    /** Raw row-major storage. */
    std::vector<double> &raw() { return data; }
    const std::vector<double> &raw() const { return data; }

    /** Matrix product: (m x k) * (k x n) -> (m x n). */
    Matrix matmul(const Matrix &other) const;

    /** this^T * other without materializing the transpose. */
    Matrix transposedMatmul(const Matrix &other) const;

    /** this * other^T without materializing the transpose. */
    Matrix matmulTransposed(const Matrix &other) const;

    /** @return transposed copy. */
    Matrix transposed() const;

    /** Element-wise sum; shapes must match. */
    Matrix operator+(const Matrix &other) const;

    /** Element-wise difference; shapes must match. */
    Matrix operator-(const Matrix &other) const;

    /** Element-wise (Hadamard) product; shapes must match. */
    Matrix hadamard(const Matrix &other) const;

    /** Scalar multiple. */
    Matrix operator*(double scalar) const;

    /** In-place element-wise accumulate. */
    Matrix &operator+=(const Matrix &other);

    /** In-place scalar scale. */
    Matrix &operator*=(double scalar);

    /** Add a 1 x cols row vector to every row (bias broadcast). */
    Matrix addRowBroadcast(const Matrix &row) const;

    /** Column-wise sum producing a 1 x cols row vector. */
    Matrix sumRows() const;

    /**
     * Apply a scalar function to every element (returns a copy).
     * Always serial: `fn` may be stateful (e.g. draw from an Rng), so
     * it is never offloaded to the pool.
     */
    Matrix map(const std::function<double(double)> &fn) const;

    /** Concatenate horizontally: [this | other]; row counts must match. */
    Matrix hconcat(const Matrix &other) const;

    /** Slice of columns [begin, end). */
    Matrix colRange(std::size_t begin, std::size_t end) const;

    /** Copy of one row as a 1 x cols matrix. */
    Matrix row(std::size_t r) const;

    /** Zero all elements in place. */
    void setZero();

    /** Frobenius norm. */
    double norm() const;

    /** Largest absolute element. */
    double maxAbs() const;

    /** Shape string "RxC" for diagnostics. */
    std::string shape() const;

  private:
    std::size_t nRows = 0;
    std::size_t nCols = 0;
    std::vector<double> data;

    void checkSameShape(const Matrix &other, const char *op) const;
};

} // namespace adrias::ml

#endif // ADRIAS_ML_MATRIX_HH
