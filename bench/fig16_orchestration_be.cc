/**
 * @file
 * Fig. 16 — Orchestration evaluation for best-effort applications:
 * execution-time distribution and local/remote placement counts under
 * Random, Round-Robin, All-Local and Adrias with β ∈ {1.0, 0.9, 0.8,
 * 0.7, 0.6}.
 *
 * Paper: Random/RR worst; β=1/0.9 ≈ All-Local; β=0.8 offloads ~10%
 * with ~0.5% median drop; β=0.7 offloads ~35% with ~15% drop; β=0.6
 * over-offloads and degrades badly.  Adrias favours gmm/lda-style
 * overlapping apps for offload and avoids nweight.
 */

#include <iostream>
#include <map>

#include "bench/common.hh"

namespace
{

using namespace adrias;

struct PolicyOutcome
{
    std::string name;
    std::vector<double> exec_times;
    std::size_t local = 0;
    std::size_t remote = 0;
    std::map<std::string, std::size_t> remote_per_app;
    double traffic_gb = 0.0;
};

PolicyOutcome
evaluate(scenario::PlacementPolicy &policy, std::size_t repeats)
{
    PolicyOutcome outcome;
    outcome.name = policy.name();
    for (std::size_t i = 0; i < repeats; ++i) {
        scenario::ScenarioRunner runner(
            bench::evalScenario(3000 + i * 7, 25));
        const auto result = runner.run(policy);
        outcome.traffic_gb += result.totalRemoteTrafficGB;
        for (const auto &record : result.records) {
            if (record.cls != WorkloadClass::BestEffort)
                continue;
            outcome.exec_times.push_back(record.execTimeSec);
            if (record.mode == MemoryMode::Remote) {
                ++outcome.remote;
                ++outcome.remote_per_app[record.name];
            } else {
                ++outcome.local;
            }
        }
    }
    return outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::initFromArgs(argc, argv);
    bench::banner("Fig. 16 — BE orchestration vs baselines",
                  "beta=0.8: ~10% offload, ~0.5% median drop; "
                  "beta=0.7: ~35% offload, ~15% drop; Random/RR worst");

    core::AdriasStack stack(bench::stackOptions());
    const auto repeats = static_cast<std::size_t>(
        bench::envInt("ADRIAS_BENCH_SCENARIOS", 4) / 2 + 1);

    std::vector<PolicyOutcome> outcomes;
    {
        scenario::RandomPlacement random(5);
        outcomes.push_back(evaluate(random, repeats));
        core::RoundRobinScheduler rr;
        outcomes.push_back(evaluate(rr, repeats));
        core::AllLocalScheduler all_local;
        outcomes.push_back(evaluate(all_local, repeats));
    }
    for (double beta : {1.0, 0.9, 0.8, 0.7, 0.6}) {
        core::AdriasConfig config;
        config.beta = beta;
        auto orchestrator = stack.makeOrchestrator(config);
        outcomes.push_back(evaluate(orchestrator, repeats));
    }

    double local_median = 1.0;
    for (const auto &outcome : outcomes)
        if (outcome.name == "all-local")
            local_median = stats::DistributionSummary::from(
                               outcome.exec_times)
                               .median;

    TextTable table({"policy", "n", "median (s)", "p75 (s)", "p95 (s)",
                     "offload %", "median vs all-local"});
    for (const auto &outcome : outcomes) {
        const auto summary =
            stats::DistributionSummary::from(outcome.exec_times);
        const double total =
            static_cast<double>(outcome.local + outcome.remote);
        table.addRow(outcome.name,
                     {static_cast<double>(summary.count), summary.median,
                      summary.p75, summary.p95,
                      total > 0.0 ? 100.0 * outcome.remote / total : 0.0,
                      summary.median / local_median},
                     2);
    }
    std::cout << table.toString();

    // Which applications Adrias chooses to offload (paper §VII:
    // overlapping apps like gmm/lda yes, nweight no).
    std::cout << "\nAdrias(beta=0.7) remote placements per app:\n";
    const auto &adrias07 = outcomes[outcomes.size() - 2];
    TextTable peraPP({"app", "remote count"});
    for (const auto &[name, count] : adrias07.remote_per_app)
        peraPP.addRow(name, {static_cast<double>(count)}, 0);
    std::cout << peraPP.toString();

    std::cout << "\nShape check: naive schedulers dominate the tail; "
                 "beta sweeps trade offload fraction against median "
                 "drop; remote-averse apps stay local.\n";

    const std::string obs_report = obs::finishRun();
    if (!obs_report.empty())
        std::cout << "\nObservability summary:\n" << obs_report;
    return 0;
}
