/**
 * @file
 * Self-tests for the project lint (tools/lint): every rule is proven
 * against a deliberately violating fixture, the NOLINT escapes
 * (single- and multi-rule lists, NOLINTNEXTLINE, NOLINTBEGIN/END
 * regions) and scope boundaries are exercised, and the real tree must
 * scan clean.
 *
 * All violating code lives in string literals or under
 * tools/lint/fixtures/ — the scanner strips string literals before
 * matching, so this file itself stays lint-clean.
 */

#include "lint/lint.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace
{

using adrias::lint::Finding;
using adrias::lint::lintContent;
using adrias::lint::lintFile;
using adrias::lint::lintTree;

std::string
fixture(const std::string &name)
{
    return std::string(ADRIAS_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<std::size_t>
linesOf(const std::vector<Finding> &findings, const std::string &rule)
{
    std::vector<std::size_t> lines;
    for (const auto &f : findings) {
        if (f.rule == rule)
            lines.push_back(f.line);
    }
    return lines;
}

TEST(LintRules, EveryRuleHasMetadata)
{
    const auto &rules = adrias::lint::rules();
    ASSERT_EQ(rules.size(), 9u);
    std::vector<std::string> ids;
    for (const auto &rule : rules) {
        EXPECT_FALSE(rule.description.empty()) << rule.id;
        ids.push_back(rule.id);
    }
    for (const char *expected :
         {"raw-rand", "wall-clock", "unordered-container",
          "nodiscard-result", "float-equal", "iostream-include",
          "raw-ofstream", "raw-thread", "raw-intrinsics"}) {
        EXPECT_NE(std::find(ids.begin(), ids.end(), expected),
                  ids.end())
            << expected;
    }
}

TEST(LintRules, RawRandFixture)
{
    const auto findings =
        lintFile(fixture("bad_rand.cc"), "src/core/bad_rand.cc");
    EXPECT_EQ(linesOf(findings, "raw-rand"),
              (std::vector<std::size_t>{3, 8, 9, 10}));
    // The NOLINT(raw-rand) on fixture line 21 must suppress it.
    for (const auto &f : findings)
        EXPECT_NE(f.line, 21u);
}

TEST(LintRules, WallClockFixture)
{
    const auto findings = lintFile(fixture("bad_wallclock.cc"),
                                   "src/telemetry/bad_wallclock.cc");
    EXPECT_EQ(linesOf(findings, "wall-clock"),
              (std::vector<std::size_t>{8, 10}));
}

TEST(LintRules, UnorderedFixture)
{
    const auto findings = lintFile(fixture("bad_unordered.cc"),
                                   "src/testbed/bad_unordered.cc");
    EXPECT_EQ(linesOf(findings, "unordered-container"),
              (std::vector<std::size_t>{4, 5, 10}));
}

TEST(LintRules, NodiscardFixture)
{
    const auto findings = lintFile(fixture("bad_nodiscard.hh"),
                                   "src/common/bad_nodiscard.hh");
    EXPECT_EQ(linesOf(findings, "nodiscard-result"),
              (std::vector<std::size_t>{10, 12}));
}

TEST(LintRules, FloatEqualFixture)
{
    const auto findings = lintFile(fixture("bad_float_eq.cc"),
                                   "src/stats/bad_float_eq.cc");
    EXPECT_EQ(linesOf(findings, "float-equal"),
              (std::vector<std::size_t>{7, 8, 9}));
}

TEST(LintRules, IostreamFixture)
{
    const auto findings = lintFile(fixture("bad_iostream.cc"),
                                   "src/core/bad_iostream.cc");
    EXPECT_EQ(linesOf(findings, "iostream-include"),
              (std::vector<std::size_t>{3}));
}

TEST(LintRules, RawOfstreamFixture)
{
    const auto findings = lintFile(fixture("bad_ofstream.cc"),
                                   "src/scenario/bad_ofstream.cc");
    EXPECT_EQ(linesOf(findings, "raw-ofstream"),
              (std::vector<std::size_t>{7, 14}));
    // The NOLINTNEXTLINE on fixture line 20 must suppress line 21.
    for (const auto &f : findings)
        EXPECT_NE(f.line, 21u);
}

TEST(LintRules, RawThreadFixture)
{
    const auto findings = lintFile(fixture("bad_thread.cc"),
                                   "src/scenario/bad_thread.cc");
    EXPECT_EQ(linesOf(findings, "raw-thread"),
              (std::vector<std::size_t>{3, 4, 9, 10}));
    // The NOLINTNEXTLINE(raw-thread) on fixture line 17 must
    // suppress line 18.
    for (const auto &f : findings)
        EXPECT_NE(f.line, 18u);
}

TEST(LintRules, RawIntrinsicsFixture)
{
    const auto findings = lintFile(fixture("bad_intrinsics.cc"),
                                   "src/ml/bad_intrinsics.cc");
    EXPECT_EQ(linesOf(findings, "raw-intrinsics"),
              (std::vector<std::size_t>{3, 8, 9, 10}));
    // The NOLINTNEXTLINE(raw-intrinsics) on fixture line 11 must
    // suppress line 12.
    for (const auto &f : findings)
        EXPECT_NE(f.line, 12u);
}

TEST(LintScopes, SimdPortabilityLayerIsExempt)
{
    // src/ml/simd* is the one sanctioned home for raw intrinsics.
    for (const char *label :
         {"src/ml/simd_kernels.cc", "src/ml/simd.hh",
          "src/ml/simd.cc"}) {
        const auto findings =
            lintFile(fixture("bad_intrinsics.cc"), label);
        EXPECT_TRUE(linesOf(findings, "raw-intrinsics").empty())
            << label;
    }
}

TEST(LintScopes, RawIntrinsicsEnforcedInTestsAndBench)
{
    // Unlike raw-thread, the intrinsics rule covers tests and bench
    // too — vector code in suites must also go through the layer.
    for (const char *label :
         {"tests/ml/bad_intrinsics.cc", "bench/bad_intrinsics.cc",
          "src/serving/bad_intrinsics.cc"}) {
        const auto findings =
            lintFile(fixture("bad_intrinsics.cc"), label);
        EXPECT_FALSE(linesOf(findings, "raw-intrinsics").empty())
            << label;
    }
    // tools/ stays outside the scope (the lint tool itself names the
    // banned identifiers).
    EXPECT_TRUE(linesOf(lintFile(fixture("bad_intrinsics.cc"),
                                 "tools/bad_intrinsics.cc"),
                        "raw-intrinsics")
                    .empty());
}

TEST(LintScopes, ThreadPoolImplementationIsExempt)
{
    // The deterministic pool is the one sanctioned std::thread user.
    for (const char *label :
         {"src/common/threadpool.cc", "src/common/threadpool.hh"}) {
        const auto findings = lintFile(fixture("bad_thread.cc"), label);
        EXPECT_TRUE(linesOf(findings, "raw-thread").empty()) << label;
    }
}

TEST(LintScopes, RawThreadNotEnforcedOutsideSrc)
{
    for (const char *label :
         {"tests/common/bad_thread.cc", "bench/bad_thread.cc",
          "tools/bad_thread.cc"}) {
        const auto findings = lintFile(fixture("bad_thread.cc"), label);
        EXPECT_TRUE(linesOf(findings, "raw-thread").empty()) << label;
    }
}

TEST(LintScopes, RawOfstreamNotEnforcedOutsideSrc)
{
    for (const char *label :
         {"tests/common/bad_ofstream.cc", "bench/bad_ofstream.cc",
          "tools/bad_ofstream.cc"}) {
        const auto findings =
            lintFile(fixture("bad_ofstream.cc"), label);
        EXPECT_TRUE(linesOf(findings, "raw-ofstream").empty())
            << label;
    }
}

TEST(LintScopes, DurableFileLayerUsesEscapes)
{
    // The one sanctioned writer carries explicit NOLINT escapes
    // rather than a scope carve-out, so new raw streams inside
    // common/io still get flagged.
    const std::string code = "std::" + std::string("ofstream") +
                             " out(path);\n";
    EXPECT_EQ(lintContent("src/common/io/new_writer.cc", code).size(),
              1u);
}

TEST(LintRules, CleanFixtureHasNoFindings)
{
    const auto findings =
        lintFile(fixture("clean.cc"), "src/core/clean.cc");
    for (const auto &f : findings)
        ADD_FAILURE() << adrias::lint::formatFinding(f);
}

TEST(LintEscapes, BlanketNolintSuppresses)
{
    const std::string code = "int x = std::" + std::string("rand") +
                             "(); // NOLINT\n";
    EXPECT_TRUE(lintContent("src/core/x.cc", code).empty());
}

TEST(LintEscapes, NolintForOtherRuleDoesNotSuppress)
{
    const std::string code = "int x = std::" + std::string("rand") +
                             "(); // NOLINT(float-equal)\n";
    EXPECT_EQ(lintContent("src/core/x.cc", code).size(), 1u);
}

TEST(LintEscapes, MultiRuleListSuppressesEveryNamedRule)
{
    const std::string code = "int x = std::" + std::string("rand") +
                             "(); // NOLINT(raw-rand,float-equal)\n";
    EXPECT_TRUE(lintContent("src/core/x.cc", code).empty());
}

TEST(LintEscapes, RuleNamesMatchExactlyNotBySubstring)
{
    // "rand" is not "raw-rand" — no suppression.
    const std::string code = "int x = std::" + std::string("rand") +
                             "(); // NOLINT(rand)\n";
    EXPECT_EQ(lintContent("src/core/x.cc", code).size(), 1u);
}

TEST(LintEscapes, BeginEndRegionSuppressesOnlyItsLines)
{
    const std::string rand_call = "int a = std::" +
                                  std::string("rand") + "();\n";
    const std::string code = "// NOLINTBEGIN(raw-rand)\n" + rand_call +
                             "// NOLINTEND(raw-rand)\n" + rand_call;
    const auto findings = lintContent("src/core/x.cc", code);
    EXPECT_EQ(linesOf(findings, "raw-rand"),
              (std::vector<std::size_t>{4}));
}

TEST(LintEscapes, BeginEndRegionForOtherRuleDoesNotSuppress)
{
    const std::string code = "// NOLINTBEGIN(float-equal)\n"
                             "int a = std::" +
                             std::string("rand") +
                             "();\n"
                             "// NOLINTEND(float-equal)\n";
    EXPECT_EQ(lintContent("src/core/x.cc", code).size(), 1u);
}

TEST(LintEscapes, UnmatchedBeginExtendsToEndOfFile)
{
    const std::string code = "// NOLINTBEGIN(raw-rand)\n"
                             "int a = std::" +
                             std::string("rand") +
                             "();\n"
                             "int b = std::" +
                             std::string("rand") + "();\n";
    EXPECT_TRUE(lintContent("src/core/x.cc", code).empty());
}

TEST(LintEscapes, BlanketBeginEndSuppressesEveryRule)
{
    const std::string code = "// NOLINTBEGIN\n"
                             "int a = std::" +
                             std::string("rand") +
                             "();\n"
                             "#include <iostream>\n"
                             "// NOLINTEND\n";
    EXPECT_TRUE(lintContent("src/core/x.cc", code).empty());
}

TEST(LintRules, NodiscardCoversAnonymousNamespaceCcHelpers)
{
    const std::string code = "namespace\n"
                             "{\n"
                             "Result<int>\n"
                             "parseHeader(const std::string &text)\n"
                             "{\n"
                             "    return {};\n"
                             "}\n"
                             "} // namespace\n";
    const auto findings = lintContent("src/scenario/x.cc", code);
    EXPECT_EQ(linesOf(findings, "nodiscard-result"),
              (std::vector<std::size_t>{3}));
}

TEST(LintRules, NodiscardCoversStaticCcHelpers)
{
    const std::string code = "static Result<void> flushAll();\n";
    const auto findings = lintContent("src/scenario/x.cc", code);
    EXPECT_EQ(linesOf(findings, "nodiscard-result"),
              (std::vector<std::size_t>{1}));
}

TEST(LintRules, NodiscardSkipsAnnotatedAndExternCcDeclarations)
{
    // Already annotated: clean.
    const std::string annotated = "namespace\n"
                                  "{\n"
                                  "[[nodiscard]] Result<int>\n"
                                  "parseHeader(const std::string &text)\n"
                                  "{\n"
                                  "    return {};\n"
                                  "}\n"
                                  "} // namespace\n";
    EXPECT_TRUE(lintContent("src/scenario/x.cc", annotated).empty());

    // Extern-linkage definitions in a .cc belong to a header
    // declaration — the header side of the rule owns those.
    const std::string external = "Result<int>\n"
                                 "adrias::parseHeader(const std::string "
                                 "&text)\n"
                                 "{\n"
                                 "    return {};\n"
                                 "}\n";
    EXPECT_TRUE(lintContent("src/scenario/x.cc", external).empty());
}

TEST(LintScopes, WallClockNotEnforcedInBench)
{
    const auto findings = lintFile(fixture("bad_wallclock.cc"),
                                   "bench/bad_wallclock.cc");
    EXPECT_TRUE(linesOf(findings, "wall-clock").empty());
}

TEST(LintScopes, RngImplementationIsExempt)
{
    const auto findings =
        lintFile(fixture("bad_rand.cc"), "src/common/rng.cc");
    EXPECT_TRUE(linesOf(findings, "raw-rand").empty());
}

TEST(LintScopes, LoggerBackendMayIncludeIostream)
{
    const std::string code = "#include <iostream>\n";
    EXPECT_TRUE(lintContent("src/common/logging.cc", code).empty());
    EXPECT_EQ(lintContent("src/core/adrias.cc", code).size(), 1u);
}

TEST(LintScopes, UnorderedAllowedOutsideSimCore)
{
    const auto findings =
        lintFile(fixture("bad_unordered.cc"), "src/ml/cache.cc");
    EXPECT_TRUE(linesOf(findings, "unordered-container").empty());
}

TEST(LintStripper, CommentsAndStringsNeverMatch)
{
    const std::string code =
        "// " + std::string("rand") + "() lives here\n" +
        "/* std::" + std::string("mt19937") + " too */\n" +
        "const char *s = \"" + std::string("time") + "(0)\";\n";
    EXPECT_TRUE(lintContent("src/core/x.cc", code).empty());
}

TEST(LintStripper, MultiLineBlockComment)
{
    const std::string code = "/*\n std::" + std::string("rand") +
                             "()\n*/\nint x = 0;\n";
    EXPECT_TRUE(lintContent("src/core/x.cc", code).empty());
}

TEST(LintIo, MissingFileReportsIoFinding)
{
    const auto findings =
        lintFile(fixture("does_not_exist.cc"), "src/core/missing.cc");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "io");
}

TEST(LintFormat, FindingRendersAsGccStyleDiagnostic)
{
    const Finding f{"src/a.cc", 12, "raw-rand", "detail text"};
    EXPECT_EQ(adrias::lint::formatFinding(f),
              "src/a.cc:12: [raw-rand] detail text");
}

/** The guarantee the `lint` CTest target enforces: the tree is clean. */
TEST(LintTree, RepositoryScansClean)
{
    const auto findings = lintTree(ADRIAS_LINT_REPO_ROOT);
    for (const auto &f : findings)
        ADD_FAILURE() << adrias::lint::formatFinding(f);
}

} // namespace
