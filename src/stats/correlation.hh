/**
 * @file
 * Correlation coefficients for the metric-affinity analysis (Fig. 6):
 * Pearson's r between low-level system metrics and application
 * performance, plus Spearman's rank correlation as a robustness check.
 */

#ifndef ADRIAS_STATS_CORRELATION_HH
#define ADRIAS_STATS_CORRELATION_HH

#include <vector>

namespace adrias::stats
{

/**
 * Pearson's linear correlation coefficient.
 *
 * @return r in [-1, 1]; 0 when either input has zero variance.
 * @pre x.size() == y.size() and size >= 2.
 */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/**
 * Spearman's rank correlation (Pearson on fractional ranks, with ties
 * receiving their average rank).
 *
 * @pre x.size() == y.size() and size >= 2.
 */
double spearman(const std::vector<double> &x, const std::vector<double> &y);

/**
 * Fractional ranks of a sample (average rank for ties), 1-based.
 * Exposed for testing.
 */
std::vector<double> fractionalRanks(const std::vector<double> &values);

} // namespace adrias::stats

#endif // ADRIAS_STATS_CORRELATION_HH
