#include "models/system_state.hh"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/io/durable_file.hh"
#include "common/logging.hh"
#include "common/threadpool.hh"
#include "ml/loss.hh"
#include "ml/optimizer.hh"
#include "ml/serialize.hh"
#include "ml/simd.hh"
#include "models/batching.hh"
#include "stats/regression_metrics.hh"
#include "testbed/counters.hh"

namespace adrias::models
{

using testbed::kNumPerfEvents;

SystemStateModel::SystemStateModel(ModelConfig config_)
    : config(config_), rng(config_.seed)
{
    lstm1 = std::make_unique<ml::Lstm>(kNumPerfEvents, config.hidden, rng);
    lstm2 = std::make_unique<ml::Lstm>(config.hidden, config.hidden, rng);
    head = ml::makeNonLinearHead(config.hidden, config.headWidth,
                                 kNumPerfEvents, config.dropout, rng,
                                 config.headNorm);
}

std::vector<ml::Param *>
SystemStateModel::params()
{
    std::vector<ml::Param *> all = lstm1->params();
    for (ml::Param *p : lstm2->params())
        all.push_back(p);
    for (ml::Param *p : head->params())
        all.push_back(p);
    return all;
}

ml::Matrix
SystemStateModel::forwardBatch(const std::vector<ml::Matrix> &batch) const
{
    const auto hidden1 = lstm1->forwardSequence(batch);
    const auto hidden2 = lstm2->forwardSequence(hidden1);
    return head->forward(hidden2.back());
}

void
SystemStateModel::backwardBatch(const ml::Matrix &grad_output,
                                std::size_t batch_rows) const
{
    ml::Matrix grad_last = head->backward(grad_output);
    std::vector<ml::Matrix> grad_hidden2(
        scenario::ScenarioRunner::kWindowBins,
        ml::Matrix(batch_rows, config.hidden));
    grad_hidden2.back() = std::move(grad_last);
    const auto grad_hidden1 = lstm2->backwardSequence(grad_hidden2);
    lstm1->backwardSequence(grad_hidden1);
}

double
SystemStateModel::train(
    const std::vector<scenario::SystemStateSample> &samples)
{
    if (samples.size() < 4)
        fatal("SystemStateModel::train: too few samples");

    // Training stays on the scalar tier regardless of the process-wide
    // kernel tier: the fitted weights feed checkpoints and goldens, so
    // they must not drift with the inference tier (DESIGN.md §16).
    const ml::ScopedKernelTier scalar_pin(ml::KernelTier::Scalar);

    // Fit scalers on the training inputs/targets only.
    std::vector<std::vector<ml::Matrix>> sequences;
    sequences.reserve(samples.size());
    for (const auto &sample : samples)
        sequences.push_back(sample.history);
    inputScaler.fitSequences(sequences);

    ml::Matrix targets(samples.size(), kNumPerfEvents);
    for (std::size_t i = 0; i < samples.size(); ++i)
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            targets.at(i, e) = samples[i].target.at(0, e);
    targetScaler.fit(targets);

    auto parameters = params();
    ml::Adam optimizer(parameters, config.learningRate);
    head->setTraining(true);
    head->setInference(false);
    lstm1->setInference(false);
    lstm2->setInference(false);

    std::vector<std::size_t> order(samples.size());
    std::iota(order.begin(), order.end(), std::size_t{0});

    double epoch_loss = 0.0;
    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        epoch_loss = 0.0;
        std::size_t batches = 0;
        for (std::size_t begin = 0; begin < order.size();
             begin += config.batchSize) {
            const std::size_t end =
                std::min(order.size(), begin + config.batchSize);

            // Per-sample feature scaling is independent work: each
            // sample fills its own slot, concurrently, and the slots
            // are consumed in fixed index order below.
            std::vector<const std::vector<ml::Matrix> *> batch_seqs;
            std::vector<const ml::Matrix *> batch_targets;
            std::vector<std::vector<ml::Matrix>> scaled_seqs(end - begin);
            ThreadPool::global().parallelForEach(
                end - begin, [&](std::size_t s) {
                    scaled_seqs[s] = inputScaler.transformSequence(
                        samples[order[begin + s]].history);
                });
            for (std::size_t i = begin; i < end; ++i)
                batch_targets.push_back(&samples[order[i]].target);
            for (const auto &seq : scaled_seqs)
                batch_seqs.push_back(&seq);

            const auto batch = stackSequences(batch_seqs);
            const ml::Matrix target =
                targetScaler.transform(stackRows(batch_targets));

            optimizer.zeroGrad();
            const ml::Matrix prediction = forwardBatch(batch);
            ml::Matrix grad;
            epoch_loss += ml::mseLoss(prediction, target, &grad);
            ++batches;
            backwardBatch(grad, end - begin);
            optimizer.clipGradNorm(config.gradClip);
            optimizer.step();
        }
        epoch_loss /= static_cast<double>(std::max<std::size_t>(1, batches));
    }

    // Training is done with the LSTMs: every forward from here on is
    // inference-only, so skip their BPTT caches (outputs unchanged).
    lstm1->setInference(true);
    lstm2->setInference(true);

    // One clean pass to replace BatchNorm running statistics with exact
    // population statistics — eliminates the train/eval normalization
    // mismatch that spiky channel counters otherwise cause.
    head->beginStatsEstimation();
    for (std::size_t begin = 0; begin < samples.size();
         begin += config.batchSize) {
        const std::size_t end =
            std::min(samples.size(), begin + config.batchSize);
        std::vector<std::vector<ml::Matrix>> scaled(end - begin);
        std::vector<const std::vector<ml::Matrix> *> ptrs;
        ThreadPool::global().parallelForEach(
            end - begin, [&](std::size_t s) {
                scaled[s] = inputScaler.transformSequence(
                    samples[begin + s].history);
            });
        for (const auto &seq : scaled)
            ptrs.push_back(&seq);
        forwardBatch(stackSequences(ptrs));
    }
    head->endStatsEstimation();

    head->setTraining(false);
    head->setInference(true);
    isTrained = true;
    return epoch_loss;
}

void
SystemStateModel::saveToStream(std::ostream &out)
{
    if (!isTrained)
        fatal("SystemStateModel::save before train()");
    ml::saveParams(out, params());
    ml::saveStateTensors(out, head->stateTensors());
    ml::saveScaler(out, inputScaler);
    ml::saveScaler(out, targetScaler);
}

void
SystemStateModel::save(const std::string &path)
{
    std::ostringstream out;
    saveToStream(out);
    io::atomicWriteFile(path, out.str()).expect();
}

void
SystemStateModel::loadFromStream(std::istream &in)
{
    ml::loadParams(in, params());
    ml::loadStateTensors(in, head->stateTensors());
    ml::loadScaler(in, inputScaler);
    ml::loadScaler(in, targetScaler);
    head->setTraining(false);
    // A loaded model only ever predicts (re-training reconstructs it),
    // so the whole pipeline runs the inference fast-path.
    head->setInference(true);
    lstm1->setInference(true);
    lstm2->setInference(true);
    isTrained = true;
}

void
SystemStateModel::load(const std::string &path)
{
    const Result<std::string> content = io::readFile(path);
    if (!content)
        fatal("SystemStateModel::load: " + content.error().toString());
    std::istringstream in(content.value());
    loadFromStream(in);
}

ml::Matrix
SystemStateModel::predict(const std::vector<ml::Matrix> &history) const
{
    if (!isTrained)
        fatal("SystemStateModel::predict before train()");
    if (history.empty())
        fatal("SystemStateModel::predict on empty history");
    const auto scaled = inputScaler.transformSequence(history);
    const ml::Matrix out = forwardBatch(scaled);
    return targetScaler.inverseTransform(out);
}

std::vector<ml::Matrix>
SystemStateModel::predictBatch(
    const std::vector<const std::vector<ml::Matrix> *> &histories) const
{
    if (!isTrained)
        fatal("SystemStateModel::predictBatch before train()");
    if (histories.empty())
        fatal("SystemStateModel::predictBatch on empty batch");

    // Epoch-snapshot serving hands every row of a shard the SAME
    // history window, so batches are full of repeated sequence
    // pointers.  Scale and forward each distinct sequence once and let
    // rows gather their result: every op in the forward is
    // row-independent (DESIGN.md §9), so the gathered outputs are
    // bitwise identical to a row-per-row stack — this is where the
    // fused serving path beats width-1 calls, which can never share
    // work across requests.
    std::vector<const std::vector<ml::Matrix> *> distinct;
    std::vector<std::size_t> slot(histories.size());
    std::unordered_map<const void *, std::size_t> seen;
    for (std::size_t b = 0; b < histories.size(); ++b) {
        if (histories[b] == nullptr || histories[b]->empty())
            fatal("SystemStateModel::predictBatch: empty history");
        const auto [it, inserted] =
            seen.emplace(histories[b], distinct.size());
        if (inserted)
            distinct.push_back(histories[b]);
        slot[b] = it->second;
    }

    // Per-sequence feature scaling is independent work: each distinct
    // sequence fills its own slot concurrently and the slots are
    // consumed in index order.
    std::vector<std::vector<ml::Matrix>> scaled(distinct.size());
    ThreadPool::global().parallelForEach(
        distinct.size(), [&](std::size_t d) {
            scaled[d] = inputScaler.transformSequence(*distinct[d]);
        });
    std::vector<const std::vector<ml::Matrix> *> ptrs;
    ptrs.reserve(scaled.size());
    for (const auto &seq : scaled)
        ptrs.push_back(&seq);

    const ml::Matrix out =
        targetScaler.inverseTransform(forwardBatch(stackSequences(ptrs)));
    std::vector<ml::Matrix> rows(histories.size());
    for (std::size_t b = 0; b < rows.size(); ++b) {
        ml::Matrix row(1, out.cols());
        for (std::size_t e = 0; e < out.cols(); ++e)
            row.at(0, e) = out.at(slot[b], e);
        rows[b] = std::move(row);
    }
    return rows;
}

SystemStateEvaluation
SystemStateModel::evaluate(
    const std::vector<scenario::SystemStateSample> &samples) const
{
    if (samples.empty())
        fatal("SystemStateModel::evaluate on empty set");

    std::vector<std::vector<double>> actual(kNumPerfEvents);
    std::vector<std::vector<double>> predicted(kNumPerfEvents);
    SystemStateEvaluation eval;
    for (const auto &sample : samples) {
        const ml::Matrix out = predict(sample.history);
        for (std::size_t e = 0; e < kNumPerfEvents; ++e) {
            actual[e].push_back(sample.target.at(0, e));
            predicted[e].push_back(out.at(0, e));
            eval.actual.push_back(sample.target.at(0, e));
            eval.predicted.push_back(out.at(0, e));
        }
    }
    double total = 0.0;
    for (std::size_t e = 0; e < kNumPerfEvents; ++e) {
        const double r2 = stats::r2Score(actual[e], predicted[e]);
        eval.r2PerEvent.push_back(r2);
        total += r2;
    }
    eval.r2Average = total / static_cast<double>(kNumPerfEvents);
    return eval;
}

} // namespace adrias::models
