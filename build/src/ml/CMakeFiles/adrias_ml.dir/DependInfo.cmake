
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/activation.cc" "src/ml/CMakeFiles/adrias_ml.dir/activation.cc.o" "gcc" "src/ml/CMakeFiles/adrias_ml.dir/activation.cc.o.d"
  "/root/repo/src/ml/batchnorm.cc" "src/ml/CMakeFiles/adrias_ml.dir/batchnorm.cc.o" "gcc" "src/ml/CMakeFiles/adrias_ml.dir/batchnorm.cc.o.d"
  "/root/repo/src/ml/dense.cc" "src/ml/CMakeFiles/adrias_ml.dir/dense.cc.o" "gcc" "src/ml/CMakeFiles/adrias_ml.dir/dense.cc.o.d"
  "/root/repo/src/ml/dropout.cc" "src/ml/CMakeFiles/adrias_ml.dir/dropout.cc.o" "gcc" "src/ml/CMakeFiles/adrias_ml.dir/dropout.cc.o.d"
  "/root/repo/src/ml/layernorm.cc" "src/ml/CMakeFiles/adrias_ml.dir/layernorm.cc.o" "gcc" "src/ml/CMakeFiles/adrias_ml.dir/layernorm.cc.o.d"
  "/root/repo/src/ml/loss.cc" "src/ml/CMakeFiles/adrias_ml.dir/loss.cc.o" "gcc" "src/ml/CMakeFiles/adrias_ml.dir/loss.cc.o.d"
  "/root/repo/src/ml/lstm.cc" "src/ml/CMakeFiles/adrias_ml.dir/lstm.cc.o" "gcc" "src/ml/CMakeFiles/adrias_ml.dir/lstm.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/adrias_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/adrias_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/optimizer.cc" "src/ml/CMakeFiles/adrias_ml.dir/optimizer.cc.o" "gcc" "src/ml/CMakeFiles/adrias_ml.dir/optimizer.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/ml/CMakeFiles/adrias_ml.dir/scaler.cc.o" "gcc" "src/ml/CMakeFiles/adrias_ml.dir/scaler.cc.o.d"
  "/root/repo/src/ml/sequential.cc" "src/ml/CMakeFiles/adrias_ml.dir/sequential.cc.o" "gcc" "src/ml/CMakeFiles/adrias_ml.dir/sequential.cc.o.d"
  "/root/repo/src/ml/serialize.cc" "src/ml/CMakeFiles/adrias_ml.dir/serialize.cc.o" "gcc" "src/ml/CMakeFiles/adrias_ml.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adrias_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/adrias_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
