#include "common/types.hh"

#include <stdexcept>

namespace adrias
{

std::string
toString(MemoryMode mode)
{
    switch (mode) {
      case MemoryMode::Local:
        return "local";
      case MemoryMode::Remote:
        return "remote";
    }
    return "unknown";
}

std::string
toString(WorkloadClass cls)
{
    switch (cls) {
      case WorkloadClass::BestEffort:
        return "best-effort";
      case WorkloadClass::LatencyCritical:
        return "latency-critical";
      case WorkloadClass::Interference:
        return "interference";
    }
    return "unknown";
}

MemoryMode
memoryModeFromString(const std::string &text)
{
    if (text == "local")
        return MemoryMode::Local;
    if (text == "remote")
        return MemoryMode::Remote;
    throw std::invalid_argument("unknown memory mode: '" + text + "'");
}

} // namespace adrias
