#include "ml/scaler.hh"

#include <cmath>

#include "common/logging.hh"
#include "stats/online_stats.hh"

namespace adrias::ml
{

void
StandardScaler::fit(const Matrix &samples)
{
    if (samples.rows() == 0)
        fatal("StandardScaler::fit on empty design matrix");
    std::vector<stats::OnlineStats> columns(samples.cols());
    for (std::size_t r = 0; r < samples.rows(); ++r)
        for (std::size_t c = 0; c < samples.cols(); ++c)
            columns[c].add(samples.at(r, c));

    means.assign(samples.cols(), 0.0);
    stds.assign(samples.cols(), 1.0);
    for (std::size_t c = 0; c < samples.cols(); ++c) {
        means[c] = columns[c].mean();
        const double sd = columns[c].stddev();
        stds[c] = sd > 1e-12 ? sd : 1.0; // constant columns stay as-is
    }
}

void
StandardScaler::fitSequences(
    const std::vector<std::vector<Matrix>> &sequences)
{
    if (sequences.empty() || sequences.front().empty())
        fatal("StandardScaler::fitSequences on empty input");
    const std::size_t width = sequences.front().front().cols();
    std::vector<stats::OnlineStats> columns(width);
    for (const auto &sequence : sequences) {
        for (const Matrix &step : sequence) {
            if (step.cols() != width)
                panic("StandardScaler::fitSequences ragged widths");
            for (std::size_t r = 0; r < step.rows(); ++r)
                for (std::size_t c = 0; c < width; ++c)
                    columns[c].add(step.at(r, c));
        }
    }
    means.assign(width, 0.0);
    stds.assign(width, 1.0);
    for (std::size_t c = 0; c < width; ++c) {
        means[c] = columns[c].mean();
        const double sd = columns[c].stddev();
        stds[c] = sd > 1e-12 ? sd : 1.0;
    }
}

void
StandardScaler::checkFitted(std::size_t width) const
{
    if (!fitted())
        fatal("StandardScaler used before fit()");
    if (width != means.size())
        panic("StandardScaler width mismatch");
}

Matrix
StandardScaler::transform(const Matrix &samples) const
{
    checkFitted(samples.cols());
    Matrix out = samples;
    for (std::size_t r = 0; r < out.rows(); ++r)
        for (std::size_t c = 0; c < out.cols(); ++c)
            out.at(r, c) = (out.at(r, c) - means[c]) / stds[c];
    return out;
}

std::vector<Matrix>
StandardScaler::transformSequence(const std::vector<Matrix> &sequence) const
{
    std::vector<Matrix> out;
    out.reserve(sequence.size());
    for (const Matrix &step : sequence)
        out.push_back(transform(step));
    return out;
}

Matrix
StandardScaler::inverseTransform(const Matrix &samples) const
{
    checkFitted(samples.cols());
    Matrix out = samples;
    for (std::size_t r = 0; r < out.rows(); ++r)
        for (std::size_t c = 0; c < out.cols(); ++c)
            out.at(r, c) = out.at(r, c) * stds[c] + means[c];
    return out;
}

double
StandardScaler::inverseTransformScalar(double value,
                                       std::size_t column) const
{
    checkFitted(means.size());
    if (column >= means.size())
        panic("StandardScaler column out of range");
    return value * stds[column] + means[column];
}

double
StandardScaler::transformScalar(double value, std::size_t column) const
{
    checkFitted(means.size());
    if (column >= means.size())
        panic("StandardScaler column out of range");
    return (value - means[column]) / stds[column];
}

void
StandardScaler::restore(std::vector<double> means_,
                        std::vector<double> stds_)
{
    if (means_.size() != stds_.size())
        fatal("StandardScaler::restore size mismatch");
    means = std::move(means_);
    stds = std::move(stds_);
}

} // namespace adrias::ml
