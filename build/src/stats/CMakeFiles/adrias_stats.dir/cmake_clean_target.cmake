file(REMOVE_RECURSE
  "libadrias_stats.a"
)
