file(REMOVE_RECURSE
  "CMakeFiles/characterization.dir/characterization.cc.o"
  "CMakeFiles/characterization.dir/characterization.cc.o.d"
  "characterization"
  "characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
