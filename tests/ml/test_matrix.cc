/** @file Unit tests for ml/matrix. */

#include <gtest/gtest.h>

#include "ml/matrix.hh"

namespace adrias::ml
{
namespace
{

TEST(Matrix, DefaultIsEmpty)
{
    Matrix m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, ConstructionZeroFills)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_EQ(m.at(r, c), 0.0);
}

TEST(Matrix, InitializerShapeMismatchPanics)
{
    EXPECT_THROW(Matrix(2, 2, {1.0, 2.0, 3.0}), std::logic_error);
}

TEST(Matrix, AtBoundsCheckedUnderInvariants)
{
    // at() bounds checks live under ADRIAS_INVARIANT: active in
    // Debug/RelWithDebInfo (where the default handler panics), compiled
    // out entirely in Release.
    if (!invariant::kEnabled)
        GTEST_SKIP() << "invariant checks compiled out in this build";
    Matrix m(2, 2);
    EXPECT_THROW(m.at(2, 0), std::logic_error);
    EXPECT_THROW(m.at(0, 2), std::logic_error);
    const Matrix &cm = m;
    EXPECT_THROW(cm.at(2, 0), std::logic_error);
    EXPECT_THROW(cm.at(0, 2), std::logic_error);
}

TEST(Matrix, MatmulKnownProduct)
{
    Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
    Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
    Matrix c = a.matmul(b);
    ASSERT_EQ(c.rows(), 2u);
    ASSERT_EQ(c.cols(), 2u);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(Matrix, MatmulDimensionMismatchPanics)
{
    Matrix a(2, 3);
    Matrix b(2, 3);
    EXPECT_THROW(a.matmul(b), std::logic_error);
}

TEST(Matrix, IdentityIsNeutral)
{
    Matrix a(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
    Matrix i = Matrix::identity(3);
    const Matrix left = i.matmul(a);
    const Matrix right = a.matmul(i);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c) {
            EXPECT_DOUBLE_EQ(left.at(r, c), a.at(r, c));
            EXPECT_DOUBLE_EQ(right.at(r, c), a.at(r, c));
        }
}

TEST(Matrix, TransposedMatmulMatchesExplicit)
{
    Matrix a(3, 2, {1, 2, 3, 4, 5, 6});
    Matrix b(3, 4, {1, 0, 2, 1, 0, 1, 1, 2, 3, 1, 0, 1});
    const Matrix fused = a.transposedMatmul(b);
    const Matrix explicit_ = a.transposed().matmul(b);
    ASSERT_EQ(fused.rows(), explicit_.rows());
    ASSERT_EQ(fused.cols(), explicit_.cols());
    for (std::size_t r = 0; r < fused.rows(); ++r)
        for (std::size_t c = 0; c < fused.cols(); ++c)
            EXPECT_DOUBLE_EQ(fused.at(r, c), explicit_.at(r, c));
}

TEST(Matrix, MatmulTransposedMatchesExplicit)
{
    Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
    Matrix b(4, 3, {1, 0, 2, 1, 0, 1, 1, 2, 3, 1, 0, 1});
    const Matrix fused = a.matmulTransposed(b);
    const Matrix explicit_ = a.matmul(b.transposed());
    for (std::size_t r = 0; r < fused.rows(); ++r)
        for (std::size_t c = 0; c < fused.cols(); ++c)
            EXPECT_DOUBLE_EQ(fused.at(r, c), explicit_.at(r, c));
}

TEST(Matrix, TransposeInvolution)
{
    Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
    const Matrix back = a.transposed().transposed();
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(back.at(r, c), a.at(r, c));
}

TEST(Matrix, ElementwiseOps)
{
    Matrix a(1, 3, {1, 2, 3});
    Matrix b(1, 3, {4, 5, 6});
    const Matrix sum = a + b;
    const Matrix diff = b - a;
    const Matrix prod = a.hadamard(b);
    const Matrix scaled = a * 2.0;
    EXPECT_DOUBLE_EQ(sum.at(0, 2), 9.0);
    EXPECT_DOUBLE_EQ(diff.at(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(prod.at(0, 1), 10.0);
    EXPECT_DOUBLE_EQ(scaled.at(0, 2), 6.0);
}

TEST(Matrix, ShapeMismatchPanics)
{
    Matrix a(1, 3);
    Matrix b(1, 2);
    EXPECT_THROW(a + b, std::logic_error);
    EXPECT_THROW(a - b, std::logic_error);
    EXPECT_THROW(a.hadamard(b), std::logic_error);
    EXPECT_THROW(a += b, std::logic_error);
}

TEST(Matrix, AddRowBroadcast)
{
    Matrix a(2, 2, {1, 2, 3, 4});
    Matrix bias(1, 2, {10, 20});
    const Matrix out = a.addRowBroadcast(bias);
    EXPECT_DOUBLE_EQ(out.at(0, 0), 11.0);
    EXPECT_DOUBLE_EQ(out.at(1, 1), 24.0);
    Matrix bad(1, 3);
    EXPECT_THROW(a.addRowBroadcast(bad), std::logic_error);
}

TEST(Matrix, SumRows)
{
    Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
    const Matrix s = a.sumRows();
    ASSERT_EQ(s.rows(), 1u);
    EXPECT_DOUBLE_EQ(s.at(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(s.at(0, 1), 7.0);
    EXPECT_DOUBLE_EQ(s.at(0, 2), 9.0);
}

TEST(Matrix, HconcatAndColRange)
{
    Matrix a(2, 2, {1, 2, 3, 4});
    Matrix b(2, 1, {9, 8});
    const Matrix cat = a.hconcat(b);
    ASSERT_EQ(cat.cols(), 3u);
    EXPECT_DOUBLE_EQ(cat.at(0, 2), 9.0);
    EXPECT_DOUBLE_EQ(cat.at(1, 2), 8.0);

    const Matrix mid = cat.colRange(1, 3);
    ASSERT_EQ(mid.cols(), 2u);
    EXPECT_DOUBLE_EQ(mid.at(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(mid.at(1, 1), 8.0);

    EXPECT_THROW(cat.colRange(2, 1), std::logic_error);
    EXPECT_THROW(cat.colRange(0, 4), std::logic_error);
}

TEST(Matrix, RowExtraction)
{
    Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
    const Matrix r = a.row(1);
    ASSERT_EQ(r.rows(), 1u);
    EXPECT_DOUBLE_EQ(r.at(0, 0), 4.0);
    EXPECT_THROW(a.row(2), std::logic_error);
}

TEST(Matrix, MapAppliesFunction)
{
    Matrix a(1, 3, {-1, 0, 2});
    const Matrix out = a.map([](double x) { return x * x; });
    EXPECT_DOUBLE_EQ(out.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(out.at(0, 2), 4.0);
}

TEST(Matrix, NormAndMaxAbs)
{
    Matrix a(1, 2, {3, -4});
    EXPECT_DOUBLE_EQ(a.norm(), 5.0);
    EXPECT_DOUBLE_EQ(a.maxAbs(), 4.0);
}

TEST(Matrix, SetZero)
{
    Matrix a = Matrix::constant(2, 2, 7.0);
    a.setZero();
    EXPECT_DOUBLE_EQ(a.maxAbs(), 0.0);
}

TEST(Matrix, RowVectorFactory)
{
    const Matrix v = Matrix::rowVector({1.0, 2.0, 3.0});
    ASSERT_EQ(v.rows(), 1u);
    ASSERT_EQ(v.cols(), 3u);
    EXPECT_DOUBLE_EQ(v.at(0, 1), 2.0);
}

TEST(Matrix, IntoOverloadsMatchAllocatingBitwise)
{
    Matrix a(2, 3, {1, -2, 3, 0, 5, -6});
    Matrix b(3, 4, {1, 0, 2, 1, 0, 1, 1, 2, 3, 1, 0, 1});
    Matrix at(3, 2, {1, 4, -2, 5, 3, 0});
    Matrix bt(4, 3, {1, 0, 2, 1, 0, 1, 1, 2, 3, 1, 0, 1});

    Matrix out;
    a.matmulInto(b, out);
    EXPECT_EQ(out.raw(), a.matmul(b).raw());

    at.transposedMatmulInto(b, out);
    EXPECT_EQ(out.raw(), at.transposedMatmul(b).raw());

    a.matmulTransposedInto(bt, out);
    EXPECT_EQ(out.raw(), a.matmulTransposed(bt).raw());
}

TEST(Matrix, IntoOverloadsReshapeTheDestination)
{
    // A destination from a previous, differently-shaped product must be
    // fully reset — no stale elements may survive.
    Matrix big(4, 4, std::vector<double>(16, 7.0));
    Matrix a(1, 2, {1, 2});
    Matrix b(2, 1, {3, 4});
    a.matmulInto(b, big);
    ASSERT_EQ(big.rows(), 1u);
    ASSERT_EQ(big.cols(), 1u);
    EXPECT_DOUBLE_EQ(big.at(0, 0), 11.0);
}

TEST(Matrix, IntoOverloadsRejectAliasing)
{
    Matrix a(2, 2, {1, 2, 3, 4});
    Matrix b(2, 2, {5, 6, 7, 8});
    EXPECT_THROW(a.matmulInto(b, a), std::logic_error);
    EXPECT_THROW(a.matmulInto(b, b), std::logic_error);
    EXPECT_THROW(a.transposedMatmulInto(b, a), std::logic_error);
    EXPECT_THROW(a.matmulTransposedInto(b, b), std::logic_error);
    EXPECT_THROW(a.colRangeInto(0, 1, a), std::logic_error);
}

TEST(Matrix, SumRowsAddToAccumulates)
{
    Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
    Matrix dst(1, 3, {10, 20, 30});
    const Matrix expected = dst + a.sumRows();
    a.sumRowsAddTo(dst);
    EXPECT_EQ(dst.raw(), expected.raw());

    Matrix wrong(2, 3);
    EXPECT_THROW(a.sumRowsAddTo(wrong), std::logic_error);
}

TEST(Matrix, ColRangeIntoMatchesColRange)
{
    Matrix a(2, 4, {1, 2, 3, 4, 5, 6, 7, 8});
    Matrix dst(5, 5, std::vector<double>(25, 9.0));
    a.colRangeInto(1, 3, dst);
    EXPECT_EQ(dst.raw(), a.colRange(1, 3).raw());
    EXPECT_THROW(a.colRangeInto(3, 1, dst), std::logic_error);
    EXPECT_THROW(a.colRangeInto(0, 5, dst), std::logic_error);
}

TEST(Matrix, AddRowBroadcastInPlaceMatches)
{
    Matrix a(2, 2, {1, 2, 3, 4});
    Matrix bias(1, 2, {10, 20});
    const Matrix expected = a.addRowBroadcast(bias);
    a.addRowBroadcastInPlace(bias);
    EXPECT_EQ(a.raw(), expected.raw());
    Matrix bad(1, 3);
    EXPECT_THROW(a.addRowBroadcastInPlace(bad), std::logic_error);
}

TEST(Matrix, ResizeZeroFillsAndReusesStorage)
{
    Matrix m(4, 4, std::vector<double>(16, 3.0));
    m.resize(2, 3);
    ASSERT_EQ(m.rows(), 2u);
    ASSERT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m.maxAbs(), 0.0);

    // resizeForOverwrite keeps surviving elements (linear order).
    Matrix k(1, 4, {1, 2, 3, 4});
    k.resizeForOverwrite(2, 2);
    EXPECT_DOUBLE_EQ(k.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(k.at(1, 1), 4.0);
}

} // namespace
} // namespace adrias::ml
