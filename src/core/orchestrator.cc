#include "core/orchestrator.hh"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "obs/obs.hh"
#include "scenario/runner.hh"

namespace adrias::core
{

#if ADRIAS_OBS_ENABLED
namespace
{

/**
 * Report one placement decision to the observability layer: counters
 * by outcome and decision path, plus a sim-time instant carrying the
 * full comparison operands (NaN marks an operand the path never
 * computed — a fallback decision has no t̂, a BE decision no p̂99).
 */
void
recordPlacement(const workloads::WorkloadSpec &spec, SimTime now,
                MemoryMode mode, const char *path, double t_local,
                double beta, double t_remote, double p99_remote,
                double qos)
{
    if (!obs::enabled())
        return;
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.counter("orchestrator.decisions").add();
    reg.counter(mode == MemoryMode::Remote
                    ? "orchestrator.remote_placements"
                    : "orchestrator.local_placements")
        .add();
    reg.counter(std::string("orchestrator.path.") + path).add();
    if (!obs::Tracer::global().enabled())
        return;
    obs::Tracer::global().simInstant(
        "place", "orchestrator", now,
        {obs::arg("app", spec.name), obs::arg("class", toString(spec.cls)),
         obs::arg("decision", toString(mode)), obs::arg("path", path),
         obs::arg("t_local", t_local), obs::arg("beta", beta),
         obs::arg("t_remote", t_remote),
         obs::arg("p99_remote", p99_remote), obs::arg("qos", qos)});
}

} // namespace
#endif // ADRIAS_OBS_ENABLED

AdriasOrchestrator::AdriasOrchestrator(const models::PredictorBase &predictor_,
                                       scenario::SignatureStore &signatures_,
                                       AdriasConfig config_)
    : predictor(&predictor_), signatures(&signatures_), policy(config_)
{
    if (policy.beta <= 0.0 || policy.beta > 1.5)
        fatal("AdriasOrchestrator: beta out of sensible range");
    if (!predictor->trained())
        fatal("AdriasOrchestrator requires a trained Predictor");
}

AdriasOrchestrator::AdriasOrchestrator(models::GuardedPredictor &guard_,
                                       scenario::SignatureStore &signatures_,
                                       AdriasConfig config_)
    : AdriasOrchestrator(static_cast<const models::PredictorBase &>(guard_),
                         signatures_, config_)
{
    guard = &guard_;
}

std::string
AdriasOrchestrator::name() const
{
    std::ostringstream out;
    out << "adrias-b" << formatDouble(policy.beta, 1);
    return out.str();
}

double
AdriasOrchestrator::qosFor(const std::string &app_name) const
{
    auto it = policy.qosP99Ms.find(app_name);
    return it == policy.qosP99Ms.end() ? policy.defaultQosP99Ms
                                       : it->second;
}

MemoryMode
AdriasOrchestrator::fallbackPlacement(const workloads::WorkloadSpec &spec)
{
    ++decisionStats.fallbackPlacements;
    return spec.cls == WorkloadClass::LatencyCritical
               ? policy.degradedLcMode
               : policy.degradedBeMode;
}

bool
AdriasOrchestrator::degraded() const
{
    return guard != nullptr && guard->degraded();
}

OrchestratorStats
AdriasOrchestrator::stats() const
{
    OrchestratorStats merged = decisionStats;
    if (guard != nullptr) {
        merged.breakerTrips = guard->breaker().stats().trips;
        merged.breakerRecoveries = guard->breaker().stats().recoveries;
    }
    merged.samplesRepaired = lastWatcherHealth.samplesRepaired;
    merged.samplesDropped = lastWatcherHealth.samplesDropped;
    return merged;
}

MemoryMode
AdriasOrchestrator::place(const workloads::WorkloadSpec &spec,
                          const telemetry::Watcher &watcher, SimTime now)
{
#if ADRIAS_OBS_ENABLED
    obs::WallSpan place_span("place", "orchestrator");
    // Comparison operands for the decision instant; NaN marks an
    // operand this decision path never computed.
    constexpr double kUnset = std::numeric_limits<double>::quiet_NaN();
    double obs_t_local = kUnset;
    double obs_t_remote = kUnset;
    double obs_p99_remote = kUnset;
    double obs_qos = kUnset;
    const char *obs_path = "model";
#endif
    if (guard != nullptr)
        guard->beginDecision(now);
    lastWatcherHealth = watcher.health();

    // Unknown application: bootstrap on remote memory and capture its
    // signature from this run (paper §V-C).
    if (!signatures->has(spec.name)) {
        ++decisionStats.bootstrapPlacements;
        ++decisionStats.remotePlacements;
#if ADRIAS_OBS_ENABLED
        recordPlacement(spec, now, MemoryMode::Remote, "bootstrap",
                        kUnset, policy.beta, kUnset, kUnset, kUnset);
#endif
        return MemoryMode::Remote;
    }

    // Cold telemetry (scenario warm-up): fall back to the conventional
    // placement until a history window exists.
    if (watcher.sampleCount() == 0) {
        ++decisionStats.localPlacements;
#if ADRIAS_OBS_ENABLED
        recordPlacement(spec, now, MemoryMode::Local, "cold", kUnset,
                        policy.beta, kUnset, kUnset, kUnset);
#endif
        return MemoryMode::Local;
    }

    const auto history = watcher.binnedWindow(
        scenario::ScenarioRunner::kWindowSec,
        scenario::ScenarioRunner::kWindowBins);
    const auto &signature = signatures->get(spec.name);

    MemoryMode mode = MemoryMode::Local;
    try {
        if (spec.cls == WorkloadClass::BestEffort) {
            const double t_local = predictor->predictPerformance(
                spec.cls, history, signature, MemoryMode::Local);
            const double t_remote = predictor->predictPerformance(
                spec.cls, history, signature, MemoryMode::Remote);
            mode = decideBestEffort(t_local, t_remote, policy.beta);
#if ADRIAS_OBS_ENABLED
            obs_t_local = t_local;
            obs_t_remote = t_remote;
#endif
        } else if (spec.cls == WorkloadClass::LatencyCritical) {
            const double p99_remote = predictor->predictPerformance(
                spec.cls, history, signature, MemoryMode::Remote);
            mode = decideLatencyCritical(p99_remote, qosFor(spec.name));
#if ADRIAS_OBS_ENABLED
            obs_p99_remote = p99_remote;
            obs_qos = qosFor(spec.name);
#endif
        } else {
            panic("AdriasOrchestrator asked to place a trasher");
        }
    } catch (const models::PredictionUnavailable &err) {
        // Degraded mode: the prediction path is sick (breaker open,
        // deadline blown, crash window, invalid inputs).  Keep placing
        // with the heuristic instead of taking the placement loop down.
        ++decisionStats.predictionFailures;
        logWarn(std::string("AdriasOrchestrator degraded: ") +
                err.what());
        mode = fallbackPlacement(spec);
#if ADRIAS_OBS_ENABLED
        obs_path = "fallback";
#endif
    }

    if (mode == MemoryMode::Remote)
        ++decisionStats.remotePlacements;
    else
        ++decisionStats.localPlacements;
#if ADRIAS_OBS_ENABLED
    recordPlacement(spec, now, mode, obs_path, obs_t_local, policy.beta,
                    obs_t_remote, obs_p99_remote, obs_qos);
#endif
    return mode;
}

void
AdriasOrchestrator::onCompletion(const scenario::DeploymentRecord &record)
{
    if (record.cls == WorkloadClass::Interference)
        return;
    // First encounter finished its bootstrap run on remote memory:
    // store the captured execution-window metrics as its signature.
    if (!signatures->has(record.name) && !record.executionWindow.empty())
        signatures->put(record.name, record.executionWindow);
}

void
AdriasOrchestrator::saveState(io::BinaryWriter &out) const
{
    out.writeU64(decisionStats.localPlacements);
    out.writeU64(decisionStats.remotePlacements);
    out.writeU64(decisionStats.bootstrapPlacements);
    out.writeU64(decisionStats.fallbackPlacements);
    out.writeU64(decisionStats.predictionFailures);
    out.writeU64(decisionStats.breakerTrips);
    out.writeU64(decisionStats.breakerRecoveries);
    out.writeU64(decisionStats.samplesRepaired);
    out.writeU64(decisionStats.samplesDropped);
    out.writeU64(lastWatcherHealth.samplesAccepted);
    out.writeU64(lastWatcherHealth.samplesRepaired);
    out.writeU64(lastWatcherHealth.eventsRepaired);
    out.writeU64(lastWatcherHealth.samplesDropped);
    out.writeU64(lastWatcherHealth.stalenessSec);
    out.writeU64(lastWatcherHealth.maxStalenessSec);
    signatures->saveState(out);
}

Result<void>
AdriasOrchestrator::restoreState(io::BinaryReader &in)
{
    decisionStats.localPlacements = in.readU64();
    decisionStats.remotePlacements = in.readU64();
    decisionStats.bootstrapPlacements = in.readU64();
    decisionStats.fallbackPlacements = in.readU64();
    decisionStats.predictionFailures = in.readU64();
    decisionStats.breakerTrips = in.readU64();
    decisionStats.breakerRecoveries = in.readU64();
    decisionStats.samplesRepaired = in.readU64();
    decisionStats.samplesDropped = in.readU64();
    lastWatcherHealth.samplesAccepted = in.readU64();
    lastWatcherHealth.samplesRepaired = in.readU64();
    lastWatcherHealth.eventsRepaired = in.readU64();
    lastWatcherHealth.samplesDropped = in.readU64();
    lastWatcherHealth.stalenessSec = in.readU64();
    lastWatcherHealth.maxStalenessSec = in.readU64();
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "AdriasOrchestrator: truncated snapshot section");
    return signatures->restoreState(in);
}

} // namespace adrias::core
