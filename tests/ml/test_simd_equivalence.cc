/**
 * @file
 * Tolerance-based equivalence suite for the vector kernel tier
 * (DESIGN.md §16, ctest -L simd): the AVX2 GEMM, fused-LSTM gate loop
 * and batch activations must match the bitwise scalar oracle within a
 * small ulp budget — never bitwise, because FMA contraction
 * legitimately changes last-ulp rounding — at thread counts 1/2/7/hw.
 * The vector tier must additionally be thread-invariant against
 * itself (row-local partitioning makes vector-vs-vector bitwise), and
 * the dispatch layer must degrade gracefully when the tier is
 * unavailable.  On hosts without AVX2 (or -DADRIAS_SIMD=OFF builds)
 * the vector tier IS the scalar path, every comparison is exact, and
 * this whole suite doubles as the graceful-fallback proof.
 */

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/float_compare.hh"
#include "common/rng.hh"
#include "common/threadpool.hh"
#include "ml/activation.hh"
#include "ml/lstm.hh"
#include "ml/matrix.hh"
#include "ml/simd.hh"

namespace
{

using adrias::Rng;
using adrias::ScopedThreadOverride;
using adrias::UlpStats;
using adrias::ml::KernelTier;
using adrias::ml::kernelTier;
using adrias::ml::kernelTierName;
using adrias::ml::Lstm;
using adrias::ml::Matrix;
using adrias::ml::MatrixParallelConfig;
using adrias::ml::matrixParallelConfig;
using adrias::ml::parseKernelTier;
using adrias::ml::ScopedKernelTier;
using adrias::ml::setKernelTier;
using adrias::ml::setMatrixParallelConfig;
using adrias::ml::Sigmoid;
using adrias::ml::Tanh;
using adrias::ml::vectorTierAvailable;

/** Ulp budget for vector-vs-scalar on composite kernels.  Individual
 *  transcendentals agree within ~2 ulps; GEMM/LSTM compose several
 *  rounding differences, so the budget is looser but still tiny. */
constexpr std::uint64_t kUlpBudget = 64;

/** Absolute floor rescuing near-zero outputs (cancellation turns an
 *  ulp-sized absolute difference into a huge ulp distance). */
constexpr double kAbsFloor = 1e-12;

class SimdEquivalenceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        savedConfig = matrixParallelConfig();
        savedTier = kernelTier();
        // Zero grains force the parallel path so thread sweeps bite.
        setMatrixParallelConfig({0, 0});
    }

    void
    TearDown() override
    {
        setMatrixParallelConfig(savedConfig);
        setKernelTier(savedTier);
    }

    MatrixParallelConfig savedConfig;
    KernelTier savedTier = KernelTier::Scalar;
};

std::vector<unsigned>
threadCounts()
{
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    return {1u, 2u, 7u, hw};
}

Matrix
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols)
{
    Matrix m(rows, cols);
    for (double &value : m.raw())
        value = rng.uniform(-2.0, 2.0);
    // Exact zeros exercise the scalar zero-skip (which the vector
    // GEMM deliberately drops — the results must still agree).
    for (double &value : m.raw())
        if (rng.bernoulli(0.1))
            value = 0.0;
    return m;
}

std::vector<Matrix>
randomSequence(Rng &rng, std::size_t steps, std::size_t batch,
               std::size_t input)
{
    std::vector<Matrix> sequence;
    sequence.reserve(steps);
    for (std::size_t t = 0; t < steps; ++t)
        sequence.push_back(randomMatrix(rng, batch, input));
    return sequence;
}

void
expectWithinUlps(const Matrix &oracle, const Matrix &vec,
                 const char *what)
{
    ASSERT_EQ(oracle.rows(), vec.rows()) << what;
    ASSERT_EQ(oracle.cols(), vec.cols()) << what;
    UlpStats stats;
    const auto &a = oracle.raw();
    const auto &b = vec.raw();
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::fabs(a[i] - b[i]) <= kAbsFloor)
            continue;
        stats.add(a[i], b[i]);
    }
    EXPECT_TRUE(stats.within(kUlpBudget))
        << what << ": worst " << stats.maxUlps << " ulps ("
        << stats.worstA << " vs " << stats.worstB << "), max abs diff "
        << stats.maxAbsDiff;
}

void
expectBitwise(const Matrix &expected, const Matrix &actual,
              const char *what)
{
    ASSERT_EQ(expected.rows(), actual.rows()) << what;
    ASSERT_EQ(expected.cols(), actual.cols()) << what;
    ASSERT_EQ(expected.raw(), actual.raw()) << what;
}

// ---------------------------------------------------------------------
// Dispatch layer.
// ---------------------------------------------------------------------

TEST(SimdDispatch, ParseKernelTier)
{
    ASSERT_TRUE(parseKernelTier("scalar").has_value());
    EXPECT_EQ(*parseKernelTier("scalar"), KernelTier::Scalar);
    ASSERT_TRUE(parseKernelTier("vector").has_value());
    EXPECT_EQ(*parseKernelTier("vector"), KernelTier::Vector);
    EXPECT_FALSE(parseKernelTier("").has_value());
    EXPECT_FALSE(parseKernelTier("Vector").has_value());
    EXPECT_FALSE(parseKernelTier("avx2").has_value());
}

TEST(SimdDispatch, TierNames)
{
    EXPECT_STREQ(kernelTierName(KernelTier::Scalar), "scalar");
    EXPECT_STREQ(kernelTierName(KernelTier::Vector), "vector");
}

TEST(SimdDispatch, ScopedTierRestores)
{
    const KernelTier before = kernelTier();
    {
        const ScopedKernelTier pin(KernelTier::Vector);
        EXPECT_EQ(kernelTier(), KernelTier::Vector);
        {
            const ScopedKernelTier nested(KernelTier::Scalar);
            EXPECT_EQ(kernelTier(), KernelTier::Scalar);
        }
        EXPECT_EQ(kernelTier(), KernelTier::Vector);
    }
    EXPECT_EQ(kernelTier(), before);
}

TEST(SimdDispatch, GracefulFallback)
{
    // The effective tier never exceeds what the build/CPU provides:
    // requesting Vector on a host (or build) without it silently runs
    // Scalar — the tree never crashes or wedges.
    const ScopedKernelTier pin(KernelTier::Vector);
    if (vectorTierAvailable()) {
        EXPECT_EQ(adrias::ml::effectiveKernelTier(), KernelTier::Vector);
    } else {
        EXPECT_EQ(adrias::ml::effectiveKernelTier(), KernelTier::Scalar);
        // And kernels still produce the scalar tier's exact results.
        Rng rng(0xFA11);
        const Matrix a = randomMatrix(rng, 9, 17);
        const Matrix b = randomMatrix(rng, 17, 21);
        const Matrix vec = a.matmul(b);
        Matrix ref;
        {
            const ScopedKernelTier scalar(KernelTier::Scalar);
            ref = a.matmul(b);
        }
        expectBitwise(ref, vec, "fallback matmul");
    }
}

TEST(SimdDispatch, ScalarTierUnaffectedByRequest)
{
    // Requesting Scalar always runs Scalar, available or not.
    const ScopedKernelTier pin(KernelTier::Scalar);
    EXPECT_EQ(adrias::ml::effectiveKernelTier(), KernelTier::Scalar);
}

// ---------------------------------------------------------------------
// GEMM.
// ---------------------------------------------------------------------

TEST_F(SimdEquivalenceTest, GemmWithinUlpsAcrossShapesAndThreads)
{
    Rng rng(0x51DD);
    const std::size_t dims[][3] = {
        {1, 1, 1},    {3, 5, 4},    {7, 13, 16},  {8, 24, 96},
        {33, 17, 40}, {5, 96, 15},  {32, 96, 96}, {2, 7, 19},
    };
    for (const auto &d : dims) {
        const Matrix a = randomMatrix(rng, d[0], d[1]);
        const Matrix b = randomMatrix(rng, d[1], d[2]);
        Matrix ref;
        {
            ScopedThreadOverride serial(1);
            const ScopedKernelTier scalar(KernelTier::Scalar);
            ref = a.matmul(b);
        }
        for (unsigned threads : threadCounts()) {
            ScopedThreadOverride override_(threads);
            const ScopedKernelTier vec(KernelTier::Vector);
            expectWithinUlps(ref, a.matmul(b), "vector matmul");
        }
    }
}

TEST_F(SimdEquivalenceTest, VectorGemmThreadInvariant)
{
    // Vector-vs-vector across thread counts is bitwise: partitioning
    // is row-local, so each output element's op sequence is fixed.
    Rng rng(0x51DE);
    const Matrix a = randomMatrix(rng, 41, 23);
    const Matrix b = randomMatrix(rng, 23, 57);
    const ScopedKernelTier vec(KernelTier::Vector);
    Matrix ref;
    {
        ScopedThreadOverride serial(1);
        ref = a.matmul(b);
    }
    for (unsigned threads : threadCounts()) {
        ScopedThreadOverride override_(threads);
        expectBitwise(ref, a.matmul(b), "vector matmul thread sweep");
    }
}

TEST_F(SimdEquivalenceTest, VectorGemmIgnoresGemmBlockKnob)
{
    // The vector kernel register-blocks internally; the cache-block
    // knob must not change its results (it takes the same path).
    Rng rng(0x51DF);
    const Matrix a = randomMatrix(rng, 19, 31);
    const Matrix b = randomMatrix(rng, 31, 22);
    const ScopedKernelTier vec(KernelTier::Vector);
    setMatrixParallelConfig({0, 0, 0});
    const Matrix unblocked = a.matmul(b);
    setMatrixParallelConfig({0, 0, 8});
    expectBitwise(unblocked, a.matmul(b), "vector matmul vs block knob");
}

// ---------------------------------------------------------------------
// Fused LSTM forward (inference).
// ---------------------------------------------------------------------

struct LstmShape
{
    std::size_t steps, batch, input, hidden;
};

constexpr LstmShape kShapes[] = {
    {1, 1, 1, 1},   {3, 2, 5, 4},    {5, 7, 3, 13},
    {2, 1, 9, 6},   {12, 32, 7, 24}, {4, 3, 16, 5},
};

Lstm
makeLstm(const LstmShape &shape, unsigned seed)
{
    Rng rng(seed);
    return Lstm(shape.input, shape.hidden, rng);
}

TEST_F(SimdEquivalenceTest, LstmForwardWithinUlpsAcrossThreads)
{
    Rng rng(0x51E0);
    for (const auto &shape : kShapes) {
        const auto sequence =
            randomSequence(rng, shape.steps, shape.batch, shape.input);
        std::vector<Matrix> ref;
        {
            ScopedThreadOverride serial(1);
            const ScopedKernelTier scalar(KernelTier::Scalar);
            Lstm lstm = makeLstm(shape, 8001);
            lstm.setInference(true);
            ref = lstm.forwardSequence(sequence);
        }
        for (unsigned threads : threadCounts()) {
            ScopedThreadOverride override_(threads);
            const ScopedKernelTier vec(KernelTier::Vector);
            Lstm lstm = makeLstm(shape, 8001);
            lstm.setInference(true);
            const auto got = lstm.forwardSequence(sequence);
            ASSERT_EQ(ref.size(), got.size());
            for (std::size_t t = 0; t < ref.size(); ++t)
                expectWithinUlps(ref[t], got[t],
                                 "vector LSTM inference forward");
        }
    }
}

TEST_F(SimdEquivalenceTest, VectorLstmForwardThreadInvariant)
{
    const LstmShape shape{6, 32, 7, 24};
    Rng rng(0x51E1);
    const auto sequence =
        randomSequence(rng, shape.steps, shape.batch, shape.input);
    const ScopedKernelTier vec(KernelTier::Vector);
    std::vector<Matrix> ref;
    {
        ScopedThreadOverride serial(1);
        Lstm lstm = makeLstm(shape, 8002);
        lstm.setInference(true);
        ref = lstm.forwardSequence(sequence);
    }
    for (unsigned threads : threadCounts()) {
        ScopedThreadOverride override_(threads);
        Lstm lstm = makeLstm(shape, 8002);
        lstm.setInference(true);
        const auto got = lstm.forwardSequence(sequence);
        ASSERT_EQ(ref.size(), got.size());
        for (std::size_t t = 0; t < ref.size(); ++t)
            expectBitwise(ref[t], got[t],
                          "vector LSTM forward thread sweep");
    }
}

TEST_F(SimdEquivalenceTest, TrainingForwardStaysOnScalarGateKernel)
{
    // The vector gate kernel is inference-only (it writes no caches).
    // A training-mode forward under the vector tier runs the scalar
    // gate loop — only the GEMMs vectorize — so backward still works
    // and its gradients agree with the scalar tier within ulps.
    const LstmShape shape{4, 6, 5, 9};
    Rng rng(0x51E2);
    const auto sequence =
        randomSequence(rng, shape.steps, shape.batch, shape.input);
    const auto grad_hidden =
        randomSequence(rng, shape.steps, shape.batch, shape.hidden);

    std::vector<Matrix> ref_grads;
    {
        const ScopedKernelTier scalar(KernelTier::Scalar);
        Lstm lstm = makeLstm(shape, 8003);
        lstm.forwardSequence(sequence);
        for (const Matrix &g : lstm.backwardSequence(grad_hidden))
            ref_grads.push_back(g);
    }
    const ScopedKernelTier vec(KernelTier::Vector);
    Lstm lstm = makeLstm(shape, 8003);
    lstm.forwardSequence(sequence);
    const auto got = lstm.backwardSequence(grad_hidden);
    ASSERT_EQ(ref_grads.size(), got.size());
    for (std::size_t t = 0; t < got.size(); ++t)
        expectWithinUlps(ref_grads[t], got[t],
                         "training grads under vector tier");
}

// ---------------------------------------------------------------------
// Activation layers.
// ---------------------------------------------------------------------

TEST_F(SimdEquivalenceTest, ActivationLayersWithinUlps)
{
    Rng rng(0x51E3);
    const Matrix input = randomMatrix(rng, 32, 24);

    Tanh tanh_layer;
    tanh_layer.setInference(true);
    Sigmoid sigmoid_layer;
    sigmoid_layer.setInference(true);

    Matrix tanh_ref, sigmoid_ref;
    {
        const ScopedKernelTier scalar(KernelTier::Scalar);
        tanh_ref = tanh_layer.forward(input);
        sigmoid_ref = sigmoid_layer.forward(input);
    }
    const ScopedKernelTier vec(KernelTier::Vector);
    expectWithinUlps(tanh_ref, tanh_layer.forward(input),
                     "Tanh inference forward");
    expectWithinUlps(sigmoid_ref, sigmoid_layer.forward(input),
                     "Sigmoid inference forward");
}

TEST_F(SimdEquivalenceTest, TrainingActivationsBitwiseOnVectorTier)
{
    // Training-mode activation forwards never route through the batch
    // kernels: cached outputs must stay on the scalar oracle even when
    // the process-wide tier is Vector.
    Rng rng(0x51E4);
    const Matrix input = randomMatrix(rng, 8, 12);

    Matrix ref;
    {
        const ScopedKernelTier scalar(KernelTier::Scalar);
        Tanh layer;
        ref = layer.forward(input);
    }
    const ScopedKernelTier vec(KernelTier::Vector);
    Tanh layer;
    expectBitwise(ref, layer.forward(input),
                  "training Tanh forward under vector tier");
}

} // namespace
