#include "testbed/testbed.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/invariant.hh"
#include "common/logging.hh"
#include "obs/obs.hh"

namespace adrias::testbed
{

void
checkTickInvariants(const std::vector<LoadDescriptor> &loads,
                    const TickResult &result, const TestbedParams &params,
                    double channel_bw_scale)
{
    // Resolved shares can land exactly on a cap; allow rounding slack.
    constexpr double kRelTol = 1.0 + 1e-9;
    constexpr double kAbsTol = 1e-9;

    ADRIAS_INVARIANT(result.outcomes.size() == loads.size(),
                     "outcomes=" + std::to_string(result.outcomes.size()) +
                         " loads=" + std::to_string(loads.size()));

    // Per-channel sums are re-derived from the outcomes — the reported
    // aggregates are *checked against* them below, never trusted, so a
    // contention bug on one channel cannot hide behind slack (or a
    // compensating error) on the other.
    double remote_achieved = 0.0;
    double local_achieved = 0.0;
    double resident_llc_mb = 0.0;
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
        const LoadOutcome &outcome = result.outcomes[i];
        const LoadDescriptor &load = loads[i];
        ADRIAS_INVARIANT_FINITE(outcome.achievedGBps);
        ADRIAS_INVARIANT_GE(outcome.achievedGBps, 0.0);
        ADRIAS_INVARIANT_FINITE(outcome.latencyNs);
        ADRIAS_INVARIANT_GE(outcome.latencyNs, 0.0);
        ADRIAS_INVARIANT_FINITE(outcome.slowdown);
        ADRIAS_INVARIANT_GE(outcome.slowdown, 1.0);
        ADRIAS_INVARIANT_GE(outcome.hitRate, 0.0);
        ADRIAS_INVARIANT_LE(outcome.hitRate,
                            load.baseHitRate * kRelTol + kAbsTol);
        // No deployment achieves more than its own unimpeded demand
        // (every throttle and share is <= 1).
        ADRIAS_INVARIANT_LE(outcome.achievedGBps,
                            load.memDemandGBps * kRelTol + kAbsTol);
        if (load.mode == MemoryMode::Remote)
            remote_achieved += outcome.achievedGBps;
        else
            local_achieved += outcome.achievedGBps;
        // h = base * residentFraction under the proportional-occupancy
        // model, so h/base recovers this app's resident share.
        if (load.baseHitRate > 0.0) {
            resident_llc_mb += load.cacheFootprintMb * outcome.hitRate /
                               load.baseHitRate;
        }
    }

    // Achieved remote throughput within the (fault-derated) channel
    // cap, and the reported aggregate consistent with the per-app sum.
    ADRIAS_INVARIANT_LE(remote_achieved, params.remoteBwGBps *
                                                 channel_bw_scale *
                                                 kRelTol +
                                             kAbsTol);
    ADRIAS_INVARIANT_LE(std::fabs(result.remoteTrafficGBps -
                                  remote_achieved),
                        kAbsTol + 1e-9 * remote_achieved);

    // Achieved local traffic (remote terminates locally too, R3)
    // within the local pool cap and consistent with the per-app sums.
    const double local_total = local_achieved + remote_achieved;
    ADRIAS_INVARIANT_GE(result.localTrafficGBps, 0.0);
    ADRIAS_INVARIANT_LE(std::fabs(result.localTrafficGBps - local_total),
                        kAbsTol + 1e-9 * local_total);
    ADRIAS_INVARIANT_LE(local_total,
                        params.localBwGBps * kRelTol + kAbsTol);

    // Resident LLC occupancy shares sum to at most one capacity.
    ADRIAS_INVARIANT_LE(resident_llc_mb,
                        params.llcCapacityMb * kRelTol + kAbsTol);

    // Channel state: pressure non-negative, back-pressure latency
    // never below its unloaded base.
    ADRIAS_INVARIANT_FINITE(result.channelPressure);
    ADRIAS_INVARIANT_GE(result.channelPressure, 0.0);
    ADRIAS_INVARIANT_FINITE(result.channelLatencyCycles);
    ADRIAS_INVARIANT_GE(result.channelLatencyCycles * kRelTol,
                        params.channelLatencyBaseCycles);

    // Counters the Watcher will sample: finite and non-negative.
    for (double value : result.counters) {
        ADRIAS_INVARIANT_FINITE(value);
        ADRIAS_INVARIANT_GE(value, 0.0);
    }
}

double
llcEffectiveHitRate(double base_hit_rate, double footprint_mb,
                    double total_footprint_mb, double capacity_mb)
{
    if (capacity_mb <= 0.0)
        fatal("llcEffectiveHitRate: non-positive capacity");
    if (footprint_mb < 0.0 || total_footprint_mb < footprint_mb)
        panic("llcEffectiveHitRate: inconsistent footprints");
    if (total_footprint_mb <= capacity_mb)
        return base_hit_rate;
    // Under capacity pressure each app keeps a proportional share of
    // its hot set resident; misses grow with the evicted fraction.
    const double resident_fraction = capacity_mb / total_footprint_mb;
    return base_hit_rate * resident_fraction;
}

double
channelLatencyCycles(const TestbedParams &params, double pressure)
{
    if (pressure < 0.0)
        panic("channelLatencyCycles: negative pressure");
    const double base = params.channelLatencyBaseCycles;
    const double sat = params.channelLatencySatCycles;
    if (pressure <= params.channelRampStart)
        return base;
    if (pressure >= params.channelRampEnd)
        return sat;
    const double frac = (pressure - params.channelRampStart) /
                        (params.channelRampEnd - params.channelRampStart);
    return base + frac * (sat - base);
}

Testbed::Testbed(TestbedParams params, std::uint64_t seed)
    : parameters(params), rng(seed)
{
    if (parameters.remoteBwGBps <= 0.0 || parameters.localBwGBps <= 0.0)
        fatal("Testbed: bandwidth capacities must be positive");
    if (parameters.llcCapacityMb <= 0.0)
        fatal("Testbed: LLC capacity must be positive");
}

void
Testbed::setChannelFault(double bw_scale, double latency_scale)
{
    if (bw_scale <= 0.0 || bw_scale > 1.0)
        fatal("Testbed::setChannelFault: bw scale must be in (0, 1]");
    if (latency_scale < 1.0)
        fatal("Testbed::setChannelFault: latency scale must be >= 1");
    channelBwScale = bw_scale;
    channelLatencyScale = latency_scale;
}

void
Testbed::saveState(io::BinaryWriter &out) const
{
    rng.saveState(out);
    out.writeF64(noiseSigma);
    out.writeF64(channelBwScale);
    out.writeF64(channelLatencyScale);
    out.writeI64(obsTickCount);
    out.writeBool(obsBackpressured);
}

Result<void>
Testbed::restoreState(io::BinaryReader &in)
{
    rng.restoreState(in);
    noiseSigma = in.readF64();
    channelBwScale = in.readF64();
    channelLatencyScale = in.readF64();
    obsTickCount = in.readI64();
    obsBackpressured = in.readBool();
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "Testbed: truncated snapshot section");
    if (!(channelBwScale > 0.0 && channelBwScale <= 1.0) ||
        channelLatencyScale < 1.0)
        return makeError(ErrorCode::BadNumber,
                         "Testbed: snapshot carries invalid channel fault "
                         "scales");
    return {};
}

double
Testbed::noisy(double value)
{
    if (noiseSigma <= 0.0)
        return value;
    return std::max(0.0, value * (1.0 + rng.gaussian(0.0, noiseSigma)));
}

TickResult
Testbed::tick(const std::vector<LoadDescriptor> &loads)
{
#if ADRIAS_OBS_ENABLED
    obs::WallSpan tick_span("tick", "testbed");
#endif
    TickResult result;
    result.outcomes.resize(loads.size());

    // --- Pass 1: aggregate pressure on every shared resource. -----------
    double total_cpu = 0.0;
    double total_footprint = 0.0;
    for (const LoadDescriptor &load : loads) {
        total_cpu += load.cpuCores;
        total_footprint += load.cacheFootprintMb;
    }
    const double cpu_factor =
        total_cpu <= parameters.cores ? 1.0 : parameters.cores / total_cpu;

    // --- Pass 2: LLC contention -> per-app miss scaling and offered
    //             traffic demand per memory pool. ------------------------
    //
    // A deployment's issueable traffic is memDemand with its
    // latency-bound slice throttled by the local/remote latency ratio
    // (dependent loads cannot be overlapped across the channel).  The
    // offered demand at *base* remote latency determines the channel
    // back-pressure (R2); one fixed-point iteration then re-throttles
    // the latency-bound slice at the saturated latency, which is how
    // the FPGAs' back-pressure physically slows issue rates.
    const double remote_throttle = parameters.remoteLatencyThrottle();
    std::vector<double> miss_scale(loads.size(), 1.0);
    std::vector<double> hit_rate(loads.size(), 0.0);

    for (std::size_t i = 0; i < loads.size(); ++i) {
        const LoadDescriptor &load = loads[i];
        const double h = llcEffectiveHitRate(
            load.baseHitRate, load.cacheFootprintMb, total_footprint,
            parameters.llcCapacityMb);
        hit_rate[i] = h;
        const double base_miss = std::max(1e-6, 1.0 - load.baseHitRate);
        miss_scale[i] = std::max(1.0, (1.0 - h) / base_miss);
    }

    auto remote_demand_at = [&](const LoadDescriptor &load,
                                double lat_scale) {
        const double lat_fraction =
            std::clamp(load.latencyBoundFraction, 0.0, 1.0);
        const double throttle = (1.0 - lat_fraction) +
                                lat_fraction * remote_throttle / lat_scale;
        return load.memDemandGBps * throttle;
    };

    // Offered (base-latency) remote demand -> channel pressure.  An
    // injected channel fault shrinks the effective capacity and
    // inflates the back-pressure latency.
    const double remote_bw = parameters.remoteBwGBps * channelBwScale;
    double offered_remote = 0.0;
    for (const LoadDescriptor &load : loads)
        if (load.mode == MemoryMode::Remote)
            offered_remote += remote_demand_at(load, 1.0);
    result.channelPressure = offered_remote / remote_bw;
    result.channelLatencyCycles =
        channelLatencyCycles(parameters, result.channelPressure) *
        channelLatencyScale;
    const double channel_lat_scale =
        result.channelLatencyCycles / parameters.channelLatencyBaseCycles;
    const double remote_latency_ns =
        parameters.remoteLatencyNs * channel_lat_scale;

    // Back-pressured demand and pool shares.
    std::vector<double> demand(loads.size(), 0.0);
    double local_demand = 0.0;
    double remote_demand = 0.0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
        const LoadDescriptor &load = loads[i];
        demand[i] = load.mode == MemoryMode::Remote
                        ? remote_demand_at(load, channel_lat_scale)
                        : load.memDemandGBps;
        if (load.mode == MemoryMode::Remote)
            remote_demand += demand[i];
        else
            local_demand += demand[i];
    }
    const double remote_share =
        remote_demand <= remote_bw ? 1.0 : remote_bw / remote_demand;
    const double remote_achieved_total = remote_demand * remote_share;

    // Remote traffic terminates in the borrower's memory controllers
    // too (observation R3), so it contributes to local pressure.
    const double local_total_demand = local_demand + remote_achieved_total;
    const double local_share =
        local_total_demand <= parameters.localBwGBps
            ? 1.0
            : parameters.localBwGBps / local_total_demand;

    const double local_util =
        std::min(1.0, local_total_demand / parameters.localBwGBps);
    const double local_latency_ns =
        parameters.localLatencyNs *
        (1.0 + parameters.localLatencyInflation * local_util * local_util);

    // --- Pass 3: per-app slowdown. --------------------------------------
    double local_achieved = 0.0;
    double remote_achieved = 0.0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
        const LoadDescriptor &load = loads[i];
        LoadOutcome &outcome = result.outcomes[i];
        outcome.id = load.id;
        outcome.hitRate = hit_rate[i];
        outcome.missScale = miss_scale[i];

        const bool remote = load.mode == MemoryMode::Remote;
        const double share = remote ? remote_share * local_share
                                    : local_share;
        const double achieved = demand[i] * share;
        outcome.achievedGBps = achieved;
        outcome.latencyNs = remote ? remote_latency_ns : local_latency_ns;
        if (remote)
            remote_achieved += achieved;
        else
            local_achieved += achieved;

        // Memory-phase dilation: the app needed memDemand of useful
        // traffic per unit time (times missScale extra bytes under LLC
        // contention) but only achieves `achieved`.  Latency throttling
        // is already folded into demand, so no extra multiplier.
        double mem_slowdown = 1.0;
        if (load.memDemandGBps > 1e-9) {
            mem_slowdown = miss_scale[i] * load.memDemandGBps /
                           std::max(achieved, 1e-9);
        }

        const double mu = std::clamp(load.cpuFraction, 0.0, 1.0);
        outcome.slowdown = mu / cpu_factor + (1.0 - mu) * mem_slowdown;
        outcome.slowdown = std::max(1.0, outcome.slowdown);
    }

    result.remoteTrafficGBps = remote_achieved;
    result.localTrafficGBps = local_achieved + remote_achieved;

    // --- Pass 5: performance counters (Watcher events). -----------------
    // Unit conventions: cache events in millions of events/s assuming
    // 64 B lines; memory counters in GB/s; flits in millions/s.
    double llc_loads = 0.0;
    double llc_misses = 0.0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
        // 64 B cache lines: GB/s -> million events/s.
        const double accesses = loads[i].llcAccessGBps * 1e9 / 64.0 / 1e6;
        llc_loads += accesses;
        llc_misses += accesses * (1.0 - hit_rate[i]);
    }
    const double mem_total = result.localTrafficGBps;
    const double flits_m =
        remote_achieved / (parameters.flitBytes * 1e-9) / 1e6;

    CounterSample &counters = result.counters;
    counters[static_cast<std::size_t>(PerfEvent::LlcLoads)] =
        noisy(llc_loads);
    counters[static_cast<std::size_t>(PerfEvent::LlcMisses)] =
        noisy(llc_misses);
    counters[static_cast<std::size_t>(PerfEvent::MemLoads)] =
        noisy(mem_total * parameters.loadStoreSplit);
    counters[static_cast<std::size_t>(PerfEvent::MemStores)] =
        noisy(mem_total * (1.0 - parameters.loadStoreSplit));
    counters[static_cast<std::size_t>(PerfEvent::RemoteTx)] =
        noisy(flits_m * 0.45);
    counters[static_cast<std::size_t>(PerfEvent::RemoteRx)] =
        noisy(flits_m * 0.55);
    counters[static_cast<std::size_t>(PerfEvent::ChannelLat)] =
        noisy(result.channelLatencyCycles);

    // Conservation laws hold for every resolved tick (compiled out of
    // Release builds; the constant-false branch folds away).
    if (invariant::kEnabled)
        checkTickInvariants(loads, result, parameters, channelBwScale);

#if ADRIAS_OBS_ENABLED
    ++obsTickCount;
    if (obs::enabled()) {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        // The registry hands out stable references; cache them so the
        // per-tick cost is atomic bumps, not name lookups.
        static obs::Counter &ticks = reg.counter("testbed.ticks");
        static obs::Gauge &pressure =
            reg.gauge("testbed.channel_pressure");
        static obs::Histogram &latency =
            reg.histogram("testbed.channel_latency_cycles");
        ticks.add();
        pressure.set(result.channelPressure);
        latency.observe(result.channelLatencyCycles);
        // Back-pressure transitions: the channel enters its latency
        // ramp when pressure crosses rampStart (observation R2).
        const bool pressured =
            result.channelPressure > parameters.channelRampStart;
        if (pressured != obsBackpressured) {
            obsBackpressured = pressured;
            reg.counter("testbed.backpressure_transitions").add();
            if (obs::Tracer::global().enabled()) {
                obs::Tracer::global().simInstant(
                    pressured ? "backpressure_on" : "backpressure_off",
                    "testbed", static_cast<SimTime>(obsTickCount),
                    {obs::arg("pressure", result.channelPressure),
                     obs::arg("ramp_start", parameters.channelRampStart)});
            }
        }
    }
#endif
    return result;
}

} // namespace adrias::testbed
