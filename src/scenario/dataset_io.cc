#include "scenario/dataset_io.hh"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/csv.hh"
#include "common/table.hh"
#include "common/logging.hh"
#include "testbed/counters.hh"

namespace adrias::scenario
{

using testbed::kNumPerfEvents;

namespace
{

constexpr std::size_t kBins = ScenarioRunner::kWindowBins;

/** Append a time-major sequence's cells to a flat row. */
void
appendSequence(std::vector<double> &row,
               const std::vector<ml::Matrix> &sequence)
{
    if (sequence.size() != kBins)
        fatal("dataset_io: sequence length mismatch");
    for (const ml::Matrix &step : sequence)
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            row.push_back(step.at(0, e));
}

/** Strictly parse the cell at `cursor`, advancing it on success. */
[[nodiscard]] Result<double>
readCell(const std::vector<std::string> &cells, std::size_t &cursor,
         const std::string &context)
{
    if (cursor >= cells.size())
        return makeError(ErrorCode::Truncated,
                         context + ": truncated row (cell " +
                             std::to_string(cursor) + ")");
    Result<double> value = parseDouble(cells[cursor]);
    if (!value.ok())
        return makeError(ErrorCode::BadNumber,
                         context + ": " + value.error().message +
                             " (cell " + std::to_string(cursor) + ")");
    ++cursor;
    return value;
}

/** Read a sequence back from a flat cell span. */
[[nodiscard]] Result<std::vector<ml::Matrix>>
readSequence(const std::vector<std::string> &cells, std::size_t &cursor,
             const std::string &context)
{
    std::vector<ml::Matrix> sequence;
    sequence.reserve(kBins);
    for (std::size_t b = 0; b < kBins; ++b) {
        ml::Matrix step(1, kNumPerfEvents);
        for (std::size_t e = 0; e < kNumPerfEvents; ++e) {
            Result<double> value = readCell(cells, cursor, context);
            if (!value.ok())
                return value.error();
            step.at(0, e) = value.value();
        }
        sequence.push_back(std::move(step));
    }
    return sequence;
}

[[nodiscard]] Result<ml::Matrix>
readRowVector(const std::vector<std::string> &cells, std::size_t &cursor,
              const std::string &context)
{
    ml::Matrix vec(1, kNumPerfEvents);
    for (std::size_t e = 0; e < kNumPerfEvents; ++e) {
        Result<double> value = readCell(cells, cursor, context);
        if (!value.ok())
            return value.error();
        vec.at(0, e) = value.value();
    }
    return vec;
}

/** Split one CSV line (fields are numbers/identifiers, no quoting). */
std::vector<std::string>
splitLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream in(line);
    while (std::getline(in, cell, ','))
        cells.push_back(cell);
    return cells;
}

std::string
classToken(WorkloadClass cls)
{
    switch (cls) {
      case WorkloadClass::BestEffort:
        return "be";
      case WorkloadClass::LatencyCritical:
        return "lc";
      case WorkloadClass::Interference:
        return "ib";
    }
    panic("unknown WorkloadClass");
}

[[nodiscard]] Result<WorkloadClass>
classFromToken(const std::string &token, const std::string &context)
{
    if (token == "be")
        return WorkloadClass::BestEffort;
    if (token == "lc")
        return WorkloadClass::LatencyCritical;
    if (token == "ib")
        return WorkloadClass::Interference;
    return makeError(ErrorCode::BadToken,
                     context + ": unknown class token '" + token + "'");
}

/**
 * Open `path` and validate the "# <magic>,<bins>,<events>" header.
 * On success the stream is positioned at the first data row.
 */
[[nodiscard]] Result<void>
openWithHeader(std::ifstream &in, const std::string &path,
               const std::string &magic, const std::string &context)
{
    in.open(path);
    if (!in)
        return makeError(ErrorCode::Io,
                         context + ": cannot open '" + path + "'");
    std::string line;
    if (!std::getline(in, line) || line.find(magic) != 0)
        return makeError(ErrorCode::BadHeader, context + ": bad header");
    const auto header = splitLine(line);
    if (header.size() != 3)
        return makeError(ErrorCode::BadHeader,
                         context + ": malformed header row");
    const Result<std::size_t> bins = parseSize(header[1]);
    const Result<std::size_t> events = parseSize(header[2]);
    if (!bins.ok() || !events.ok())
        return makeError(ErrorCode::BadHeader,
                         context + ": non-numeric header geometry");
    if (bins.value() != kBins || events.value() != kNumPerfEvents)
        return makeError(ErrorCode::Geometry,
                         context + ": geometry mismatch (file " +
                             header[1] + "x" + header[2] + ", expected " +
                             std::to_string(kBins) + "x" +
                             std::to_string(kNumPerfEvents) + ")");
    return {};
}

} // namespace

void
saveSystemStateCsv(const std::string &path,
                   const std::vector<SystemStateSample> &samples)
{
    CsvWriter csv(path);
    csv.writeRow({"# adrias-system-state-v1",
                  std::to_string(kBins),
                  std::to_string(kNumPerfEvents)});
    for (const SystemStateSample &sample : samples) {
        std::vector<double> row;
        row.reserve(kBins * kNumPerfEvents + kNumPerfEvents);
        appendSequence(row, sample.history);
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            row.push_back(sample.target.at(0, e));
        std::vector<std::string> cells;
        cells.reserve(row.size());
        for (double v : row)
            cells.push_back(formatDouble(v, 9));
        csv.writeRow(cells);
    }
}

Result<std::vector<SystemStateSample>>
tryLoadSystemStateCsv(const std::string &path)
{
    const std::string context = "loadSystemStateCsv";
    std::ifstream in;
    if (Result<void> header = openWithHeader(
            in, path, "# adrias-system-state-v1", context);
        !header.ok())
        return header.error();

    std::vector<SystemStateSample> samples;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto cells = splitLine(line);
        std::size_t cursor = 0;
        SystemStateSample sample;
        Result<std::vector<ml::Matrix>> history =
            readSequence(cells, cursor, context);
        if (!history.ok())
            return history.error();
        sample.history = std::move(history.value());
        Result<ml::Matrix> target = readRowVector(cells, cursor, context);
        if (!target.ok())
            return target.error();
        sample.target = std::move(target.value());
        if (cursor != cells.size())
            return makeError(ErrorCode::TrailingData,
                             context + ": trailing cells");
        samples.push_back(std::move(sample));
    }
    return samples;
}

std::vector<SystemStateSample>
loadSystemStateCsv(const std::string &path)
{
    Result<std::vector<SystemStateSample>> result =
        tryLoadSystemStateCsv(path);
    if (!result.ok())
        fatal(result.error().toString());
    return std::move(result.value());
}

void
savePerformanceCsv(const std::string &path,
                   const std::vector<PerformanceSample> &samples)
{
    CsvWriter csv(path);
    csv.writeRow({"# adrias-performance-v1",
                  std::to_string(kBins),
                  std::to_string(kNumPerfEvents)});
    for (const PerformanceSample &sample : samples) {
        std::vector<std::string> cells;
        cells.push_back(sample.name);
        cells.push_back(classToken(sample.cls));
        cells.push_back(toString(sample.mode));
        cells.push_back(formatDouble(sample.target, 9));
        std::vector<double> row;
        appendSequence(row, sample.history);
        appendSequence(row, sample.signature);
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            row.push_back(sample.futureWindow.at(0, e));
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            row.push_back(sample.futureExec.at(0, e));
        for (double v : row)
            cells.push_back(formatDouble(v, 9));
        csv.writeRow(cells);
    }
}

Result<std::vector<PerformanceSample>>
tryLoadPerformanceCsv(const std::string &path)
{
    const std::string context = "loadPerformanceCsv";
    std::ifstream in;
    if (Result<void> header = openWithHeader(
            in, path, "# adrias-performance-v1", context);
        !header.ok())
        return header.error();

    std::vector<PerformanceSample> samples;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto cells = splitLine(line);
        if (cells.size() < 4)
            return makeError(ErrorCode::Truncated,
                             context + ": short row");
        PerformanceSample sample;
        sample.name = cells[0];
        Result<WorkloadClass> cls = classFromToken(cells[1], context);
        if (!cls.ok())
            return cls.error();
        sample.cls = cls.value();
        if (cells[2] == "local") {
            sample.mode = MemoryMode::Local;
        } else if (cells[2] == "remote") {
            sample.mode = MemoryMode::Remote;
        } else {
            return makeError(ErrorCode::BadToken,
                             context + ": unknown memory mode '" +
                                 cells[2] + "'");
        }
        Result<double> target = parseDouble(cells[3]);
        if (!target.ok())
            return makeError(ErrorCode::BadNumber,
                             context + ": " + target.error().message +
                                 " (target)");
        sample.target = target.value();
        std::size_t cursor = 4;
        Result<std::vector<ml::Matrix>> history =
            readSequence(cells, cursor, context);
        if (!history.ok())
            return history.error();
        sample.history = std::move(history.value());
        Result<std::vector<ml::Matrix>> signature =
            readSequence(cells, cursor, context);
        if (!signature.ok())
            return signature.error();
        sample.signature = std::move(signature.value());
        Result<ml::Matrix> future_window =
            readRowVector(cells, cursor, context);
        if (!future_window.ok())
            return future_window.error();
        sample.futureWindow = std::move(future_window.value());
        Result<ml::Matrix> future_exec =
            readRowVector(cells, cursor, context);
        if (!future_exec.ok())
            return future_exec.error();
        sample.futureExec = std::move(future_exec.value());
        if (cursor != cells.size())
            return makeError(ErrorCode::TrailingData,
                             context + ": trailing cells");
        samples.push_back(std::move(sample));
    }
    return samples;
}

std::vector<PerformanceSample>
loadPerformanceCsv(const std::string &path)
{
    Result<std::vector<PerformanceSample>> result =
        tryLoadPerformanceCsv(path);
    if (!result.ok())
        fatal(result.error().toString());
    return std::move(result.value());
}

} // namespace adrias::scenario
