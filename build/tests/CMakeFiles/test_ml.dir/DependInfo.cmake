
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/test_layernorm.cc" "tests/CMakeFiles/test_ml.dir/ml/test_layernorm.cc.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_layernorm.cc.o.d"
  "/root/repo/tests/ml/test_layers.cc" "tests/CMakeFiles/test_ml.dir/ml/test_layers.cc.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_layers.cc.o.d"
  "/root/repo/tests/ml/test_lstm.cc" "tests/CMakeFiles/test_ml.dir/ml/test_lstm.cc.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_lstm.cc.o.d"
  "/root/repo/tests/ml/test_matrix.cc" "tests/CMakeFiles/test_ml.dir/ml/test_matrix.cc.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_matrix.cc.o.d"
  "/root/repo/tests/ml/test_training.cc" "tests/CMakeFiles/test_ml.dir/ml/test_training.cc.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_training.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/adrias_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/adrias_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adrias_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
