/**
 * @file
 * The rack-scale M×N testbed: many compute nodes borrowing memory from
 * many servers over heterogeneous links.
 *
 * RackTestbed generalizes the two-node Testbed contention model
 * (testbed.cc) along the topology axis while keeping every submodel
 * identical: per-node CPU and LLC contention, per-link back-pressure
 * (the R2 latency ramp, evaluated against each link's own profile),
 * per-server DRAM bandwidth sharing, and the R3 rule that remote
 * traffic also terminates in the borrower's local memory controllers.
 * A deployment's share therefore composes multiplicatively:
 * linkShare × serverShare × localShare.
 *
 * Per-link conservation holds by construction every tick:
 * offered = achieved + queued, with achieved never exceeding the
 * (possibly fault-derated) link capacity.  checkRackTickInvariants
 * re-derives all of it from the per-deployment outcomes so a bug on one
 * link cannot hide behind slack on another.
 */

#ifndef ADRIAS_TESTBED_RACK_HH
#define ADRIAS_TESTBED_RACK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/io/binary.hh"
#include "common/io/checkpoint_annotations.hh"
#include "common/rng.hh"
#include "testbed/counters.hh"
#include "testbed/load.hh"
#include "testbed/topology.hh"

namespace adrias::testbed
{

/** One link's queueing/contention state for one resolved tick. */
struct LinkTickStats
{
    /** Back-pressured demand entering the link this tick, GB/s. */
    double offeredGBps = 0.0;

    /** Traffic delivered end-to-end over the link, GB/s. */
    double achievedGBps = 0.0;

    /** offered - achieved: demand stalled in the link queue, GB/s. */
    double queuedGBps = 0.0;

    /** Offered base-latency demand / effective capacity. */
    double pressure = 0.0;

    /** Link latency this tick, cycles (profile ramp × fault scale). */
    double latencyCycles = 0.0;

    /** Flits moved this tick, millions. */
    double flitsM = 0.0;

    /** Watcher sample for this link (noisy counters). */
    LinkCounterSample counters{};
};

/** One memory server's load for one resolved tick. */
struct ServerTickStats
{
    /** Link-achieved demand arriving at the server, GB/s. */
    double demandGBps = 0.0;

    /** Traffic the server's controllers sustained, GB/s. */
    double achievedGBps = 0.0;

    /** Capacity allocated to deployments at tick time, GB. */
    double allocatedGb = 0.0;
};

/** One compute node's aggregate state for one resolved tick. */
struct NodeTickStats
{
    /** CPU time-sharing factor (1 when undersubscribed). */
    double cpuFactor = 1.0;

    /** Achieved local-pool traffic incl. terminating remote (R3). */
    double localTrafficGBps = 0.0;

    /** Achieved remote traffic issued by this node, GB/s. */
    double remoteTrafficGBps = 0.0;

    /** The node's Watcher counter sample (legacy 7-event schema). */
    CounterSample counters{};
};

/** Aggregate result of one simulated rack second. */
struct RackTickResult
{
    /** Per-deployment outcome, in input order. */
    std::vector<LoadOutcome> outcomes;

    /** Per-node stats, indexed like Topology nodes. */
    std::vector<NodeTickStats> nodes;

    /** Per-link stats, indexed like Topology links. */
    std::vector<LinkTickStats> links;

    /** Per-server stats, indexed like Topology servers. */
    std::vector<ServerTickStats> servers;
};

/** Cumulative per-link byte accounting across a run. */
struct LinkTotals
{
    /** Total demand that entered the link queue, GB. */
    double offeredGb = 0.0;

    /** Total bytes delivered, GB. */
    double deliveredGb = 0.0;

    /** Total demand stalled behind the link, GB. */
    double queuedGb = 0.0;

    /** Ticks the link spent inside its back-pressure ramp. */
    std::int64_t saturatedTicks = 0;
};

/**
 * Assert the per-link/per-server/per-node conservation laws of one
 * resolved rack tick, re-derived from the outcomes (never trusting the
 * aggregates): per-link offered = achieved + queued with achieved
 * within the derated cap, per-server achieved within the server's DRAM
 * bandwidth, per-node local traffic within the node's local pool, and
 * per-deployment achieved never above its own unimpeded demand.
 *
 * @param loads the tick's input deployments.
 * @param result the resolved tick under test.
 * @param topo the rack description.
 * @param link_bw_scale per-link fault derating (empty = all healthy).
 */
void checkRackTickInvariants(const std::vector<LoadDescriptor> &loads,
                             const RackTickResult &result,
                             const Topology &topo,
                             const std::vector<double> &link_bw_scale = {});

/** The simulated rack. */
class RackTestbed
{
  public:
    /**
     * @param topo validated rack description (copied).
     * @param seed RNG seed for counter measurement noise.
     */
    explicit RackTestbed(Topology topo, std::uint64_t seed = 1);

    /** @return the rack description. */
    const Topology &topology() const { return topo; }

    /**
     * Relative counter noise amplitude (0 disables measurement noise;
     * default 1%).
     */
    void setNoise(double relative_sigma) { noiseSigma = relative_sigma; }

    /**
     * Degrade one link (fault injection): scale its effective bandwidth
     * by `bw_scale` in (0, 1] and its back-pressure latency by
     * `latency_scale` >= 1.  Persists until changed.
     */
    void setLinkFault(std::size_t link, double bw_scale,
                      double latency_scale);

    /** Restore every link to health. */
    void clearLinkFaults();

    /** @return true while any link fault is applied. */
    bool anyLinkFaulted() const;

    /**
     * Reserve `gb` of a server's capacity for a deployment.
     *
     * @return Geometry error when the server cannot fit the request.
     */
    [[nodiscard]] Result<void> allocate(std::size_t server, double gb);

    /** Return `gb` of previously allocated capacity to a server. */
    void release(std::size_t server, double gb);

    /** Capacity currently allocated on a server, GB. */
    double allocatedGb(std::size_t server) const;

    /** Capacity still allocatable on a server, GB. */
    double availableGb(std::size_t server) const;

    /**
     * Resolve one second of rack execution.
     *
     * Remote deployments must carry a valid (node, server, link)
     * placement triple whose link actually connects that node to that
     * server; local deployments only need a valid node.
     */
    RackTickResult tick(const std::vector<LoadDescriptor> &loads);

    /** Cumulative byte accounting of one link. */
    const LinkTotals &linkTotals(std::size_t link) const;

    /**
     * Serialize the evolving state: noise RNG position, noise sigma,
     * per-link fault scales, per-server allocations, cumulative link
     * totals and the tick count.  The Topology is configuration and
     * stays out of the payload.
     */
    void saveState(io::BinaryWriter &out) const;

    /** Restore a payload written by saveState(). */
    [[nodiscard]] Result<void> restoreState(io::BinaryReader &in);

  private:
    Topology topo ADRIAS_NOT_CHECKPOINTED(
        "rack description is configuration; the restoring process "
        "rebuilds it from the topology name (see saveState doc)");
    Rng rng;
    double noiseSigma = 0.01;

    /** Per-link fault derating, indexed like Topology links. */
    std::vector<double> linkBwScale;
    std::vector<double> linkLatencyScale;

    /** Per-server allocated capacity, GB. */
    std::vector<double> allocated;

    /** Cumulative per-link byte accounting. */
    std::vector<LinkTotals> totals;

    /** Ticks resolved so far. */
    std::int64_t tickCount = 0;

    /** Apply multiplicative measurement noise to a counter value. */
    double noisy(double value);
};

} // namespace adrias::testbed

#endif // ADRIAS_TESTBED_RACK_HH
