# Empty dependencies file for fig15_generalization.
# This may be replaced when dependencies are built.
