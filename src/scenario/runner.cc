#include "scenario/runner.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/threadpool.hh"
#include "obs/obs.hh"
#include "scenario/engine.hh"
#include "telemetry/watcher.hh"

namespace adrias::scenario
{

using workloads::IBenchKind;
using workloads::WorkloadInstance;
using workloads::WorkloadSpec;

std::vector<const DeploymentRecord *>
ScenarioResult::recordsOfClass(WorkloadClass cls) const
{
    std::vector<const DeploymentRecord *> selected;
    for (const DeploymentRecord &record : records)
        if (record.cls == cls)
            selected.push_back(&record);
    return selected;
}

std::vector<ml::Matrix>
historyWindowAt(const std::vector<testbed::CounterSample> &trace,
                SimTime arrival)
{
    if (arrival <= 0 || trace.empty())
        return {};
    const auto end = std::min<std::size_t>(
        static_cast<std::size_t>(arrival), trace.size());
    const std::size_t begin =
        end > ScenarioRunner::kWindowSec
            ? end - ScenarioRunner::kWindowSec
            : 0;
    return telemetry::binSpan(trace, begin, end,
                              ScenarioRunner::kWindowBins);
}

ScenarioRunner::ScenarioRunner(ScenarioConfig config_,
                               testbed::TestbedParams params)
    : config(config_), testbedParams(params)
{
    if (config.durationSec <= 0)
        fatal("ScenarioRunner: duration must be positive");
    if (config.spawnMinSec <= 0 || config.spawnMaxSec < config.spawnMinSec)
        fatal("ScenarioRunner: invalid spawn interval");
    if (config.ibenchFraction + config.lcFraction > 1.0)
        fatal("ScenarioRunner: arrival fractions exceed 1");
}

ScenarioResult
ScenarioRunner::run(PlacementPolicy &policy, RuntimePolicy *runtime)
{
#if ADRIAS_OBS_ENABLED
    obs::WallSpan run_span(
        "run", "scenario",
        {obs::arg("seed", static_cast<std::int64_t>(config.seed)),
         obs::arg("duration_s",
                  static_cast<std::int64_t>(config.durationSec)),
         obs::arg("policy", policy.name())});
#endif
    // The tick loop lives in ScenarioEngine (checkpointable for the
    // crash-recovery layer); driving it to completion here reproduces
    // the historical monolithic loop byte for byte.
    ScenarioEngine engine(config, testbedParams);
    while (!engine.finished())
        engine.stepTick(policy, runtime);
    return engine.finish();
}

std::vector<ScenarioResult>
runScenarioSweep(
    const std::vector<ScenarioConfig> &configs,
    testbed::TestbedParams params,
    const std::function<std::unique_ptr<PlacementPolicy>(std::size_t)>
        &makePolicy)
{
    // Policies first, serially and in order: a factory drawing from a
    // shared Rng must consume it identically at every thread count.
    std::vector<std::unique_ptr<PlacementPolicy>> policies;
    policies.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        policies.push_back(makePolicy(i));
        if (!policies.back())
            fatal("runScenarioSweep: makePolicy returned null");
    }

    // Each item owns its Testbed, Watcher, FaultInjector and policy,
    // and writes only its own slot — one seed per worker, no sharing.
    std::vector<ScenarioResult> results(configs.size());
    ThreadPool::global().parallelForEach(
        configs.size(), [&](std::size_t i) {
#if ADRIAS_OBS_ENABLED
            // One trace lane per sweep item: overlapping per-seed
            // simulations land on separate about:tracing rows.
            obs::ScopedLane lane(static_cast<int>(i) + 1);
#endif
            ScenarioRunner runner(configs[i], params);
            results[i] = runner.run(*policies[i]);
        });
    return results;
}

std::vector<ScenarioResult>
runScenarioSweep(const std::vector<SweepItem> &items,
                 testbed::TestbedParams params)
{
    std::vector<ScenarioConfig> configs;
    configs.reserve(items.size());
    for (const SweepItem &item : items)
        configs.push_back(item.config);
    return runScenarioSweep(
        configs, params, [&items](std::size_t i) {
            return std::make_unique<RandomPlacement>(
                items[i].policySeed);
        });
}

} // namespace adrias::scenario
