file(REMOVE_RECURSE
  "CMakeFiles/fig17_orchestration_lc.dir/fig17_orchestration_lc.cc.o"
  "CMakeFiles/fig17_orchestration_lc.dir/fig17_orchestration_lc.cc.o.d"
  "fig17_orchestration_lc"
  "fig17_orchestration_lc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_orchestration_lc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
