/**
 * @file
 * Process-wide metrics registry (DESIGN.md §10): named counters,
 * gauges and sim-time-aware histograms that every layer of the
 * pipeline (testbed, Watcher, GuardedPredictor, Orchestrator,
 * ThreadPool, scenario runner) reports into.
 *
 * Design rules:
 *  - Registration is by name; the returned reference stays valid for
 *    the life of the process, so call sites hold a `static` reference
 *    and pay one map lookup ever.
 *  - Counters and gauges are lock-free atomics; histograms fold into
 *    stats::OnlineStats plus a seeded stats::ReservoirSampler behind
 *    the annotated Mutex, so TSan and -Wthread-safety stay clean.
 *  - Recording is inert until obs::setEnabled(true) (see obs.hh), and
 *    the whole layer compiles to no-ops under -DADRIAS_OBS=OFF
 *    (ADRIAS_OBS_ENABLED == 0): mutators become empty inline bodies
 *    and every instrumentation site is preprocessed away.
 */

#ifndef ADRIAS_OBS_METRICS_HH
#define ADRIAS_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <string>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"
#include "common/types.hh"
#include "stats/online_stats.hh"
#include "stats/percentile.hh"

#ifndef ADRIAS_OBS_ENABLED
#define ADRIAS_OBS_ENABLED 1
#endif

namespace adrias::obs
{

/** Monotonic event tally (lock-free). */
class Counter
{
  public:
#if ADRIAS_OBS_ENABLED
    /** Add `n` (relaxed; tallies need no ordering). */
    void
    add(std::uint64_t n = 1)
    {
        value.fetch_add(n, std::memory_order_relaxed);
    }
#else
    void add(std::uint64_t = 1) {}
#endif

    /** @return the current tally. */
    std::uint64_t
    get() const
    {
        return value.load(std::memory_order_relaxed);
    }

    /** Zero the tally (tests and run boundaries). */
    void reset() { value.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value{0};
};

/** Last-write-wins instantaneous value (lock-free). */
class Gauge
{
  public:
#if ADRIAS_OBS_ENABLED
    /** Record the current level. */
    void set(double v) { value.store(v, std::memory_order_relaxed); }
#else
    void set(double) {}
#endif

    /** @return the most recently set level (0 before any set). */
    double get() const { return value.load(std::memory_order_relaxed); }

    /** Reset to 0. */
    void reset() { value.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value{0.0};
};

/** Point-in-time view of one Histogram. */
struct HistogramSnapshot
{
    std::size_t count = 0;

    /** Welford summary; NaN when empty (matching stats:: contracts). */
    double mean = std::numeric_limits<double>::quiet_NaN();
    double stddev = std::numeric_limits<double>::quiet_NaN();
    double min = std::numeric_limits<double>::quiet_NaN();
    double max = std::numeric_limits<double>::quiet_NaN();

    /** Reservoir-estimated quantiles; NaN when empty. */
    double p50 = std::numeric_limits<double>::quiet_NaN();
    double p90 = std::numeric_limits<double>::quiet_NaN();
    double p99 = std::numeric_limits<double>::quiet_NaN();

    /** Sim-time span of stamped observations (kNoSimTime when none). */
    SimTime firstSim = std::numeric_limits<SimTime>::min();
    SimTime lastSim = std::numeric_limits<SimTime>::min();
};

/**
 * Sim-time-aware distribution: exact moments via stats::OnlineStats,
 * bounded-memory quantiles via a seed-pinned stats::ReservoirSampler,
 * and the SimTime span of the stamped observations.
 */
class Histogram
{
  public:
    /** Sentinel for observations with no simulation timestamp. */
    static constexpr SimTime kNoSimTime =
        std::numeric_limits<SimTime>::min();

    /** Reservoir size: plenty for p99 at metric volumes. */
    static constexpr std::size_t kReservoirCapacity = 512;

    Histogram();

    /**
     * Fold one observation in.
     *
     * @param value the observation.
     * @param now optional simulation timestamp; widens the histogram's
     *        [firstSim, lastSim] span when provided.
     */
    void observe(double value, SimTime now = kNoSimTime)
        ADRIAS_EXCLUDES(mu);

    /** Fold another histogram in (per-lane partials, tests). */
    void merge(const Histogram &other) ADRIAS_EXCLUDES(mu);

    /** @return a consistent snapshot of moments, quantiles and span. */
    HistogramSnapshot snapshot() const ADRIAS_EXCLUDES(mu);

    /** Drop all state (reseeding the reservoir deterministically). */
    void reset() ADRIAS_EXCLUDES(mu);

  private:
    mutable Mutex mu;
    stats::OnlineStats summary ADRIAS_GUARDED_BY(mu);
    stats::ReservoirSampler reservoir ADRIAS_GUARDED_BY(mu);
    SimTime firstSim ADRIAS_GUARDED_BY(mu) = kNoSimTime;
    SimTime lastSim ADRIAS_GUARDED_BY(mu) = kNoSimTime;
};

/**
 * Name → metric map.  Metrics are created on first request and never
 * destroyed (references remain valid; reset() zeroes values only).
 * std::map keeps export order deterministic.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry every layer reports into. */
    static MetricsRegistry &global();

    /** @return the counter registered under `name` (created on 1st use). */
    Counter &counter(const std::string &name) ADRIAS_EXCLUDES(mu);

    /** @return the gauge registered under `name`. */
    Gauge &gauge(const std::string &name) ADRIAS_EXCLUDES(mu);

    /** @return the histogram registered under `name`. */
    Histogram &histogram(const std::string &name) ADRIAS_EXCLUDES(mu);

    /** Render every metric as a fixed-width text table (end-of-run). */
    std::string summaryTable() const ADRIAS_EXCLUDES(mu);

    /** One JSON object per metric per line (the metrics.jsonl export). */
    void writeJsonl(std::ostream &out) const ADRIAS_EXCLUDES(mu);

    /** Zero every value; registered objects stay alive. */
    void reset() ADRIAS_EXCLUDES(mu);

  private:
    mutable Mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counters
        ADRIAS_GUARDED_BY(mu);
    std::map<std::string, std::unique_ptr<Gauge>> gauges
        ADRIAS_GUARDED_BY(mu);
    std::map<std::string, std::unique_ptr<Histogram>> histograms
        ADRIAS_GUARDED_BY(mu);
};

} // namespace adrias::obs

#endif // ADRIAS_OBS_METRICS_HH
