#include "stats/correlation.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace adrias::stats
{

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size())
        fatal("pearson: size mismatch");
    if (x.size() < 2)
        fatal("pearson: need at least two points");

    const auto n = static_cast<double>(x.size());
    double mean_x = 0.0, mean_y = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        mean_x += x[i];
        mean_y += y[i];
    }
    mean_x /= n;
    mean_y /= n;

    double cov = 0.0, var_x = 0.0, var_y = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mean_x;
        const double dy = y[i] - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if (var_x <= 0.0 || var_y <= 0.0)
        return 0.0;
    return cov / std::sqrt(var_x * var_y);
}

std::vector<double>
fractionalRanks(const std::vector<double> &values)
{
    std::vector<std::size_t> order(values.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return values[a] < values[b];
              });

    std::vector<double> ranks(values.size(), 0.0);
    std::size_t i = 0;
    while (i < order.size()) {
        std::size_t j = i;
        while (j + 1 < order.size() &&
               values[order[j + 1]] == values[order[i]]) {
            ++j;
        }
        // Average rank for the tie group [i, j], 1-based.
        const double avg_rank =
            (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            ranks[order[k]] = avg_rank;
        i = j + 1;
    }
    return ranks;
}

double
spearman(const std::vector<double> &x, const std::vector<double> &y)
{
    return pearson(fractionalRanks(x), fractionalRanks(y));
}

} // namespace adrias::stats
