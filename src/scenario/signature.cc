#include "scenario/signature.hh"

#include "common/logging.hh"
#include "scenario/runner.hh"
#include "telemetry/watcher.hh"
#include "testbed/testbed.hh"
#include "workloads/workload.hh"

namespace adrias::scenario
{

bool
SignatureStore::has(const std::string &name) const
{
    return signatures.count(name) > 0;
}

const std::vector<ml::Matrix> &
SignatureStore::get(const std::string &name) const
{
    auto it = signatures.find(name);
    if (it == signatures.end())
        fatal("SignatureStore: no signature for '" + name + "'");
    return it->second;
}

void
SignatureStore::put(const std::string &name,
                    std::vector<ml::Matrix> signature)
{
    if (signature.empty())
        fatal("SignatureStore: refusing to store empty signature");
    signatures[name] = std::move(signature);
}

void
SignatureStore::erase(const std::string &name)
{
    signatures.erase(name);
}

std::vector<std::string>
SignatureStore::names() const
{
    std::vector<std::string> all;
    all.reserve(signatures.size());
    for (const auto &[name, signature] : signatures)
        all.push_back(name);
    return all;
}

std::vector<ml::Matrix>
collectSignature(const workloads::WorkloadSpec &spec,
                 testbed::TestbedParams params, std::uint64_t seed,
                 SimTime max_seconds)
{
    testbed::Testbed bed(params, seed);
    bed.setNoise(0.0); // signatures are design-time, measured cleanly
    workloads::WorkloadInstance app(1, spec, MemoryMode::Remote, 0, seed);

    std::vector<testbed::CounterSample> trace;
    SimTime now = 0;
    while (!app.finished() && now < max_seconds) {
        const auto tick = bed.tick({app.load()});
        trace.push_back(tick.counters);
        app.advance(tick.outcomes.at(0), ++now);
    }
    if (trace.empty())
        panic("collectSignature produced an empty trace");
    return telemetry::binSpan(trace, 0, trace.size(),
                              ScenarioRunner::kWindowBins);
}

void
collectAllSignatures(SignatureStore &store, testbed::TestbedParams params,
                     std::uint64_t seed)
{
    for (const auto &spec : workloads::sparkBenchmarks())
        store.put(spec.name, collectSignature(spec, params, seed));
    for (const auto &spec : workloads::latencyCriticalBenchmarks())
        store.put(spec.name, collectSignature(spec, params, seed));
}

} // namespace adrias::scenario
