#include "testbed/link_profiles.hh"

#include "common/logging.hh"

namespace adrias::testbed
{

double
linkLatencyCycles(const LinkProfile &profile, double pressure)
{
    if (pressure < 0.0)
        panic("linkLatencyCycles: negative pressure");
    if (pressure <= profile.rampStart)
        return profile.latencyBaseCycles;
    if (pressure >= profile.rampEnd)
        return profile.latencySatCycles;
    const double frac = (pressure - profile.rampStart) /
                        (profile.rampEnd - profile.rampStart);
    return profile.latencyBaseCycles +
           frac * (profile.latencySatCycles - profile.latencyBaseCycles);
}

const std::vector<LinkProfile> &
allLinkProfiles()
{
    static const std::vector<LinkProfile> profiles{
        kThymesisFlowProfile, kCxlProfile, kRdmaProfile};
    return profiles;
}

const LinkProfile &
linkProfileByName(const std::string &name)
{
    for (const LinkProfile &profile : allLinkProfiles())
        if (name == profile.name)
            return profile;
    fatal("linkProfileByName: unknown link profile '" + name + "'");
}

} // namespace adrias::testbed
