file(REMOVE_RECURSE
  "libadrias_telemetry.a"
)
