/**
 * @file
 * Model-quality metrics used throughout the evaluation: R², MAE, RMSE,
 * MAPE — the quantities the paper reports in Table I and Figs. 12-15.
 */

#ifndef ADRIAS_STATS_REGRESSION_METRICS_HH
#define ADRIAS_STATS_REGRESSION_METRICS_HH

#include <vector>

namespace adrias::stats
{

/**
 * Coefficient of determination.
 *
 * R² = 1 - SS_res / SS_tot, computed against the mean of @p actual.
 * Degenerate case: when all actual values are identical, returns 1 if
 * predictions match exactly, else 0.
 *
 * @pre actual.size() == predicted.size() and both non-empty.
 */
double r2Score(const std::vector<double> &actual,
               const std::vector<double> &predicted);

/** Mean absolute error. @pre sizes match and are non-zero. */
double meanAbsoluteError(const std::vector<double> &actual,
                         const std::vector<double> &predicted);

/** Root mean squared error. @pre sizes match and are non-zero. */
double rootMeanSquaredError(const std::vector<double> &actual,
                            const std::vector<double> &predicted);

/**
 * Mean absolute percentage error, in percent.  Pairs with
 * |actual| < epsilon are skipped to avoid division blow-ups.
 */
double meanAbsolutePercentageError(const std::vector<double> &actual,
                                   const std::vector<double> &predicted,
                                   double epsilon = 1e-12);

} // namespace adrias::stats

#endif // ADRIAS_STATS_REGRESSION_METRICS_HH
