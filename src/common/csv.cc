#include "common/csv.hh"

#include <fstream>
#include <sstream>

#include "common/io/durable_file.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace adrias
{

CsvWriter::CsvWriter(const std::string &path_) : path(path_)
{
    // Fail fast like the streaming writer did (and truncate any stale
    // file): an atomic empty write probes the directory and the temp
    // path the final publication will use.
    Result<void> probe = io::atomicWriteFile(path, "");
    if (!probe.ok())
        fatal("CsvWriter: cannot open '" + path +
              "' for writing: " + probe.error().toString());
}

CsvWriter::~CsvWriter()
{
    if (!openForWriting)
        return;
    // Destructors must not throw; close() is the error-checked path.
    if (Result<void> published = io::atomicWriteFile(path, buffer);
        !published.ok())
        logError("CsvWriter: dropping " + std::to_string(rowsWritten) +
                 " rows: " + published.error().toString());
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quoting =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting)
        return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    if (!openForWriting)
        panic("CsvWriter::writeRow after close()");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        buffer += escape(cells[i]);
        if (i + 1 < cells.size())
            buffer += ',';
    }
    buffer += '\n';
    ++rowsWritten;
}

void
CsvWriter::writeRow(const std::string &label,
                    const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(formatDouble(v, 6));
    writeRow(cells);
}

void
CsvWriter::close()
{
    if (!openForWriting)
        return;
    openForWriting = false;
    Result<void> published = io::atomicWriteFile(path, buffer);
    if (!published.ok())
        fatal("CsvWriter: cannot publish '" + path +
              "': " + published.error().toString());
}

Result<std::vector<std::string>>
parseCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    bool in_quotes = false;
    bool cell_was_quoted = false;

    for (std::size_t i = 0; i < line.size(); ++i) {
        const char ch = line[i];
        if (in_quotes) {
            if (ch == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cell += '"'; // escaped quote
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                cell += ch;
            }
        } else if (ch == '"') {
            if (!cell.empty() || cell_was_quoted)
                return makeError(ErrorCode::BadSyntax,
                                 "parseCsvLine: quote inside unquoted "
                                 "cell");
            in_quotes = true;
            cell_was_quoted = true;
        } else if (ch == ',') {
            cells.push_back(std::move(cell));
            cell.clear();
            cell_was_quoted = false;
        } else {
            if (cell_was_quoted)
                return makeError(ErrorCode::BadSyntax,
                                 "parseCsvLine: payload after closing "
                                 "quote");
            cell += ch;
        }
    }
    if (in_quotes)
        return makeError(ErrorCode::BadSyntax,
                         "parseCsvLine: unterminated quoted cell");
    cells.push_back(std::move(cell));
    return cells;
}

Result<std::vector<std::vector<std::string>>>
readCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return makeError(ErrorCode::Io,
                         "readCsvFile: cannot open '" + path + "'");
    std::vector<std::vector<std::string>> rows;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        Result<std::vector<std::string>> cells = parseCsvLine(line);
        if (!cells.ok())
            return makeError(cells.error().code,
                             cells.error().message + " (line " +
                                 std::to_string(line_no) + " of '" +
                                 path + "')");
        rows.push_back(std::move(cells.value()));
    }
    return rows;
}

} // namespace adrias
