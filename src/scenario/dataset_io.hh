/**
 * @file
 * Dataset persistence: flatten system-state and performance samples to
 * CSV so the offline phase's (expensive) trace collection can be
 * reused across training runs and shared between processes.
 *
 * Layout (one sample per row):
 *  - system-state:  bins*events history cells, then events target cells
 *  - performance:   name, class, mode, target, bins*events history,
 *                   bins*events signature, events futureWindow,
 *                   events futureExec
 */

#ifndef ADRIAS_SCENARIO_DATASET_IO_HH
#define ADRIAS_SCENARIO_DATASET_IO_HH

#include <string>
#include <vector>

#include "common/error.hh"
#include "scenario/dataset.hh"

namespace adrias::scenario
{

/** Write system-state samples to a CSV file (with header row). */
void saveSystemStateCsv(const std::string &path,
                        const std::vector<SystemStateSample> &samples);

/**
 * Read system-state samples written by saveSystemStateCsv, reporting
 * malformed/truncated input as a typed error: Io (unopenable),
 * BadHeader, Geometry (bins/events mismatch), Truncated (short row),
 * BadNumber (strict parsing — "12abc" is rejected) or TrailingData.
 */
[[nodiscard]] Result<std::vector<SystemStateSample>>
tryLoadSystemStateCsv(const std::string &path);

/**
 * Read system-state samples written by saveSystemStateCsv.
 *
 * @throws std::runtime_error on malformed files.
 */
std::vector<SystemStateSample>
loadSystemStateCsv(const std::string &path);

/** Write performance samples to a CSV file (with header row). */
void savePerformanceCsv(const std::string &path,
                        const std::vector<PerformanceSample> &samples);

/** Typed-error variant of loadPerformanceCsv (see
 *  tryLoadSystemStateCsv for the error taxonomy; adds BadToken for
 *  unknown class/mode tokens). */
[[nodiscard]] Result<std::vector<PerformanceSample>>
tryLoadPerformanceCsv(const std::string &path);

/** Read performance samples written by savePerformanceCsv. */
std::vector<PerformanceSample>
loadPerformanceCsv(const std::string &path);

} // namespace adrias::scenario

#endif // ADRIAS_SCENARIO_DATASET_IO_HH
