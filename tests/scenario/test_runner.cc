/** @file Tests for scenario generation and execution. */

#include <gtest/gtest.h>

#include <set>

#include "scenario/runner.hh"

namespace adrias::scenario
{
namespace
{

ScenarioConfig
shortConfig(std::uint64_t seed = 3, SimTime duration = 600)
{
    ScenarioConfig config;
    config.durationSec = duration;
    config.spawnMinSec = 5;
    config.spawnMaxSec = 20;
    config.seed = seed;
    return config;
}

TEST(ScenarioRunner, ValidatesConfig)
{
    ScenarioConfig bad = shortConfig();
    bad.durationSec = 0;
    EXPECT_THROW(ScenarioRunner{bad}, std::runtime_error);

    ScenarioConfig bad2 = shortConfig();
    bad2.spawnMaxSec = 1;
    bad2.spawnMinSec = 5;
    EXPECT_THROW(ScenarioRunner{bad2}, std::runtime_error);

    ScenarioConfig bad3 = shortConfig();
    bad3.ibenchFraction = 0.8;
    bad3.lcFraction = 0.4;
    EXPECT_THROW(ScenarioRunner{bad3}, std::runtime_error);
}

TEST(ScenarioRunner, TraceCoversEveryTick)
{
    ScenarioRunner runner(shortConfig());
    RandomPlacement policy(5);
    const ScenarioResult result = runner.run(policy);
    EXPECT_EQ(result.trace.size(), 600u);
    EXPECT_EQ(result.concurrency.size(), 600u);
}

TEST(ScenarioRunner, DeterministicForSameSeed)
{
    RandomPlacement policy_a(5), policy_b(5);
    const auto a = ScenarioRunner(shortConfig(11)).run(policy_a);
    const auto b = ScenarioRunner(shortConfig(11)).run(policy_b);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].name, b.records[i].name);
        EXPECT_EQ(a.records[i].mode, b.records[i].mode);
        EXPECT_DOUBLE_EQ(a.records[i].execTimeSec,
                         b.records[i].execTimeSec);
    }
    EXPECT_DOUBLE_EQ(a.totalRemoteTrafficGB, b.totalRemoteTrafficGB);
}

TEST(ScenarioRunner, DifferentSeedsDiffer)
{
    RandomPlacement policy_a(5), policy_b(5);
    const auto a = ScenarioRunner(shortConfig(1)).run(policy_a);
    const auto b = ScenarioRunner(shortConfig(2)).run(policy_b);
    // Completion counts or traffic will differ with overwhelming odds.
    EXPECT_TRUE(a.records.size() != b.records.size() ||
                a.totalRemoteTrafficGB != b.totalRemoteTrafficGB);
}

TEST(ScenarioRunner, ProducesAllWorkloadClasses)
{
    ScenarioConfig config = shortConfig(7, 1800);
    ScenarioRunner runner(config);
    RandomPlacement policy(5);
    const ScenarioResult result = runner.run(policy);

    std::set<WorkloadClass> classes;
    for (const auto &record : result.records)
        classes.insert(record.cls);
    EXPECT_TRUE(classes.count(WorkloadClass::BestEffort));
    EXPECT_TRUE(classes.count(WorkloadClass::Interference));
    // LC apps run for ~270-320 s, so a 1800 s scenario completes some.
    EXPECT_TRUE(classes.count(WorkloadClass::LatencyCritical));
}

TEST(ScenarioRunner, ConcurrencyRespectsCap)
{
    ScenarioConfig config = shortConfig(9, 1200);
    config.maxConcurrent = 10;
    ScenarioRunner runner(config);
    RandomPlacement policy(5);
    const ScenarioResult result = runner.run(policy);
    for (int c : result.concurrency)
        EXPECT_LE(c, 10);
}

TEST(ScenarioRunner, RecordsCarryPerformanceNumbers)
{
    ScenarioRunner runner(shortConfig(13, 1800));
    RandomPlacement policy(5);
    const ScenarioResult result = runner.run(policy);
    ASSERT_FALSE(result.records.empty());
    for (const auto &record : result.records) {
        EXPECT_GT(record.execTimeSec, 0.0);
        EXPECT_GE(record.meanSlowdown, 1.0);
        EXPECT_GE(record.completion, record.arrival);
        if (record.cls == WorkloadClass::LatencyCritical) {
            EXPECT_GT(record.p99Ms, 0.0);
            EXPECT_GE(record.p999Ms, record.p99Ms);
            EXPECT_LT(record.meanLatencyMs, record.p99Ms);
        }
        if (record.mode == MemoryMode::Local)
            EXPECT_DOUBLE_EQ(record.remoteTrafficGB, 0.0);
    }
}

TEST(ScenarioRunner, RemoteDeploymentsGenerateChannelTraffic)
{
    ScenarioRunner runner(shortConfig(17, 1200));
    RandomPlacement policy(5);
    const ScenarioResult result = runner.run(policy);
    EXPECT_GT(result.totalRemoteTrafficGB, 0.0);
}

TEST(ScenarioRunner, HistoryWindowsAttachedAfterWarmup)
{
    ScenarioRunner runner(shortConfig(19, 1200));
    RandomPlacement policy(5);
    const ScenarioResult result = runner.run(policy);
    std::size_t with_window = 0;
    for (const auto &record : result.records) {
        if (!record.historyWindow.empty()) {
            ++with_window;
            EXPECT_EQ(record.historyWindow.size(),
                      ScenarioRunner::kWindowBins);
        }
    }
    EXPECT_GT(with_window, result.records.size() / 2);
}

TEST(ScenarioRunner, RecordsOfClassFilters)
{
    ScenarioRunner runner(shortConfig(23, 1200));
    RandomPlacement policy(5);
    const ScenarioResult result = runner.run(policy);
    const auto be = result.recordsOfClass(WorkloadClass::BestEffort);
    for (const auto *record : be)
        EXPECT_EQ(record->cls, WorkloadClass::BestEffort);
    const auto lc = result.recordsOfClass(WorkloadClass::LatencyCritical);
    const auto ib = result.recordsOfClass(WorkloadClass::Interference);
    EXPECT_EQ(be.size() + lc.size() + ib.size(), result.records.size());
}

TEST(HistoryWindowAt, EarlyArrivalYieldsEmpty)
{
    std::vector<testbed::CounterSample> trace(10);
    EXPECT_TRUE(historyWindowAt(trace, 0).empty());
    EXPECT_TRUE(historyWindowAt({}, 50).empty());
}

TEST(HistoryWindowAt, UsesTrailingWindow)
{
    std::vector<testbed::CounterSample> trace(300);
    for (std::size_t i = 0; i < trace.size(); ++i)
        for (double &v : trace[i])
            v = static_cast<double>(i);
    const auto seq = historyWindowAt(trace, 250);
    ASSERT_EQ(seq.size(), ScenarioRunner::kWindowBins);
    // Window is [130, 250): first bin ~134.5, last ~244.5.
    EXPECT_NEAR(seq.front().at(0, 0), 134.5, 1e-9);
    EXPECT_NEAR(seq.back().at(0, 0), 244.5, 1e-9);
}

class SpawnIntervalTest
    : public ::testing::TestWithParam<std::pair<SimTime, SimTime>>
{
};

TEST_P(SpawnIntervalTest, HigherArrivalRateRaisesConcurrency)
{
    // Property: tighter spawn intervals produce at least as much mean
    // concurrency as the loosest interval (paper Fig. 8's heavy vs
    // relaxed scenarios).
    auto run_mean = [](SimTime lo, SimTime hi) {
        ScenarioConfig config;
        config.durationSec = 1200;
        config.spawnMinSec = lo;
        config.spawnMaxSec = hi;
        config.seed = 31;
        ScenarioRunner runner(config);
        RandomPlacement policy(5);
        const auto result = runner.run(policy);
        double total = 0.0;
        for (int c : result.concurrency)
            total += c;
        return total / static_cast<double>(result.concurrency.size());
    };
    const auto [lo, hi] = GetParam();
    EXPECT_GE(run_mean(lo, hi) * 1.15, run_mean(5, 60));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpawnIntervalTest,
    ::testing::Values(std::pair<SimTime, SimTime>{5, 20},
                      std::pair<SimTime, SimTime>{5, 40},
                      std::pair<SimTime, SimTime>{5, 60}));

} // namespace
} // namespace adrias::scenario
