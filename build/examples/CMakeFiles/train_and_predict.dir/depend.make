# Empty dependencies file for train_and_predict.
# This may be replaced when dependencies are built.
