/**
 * @file
 * Observability layer entry point (DESIGN.md §10).
 *
 * Two independent switches govern cost:
 *  - Compile time: the ADRIAS_OBS CMake option (default ON) defines
 *    ADRIAS_OBS_ENABLED.  OFF compiles the layer to no-ops — metric
 *    mutators become empty inline bodies, the tracer cannot be
 *    enabled, and instrumentation sites (all wrapped in
 *    `#if ADRIAS_OBS_ENABLED`) vanish from the binary.
 *  - Run time: obs::setEnabled(true) arms metric recording;
 *    Tracer::global().setEnabled(true) additionally records trace
 *    events.  Both default to off, so an uninstrumented run pays one
 *    relaxed atomic load per site.
 *
 * startRun()/finishRun() bracket an observed run: startRun arms both
 * switches, installs the ThreadPool observer and remembers the output
 * directory; finishRun writes trace.json (Chrome trace_event, for
 * about:tracing), events.jsonl and metrics.jsonl there and returns the
 * end-of-run summary table.  initFromArgs() wires the conventional
 * `--obs-out <dir>` flag (or the ADRIAS_OBS_OUT environment knob) used
 * by the scenario-runner benches.
 */

#ifndef ADRIAS_OBS_OBS_HH
#define ADRIAS_OBS_OBS_HH

#include <atomic>
#include <string>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace adrias::obs
{

/** @return true when the layer was compiled in (ADRIAS_OBS=ON). */
constexpr bool
compiledIn()
{
    return ADRIAS_OBS_ENABLED != 0;
}

#if ADRIAS_OBS_ENABLED
namespace detail
{
extern std::atomic<bool> g_metricsEnabled;
} // namespace detail

/** @return true while metric recording is armed. */
inline bool
enabled()
{
    return detail::g_metricsEnabled.load(std::memory_order_relaxed);
}
#else
constexpr bool
enabled()
{
    return false;
}
#endif

/** Arm or disarm metric recording (no-op under ADRIAS_OBS=OFF). */
void setEnabled(bool on);

/**
 * Arm metrics + tracing and set the artifact directory for
 * finishRun().  Pass an empty dir to observe without writing files.
 */
void startRun(const std::string &out_dir);

/**
 * Finish an observed run: when an output directory is set, write
 * trace.json, events.jsonl and metrics.jsonl into it.
 *
 * @return the metrics summary table (plus artifact paths when files
 *         were written); empty string when observation is off.
 */
std::string finishRun();

/**
 * Parse `--obs-out <dir>` from argv, falling back to the
 * ADRIAS_OBS_OUT environment variable, and startRun() when present.
 *
 * @return true when observation was enabled.
 */
bool initFromArgs(int argc, char **argv);

/** Reset every metric value and drop all trace events (tests). */
void resetAll();

} // namespace adrias::obs

#endif // ADRIAS_OBS_OBS_HH
