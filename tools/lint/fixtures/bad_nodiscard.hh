// Lint fixture: deliberate nodiscard-result violations (applies under
// a src/*.hh label).  Never compiled.
#ifndef FIXTURE_BAD_NODISCARD_HH
#define FIXTURE_BAD_NODISCARD_HH

#include <string>

template <typename T> class Result;

Result<int> parseCount(const std::string &text); // line 10: violation

static Result<double> parseRatio(const std::string &text); // line 12

[[nodiscard]] Result<int> parseOk(const std::string &text); // fine

[[nodiscard]]
Result<double> parseOkPrevLine(const std::string &text); // fine

// NOLINTNEXTLINE(nodiscard-result)
Result<int> parseEscaped(const std::string &text);

#endif // FIXTURE_BAD_NODISCARD_HH
