#include "lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "lint/source.hh"

namespace adrias::lint
{

namespace
{

// --------------------------------------------------------------------------
// Scopes
// --------------------------------------------------------------------------

bool
inRandScope(const std::string &label)
{
    if (label == "src/common/rng.hh" || label == "src/common/rng.cc")
        return false; // the one sanctioned randomness source
    return startsWith(label, "src/") || startsWith(label, "tests/") ||
           startsWith(label, "bench/");
}

bool
inWallClockScope(const std::string &label)
{
    return startsWith(label, "src/") || startsWith(label, "tests/");
}

bool
inUnorderedScope(const std::string &label)
{
    return startsWith(label, "src/testbed/") ||
           startsWith(label, "src/scenario/") ||
           startsWith(label, "src/core/");
}

bool
inNodiscardScope(const std::string &label)
{
    return startsWith(label, "src/") &&
           (endsWith(label, ".hh") || endsWith(label, ".cc"));
}

bool
inFloatEqualScope(const std::string &label)
{
    return startsWith(label, "src/");
}

bool
inIostreamScope(const std::string &label)
{
    return startsWith(label, "src/") &&
           label != "src/common/logging.cc";
}

bool
inOfstreamScope(const std::string &label)
{
    return startsWith(label, "src/");
}

bool
inRawThreadScope(const std::string &label)
{
    if (label == "src/common/threadpool.hh" ||
        label == "src/common/threadpool.cc")
        return false; // the one sanctioned parallelism layer
    return startsWith(label, "src/");
}

bool
inIntrinsicsScope(const std::string &label)
{
    if (startsWith(label, "src/ml/simd"))
        return false; // the one sanctioned SIMD portability layer
    return startsWith(label, "src/") || startsWith(label, "tests/") ||
           startsWith(label, "bench/");
}

// --------------------------------------------------------------------------
// Literal classification (float-equal)
// --------------------------------------------------------------------------

/** Is `token` a floating-point literal (1.0, .5, 2., 1e-9, 1.5f)? */
bool
isFloatLiteral(std::string token)
{
    if (token.empty())
        return false;
    if (token.back() == 'f' || token.back() == 'F' ||
        token.back() == 'l' || token.back() == 'L')
        token.pop_back();
    bool digits = false;
    bool dot = false;
    bool exponent = false;
    std::size_t i = 0;
    for (; i < token.size(); ++i) {
        const char c = token[i];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digits = true;
        } else if (c == '.' && !dot && !exponent) {
            dot = true;
        } else if ((c == 'e' || c == 'E') && digits && !exponent) {
            exponent = true;
            if (i + 1 < token.size() &&
                (token[i + 1] == '+' || token[i + 1] == '-'))
                ++i;
        } else {
            return false;
        }
    }
    return digits && (dot || exponent);
}

/** Literal-ish token ending right before `pos` (skipping spaces). */
std::string
tokenLeftOf(const std::string &line, std::size_t pos)
{
    std::size_t end = pos;
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(line[end - 1])))
        --end;
    std::size_t begin = end;
    auto literalChar = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '.';
    };
    while (begin > 0) {
        const char c = line[begin - 1];
        if (literalChar(c)) {
            --begin;
            continue;
        }
        // Exponent sign inside a literal: the '-' in "1e-9".
        if ((c == '-' || c == '+') && begin >= 2 &&
            (line[begin - 2] == 'e' || line[begin - 2] == 'E')) {
            --begin;
            continue;
        }
        break;
    }
    // Leading sign belongs to the literal only after another operator
    // or an open paren ("x == -1.0" and "(-.5 != y)").
    if (begin > 0 && (line[begin - 1] == '-' || line[begin - 1] == '+')) {
        std::size_t before = begin - 1;
        while (before > 0 &&
               std::isspace(static_cast<unsigned char>(line[before - 1])))
            --before;
        if (before == 0 || line[before - 1] == '(' ||
            line[before - 1] == ',' || line[before - 1] == '=')
            --begin;
    }
    std::string token = line.substr(begin, end - begin);
    if (!token.empty() && (token[0] == '-' || token[0] == '+'))
        token.erase(token.begin());
    return token;
}

/** Literal-ish token starting at/after `pos` (skipping spaces). */
std::string
tokenRightOf(const std::string &line, std::size_t pos)
{
    std::size_t begin = pos;
    while (begin < line.size() &&
           std::isspace(static_cast<unsigned char>(line[begin])))
        ++begin;
    if (begin < line.size() &&
        (line[begin] == '-' || line[begin] == '+'))
        ++begin;
    std::size_t end = begin;
    auto literalChar = [&](char c) {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '.')
            return true;
        // exponent sign: 1e-9
        if ((c == '-' || c == '+') && end > begin &&
            (line[end - 1] == 'e' || line[end - 1] == 'E'))
            return true;
        return false;
    };
    while (end < line.size() && literalChar(line[end]))
        ++end;
    return line.substr(begin, end - begin);
}

// --------------------------------------------------------------------------
// Rules
// --------------------------------------------------------------------------

const std::set<std::string> kRandIdentifiers = {
    "rand",         "srand",        "drand48",
    "lrand48",      "mrand48",      "random_device",
    "mt19937",      "mt19937_64",   "minstd_rand",
    "minstd_rand0", "ranlux24",     "ranlux48",
    "knuth_b",      "default_random_engine",
};

const std::set<std::string> kClockIdentifiers = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "clock_gettime", "timespec_get",
    "localtime",    "localtime_r",  "gmtime",
    "gmtime_r",     "mktime",       "difftime",
    "strftime",
};

/** Identifiers that only violate when called: time(...) / clock(...). */
const std::set<std::string> kClockCallIdentifiers = {"time", "clock"};

void
checkRawRand(const std::string &label,
             const Suppressions &nolint,
             const std::vector<std::string> &stripped,
             std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        if (stripped[i].find("#include") != std::string::npos &&
            stripped[i].find("<random>") != std::string::npos &&
            !nolint.suppressed(i, "raw-rand")) {
            findings.push_back({label, i + 1, "raw-rand",
                                "#include <random>: all randomness must "
                                "flow through common/rng.hh"});
            continue;
        }
        for (const auto &[id, col] : identifiersIn(stripped[i])) {
            (void)col;
            if (kRandIdentifiers.count(id) &&
                !nolint.suppressed(i, "raw-rand")) {
                findings.push_back({label, i + 1, "raw-rand",
                                    "'" + id +
                                        "': use common/rng.hh (Rng) so "
                                        "one seed reproduces the run"});
                break;
            }
        }
    }
}

void
checkWallClock(const std::string &label,
               const Suppressions &nolint,
               const std::vector<std::string> &stripped,
               std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        for (const auto &[id, col] : identifiersIn(stripped[i])) {
            const bool banned =
                kClockIdentifiers.count(id) > 0 ||
                (kClockCallIdentifiers.count(id) > 0 &&
                 nextNonSpace(stripped[i], col + id.size()) == '(');
            if (banned && !nolint.suppressed(i, "wall-clock")) {
                findings.push_back(
                    {label, i + 1, "wall-clock",
                     "'" + id +
                         "': sim code must use explicit SimTime, never "
                         "the wall clock"});
                break;
            }
        }
    }
}

void
checkUnordered(const std::string &label,
               const Suppressions &nolint,
               const std::vector<std::string> &stripped,
               std::vector<Finding> &findings)
{
    static const std::set<std::string> kBanned = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        for (const auto &[id, col] : identifiersIn(stripped[i])) {
            (void)col;
            if (kBanned.count(id) &&
                !nolint.suppressed(i, "unordered-container")) {
                findings.push_back(
                    {label, i + 1, "unordered-container",
                     "'" + id +
                         "': hash iteration order leaks "
                         "nondeterminism into datasets; use std::map "
                         "or a sorted vector"});
                break;
            }
        }
    }
}

/**
 * Brace-scope tracker: which lines sit at namespace scope (every open
 * brace is a namespace brace) and whether one of the enclosing
 * namespaces is anonymous.  Used to find .cc-local declarations.
 */
struct NamespaceScopes
{
    std::vector<bool> atNamespaceScope; ///< per line
    std::vector<bool> inAnonNamespace;  ///< per line
};

NamespaceScopes
scanNamespaceScopes(const std::vector<std::string> &stripped)
{
    NamespaceScopes scopes;
    scopes.atNamespaceScope.resize(stripped.size(), false);
    scopes.inAnonNamespace.resize(stripped.size(), false);

    // Each open brace is tagged: is it a namespace brace, and if so is
    // the namespace anonymous?
    struct Brace
    {
        bool isNamespace = false;
        bool isAnonymous = false;
    };
    std::vector<Brace> stack;
    std::string prevCode; // trimmed previous non-blank code text

    for (std::size_t i = 0; i < stripped.size(); ++i) {
        const bool allNs = std::all_of(
            stack.begin(), stack.end(),
            [](const Brace &b) { return b.isNamespace; });
        const bool anyAnon = std::any_of(
            stack.begin(), stack.end(),
            [](const Brace &b) { return b.isAnonymous; });
        scopes.atNamespaceScope[i] = allNs;
        scopes.inAnonNamespace[i] = anyAnon;

        std::string pending; // code on this line before the next brace
        for (char c : stripped[i]) {
            if (c == '{') {
                std::string context = trimmed(pending);
                if (context.empty())
                    context = prevCode;
                const bool isNs =
                    context == "namespace" ||
                    startsWith(context, "namespace ");
                stack.push_back({isNs, context == "namespace"});
                pending.clear();
            } else if (c == '}') {
                if (!stack.empty())
                    stack.pop_back();
                pending.clear();
            } else {
                pending.push_back(c);
            }
        }
        if (std::string rest = trimmed(pending); !rest.empty())
            prevCode = rest;
        else if (std::string whole = trimmed(stripped[i]);
                 !whole.empty())
            prevCode = whole;
    }
    return scopes;
}

/** Strip declaration-specifier prefixes; report whether one was `static`. */
std::string
stripDeclSpecifiers(std::string decl, bool *was_static = nullptr)
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (const std::string prefix :
             {"static ", "inline ", "virtual ", "constexpr ",
              "friend ", "extern "}) {
            if (startsWith(decl, prefix)) {
                if (was_static != nullptr && prefix == "static ")
                    *was_static = true;
                decl = trimmed(decl.substr(prefix.size()));
                changed = true;
            }
        }
    }
    return decl;
}

/** Does `line` (or the line above) carry [[nodiscard]]? */
bool
nodiscardMarked(const std::vector<std::string> &stripped, std::size_t i)
{
    if (stripped[i].find("[[nodiscard]]") != std::string::npos)
        return true;
    return i > 0 &&
           stripped[i - 1].find("[[nodiscard]]") != std::string::npos;
}

/**
 * Function-declarator check for the .cc extension of nodiscard-result:
 * `text` is what follows a Result<...> return type.  Accepts
 * `name(...)` declarators; rejects out-of-line member definitions
 * (`Class::name`), operators, and local variable initializations.
 */
bool
looksLikeLocalDeclarator(const std::string &text)
{
    std::size_t i = 0;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
    const std::size_t name_begin = i;
    while (i < text.size() && isIdentChar(text[i]))
        ++i;
    if (i == name_begin)
        return false; // no identifier (e.g. "::" or an operator)
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
    // `name =` is a local variable; `name::` is an out-of-line member.
    return i < text.size() && text[i] == '(';
}

/** Column one past the matching '>' of a leading "Result<", or npos. */
std::size_t
resultTypeEnd(const std::string &decl)
{
    const std::size_t open = decl.find('<');
    if (open == std::string::npos)
        return std::string::npos;
    int depth = 0;
    for (std::size_t i = open; i < decl.size(); ++i) {
        if (decl[i] == '<')
            ++depth;
        else if (decl[i] == '>' && --depth == 0)
            return i + 1;
    }
    return std::string::npos;
}

void
checkNodiscardResult(const std::string &label,
                     const Suppressions &nolint,
                     const std::vector<std::string> &stripped,
                     std::vector<Finding> &findings)
{
    const bool is_header = endsWith(label, ".hh");
    const NamespaceScopes scopes =
        is_header ? NamespaceScopes{} : scanNamespaceScopes(stripped);

    for (std::size_t i = 0; i < stripped.size(); ++i) {
        bool is_static = false;
        std::string decl =
            stripDeclSpecifiers(trimmed(stripped[i]), &is_static);
        if (!startsWith(decl, "Result<") &&
            !startsWith(decl, "adrias::Result<"))
            continue;

        if (!is_header) {
            // In a .cc only file-local declarations are checked:
            // anonymous-namespace or `static` functions.  Functions
            // with external linkage are declared in a header, where
            // the header scope of this rule already applies.
            if (i >= scopes.atNamespaceScope.size() ||
                !scopes.atNamespaceScope[i])
                continue;
            if (!scopes.inAnonNamespace[i] && !is_static)
                continue;
            const std::size_t type_end = resultTypeEnd(decl);
            if (type_end == std::string::npos)
                continue;
            std::string declarator = trimmed(decl.substr(type_end));
            if (declarator.empty() && i + 1 < stripped.size())
                declarator = trimmed(stripped[i + 1]);
            if (!looksLikeLocalDeclarator(declarator))
                continue;
        }

        if (!nodiscardMarked(stripped, i) &&
            !nolint.suppressed(i, "nodiscard-result")) {
            findings.push_back(
                {label, i + 1, "nodiscard-result",
                 "Result-returning declaration without [[nodiscard]]: "
                 "callers could silently drop the error"});
        }
    }
}

void
checkFloatEqual(const std::string &label,
                const Suppressions &nolint,
                const std::vector<std::string> &stripped,
                std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        const std::string &line = stripped[i];
        for (std::size_t p = 0; p + 1 < line.size(); ++p) {
            const bool eq = line[p] == '=' && line[p + 1] == '=';
            const bool ne = line[p] == '!' && line[p + 1] == '=';
            if (!eq && !ne)
                continue;
            // Not <=, >=, ==='s tail, or !== style fragments.
            if (p > 0 && (line[p - 1] == '<' || line[p - 1] == '>' ||
                          line[p - 1] == '=' || line[p - 1] == '!'))
                continue;
            if (p + 2 < line.size() && line[p + 2] == '=')
                continue;
            const std::string left = tokenLeftOf(line, p);
            const std::string right = tokenRightOf(line, p + 2);
            if ((isFloatLiteral(left) || isFloatLiteral(right)) &&
                !nolint.suppressed(i, "float-equal")) {
                findings.push_back(
                    {label, i + 1, "float-equal",
                     "floating-point " +
                         std::string(eq ? "==" : "!=") +
                         " against '" +
                         (isFloatLiteral(left) ? left : right) +
                         "': compare with a tolerance or an ordering"});
                break;
            }
        }
    }
}

void
checkIostreamInclude(const std::string &label,
                     const Suppressions &nolint,
                     const std::vector<std::string> &stripped,
                     std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        const std::string &line = stripped[i];
        if (line.find("#include") != std::string::npos &&
            line.find("<iostream>") != std::string::npos &&
            !nolint.suppressed(i, "iostream-include")) {
            findings.push_back({label, i + 1, "iostream-include",
                                "library code logs through "
                                "common/logging.hh; <iostream> is "
                                "reserved for the logger backend"});
        }
    }
}

void
checkRawOfstream(const std::string &label,
                 const Suppressions &nolint,
                 const std::vector<std::string> &stripped,
                 std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        for (const auto &[id, col] : identifiersIn(stripped[i])) {
            (void)col;
            if (id == "ofstream" &&
                !nolint.suppressed(i, "raw-ofstream")) {
                findings.push_back(
                    {label, i + 1, "raw-ofstream",
                     "'ofstream': persistence must go through "
                     "common/io/durable_file.hh (atomic temp-write + "
                     "rename) so a crash never leaves a torn file"});
                break;
            }
        }
    }
}

void
checkRawThread(const std::string &label,
               const Suppressions &nolint,
               const std::vector<std::string> &stripped,
               std::vector<Finding> &findings)
{
    static const std::set<std::string> kBannedAfterStd = {
        "thread", "jthread", "async"};
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        const std::string &line = stripped[i];
        if (line.find("#include") != std::string::npos &&
            (line.find("<thread>") != std::string::npos ||
             line.find("<future>") != std::string::npos) &&
            !nolint.suppressed(i, "raw-thread")) {
            findings.push_back(
                {label, i + 1, "raw-thread",
                 "raw threading header: all parallelism goes through "
                 "the deterministic ThreadPool (common/threadpool.hh)"});
            continue;
        }
        for (const auto &[id, col] : identifiersIn(line)) {
            if (!kBannedAfterStd.count(id))
                continue;
            // Only `std::thread`-style uses: require a `::` right
            // before the identifier so member names like `thread`
            // don't trip the rule.
            if (col < 2 || line[col - 1] != ':' || line[col - 2] != ':')
                continue;
            if (!nolint.suppressed(i, "raw-thread")) {
                findings.push_back(
                    {label, i + 1, "raw-thread",
                     "'std::" + id +
                         "': spawn work on the deterministic "
                         "ThreadPool (common/threadpool.hh), never "
                         "raw threads"});
                break;
            }
        }
    }
}

void
checkRawIntrinsics(const std::string &label,
                   const Suppressions &nolint,
                   const std::vector<std::string> &stripped,
                   std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        const std::string &line = stripped[i];
        if (line.find("#include") != std::string::npos &&
            line.find("intrin.h") != std::string::npos &&
            !nolint.suppressed(i, "raw-intrinsics")) {
            findings.push_back(
                {label, i + 1, "raw-intrinsics",
                 "intrinsics header: raw SIMD lives only under the "
                 "src/ml/simd portability layer; call the batch "
                 "kernels in ml/simd.hh instead"});
            continue;
        }
        for (const auto &[id, col] : identifiersIn(line)) {
            (void)col;
            // _mm_/_mm256_/_mm512_ intrinsics and the __m128/__m256/
            // __m512 vector types (but not __m-prefixed identifiers
            // like __might_be_anything).
            const bool intrinsic = id.rfind("_mm", 0) == 0;
            const bool vecType =
                id.rfind("__m", 0) == 0 && id.size() > 3 &&
                std::isdigit(static_cast<unsigned char>(id[3]));
            if ((intrinsic || vecType) &&
                !nolint.suppressed(i, "raw-intrinsics")) {
                findings.push_back(
                    {label, i + 1, "raw-intrinsics",
                     "'" + id +
                         "': raw SIMD lives only under the src/ml/simd "
                         "portability layer (scalar fallback + runtime "
                         "dispatch); call the batch kernels in "
                         "ml/simd.hh instead"});
                break;
            }
        }
    }
}

} // namespace

const std::vector<RuleInfo> &
rules()
{
    static const std::vector<RuleInfo> kRules = {
        {"raw-rand",
         "all randomness flows through common/rng.hh (src, tests, "
         "bench; rng.{hh,cc} exempt)"},
        {"wall-clock",
         "no wall/CPU clock reads in sim code (src, tests)"},
        {"unordered-container",
         "no std::unordered_{map,set} in src/testbed, src/scenario, "
         "src/core (iteration-order nondeterminism)"},
        {"nodiscard-result",
         "Result<...>-returning declarations in src headers and "
         ".cc-local (static/anonymous-namespace) functions carry "
         "[[nodiscard]]"},
        {"float-equal",
         "no ==/!= against floating-point literals in src"},
        {"iostream-include",
         "no #include <iostream> in src outside common/logging.cc"},
        {"raw-ofstream",
         "no raw std::ofstream persistence in src; write through the "
         "DurableFile layer (common/io)"},
        {"raw-thread",
         "no std::thread/std::async in src outside "
         "common/threadpool.*; parallelism goes through the "
         "deterministic ThreadPool"},
        {"raw-intrinsics",
         "no immintrin.h/__m256/_mm256_* outside src/ml/simd* (src, "
         "tests, bench); SIMD goes through the portability layer"},
    };
    return kRules;
}

std::vector<Finding>
lintContent(const std::string &label, const std::string &content)
{
    const std::vector<std::string> raw = splitLines(content);
    const std::vector<std::string> stripped =
        stripCommentsAndStrings(raw);
    const Suppressions nolint(raw);

    std::vector<Finding> findings;
    if (inRandScope(label))
        checkRawRand(label, nolint, stripped, findings);
    if (inWallClockScope(label))
        checkWallClock(label, nolint, stripped, findings);
    if (inUnorderedScope(label))
        checkUnordered(label, nolint, stripped, findings);
    if (inNodiscardScope(label))
        checkNodiscardResult(label, nolint, stripped, findings);
    if (inFloatEqualScope(label))
        checkFloatEqual(label, nolint, stripped, findings);
    if (inIostreamScope(label))
        checkIostreamInclude(label, nolint, stripped, findings);
    if (inOfstreamScope(label))
        checkRawOfstream(label, nolint, stripped, findings);
    if (inRawThreadScope(label))
        checkRawThread(label, nolint, stripped, findings);
    if (inIntrinsicsScope(label))
        checkRawIntrinsics(label, nolint, stripped, findings);

    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });
    return findings;
}

std::vector<Finding>
lintFile(const std::string &path, const std::string &label)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return {{label, 0, "io", "cannot open " + path}};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lintContent(label, buffer.str());
}

std::vector<Finding>
lintTree(const std::string &repo_root)
{
    namespace fs = std::filesystem;

    std::vector<std::pair<std::string, std::string>> files; // label, path
    for (const char *top : {"src", "tests", "bench"}) {
        const fs::path base = fs::path(repo_root) / top;
        if (!fs::exists(base))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".cc" && ext != ".hh")
                continue;
            std::string label =
                fs::relative(entry.path(), repo_root).generic_string();
            if (label.find("fixtures/") != std::string::npos)
                continue; // deliberately violating self-test inputs
            files.emplace_back(std::move(label), entry.path().string());
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<Finding> findings;
    for (const auto &[label, path] : files) {
        std::vector<Finding> file_findings = lintFile(path, label);
        findings.insert(findings.end(),
                        std::make_move_iterator(file_findings.begin()),
                        std::make_move_iterator(file_findings.end()));
    }
    return findings;
}

std::string
formatFinding(const Finding &finding)
{
    return finding.file + ":" + std::to_string(finding.line) + ": [" +
           finding.rule + "] " + finding.detail;
}

} // namespace adrias::lint
