/**
 * @file
 * Multi-node cluster simulation — the paper's §VII scalability design:
 * the Watcher and Predictor are per-node, while the orchestration
 * logic is centralized and must pick a node *and* a memory mode for
 * each arriving application, accounting for cluster-level efficiency
 * on iso-QoS predictions.
 *
 * Each node is an independent ThymesisFlow borrower/lender pair (the
 * prototype's unit); there is no cross-node memory lending.
 */

#ifndef ADRIAS_SCENARIO_CLUSTER_HH
#define ADRIAS_SCENARIO_CLUSTER_HH

#include <memory>
#include <vector>

#include "scenario/placement.hh"
#include "scenario/runner.hh"

namespace adrias::scenario
{

/** A (node, mode) decision. */
struct ClusterPlacement
{
    std::size_t node = 0;
    MemoryMode mode = MemoryMode::Local;
};

/** What a cluster policy may inspect about one node. */
struct NodeView
{
    /** The node's live telemetry. */
    const telemetry::Watcher *watcher = nullptr;

    /** Number of deployments currently running on the node. */
    std::size_t running = 0;
};

/** Chooses node and memory mode for arriving applications. */
class ClusterPolicy
{
  public:
    virtual ~ClusterPolicy() = default;

    /** Short name for bench tables. */
    virtual std::string name() const = 0;

    /**
     * Decide placement for an arriving application.
     *
     * @param spec the application.
     * @param nodes one view per node, index == node id.
     * @param now arrival time.
     */
    virtual ClusterPlacement place(const workloads::WorkloadSpec &spec,
                                   const std::vector<NodeView> &nodes,
                                   SimTime now) = 0;

    /** Completion callback with the owning node. */
    virtual void
    onCompletion(std::size_t node, const DeploymentRecord &record)
    {
        (void)node;
        (void)record;
    }
};

/** Uniformly random node and mode. */
class RandomClusterPolicy : public ClusterPolicy
{
  public:
    explicit RandomClusterPolicy(std::uint64_t seed = 7) : rng(seed) {}

    std::string name() const override { return "random"; }

    ClusterPlacement
    place(const workloads::WorkloadSpec &,
          const std::vector<NodeView> &nodes, SimTime) override
    {
        ClusterPlacement placement;
        placement.node = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(nodes.size()) - 1));
        placement.mode = rng.bernoulli(0.5) ? MemoryMode::Remote
                                            : MemoryMode::Local;
        return placement;
    }

  private:
    Rng rng;
};

/** Node chosen by fewest running apps, always local memory. */
class LeastLoadedLocalPolicy : public ClusterPolicy
{
  public:
    std::string name() const override { return "least-loaded-local"; }

    ClusterPlacement
    place(const workloads::WorkloadSpec &,
          const std::vector<NodeView> &nodes, SimTime) override
    {
        ClusterPlacement placement;
        placement.mode = MemoryMode::Local;
        std::size_t best = SIZE_MAX;
        for (std::size_t n = 0; n < nodes.size(); ++n) {
            if (nodes[n].running < best) {
                best = nodes[n].running;
                placement.node = n;
            }
        }
        return placement;
    }
};

/** One completed cluster scenario. */
struct ClusterResult
{
    /** Per-node scenario results (trace, concurrency, records). */
    std::vector<ScenarioResult> nodes;

    /** Total channel traffic across all nodes, GB. */
    double totalRemoteTrafficGB = 0.0;

    /** All completion records across nodes (node id attached). */
    struct NodeRecord
    {
        std::size_t node;
        const DeploymentRecord *record;
    };
    std::vector<NodeRecord> allRecords() const;
};

/** Drives one arrival stream across a cluster of simulated nodes. */
class ClusterScenarioRunner
{
  public:
    /**
     * @param nodes cluster size (>= 1).
     * @param config arrival/scenario knobs (shared stream).
     * @param params per-node testbed calibration.
     */
    ClusterScenarioRunner(std::size_t nodes, ScenarioConfig config,
                          testbed::TestbedParams params = {});

    /** Execute the scenario under the given cluster policy. */
    ClusterResult run(ClusterPolicy &policy);

  private:
    std::size_t nodeCount;
    ScenarioConfig config;
    testbed::TestbedParams testbedParams;
};

} // namespace adrias::scenario

#endif // ADRIAS_SCENARIO_CLUSTER_HH
