/**
 * @file
 * Streaming summary statistics (Welford's algorithm).
 */

#ifndef ADRIAS_STATS_ONLINE_STATS_HH
#define ADRIAS_STATS_ONLINE_STATS_HH

#include <cstddef>
#include <limits>

namespace adrias::stats
{

/**
 * Single-pass accumulator for count/mean/variance/min/max.
 *
 * Uses Welford's numerically stable update; safe for long counter
 * streams where naive sum-of-squares would lose precision.
 */
class OnlineStats
{
  public:
    OnlineStats() { reset(); }

    /** Fold one observation into the summary. */
    void add(double value);

    /** Merge another accumulator (parallel reduction). */
    void merge(const OnlineStats &other);

    /** Drop all state. */
    void reset();

    /** @return number of observations folded in. */
    std::size_t count() const { return n; }

    /** @return running mean (0 when empty). */
    double mean() const { return n == 0 ? 0.0 : mu; }

    /** @return population variance (0 for n < 2). */
    double variance() const;

    /** @return sample variance with Bessel's correction (0 for n < 2). */
    double sampleVariance() const;

    /** @return population standard deviation. */
    double stddev() const;

    /** @return smallest observation (+inf when empty). */
    double min() const { return minValue; }

    /** @return largest observation (-inf when empty). */
    double max() const { return maxValue; }

    /** @return sum of all observations. */
    double sum() const { return mu * static_cast<double>(n); }

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0; ///< sum of squared deviations from the mean
    double minValue = std::numeric_limits<double>::infinity();
    double maxValue = -std::numeric_limits<double>::infinity();
};

} // namespace adrias::stats

#endif // ADRIAS_STATS_ONLINE_STATS_HH
