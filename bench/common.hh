/**
 * @file
 * Shared plumbing for the experiment benches: every bench regenerates
 * one table or figure of the paper and prints paper-vs-measured rows.
 *
 * Scale knobs come from the environment so a default run over every
 * bench binary finishes in minutes while still reproducing every
 * shape:
 *   ADRIAS_BENCH_SCENARIOS  data-collection scenarios (default 4)
 *   ADRIAS_BENCH_DURATION   seconds per scenario (default 1800)
 *   ADRIAS_BENCH_EPOCHS     training epochs (default 30)
 *   ADRIAS_BENCH_SEED       base seed (default 100)
 *   ADRIAS_BENCH_OUTDIR     artifact directory (default out/)
 */

#ifndef ADRIAS_BENCH_COMMON_HH
#define ADRIAS_BENCH_COMMON_HH

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "common/csv.hh"
#include "common/table.hh"
#include "core/adrias.hh"
#include "obs/obs.hh"
#include "testbed/link_profiles.hh"

namespace adrias::bench
{

/**
 * Path for a bench artifact (CSV, model dump): keeps generated files
 * out of the repo root.  Defaults to out/ under the current directory;
 * override with ADRIAS_BENCH_OUTDIR.  The directory is created on
 * first use.
 */
inline std::string
outputPath(const std::string &filename)
{
    const char *env = std::getenv("ADRIAS_BENCH_OUTDIR");
    const std::filesystem::path dir = env && *env ? env : "out";
    std::filesystem::create_directories(dir);
    return (dir / filename).string();
}

/** Integer environment knob with default. */
inline long
envInt(const char *name, long fallback)
{
    const char *value = std::getenv(name);
    if (!value)
        return fallback;
    return std::strtol(value, nullptr, 10);
}

/** Standard bench banner: what experiment, what the paper reported. */
inline void
banner(const std::string &experiment, const std::string &paper_claim)
{
    std::cout << "==================================================\n"
              << "Experiment: " << experiment << "\n"
              << "Paper:      " << paper_claim << "\n"
              << "==================================================\n";
}

/**
 * R1/R2 banner fragment for a link tier, derived from the shared
 * profile table (link_profiles.hh) so benches never restate the
 * latency/bandwidth constants that calibrate the testbed.
 */
inline std::string
linkClaim(const testbed::LinkProfile &profile)
{
    std::ostringstream out;
    out << "throughput caps at ~" << profile.bandwidthGBps * 8.0
        << " Gbps; latency " << profile.latencyBaseCycles << " -> ~"
        << profile.latencySatCycles << " cycles";
    return out.str();
}

/** Build options scaled by the environment knobs. */
inline core::AdriasStack::BuildOptions
stackOptions()
{
    core::AdriasStack::BuildOptions options;
    options.scenarios =
        static_cast<std::size_t>(envInt("ADRIAS_BENCH_SCENARIOS", 4));
    options.scenarioDurationSec = envInt("ADRIAS_BENCH_DURATION", 1800);
    options.seed =
        static_cast<std::uint64_t>(envInt("ADRIAS_BENCH_SEED", 100));
    options.model.epochs =
        static_cast<std::size_t>(envInt("ADRIAS_BENCH_EPOCHS", 30));
    return options;
}

/** Evaluation-scenario config derived from the same knobs. */
inline scenario::ScenarioConfig
evalScenario(std::uint64_t seed, SimTime spawn_max = 30)
{
    scenario::ScenarioConfig config;
    config.durationSec = envInt("ADRIAS_BENCH_DURATION", 1800);
    config.spawnMinSec = 5;
    config.spawnMaxSec = spawn_max;
    config.seed = seed;
    return config;
}

} // namespace adrias::bench

#endif // ADRIAS_BENCH_COMMON_HH
