/**
 * @file
 * Cluster orchestration (paper §VII made concrete): a congested
 * arrival stream hits a cluster of disaggregated-memory nodes; the
 * centralized Adrias orchestrator consults every node's Watcher and
 * picks (node, memory mode) per application, breaking iso-QoS ties by
 * node load.  Compared against random and least-loaded baselines.
 *
 * Usage:  ./build/examples/cluster_orchestration [nodes] [duration]
 */

#include <cstdlib>
#include <iostream>

#include "core/adrias.hh"

using namespace adrias;

namespace
{

void
report(const std::string &label, const scenario::ClusterResult &result)
{
    std::vector<double> be_times;
    std::size_t offloads = 0, apps = 0;
    for (const auto &entry : result.allRecords()) {
        if (entry.record->cls == WorkloadClass::Interference)
            continue;
        ++apps;
        offloads += entry.record->mode == MemoryMode::Remote;
        if (entry.record->cls == WorkloadClass::BestEffort)
            be_times.push_back(entry.record->execTimeSec);
    }
    std::cout << "  " << label << ": " << apps << " apps completed, "
              << "BE median "
              << formatDouble(stats::quantile(be_times, 0.5), 1)
              << " s, p95 "
              << formatDouble(stats::quantile(be_times, 0.95), 1)
              << " s, " << offloads << " offloads, "
              << formatDouble(result.totalRemoteTrafficGB, 0)
              << " GB over the channels\n";

    std::cout << "    per-node completions:";
    for (const auto &node : result.nodes)
        std::cout << " " << node.records.size();
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t nodes =
        argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 3;
    const SimTime duration = argc > 2 ? std::atol(argv[2]) : 1500;

    std::cout << "Training the shared prediction stack...\n";
    core::AdriasStack::BuildOptions options;
    options.scenarios = 4;
    options.scenarioDurationSec = 1500;
    options.model.epochs = 25;
    core::AdriasStack stack(options);

    scenario::ScenarioConfig config;
    config.durationSec = duration;
    config.spawnMinSec = 3;
    config.spawnMaxSec = 9; // heavy stream: one node cannot keep up
    config.seed = 2024;
    config.maxConcurrent = 20;

    std::cout << "Replaying one arrival stream on a " << nodes
              << "-node cluster under three policies...\n\n";

    {
        scenario::RandomClusterPolicy random(5);
        scenario::ClusterScenarioRunner runner(nodes, config);
        report("random             ", runner.run(random));
    }
    {
        scenario::LeastLoadedLocalPolicy least_loaded;
        scenario::ClusterScenarioRunner runner(nodes, config);
        report("least-loaded-local ", runner.run(least_loaded));
    }
    {
        core::AdriasConfig adrias_config;
        adrias_config.beta = 0.8;
        adrias_config.defaultQosP99Ms = 5.0;
        core::AdriasClusterOrchestrator adrias(stack.predictor(),
                                               stack.signatures(),
                                               adrias_config);
        scenario::ClusterScenarioRunner runner(nodes, config);
        report("adrias-cluster     ", runner.run(adrias));
    }

    std::cout << "\nExpected: adrias-cluster completes as much work as "
                 "least-loaded while exploiting remote memory, and "
                 "clearly beats random placement.\n";
    return 0;
}
