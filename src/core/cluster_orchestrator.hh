/**
 * @file
 * Cluster-level Adrias (paper §VII): per-node Watchers feed the shared
 * Predictor; the centralized orchestrator picks the (node, mode) pair
 * with the best predicted outcome, breaking iso-QoS ties by
 * cluster-level efficiency (least-loaded node).
 */

#ifndef ADRIAS_CORE_CLUSTER_ORCHESTRATOR_HH
#define ADRIAS_CORE_CLUSTER_ORCHESTRATOR_HH

#include "core/orchestrator.hh"
#include "scenario/cluster.hh"

namespace adrias::core
{

/** Interference-aware cluster scheduler. */
class AdriasClusterOrchestrator : public scenario::ClusterPolicy
{
  public:
    /**
     * @param predictor trained prediction stack (borrowed).
     * @param signatures signature registry (borrowed).
     * @param config the same policy knobs as the single-node
     *        orchestrator (β, QoS).
     */
    AdriasClusterOrchestrator(const models::PredictorBase &predictor,
                              scenario::SignatureStore &signatures,
                              AdriasConfig config = {});

    std::string name() const override;

    scenario::ClusterPlacement
    place(const workloads::WorkloadSpec &spec,
          const std::vector<scenario::NodeView> &nodes,
          SimTime now) override;

    /**
     * Rack-aware placement: the predicted-best (node, mode) is routed
     * onto the rack; when the chosen node has no surviving remote
     * route (dead links, drained servers), other nodes are tried in
     * load order before the decision degrades to local memory.
     */
    scenario::ClusterPlacement
    placeRack(const workloads::WorkloadSpec &spec,
              const std::vector<scenario::NodeView> &nodes,
              const scenario::RackView &rack, SimTime now) override;

    void onCompletion(std::size_t node,
                      const scenario::DeploymentRecord &record) override;

    /**
     * Relative prediction margin below which two candidates are
     * considered iso-QoS and the tie is broken by node load.
     */
    static constexpr double kIsoMargin = 0.05;

  private:
    const models::PredictorBase *predictor;
    scenario::SignatureStore *signatures;
    AdriasConfig policy;

    /** Per-node, per-mode predicted performance for one app. */
    struct Candidate
    {
        std::size_t node = 0;
        MemoryMode mode = MemoryMode::Local;
        double predicted = 0.0;
        std::size_t running = 0;
    };

    std::vector<Candidate>
    predictAll(const workloads::WorkloadSpec &spec,
               const std::vector<scenario::NodeView> &nodes) const;
};

} // namespace adrias::core

#endif // ADRIAS_CORE_CLUSTER_ORCHESTRATOR_HH
