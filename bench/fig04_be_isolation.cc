/**
 * @file
 * Fig. 4 — Spark execution time in isolation, local vs remote.
 *
 * Expected shape: ~20% mean degradation on remote; nweight and lr close
 * to 2x; gmm and pca under 10%.
 */

#include <iostream>

#include "bench/common.hh"

namespace
{

using namespace adrias;

double
runJob(const workloads::WorkloadSpec &spec, MemoryMode mode)
{
    testbed::Testbed bed;
    bed.setNoise(0.0);
    workloads::WorkloadInstance app(1, spec, mode, 0, 7);
    SimTime now = 0;
    while (!app.finished()) {
        const auto tick = bed.tick({app.load()});
        app.advance(tick.outcomes.at(0), ++now);
    }
    return app.executionTimeSec();
}

} // namespace

int
main()
{
    bench::banner("Fig. 4 — BE execution time in isolation (local vs "
                  "remote)",
                  "~20% average remote degradation; nweight/lr ~2x; "
                  "gmm/pca <10%");

    TextTable table({"benchmark", "local (s)", "remote (s)",
                     "remote/local"});
    double ratio_sum = 0.0;
    for (const auto &spec : workloads::sparkBenchmarks()) {
        const double local = runJob(spec, MemoryMode::Local);
        const double remote = runJob(spec, MemoryMode::Remote);
        const double ratio = remote / local;
        ratio_sum += ratio;
        table.addRow(spec.name, {local, remote, ratio}, 2);
    }
    std::cout << table.toString();
    std::cout << "\nMean remote/local slowdown: "
              << formatDouble(ratio_sum / 17.0, 3)
              << "  (paper: ~1.20)\n";
    return 0;
}
