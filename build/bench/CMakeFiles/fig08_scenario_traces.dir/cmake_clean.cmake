file(REMOVE_RECURSE
  "CMakeFiles/fig08_scenario_traces.dir/fig08_scenario_traces.cc.o"
  "CMakeFiles/fig08_scenario_traces.dir/fig08_scenario_traces.cc.o.d"
  "fig08_scenario_traces"
  "fig08_scenario_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_scenario_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
