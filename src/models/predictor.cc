#include "models/predictor.hh"

#include <sstream>

#include "common/logging.hh"
#include "ml/simd.hh"
#include "obs/obs.hh"
#include "scenario/runner.hh"

namespace adrias::models
{

std::vector<double>
PredictorBase::predictPerformanceBatch(
    WorkloadClass cls, const std::vector<PerfQuery> &queries) const
{
    // Reference semantics for every batched implementation: the loop
    // over the single-row entry point, in input order.
    std::vector<double> predictions;
    predictions.reserve(queries.size());
    for (const PerfQuery &query : queries) {
        if (query.history == nullptr || query.signature == nullptr)
            fatal("predictPerformanceBatch: null query row");
        predictions.push_back(predictPerformance(
            cls, *query.history, *query.signature, query.mode));
    }
    return predictions;
}

Predictor::Predictor(ModelConfig config)
{
    system = std::make_unique<SystemStateModel>(config);
    ModelConfig perf_config = config;
    perf_config.seed = config.seed + 1;
    bestEffort = std::make_unique<PerformanceModel>(FutureKind::Predicted,
                                                    perf_config);
    perf_config.seed = config.seed + 2;
    lc = std::make_unique<PerformanceModel>(FutureKind::Predicted,
                                            perf_config);
}

void
Predictor::train(
    const std::vector<scenario::SystemStateSample> &state_samples,
    const std::vector<scenario::PerformanceSample> &be_samples,
    const std::vector<scenario::PerformanceSample> &lc_samples)
{
    // Training always runs the bitwise-deterministic scalar tier, even
    // under ADRIAS_KERNEL_TIER=vector: trained weights feed checkpoints
    // and golden scenarios, so they must not drift with the inference
    // tier (DESIGN.md §16).
    const ml::ScopedKernelTier scalar_pin(ml::KernelTier::Scalar);
    system->train(state_samples);
    bestEffort->train(be_samples, system.get());
    if (lc_samples.size() >= 4) {
        lc->train(lc_samples, system.get());
        lcTrained = true;
    } else {
        logWarn("Predictor: too few LC samples; LC model not trained");
    }
    isTrained = true;
}

ml::Matrix
Predictor::predictSystemState(const telemetry::Watcher &watcher) const
{
#if ADRIAS_OBS_ENABLED
    obs::WallSpan infer_span("infer_system_state", "predictor");
#endif
    if (!isTrained)
        fatal("Predictor::predictSystemState before train()");
    const auto window = watcher.binnedWindow(
        scenario::ScenarioRunner::kWindowSec,
        scenario::ScenarioRunner::kWindowBins);
    return system->predict(window);
}

double
Predictor::predictPerformance(WorkloadClass cls,
                              const std::vector<ml::Matrix> &history,
                              const std::vector<ml::Matrix> &signature,
                              MemoryMode mode) const
{
    if (!isTrained)
        fatal("Predictor::predictPerformance before train()");
#if ADRIAS_OBS_ENABLED
    obs::WallSpan infer_span("infer_performance", "predictor");
    if (obs::enabled()) {
        static obs::Counter &inferences =
            obs::MetricsRegistry::global().counter(
                "predictor.inferences");
        inferences.add();
    }
#endif
    const ml::Matrix future = system->predict(history);
    switch (cls) {
      case WorkloadClass::BestEffort:
        return bestEffort->predict(history, signature, mode, future);
      case WorkloadClass::LatencyCritical:
        if (!lcTrained)
            fatal("Predictor: LC model was not trained");
        return lc->predict(history, signature, mode, future);
      case WorkloadClass::Interference:
        fatal("Predictor: no performance model for trashers");
    }
    panic("unknown WorkloadClass");
}

std::vector<double>
Predictor::predictPerformanceBatch(
    WorkloadClass cls, const std::vector<PerfQuery> &queries) const
{
    if (!isTrained)
        fatal("Predictor::predictPerformanceBatch before train()");
    if (queries.empty())
        return {};
#if ADRIAS_OBS_ENABLED
    obs::WallSpan infer_span("infer_performance_batch", "predictor");
    if (obs::enabled()) {
        static obs::Counter &inferences =
            obs::MetricsRegistry::global().counter(
                "predictor.inferences");
        inferences.add(queries.size());
    }
#endif
    PerformanceModel *model = nullptr;
    switch (cls) {
      case WorkloadClass::BestEffort:
        model = bestEffort.get();
        break;
      case WorkloadClass::LatencyCritical:
        if (!lcTrained)
            fatal("Predictor: LC model was not trained");
        model = lc.get();
        break;
      case WorkloadClass::Interference:
        fatal("Predictor: no performance model for trashers");
    }

    // One fused system-state forward over all histories...
    std::vector<const std::vector<ml::Matrix> *> histories;
    histories.reserve(queries.size());
    for (const PerfQuery &query : queries) {
        if (query.history == nullptr || query.signature == nullptr)
            fatal("Predictor::predictPerformanceBatch: null query row");
        histories.push_back(query.history);
    }
    const std::vector<ml::Matrix> futures =
        system->predictBatch(histories);

    // ... then one fused performance forward over all queries.
    std::vector<PerformanceModel::Query> rows;
    rows.reserve(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i)
        rows.push_back({queries[i].history, queries[i].signature,
                        queries[i].mode, &futures[i]});
    return model->predictBatch(rows);
}

void
Predictor::saveState(io::BinaryWriter &out) const
{
    out.writeBool(isTrained);
    out.writeBool(lcTrained);
    if (!isTrained)
        return;
    const auto streamModel = [&out](auto &model) {
        std::ostringstream text;
        model.saveToStream(text);
        out.writeString(text.str());
    };
    streamModel(*system);
    streamModel(*bestEffort);
    if (lcTrained)
        streamModel(*lc);
}

Result<void>
Predictor::restoreState(io::BinaryReader &in)
{
    const bool trainedFlag = in.readBool();
    const bool lcFlag = in.readBool();
    if (!in.ok())
        return makeError(ErrorCode::Truncated,
                         "Predictor: truncated snapshot flags");
    if (!trainedFlag) {
        if (lcFlag)
            return makeError(ErrorCode::BadNumber,
                             "Predictor: LC trained without base stack");
        isTrained = false;
        lcTrained = false;
        return {};
    }
    const auto restoreModel = [&in](auto &model) {
        const std::string text = in.readString();
        if (!in.ok())
            return false;
        std::istringstream stream(text);
        model.loadFromStream(stream);
        return true;
    };
    if (!restoreModel(*system) || !restoreModel(*bestEffort))
        return makeError(ErrorCode::Truncated,
                         "Predictor: truncated model checkpoint");
    if (lcFlag && !restoreModel(*lc))
        return makeError(ErrorCode::Truncated,
                         "Predictor: truncated LC model checkpoint");
    isTrained = true;
    lcTrained = lcFlag;
    return {};
}

} // namespace adrias::models
