/**
 * @file
 * Randomized property tests for RackTestbed: seeded random topologies,
 * load mixes, faults and allocation sequences, with every conservation
 * law re-derived by hand (independently of checkRackTickInvariants) so
 * the production checker and the model cannot share a common bug.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "testbed/rack.hh"
#include "testbed/topology.hh"

namespace adrias::testbed
{
namespace
{

constexpr double kTol = 1e-9;

double
relTol(double reference)
{
    return kTol + kTol * std::fabs(reference);
}

/** A random validated topology: 1-4 nodes, 1-4 servers, random links. */
Topology
randomTopology(Rng &rng)
{
    const auto n_nodes = static_cast<std::size_t>(rng.uniformInt(1, 4));
    const auto n_servers = static_cast<std::size_t>(rng.uniformInt(1, 4));
    Topology topo("random");
    for (std::size_t n = 0; n < n_nodes; ++n) {
        std::string name = "n";
        name += std::to_string(n);
        topo.addNode({std::move(name), {}});
    }
    for (std::size_t s = 0; s < n_servers; ++s) {
        std::string name = "s";
        name += std::to_string(s);
        topo.addServer({std::move(name), rng.uniform(0.0, 128.0),
                        rng.uniform(2.0, 20.0), {}});
    }
    const auto &profiles = allLinkProfiles();
    bool any = false;
    for (std::size_t n = 0; n < n_nodes; ++n)
        for (std::size_t s = 0; s < n_servers; ++s)
            if (rng.bernoulli(0.6)) {
                const auto pick = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(profiles.size()) - 1));
                topo.addLink(n, s, profiles[pick]);
                any = true;
            }
    if (!any)
        topo.addLink(0, 0, kThymesisFlowProfile);
    return topo.validate();
}

/** Random loads: local per node, remote per link, varied pressure. */
std::vector<LoadDescriptor>
randomLoads(Rng &rng, const Topology &topo)
{
    std::vector<LoadDescriptor> loads;
    DeploymentId id = 1;
    for (std::size_t n = 0; n < topo.nodeCount(); ++n) {
        const auto count = static_cast<std::size_t>(rng.uniformInt(0, 2));
        for (std::size_t k = 0; k < count; ++k) {
            LoadDescriptor load;
            load.id = id++;
            load.mode = MemoryMode::Local;
            load.node = n;
            load.cpuCores = rng.uniform(0.5, 32.0);
            load.cpuFraction = rng.uniform(0.1, 0.9);
            load.memDemandGBps = rng.uniform(0.0, 12.0);
            load.latencyBoundFraction = rng.uniform(0.0, 0.6);
            load.cacheFootprintMb = rng.uniform(0.1, 15.0);
            load.baseHitRate = rng.uniform(0.5, 0.95);
            loads.push_back(load);
        }
    }
    for (std::size_t l = 0; l < topo.linkCount(); ++l) {
        const auto count = static_cast<std::size_t>(rng.uniformInt(0, 2));
        for (std::size_t k = 0; k < count; ++k) {
            LoadDescriptor load;
            load.id = id++;
            load.mode = MemoryMode::Remote;
            load.node = topo.link(l).node;
            load.server = topo.link(l).server;
            load.link = l;
            load.cpuCores = rng.uniform(0.5, 16.0);
            load.cpuFraction = rng.uniform(0.1, 0.9);
            // Up to ~3x the link cap so saturation is common.
            load.memDemandGBps = rng.uniform(
                0.0, 3.0 * topo.link(l).profile.bandwidthGBps);
            load.latencyBoundFraction = rng.uniform(0.0, 0.6);
            load.cacheFootprintMb = rng.uniform(0.1, 15.0);
            load.baseHitRate = rng.uniform(0.5, 0.95);
            loads.push_back(load);
        }
    }
    return loads;
}

/** Hand re-derivation of every conservation law for one tick. */
void
checkByHand(const Topology &topo, const std::vector<LoadDescriptor> &loads,
            const RackTickResult &result,
            const std::vector<double> &bw_scale)
{
    std::vector<double> link_sum(topo.linkCount(), 0.0);
    std::vector<double> server_sum(topo.serverCount(), 0.0);
    std::vector<double> node_sum(topo.nodeCount(), 0.0);
    for (std::size_t i = 0; i < loads.size(); ++i) {
        const double achieved = result.outcomes[i].achievedGBps;
        ASSERT_GE(achieved, 0.0);
        ASSERT_LE(achieved, loads[i].memDemandGBps + relTol(achieved));
        ASSERT_GE(result.outcomes[i].slowdown, 1.0);
        ASSERT_TRUE(std::isfinite(result.outcomes[i].slowdown));
        if (loads[i].mode == MemoryMode::Remote) {
            link_sum[loads[i].link] += achieved;
            server_sum[loads[i].server] += achieved;
        }
        node_sum[loads[i].node] += achieved;
    }
    for (std::size_t l = 0; l < topo.linkCount(); ++l) {
        const LinkTickStats &stats = result.links[l];
        const double cap = topo.link(l).profile.bandwidthGBps *
                           (l < bw_scale.size() ? bw_scale[l] : 1.0);
        ASSERT_NEAR(stats.achievedGBps, link_sum[l], relTol(link_sum[l]));
        ASSERT_NEAR(stats.offeredGBps,
                    stats.achievedGBps + stats.queuedGBps,
                    relTol(stats.offeredGBps));
        ASSERT_LE(link_sum[l], cap + relTol(cap));
        ASSERT_GE(stats.queuedGBps, 0.0);
    }
    for (std::size_t s = 0; s < topo.serverCount(); ++s) {
        ASSERT_NEAR(result.servers[s].achievedGBps, server_sum[s],
                    relTol(server_sum[s]));
        ASSERT_LE(server_sum[s], topo.server(s).bandwidthGBps +
                                     relTol(topo.server(s).bandwidthGBps));
    }
    for (std::size_t n = 0; n < topo.nodeCount(); ++n) {
        const double cap = topo.node(n).local.localBwGBps;
        ASSERT_NEAR(result.nodes[n].localTrafficGBps, node_sum[n],
                    relTol(node_sum[n]));
        ASSERT_LE(node_sum[n], cap + relTol(cap));
    }
}

TEST(RackProperties, RandomizedConservationHolds)
{
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        Rng rng(seed);
        const Topology topo = randomTopology(rng);
        RackTestbed rack(topo, seed);
        rack.setNoise(0.0);
        for (int t = 0; t < 4; ++t) {
            const auto loads = randomLoads(rng, topo);
            const auto result = rack.tick(loads);
            checkByHand(topo, loads, result, {});
            if (::testing::Test::HasFatalFailure())
                FAIL() << "seed=" << seed << " tick=" << t;
        }
    }
}

TEST(RackProperties, RandomizedConservationHoldsUnderFaults)
{
    for (std::uint64_t seed = 100; seed <= 120; ++seed) {
        Rng rng(seed);
        const Topology topo = randomTopology(rng);
        RackTestbed rack(topo, seed);
        rack.setNoise(0.0);
        std::vector<double> bw_scale(topo.linkCount(), 1.0);
        for (std::size_t l = 0; l < topo.linkCount(); ++l)
            if (rng.bernoulli(0.5)) {
                bw_scale[l] = rng.uniform(0.1, 1.0);
                rack.setLinkFault(l, bw_scale[l], rng.uniform(1.0, 4.0));
            }
        for (int t = 0; t < 4; ++t) {
            const auto loads = randomLoads(rng, topo);
            const auto result = rack.tick(loads);
            checkByHand(topo, loads, result, bw_scale);
            if (::testing::Test::HasFatalFailure())
                FAIL() << "seed=" << seed << " tick=" << t;
        }
    }
}

TEST(RackProperties, RandomizedAllocationAccounting)
{
    for (std::uint64_t seed = 200; seed <= 215; ++seed) {
        Rng rng(seed);
        const Topology topo = randomTopology(rng);
        RackTestbed rack(topo, seed);
        // Track expected allocations through a random grant/release mix.
        std::vector<std::vector<double>> granted(topo.serverCount());
        for (int step = 0; step < 60; ++step) {
            const auto s = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(topo.serverCount()) - 1));
            if (rng.bernoulli(0.6)) {
                const double gb = rng.uniform(0.0, 48.0);
                if (rack.allocate(s, gb).ok())
                    granted[s].push_back(gb);
            } else if (!granted[s].empty()) {
                rack.release(s, granted[s].back());
                granted[s].pop_back();
            }
            double expected = 0.0;
            for (double gb : granted[s])
                expected += gb;
            ASSERT_NEAR(rack.allocatedGb(s), expected, relTol(expected))
                << "seed=" << seed << " step=" << step;
            ASSERT_LE(rack.allocatedGb(s),
                      topo.server(s).capacityGb + 1e-6);
            ASSERT_NEAR(rack.allocatedGb(s) + rack.availableGb(s),
                        topo.server(s).capacityGb,
                        relTol(topo.server(s).capacityGb));
        }
    }
}

TEST(RackProperties, RandomizedCheckpointMidstream)
{
    for (std::uint64_t seed = 300; seed <= 310; ++seed) {
        Rng rng(seed);
        const Topology topo = randomTopology(rng);
        RackTestbed original(topo, seed);
        original.setNoise(0.015);
        const auto loads = randomLoads(rng, topo);
        const auto warmup = static_cast<int>(rng.uniformInt(0, 5));
        for (int t = 0; t < warmup; ++t)
            original.tick(loads);

        io::BinaryWriter out;
        original.saveState(out);
        RackTestbed restored(topo, seed + 999);
        io::BinaryReader in(out.data());
        ASSERT_TRUE(restored.restoreState(in).ok()) << "seed=" << seed;

        const auto next_a = original.tick(loads);
        const auto next_b = restored.tick(loads);
        for (std::size_t n = 0; n < topo.nodeCount(); ++n)
            for (std::size_t e = 0; e < kNumPerfEvents; ++e)
                ASSERT_EQ(next_a.nodes[n].counters[e],
                          next_b.nodes[n].counters[e])
                    << "seed=" << seed;
    }
}

TEST(RackProperties, CumulativeTotalsMatchTickSums)
{
    for (std::uint64_t seed = 400; seed <= 410; ++seed) {
        Rng rng(seed);
        const Topology topo = randomTopology(rng);
        RackTestbed rack(topo, seed);
        rack.setNoise(0.0);
        std::vector<double> offered(topo.linkCount(), 0.0);
        std::vector<double> delivered(topo.linkCount(), 0.0);
        for (int t = 0; t < 5; ++t) {
            const auto loads = randomLoads(rng, topo);
            const auto result = rack.tick(loads);
            for (std::size_t l = 0; l < topo.linkCount(); ++l) {
                offered[l] += result.links[l].offeredGBps;
                delivered[l] += result.links[l].achievedGBps;
            }
        }
        for (std::size_t l = 0; l < topo.linkCount(); ++l) {
            ASSERT_NEAR(rack.linkTotals(l).offeredGb, offered[l],
                        relTol(offered[l]));
            ASSERT_NEAR(rack.linkTotals(l).deliveredGb, delivered[l],
                        relTol(delivered[l]));
            ASSERT_NEAR(rack.linkTotals(l).offeredGb,
                        rack.linkTotals(l).deliveredGb +
                            rack.linkTotals(l).queuedGb,
                        relTol(offered[l]));
        }
    }
}

} // namespace
} // namespace adrias::testbed
