/**
 * @file
 * Inline transcendentals for the ML hot path (DESIGN.md §11).
 *
 * The LSTM gate loop evaluates five sigmoid/tanh per cell per step;
 * through libm each is an opaque PLT call that blocks inlining and
 * vectorization and dominates the forward pass.  These replacements
 * use the textbook reduction exp(x) = 2^n * exp(r) with a two-part
 * ln 2, a degree-12 Taylor polynomial on |r| <= ln2/2 (error below
 * one ulp), and bit-level 2^n scaling, so the whole gate computation
 * inlines into one straight-line loop.
 *
 * They are NOT bitwise-identical to libm (last-ulp differences), so
 * every consumer of a nonlinearity must go through these helpers —
 * the fused and reference LSTM paths, and the activation layers —
 * which keeps fused == reference exactly (same scalar function, same
 * evaluation order).
 *
 * Domain notes: expNeg requires x <= 0 (the sign-split callers only
 * ever need decaying exponentials), returns 0 below -708 (the libm
 * result there is at most 3e-308), propagates NaN, and is exact at 0.
 */

#ifndef ADRIAS_ML_FASTMATH_HH
#define ADRIAS_ML_FASTMATH_HH

#include <bit>
#include <cmath>
#include <cstdint>

namespace adrias::ml::fastmath
{

/** exp(x) for x <= 0; 0 below -708; NaN propagates. */
inline double
expNeg(double x)
{
    if (!(x > -708.0))
        return std::isnan(x) ? x : 0.0;
    // Round x/ln2 to the nearest integer with the 1.5*2^52 trick:
    // adding the magic constant pushes the integer part into the low
    // mantissa bits (round-to-nearest-even), branch-free.
    constexpr double kMagic = 6755399441055744.0; // 1.5 * 2^52
    constexpr double kLog2e = 1.4426950408889634074;
    constexpr double kLn2Hi = 6.93147180369123816490e-01;
    constexpr double kLn2Lo = 1.90821492927058770002e-10;
    const double shifted = x * kLog2e + kMagic;
    const auto n = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(std::bit_cast<std::uint64_t>(shifted)));
    const double nd = shifted - kMagic;
    const double r = (x - nd * kLn2Hi) - nd * kLn2Lo;

    // Taylor to r^12/12! on |r| <= ln2/2: remainder < 2e-16 relative.
    double p = 1.0 / 479001600.0; // 1/12!
    p = p * r + 1.0 / 39916800.0;
    p = p * r + 1.0 / 3628800.0;
    p = p * r + 1.0 / 362880.0;
    p = p * r + 1.0 / 40320.0;
    p = p * r + 1.0 / 5040.0;
    p = p * r + 1.0 / 720.0;
    p = p * r + 1.0 / 120.0;
    p = p * r + 1.0 / 24.0;
    p = p * r + 1.0 / 6.0;
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;

    // 2^n by exponent-field construction: x > -708 keeps n >= -1021,
    // so the scale and the product both stay normal.
    const double scale = std::bit_cast<double>(
        static_cast<std::uint64_t>(1023 + n) << 52);
    return p * scale;
}

/** expm1(r) for -0.25 <= r <= 0, cancellation-free (no 1-e subtract). */
inline double
expm1SmallNeg(double r)
{
    // Taylor through r^12/12!; remainder < 1e-17 of the result for
    // |r| <= 0.25.
    double p = 1.0 / 479001600.0;
    p = p * r + 1.0 / 39916800.0;
    p = p * r + 1.0 / 3628800.0;
    p = p * r + 1.0 / 362880.0;
    p = p * r + 1.0 / 40320.0;
    p = p * r + 1.0 / 5040.0;
    p = p * r + 1.0 / 720.0;
    p = p * r + 1.0 / 120.0;
    p = p * r + 1.0 / 24.0;
    p = p * r + 1.0 / 6.0;
    p = p * r + 0.5;
    p = p * r + 1.0;
    return p * r;
}

/** Logistic sigmoid, sign-split so the exponential always decays. */
inline double
sigmoid(double x)
{
    const double e = expNeg(-std::fabs(x));
    return x >= 0.0 ? 1.0 / (1.0 + e) : e / (1.0 + e);
}

/** tanh via exp(-2|x|); cancellation-free near zero via expm1. */
inline double
tanh(double x)
{
    const double a2 = 2.0 * std::fabs(x);
    double t;
    if (a2 <= 0.25) {
        // (1-e)/(1+e) == -em1/(2+em1); avoids the 1-e cancellation
        // that would cost ~half the digits for small |x|.
        const double em1 = expm1SmallNeg(-a2);
        t = -em1 / (2.0 + em1);
    } else {
        const double e = expNeg(-a2);
        t = (1.0 - e) / (1.0 + e);
    }
    return std::copysign(t, x);
}

} // namespace adrias::ml::fastmath

#endif // ADRIAS_ML_FASTMATH_HH
