/**
 * @file
 * Micro-benchmarks for the testbed simulator: contention-resolution
 * throughput per tick and full-scenario execution rate.  Not a paper
 * figure — establishes how cheaply the 72x1h trace-collection protocol
 * can be reproduced, and feeds the perf-regression gate
 * (tools/bench_compare against bench/baselines/BENCH_sim.json).
 */

#include <vector>

#include "bench/microbench.hh"
#include "common/threadpool.hh"
#include "scenario/runner.hh"
#include "scenario/signature.hh"
#include "testbed/testbed.hh"
#include "workloads/spec.hh"

namespace
{

using namespace adrias;
using bench::micro::Result;

Result
benchTestbedTick(std::size_t apps)
{
    testbed::Testbed bed;
    std::vector<testbed::LoadDescriptor> loads;
    const auto &sparks = workloads::sparkBenchmarks();
    for (std::size_t i = 0; i < apps; ++i) {
        loads.push_back(sparks[i % sparks.size()].toLoad(
            static_cast<DeploymentId>(i),
            i % 2 ? MemoryMode::Remote : MemoryMode::Local));
    }
    return bench::micro::measure(
        "testbed_tick_apps" + std::to_string(apps),
        [&] { bed.tick(loads); });
}

Result
benchScenarioMinute()
{
    // One simulated minute of a moderately congested scenario; fewer
    // iterations than the ns-scale kernels, it runs for milliseconds.
    return bench::micro::measure(
        "scenario_minute",
        [] {
            scenario::ScenarioConfig config;
            config.durationSec = 60;
            config.spawnMinSec = 5;
            config.spawnMaxSec = 20;
            config.seed = 42;
            scenario::ScenarioRunner runner(config);
            scenario::RandomPlacement policy(43);
            runner.run(policy);
        },
        bench::micro::envCount("ADRIAS_BENCH_ITERS", 15),
        bench::micro::envCount("ADRIAS_BENCH_WARMUP", 2));
}

Result
benchSignatureCollection()
{
    const auto &spec = workloads::sparkBenchmark("gmm");
    return bench::micro::measure(
        "signature_collection",
        [&] { scenario::collectSignature(spec); },
        bench::micro::envCount("ADRIAS_BENCH_ITERS", 15),
        bench::micro::envCount("ADRIAS_BENCH_WARMUP", 2));
}

} // namespace

int
main()
{
    ScopedThreadOverride serial(1);

    std::vector<bench::micro::Result> results;
    results.push_back(benchTestbedTick(1));
    results.push_back(benchTestbedTick(8));
    results.push_back(benchTestbedTick(35));
    results.push_back(benchScenarioMinute());
    results.push_back(benchSignatureCollection());

    bench::micro::printResults("sim_speed", results);
    const std::string path = bench::micro::jsonPath("BENCH_sim.json");
    bench::micro::writeJson(path, "sim_speed", results);
    std::cout << "JSON written to " << path << "\n";
    return 0;
}
