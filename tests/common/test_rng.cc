/** @file Unit and statistical tests for common/rng. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/io/binary.hh"
#include "common/rng.hh"

namespace adrias
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.nextU64() == b.nextU64());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversInclusiveRange)
{
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng rng(11);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(9, 9), 9);
}

TEST(Rng, GaussianMomentsAreSane)
{
    Rng rng(13);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, GaussianScaledMoments)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double e = rng.exponential(4.0);
        EXPECT_GE(e, 0.0);
        sum += e;
    }
    EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ExponentialRejectsNonPositiveMean)
{
    Rng rng(19);
    EXPECT_THROW(rng.exponential(0.0), std::logic_error);
    EXPECT_THROW(rng.exponential(-1.0), std::logic_error);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRateApproximatesProbability)
{
    Rng rng(29);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, WeightedIndexHonoursWeights)
{
    Rng rng(31);
    std::vector<double> weights{1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weightedIndex(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsDegenerateInput)
{
    Rng rng(31);
    std::vector<double> zeros{0.0, 0.0};
    EXPECT_THROW(rng.weightedIndex(zeros), std::logic_error);
    std::vector<double> negative{1.0, -0.5};
    EXPECT_THROW(rng.weightedIndex(negative), std::logic_error);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(37);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (parent.nextU64() == child.nextU64());
    EXPECT_LT(same, 2);
}

TEST(Rng, SaveRestoreResumesIdenticalStream)
{
    Rng rng(20230228);
    // Mixed draws advance both the raw stream and Box-Muller caching.
    for (int i = 0; i < 17; ++i) {
        rng.nextU64();
        rng.gaussian();
        rng.uniformInt(0, 100);
    }

    io::BinaryWriter out;
    rng.saveState(out);

    std::vector<std::uint64_t> expected;
    std::vector<double> expectedGauss;
    for (int i = 0; i < 64; ++i) {
        expected.push_back(rng.nextU64());
        expectedGauss.push_back(rng.gaussian());
    }

    Rng restored(1); // deliberately different seed: state must win
    io::BinaryReader in(out.data());
    restored.restoreState(in);
    ASSERT_TRUE(in.ok());
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(restored.nextU64(), expected[i]) << i;
        // Bitwise: restore must also carry the cached Gaussian half.
        EXPECT_EQ(restored.gaussian(), expectedGauss[i]) << i;
    }
}

TEST(Rng, SaveRestorePreservesPendingGaussianCache)
{
    Rng rng(7);
    rng.gaussian(); // leaves the Box-Muller pair half-consumed

    io::BinaryWriter out;
    rng.saveState(out);
    const double expected = rng.gaussian(); // the cached half

    Rng restored(7);
    io::BinaryReader in(out.data());
    restored.restoreState(in);
    EXPECT_EQ(restored.gaussian(), expected);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(41);
    std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
    auto copy = items;
    rng.shuffle(items);
    std::sort(items.begin(), items.end());
    EXPECT_EQ(items, copy);
}

} // namespace
} // namespace adrias
