file(REMOVE_RECURSE
  "CMakeFiles/train_and_predict.dir/train_and_predict.cc.o"
  "CMakeFiles/train_and_predict.dir/train_and_predict.cc.o.d"
  "train_and_predict"
  "train_and_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_and_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
