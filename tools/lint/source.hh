/**
 * @file
 * Shared source-text scanning layer for the project's static tooling.
 *
 * Both the token-level lint (tools/lint) and the cross-file semantic
 * analyzer (tools/analyze) work on the same preprocessed view of a
 * translation unit: lines with comments and string/char literals
 * blanked out (column-preserving), an identifier scanner, and the
 * NOLINT suppression machinery.  Keeping them here means one
 * definition of "what counts as code" and one escape syntax across
 * every tool.
 *
 * Suppression syntax (shared by lint rules and analyzer passes):
 *
 *   code;                  // NOLINT            blanket, this line
 *   code;                  // NOLINT(rule)      one rule, this line
 *   code;                  // NOLINT(a,b)       several rules
 *   // NOLINTNEXTLINE(rule)                     the following line
 *   // NOLINTBEGIN(rule)                        region start
 *   ...                                         every line in between
 *   // NOLINTEND(rule)                          region end (inclusive)
 *
 * Rule names inside the parens are comma-separated and matched
 * exactly after trimming whitespace — "NOLINT(rand)" does NOT
 * suppress "raw-rand".  A bare NOLINTBEGIN (no parens) opens a
 * blanket region; an unmatched NOLINTBEGIN extends to end of file.
 */

#ifndef ADRIAS_TOOLS_LINT_SOURCE_HH
#define ADRIAS_TOOLS_LINT_SOURCE_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace adrias::lint
{

/** Split into lines, dropping '\n' and '\r' terminators. */
std::vector<std::string> splitLines(const std::string &content);

/**
 * Blank out comments and string/char literals, preserving line and
 * column structure so findings report accurate positions.  Raw string
 * literals are not understood (none exist in this tree).
 */
std::vector<std::string>
stripCommentsAndStrings(const std::vector<std::string> &lines);

/** [A-Za-z0-9_] — the C++ identifier alphabet. */
bool isIdentChar(char c);

/** All identifiers in a stripped line, with their start columns. */
std::vector<std::pair<std::string, std::size_t>>
identifiersIn(const std::string &line);

/** First non-whitespace character at/after `pos`, or '\0'. */
char nextNonSpace(const std::string &line, std::size_t pos);

/** Copy of `line` with leading/trailing whitespace removed. */
std::string trimmed(const std::string &line);

bool startsWith(const std::string &text, const std::string &prefix);
bool endsWith(const std::string &text, const std::string &suffix);

/**
 * Parsed NOLINT escapes of one file.
 *
 * Construct from the *raw* lines (comments intact — the markers live
 * in comments), then ask whether a given (line, rule) finding is
 * suppressed.
 */
class Suppressions
{
  public:
    explicit Suppressions(const std::vector<std::string> &raw_lines);

    /**
     * @param line_index 0-based index of the offending line.
     * @param rule rule/pass id the finding belongs to.
     * @return true when a NOLINT on the line, a NOLINTNEXTLINE on the
     *         line above, or an enclosing NOLINTBEGIN/END region names
     *         `rule` (or is a blanket escape).
     */
    bool suppressed(std::size_t line_index, const std::string &rule) const;

  private:
    /** One same-line or next-line marker. */
    struct Marker
    {
        std::size_t line = 0;        ///< 0-based line the marker is on
        bool nextLineOnly = false;   ///< NOLINTNEXTLINE vs NOLINT
        std::vector<std::string> rules; ///< empty: blanket
    };

    /** One NOLINTBEGIN..NOLINTEND region (lines inclusive). */
    struct Region
    {
        std::size_t begin = 0;
        std::size_t end = 0; ///< inclusive; EOF when unmatched
        std::vector<std::string> rules; ///< empty: blanket
    };

    std::vector<Marker> markers;
    std::vector<Region> regions;
};

} // namespace adrias::lint

#endif // ADRIAS_TOOLS_LINT_SOURCE_HH
