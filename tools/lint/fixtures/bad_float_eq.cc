// Lint fixture: deliberate float-equal violations (applies under a
// src/ label).  Never compiled.

bool
classify(double x, double y, int n)
{
    bool a = x == 0.0;     // line 7: float-equal
    bool b = 1e-9 != y;    // line 8: float-equal (exponent literal)
    bool c = x == .5;      // line 9: float-equal (leading-dot literal)
    bool d = n == 0;       // fine: integer literal
    bool e = x <= 0.0;     // fine: ordering, not equality
    bool f = x == y;       // fine: no literal operand
    // NOLINTNEXTLINE(float-equal)
    bool g = y == 2.0;
    return a || b || c || d || e || f || g;
}
