file(REMOVE_RECURSE
  "CMakeFiles/test_ml.dir/ml/test_layernorm.cc.o"
  "CMakeFiles/test_ml.dir/ml/test_layernorm.cc.o.d"
  "CMakeFiles/test_ml.dir/ml/test_layers.cc.o"
  "CMakeFiles/test_ml.dir/ml/test_layers.cc.o.d"
  "CMakeFiles/test_ml.dir/ml/test_lstm.cc.o"
  "CMakeFiles/test_ml.dir/ml/test_lstm.cc.o.d"
  "CMakeFiles/test_ml.dir/ml/test_matrix.cc.o"
  "CMakeFiles/test_ml.dir/ml/test_matrix.cc.o.d"
  "CMakeFiles/test_ml.dir/ml/test_training.cc.o"
  "CMakeFiles/test_ml.dir/ml/test_training.cc.o.d"
  "test_ml"
  "test_ml.pdb"
  "test_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
