/**
 * @file
 * End-to-end observability test: run a scenario through the full
 * Watcher → GuardedPredictor → Orchestrator pipeline with obs armed
 * and assert the trace carries events from every instrumented layer
 * (testbed, watcher, predictor, orchestrator, threadpool, scenario)
 * and that the layer counters moved.  With ADRIAS_OBS=OFF the same
 * pipeline must leave the trace and every counter untouched.
 */

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/threadpool.hh"
#include "core/orchestrator.hh"
#include "models/guard.hh"
#include "obs/obs.hh"
#include "scenario/runner.hh"

namespace
{

using namespace adrias;

/** Deterministic stand-in for the trained prediction stack. */
class FakePredictor final : public models::PredictorBase
{
  public:
    ml::Matrix
    predictSystemState(const telemetry::Watcher &watcher) const override
    {
        (void)watcher;
        return ml::Matrix(1, testbed::kNumPerfEvents);
    }

    double
    predictPerformance(WorkloadClass cls,
                       const std::vector<ml::Matrix> &history,
                       const std::vector<ml::Matrix> &signature,
                       MemoryMode mode) const override
    {
        (void)cls;
        (void)history;
        (void)signature;
        // Local slightly ahead of beta-scaled remote: a mix of
        // local/remote decisions over a run.
        return mode == MemoryMode::Local ? 100.0 : 118.0;
    }

    bool trained() const override { return true; }
};

/** One short scenario through the full guarded pipeline. */
scenario::ScenarioResult
runPipeline()
{
    FakePredictor inner;
    models::GuardedPredictor guard(inner);
    scenario::SignatureStore signatures;
    core::AdriasConfig config;
    config.beta = 0.8;
    core::AdriasOrchestrator orchestrator(guard, signatures, config);

    scenario::ScenarioConfig scenario_config;
    // Long enough that first-encounter apps complete their bootstrap
    // runs and later arrivals flow through the model path.
    scenario_config.durationSec = 1500;
    scenario_config.spawnMaxSec = 25;
    scenario_config.seed = 11;
    scenario::ScenarioRunner runner(scenario_config);
    return runner.run(orchestrator);
}

#if ADRIAS_OBS_ENABLED

TEST(ObsPipeline, TraceCarriesEventsFromEveryLayer)
{
    obs::resetAll();
    obs::setEnabled(true);
    obs::Tracer::global().setEnabled(true);

    const scenario::ScenarioResult result = runPipeline();
    ASSERT_FALSE(result.records.empty());

    // Drive the thread pool directly too: on a single-core host the
    // scenario itself never enqueues.
    ThreadPool::global().parallelForEach(64, [](std::size_t) {});

    obs::Tracer::global().setEnabled(false);
    obs::setEnabled(false);

    std::set<std::string> cats;
    for (const obs::TraceEvent &event : obs::Tracer::global().snapshot())
        cats.insert(event.cat);
    EXPECT_TRUE(cats.count("testbed")) << "no testbed events";
    EXPECT_TRUE(cats.count("watcher")) << "no watcher events";
    EXPECT_TRUE(cats.count("predictor")) << "no predictor events";
    EXPECT_TRUE(cats.count("orchestrator")) << "no orchestrator events";
    EXPECT_TRUE(cats.count("threadpool")) << "no threadpool events";
    EXPECT_TRUE(cats.count("scenario")) << "no scenario events";

    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    EXPECT_GT(reg.counter("testbed.ticks").get(), 0u);
    EXPECT_GT(reg.counter("watcher.samples_accepted").get(), 0u);
    EXPECT_GT(reg.counter("predictor.calls").get(), 0u);
    EXPECT_GT(reg.counter("orchestrator.decisions").get(), 0u);
    EXPECT_GT(reg.counter("scenario.ticks").get(), 0u);
    EXPECT_GT(reg.counter("threadpool.chunks").get(), 0u);
    EXPECT_GT(reg.histogram("predictor.latency_ms").snapshot().count, 0u);

    // Placement instants carry the full comparison operands.
    bool saw_operands = false;
    for (const obs::TraceEvent &event : obs::Tracer::global().snapshot()) {
        if (event.name != "place")
            continue;
        std::set<std::string> keys;
        for (const obs::TraceArg &a : event.args)
            keys.insert(a.key);
        EXPECT_TRUE(keys.count("t_local"));
        EXPECT_TRUE(keys.count("beta"));
        EXPECT_TRUE(keys.count("t_remote"));
        EXPECT_TRUE(keys.count("p99_remote"));
        EXPECT_TRUE(keys.count("qos"));
        saw_operands = true;
        break;
    }
    EXPECT_TRUE(saw_operands) << "no placement instant recorded";

    obs::resetAll();
}

TEST(ObsPipeline, DisarmedRunRecordsNothing)
{
    obs::resetAll();
    obs::setEnabled(false);
    obs::Tracer::global().setEnabled(false);

    const scenario::ScenarioResult result = runPipeline();
    ASSERT_FALSE(result.records.empty());

    EXPECT_EQ(obs::Tracer::global().eventCount(), 0u);
    EXPECT_EQ(obs::MetricsRegistry::global()
                  .counter("orchestrator.decisions")
                  .get(),
              0u);
}

#else // !ADRIAS_OBS_ENABLED

TEST(ObsPipeline, CompiledOutPipelineLeavesNoTrace)
{
    obs::setEnabled(true); // must be inert
    obs::Tracer::global().setEnabled(true);

    const scenario::ScenarioResult result = runPipeline();
    ASSERT_FALSE(result.records.empty());

    EXPECT_EQ(obs::Tracer::global().eventCount(), 0u);
    EXPECT_EQ(obs::MetricsRegistry::global()
                  .counter("orchestrator.decisions")
                  .get(),
              0u);
}

#endif // ADRIAS_OBS_ENABLED

} // namespace
