# Empty dependencies file for orchestrate_datacenter.
# This may be replaced when dependencies are built.
