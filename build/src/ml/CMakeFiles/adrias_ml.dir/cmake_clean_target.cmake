file(REMOVE_RECURSE
  "libadrias_ml.a"
)
