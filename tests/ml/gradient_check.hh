/**
 * @file
 * Central-difference gradient checking shared by the ML layer tests.
 */

#ifndef ADRIAS_TESTS_ML_GRADIENT_CHECK_HH
#define ADRIAS_TESTS_ML_GRADIENT_CHECK_HH

#include <cmath>
#include <functional>

#include "ml/matrix.hh"

namespace adrias::ml::testutil
{

/**
 * Compare an analytic gradient against central differences of a scalar
 * function of one tensor.
 *
 * @param value tensor at which to evaluate (perturbed in place and
 *        restored).
 * @param analytic analytic dLoss/dValue, same shape.
 * @param loss re-evaluates the scalar loss for the current tensor.
 * @param epsilon perturbation step.
 * @return largest relative error across elements.
 */
inline double
maxGradientError(Matrix &value, const Matrix &analytic,
                 const std::function<double()> &loss,
                 double epsilon = 1e-5)
{
    double worst = 0.0;
    for (std::size_t i = 0; i < value.size(); ++i) {
        const double saved = value.raw()[i];
        value.raw()[i] = saved + epsilon;
        const double up = loss();
        value.raw()[i] = saved - epsilon;
        const double down = loss();
        value.raw()[i] = saved;
        const double numeric = (up - down) / (2.0 * epsilon);
        const double a = analytic.raw()[i];
        const double scale =
            std::max({std::fabs(numeric), std::fabs(a), 1e-8});
        worst = std::max(worst, std::fabs(numeric - a) / scale);
    }
    return worst;
}

} // namespace adrias::ml::testutil

#endif // ADRIAS_TESTS_ML_GRADIENT_CHECK_HH
