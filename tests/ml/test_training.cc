/** @file End-to-end training tests: losses, optimizers, convergence. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "ml/dense.hh"
#include "ml/loss.hh"
#include "ml/lstm.hh"
#include "ml/optimizer.hh"
#include "ml/scaler.hh"
#include "ml/sequential.hh"
#include "ml/serialize.hh"

namespace adrias::ml
{
namespace
{

TEST(MseLoss, ValueAndGradient)
{
    Matrix pred(1, 2, {1.0, 3.0});
    Matrix target(1, 2, {0.0, 1.0});
    Matrix grad;
    const double loss = mseLoss(pred, target, &grad);
    EXPECT_DOUBLE_EQ(loss, (1.0 + 4.0) / 2.0);
    EXPECT_DOUBLE_EQ(grad.at(0, 0), 1.0);  // 2*1/2
    EXPECT_DOUBLE_EQ(grad.at(0, 1), 2.0);  // 2*2/2
}

TEST(MseLoss, ShapeMismatchPanics)
{
    EXPECT_THROW(mseLoss(Matrix(1, 2), Matrix(2, 1)), std::logic_error);
}

TEST(HuberLoss, QuadraticInsideDelta)
{
    Matrix pred(1, 1, {0.5});
    Matrix target(1, 1, {0.0});
    Matrix grad;
    const double loss = huberLoss(pred, target, 1.0, &grad);
    EXPECT_DOUBLE_EQ(loss, 0.125);
    EXPECT_DOUBLE_EQ(grad.at(0, 0), 0.5);
}

TEST(HuberLoss, LinearOutsideDelta)
{
    Matrix pred(1, 1, {3.0});
    Matrix target(1, 1, {0.0});
    Matrix grad;
    const double loss = huberLoss(pred, target, 1.0, &grad);
    EXPECT_DOUBLE_EQ(loss, 1.0 * (3.0 - 0.5));
    EXPECT_DOUBLE_EQ(grad.at(0, 0), 1.0);
}

TEST(HuberLoss, RejectsNonPositiveDelta)
{
    EXPECT_THROW(huberLoss(Matrix(1, 1), Matrix(1, 1), 0.0),
                 std::runtime_error);
}

TEST(Optimizer, ZeroGradClearsAccumulators)
{
    Rng rng(1);
    Dense layer(2, 2, rng);
    Matrix grad_pred;
    mseLoss(layer.forward(Matrix::constant(1, 2, 1.0)),
            Matrix::constant(1, 2, 0.5), &grad_pred);
    layer.backward(grad_pred);
    Adam opt(layer.params());
    opt.zeroGrad();
    for (Param *p : layer.params())
        EXPECT_DOUBLE_EQ(p->grad.maxAbs(), 0.0);
}

TEST(Optimizer, ClipGradNormScalesDown)
{
    Rng rng(2);
    Dense layer(2, 2, rng);
    for (Param *p : layer.params())
        for (double &g : p->grad.raw())
            g = 10.0;
    Sgd opt(layer.params(), 0.1);
    const double before = opt.clipGradNorm(1.0);
    EXPECT_GT(before, 1.0);
    double total_sq = 0.0;
    for (Param *p : layer.params())
        for (double g : p->grad.raw())
            total_sq += g * g;
    EXPECT_NEAR(std::sqrt(total_sq), 1.0, 1e-9);
}

TEST(Optimizer, RejectsNullParam)
{
    std::vector<Param *> bad{nullptr};
    EXPECT_THROW(Sgd(bad, 0.1), std::logic_error);
}

TEST(Sgd, ConvergesOnLinearRegression)
{
    // y = 2x - 1 with SGD on a single Dense layer.
    Rng rng(3);
    Dense layer(1, 1, rng);
    Sgd opt(layer.params(), 0.05, 0.9);
    double final_loss = 1.0;
    for (int epoch = 0; epoch < 400; ++epoch) {
        Matrix x(8, 1);
        Matrix y(8, 1);
        for (int i = 0; i < 8; ++i) {
            const double v = rng.uniform(-1.0, 1.0);
            x.at(i, 0) = v;
            y.at(i, 0) = 2.0 * v - 1.0;
        }
        opt.zeroGrad();
        Matrix grad;
        final_loss = mseLoss(layer.forward(x), y, &grad);
        layer.backward(grad);
        opt.step();
    }
    EXPECT_LT(final_loss, 1e-3);
}

TEST(Adam, ConvergesFasterThanPlainLoop)
{
    Rng rng(4);
    Dense layer(2, 1, rng);
    Adam opt(layer.params(), 0.05);
    double final_loss = 1.0;
    for (int epoch = 0; epoch < 300; ++epoch) {
        Matrix x(16, 2);
        Matrix y(16, 1);
        for (int i = 0; i < 16; ++i) {
            const double a = rng.uniform(-1.0, 1.0);
            const double b = rng.uniform(-1.0, 1.0);
            x.at(i, 0) = a;
            x.at(i, 1) = b;
            y.at(i, 0) = 3.0 * a - 0.5 * b + 0.25;
        }
        opt.zeroGrad();
        Matrix grad;
        final_loss = mseLoss(layer.forward(x), y, &grad);
        layer.backward(grad);
        opt.step();
    }
    EXPECT_LT(final_loss, 1e-4);
}

TEST(Adam, LearningRateIsMutable)
{
    Rng rng(5);
    Dense layer(1, 1, rng);
    Adam opt(layer.params(), 0.01);
    EXPECT_DOUBLE_EQ(opt.learningRate(), 0.01);
    opt.setLearningRate(0.001);
    EXPECT_DOUBLE_EQ(opt.learningRate(), 0.001);
}

TEST(Adam, RejectsNonPositiveLearningRate)
{
    Rng rng(6);
    Dense layer(1, 1, rng);
    EXPECT_THROW(Adam(layer.params(), 0.0), std::runtime_error);
}

TEST(Training, LstmLearnsRunningMean)
{
    // Task: predict the mean of a 6-step scalar sequence — a miniature
    // of the system-state forecasting problem.
    Rng rng(7);
    Lstm lstm(1, 8, rng);
    Dense readout(8, 1, rng);

    std::vector<Param *> all = lstm.params();
    for (Param *p : readout.params())
        all.push_back(p);
    Adam opt(all, 0.01);

    double loss_value = 1.0;
    for (int step = 0; step < 600; ++step) {
        const std::size_t batch = 16;
        std::vector<Matrix> seq(6, Matrix(batch, 1));
        Matrix target(batch, 1);
        for (std::size_t b = 0; b < batch; ++b) {
            double total = 0.0;
            for (int t = 0; t < 6; ++t) {
                const double v = rng.uniform(-1.0, 1.0);
                seq[t].at(b, 0) = v;
                total += v;
            }
            target.at(b, 0) = total / 6.0;
        }
        opt.zeroGrad();
        const auto hidden = lstm.forwardSequence(seq);
        const Matrix pred = readout.forward(hidden.back());
        Matrix grad;
        loss_value = mseLoss(pred, target, &grad);
        std::vector<Matrix> grad_hidden(seq.size(),
                                        Matrix(batch, 8));
        grad_hidden.back() = readout.backward(grad);
        lstm.backwardSequence(grad_hidden);
        opt.clipGradNorm(5.0);
        opt.step();
    }
    EXPECT_LT(loss_value, 0.01);
}

TEST(Scaler, TransformInverseRoundTrip)
{
    Rng rng(8);
    Matrix data(50, 3);
    for (double &x : data.raw())
        x = rng.gaussian(5.0, 3.0);
    StandardScaler scaler;
    scaler.fit(data);
    const Matrix round = scaler.inverseTransform(scaler.transform(data));
    EXPECT_LT((round - data).maxAbs(), 1e-9);
}

TEST(Scaler, TransformedStatisticsAreStandard)
{
    Rng rng(9);
    Matrix data(2000, 2);
    for (std::size_t r = 0; r < data.rows(); ++r) {
        data.at(r, 0) = rng.gaussian(100.0, 25.0);
        data.at(r, 1) = rng.gaussian(-3.0, 0.5);
    }
    StandardScaler scaler;
    scaler.fit(data);
    const Matrix z = scaler.transform(data);
    for (std::size_t c = 0; c < 2; ++c) {
        double mean = 0.0;
        for (std::size_t r = 0; r < z.rows(); ++r)
            mean += z.at(r, c);
        mean /= static_cast<double>(z.rows());
        EXPECT_NEAR(mean, 0.0, 1e-9);
    }
}

TEST(Scaler, ConstantColumnIsLeftUnscaled)
{
    Matrix data(4, 1, {7.0, 7.0, 7.0, 7.0});
    StandardScaler scaler;
    scaler.fit(data);
    const Matrix z = scaler.transform(data);
    EXPECT_DOUBLE_EQ(z.maxAbs(), 0.0); // mean removed, std forced to 1
}

TEST(Scaler, UseBeforeFitIsFatal)
{
    StandardScaler scaler;
    EXPECT_THROW(scaler.transform(Matrix(1, 1)), std::runtime_error);
}

TEST(Scaler, ScalarHelpersMatchMatrixPath)
{
    Matrix data(3, 2, {1.0, 10.0, 2.0, 20.0, 3.0, 30.0});
    StandardScaler scaler;
    scaler.fit(data);
    const double z = scaler.transformScalar(2.0, 0);
    EXPECT_NEAR(scaler.inverseTransformScalar(z, 0), 2.0, 1e-12);
}

TEST(Scaler, SequenceFitAndTransform)
{
    Rng rng(10);
    std::vector<std::vector<Matrix>> sequences;
    for (int s = 0; s < 4; ++s) {
        std::vector<Matrix> seq;
        for (int t = 0; t < 5; ++t) {
            Matrix m(1, 2);
            m.at(0, 0) = rng.gaussian(4.0, 1.0);
            m.at(0, 1) = rng.gaussian(-2.0, 3.0);
            seq.push_back(std::move(m));
        }
        sequences.push_back(std::move(seq));
    }
    StandardScaler scaler;
    scaler.fitSequences(sequences);
    EXPECT_TRUE(scaler.fitted());
    const auto z = scaler.transformSequence(sequences[0]);
    EXPECT_EQ(z.size(), 5u);
}

TEST(Serialize, RoundTripRestoresWeights)
{
    Rng rng_a(11), rng_b(12);
    Dense a(3, 2, rng_a);
    Dense b(3, 2, rng_b);
    const std::string path =
        ::testing::TempDir() + "adrias_params_test.txt";

    saveParamsToFile(path, a.params());
    loadParamsFromFile(path, b.params());

    const Matrix probe = Matrix::constant(2, 3, 0.7);
    EXPECT_LT((a.forward(probe) - b.forward(probe)).maxAbs(), 1e-12);
    std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchIsFatal)
{
    Rng rng(13);
    Dense a(3, 2, rng);
    Dense wrong(2, 2, rng);
    const std::string path =
        ::testing::TempDir() + "adrias_params_bad.txt";
    saveParamsToFile(path, a.params());
    EXPECT_THROW(loadParamsFromFile(path, wrong.params()),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileIsFatal)
{
    Rng rng(14);
    Dense a(2, 2, rng);
    EXPECT_THROW(loadParamsFromFile("/no/such/file.txt", a.params()),
                 std::runtime_error);
}

} // namespace
} // namespace adrias::ml
