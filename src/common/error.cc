#include "common/error.hh"

#include <charconv>

namespace adrias
{

std::string
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Io:
        return "io";
      case ErrorCode::BadHeader:
        return "bad-header";
      case ErrorCode::Geometry:
        return "geometry";
      case ErrorCode::Truncated:
        return "truncated";
      case ErrorCode::BadNumber:
        return "bad-number";
      case ErrorCode::BadToken:
        return "bad-token";
      case ErrorCode::TrailingData:
        return "trailing-data";
      case ErrorCode::BadSyntax:
        return "bad-syntax";
    }
    panic("unknown ErrorCode");
}

Result<double>
parseDouble(std::string_view text)
{
    if (text.empty())
        return makeError(ErrorCode::BadNumber, "empty numeric field");
    double value = 0.0;
    const char *begin = text.data();
    const char *end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec == std::errc::result_out_of_range)
        return makeError(ErrorCode::BadNumber,
                         "number out of range: '" + std::string(text) +
                             "'");
    if (ec != std::errc{} || ptr != end)
        return makeError(ErrorCode::BadNumber,
                         "malformed number: '" + std::string(text) + "'");
    return value;
}

Result<std::size_t>
parseSize(std::string_view text)
{
    if (text.empty())
        return makeError(ErrorCode::BadNumber, "empty integer field");
    std::size_t value = 0;
    const char *begin = text.data();
    const char *end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec == std::errc::result_out_of_range)
        return makeError(ErrorCode::BadNumber,
                         "integer out of range: '" + std::string(text) +
                             "'");
    if (ec != std::errc{} || ptr != end)
        return makeError(ErrorCode::BadNumber,
                         "malformed integer: '" + std::string(text) +
                             "'");
    return value;
}

} // namespace adrias
