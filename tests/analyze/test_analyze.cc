/**
 * @file
 * Self-tests for the cross-file semantic analyzer (tools/analyze):
 * every pass is proven against a deliberately violating fixture and a
 * clean counterpart, the waiver macros and NOLINT escapes are shown
 * to suppress, cross-file declaration/body merging is exercised, a
 * seeded fault (deleting one saveState line from the real
 * ScenarioEngine) is demonstrably caught, and the real tree must
 * analyze clean.
 *
 * Violating code lives under tools/analyze/fixtures/ or in string
 * literals — never compiled, only parsed.
 */

#include "analyze/analyze.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace
{

using adrias::analyze::analyzeFiles;
using adrias::analyze::analyzeTree;
using adrias::analyze::Finding;
using adrias::analyze::SourceFile;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

SourceFile
fixture(const std::string &name)
{
    return {name,
            readFile(std::string(ADRIAS_ANALYZE_FIXTURE_DIR) + "/" + name)};
}

/** Findings of one pass, as "detail" strings. */
std::vector<std::string>
detailsOf(const std::vector<Finding> &findings, const std::string &pass)
{
    std::vector<std::string> details;
    for (const auto &finding : findings) {
        if (finding.pass == pass)
            details.push_back(finding.detail);
    }
    return details;
}

bool
anyMentions(const std::vector<std::string> &details,
            const std::string &needle)
{
    return std::any_of(details.begin(), details.end(),
                       [&](const std::string &detail) {
                           return detail.find(needle) != std::string::npos;
                       });
}

TEST(AnalyzePasses, EveryPassHasMetadata)
{
    const auto &passes = adrias::analyze::passes();
    ASSERT_EQ(passes.size(), 3u);
    std::vector<std::string> ids;
    for (const auto &pass : passes) {
        EXPECT_FALSE(pass.description.empty()) << pass.id;
        ids.push_back(pass.id);
    }
    for (const char *expected :
         {"checkpoint-coverage", "lock-discipline", "determinism-hazard"}) {
        EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
            << expected;
    }
}

TEST(CheckpointCoverage, BadFixtureFlagsExactlyTheForgottenMembers)
{
    // Header and implementation as separate files: the pass must merge
    // the out-of-line bodies with the header's class.
    const auto findings = analyzeFiles(
        {fixture("bad_checkpoint.hh"), fixture("bad_checkpoint_impl.cc")});
    const auto details = detailsOf(findings, "checkpoint-coverage");
    ASSERT_EQ(details.size(), 2u) << adrias::analyze::formatFinding(
        findings.empty() ? Finding{} : findings.front());

    // `ema` is saved but not restored; `window` appears on neither side.
    EXPECT_TRUE(anyMentions(details, "'ema'"));
    EXPECT_TRUE(anyMentions(details, "restoreState"));
    EXPECT_TRUE(anyMentions(details, "'window'"));

    // Covered / delegated / waived / auto-exempt members stay silent.
    EXPECT_FALSE(anyMentions(details, "'samples'"));
    EXPECT_FALSE(anyMentions(details, "'cfg'"));
    EXPECT_FALSE(anyMentions(details, "'mu'"));
    EXPECT_FALSE(anyMentions(details, "'instances'"));

    // Findings anchor on the header's member declarations.
    for (const auto &finding : findings)
        EXPECT_EQ(finding.file, "bad_checkpoint.hh");
}

TEST(CheckpointCoverage, GoodFixtureIsClean)
{
    const auto findings = analyzeFiles({fixture("good_checkpoint.hh")});
    EXPECT_TRUE(findings.empty())
        << adrias::analyze::formatFinding(findings.front());
}

TEST(LockDiscipline, BadFixtureFlagsTheUnannotatedMember)
{
    const auto findings = analyzeFiles({fixture("bad_lock.hh")});
    const auto details = detailsOf(findings, "lock-discipline");
    ASSERT_EQ(details.size(), 1u);
    EXPECT_TRUE(anyMentions(details, "'rate'"));
    // Guarded, atomic, const and the mutex itself stay silent.
    EXPECT_FALSE(anyMentions(details, "'hits'"));
    EXPECT_FALSE(anyMentions(details, "'warm'"));
    EXPECT_FALSE(anyMentions(details, "'capacity'"));
    EXPECT_FALSE(anyMentions(details, "'mu'"));
}

TEST(LockDiscipline, GoodFixtureIsClean)
{
    const auto findings = analyzeFiles({fixture("good_lock.hh")});
    EXPECT_TRUE(findings.empty())
        << adrias::analyze::formatFinding(findings.front());
}

TEST(DeterminismHazard, BadFixtureFlagsAllFourHazards)
{
    const auto findings = analyzeFiles({fixture("bad_determinism.cc")});
    const auto details = detailsOf(findings, "determinism-hazard");
    ASSERT_EQ(details.size(), 4u);
    EXPECT_TRUE(anyMentions(details, "'index'"));
    EXPECT_TRUE(anyMentions(details, "'edges'"));
    EXPECT_TRUE(anyMentions(details, "'total'"));
    // The ADRIAS_VECTOR_TIER_OK waiver placed outside the parallelFor
    // argument list does not suppress the accumulation finding.
    EXPECT_TRUE(anyMentions(details, "'energy'"));
}

TEST(DeterminismHazard, GoodFixtureIsClean)
{
    const auto findings = analyzeFiles({fixture("good_determinism.cc")});
    EXPECT_TRUE(findings.empty())
        << adrias::analyze::formatFinding(findings.front());
}

TEST(DeterminismHazard, VectorTierWaiverIsRegionScoped)
{
    const std::string accumulation = R"(
namespace adrias::demo
{
double sum(ThreadPool &pool, const std::vector<double> &xs)
{
    double acc = 0.0;
    pool.parallelFor(xs.size(),
                     [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i)
                             acc += xs[i];
                     });
    return acc;
}
} // namespace adrias::demo
)";
    const auto flagged = analyzeFiles({{"demo.cc", accumulation}});
    ASSERT_EQ(flagged.size(), 1u);
    EXPECT_EQ(flagged.front().pass, "determinism-hazard");

    // The waiver inside the parallelFor argument list suppresses it.
    std::string waived = accumulation;
    const std::string marker = "for (std::size_t i = begin;";
    waived.replace(waived.find(marker), marker.size(),
                   "ADRIAS_VECTOR_TIER_OK(\"simd suite covers this\");\n"
                   "                         " +
                       marker);
    EXPECT_TRUE(analyzeFiles({{"demo.cc", waived}}).empty());
}

TEST(Suppressions, NolintWithThePassIdSuppresses)
{
    const std::string without = R"(
namespace adrias::demo
{
class Cache
{
    mutable Mutex mu;
    std::size_t hits ADRIAS_GUARDED_BY(mu) = 0;
    double rate = 0.0;
};
} // namespace adrias::demo
)";
    const auto flagged = analyzeFiles({{"demo.hh", without}});
    ASSERT_EQ(flagged.size(), 1u);
    EXPECT_EQ(flagged.front().pass, "lock-discipline");

    // The exact pass id suppresses the finding...
    std::string with = without;
    const std::string marker = "double rate = 0.0;";
    with.replace(with.find(marker), marker.size(),
                 "double rate = 0.0; // NOLINT(lock-discipline)");
    EXPECT_TRUE(analyzeFiles({{"demo.hh", with}}).empty());

    // ...a different rule name does not.
    std::string wrong = without;
    wrong.replace(wrong.find(marker), marker.size(),
                  "double rate = 0.0; // NOLINT(raw-rand)");
    EXPECT_EQ(analyzeFiles({{"demo.hh", wrong}}).size(), 1u);
}

TEST(Suppressions, WaiverMacrosSuppress)
{
    // One checkpointable class, one forgotten member.
    const std::string without = R"(
namespace adrias::demo
{
class Meter
{
  public:
    void saveState(io::BinaryWriter &out) const { out.writeU64(ticks); }
    Result<void> restoreState(io::BinaryReader &in)
    {
        ticks = in.readU64();
        return {};
    }

  private:
    std::uint64_t ticks = 0;
    double drift = 0.0;
};
} // namespace adrias::demo
)";
    const auto flagged = analyzeFiles({{"meter.hh", without}});
    ASSERT_EQ(flagged.size(), 1u);
    EXPECT_EQ(flagged.front().pass, "checkpoint-coverage");
    EXPECT_NE(flagged.front().detail.find("'drift'"), std::string::npos);

    std::string with = without;
    const std::string marker = "double drift = 0.0;";
    with.replace(with.find(marker), marker.size(),
                 "double drift ADRIAS_NOT_CHECKPOINTED(\"derived\") = 0.0;");
    EXPECT_TRUE(analyzeFiles({{"meter.hh", with}}).empty());
}

TEST(SeededFault, DeletingOneSaveStateLineIsCaught)
{
    const std::string root(ADRIAS_ANALYZE_REPO_ROOT);
    const SourceFile header{"src/scenario/engine.hh",
                            readFile(root + "/src/scenario/engine.hh")};
    SourceFile impl{"src/scenario/engine.cc",
                    readFile(root + "/src/scenario/engine.cc")};

    // Intact, the engine pair is clean.
    EXPECT_TRUE(analyzeFiles({header, impl}).empty());

    // Delete the one line serializing `nextId` — the forgotten-field
    // regression this pass exists to catch.
    const std::string line = "out.writeU64(nextId);";
    const std::size_t at = impl.content.find(line);
    ASSERT_NE(at, std::string::npos)
        << "seeded-fault anchor line moved; update this test";
    impl.content.erase(at, line.size());

    const auto findings = analyzeFiles({header, impl});
    const auto details = detailsOf(findings, "checkpoint-coverage");
    ASSERT_FALSE(details.empty());
    EXPECT_TRUE(anyMentions(details, "'nextId'"));
    EXPECT_TRUE(anyMentions(details, "saveState"));
}

TEST(AnalyzeTree, RealTreeIsClean)
{
    const auto findings = analyzeTree(ADRIAS_ANALYZE_REPO_ROOT);
    std::string report;
    for (const auto &finding : findings)
        report += adrias::analyze::formatFinding(finding) + "\n";
    EXPECT_TRUE(findings.empty()) << report;
}

} // namespace
