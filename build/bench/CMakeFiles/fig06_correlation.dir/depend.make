# Empty dependencies file for fig06_correlation.
# This may be replaced when dependencies are built.
