/**
 * @file
 * adrias_lint entry point.
 *
 *   adrias_lint <repo-root>   lint src/, tests/, bench/; exit 1 on
 *                             findings, 0 when clean.
 *   adrias_lint --list-rules  print rule ids and descriptions.
 *
 * Wired into CTest as the `lint` test (tools/lint/CMakeLists.txt).
 */

#include "lint/lint.hh"

// Lint is a host tool, not simulator library code, so it may talk to
// the console directly.
#include <iostream>
#include <string>

int
main(int argc, char **argv)
{
    if (argc == 2 && std::string(argv[1]) == "--list-rules") {
        for (const auto &rule : adrias::lint::rules())
            std::cout << rule.id << "  " << rule.description << "\n";
        return 0;
    }
    if (argc != 2) {
        std::cerr << "usage: adrias_lint <repo-root> | --list-rules\n";
        return 2;
    }

    const auto findings = adrias::lint::lintTree(argv[1]);
    for (const auto &finding : findings)
        std::cout << adrias::lint::formatFinding(finding) << "\n";
    if (!findings.empty()) {
        std::cout << findings.size() << " lint finding"
                  << (findings.size() == 1 ? "" : "s")
                  << " (suppress with NOLINT(<rule>) or "
                     "NOLINTNEXTLINE(<rule>))\n";
        return 1;
    }
    return 0;
}
